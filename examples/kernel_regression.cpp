// Kernel ridge regression with a compressed kernel matrix.
//
// The workload the paper's introduction motivates: statistical learning
// with dense kernel matrices. We fit f(x) = sum_i alpha_i K(x, x_i) by
// solving (K + lambda I) alpha = y three ways:
//   1. plain CG on the fine-tolerance GOFMM operator,
//   2. CG preconditioned by a coarse-tolerance factorized HSS compression
//      (the ULV solve of core/factorization.hpp) — same answer in a
//      fraction of the iterations,
//   3. the HODLR direct solver through the same Factorizable interface,
//   4. a lambda sweep on a pure-HSS compression: factorize once, then
//      refactorize(lambda) per candidate ridge — lambda*I commutes
//      through the engine's stored orthogonal rotations, so each retune
//      re-factors only small rotated diagonal blocks (no kernel
//      re-evaluation, no basis work, bit-identical to a fresh
//      factorize; see docs/RETUNING.md), and logdet() gives the
//      marginal-likelihood term each lambda needs.
// The ULV factorization also yields log det(K + lambda I) — the quantity
// kernel-model marginal likelihoods need — for free.
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/factorization.hpp"
#include "core/gofmm.hpp"
#include "core/solvers.hpp"
#include "baselines/hodlr.hpp"
#include "la/blas.hpp"
#include "util/timer.hpp"
#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"

using namespace gofmm;

namespace {

/// Ground-truth function the regression tries to recover.
double target(const double* x, index_t d) {
  double s = 0;
  for (index_t t = 0; t < d; ++t) s += std::sin(3.0 * x[t]);
  return s / double(d);
}

}  // namespace

int main() {
  const index_t n_train = 4096;
  const index_t n_test = 512;
  const index_t d = 6;

  // Training and test points from the same clustered distribution.
  la::Matrix<double> all =
      zoo::gaussian_mixture_cloud<double>(d, n_train + n_test, 8, 0.2, 3);
  la::Matrix<double> train = all.block(0, 0, d, n_train);
  la::Matrix<double> test = all.block(0, n_train, d, n_test);

  zoo::KernelParams params;
  params.kind = zoo::KernelKind::Gaussian;
  params.bandwidth = 1.0;  // smooth kernel: hierarchically compressible
  auto k = std::make_shared<zoo::KernelSPD<double>>(train, params);

  la::Matrix<double> y(n_train, 1);
  for (index_t i = 0; i < n_train; ++i)
    y(i, 0) = target(train.col(i), d);

  const Config cfg = Config::defaults()
                         .with_leaf_size(128)
                         .with_max_rank(128)
                         .with_tolerance(1e-7)
                         .with_kappa(32)
                         .with_budget(0.05);
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  std::printf("compression: %.2fs, avg rank %.1f\n",
              kc.stats().total_seconds, kc.stats().avg_rank);

  // CG on (K + lambda I) alpha = y with the compressed matvec: the library
  // solver sees only the abstract CompressedOperator, so this line would
  // run unchanged against HODLR, HSS, or ACA backends.
  const double lambda = 1e-1;
  la::Matrix<double> alpha;
  EvalWorkspace<double> ws;
  const SolveReport rep =
      conjugate_gradient<double>(
          kc, lambda, y, alpha,
          SolveOptions::defaults().with_target_residual(1e-7).with_max_iterations(
              300),
          &ws);
  std::printf("CG: %lld iterations, relative residual %.2e\n",
              (long long)rep.iterations, rep.relative_residual);

  // Preconditioned path: a coarse-tolerance pure-HSS compression of the
  // same kernel, ULV-factorized, serves as M ~ (K + lambda I). Each PCG
  // iteration then costs one fine matvec plus one O(N r log N) coarse
  // solve, and the iteration count collapses.
  {
    Timer t;
    auto prec = make_preconditioner<double>(
        k, lambda,
        Config::defaults().with_leaf_size(128).with_tolerance(1e-5));
    const double build_s = t.seconds();
    la::Matrix<double> alpha_pcg;
    t.reset();
    const SolveReport prep = preconditioned_solve<double>(
        kc, lambda, y, alpha_pcg, *prec,
        SolveOptions::defaults().with_target_residual(1e-7).with_max_iterations(
            300),
        &ws);
    std::printf(
        "PCG: %lld iterations (vs %lld), residual %.2e; preconditioner "
        "build %.2fs, solve %.2fs, coarse logdet(K~+%.2gI) = %.2f\n",
        (long long)prep.iterations, (long long)rep.iterations,
        prep.relative_residual, build_s, t.seconds(),
        prec->factorization_stats().regularization, prec->logdet());
  }

  // Alternative: the HODLR direct solver (factorize once, then O(N log N)
  // solves) — handy when many right-hand sides share one operator. The
  // ridge goes straight into factorize(lambda) via the same Factorizable
  // interface the ULV path implements. The ill-conditioning of kernel
  // systems makes coefficient vectors incomparable between approximate
  // solvers, so we compare residuals.
  {
    baseline::HodlrOptions hopts;
    hopts.leaf_size = 128;
    hopts.tolerance = 1e-8;
    hopts.max_rank = 128;
    baseline::Hodlr<double> h(*k, hopts);
    Timer t;
    h.factorize(lambda);
    la::Matrix<double> alpha_direct = h.solve(y);
    const double solve_s = t.seconds();
    std::printf(
        "HODLR direct solve: factorize+solve %.2fs, residual %.2e (vs CG "
        "%.2e), logdet %.2f\n",
        solve_s, operator_residual<double>(h, lambda, y, alpha_direct),
        rep.relative_residual, h.logdet());
  }

  // Ridge tuning: sweep lambda on a pure-HSS (budget 0) compression of
  // the same kernel. factorize() once builds the stored-Q orthogonal
  // elimination (oracle reads, basis QR, rotated-block caches); each
  // further lambda is a refactorize() — rotated diagonal block
  // re-factorization ONLY, zero oracle traffic (docs/RETUNING.md has the
  // cost model) — and the negative log marginal likelihood
  // 0.5 (yT alpha + log det(K~ + lambda I)) comes out of the same
  // factorization. Indefinite stops (lambda below the compression error)
  // are reported instead of crashing: solve() still works there via the
  // pivoted-LDLT block path, and the orthogonal engine's exact inertia
  // makes positive_definite a certificate, but logdet() requires
  // positive definiteness.
  {
    auto direct = CompressedMatrix<double>::compress_unique(
        k, Config(cfg).with_budget(0.0).with_tolerance(1e-6));
    Timer t;
    direct->factorize(lambda);
    std::printf("lambda sweep: factorize once %.2fs, then retune:\n",
                t.seconds());
    for (const double lam : {1e-3, 1e-2, 1e-1, 1.0}) {
      t.reset();
      direct->refactorize(lam);
      la::Matrix<double> alpha_lam = direct->solve(y);
      const double resid =
          operator_residual<double>(*direct, lam, y, alpha_lam);
      if (direct->factorization_stats().positive_definite) {
        const double fit = la::dot(n_train, y.col(0), alpha_lam.col(0));
        std::printf("  lambda %-8.3g retune %.3fs  nll %10.2f  resid %.1e\n",
                    lam, t.seconds(), 0.5 * (fit + direct->logdet()), resid);
      } else {
        std::printf("  lambda %-8.3g retune %.3fs  indefinite (%lld LDLT "
                    "leaves) — solve still exact (resid %.1e), raise "
                    "lambda for logdet\n",
                    lam, t.seconds(),
                    (long long)direct->factorization_stats().ldlt_leaves,
                    resid);
      }
    }
  }

  // Predict on the test set: f(x) = sum_i alpha_i K(x, x_i).
  double mse = 0;
  double var = 0;
  for (index_t t = 0; t < n_test; ++t) {
    double pred = 0;
    for (index_t i = 0; i < n_train; ++i) {
      double r2 = 0;
      for (index_t dd = 0; dd < d; ++dd) {
        const double diff = test(dd, t) - train(dd, i);
        r2 += diff * diff;
      }
      pred += alpha(i, 0) *
              std::exp(-r2 / (2.0 * params.bandwidth * params.bandwidth));
    }
    const double truth = target(test.col(t), d);
    mse += (pred - truth) * (pred - truth);
    var += truth * truth;
  }
  std::printf("test relative RMSE: %.3f\n", std::sqrt(mse / var));
  return 0;
}
