// Kernel ridge regression with a compressed kernel matrix.
//
// The workload the paper's introduction motivates: statistical learning
// with dense kernel matrices. We fit f(x) = sum_i alpha_i K(x, x_i) by
// solving (K + lambda I) alpha = y with conjugate gradients, using the
// GOFMM-compressed operator for every matvec — O(N) per iteration instead
// of O(N^2) — then measure test error on held-out points.
#include <cmath>
#include <cstdio>

#include "core/gofmm.hpp"
#include "baselines/hodlr.hpp"
#include "la/blas.hpp"
#include "util/timer.hpp"
#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"

using namespace gofmm;

namespace {

/// Ground-truth function the regression tries to recover.
double target(const double* x, index_t d) {
  double s = 0;
  for (index_t t = 0; t < d; ++t) s += std::sin(3.0 * x[t]);
  return s / double(d);
}

}  // namespace

int main() {
  const index_t n_train = 4096;
  const index_t n_test = 512;
  const index_t d = 6;

  // Training and test points from the same clustered distribution.
  la::Matrix<double> all =
      zoo::gaussian_mixture_cloud<double>(d, n_train + n_test, 8, 0.2, 3);
  la::Matrix<double> train = all.block(0, 0, d, n_train);
  la::Matrix<double> test = all.block(0, n_train, d, n_test);

  zoo::KernelParams params;
  params.kind = zoo::KernelKind::Gaussian;
  params.bandwidth = 0.4;
  zoo::KernelSPD<double> k(train, params);

  la::Matrix<double> y(n_train, 1);
  for (index_t i = 0; i < n_train; ++i)
    y(i, 0) = target(train.col(i), d);

  Config cfg;
  cfg.leaf_size = 128;
  cfg.max_rank = 128;
  cfg.tolerance = 1e-7;
  cfg.kappa = 32;
  cfg.budget = 0.05;
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  std::printf("compression: %.2fs, avg rank %.1f\n",
              kc.stats().total_seconds, kc.stats().avg_rank);

  // CG on (K + lambda I) alpha = y with the compressed matvec.
  const double lambda = 1e-1;
  la::Matrix<double> alpha(n_train, 1);
  la::Matrix<double> r = y;
  la::Matrix<double> p = r;
  double rho = la::dot(n_train, r.data(), r.data());
  const double rho0 = rho;
  int iters = 0;
  for (; iters < 300 && rho > 1e-14 * rho0; ++iters) {
    la::Matrix<double> ap = kc.evaluate(p);
    la::axpy(n_train, lambda, p.data(), ap.data());
    const double step = rho / la::dot(n_train, p.data(), ap.data());
    la::axpy(n_train, step, p.data(), alpha.data());
    la::axpy(n_train, -step, ap.data(), r.data());
    const double rho_new = la::dot(n_train, r.data(), r.data());
    const double beta = rho_new / rho;
    rho = rho_new;
    for (index_t i = 0; i < n_train; ++i)
      p(i, 0) = r(i, 0) + beta * p(i, 0);
  }
  std::printf("CG: %d iterations, relative residual %.2e\n", iters,
              std::sqrt(rho / rho0));

  // Alternative: the HODLR direct solver (factorize once, then O(N log N)
  // solves) — handy when many right-hand sides share one operator. The
  // ill-conditioning of kernel systems makes coefficient vectors
  // incomparable between approximate solvers, so we compare residuals.
  {
    baseline::HodlrOptions hopts;
    hopts.leaf_size = 128;
    hopts.tolerance = 1e-8;
    hopts.max_rank = 128;
    zoo::KernelParams ridge_params = params;
    ridge_params.ridge = lambda;  // fold the ridge into the operator
    zoo::KernelSPD<double> k_ridged(train, ridge_params);
    baseline::Hodlr<double> h(k_ridged, hopts);
    Timer t;
    h.factorize();
    la::Matrix<double> alpha_direct = h.solve(y);
    const double solve_s = t.seconds();
    la::Matrix<double> resid = h.matvec(alpha_direct);
    double rnum = 0;
    for (index_t i = 0; i < n_train; ++i) {
      const double d = resid(i, 0) - y(i, 0);
      rnum += d * d;
    }
    std::printf(
        "HODLR direct solve: factorize+solve %.2fs, residual %.2e (vs CG "
        "%.2e)\n",
        solve_s, std::sqrt(rnum) / la::nrm2(n_train, y.data()),
        std::sqrt(rho / rho0));
  }

  // Predict on the test set: f(x) = sum_i alpha_i K(x, x_i).
  double mse = 0;
  double var = 0;
  for (index_t t = 0; t < n_test; ++t) {
    double pred = 0;
    for (index_t i = 0; i < n_train; ++i) {
      double r2 = 0;
      for (index_t dd = 0; dd < d; ++dd) {
        const double diff = test(dd, t) - train(dd, i);
        r2 += diff * diff;
      }
      pred += alpha(i, 0) * std::exp(-r2 / (2.0 * 0.4 * 0.4));
    }
    const double truth = target(test.col(t), d);
    mse += (pred - truth) * (pred - truth);
    var += truth * truth;
  }
  std::printf("test relative RMSE: %.3f\n", std::sqrt(mse / var));
  return 0;
}
