// Spectral analysis of a graph through its compressed inverse Laplacian —
// the truly geometry-free use case (paper's G01-G05 matrices).
//
// K = (L + sigma I)^-1 concentrates the *smallest* Laplacian eigenpairs at
// the top of its spectrum, so power iteration on the compressed K gives
// the Fiedler-type eigenvectors used for spectral embedding/partitioning.
// No coordinates exist for the graph: the Gram angle distance orders the
// matrix purely from its entries.
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/gofmm.hpp"
#include "core/solvers.hpp"
#include "la/blas.hpp"
#include "matrices/graphs.hpp"

using namespace gofmm;

int main() {
  // A random geometric graph (coordinates discarded after construction,
  // as with the paper's rgg_n_2_16 matrix G03).
  zoo::Graph g = zoo::random_geometric_graph(1024, 23);
  std::printf("graph: %lld vertices, %lld edges\n", (long long)g.n,
              (long long)g.num_edges());
  auto k = std::make_shared<DenseSPD<double>>(
      zoo::graph_inverse_laplacian<double>(g, 1e-2));

  const Config cfg =
      Config::defaults()
          .with_leaf_size(64)  // paper: G-matrices want small leaves
          .with_max_rank(128)
          .with_tolerance(1e-7)
          .with_kappa(32)
          .with_budget(0.03)
          .with_distance(tree::DistanceKind::Angle);  // no points exist
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  std::printf("compression: %.2fs, avg rank %.1f, eps2-ready\n",
              kc.stats().total_seconds, kc.stats().avg_rank);

  // Block power iteration on K for the top eigenpairs (ground-states of
  // L): every iteration is one compressed matvec through the abstract
  // operator interface — the same call would drive any other backend.
  const index_t n = k->size();
  la::Matrix<double> v;
  EvalWorkspace<double> ws;
  const std::vector<double> eig =
      power_iteration<double>(kc, 2, 40, 9, &v, &ws);
  const double rq0 = eig[0];
  const double rq1 = eig[1];
  std::printf("top eigenvalues of (L+sI)^-1: %.4e, %.4e\n", rq0, rq1);
  std::printf("=> smallest Laplacian modes: %.4e, %.4e\n", 1.0 / rq0 - 1e-2,
              1.0 / rq1 - 1e-2);

  // Use the second eigenvector as a 1-D spectral embedding: count edge
  // cut of the sign partition (Fiedler-style bisection).
  index_t cut = 0;
  for (const auto& [a, b] : g.edges)
    if ((v(a, 1) < 0) != (v(b, 1) < 0)) ++cut;
  std::printf("spectral bisection cut: %lld of %lld edges (%.2f%%)\n",
              (long long)cut, (long long)g.num_edges(),
              100.0 * double(cut) / double(g.num_edges()));
  return 0;
}
