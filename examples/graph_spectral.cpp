// Spectral analysis of a graph through its compressed inverse Laplacian —
// the truly geometry-free use case (paper's G01-G05 matrices).
//
// K = (L + sI)^-1 concentrates the *smallest* Laplacian eigenpairs at the
// top of its spectrum, so Lanczos on the compressed K (src/spectral/)
// delivers the Fiedler-type eigenvectors used for spectral embedding and
// partitioning — and the factorization's exact inertia then CERTIFIES the
// count: an eigenvalue_count() probe proves how many eigenvalues sit in
// the window the solver claims to have resolved. No coordinates exist for
// the graph: the Gram angle distance orders the matrix purely from its
// entries.
//
// Usage: graph_spectral [n]   (default 1024; exits nonzero when any
// accuracy gate fails, so ctest runs it as a tier-1 check).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/gofmm.hpp"
#include "la/blas.hpp"
#include "matrices/graphs.hpp"
#include "spectral/eigs.hpp"

using namespace gofmm;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? index_t(std::atoll(argv[1])) : 1024;
  int failures = 0;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::printf("FAIL: %s\n", what);
      ++failures;
    }
  };

  // A random geometric graph (coordinates discarded after construction,
  // as with the paper's rgg_n_2_16 matrix G03).
  zoo::Graph g = zoo::random_geometric_graph(n, 23);
  std::printf("graph: %lld vertices, %lld edges\n", (long long)g.n,
              (long long)g.num_edges());
  const double s = 1e-2;  // Laplacian regularization (L + sI)
  auto k = std::make_shared<DenseSPD<double>>(
      zoo::graph_inverse_laplacian<double>(g, s));

  const Config cfg =
      Config::defaults()
          .with_leaf_size(64)  // paper: G-matrices want small leaves
          .with_max_rank(128)
          .with_tolerance(1e-7)
          .with_kappa(32)
          .with_budget(0.03)
          .with_distance(tree::DistanceKind::Angle);  // no points exist
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  std::printf("compression: %.2fs, avg rank %.1f\n",
              kc.stats().total_seconds, kc.stats().avg_rank);

  // Top three eigenpairs of K by matvec-only Lanczos: the ground states
  // of L. The third pair only marks where the certification window ends.
  spectral::EigsResult<double> top =
      spectral::eigs(kc, 3, spectral::Which::Largest);
  gate(top.converged, "Lanczos did not converge");
  gate(top.values.size() == 3, "expected 3 eigenpairs");
  if (failures > 0) return 1;
  const double l1 = top.values[0];
  const double l2 = top.values[1];
  std::printf("top eigenvalues of (L+sI)^-1: %.4e, %.4e  (%lld matvecs)\n",
              l1, l2, (long long)top.iterations);
  std::printf("=> smallest Laplacian modes: %.4e, %.4e\n", 1.0 / l1 - s,
              1.0 / l2 - s);

  // Accuracy gate: true residuals ‖Kv − λv‖ ≤ 1e-8 ‖K‖ (‖K‖₂ ≈ λ₁).
  for (std::size_t j = 0; j < top.values.size(); ++j) {
    std::printf("  pair %zu: lambda %.6e, residual %.2e\n", j, top.values[j],
                top.residuals[j] / l1);
    gate(top.residuals[j] <= 1e-8 * l1, "eigenpair residual above 1e-8*|K|");
  }

  // Certified count: exact inertia at a shift between λ₃ and λ₂ plus one
  // above λ₁ proves exactly two eigenvalues live in the Fiedler window —
  // the claim the Lanczos run only suggests.
  const double lo = 0.5 * (top.values[2] + l2);
  const double hi = 1.5 * l1;
  const index_t certified = spectral::eigenvalue_count(kc, lo, hi);
  std::printf("certified eigenvalue count in [%.4e, %.4e): %lld\n", lo, hi,
              (long long)certified);
  gate(certified == 2, "inertia count disagrees with the Fiedler window");

  // Use the second eigenvector as a 1-D spectral embedding: count edge
  // cut of the sign partition (Fiedler-style bisection).
  index_t cut = 0;
  for (const auto& [a, b] : g.edges)
    if ((top.vectors(a, 1) < 0) != (top.vectors(b, 1) < 0)) ++cut;
  std::printf("spectral bisection cut: %lld of %lld edges (%.2f%%)\n",
              (long long)cut, (long long)g.num_edges(),
              100.0 * double(cut) / double(g.num_edges()));
  gate(cut > 0 && cut < g.num_edges(), "degenerate spectral bisection");

  std::printf(failures == 0 ? "PASS\n" : "FAILURES: %d\n", failures);
  return failures == 0 ? 0 : 1;
}
