// Spectral analysis of a graph through its compressed inverse Laplacian —
// the truly geometry-free use case (paper's G01-G05 matrices).
//
// K = (L + sigma I)^-1 concentrates the *smallest* Laplacian eigenpairs at
// the top of its spectrum, so power iteration on the compressed K gives
// the Fiedler-type eigenvectors used for spectral embedding/partitioning.
// No coordinates exist for the graph: the Gram angle distance orders the
// matrix purely from its entries.
#include <cmath>
#include <cstdio>

#include "core/gofmm.hpp"
#include "la/blas.hpp"
#include "matrices/graphs.hpp"

using namespace gofmm;

int main() {
  // A random geometric graph (coordinates discarded after construction,
  // as with the paper's rgg_n_2_16 matrix G03).
  zoo::Graph g = zoo::random_geometric_graph(1024, 23);
  std::printf("graph: %lld vertices, %lld edges\n", (long long)g.n,
              (long long)g.num_edges());
  DenseSPD<double> k(zoo::graph_inverse_laplacian<double>(g, 1e-2));

  Config cfg;
  cfg.leaf_size = 64;  // paper: G-matrices want small leaves
  cfg.max_rank = 128;
  cfg.tolerance = 1e-7;
  cfg.kappa = 32;
  cfg.budget = 0.03;
  cfg.distance = tree::DistanceKind::Angle;  // the only option: no points
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  std::printf("compression: %.2fs, avg rank %.1f, eps2-ready\n",
              kc.stats().total_seconds, kc.stats().avg_rank);

  // Block power iteration on K for the dominant eigenpair (ground-state
  // of L): every iteration is one compressed matvec.
  const index_t n = k.size();
  la::Matrix<double> v = la::Matrix<double>::random_normal(n, 2, 9);
  double lambda = 0;
  for (int it = 0; it < 40; ++it) {
    la::Matrix<double> kv = kc.evaluate(v);
    // Gram-Schmidt the two columns and normalise.
    double n0 = la::nrm2(n, kv.col(0));
    for (index_t i = 0; i < n; ++i) kv(i, 0) /= n0;
    const double proj = la::dot(n, kv.col(0), kv.col(1));
    for (index_t i = 0; i < n; ++i) kv(i, 1) -= proj * kv(i, 0);
    double n1 = la::nrm2(n, kv.col(1));
    for (index_t i = 0; i < n; ++i) kv(i, 1) /= n1;
    lambda = n0;
    v = std::move(kv);
  }

  // Rayleigh quotients against the exact matrix rows (sampled estimate of
  // eigen-residual quality).
  la::Matrix<double> kv_exact = kc.evaluate(v);
  const double rq0 = la::dot(n, v.col(0), kv_exact.col(0));
  const double rq1 = la::dot(n, v.col(1), kv_exact.col(1));
  std::printf("top eigenvalues of (L+sI)^-1: %.4e, %.4e (power-iter %.4e)\n",
              rq0, rq1, lambda);
  std::printf("=> smallest Laplacian modes: %.4e, %.4e\n", 1.0 / rq0 - 1e-2,
              1.0 / rq1 - 1e-2);

  // Use the second eigenvector as a 1-D spectral embedding: count edge
  // cut of the sign partition (Fiedler-style bisection).
  index_t cut = 0;
  for (const auto& [a, b] : g.edges)
    if ((v(a, 1) < 0) != (v(b, 1) < 0)) ++cut;
  std::printf("spectral bisection cut: %lld of %lld edges (%.2f%%)\n",
              (long long)cut, (long long)g.num_edges(),
              100.0 * double(cut) / double(g.num_edges()));
  return 0;
}
