// Quickstart: compress an SPD matrix you only know through entries, then
// multiply it fast.
//
//   $ ./quickstart
//
// The example builds a Gaussian kernel matrix (but GOFMM never looks at
// the points — only at matrix entries), compresses it with the Angle
// (Gram) distance, runs an approximate matvec, and reports the paper's
// eps2 error estimate plus the compression statistics.
#include <cstdio>

#include "core/gofmm.hpp"
#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"

int main() {
  using namespace gofmm;
  const index_t n = 4096;

  // 1. An SPD matrix. Any subclass of gofmm::SPDMatrix<T> works — the
  //    library only ever calls entry() / submatrix().
  zoo::KernelParams params;
  params.kind = zoo::KernelKind::Gaussian;
  params.bandwidth = 0.5;
  zoo::KernelSPD<double> k(
      zoo::gaussian_mixture_cloud<double>(/*d=*/6, n, /*clusters=*/10,
                                          /*spread=*/0.2, /*seed=*/42),
      params);

  // 2. Configure: leaf size m, max rank s, adaptive tolerance tau,
  //    neighbors kappa, direct-evaluation budget, and the distance.
  Config cfg;
  cfg.leaf_size = 128;
  cfg.max_rank = 128;
  cfg.tolerance = 1e-5;
  cfg.kappa = 32;
  cfg.budget = 0.03;
  cfg.distance = tree::DistanceKind::Angle;  // geometry-oblivious

  // 3. Compress: O(N log N) work and storage.
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  std::printf("compressed N=%lld: %.2fs (ann %.2fs, tree %.2fs, skel %.2fs)\n",
              (long long)n, kc.stats().total_seconds, kc.stats().ann_seconds,
              kc.stats().tree_seconds, kc.stats().skel_seconds);
  std::printf("average skeleton rank %.1f, %.1f%% of K evaluated directly\n",
              kc.stats().avg_rank, 100.0 * kc.stats().near_fraction);

  // 4. Fast matvec u = K w with multiple right-hand sides.
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 8, 7);
  la::Matrix<double> u = kc.evaluate(w);
  std::printf("evaluate (8 rhs): %.3fs at %.1f GFLOP/s\n",
              kc.last_eval_stats().seconds, kc.last_eval_stats().gflops());

  // 5. Error check (paper Eq. 11, sampled over 100 rows).
  std::printf("eps2 = %.3e\n", kc.estimate_error(w, u));
  return 0;
}
