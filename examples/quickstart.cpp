// Quickstart: compress an SPD matrix you only know through entries, then
// multiply it fast — through the backend-agnostic CompressedOperator API.
//
//   $ ./quickstart
//
// The example builds a Gaussian kernel matrix (but GOFMM never looks at
// the points — only at matrix entries), compresses it with the Angle
// (Gram) distance AND with the HODLR baseline, and drives both through
// the exact same code path: a const, thread-safe apply() against a
// caller-owned workspace. It finishes with four threads sharing one
// compressed operator — the serving pattern the API is designed for.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/hodlr.hpp"
#include "core/gofmm.hpp"
#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"

using namespace gofmm;

namespace {

/// Everything below this line is backend-agnostic: it sees only the
/// abstract operator, never which compression produced it.
void drive(const CompressedOperator<double>& op, const SPDMatrix<double>& k) {
  const index_t n = op.size();
  const OperatorStats st = op.operator_stats();
  std::printf("[%s] compressed N=%lld in %.2fs (avg rank %.1f, %.1f MB)\n",
              op.name().c_str(), (long long)n, st.compress_seconds,
              st.avg_rank, double(st.memory_bytes) * 1e-6);

  // Fast matvec u = K w with multiple right-hand sides. The workspace is
  // caller-owned scratch: reuse it across calls, one per thread.
  EvalWorkspace<double> ws;
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 8, 7);
  la::Matrix<double> u = op.apply(w, ws);
  std::printf("[%s] apply (8 rhs): %.3fs at %.1f GFLOP/s\n",
              op.name().c_str(), ws.last.seconds, ws.last.gflops());

  // Error check (paper Eq. 11, sampled over 100 rows, clamped at N).
  std::printf("[%s] eps2 = %.3e\n", op.name().c_str(),
              sampled_relative_error(k, w, u));

  // Concurrent serving: four threads, one shared operator, one workspace
  // each. apply() is const — no locks, no cloned state.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&op, n, t] {
      EvalWorkspace<double> thread_ws;
      la::Matrix<double> wt = la::Matrix<double>::random_normal(n, 2, 50 + t);
      (void)op.apply(wt, thread_ws);
    });
  for (auto& th : threads) th.join();
  std::printf("[%s] served 4 concurrent matvec requests\n\n",
              op.name().c_str());
}

}  // namespace

int main() {
  const index_t n = 4096;

  // 1. An SPD matrix. Any subclass of gofmm::SPDMatrix<double> works — the
  //    library only ever calls entry() / submatrix(). Shared ownership:
  //    compress() keeps the oracle alive, so this handle may be dropped.
  zoo::KernelParams params;
  params.kind = zoo::KernelKind::Gaussian;
  params.bandwidth = 0.5;
  auto k = std::make_shared<zoo::KernelSPD<double>>(
      zoo::gaussian_mixture_cloud<double>(/*d=*/6, n, /*clusters=*/10,
                                          /*spread=*/0.2, /*seed=*/42),
      params);

  // 2. Configure with the fluent builder: leaf size m, max rank s,
  //    adaptive tolerance tau, neighbors kappa, budget, and the distance.
  //    validate() runs inside compress(); call it early to fail fast.
  const Config cfg = Config::defaults()
                         .with_leaf_size(128)
                         .with_max_rank(128)
                         .with_tolerance(1e-5)
                         .with_kappa(32)
                         .with_budget(0.03)
                         .with_distance(tree::DistanceKind::Angle);
  cfg.validate();

  // 3. Compress with GOFMM: O(N log N) work and storage.
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  std::printf("gofmm phases: ann %.2fs, tree %.2fs, skel %.2fs; "
              "%.1f%% of K evaluated directly\n",
              kc.stats().ann_seconds, kc.stats().tree_seconds,
              kc.stats().skel_seconds, 100.0 * kc.stats().near_fraction);

  // 4. A second backend behind the SAME interface.
  baseline::HodlrOptions hopts;
  hopts.leaf_size = 128;
  hopts.tolerance = 1e-5;
  baseline::Hodlr<double> hodlr(*k, hopts);

  // 5. Everything downstream is written once against CompressedOperator.
  drive(kc, *k);
  drive(hodlr, *k);
  return 0;
}
