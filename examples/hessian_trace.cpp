// Randomized trace, inverse-diagonal, and log-determinant estimation of a
// PDE-constrained-optimization Hessian.
//
// K02 — the regularized inverse Laplacian squared — is the paper's model
// of a Hessian operator from PDE-constrained optimization / uncertainty
// quantification. The spectral subsystem (src/spectral/) turns the
// compressed operator into the UQ quantities directly: Hutchinson and
// Hutch++ estimate tr(H) with confidence intervals, the factorization's
// stored sweeps extract diag((H+λI)⁻¹) exactly (GP predictive variances),
// and stochastic Lanczos quadrature cross-checks the factorization's
// exact log-determinant from matvecs alone.
//
// Usage: hessian_trace [n]   (default 4096; exits nonzero when any
// accuracy gate fails, so ctest runs it as a tier-1 check).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/gofmm.hpp"
#include "la/blas.hpp"
#include "matrices/zoo.hpp"
#include "spectral/selected_inverse.hpp"
#include "spectral/trace.hpp"

using namespace gofmm;

int main(int argc, char** argv) {
  const index_t n_req = argc > 1 ? index_t(std::atoll(argv[1])) : 4096;
  int failures = 0;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::printf("FAIL: %s\n", what);
      ++failures;
    }
  };

  // make_matrix hands back sole ownership; converting to shared_ptr lets
  // compress() share it, so the operator stays valid on its own.
  std::shared_ptr<SPDMatrix<double>> k =
      zoo::make_matrix<double>("K02", n_req);
  // K02 lives on a square grid, so the built size may round down (e.g.
  // 512 → 484 = 22²): index by what was built, not what was asked.
  const index_t n = k->size();

  const Config cfg = Config::defaults()
                         .with_leaf_size(128)
                         .with_max_rank(128)
                         .with_tolerance(1e-7)
                         .with_kappa(32)
                         .with_budget(0.03);
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  std::printf("compression: %.2fs, avg rank %.1f\n", kc.stats().total_seconds,
              kc.stats().avg_rank);

  // Exact trace is the diagonal sum — available from the entry oracle.
  double trace_exact = 0;
  for (index_t i = 0; i < n; ++i) trace_exact += double(k->entry(i, i));

  // Hutchinson vs Hutch++ under the same 64-probe budget. Both report a
  // 99% confidence interval from the per-probe sample variance.
  const spectral::TraceOptions base =
      spectral::TraceOptions::defaults().with_probes(64).with_seed(5);
  const spectral::TraceEstimate hutch = spectral::hutchinson_trace(
      kc, spectral::TraceOptions(base).with_method(
              spectral::TraceMethod::Hutchinson));
  const spectral::TraceEstimate hpp = spectral::hutchpp_trace(kc, base);
  std::printf("tr(H) exact    = %.6e\n", trace_exact);
  std::printf("tr(H) hutch    = %.6e  ci [%.6e, %.6e]  rel err %.2e\n",
              hutch.estimate, hutch.ci_low, hutch.ci_high,
              std::abs(hutch.estimate - trace_exact) / trace_exact);
  std::printf("tr(H) hutch++  = %.6e  (exact part %.3e)  rel err %.2e\n",
              hpp.estimate, hpp.exact_part,
              std::abs(hpp.estimate - trace_exact) / trace_exact);
  // The plain estimator's contract is its interval, not a small error:
  // K02's spread-out spectrum gives zᵀHz a large variance, so 64 probes
  // legitimately land ~15% off — inside a CI that says exactly that.
  gate(hutch.ci_low <= trace_exact && trace_exact <= hutch.ci_high,
       "Hutchinson CI misses the exact trace");
  gate(std::abs(hutch.estimate - trace_exact) <= 0.5 * trace_exact,
       "Hutchinson estimate off by more than 50%");
  // Hutch++ deflates those outliers, so a tight gate IS fair here.
  gate(std::abs(hpp.estimate - trace_exact) <= 0.02 * trace_exact,
       "Hutch++ relative error above 2%");

  // Factorize once; the stored sweeps then hand out inverse quantities.
  const double lambda = 1e-4;
  kc.factorize(lambda);

  // diag((H+λI)⁻¹) through blocked identity solves — exact to solver
  // round-off, so its sum is the reference the stochastic inverse-trace
  // estimate must cover.
  const std::vector<double> inv_diag = spectral::selected_inverse_diag(kc);
  double inv_trace = 0;
  for (double d : inv_diag) inv_trace += d;
  const spectral::TraceEstimate inv_est = spectral::hutchinson_trace(
      kc, spectral::TraceOptions(base)
              .with_target(spectral::TraceTarget::Inverse)
              .with_method(spectral::TraceMethod::Hutchinson));
  std::printf("tr((H+lI)^-1)  = %.6e (selected inverse), %.6e ci [%.6e, %.6e]\n",
              inv_trace, inv_est.estimate, inv_est.ci_low, inv_est.ci_high);
  gate(inv_est.ci_low <= inv_trace && inv_trace <= inv_est.ci_high,
       "inverse-trace CI misses the selected-inverse sum");

  // Matvec-only SLQ logdet vs the factorization's exact one.
  const double ld_exact = kc.logdet();
  const spectral::TraceEstimate ld_est =
      spectral::slq_logdet(kc, lambda, base, 60);
  std::printf("logdet exact   = %.6e, slq = %.6e (rel err %.2e)\n", ld_exact,
              ld_est.estimate,
              std::abs(ld_est.estimate - ld_exact) / std::abs(ld_exact));
  gate(std::abs(ld_est.estimate - ld_exact) <= 0.05 * std::abs(ld_exact),
       "SLQ logdet relative error above 5%");

  std::printf(failures == 0 ? "PASS\n" : "FAILURES: %d\n", failures);
  return failures == 0 ? 0 : 1;
}
