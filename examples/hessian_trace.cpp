// Randomized trace and diagonal estimation of a PDE-constrained-
// optimization Hessian.
//
// K02 — the regularized inverse Laplacian squared — is the paper's model
// of a Hessian operator from PDE-constrained optimization / uncertainty
// quantification. Quantities like tr(H) (expected information) are
// estimated with Hutchinson probes tr(H) ≈ mean(z^T H z), each probe
// needing one matvec: exactly the multi-rhs workload GOFMM accelerates.
#include <cmath>
#include <cstdio>

#include "core/gofmm.hpp"
#include "la/blas.hpp"
#include "matrices/zoo.hpp"

using namespace gofmm;

int main() {
  // make_matrix hands back sole ownership; converting to shared_ptr lets
  // compress() share it, so the operator stays valid on its own.
  std::shared_ptr<SPDMatrix<double>> k = zoo::make_matrix<double>("K02", 4096);
  const index_t n = k->size();

  const Config cfg = Config::defaults()
                         .with_leaf_size(128)
                         .with_max_rank(128)
                         .with_tolerance(1e-7)
                         .with_kappa(32)
                         .with_budget(0.03);
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  std::printf("compression: %.2fs, avg rank %.1f\n", kc.stats().total_seconds,
              kc.stats().avg_rank);

  // Hutchinson probes, evaluated in one blocked matvec.
  const index_t probes = 64;
  la::Matrix<double> z(n, probes);
  Prng rng(5);
  for (index_t j = 0; j < probes; ++j)
    for (index_t i = 0; i < n; ++i)
      z(i, j) = rng.uniform() < 0.5 ? -1.0 : 1.0;  // Rademacher

  EvalWorkspace<double> ws;
  la::Matrix<double> hz = kc.apply(z, ws);
  std::printf("64 probe matvecs in %.3fs (%.1f GFLOP/s)\n", ws.last.seconds,
              ws.last.gflops());

  double trace_est = 0;
  for (index_t j = 0; j < probes; ++j)
    trace_est += la::dot(n, z.col(j), hz.col(j));
  trace_est /= double(probes);

  // Exact trace is the diagonal sum — available from the entry oracle.
  double trace_exact = 0;
  for (index_t i = 0; i < n; ++i) trace_exact += double(k->entry(i, i));

  std::printf("tr(H) exact   = %.6e\n", trace_exact);
  std::printf("tr(H) approx  = %.6e  (rel err %.2e, %lld probes)\n",
              trace_est, std::abs(trace_est - trace_exact) / trace_exact,
              (long long)probes);

  // Second moment tr(H^2) = E[ ||H z||^2 ] from the same probe block —
  // together with tr(H) this bounds the spectral spread of the Hessian,
  // a standard UQ diagnostic.
  double tr2_est = 0;
  for (index_t j = 0; j < probes; ++j)
    tr2_est += la::dot(n, hz.col(j), hz.col(j));
  tr2_est /= double(probes);
  std::printf("tr(H^2) approx = %.6e (=> mean eigenvalue %.4e, rms %.4e)\n",
              tr2_est, trace_est / double(n), std::sqrt(tr2_est / double(n)));
  return 0;
}
