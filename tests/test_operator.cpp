// Tests of the unified CompressedOperator API: const thread-safe apply()
// with caller-owned workspaces, shared ownership of the input oracle,
// Config validation/builders, and the blocked solvers running against
// every backend through the one interface.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/aca.hpp"
#include "baselines/hodlr.hpp"
#include "baselines/rand_hss.hpp"
#include "core/gofmm.hpp"
#include "core/solvers.hpp"
#include "la/blas.hpp"
#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"

namespace gofmm {
namespace {

std::shared_ptr<zoo::KernelSPD<double>> test_kernel(index_t n,
                                                    double bandwidth = 1.0,
                                                    std::uint64_t seed = 1) {
  zoo::KernelParams p;
  p.kind = zoo::KernelKind::Gaussian;
  p.bandwidth = bandwidth;
  p.ridge = 1e-6;
  return std::make_shared<zoo::KernelSPD<double>>(
      zoo::gaussian_mixture_cloud<double>(3, n, 6, 0.15, seed), p);
}

Config small_config() {
  return Config::defaults()
      .with_leaf_size(32)
      .with_max_rank(32)
      .with_tolerance(1e-7)
      .with_kappa(8)
      .with_budget(0.05)
      .with_num_workers(2);
}

la::Matrix<double> dense_matvec(const SPDMatrix<double>& k,
                                const la::Matrix<double>& w) {
  la::Matrix<double> kd = k.dense();
  la::Matrix<double> exact(k.size(), w.cols());
  la::gemm(la::Op::None, la::Op::None, 1.0, kd, w, 0.0, exact);
  return exact;
}

// ------------------------------------------------------- concurrency ----

class ConcurrentEvaluate : public ::testing::TestWithParam<rt::Engine> {};

TEST_P(ConcurrentEvaluate, ManyThreadsMatchSerialExactly) {
  // The tentpole contract: one compressed matrix, N threads, each runs
  // matvecs concurrently through the const apply() with its own workspace,
  // and every result is bit-identical to the serial one.
  const index_t n = 512;
  auto k = test_kernel(n, 0.3);
  Config cfg = small_config().with_engine(GetParam());
  auto kc = CompressedMatrix<double>::compress(k, cfg);

  constexpr int kThreads = 6;
  constexpr int kRepeats = 3;
  std::vector<la::Matrix<double>> inputs;
  std::vector<la::Matrix<double>> serial;
  for (int t = 0; t < kThreads; ++t) {
    inputs.push_back(la::Matrix<double>::random_normal(n, 2, 100 + t));
    serial.push_back(kc.apply(inputs.back()));
  }

  std::vector<double> worst(kThreads, 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      EvalWorkspace<double> ws;  // per-thread workspace, reused across calls
      for (int rep = 0; rep < kRepeats; ++rep) {
        la::Matrix<double> u = kc.apply(inputs[std::size_t(t)], ws);
        worst[std::size_t(t)] = std::max(
            worst[std::size_t(t)], la::diff_fro(u, serial[std::size_t(t)]));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(worst[std::size_t(t)], 0.0) << "thread " << t;
}

INSTANTIATE_TEST_SUITE_P(Engines, ConcurrentEvaluate,
                         ::testing::Values(rt::Engine::Heft,
                                           rt::Engine::LevelByLevel,
                                           rt::Engine::OmpTask));

TEST(ConcurrentEvaluate, PooledEvaluatePathIsAlsoSafe) {
  // evaluate() (internal workspace pool) from many threads at once.
  const index_t n = 384;
  auto k = test_kernel(n, 0.3);
  auto kc = CompressedMatrix<double>::compress(k, small_config());
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 3, 42);
  const la::Matrix<double> ref = kc.evaluate(w);

  std::vector<std::thread> threads;
  std::vector<double> diffs(8, -1.0);
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&, t] {
      diffs[std::size_t(t)] = la::diff_fro(kc.evaluate(w), ref);
    });
  for (auto& th : threads) th.join();
  for (double d : diffs) EXPECT_EQ(d, 0.0);
}

TEST(ConcurrentEvaluate, UncachedBlocksReadOracleConcurrently) {
  const index_t n = 256;
  auto k = test_kernel(n, 0.3);
  Config cfg = small_config().with_cache_blocks(false);
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 9);
  const la::Matrix<double> ref = kc.apply(w);

  std::vector<std::thread> threads;
  std::vector<double> diffs(4, -1.0);
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      EvalWorkspace<double> ws;
      diffs[std::size_t(t)] = la::diff_fro(kc.apply(w, ws), ref);
    });
  for (auto& th : threads) th.join();
  for (double d : diffs) EXPECT_EQ(d, 0.0);
}

// -------------------------------------------------- shared ownership ----

TEST(SharedOwnership, OperatorKeepsOracleAliveAfterHandleDropped) {
  auto kc = [] {
    auto k = test_kernel(256, 0.3);
    Config cfg = small_config().with_cache_blocks(false);  // needs the oracle
    return CompressedMatrix<double>::compress_unique(k, cfg);
    // `k` goes out of scope here; the operator holds the only reference.
  }();
  la::Matrix<double> w = la::Matrix<double>::random_normal(256, 2, 11);
  la::Matrix<double> u = kc->apply(w);
  EXPECT_LT(kc->estimate_error(w, u, 64), 1e-3);
}

TEST(SharedOwnership, BorrowWrapsWithoutOwning) {
  auto k = test_kernel(128, 0.3);
  long use_before = k.use_count();
  {
    auto borrowed = borrow(*k);
    EXPECT_EQ(k.use_count(), use_before);  // no ownership taken
    EXPECT_EQ(borrowed.get(), k.get());
  }
}

// ------------------------------------------------------- validation ----

TEST(ConfigValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(Config::defaults().validate());
}

TEST(ConfigValidate, RejectsBadLeafSize) {
  EXPECT_THROW(Config::defaults().with_leaf_size(0).validate(), ConfigError);
  EXPECT_THROW(Config::defaults().with_leaf_size(-5).validate(), ConfigError);
}

TEST(ConfigValidate, RejectsBadBudget) {
  EXPECT_THROW(Config::defaults().with_budget(-0.1).validate(), ConfigError);
  EXPECT_THROW(Config::defaults().with_budget(1.5).validate(), ConfigError);
  EXPECT_THROW(Config::defaults().with_budget(
                   std::numeric_limits<double>::quiet_NaN()).validate(),
               ConfigError);
}

TEST(ConfigValidate, RejectsBadSampleFactor) {
  EXPECT_THROW(Config::defaults().with_sample_factor(0.0).validate(),
               ConfigError);
  EXPECT_THROW(Config::defaults().with_sample_factor(-2.0).validate(),
               ConfigError);
}

TEST(ConfigValidate, RejectsBadRankAndKappa) {
  EXPECT_THROW(Config::defaults().with_max_rank(0).validate(), ConfigError);
  EXPECT_THROW(Config::defaults().with_kappa(0).validate(), ConfigError);
}

TEST(ConfigValidate, ErrorsAreStdInvalidArgument) {
  // The typed hierarchy stays catchable as the legacy standard type.
  EXPECT_THROW(Config::defaults().with_budget(7.0).validate(),
               std::invalid_argument);
  auto k = test_kernel(64);
  EXPECT_THROW(CompressedMatrix<double>::compress(
                   k, Config::defaults().with_leaf_size(0)),
               ConfigError);
}

TEST(ConfigValidate, DimensionErrorsAreTyped) {
  auto k = test_kernel(64);
  auto kc = CompressedMatrix<double>::compress(k, small_config());
  la::Matrix<double> w_bad(32, 1);
  EXPECT_THROW(kc.apply(w_bad), DimensionError);
  EXPECT_THROW(kc.evaluate(w_bad), DimensionError);
}

// ------------------------------------------------ unified interface ----

TEST(OperatorInterface, AllBackendsServeTheSameMatrix) {
  // One smooth kernel matrix, four backends, one loop — the acceptance
  // criterion of the API redesign.
  const index_t n = 320;
  auto k = test_kernel(n, 2.0);  // wide bandwidth: globally low-rank-ish
  std::vector<std::unique_ptr<CompressedOperator<double>>> ops;

  ops.push_back(CompressedMatrix<double>::compress_unique(
      k, small_config().with_max_rank(96).with_tolerance(1e-8)));
  baseline::HodlrOptions hopts;
  hopts.leaf_size = 64;
  hopts.tolerance = 1e-9;
  hopts.max_rank = 256;
  ops.push_back(std::make_unique<baseline::Hodlr<double>>(*k, hopts));
  baseline::RandHssOptions sopts;
  sopts.leaf_size = 64;
  sopts.max_rank = 160;
  sopts.tolerance = 1e-9;
  ops.push_back(std::make_unique<baseline::RandHss<double>>(*k, sopts));
  ops.push_back(std::make_unique<baseline::AcaLowRank<double>>(*k, 1e-9,
                                                               /*max_rank=*/n));

  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 3, 21);
  const la::Matrix<double> exact = dense_matvec(*k, w);
  EvalWorkspace<double> ws;  // one workspace reused across ALL backends
  for (const auto& op : ops) {
    EXPECT_EQ(op->size(), n) << op->name();
    la::Matrix<double> u = op->apply(w, ws);
    EXPECT_LT(la::diff_fro(u, exact), 1e-3 * la::norm_fro(exact))
        << op->name();
    EXPECT_GT(op->memory_bytes(), 0u) << op->name();
    EXPECT_GE(op->operator_stats().compress_seconds, 0.0) << op->name();
    EXPECT_GE(ws.last.seconds, 0.0) << op->name();
  }
}

TEST(OperatorInterface, ApplyReportsStatsIntoWorkspace) {
  const index_t n = 256;
  auto k = test_kernel(n, 0.3);
  auto kc = CompressedMatrix<double>::compress(k, small_config());
  EvalWorkspace<double> ws;
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 4, 33);
  kc.apply(w, ws);
  EXPECT_GT(ws.last.flops, 0u);
  EXPECT_GT(ws.last.seconds, 0.0);
  EXPECT_EQ(kc.last_eval_stats().flops, 0u);  // pool path not used

  kc.evaluate(w);
  EXPECT_GT(kc.last_eval_stats().flops, 0u);
}

// ------------------------------------------- solvers on the interface ----

TEST(BlockedCg, SolvesMultipleRhsAgainstAnyBackend) {
  const index_t n = 320;
  auto k = test_kernel(n, 1.0);
  auto kc = CompressedMatrix<double>::compress(
      k, small_config().with_max_rank(96).with_tolerance(1e-8));
  baseline::HodlrOptions hopts;
  hopts.leaf_size = 64;
  hopts.tolerance = 1e-9;
  hopts.max_rank = 256;
  baseline::Hodlr<double> h(*k, hopts);

  const index_t r = 3;
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, r, 55);
  const double lambda = 1.0;
  for (const CompressedOperator<double>* op :
       std::initializer_list<const CompressedOperator<double>*>{&kc, &h}) {
    la::Matrix<double> x;
    SolveReport rep = conjugate_gradient(
        *op, lambda, b, x,
        SolveOptions::defaults().with_target_residual(1e-9).with_max_iterations(
            500));
    EXPECT_TRUE(rep.converged) << op->name();
    ASSERT_EQ(rep.column_residuals.size(), std::size_t(r)) << op->name();
    for (double rr : rep.column_residuals) EXPECT_LE(rr, 1e-9);

    // Check against the operator itself, column by column.
    la::Matrix<double> ax = op->apply(x);
    for (index_t j = 0; j < r; ++j) {
      double num = 0;
      double den = 0;
      for (index_t i = 0; i < n; ++i) {
        const double d = ax(i, j) + lambda * x(i, j) - b(i, j);
        num += d * d;
        den += b(i, j) * b(i, j);
      }
      EXPECT_LT(std::sqrt(num / den), 1e-7)
          << op->name() << " column " << j;
    }
  }
}

TEST(BlockedCg, BlockedSolveMatchesColumnwiseSolves) {
  const index_t n = 256;
  auto k = test_kernel(n, 1.0);
  auto kc = CompressedMatrix<double>::compress(
      k, small_config().with_max_rank(96).with_tolerance(1e-8));
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 3, 77);

  la::Matrix<double> x_blocked;
  const SolveOptions tight =
      SolveOptions::defaults().with_target_residual(1e-10).with_max_iterations(
          500);
  conjugate_gradient<double>(kc, 0.5, b, x_blocked, tight);
  for (index_t j = 0; j < b.cols(); ++j) {
    la::Matrix<double> bj(n, 1);
    std::copy_n(b.col(j), n, bj.col(0));
    la::Matrix<double> xj;
    conjugate_gradient<double>(kc, 0.5, bj, xj, tight);
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(xj(i, 0), x_blocked(i, j), 1e-8) << "column " << j;
  }
}

TEST(BlockedCg, MixedZeroAndNonzeroColumns) {
  const index_t n = 192;
  auto k = test_kernel(n, 1.0);
  auto kc = CompressedMatrix<double>::compress(
      k, small_config().with_max_rank(64));
  la::Matrix<double> b(n, 2);  // column 0 zero, column 1 random
  la::Matrix<double> rhs = la::Matrix<double>::random_normal(n, 1, 88);
  std::copy_n(rhs.col(0), n, b.col(1));

  la::Matrix<double> x;
  SolveReport rep = conjugate_gradient<double>(
      kc, 1.0, b, x,
      SolveOptions::defaults().with_max_iterations(300));
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.column_residuals[0], 0.0);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(x(i, 0), 0.0);
}

TEST(BlockedCg, RejectsAliasedSolutionAndRhs) {
  // x.resize() discards contents, so cg(a, λ, b, b) would silently solve
  // against an all-zero right-hand side — must throw instead.
  const index_t n = 96;
  auto k = test_kernel(n, 1.0);
  auto kc = CompressedMatrix<double>::compress(
      k, small_config().with_max_rank(64));
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 1, 12);
  EXPECT_THROW(conjugate_gradient<double>(
                   kc, 1.0, b, b,
                   SolveOptions::defaults().with_max_iterations(10)),
               Error);
}

TEST(PowerIterationInterface, RunsOnBaselineBackends) {
  const index_t n = 256;
  auto k = test_kernel(n, 2.0);
  baseline::HodlrOptions hopts;
  hopts.leaf_size = 64;
  hopts.tolerance = 1e-9;
  hopts.max_rank = 256;
  baseline::Hodlr<double> h(*k, hopts);
  auto kc = CompressedMatrix<double>::compress(
      k, small_config().with_max_rank(96).with_tolerance(1e-9));

  auto eig_h = power_iteration<double>(h, 1, 60, 3);
  auto eig_g = power_iteration<double>(kc, 1, 60, 3);
  ASSERT_EQ(eig_h.size(), 1u);
  EXPECT_NEAR(eig_h[0], eig_g[0], 1e-3 * std::abs(eig_h[0]));
}

// ------------------------------------------------ estimate_error clamp ----

TEST(EstimateError, PinnedToExactErrorWhenSampleCoversAllRows) {
  // Sampling must be WITHOUT replacement: when N <= sample_rows the clamp
  // makes the sample exactly {0..N-1}, so the estimator must equal the
  // exact relative Frobenius error. Sampling with replacement would
  // double-count some rows and drop others, biasing the estimate — this
  // pin is the regression test for that bug class.
  const index_t n = 40;  // below the default 100-row sample
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(
      k, small_config().with_leaf_size(8).with_kappa(4));
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 3, 67);
  la::Matrix<double> u = kc.apply(w);

  const la::Matrix<double> exact = dense_matvec(*k, w);
  const double exact_err = la::diff_fro(u, exact) / la::norm_fro(exact);
  // Any sample size >= n and any seed must give the same, exact answer
  // (only the summation order differs — allow round-off).
  for (std::uint64_t seed : {1234ull, 99ull}) {
    EXPECT_NEAR(kc.estimate_error(w, u, 100, seed), exact_err,
                1e-12 * (1.0 + exact_err));
    EXPECT_NEAR(kc.estimate_error(w, u, n, seed), exact_err,
                1e-12 * (1.0 + exact_err));
  }
}

TEST(EstimateError, SampleClampedAtSmallN) {
  const index_t n = 40;  // below the default 100-row sample
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(
      k, small_config().with_leaf_size(8).with_kappa(4));
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 66);
  la::Matrix<double> u = kc.apply(w);
  // Default sample_rows = 100 > n must clamp, not crash or oversample.
  const double err = kc.estimate_error(w, u);
  EXPECT_GE(err, 0.0);
  EXPECT_LT(err, 1e-2);
  EXPECT_THROW(kc.estimate_error(w, u, 0), Error);
}

}  // namespace
}  // namespace gofmm
