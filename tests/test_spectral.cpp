// Spectral workloads test tier: golden eigenvalue regression + property
// tests over src/spectral/.
//
// Three layers, mirroring the accuracy contract in docs/SPECTRAL.md:
//
//  * Golden tier — for every zoo entry × Factorizable backend the 2
//    smallest and 2 largest eigenvalues of the COMPRESSED operator K̃,
//    under the pinned test_golden configurations, compared against
//    checked-in goldens (tests/golden/spectral_<backend>.json). The sweep
//    simultaneously asserts the solver contract: every returned pair has
//    true residual ‖K̃v − λv‖ ≤ 1e-8 ‖K̃‖ and the Ritz blocks are
//    orthonormal. --update-golden regenerates, --nightly lifts N to the
//    catalog defaults (where the residual gate scales with each
//    backend's measured solve-consistency floor — see measure_spectrum).
//  * Property tier — dense cross-checks on materialized K̃ (la::syev,
//    la::ldlt_inertia): eigenvalues match the dense spectrum, certified
//    bisection counts equal dense counts at every probed shift, spectrum
//    slices partition the spectrum, diag((K̃+λI)⁻¹) matches the dense
//    inverse, stochastic trace CIs cover the exact trace on ≥95% of
//    seeded trials, SLQ logdet tracks the exact one, and every estimator
//    is bit-reproducible under a fixed seed.
//  * Refactorize fuzz — randomized sign-crossing shift schedules assert
//    refactorize(λ) is bit-identical to a fresh factorize(λ) (solves and
//    logdet compare EXACTLY) and that exact inertia matches the dense
//    eigenvalue count at every visited shift.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/hodlr.hpp"
#include "baselines/rand_hss.hpp"
#include "core/gofmm.hpp"
#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "la/ldlt.hpp"
#include "matrices/zoo.hpp"
#include "spectral/eigs.hpp"
#include "spectral/selected_inverse.hpp"
#include "spectral/trace.hpp"
#include "util/random.hpp"

#ifndef GOFMM_GOLDEN_DIR
#define GOFMM_GOLDEN_DIR "tests/golden"
#endif

namespace gofmm {
namespace {

bool g_update_golden = false;
bool g_nightly = false;

/// PR-tier size cap (smaller than test_golden's 512: every entry here
/// additionally pays a factorization and ~2 Lanczos runs, and the
/// property tier pays dense O(n³) cross-checks).
constexpr index_t kMaxN = 256;

/// The three factorization-capable backends (ACA has no solve path).
const char* const kBackends[] = {"gofmm", "hodlr", "rand_hss"};

/// Builds a backend under the pinned golden-harness configuration
/// (matching tests/test_golden.cpp, with ONE deliberate deviation: the
/// gofmm budget is 0.0, not 0.03. Shift-invert eigensolving requires a
/// FACTORIZATION-CONSISTENT operator — the ULV engine factors exactly
/// the HSS part, while budget > 0 adds near-field S-list terms to
/// apply() that the factorization never sees, so at catalog sizes
/// solve() inverts a different operator than apply() evaluates and the
/// true residuals ‖K̃v − λv‖ floor at the budget term's magnitude. With
/// budget 0 the solve-consistency probe ‖K̃⁻¹(K̃x) − x‖/‖x‖ measures
/// ~1e-9 at N = 4096 where budget 0.03 measures O(1). See
/// docs/SPECTRAL.md "Factorization consistency".)
template <typename T>
std::unique_ptr<CompressedOperator<T>> build_backend(
    const std::string& backend, std::shared_ptr<const SPDMatrix<T>> k) {
  if (backend == "gofmm") {
    const Config cfg = Config::defaults()
                           .with_leaf_size(64)
                           .with_max_rank(64)
                           .with_tolerance(1e-5)
                           .with_kappa(16)
                           .with_budget(0.0)
                           .with_engine(rt::Engine::LevelByLevel)
                           .with_num_workers(2);
    return CompressedMatrix<T>::compress_unique(std::move(k), cfg);
  }
  if (backend == "hodlr") {
    baseline::HodlrOptions o;
    o.leaf_size = 64;
    o.tolerance = 1e-5;
    o.max_rank = 256;
    return std::make_unique<baseline::Hodlr<T>>(*k, o);
  }
  if (backend == "rand_hss") {
    baseline::RandHssOptions o;
    o.leaf_size = 64;
    o.max_rank = 96;
    o.tolerance = 1e-5;
    return std::make_unique<baseline::RandHss<T>>(*k, o);
  }
  ADD_FAILURE() << "unknown backend " << backend;
  return nullptr;
}

std::unique_ptr<CompressedOperator<double>> build_zoo(
    const std::string& backend, const std::string& matrix, index_t n) {
  std::shared_ptr<const SPDMatrix<double>> k(
      zoo::make_matrix<double>(matrix, n));
  return build_backend<double>(backend, std::move(k));
}

/// Materializes the COMPRESSED operator K̃ = op(I), symmetrized — the
/// dense reference every property test compares against. (Comparing to
/// the oracle K would conflate solver error with compression error.)
la::Matrix<double> materialize(const CompressedOperator<double>& op) {
  const index_t n = op.size();
  la::Matrix<double> a = op.apply(la::Matrix<double>::identity(n));
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) {
      const double s = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = s;
      a(j, i) = s;
    }
  return a;
}

/// ‖VᵀV − I‖_max of a Ritz block.
double orthogonality_defect(const la::Matrix<double>& v) {
  double worst = 0;
  for (index_t i = 0; i < v.cols(); ++i)
    for (index_t j = i; j < v.cols(); ++j) {
      const double g = la::dot(v.rows(), v.col(i), v.col(j));
      worst = std::max(worst, std::abs(g - (i == j ? 1.0 : 0.0)));
    }
  return worst;
}

// ---------------------------------------------------------------------------
// Golden tier
// ---------------------------------------------------------------------------

struct SpectralRecord {
  std::string matrix;
  index_t n = 0;
  double lam_min0 = 0, lam_min1 = 0;  ///< two smallest eigenvalues of K̃
  double lam_max1 = 0, lam_max0 = 0;  ///< two largest (lam_max0 extreme)
};

std::string golden_path(const std::string& set) {
  return std::string(GOFMM_GOLDEN_DIR) + "/spectral_" + set +
         (g_nightly ? "_nightly" : "") + ".json";
}

void write_golden(const std::string& set,
                  const std::vector<SpectralRecord>& recs) {
  std::ofstream out(golden_path(set));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(set);
  out << "{\n  \"backend\": \"" << set << "\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    char line[320];
    std::snprintf(line, sizeof line,
                  "    {\"matrix\": \"%s\", \"n\": %lld, \"lam_min0\": %.17e, "
                  "\"lam_min1\": %.17e, \"lam_max1\": %.17e, \"lam_max0\": "
                  "%.17e}%s\n",
                  recs[i].matrix.c_str(), static_cast<long long>(recs[i].n),
                  recs[i].lam_min0, recs[i].lam_min1, recs[i].lam_max1,
                  recs[i].lam_max0, i + 1 < recs.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

std::map<std::string, SpectralRecord> read_golden(const std::string& set) {
  std::map<std::string, SpectralRecord> out;
  std::ifstream in(golden_path(set));
  if (!in.good()) return out;
  std::string line;
  while (std::getline(in, line)) {
    SpectralRecord rec;
    char mat[64] = {0};
    long long n = 0;
    if (std::sscanf(line.c_str(),
                    " {\"matrix\": \"%63[^\"]\", \"n\": %lld, \"lam_min0\": "
                    "%lg, \"lam_min1\": %lg, \"lam_max1\": %lg, \"lam_max0\": "
                    "%lg",
                    mat, &n, &rec.lam_min0, &rec.lam_min1, &rec.lam_max1,
                    &rec.lam_max0) == 6) {
      rec.matrix = mat;
      rec.n = index_t(n);
      out[rec.matrix] = rec;
    }
  }
  return out;
}

/// Runs eigs at both spectrum ends on one operator, asserting the solver
/// contract, and returns the golden record.
SpectralRecord measure_spectrum(const std::string& tag,
                                const std::string& matrix,
                                CompressedOperator<double>& op) {
  SpectralRecord rec;
  rec.matrix = matrix;
  rec.n = op.size();

  // The graph/pseudo-spectral entries' extreme clusters (relative gaps
  // down to ~1e-4, shrinking to ~3e-6 at catalog sizes) need more
  // Lanczos room than the automatic max(4k+16, 64) cap.
  const spectral::EigsOptions opts = spectral::EigsOptions().with_k(5)
      .with_max_subspace(g_nightly ? 320 : 192);
  spectral::EigsResult<double> large = spectral::eigs(
      op, 5, spectral::Which::Largest, /*sigma=*/0.0, opts);
  // Plain Lanczos cannot separate the K15/K16-style top clusters at any
  // reasonable subspace — escalate with the subsystem's own medicine:
  // shift-invert from just ABOVE the spectrum (σ = 1.005·λ̂_max, with
  // λ̂_max from the plain run, accurate to ~1e-4 long before the cluster
  // resolves) magnifies the cluster's relative gaps ~50× and converges
  // in under 100 solves. At catalog sizes the clusters tighten another
  // two decades, so a second stage moves σ in to (1 + 1e-3)·λ̂_max —
  // another ~5× magnification, using the sharper λ̂_max from stage 1.
  if (!large.converged && !large.values.empty()) {
    const double sigma = large.values[0] * 1.005;
    large = spectral::eigs(op, 5, spectral::Which::Smallest, sigma, opts);
    if (!large.converged && !large.values.empty()) {
      const double top =
          *std::max_element(large.values.begin(), large.values.end());
      large = spectral::eigs(op, 5, spectral::Which::Smallest,
                             top * (1.0 + 1e-3), opts);
    }
  }
  EXPECT_TRUE(large.converged) << tag << ": Largest did not converge";
  spectral::EigsResult<double> small = spectral::eigs(
      op, 5, spectral::Which::Smallest, /*sigma=*/0.0, opts);
  EXPECT_TRUE(small.converged) << tag << ": Smallest did not converge";
  if (large.values.size() < 2 || small.values.size() < 2) {
    ADD_FAILURE() << tag << ": fewer than 2 eigenpairs at a spectrum end";
    return rec;
  }
  const double norm = std::abs(large.values[0]);  // ‖K̃‖₂ ≈ |λ_max|

  // The residual contract is bounded below by how consistently the
  // backend's solve inverts its own apply: Lanczos iterates on
  // solve(apply(·)), so eigenpair residuals measured against apply()
  // floor at the operator's solve-consistency error. Budget-0 GOFMM and
  // RandHss measure ~1e-9 at any size, but HODLR's Woodbury coupling
  // loses ~1e-6 relative on the near-singular kernels at catalog sizes.
  // The nightly tier therefore measures the floor on a seeded probe
  // (the Smallest run above left the operator factorized at λ = 0) and
  // scales the gate to 10× it, capped at 1e-4; the PR tier keeps the
  // strict paper-contract 1e-8.
  double rel_tol = 1e-8;
  if (g_nightly) {
    const la::Matrix<double> x =
        la::Matrix<double>::random_normal(rec.n, 1, /*seed=*/20817);
    const la::Matrix<double> z = op.factorizable()->solve(op.apply(x));
    double num = 0.0, den = 0.0;
    for (index_t i = 0; i < rec.n; ++i) {
      const double d = z(i, 0) - x(i, 0);
      num += d * d;
      den += x(i, 0) * x(i, 0);
    }
    const double floor = std::sqrt(num / den);
    rel_tol = std::max(1e-8, std::min(1e-4, 10.0 * floor));
  }

  // The accuracy contract: 10 extreme pairs, ‖K̃v − λv‖ ≤ rel_tol ‖K̃‖.
  for (const auto* r : {&large, &small}) {
    EXPECT_EQ(r->values.size(), 5u) << tag;
    for (std::size_t j = 0; j < r->residuals.size(); ++j)
      EXPECT_LE(r->residuals[j], rel_tol * norm)
          << tag << ": pair " << j << " (lambda " << r->values[j] << ")";
    EXPECT_LE(orthogonality_defect(r->vectors), 1e-8) << tag;
  }

  rec.lam_min0 = small.values[0];
  rec.lam_min1 = small.values[1];
  rec.lam_max0 = large.values[0];
  rec.lam_max1 = large.values[1];
  return rec;
}

class SpectralGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(SpectralGolden, ExtremeEigenvaluesMatchGolden) {
  const std::string backend = GetParam();
  std::vector<SpectralRecord> measured;
  for (const zoo::ZooInfo& info : zoo::catalog()) {
    const index_t n_req =
        g_nightly ? info.default_n : std::min(info.default_n, kMaxN);
    auto op = build_zoo(backend, info.name, n_req);
    if (op == nullptr) break;
    measured.push_back(
        measure_spectrum(backend + "/" + info.name, info.name, *op));
  }

  if (g_update_golden) {
    write_golden(backend, measured);
    GTEST_LOG_(INFO) << "rewrote " << golden_path(backend);
    return;
  }

  const auto golden = read_golden(backend);
  ASSERT_FALSE(golden.empty())
      << "no goldens for '" << backend << "' — run ./test_spectral "
      << "--update-golden" << (g_nightly ? " --nightly" : "")
      << " once and commit " << golden_path(backend);
  for (const SpectralRecord& now : measured) {
    const auto it = golden.find(now.matrix);
    if (it == golden.end()) {
      ADD_FAILURE() << backend << "/" << now.matrix
                    << " has no golden entry — run --update-golden";
      continue;
    }
    const SpectralRecord& g = it->second;
    EXPECT_EQ(g.n, now.n) << backend << "/" << now.matrix
                          << ": harness size changed — regenerate goldens";
    // Deterministic compression + deterministic Lanczos: eigenvalues are
    // stable to round-off; 1e-6 relative (floored by the operator scale)
    // absorbs SIMD-dispatch and compiler reassociation noise only.
    const double floor = 1e-9 * std::abs(g.lam_max0);
    for (auto [got, want] :
         {std::pair{now.lam_min0, g.lam_min0}, {now.lam_min1, g.lam_min1},
          {now.lam_max1, g.lam_max1}, {now.lam_max0, g.lam_max0}})
      EXPECT_NEAR(got, want, 1e-6 * std::abs(want) + floor)
          << backend << "/" << now.matrix << " eigenvalue drifted";
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, SpectralGolden,
                         ::testing::ValuesIn(kBackends));

// ---------------------------------------------------------------------------
// Property tier: dense cross-checks on materialized K̃
// ---------------------------------------------------------------------------

class SpectralProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(SpectralProperties, EigenvaluesMatchDenseDecomposition) {
  auto op = build_zoo(GetParam(), "K02", 256);
  const la::Matrix<double> a = materialize(*op);
  std::vector<double> w;
  ASSERT_TRUE(la::syev(a, w));
  const double scale = std::max(std::abs(w.front()), std::abs(w.back()));

  const spectral::EigsOptions opts =
      spectral::EigsOptions().with_k(5).with_max_subspace(192);
  const auto small =
      spectral::eigs(*op, 5, spectral::Which::Smallest, 0.0, opts);
  const auto large =
      spectral::eigs(*op, 5, spectral::Which::Largest, 0.0, opts);
  ASSERT_TRUE(small.converged);
  ASSERT_TRUE(large.converged);
  for (int j = 0; j < 5; ++j) {
    EXPECT_NEAR(small.values[std::size_t(j)], w[std::size_t(j)], 1e-7 * scale)
        << "smallest #" << j;
    EXPECT_NEAR(large.values[std::size_t(j)], w[w.size() - 1 - std::size_t(j)],
                1e-7 * scale)
        << "largest #" << j;
  }
}

TEST_P(SpectralProperties, BisectionCountsMatchDenseInertia) {
  const std::string backend = GetParam();
  auto op = build_zoo(backend, "K02", 256);
  const la::Matrix<double> a = materialize(*op);
  const index_t n = a.rows();
  std::vector<double> w;
  ASSERT_TRUE(la::syev(a, w));

  if (backend == "hodlr") {
    // Woodbury elimination only certifies a leaf-interlacing lower bound,
    // and the API says so loudly rather than returning a wrong count.
    EXPECT_THROW(spectral::eigenvalue_count_below(*op, w[n / 2]), StateError);
    return;
  }

  const double spread = w.back() - w.front();
  // Probe shifts at spectrum quantile MIDPOINTS (never on an eigenvalue),
  // plus strictly outside both ends.
  std::vector<std::pair<double, index_t>> probes = {
      {w.front() - 0.05 * spread, 0}, {w.back() + 0.05 * spread, n}};
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const index_t i = index_t(q * double(n - 1));
    // Skip knife-edge midpoints: K02 has numerically repeated interior
    // eigenvalues (gaps down to 5e-16), where "between" does not exist in
    // double precision and the probe would test rounding luck, not the
    // inertia property.
    if (w[std::size_t(i) + 1] - w[std::size_t(i)] < 1e-10 * spread) continue;
    probes.emplace_back(
        0.5 * (w[std::size_t(i)] + w[std::size_t(i) + 1]), i + 1);
  }
  for (const auto& [sigma, expected] : probes) {
    // Exact-inertia certification vs the dense count — equality, not
    // approximation: this is the ISSUE's "bisection counts == dense
    // counts at every probed shift".
    EXPECT_EQ(spectral::eigenvalue_count_below(*op, sigma), expected)
        << backend << " at sigma " << sigma;
  }

  // eigenvalue_count composes two probes; slice_spectrum partitions.
  EXPECT_EQ(spectral::eigenvalue_count(*op, probes[0].first, probes[1].first),
            n);
  const auto slices = spectral::slice_spectrum(
      *op, probes[0].first, probes[1].first, /*max_per_slice=*/32);
  index_t total = 0;
  double prev_hi = probes[0].first;
  for (const auto& s : slices) {
    EXPECT_GE(s.lo, prev_hi - 1e-12);
    EXPECT_GT(s.count, 0);
    total += s.count;
    prev_hi = s.hi;
  }
  EXPECT_EQ(total, n);
}

TEST_P(SpectralProperties, SelectedInverseDiagMatchesDenseInverse) {
  auto op = build_zoo(GetParam(), "K02", 256);
  const double lambda = 0.1;
  ASSERT_NE(op->factorizable(), nullptr);
  op->factorizable()->factorize(lambda);

  la::Matrix<double> a = materialize(*op);
  const index_t n = a.rows();
  for (index_t i = 0; i < n; ++i) a(i, i) += lambda;
  std::vector<index_t> ipiv;
  ASSERT_TRUE(la::sytrf_lower(a, ipiv));
  la::Matrix<double> inv = la::Matrix<double>::identity(n);
  la::sytrs_lower(a, ipiv, inv);

  // Odd block width on purpose: the last panel is ragged.
  const std::vector<double> diag =
      spectral::selected_inverse_diag(*op, /*block_cols=*/100);
  ASSERT_EQ(index_t(diag.size()), n);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(diag[std::size_t(i)], inv(i, i),
                1e-6 * std::abs(inv(i, i)))
        << "diagonal entry " << i;
}

TEST(SpectralTrace, ConfidenceIntervalsCoverExactTraceAcrossSeeds) {
  auto op = build_zoo("gofmm", "K02", 256);
  const la::Matrix<double> a = materialize(*op);
  double exact = 0;
  for (index_t i = 0; i < a.rows(); ++i) exact += a(i, i);

  // 40 deterministic seeds, 99% intervals: the run is reproducible, so
  // the ≥95% coverage gate (ISSUE acceptance) can be asserted exactly.
  // 128 probes per trial: the interval uses a normal approximation of the
  // probe mean, and K02's heavy-tailed quadratic form needs ~100 samples
  // before the approximation's coverage settles at its nominal level.
  int covered = 0;
  const int trials = 40;
  for (int s = 0; s < trials; ++s) {
    const auto est = spectral::hutchinson_trace(
        *op, spectral::TraceOptions::defaults().with_probes(128).with_seed(
                 1000 + std::uint64_t(s)));
    if (est.ci_low <= exact && exact <= est.ci_high) ++covered;
  }
  EXPECT_GE(covered, int(std::ceil(0.95 * trials)))
      << "Hutchinson 99% CIs covered the exact trace only " << covered << "/"
      << trials << " times";

  // Hutch++ under the same budget: the deflated estimate must directly
  // land within 1% — that is the point of the sketch.
  const auto hpp = spectral::hutchpp_trace(
      *op, spectral::TraceOptions::defaults().with_probes(64).with_seed(7));
  EXPECT_NEAR(hpp.estimate, exact, 0.01 * exact);
  EXPECT_GT(hpp.exact_part, 0.5 * exact)
      << "sketch should capture most of a decaying spectrum's trace";
}

TEST(SpectralTrace, InverseTraceIntervalsCoverSelectedInverseSum) {
  auto op = build_zoo("gofmm", "K02", 256);
  op->factorizable()->factorize(0.1);
  const std::vector<double> diag = spectral::selected_inverse_diag(*op);
  double exact = 0;
  for (double d : diag) exact += d;

  int covered = 0;
  const int trials = 20;
  for (int s = 0; s < trials; ++s) {
    const auto est = spectral::hutchinson_trace(
        *op, spectral::TraceOptions::defaults()
                 .with_probes(48)
                 .with_target(spectral::TraceTarget::Inverse)
                 .with_seed(2000 + std::uint64_t(s)));
    if (est.ci_low <= exact && exact <= est.ci_high) ++covered;
  }
  EXPECT_GE(covered, int(std::ceil(0.95 * trials)))
      << "inverse-trace 99% CIs covered only " << covered << "/" << trials;
}

TEST(SpectralTrace, SlqLogdetTracksExactLogdet) {
  auto op = build_zoo("gofmm", "K02", 256);
  const double lambda = 0.1;
  op->factorizable()->factorize(lambda);
  const double exact = op->factorizable()->logdet();
  const auto est = spectral::slq_logdet(
      *op, lambda,
      spectral::TraceOptions::defaults().with_probes(32).with_seed(11),
      /*lanczos_steps=*/50);
  EXPECT_NEAR(est.estimate, exact, 0.05 * std::abs(exact));
  EXPECT_LE(est.ci_low, est.estimate);
  EXPECT_GE(est.ci_high, est.estimate);
}

TEST(SpectralReproducibility, FixedSeedIsBitIdenticalAcrossRuns) {
  auto op = build_zoo("gofmm", "K04", 256);
  op->factorizable()->factorize(0.0);

  const auto opts =
      spectral::TraceOptions::defaults().with_probes(32).with_seed(42);
  const auto t1 = spectral::hutchinson_trace(*op, opts);
  const auto t2 = spectral::hutchinson_trace(*op, opts);
  // Bit-identity, not closeness: one SampleStream, one call order.
  EXPECT_EQ(t1.estimate, t2.estimate);
  EXPECT_EQ(t1.stddev, t2.stddev);
  EXPECT_EQ(t1.ci_low, t2.ci_low);
  EXPECT_EQ(t1.ci_high, t2.ci_high);
  const auto t3 = spectral::hutchinson_trace(
      *op, spectral::TraceOptions(opts).with_seed(43));
  EXPECT_NE(t1.estimate, t3.estimate) << "seed must matter";

  const auto h1 = spectral::hutchpp_trace(*op, opts);
  const auto h2 = spectral::hutchpp_trace(*op, opts);
  EXPECT_EQ(h1.estimate, h2.estimate);
  EXPECT_EQ(h1.exact_part, h2.exact_part);

  const auto e_opts = spectral::EigsOptions::defaults().with_k(4).with_seed(9);
  const auto e1 = spectral::eigs_at(*op, e_opts);
  const auto e2 = spectral::eigs_at(*op, e_opts);
  ASSERT_EQ(e1.values.size(), e2.values.size());
  for (std::size_t j = 0; j < e1.values.size(); ++j)
    EXPECT_EQ(e1.values[j], e2.values[j]);
  for (index_t j = 0; j < e1.vectors.cols(); ++j)
    for (index_t i = 0; i < e1.vectors.rows(); ++i)
      EXPECT_EQ(e1.vectors(i, j), e2.vectors(i, j));
}

INSTANTIATE_TEST_SUITE_P(Backends, SpectralProperties,
                         ::testing::ValuesIn(kBackends));

// ---------------------------------------------------------------------------
// Refactorize fuzz: sign-crossing shift schedules
// ---------------------------------------------------------------------------

class RefactorizeFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(RefactorizeFuzz, RetuneIsBitIdenticalToFreshFactorizeAcrossShifts) {
  const std::string backend = GetParam();
  const std::string matrix = "K04";
  const index_t n_req = 256;

  auto op = build_zoo(backend, matrix, n_req);
  Factorizable<double>* fact = op->factorizable();
  ASSERT_NE(fact, nullptr);
  const la::Matrix<double> a = materialize(*op);
  const index_t n = a.rows();
  std::vector<double> w;
  ASSERT_TRUE(la::syev(a, w));
  const double wmax = std::max(std::abs(w.front()), std::abs(w.back()));

  const la::Matrix<double> rhs =
      la::Matrix<double>::random_normal(n, 3, /*seed=*/314);

  // Randomized λ schedule straddling the spectrum: λ < 0 shifts cross
  // eigenvalues of K̃ (factorize(λ) factors K̃+λI), flipping leaf blocks
  // indefinite and back — exactly the retune path that must stay
  // bit-identical to a cold factorization.
  SampleStream stream(2718);
  fact->factorize(0.0);
  for (int step = 0; step < 10; ++step) {
    double lambda = stream.prng().uniform(-1.1 * wmax, 0.5 * wmax);
    // Keep probes off the (negated) eigenvalues so inertia counts are
    // well-defined.
    for (double ev : w)
      if (std::abs(lambda + ev) < 1e-9 * wmax) lambda += 1e-6 * wmax;

    fact->refactorize(lambda);

    // Fresh operator, fresh factorize at the same λ: deterministic
    // compression makes K̃ bit-identical, so every downstream number must
    // be too — solves, logdet, and inertia compare EXACTLY.
    auto fresh_op = build_zoo(backend, matrix, n_req);
    Factorizable<double>* fresh = fresh_op->factorizable();
    fresh->factorize(lambda);

    const la::Matrix<double> x1 = fact->solve(rhs);
    const la::Matrix<double> x2 = fresh->solve(rhs);
    for (index_t j = 0; j < x1.cols(); ++j)
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(x1(i, j), x2(i, j))
            << backend << " step " << step << " lambda " << lambda
            << ": retuned solve diverged from fresh factorize at (" << i
            << "," << j << ")";
    const FactorizationStats st = fact->factorization_stats();
    const FactorizationStats stf = fresh->factorization_stats();
    EXPECT_EQ(st.positive_definite, stf.positive_definite);
    if (st.positive_definite && stf.positive_definite)  // logdet throws else
      EXPECT_EQ(fact->logdet(), fresh->logdet())
          << backend << " step " << step << " lambda " << lambda;
    EXPECT_EQ(st.negative_eigenvalues, stf.negative_eigenvalues);
    EXPECT_EQ(st.exact_inertia, stf.exact_inertia);
    if (st.exact_inertia) {
      // K̃ + λI has as many negative eigenvalues as K̃ has below −λ.
      index_t dense_below = 0;
      for (double ev : w)
        if (ev < -lambda) ++dense_below;
      EXPECT_EQ(st.negative_eigenvalues, dense_below)
          << backend << " step " << step << " lambda " << lambda;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, RefactorizeFuzz,
                         ::testing::ValuesIn(kBackends));

}  // namespace
}  // namespace gofmm

/// Custom main (overrides gtest_main): --update-golden regenerates the
/// spectral goldens in the source tree; --nightly lifts the size cap to
/// the catalog defaults and reads/writes the *_nightly sets.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0)
      gofmm::g_update_golden = true;
    if (std::strcmp(argv[i], "--nightly") == 0) gofmm::g_nightly = true;
  }
  return RUN_ALL_TESTS();
}
