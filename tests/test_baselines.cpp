// Tests for the comparison codes: ACA, HODLR and the randomized HSS.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/aca.hpp"
#include "baselines/askit.hpp"
#include "baselines/hodlr.hpp"
#include "baselines/rand_hss.hpp"
#include "la/blas.hpp"
#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"

namespace gofmm::baseline {
namespace {

std::unique_ptr<zoo::KernelSPD<double>> smooth_kernel(index_t n,
                                                      double h = 1.0) {
  zoo::KernelParams p;
  p.kind = zoo::KernelKind::Gaussian;
  p.bandwidth = h;
  p.ridge = 1e-8;
  return std::make_unique<zoo::KernelSPD<double>>(
      zoo::uniform_cloud<double>(2, n, 17), p);
}

// ----------------------------------------------------------------- ACA ----

TEST(Aca, ReconstructsNumericallyLowRankBlock) {
  auto k = smooth_kernel(256, 2.0);  // wide bandwidth: low-rank off-diag
  std::vector<index_t> I(128);
  std::vector<index_t> J(128);
  std::iota(I.begin(), I.end(), index_t(0));
  std::iota(J.begin(), J.end(), index_t(128));
  auto res = aca(*k, I, J, 1e-8, 128);

  la::Matrix<double> block = k->submatrix(I, J);
  la::Matrix<double> rec = la::matmul(res.u, res.v);
  EXPECT_LT(la::diff_fro(rec, block), 1e-5 * la::norm_fro(block));
  EXPECT_LT(res.rank, 64);  // genuinely low rank
  // ACA touches O((m+n) r) entries, far less than the full block.
  EXPECT_LT(res.entries_evaluated, 128 * 128);
}

TEST(Aca, ExactRankRecovery) {
  // Rank-5 SPD-ish block via explicit factors embedded in a DenseSPD.
  la::Matrix<double> b = la::Matrix<double>::random_normal(64, 5, 71);
  la::Matrix<double> full(64, 64);
  la::gemm(la::Op::None, la::Op::Trans, 1.0, b, b, 0.0, full);
  DenseSPD<double> k(std::move(full));
  std::vector<index_t> I(32);
  std::vector<index_t> J(32);
  std::iota(I.begin(), I.end(), index_t(0));
  std::iota(J.begin(), J.end(), index_t(32));
  auto res = aca(k, I, J, 1e-10, 32);
  EXPECT_LE(res.rank, 5 + 1);
  la::Matrix<double> block = k.submatrix(I, J);
  la::Matrix<double> rec = la::matmul(res.u, res.v);
  EXPECT_LT(la::diff_fro(rec, block), 1e-7 * (1 + la::norm_fro(block)));
}

TEST(Aca, RespectsMaxRank) {
  auto k = smooth_kernel(128, 0.1);  // narrow: high-rank block
  std::vector<index_t> I(64);
  std::vector<index_t> J(64);
  std::iota(I.begin(), I.end(), index_t(0));
  std::iota(J.begin(), J.end(), index_t(64));
  auto res = aca(*k, I, J, 0.0, 7);
  EXPECT_LE(res.rank, 7);
}

TEST(Aca, EmptyBlock) {
  auto k = smooth_kernel(16);
  std::vector<index_t> I;
  std::vector<index_t> J = {1, 2};
  auto res = aca(*k, I, J, 1e-6, 8);
  EXPECT_EQ(res.rank, 0);
}

// --------------------------------------------------------------- HODLR ----

class HodlrLeafSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(HodlrLeafSizes, MatvecMatchesDense) {
  const index_t n = 400;
  auto k = smooth_kernel(n, 1.5);
  HodlrOptions opts;
  opts.leaf_size = GetParam();
  opts.tolerance = 1e-9;
  opts.max_rank = 200;
  Hodlr<double> h(*k, opts);

  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 3, 72);
  la::Matrix<double> u = h.matvec(w);
  la::Matrix<double> kd = k->dense();
  la::Matrix<double> exact(n, 3);
  la::gemm(la::Op::None, la::Op::None, 1.0, kd, w, 0.0, exact);
  EXPECT_LT(la::diff_fro(u, exact), 1e-5 * la::norm_fro(exact))
      << "leaf size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, HodlrLeafSizes,
                         ::testing::Values(16, 64, 100, 400));

TEST(Hodlr, StatsReported) {
  auto k = smooth_kernel(256, 1.0);
  HodlrOptions opts;
  opts.leaf_size = 32;
  Hodlr<double> h(*k, opts);
  EXPECT_GT(h.stats().compress_seconds, 0.0);
  EXPECT_GT(h.stats().avg_rank, 0.0);
  EXPECT_GT(h.stats().entries, 0u);
}

/// Well-conditioned SPD test operator for the direct solver: Gaussian
/// kernel plus a strong ridge (condition number ~ 1 + n/ridge eigenvalue
/// spread instead of the ~1e12 of a bare smooth kernel).
std::unique_ptr<zoo::KernelSPD<double>> ridged_kernel(index_t n) {
  zoo::KernelParams p;
  p.kind = zoo::KernelKind::Gaussian;
  p.bandwidth = 1.0;
  p.ridge = 0.5;
  return std::make_unique<zoo::KernelSPD<double>>(
      zoo::uniform_cloud<double>(2, n, 17), p);
}

class HodlrSolve : public ::testing::TestWithParam<index_t> {};

TEST_P(HodlrSolve, DirectSolverInvertsTheApproximation) {
  // Solve K̃ x = b with the Woodbury factorization, then verify with the
  // HODLR matvec: the factorization must invert the *approximate* operator
  // to near machine precision regardless of the compression tolerance.
  const index_t n = 300;
  auto k = ridged_kernel(n);
  HodlrOptions opts;
  opts.leaf_size = GetParam();
  opts.tolerance = 1e-8;
  opts.max_rank = 200;
  Hodlr<double> h(*k, opts);
  h.factorize();

  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 3, 91);
  la::Matrix<double> x = h.solve(b);
  la::Matrix<double> kx = h.matvec(x);
  EXPECT_LT(la::diff_fro(kx, b), 1e-9 * la::norm_fro(b))
      << "leaf " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, HodlrSolve,
                         ::testing::Values(32, 75, 150, 300));

TEST(Hodlr, SolveApproximatesTrueInverse) {
  // With a tight ACA tolerance the factorized solve also inverts the true
  // matrix up to the compression error.
  const index_t n = 256;
  auto k = ridged_kernel(n);
  HodlrOptions opts;
  opts.leaf_size = 32;
  opts.tolerance = 1e-10;
  opts.max_rank = 256;
  Hodlr<double> h(*k, opts);
  h.factorize();

  la::Matrix<double> x_true = la::Matrix<double>::random_normal(n, 2, 92);
  la::Matrix<double> kd = k->dense();
  la::Matrix<double> b(n, 2);
  la::gemm(la::Op::None, la::Op::None, 1.0, kd, x_true, 0.0, b);
  la::Matrix<double> x = h.solve(b);
  EXPECT_LT(la::diff_fro(x, x_true) / la::norm_fro(x_true), 1e-6);
}

TEST(Hodlr, SolveWithoutFactorizeThrows) {
  auto k = smooth_kernel(64);
  Hodlr<double> h(*k, HodlrOptions{});
  la::Matrix<double> b(64, 1);
  EXPECT_THROW(h.solve(b), std::invalid_argument);
}

TEST(Hodlr, WrongShapeThrows) {
  auto k = smooth_kernel(64);
  Hodlr<double> h(*k, HodlrOptions{});
  la::Matrix<double> w(32, 1);
  EXPECT_THROW(h.matvec(w), std::invalid_argument);
}

// ------------------------------------------------------------- RandHss ----

class RandHssLeafSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(RandHssLeafSizes, MatvecMatchesDense) {
  const index_t n = 300;
  auto k = smooth_kernel(n, 1.5);
  RandHssOptions opts;
  opts.leaf_size = GetParam();
  opts.max_rank = 150;
  opts.tolerance = 1e-9;
  RandHss<double> h(*k, opts);

  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 73);
  la::Matrix<double> u = h.matvec(w);
  la::Matrix<double> kd = k->dense();
  la::Matrix<double> exact(n, 2);
  la::gemm(la::Op::None, la::Op::None, 1.0, kd, w, 0.0, exact);
  EXPECT_LT(la::diff_fro(u, exact), 1e-4 * la::norm_fro(exact))
      << "leaf size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LeafSizes, RandHssLeafSizes,
                         ::testing::Values(25, 64, 128, 300));

TEST(RandHss, StatsSplitSketchAndBuild) {
  auto k = smooth_kernel(256, 1.0);
  RandHssOptions opts;
  opts.leaf_size = 32;
  opts.max_rank = 64;
  RandHss<double> h(*k, opts);
  EXPECT_GT(h.stats().sketch_seconds, 0.0);
  EXPECT_GT(h.stats().build_seconds, 0.0);
  EXPECT_GT(h.stats().avg_rank, 0.0);
}

TEST(RandHss, RankCapLimitsAccuracyOnHardMatrix) {
  // Narrow-bandwidth kernel in lexicographic order: HSS with a small rank
  // cap must show visible error — the Table 3 "STRUMPACK fails on K04/K07"
  // phenomenon in miniature.
  const index_t n = 256;
  auto k = smooth_kernel(n, 0.05);
  RandHssOptions opts;
  opts.leaf_size = 32;
  opts.max_rank = 8;
  opts.tolerance = 0;
  RandHss<double> h(*k, opts);
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 1, 74);
  la::Matrix<double> u = h.matvec(w);
  la::Matrix<double> kd = k->dense();
  la::Matrix<double> exact(n, 1);
  la::gemm(la::Op::None, la::Op::None, 1.0, kd, w, 0.0, exact);
  const double err = la::diff_fro(u, exact) / la::norm_fro(exact);
  EXPECT_GT(err, 1e-6);  // visibly inexact
}

// --------------------------------------------------------------- ASKIT ----

TEST(AskitPreset, HasThePaperDescribedShape) {
  Config cfg = askit_like_config(16);
  EXPECT_EQ(cfg.distance, tree::DistanceKind::Geometric);
  EXPECT_EQ(cfg.engine, rt::Engine::LevelByLevel);
  EXPECT_FALSE(cfg.symmetric_near);
  EXPECT_EQ(cfg.kappa, 16);
  EXPECT_DOUBLE_EQ(cfg.budget, 1.0);
}

}  // namespace
}  // namespace gofmm::baseline
