// Unit tests for Morton codes, Gram distances and the metric ball tree.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/spd_matrix.hpp"
#include "la/blas.hpp"
#include "tree/cluster_tree.hpp"
#include "tree/metric.hpp"
#include "tree/morton.hpp"

namespace gofmm::tree {
namespace {

// -------------------------------------------------------------- Morton ----

TEST(Morton, RootIsAncestorOfEverything) {
  MortonCode root;
  MortonCode deep = root.child(true).child(false).child(true);
  EXPECT_TRUE(root.is_ancestor_of(deep));
  EXPECT_TRUE(root.is_ancestor_of(root));
  EXPECT_FALSE(deep.is_ancestor_of(root));
}

TEST(Morton, SiblingsAreNotAncestors) {
  MortonCode root;
  MortonCode l = root.child(false);
  MortonCode r = root.child(true);
  EXPECT_FALSE(l.is_ancestor_of(r));
  EXPECT_FALSE(r.is_ancestor_of(l));
  EXPECT_TRUE(l.is_ancestor_of(l.child(true)));
  EXPECT_FALSE(l.is_ancestor_of(r.child(false)));
}

TEST(Morton, OrderingIsLevelMajor) {
  MortonCode root;
  EXPECT_LT(root, root.child(false));
  EXPECT_LT(root.child(false), root.child(true));
}

// ----------------------------------------------------------- distances ----

/// Builds an SPD Gram matrix from explicit vectors so Gram distances can
/// be checked against the true Euclidean geometry of the vectors.
la::Matrix<double> gram_from_vectors(const la::Matrix<double>& phi) {
  la::Matrix<double> k(phi.cols(), phi.cols());
  la::gemm(la::Op::Trans, la::Op::None, 1.0, phi, phi, 0.0, k);
  return k;
}

TEST(Metric, KernelDistanceMatchesGramVectors) {
  auto phi = la::Matrix<double>::random_normal(5, 20, 3);
  DenseSPD<double> k(gram_from_vectors(phi));
  Metric<double> metric(k, DistanceKind::Kernel);
  for (index_t i = 0; i < 20; i += 3)
    for (index_t j = 0; j < 20; j += 5) {
      double d2 = 0;
      for (index_t t = 0; t < 5; ++t) {
        const double diff = phi(t, i) - phi(t, j);
        d2 += diff * diff;
      }
      EXPECT_NEAR(metric(i, j), d2, 1e-9);
    }
}

TEST(Metric, AngleDistanceMatchesGramVectors) {
  auto phi = la::Matrix<double>::random_normal(4, 15, 4);
  DenseSPD<double> k(gram_from_vectors(phi));
  Metric<double> metric(k, DistanceKind::Angle);
  for (index_t i = 0; i < 15; ++i)
    for (index_t j = 0; j < 15; ++j) {
      double dotv = 0;
      double ni = 0;
      double nj = 0;
      for (index_t t = 0; t < 4; ++t) {
        dotv += phi(t, i) * phi(t, j);
        ni += phi(t, i) * phi(t, i);
        nj += phi(t, j) * phi(t, j);
      }
      const double expect = 1.0 - dotv * dotv / (ni * nj);
      EXPECT_NEAR(metric(i, j), expect, 1e-9);
    }
}

TEST(Metric, PropertiesOfDistance) {
  auto phi = la::Matrix<double>::random_normal(6, 30, 5);
  DenseSPD<double> k(gram_from_vectors(phi));
  for (DistanceKind kind : {DistanceKind::Kernel, DistanceKind::Angle}) {
    Metric<double> metric(k, kind);
    for (index_t i = 0; i < 30; i += 4) {
      EXPECT_NEAR(metric(i, i), 0.0, 1e-9);  // identity
      for (index_t j = 0; j < 30; j += 7) {
        EXPECT_NEAR(metric(i, j), metric(j, i), 1e-9);  // symmetry
        EXPECT_GE(metric(i, j), -1e-12);                // non-negativity
      }
    }
  }
}

TEST(Metric, GeometricRequiresPoints) {
  DenseSPD<double> k(la::Matrix<double>::identity(8));
  EXPECT_THROW(Metric<double>(k, DistanceKind::Geometric),
               std::invalid_argument);
}

TEST(Metric, GeometricDistance) {
  DenseSPD<double> k(la::Matrix<double>::identity(10));
  la::Matrix<double> pts = la::Matrix<double>::random_uniform(3, 10, 6);
  k.set_points(pts);
  Metric<double> metric(k, DistanceKind::Geometric);
  for (index_t i = 0; i < 10; ++i)
    for (index_t j = 0; j < 10; ++j) {
      double d2 = 0;
      for (index_t t = 0; t < 3; ++t) {
        const double diff = pts(t, i) - pts(t, j);
        d2 += diff * diff;
      }
      EXPECT_NEAR(metric(i, j), d2, 1e-12);
    }
}

TEST(Metric, BatchMatchesScalar) {
  auto phi = la::Matrix<double>::random_normal(5, 40, 7);
  DenseSPD<double> k(gram_from_vectors(phi));
  for (DistanceKind kind : {DistanceKind::Kernel, DistanceKind::Angle}) {
    Metric<double> metric(k, kind);
    std::vector<index_t> idx(40);
    std::iota(idx.begin(), idx.end(), index_t(0));
    std::vector<double> out(40);
    metric.pairwise_batch(idx, 13, out.data());
    for (index_t i = 0; i < 40; ++i)
      EXPECT_NEAR(out[std::size_t(i)], metric(i, 13), 1e-9);
  }
}

TEST(Metric, CentroidDistanceOfSingleton) {
  // Centroid of a single sample s is φ_s itself: distance must equal the
  // pairwise distance to s.
  auto phi = la::Matrix<double>::random_normal(5, 25, 8);
  DenseSPD<double> k(gram_from_vectors(phi));
  Metric<double> metric(k, DistanceKind::Kernel);
  const index_t s = 11;
  auto c = metric.centroid(std::span<const index_t>(&s, 1));
  for (index_t i = 0; i < 25; ++i)
    EXPECT_NEAR(metric.to_centroid(i, c), metric(i, s), 1e-9);
}

TEST(Metric, StringRoundTrip) {
  for (DistanceKind kind :
       {DistanceKind::Kernel, DistanceKind::Angle, DistanceKind::Geometric,
        DistanceKind::Lexicographic, DistanceKind::Random})
    EXPECT_EQ(distance_from_string(to_string(kind)), kind);
  EXPECT_THROW(distance_from_string("bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------- tree ----

class TreeSizes
    : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(TreeSizes, StructureInvariants) {
  const auto [n, m] = GetParam();
  ClusterTree t(n, m, SplitFn{});

  // Permutation is a bijection.
  std::vector<bool> seen(std::size_t(n), false);
  for (index_t p : t.perm()) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, n);
    EXPECT_FALSE(seen[std::size_t(p)]);
    seen[std::size_t(p)] = true;
  }
  // inv_perm inverts perm.
  for (index_t pos = 0; pos < n; ++pos)
    EXPECT_EQ(t.inv_perm()[std::size_t(t.perm()[std::size_t(pos)])], pos);

  // All leaves at the same level, sizes at most m, within one of each
  // other, covering [0, n).
  index_t total = 0;
  index_t min_sz = n;
  index_t max_sz = 0;
  for (const Node* leaf : t.leaves()) {
    EXPECT_EQ(leaf->level, t.depth());
    EXPECT_LE(leaf->count, m);
    min_sz = std::min(min_sz, leaf->count);
    max_sz = std::max(max_sz, leaf->count);
    total += leaf->count;
  }
  EXPECT_EQ(total, n);
  EXPECT_LE(max_sz - min_sz, 1);

  // Node count of a complete binary tree.
  EXPECT_EQ(t.num_nodes(), (index_t(1) << (t.depth() + 1)) - 1);

  // Children partition parents contiguously.
  for (const Node* node : t.nodes()) {
    if (node->is_leaf()) continue;
    EXPECT_EQ(node->left()->begin, node->begin);
    EXPECT_EQ(node->right()->begin, node->begin + node->left()->count);
    EXPECT_EQ(node->left()->count + node->right()->count, node->count);
    EXPECT_EQ(node->leaf_lo, node->left()->leaf_lo);
    EXPECT_EQ(node->leaf_hi, node->right()->leaf_hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeSizes,
    ::testing::Values(std::tuple{1, 4}, std::tuple{7, 2}, std::tuple{64, 8},
                      std::tuple{100, 16}, std::tuple{1000, 64},
                      std::tuple{1024, 128}, std::tuple{33, 32}));

TEST(ClusterTree, MortonMatchesPointerAncestry) {
  ClusterTree t(256, 16, SplitFn{});
  for (const Node* a : t.nodes())
    for (const Node* b : t.nodes()) {
      bool pointer_anc = false;
      for (const Node* p = b; p != nullptr; p = p->parent)
        if (p == a) pointer_anc = true;
      EXPECT_EQ(a->morton.is_ancestor_of(b->morton), pointer_anc)
          << "a=" << a->id << " b=" << b->id;
    }
}

TEST(ClusterTree, LeafOfReturnsOwningLeaf) {
  Prng rng(9);
  ClusterTree t(200, 16, random_split(rng));
  for (index_t i = 0; i < 200; ++i) {
    const Node* leaf = t.leaf_of(i);
    const auto idx = t.indices(leaf);
    EXPECT_NE(std::find(idx.begin(), idx.end(), i), idx.end());
  }
}

TEST(ClusterTree, LexicographicKeepsInputOrder) {
  ClusterTree t(128, 16, SplitFn{});
  for (index_t pos = 0; pos < 128; ++pos)
    EXPECT_EQ(t.perm()[std::size_t(pos)], pos);
}

TEST(ClusterTree, MetricSplitSeparatesClusters) {
  // Two well-separated Gaussian clusters in Gram space: the root split
  // must not mix them.
  const index_t n = 128;
  la::Matrix<double> phi(3, n);
  Prng rng(17);
  for (index_t i = 0; i < n; ++i) {
    const double base = (i < n / 2) ? 0.0 : 50.0;
    for (index_t d = 0; d < 3; ++d)
      phi(d, i) = base + rng.normal();
  }
  DenseSPD<double> k(gram_from_vectors(phi));
  Metric<double> metric(k, DistanceKind::Kernel);
  Prng rng2(18);
  ClusterTree t(n, 32, metric_split(metric, rng2));

  const Node* l = t.root()->left();
  const auto li = t.indices(l);
  std::set<bool> sides;
  for (index_t i : li) sides.insert(i < n / 2);
  EXPECT_EQ(sides.size(), 1u) << "root split mixed the two clusters";
}

TEST(ClusterTree, PostorderChildrenBeforeParents) {
  ClusterTree t(512, 32, SplitFn{});
  std::vector<index_t> pos(std::size_t(t.num_nodes()));
  const auto& order = t.postorder();
  for (index_t i = 0; i < index_t(order.size()); ++i)
    pos[std::size_t(order[std::size_t(i)]->id)] = i;
  for (const Node* node : t.nodes())
    if (!node->is_leaf()) {
      EXPECT_GT(pos[std::size_t(node->id)], pos[std::size_t(node->left()->id)]);
      EXPECT_GT(pos[std::size_t(node->id)],
                pos[std::size_t(node->right()->id)]);
    }
}

TEST(ClusterTree, RandomSplitIsStillAPermutation) {
  Prng rng(31);
  ClusterTree t(333, 16, random_split(rng));
  std::vector<bool> seen(333, false);
  for (index_t p : t.perm()) {
    EXPECT_FALSE(seen[std::size_t(p)]);
    seen[std::size_t(p)] = true;
  }
}

TEST(ClusterTree, InvalidArgumentsThrow) {
  EXPECT_THROW(ClusterTree(0, 8, SplitFn{}), std::invalid_argument);
  EXPECT_THROW(ClusterTree(10, 0, SplitFn{}), std::invalid_argument);
}

}  // namespace
}  // namespace gofmm::tree
