// Unit tests for the solve service (operator cache, cross-request
// batching, backpressure, workspace pooling, metrics).
//
// The cache/batching/admission mechanics are tested against a synthetic
// diagonal operator — builds are cheap and deterministic, results are
// computable in closed form, and every test in that group is TSan-clean
// (the CI tsan job runs this binary). End-to-end batching semantics
// (bit-identity of coalesced vs solo solves, λ-retune on a real ULV
// factorization) run against a real GOFMM compression and are skipped
// under TSan like the other zoo-sized suites.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "core/gofmm.hpp"
#include "matrices/zoo.hpp"
#include "service/operator_cache.hpp"
#include "service/service_stats.hpp"
#include "service/solve_service.hpp"

#if defined(__SANITIZE_THREAD__)
#define GOFMM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GOFMM_TSAN 1
#endif
#endif

// ---- global allocation counter ---------------------------------------------
// Counts every operator new in the binary; the workspace steady-state test
// asserts the count does not move across capacity-retaining reuse.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace gofmm::service {
namespace {

using std::chrono::milliseconds;
using std::chrono::microseconds;

// ---- synthetic diagonal operator -------------------------------------------

struct BuildCounters {
  std::atomic<int> builds{0};
  std::atomic<int> factorizes{0};
  std::atomic<int> refactorizes{0};
};

// Diagonal SPD "compression": apply = D w, solve = (D+λI)⁻¹ b, logdet =
// Σ log(d_i+λ). The diagonal derives from the dataset id, so distinct
// datasets yield distinct answers.
class DiagOp final : public CompressedOperator<double>,
                     public Factorizable<double> {
 public:
  DiagOp(index_t n, std::uint64_t bytes, std::uint64_t seed,
         std::shared_ptr<BuildCounters> counters)
      : n_(n), bytes_(bytes), counters_(std::move(counters)) {
    d_.resize(std::size_t(n));
    for (index_t i = 0; i < n; ++i)
      d_[std::size_t(i)] = 1.0 + 0.25 * double((seed + std::uint64_t(i)) % 7);
  }

  index_t size() const override { return n_; }
  std::string name() const override { return "diag"; }
  std::uint64_t memory_bytes() const override { return bytes_; }
  OperatorStats operator_stats() const override { return {}; }
  Factorizable<double>* factorizable() override { return this; }
  const Factorizable<double>* factorizable() const override { return this; }

  void factorize(double lambda, FactorizeOptions) override {
    counters_->factorizes.fetch_add(1);
    lambda_ = lambda;
    factorized_ = true;
  }
  void refactorize(double lambda) override {
    counters_->refactorizes.fetch_add(1);
    lambda_ = lambda;
  }
  bool factorized() const override { return factorized_; }

  la::Matrix<double> solve(const la::Matrix<double>& b,
                           const SolveOptions&) const override {
    check<StateError>(factorized_, "diag: solve before factorize");
    la::Matrix<double> x(b.rows(), b.cols());
    for (index_t j = 0; j < b.cols(); ++j)
      for (index_t i = 0; i < b.rows(); ++i)
        x(i, j) = b(i, j) / (d_[std::size_t(i)] + lambda_);
    return x;
  }
  double logdet() const override {
    check<StateError>(factorized_, "diag: logdet before factorize");
    double s = 0;
    for (double d : d_) s += std::log(d + lambda_);
    return s;
  }
  FactorizationStats factorization_stats() const override {
    FactorizationStats s;
    s.memory_bytes = 0;
    s.regularization = lambda_;
    s.num_refactorizations = index_t(counters_->refactorizes.load());
    return s;
  }

 protected:
  la::Matrix<double> do_apply(const la::Matrix<double>& w,
                              EvalWorkspace<double>& ws) const override {
    la::Matrix<double> u(w.rows(), w.cols());
    for (index_t j = 0; j < w.cols(); ++j)
      for (index_t i = 0; i < w.rows(); ++i)
        u(i, j) = d_[std::size_t(i)] * w(i, j);
    ws.flops.fetch_add(std::uint64_t(w.rows()) * std::uint64_t(w.cols()),
                       std::memory_order_relaxed);
    return u;
  }

 private:
  index_t n_;
  std::vector<double> d_;
  std::uint64_t bytes_;
  std::shared_ptr<BuildCounters> counters_;
  double lambda_ = 0;      // written under the cache's exclusive entry lock
  bool factorized_ = false;
};

constexpr index_t kDiagN = 64;

OperatorCache<double>::Builder diag_builder(
    std::shared_ptr<BuildCounters> counters, std::uint64_t bytes = 1000,
    milliseconds build_delay = milliseconds(0)) {
  return [counters, bytes,
          build_delay](const OperatorSpec& spec)
             -> std::shared_ptr<CompressedOperator<double>> {
    counters->builds.fetch_add(1);
    if (build_delay.count() > 0) std::this_thread::sleep_for(build_delay);
    const std::uint64_t seed = std::hash<std::string>{}(spec.dataset);
    return std::make_shared<DiagOp>(kDiagN, bytes, seed, counters);
  };
}

OperatorSpec diag_spec(const std::string& dataset, double lambda) {
  OperatorSpec spec;
  spec.dataset = dataset;
  spec.lambda = lambda;
  return spec;
}

// Closed-form reference for DiagOp solves.
la::Matrix<double> diag_reference_solve(const std::string& dataset,
                                        double lambda,
                                        const la::Matrix<double>& b) {
  const std::uint64_t seed = std::hash<std::string>{}(dataset);
  la::Matrix<double> x(b.rows(), b.cols());
  for (index_t j = 0; j < b.cols(); ++j)
    for (index_t i = 0; i < b.rows(); ++i) {
      const double d = 1.0 + 0.25 * double((seed + std::uint64_t(i)) % 7);
      x(i, j) = b(i, j) / (d + lambda);
    }
  return x;
}

// ---- operator cache ---------------------------------------------------------

TEST(OperatorCache, StampedeOnColdKeyBuildsExactlyOnce) {
  auto counters = std::make_shared<BuildCounters>();
  // 30 ms build: every thread arrives while the winner is still building.
  OperatorCache<double> cache(diag_builder(counters, 1000, milliseconds(30)),
                              std::uint64_t(1) << 30);
  const OperatorSpec spec = diag_spec("stampede", 0.5);

  constexpr int kThreads = 32;
  std::vector<std::shared_ptr<OperatorCache<double>::Entry>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] { got[std::size_t(t)] = cache.acquire(spec); });
  for (auto& th : threads) th.join();

  EXPECT_EQ(counters->builds.load(), 1);  // single-flight: one build total
  EXPECT_EQ(counters->factorizes.load(), 1);
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(got[std::size_t(t)].get(), got[0].get());

  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.builds, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits + c.misses + c.single_flight_waits, std::uint64_t(kThreads));
  EXPECT_EQ(c.entries, 1u);
}

TEST(OperatorCache, TwoPrecisionPoliciesSingleFlightIndependently) {
  auto counters = std::make_shared<BuildCounters>();
  // 30 ms build: all threads of BOTH policies arrive mid-build. The two
  // precisions must resolve to two distinct keys — one build each — while
  // single-flight still holds within each key.
  OperatorCache<double> cache(diag_builder(counters, 1000, milliseconds(30)),
                              std::uint64_t(1) << 30);
  OperatorSpec f64 = diag_spec("policy", 0.5);
  OperatorSpec f32 = f64;
  f32.factorize.precision = Precision::MixedF32;

  constexpr int kPerPolicy = 16;
  std::vector<std::shared_ptr<OperatorCache<double>::Entry>> got(2 *
                                                                 kPerPolicy);
  std::vector<std::thread> threads;
  threads.reserve(got.size());
  for (int t = 0; t < kPerPolicy; ++t) {
    threads.emplace_back(
        [&, t] { got[std::size_t(t)] = cache.acquire(f64); });
    threads.emplace_back([&, t] {
      got[std::size_t(kPerPolicy + t)] = cache.acquire(f32);
    });
  }
  for (auto& th : threads) th.join();

  // Exactly one build per policy — never one shared build for both.
  EXPECT_EQ(counters->builds.load(), 2);
  EXPECT_EQ(counters->factorizes.load(), 2);
  for (int t = 1; t < kPerPolicy; ++t) {
    EXPECT_EQ(got[std::size_t(t)].get(), got[0].get());
    EXPECT_EQ(got[std::size_t(kPerPolicy + t)].get(),
              got[std::size_t(kPerPolicy)].get());
  }
  EXPECT_NE(got[0].get(), got[std::size_t(kPerPolicy)].get());

  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.builds, 2u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.hits + c.misses + c.single_flight_waits,
            std::uint64_t(2 * kPerPolicy));
  EXPECT_EQ(c.entries, 2u);
}

TEST(OperatorCache, BuildFailurePropagatesToEveryWaiterThenRetries) {
  auto counters = std::make_shared<BuildCounters>();
  std::atomic<bool> fail{true};
  OperatorCache<double> cache(
      [&](const OperatorSpec& spec)
          -> std::shared_ptr<CompressedOperator<double>> {
        counters->builds.fetch_add(1);
        std::this_thread::sleep_for(milliseconds(20));
        if (fail.load()) throw StateError("dataset unavailable");
        return std::make_shared<DiagOp>(
            kDiagN, 1000, std::hash<std::string>{}(spec.dataset), counters);
      },
      std::uint64_t(1) << 30);
  const OperatorSpec spec = diag_spec("flaky", 0.0);

  std::atomic<int> threw{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      try {
        (void)cache.acquire(spec);
      } catch (const StateError&) {
        threw.fetch_add(1);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(threw.load(), 8);  // winner rethrows, waiters get the same error
  EXPECT_EQ(cache.counters().entries, 0u);

  // A failed build leaves no poisoned state: the next acquire retries.
  fail.store(false);
  EXPECT_NE(cache.acquire(spec), nullptr);
  EXPECT_EQ(cache.counters().entries, 1u);
}

TEST(OperatorCache, EvictsLeastRecentlyUsedOverByteBudget) {
  auto counters = std::make_shared<BuildCounters>();
  // 1000 bytes/entry under a 2500-byte budget: two entries fit.
  OperatorCache<double> cache(diag_builder(counters, 1000), 2500);
  auto a = cache.acquire(diag_spec("a", 0.0));
  (void)cache.acquire(diag_spec("b", 0.0));
  (void)cache.acquire(diag_spec("c", 0.0));  // evicts "a" (least recent)

  const std::string key_a = diag_spec("a", 0.0).structure_key();
  EXPECT_FALSE(cache.contains(key_a));
  EXPECT_TRUE(cache.contains(diag_spec("b", 0.0).structure_key()));
  EXPECT_TRUE(cache.contains(diag_spec("c", 0.0).structure_key()));
  CacheCounters c = cache.counters();
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.entries, 2u);
  EXPECT_LE(c.resident_bytes, 2500u);

  // In-flight holders of an evicted entry keep a working operator.
  EXPECT_EQ(a->op->size(), kDiagN);

  // Touching "b" promotes it: the next build evicts "c", not "b".
  (void)cache.acquire(diag_spec("b", 0.0));
  (void)cache.acquire(diag_spec("d", 0.0));
  EXPECT_TRUE(cache.contains(diag_spec("b", 0.0).structure_key()));
  EXPECT_FALSE(cache.contains(diag_spec("c", 0.0).structure_key()));
}

TEST(OperatorCache, EvictionUnderConcurrentLoadStaysConsistent) {
  auto counters = std::make_shared<BuildCounters>();
  OperatorCache<double> cache(diag_builder(counters, 1000), 2500);
  const char* datasets[] = {"w", "x", "y", "z"};

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&, t] {
      for (int it = 0; it < 50; ++it) {
        const OperatorSpec spec =
            diag_spec(datasets[(t + it) % 4], 0.25 * double(it % 3));
        cache.with_operator(spec, [&](OperatorCache<double>::Entry& e) {
          // Use the operator under the shared lock, as the service does.
          la::Matrix<double> b(e.op->size(), 1, 1.0);
          la::Matrix<double> x = e.op->factorizable()->solve(b);
          // λ is pinned: the solve must reflect this request's λ exactly.
          const std::uint64_t seed =
              std::hash<std::string>{}(spec.dataset);
          const double d0 = 1.0 + 0.25 * double(seed % 7);
          ASSERT_EQ(x(0, 0), 1.0 / (d0 + spec.lambda));
        });
      }
    });
  for (auto& th : threads) th.join();

  const CacheCounters c = cache.counters();
  EXPECT_GT(c.evictions, 0u);  // budget held 2 of 4 working sets
  EXPECT_LE(c.entries, 3u);    // 2 resident + possibly one in-flight insert
  EXPECT_EQ(c.misses, c.builds);
  EXPECT_GT(c.retunes, 0u);
}

// ---- λ-retune fast path -----------------------------------------------------

TEST(SolveService, LambdaRetuneNeverRebuilds) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.batch_window = microseconds(500);
  SolveService<double> svc(diag_builder(counters), opts);

  const la::Matrix<double> b = la::Matrix<double>::random_normal(kDiagN, 2, 3);
  for (double lambda : {0.5, 2.0, 0.125, 2.0, 0.5}) {
    ServiceResult<double> res = svc.solve(diag_spec("ridge", lambda), b);
    const la::Matrix<double> want = diag_reference_solve("ridge", lambda, b);
    for (index_t j = 0; j < b.cols(); ++j)
      for (index_t i = 0; i < b.rows(); ++i)
        ASSERT_EQ(res.values(i, j), want(i, j));
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.cache.builds, 1u);            // ONE compression+factorization
  EXPECT_EQ(counters->factorizes.load(), 1);  // never a full rebuild
  EXPECT_EQ(s.cache.retunes, 4u);           // every λ change refactorized
  EXPECT_EQ(counters->refactorizes.load(), 4);
  EXPECT_EQ(s.completed, 5u);
}

// ---- batching ---------------------------------------------------------------

TEST(SolveService, ConcurrentRequestsCoalesceIntoOneSweep) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.batch_window = milliseconds(50);  // wide window: everything coalesces
  SolveService<double> svc(diag_builder(counters), opts);
  const OperatorSpec spec = diag_spec("batch", 1.0);

  std::vector<la::Matrix<double>> rhs;
  std::vector<std::future<ServiceResult<double>>> futs;
  for (int r = 0; r < 8; ++r) {
    rhs.push_back(la::Matrix<double>::random_normal(kDiagN, 2, 100 + r));
    futs.push_back(svc.submit_solve(spec, rhs.back()));
  }
  for (int r = 0; r < 8; ++r) {
    ServiceResult<double> res = futs[std::size_t(r)].get();
    EXPECT_EQ(res.batch_cols, 16);  // all 8 requests rode one 16-wide sweep
    const la::Matrix<double> want =
        diag_reference_solve("batch", 1.0, rhs[std::size_t(r)]);
    for (index_t j = 0; j < want.cols(); ++j)
      for (index_t i = 0; i < want.rows(); ++i)
        ASSERT_EQ(res.values(i, j), want(i, j));
    ASSERT_EQ(res.residuals.size(), 2u);
    EXPECT_LT(res.residuals[0], 1e-12);  // diag solve is exact
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batched_columns, 16u);
  EXPECT_EQ(s.batch_size_log2[4], 1u);  // 16 columns → bucket log2(16)=4
  EXPECT_EQ(s.avg_batch_cols(), 16.0);
  EXPECT_EQ(s.latency_samples, 8u);
  EXPECT_GT(s.latency_p50_s, 0.0);
  EXPECT_GE(s.latency_p99_s, s.latency_p50_s);
}

TEST(SolveService, DifferentLambdasFormSeparateBatches) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.batch_window = milliseconds(30);
  SolveService<double> svc(diag_builder(counters), opts);

  const la::Matrix<double> b = la::Matrix<double>::random_normal(kDiagN, 1, 5);
  auto f1 = svc.submit_solve(diag_spec("lam", 0.5), b);
  auto f2 = svc.submit_solve(diag_spec("lam", 1.5), b);
  const la::Matrix<double> x1 = f1.get().values;
  const la::Matrix<double> x2 = f2.get().values;
  for (index_t i = 0; i < kDiagN; ++i) {
    ASSERT_EQ(x1(i, 0), diag_reference_solve("lam", 0.5, b)(i, 0));
    ASSERT_EQ(x2(i, 0), diag_reference_solve("lam", 1.5, b)(i, 0));
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.batches, 2u);       // λ is part of the batch key
  EXPECT_EQ(s.cache.builds, 1u);  // but not of the structure key
}

TEST(SolveService, LogdetRequestsCoalesceAndAgree) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.batch_window = milliseconds(50);
  SolveService<double> svc(diag_builder(counters), opts);
  const OperatorSpec spec = diag_spec("logdet", 0.75);

  std::vector<std::future<ServiceResult<double>>> futs;
  for (int r = 0; r < 4; ++r) futs.push_back(svc.submit_logdet(spec));
  const std::uint64_t seed = std::hash<std::string>{}("logdet");
  double want = 0;
  for (index_t i = 0; i < kDiagN; ++i)
    want += std::log(1.0 + 0.25 * double((seed + std::uint64_t(i)) % 7) + 0.75);
  for (auto& f : futs) {
    const ServiceResult<double> res = f.get();
    EXPECT_DOUBLE_EQ(res.logdet, want);
    EXPECT_TRUE(res.values.empty());
  }
  EXPECT_EQ(svc.stats().batches, 1u);
}

TEST(SolveService, ShapeMismatchFailsOnlyTheBadRequest) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.batch_window = milliseconds(30);
  SolveService<double> svc(diag_builder(counters), opts);
  const OperatorSpec spec = diag_spec("shapes", 0.0);

  const la::Matrix<double> good = la::Matrix<double>::random_normal(kDiagN, 1, 9);
  const la::Matrix<double> bad(kDiagN + 3, 1, 1.0);
  auto fg = svc.submit_solve(spec, good);
  auto fb = svc.submit_solve(spec, bad);
  EXPECT_THROW((void)fb.get(), DimensionError);
  EXPECT_EQ(fg.get().values.rows(), kDiagN);  // the batch still served it
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 1u);
}

// ---- admission control ------------------------------------------------------

TEST(SolveService, OverAdmissionThrowsTypedOverloadedError) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.max_pending = 2;
  opts.batch_window = milliseconds(100);  // hold requests open
  SolveService<double> svc(diag_builder(counters), opts);
  const OperatorSpec spec = diag_spec("pressure", 0.0);
  const la::Matrix<double> b(kDiagN, 1, 1.0);

  auto f1 = svc.submit_solve(spec, b);
  auto f2 = svc.submit_solve(spec, b);
  EXPECT_THROW((void)svc.submit_solve(spec, b), OverloadedError);
  // OverloadedError is a gofmm::Error, so generic handlers catch it too.
  try {
    (void)svc.submit_solve(spec, b);
    FAIL() << "expected OverloadedError";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("overloaded"), std::string::npos);
  }

  (void)f1.get();
  (void)f2.get();
  svc.drain();
  // The queue drained: admission opens again.
  EXPECT_NO_THROW((void)svc.submit_solve(spec, b).get());
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.rejected, 2u);
  EXPECT_EQ(s.queue_depth, 0u);
}

// ---- concurrent hammer (the TSan target) ------------------------------------

TEST(SolveService, ConcurrentClientsMixedKindsAllComplete) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.batch_window = milliseconds(1);
  opts.num_workers = 4;
  SolveService<double> svc(diag_builder(counters), opts);

  constexpr int kClients = 8;
  constexpr int kPerClient = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t)
    clients.emplace_back([&, t] {
      for (int r = 0; r < kPerClient; ++r) {
        const OperatorSpec spec =
            diag_spec(t % 2 == 0 ? "ham-a" : "ham-b", r % 3 == 0 ? 0.5 : 1.0);
        ServiceResult<double> res;
        if (r % 5 == 4) {
          res = svc.submit_logdet(spec).get();
          if (std::isfinite(res.logdet)) ok.fetch_add(1);
        } else if (r % 5 == 3) {
          const auto w = la::Matrix<double>::random_normal(kDiagN, 1, t);
          res = svc.submit_matvec(spec, w).get();
          if (res.values.rows() == kDiagN) ok.fetch_add(1);
        } else {
          const auto b =
              la::Matrix<double>::random_normal(kDiagN, 2, 10 * t + r);
          res = svc.submit_solve(spec, b).get();
          const auto want = diag_reference_solve(spec.dataset, spec.lambda, b);
          if (res.values(0, 0) == want(0, 0)) ok.fetch_add(1);
        }
      }
    });
  for (auto& th : clients) th.join();
  svc.drain();

  EXPECT_EQ(ok.load(), kClients * kPerClient);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, std::uint64_t(kClients * kPerClient));
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.cache.builds, 2u);  // two structures, any number of λs
  EXPECT_LE(s.batches, s.requests);
}

// ---- workspace pooling ------------------------------------------------------

TEST(EvalWorkspace, ResetRetainsCapacityAndSteadyStateNeverAllocates) {
  EvalWorkspace<double> ws;
  ws.x.resize(512, 8);
  ws.y.resize(512, 8);
  ws.up.resize(32);
  for (auto& m : ws.up) m.resize(16, 8);
  ws.flops.store(123);

  const void* px = ws.x.data();
  const void* py = ws.y.data();
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int it = 0; it < 100; ++it) {
    ws.reset();
    // Same-shape reuse: Matrix::resize assigns in place under capacity.
    ws.x.resize(512, 8);
    ws.y.resize(512, 8);
    for (auto& m : ws.up) m.resize(16, 8);
    // Shrinking fits a fortiori.
    ws.x.resize(256, 4);
    ws.x.resize(512, 8);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  EXPECT_EQ(ws.x.data(), px);
  EXPECT_EQ(ws.y.data(), py);
  EXPECT_EQ(ws.flops.load(), 0u);  // reset cleared the counters
}

TEST(WorkspacePool, SequentialLeasesReuseOneWorkspace) {
  WorkspacePool<double> pool;
  const double* data = nullptr;
  for (int it = 0; it < 100; ++it) {
    auto lease = pool.lease();
    lease->x.resize(256, 4);
    if (data == nullptr) data = lease->x.data();
    EXPECT_EQ(lease->x.data(), data);  // capacity survived reset()+return
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(SolveService, SteadyStateSweepsKeepThePoolFlat) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.batch_window = microseconds(100);
  SolveService<double> svc(diag_builder(counters), opts);
  const auto w = la::Matrix<double>::random_normal(kDiagN, 4, 1);
  for (int it = 0; it < 10; ++it) {
    (void)svc.submit_matvec(diag_spec("flat", 0.0), w).get();
    svc.drain();
  }
  // Sequential same-shape sweeps lease the same workspace every time.
  EXPECT_EQ(svc.workspaces().created(), 1u);
}

// ---- stats plumbing ---------------------------------------------------------

TEST(LatencyHistogram, PercentilesLandInTheRightBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(1e-3);   // 1 ms
  for (int i = 0; i < 10; ++i) h.record(100e-3); // 100 ms tail
  EXPECT_EQ(h.count(), 100u);
  EXPECT_GT(h.percentile(50), 0.3e-3);
  EXPECT_LT(h.percentile(50), 3e-3);
  EXPECT_GT(h.percentile(99), 30e-3);
  EXPECT_LT(h.percentile(99), 300e-3);
}

TEST(OperatorSpec, StructureKeySeparatesEverythingButLambda) {
  const OperatorSpec base = diag_spec("ds", 0.5);
  OperatorSpec other = base;
  other.lambda = 7.0;
  EXPECT_EQ(base.structure_key(), other.structure_key());  // λ floats

  other = base;
  other.dataset = "ds2";
  EXPECT_NE(base.structure_key(), other.structure_key());
  other = base;
  other.config.leaf_size = 64;
  EXPECT_NE(base.structure_key(), other.structure_key());
  other = base;
  other.config.tolerance = 1e-7;
  EXPECT_NE(base.structure_key(), other.structure_key());
  other = base;
  other.factorize.elimination = Elimination::PivotedLdlt;
  EXPECT_NE(base.structure_key(), other.structure_key());
  other = base;
  other.factorize.mode = UlvMode::Woodbury;
  EXPECT_NE(base.structure_key(), other.structure_key());
  // The bugfix this suite pins down: storage precision is part of the
  // structure key — a MixedF32 factorization must never alias a Double one.
  other = base;
  other.factorize.precision = Precision::MixedF32;
  EXPECT_NE(base.structure_key(), other.structure_key());
  // Execution-only knobs do not split the cache.
  other = base;
  other.config.num_workers = 3;
  other.config.engine = rt::Engine::LevelByLevel;
  EXPECT_EQ(base.structure_key(), other.structure_key());
}

// ---- spectral request kinds (Trace / Eigs) ---------------------------------

TEST(SolveServiceSpectral, EigsShiftSweepReusesOneCachedBuild) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.batch_window = microseconds(200);
  SolveService<double> svc(diag_builder(counters), opts);

  // Eight shifts = eight λ values on ONE structure key: the cache must
  // compress+factorize once and serve every later shift with a retune —
  // the spectral subsystem's contract that a shift sweep is a λ sweep.
  const spectral::EigsOptions eo = spectral::EigsOptions().with_k(2);
  for (int i = 0; i < 8; ++i) {
    const double lambda = 0.1 * double(i + 1);
    const ServiceResult<double> res =
        svc.submit_eigs(diag_spec("sweep", lambda), eo).get();
    EXPECT_TRUE(res.eigs_converged) << "shift " << i;
    ASSERT_EQ(res.eigenvalues.size(), 2u);
    // DiagOp's spectrum is {1.0, 1.25, ..., 2.5}: shift-invert nearest
    // σ = −λ < 0 must find the two smallest distinct diagonal values.
    EXPECT_NEAR(res.eigenvalues[0], 1.0, 1e-10) << "shift " << i;
    EXPECT_NEAR(res.eigenvalues[1], 1.25, 1e-10) << "shift " << i;
    EXPECT_EQ(res.values.rows(), kDiagN);  // Ritz vectors ride in values
    ASSERT_EQ(res.residuals.size(), 2u);   // true eigenresiduals
    EXPECT_LT(res.residuals[0], 1e-12);
  }

  EXPECT_EQ(counters->builds.load(), 1);       // exactly one build...
  EXPECT_EQ(counters->factorizes.load(), 1);
  EXPECT_EQ(counters->refactorizes.load(), 7);  // ...then only retunes
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.cache.builds, 1u);
  EXPECT_EQ(s.cache.retunes, 7u);
  EXPECT_EQ(s.eigs_requests, 8u);
  EXPECT_EQ(s.requests, 8u);
  EXPECT_EQ(s.completed, 8u);
  // Stats coverage under the new kind: every eigs batch lands in the
  // histogram surfaces like any solve does.
  EXPECT_EQ(s.batches, 8u);
  EXPECT_GE(s.batch_size_log2[0], 8u);  // singleton batches: request count 1
  EXPECT_EQ(s.latency_samples, 8u);
  EXPECT_GT(s.latency_p50_s, 0.0);
}

TEST(SolveServiceSpectral, CoalescedIdenticalTraceRequestsShareOneEstimate) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.batch_window = milliseconds(100);  // wide window: all four coalesce
  SolveService<double> svc(diag_builder(counters), opts);
  const OperatorSpec spec = diag_spec("trace", 0.0);
  const spectral::TraceOptions to = spectral::TraceOptions::defaults()
                                        .with_probes(16)
                                        .with_seed(77)
                                        .with_method(
                                            spectral::TraceMethod::Hutchinson);

  // Exact reference: Rademacher probes on a DIAGONAL operator hit the
  // trace exactly (zᵀDz = Σ dᵢzᵢ² = Σ dᵢ), so the estimate itself must
  // equal Σ dᵢ and the sample variance must vanish.
  double exact = 0;
  for (index_t i = 0; i < kDiagN; ++i) {
    const std::uint64_t seed = std::hash<std::string>{}(spec.dataset);
    exact += 1.0 + 0.25 * double((seed + std::uint64_t(i)) % 7);
  }

  std::vector<std::future<ServiceResult<double>>> futs;
  for (int r = 0; r < 4; ++r) futs.push_back(svc.submit_trace(spec, to));
  std::vector<ServiceResult<double>> results;
  for (auto& f : futs) results.push_back(f.get());

  for (const ServiceResult<double>& res : results) {
    EXPECT_NEAR(res.trace.estimate, exact, 1e-9 * exact);
    EXPECT_NEAR(res.trace.stddev, 0.0, 1e-9);
    EXPECT_EQ(res.trace.probes, 16);
    EXPECT_EQ(res.batch_cols, 4);  // rhs-free batches count requests
    // The batch key pins the seed, so coalesced identical requests share
    // ONE bit-reproducible computation — every field is bit-identical.
    EXPECT_EQ(res.trace.estimate, results[0].trace.estimate);
    EXPECT_EQ(res.trace.ci_low, results[0].trace.ci_low);
    EXPECT_EQ(res.trace.ci_high, results[0].trace.ci_high);
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.trace_requests, 4u);
  EXPECT_EQ(s.batches, 1u);                // the four requests coalesced
  EXPECT_GE(s.batch_size_log2[2], 1u);     // one sweep of 4 requests
  EXPECT_EQ(s.latency_samples, 4u);
  EXPECT_EQ(counters->builds.load(), 1);

  // A different seed is a different batch key: correctness over sharing.
  const ServiceResult<double> other =
      svc.submit_trace(spec, spectral::TraceOptions(to).with_seed(78)).get();
  EXPECT_NEAR(other.trace.estimate, exact, 1e-9 * exact);  // still exact
  EXPECT_EQ(svc.stats().batches, 2u);
}

TEST(SolveServiceSpectral, MixedSpectralKindsInOneWindowAllComplete) {
  auto counters = std::make_shared<BuildCounters>();
  typename SolveService<double>::Options opts;
  opts.batch_window = milliseconds(50);
  SolveService<double> svc(diag_builder(counters), opts);
  const OperatorSpec spec = diag_spec("mixed", 0.5);

  // Solve, logdet, trace, and eigs against one spec in one window: four
  // different kinds, four different batch keys, one cached operator.
  const la::Matrix<double> b = la::Matrix<double>::random_normal(kDiagN, 2, 3);
  auto fs = svc.submit_solve(spec, b);
  auto fl = svc.submit_logdet(spec);
  auto ft = svc.submit_trace(spec);
  auto fe = svc.submit_eigs(spec, spectral::EigsOptions().with_k(1));

  EXPECT_EQ(fs.get().values.cols(), 2);
  EXPECT_TRUE(std::isfinite(fl.get().logdet));
  EXPECT_GT(ft.get().trace.estimate, 0.0);
  const ServiceResult<double> eig = fe.get();
  EXPECT_TRUE(eig.eigs_converged);
  EXPECT_NEAR(eig.eigenvalues.at(0), 1.0, 1e-10);

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.requests, 4u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.trace_requests, 1u);
  EXPECT_EQ(s.eigs_requests, 1u);
  EXPECT_EQ(s.cache.builds, 1u);  // four kinds, one operator
  EXPECT_EQ(counters->builds.load(), 1);
}

// ---- end-to-end against a real GOFMM compression ----------------------------

Config service_config() {
  return Config::defaults()
      .with_leaf_size(64)
      .with_max_rank(64)
      .with_tolerance(1e-7)
      .with_budget(0.0)
      .with_num_workers(2);
}

OperatorCache<double>::Builder zoo_builder(index_t n) {
  return [n](const OperatorSpec& spec)
             -> std::shared_ptr<CompressedOperator<double>> {
    auto k = std::shared_ptr<const SPDMatrix<double>>(
        zoo::make_matrix<double>(spec.dataset, n));
    return std::shared_ptr<CompressedOperator<double>>(
        CompressedMatrix<double>::compress_unique(std::move(k),
                                                  spec.config));
  };
}

TEST(SolveServiceGofmm, CoalescedSolveIsBitIdenticalToSoloSolves) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "zoo matrices are too slow under TSan";
#endif
  typename SolveService<double>::Options opts;
  opts.batch_window = milliseconds(100);
  SolveService<double> svc(zoo_builder(512), opts);
  OperatorSpec spec = diag_spec("K04", 1e-3);
  spec.config = service_config();

  std::vector<la::Matrix<double>> rhs;
  for (int r = 0; r < 6; ++r)
    rhs.push_back(la::Matrix<double>::random_normal(512, 1 + r % 2, 40 + r));

  // Solo: one request per sweep (drain between submits), same cached op.
  std::vector<la::Matrix<double>> solo;
  for (const auto& b : rhs) {
    ServiceResult<double> res = svc.submit_solve(spec, b).get();
    svc.drain();
    EXPECT_EQ(res.batch_cols, b.cols());
    solo.push_back(std::move(res.values));
  }

  // Coalesced: submit everything inside one window.
  std::vector<std::future<ServiceResult<double>>> futs;
  for (const auto& b : rhs) futs.push_back(svc.submit_solve(spec, b));
  index_t total = 0;
  for (const auto& b : rhs) total += b.cols();
  for (std::size_t r = 0; r < rhs.size(); ++r) {
    ServiceResult<double> res = futs[r].get();
    EXPECT_EQ(res.batch_cols, total);  // the requests really coalesced
    const la::Matrix<double>& want = solo[r];
    ASSERT_EQ(res.values.rows(), want.rows());
    ASSERT_EQ(res.values.cols(), want.cols());
    for (index_t j = 0; j < want.cols(); ++j)
      for (index_t i = 0; i < want.rows(); ++i)
        ASSERT_EQ(res.values(i, j), want(i, j))
            << "batched solve diverged at (" << i << "," << j << ")";
    for (double r2 : res.residuals) EXPECT_LT(r2, 1e-4);
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.cache.builds, 1u);  // solo + coalesced shared one operator
  EXPECT_EQ(s.cache.retunes, 0u);
}

TEST(SolveServiceGofmm, LambdaSweepRetunesTheCachedFactorization) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "zoo matrices are too slow under TSan";
#endif
  typename SolveService<double>::Options opts;
  opts.batch_window = microseconds(200);
  SolveService<double> svc(zoo_builder(512), opts);
  OperatorSpec spec = diag_spec("K07", 1e-3);
  spec.config = service_config();

  const la::Matrix<double> b = la::Matrix<double>::random_normal(512, 2, 11);
  for (double lambda : {1e-3, 1e-2, 1e-1, 1e-2}) {
    spec.lambda = lambda;
    const ServiceResult<double> res = svc.solve(spec, b);
    ASSERT_EQ(res.residuals.size(), 2u);
    // The factorization really is tuned to THIS λ: the solve inverts
    // (K̃+λI) to near round-off, which a stale λ would not.
    EXPECT_LT(res.residuals[0], 1e-10);
    EXPECT_LT(res.residuals[1], 1e-10);
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.cache.builds, 1u);   // λ-sweep never re-compressed
  EXPECT_EQ(s.cache.retunes, 3u);  // every λ change took the fast path
  EXPECT_EQ(s.cache.misses, 1u);   // one cold key; the rest were hits
}

TEST(SolveServiceGofmm, MixedPrecisionSolveRefinesToDoubleAccuracy) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "zoo matrices are too slow under TSan";
#endif
  typename SolveService<double>::Options opts;
  opts.batch_window = microseconds(200);
  SolveService<double> svc(zoo_builder(512), opts);
  OperatorSpec spec = diag_spec("K04", 1e-2);
  spec.config = service_config();
  spec.factorize = FactorizeOptions::defaults().with_precision(
      Precision::MixedF32);

  const la::Matrix<double> b = la::Matrix<double>::random_normal(512, 2, 13);
  const ServiceResult<double> res = svc.solve(spec, b);

  // Float factors alone stop near 1e-6; refinement must close the gap to
  // the double target, and the service must surface the extra sweeps.
  ASSERT_EQ(res.residuals.size(), 2u);
  EXPECT_LE(res.residuals[0], 1e-8);
  EXPECT_LE(res.residuals[1], 1e-8);
  EXPECT_GE(res.refine_iterations, 1);

  const ServiceStats s = svc.stats();
  EXPECT_GE(s.refine_iterations, std::uint64_t(res.refine_iterations));

  // Same dataset at Double is a different structure key: a second build,
  // not a cache hit against the float-stored entry.
  OperatorSpec plain = spec;
  plain.factorize = FactorizeOptions::defaults();
  (void)svc.solve(plain, b);
  EXPECT_EQ(svc.stats().cache.builds, 2u);
}

}  // namespace
}  // namespace gofmm::service
