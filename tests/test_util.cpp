// Tests for the utility layer: PRNG, statistics, timer, table printer,
// FLOP counters.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "la/flops.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace gofmm {
namespace {

TEST(Prng, DeterministicFromSeed) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Prng c(43);
  bool differs = false;
  Prng a2(42);
  for (int i = 0; i < 10; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Prng, UniformInRange) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Prng, BelowCoversSupport) {
  Prng rng(8);
  std::set<index_t> seen;
  for (int i = 0; i < 500; ++i) {
    const index_t v = rng.below(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(rng.below(0), 0);
}

TEST(Prng, NormalHasSaneMoments) {
  Prng rng(9);
  double sum = 0;
  double sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Stats, MeanStddevPercentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(TableTest, AlignsColumnsAndFormats) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(3.14159, 3)});
  t.add_row({"b", Table::sci(0.000123)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("1E-04"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Flops, CounterAccumulatesThreadSafely) {
  la::FlopCounter c;
  EXPECT_EQ(c.total(), 0u);
#pragma omp parallel for
  for (int i = 0; i < 64; ++i) c.add(10);
  EXPECT_EQ(c.total(), 640u);
  EXPECT_NEAR(c.gflops(1e-9 * 640), 1.0, 1e-9);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Flops, CostFormulas) {
  EXPECT_EQ(la::FlopCounter::gemm_flops(2, 3, 4), 48u);
  EXPECT_EQ(la::FlopCounter::qr_flops(10, 5, 3), 300u);
  EXPECT_EQ(la::FlopCounter::trsm_flops(4, 2), 32u);
}

TEST(Common, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(8, 4), 8);
}

TEST(Common, RequireThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "ok"));
  try {
    require(false, "specific message");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

}  // namespace
}  // namespace gofmm
