// Unit tests for the dense linear-algebra substrate (src/la).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>

#include "la/blas.hpp"
#include "la/dst.hpp"
#include "la/eigen.hpp"
#include "la/id.hpp"
#include "la/lapack.hpp"
#include "la/ldlt.hpp"
#include "la/matrix.hpp"
#include "la/qr.hpp"

namespace gofmm::la {
namespace {

// ------------------------------------------------------------- Matrix ----

TEST(Matrix, ConstructionAndAccess) {
  Matrix<double> a(3, 4, 1.5);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  EXPECT_EQ(a.size(), 12);
  EXPECT_DOUBLE_EQ(a(2, 3), 1.5);
  a(1, 2) = -2.0;
  EXPECT_DOUBLE_EQ(a(1, 2), -2.0);
  // Column-major: col pointer arithmetic.
  EXPECT_EQ(a.col(2) + 1, &a(1, 2));
}

TEST(Matrix, NegativeDimensionThrows) {
  EXPECT_THROW(Matrix<double>(-1, 2), std::invalid_argument);
}

TEST(Matrix, BlockAndGather) {
  Matrix<double> a(4, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) a(i, j) = double(10 * i + j);
  Matrix<double> b = a.block(1, 2, 2, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 23.0);

  std::vector<index_t> I = {3, 0};
  std::vector<index_t> J = {1, 2};
  Matrix<double> g = a.gather(I, J);
  EXPECT_DOUBLE_EQ(g(0, 0), 31.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 2.0);
}

TEST(Matrix, TransposeIdentityNorms) {
  Matrix<double> a = Matrix<double>::random_normal(5, 3, 42);
  Matrix<double> at = a.transposed();
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(a(i, j), at(j, i));
  Matrix<double> id = Matrix<double>::identity(4);
  EXPECT_DOUBLE_EQ(norm_fro(id), 2.0);
  EXPECT_DOUBLE_EQ(norm_max(id), 1.0);
}

TEST(Matrix, RandomIsDeterministic) {
  auto a = Matrix<double>::random_normal(4, 4, 7);
  auto b = Matrix<double>::random_normal(4, 4, 7);
  EXPECT_DOUBLE_EQ(diff_fro(a, b), 0.0);
  auto c = Matrix<double>::random_normal(4, 4, 8);
  EXPECT_GT(diff_fro(a, c), 0.0);
}

// --------------------------------------------------------------- GEMM ----

template <typename T>
Matrix<T> naive_gemm(Op opa, Op opb, T alpha, const Matrix<T>& a,
                     const Matrix<T>& b, T beta, const Matrix<T>& c0) {
  auto A = (opa == Op::None) ? a : a.transposed();
  auto B = (opb == Op::None) ? b : b.transposed();
  Matrix<T> c = c0;
  for (index_t i = 0; i < A.rows(); ++i)
    for (index_t j = 0; j < B.cols(); ++j) {
      double s = 0;
      for (index_t k = 0; k < A.cols(); ++k)
        s += double(A(i, k)) * double(B(k, j));
      c(i, j) = alpha * T(s) + beta * c0(i, j);
    }
  return c;
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(GemmShapes, MatchesNaiveAllTransposeCombos) {
  const auto [m, n, k] = GetParam();
  for (Op opa : {Op::None, Op::Trans}) {
    for (Op opb : {Op::None, Op::Trans}) {
      Matrix<double> a = (opa == Op::None)
                             ? Matrix<double>::random_normal(m, k, 1)
                             : Matrix<double>::random_normal(k, m, 1);
      Matrix<double> b = (opb == Op::None)
                             ? Matrix<double>::random_normal(k, n, 2)
                             : Matrix<double>::random_normal(n, k, 2);
      Matrix<double> c = Matrix<double>::random_normal(m, n, 3);
      Matrix<double> expect = naive_gemm(opa, opb, 1.3, a, b, -0.7, c);
      gemm(opa, opb, 1.3, a, b, -0.7, c);
      EXPECT_LT(diff_fro(c, expect), 1e-9 * (1.0 + norm_fro(expect)))
          << "opa=" << int(opa) << " opb=" << int(opb);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 2},
                      std::tuple{17, 13, 9}, std::tuple{64, 64, 64},
                      std::tuple{65, 63, 66}, std::tuple{257, 130, 241},
                      std::tuple{1, 300, 7}, std::tuple{300, 1, 7}));

TEST(Gemm, AlphaZeroScalesOnly) {
  Matrix<double> a = Matrix<double>::random_normal(8, 8, 1);
  Matrix<double> b = Matrix<double>::random_normal(8, 8, 2);
  Matrix<double> c(8, 8, 2.0);
  gemm(Op::None, Op::None, 0.0, a, b, 0.5, c);
  EXPECT_DOUBLE_EQ(c(3, 3), 1.0);
}

TEST(Gemm, DimensionMismatchThrows) {
  Matrix<double> a(4, 3);
  Matrix<double> b(4, 4);  // inner mismatch
  Matrix<double> c(4, 4);
  EXPECT_THROW(gemm(Op::None, Op::None, 1.0, a, b, 0.0, c),
               std::invalid_argument);
}

TEST(Gemm, FloatPath) {
  Matrix<float> a = Matrix<float>::random_normal(33, 21, 5);
  Matrix<float> b = Matrix<float>::random_normal(21, 19, 6);
  Matrix<float> c(33, 19);
  gemm(Op::None, Op::None, 1.0f, a, b, 0.0f, c);
  Matrix<float> expect = naive_gemm(Op::None, Op::None, 1.0f, a, b, 0.0f,
                                    Matrix<float>(33, 19));
  EXPECT_LT(diff_fro(c, expect), 1e-3);
}

// --------------------------------------------------------------- GEMV ----

TEST(Gemv, MatchesGemm) {
  Matrix<double> a = Matrix<double>::random_normal(9, 7, 11);
  Matrix<double> x = Matrix<double>::random_normal(7, 1, 12);
  Matrix<double> y(9, 1);
  gemv(Op::None, 1.0, a, x.data(), 0.0, y.data());
  Matrix<double> expect = matmul(a, x);
  EXPECT_LT(diff_fro(y, expect), 1e-12);

  Matrix<double> xt = Matrix<double>::random_normal(9, 1, 13);
  Matrix<double> yt(7, 1);
  gemv(Op::Trans, 1.0, a, xt.data(), 0.0, yt.data());
  Matrix<double> expect_t(7, 1);
  gemm(Op::Trans, Op::None, 1.0, a, xt, 0.0, expect_t);
  EXPECT_LT(diff_fro(yt, expect_t), 1e-12);
}

// --------------------------------------------------------------- TRSM ----

class TrsmCombos : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(TrsmCombos, SolvesAgainstGemm) {
  const auto [upper, trans] = GetParam();
  const index_t n = 24;
  // Well-conditioned triangular factor: diag dominant.
  Matrix<double> a = Matrix<double>::random_normal(n, n, 21);
  for (index_t i = 0; i < n; ++i) a(i, i) = 5.0 + std::abs(a(i, i));
  // Zero out the unused triangle so we can verify with a plain gemm.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      if (upper ? (i > j) : (i < j)) a(i, j) = 0.0;

  Matrix<double> x_true = Matrix<double>::random_normal(n, 5, 22);
  Matrix<double> b(n, 5);
  gemm(trans ? Op::Trans : Op::None, Op::None, 1.0, a, x_true, 0.0, b);
  trsm(upper, trans ? Op::Trans : Op::None, false, 1.0, a, b);
  EXPECT_LT(diff_fro(b, x_true), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, TrsmCombos,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Trsm, AlphaScaling) {
  Matrix<double> a = Matrix<double>::identity(3);
  Matrix<double> b(3, 1, 2.0);
  trsm(true, Op::None, false, 0.5, a, b);
  EXPECT_DOUBLE_EQ(b(0, 0), 1.0);
}

TEST(Trsm, BlockedPathAllTriangleOpDiagCombinations) {
  // n = 200 engages the blocked right-looking path (scalar diagonal
  // blocks + GEMM panel downdates, threshold n > 96); every combination
  // of {upper, lower} x {Op::None, Op::Trans} x {unit, non-unit} must
  // solve a well-conditioned triangular system back to the known x.
  const index_t n = 200;
  const index_t rhs = 3;
  // Small off-diagonal entries keep even the unit-diagonal triangles
  // well conditioned (unit triangular solves amplify O(1) off-diagonals
  // exponentially in n, which would measure conditioning, not the code).
  Matrix<double> a = Matrix<double>::random_normal(n, n, 401);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) a(i, j) *= 0.01;
  for (index_t i = 0; i < n; ++i) a(i, i) = 2.0 + a(i, i);
  const Matrix<double> x_true = Matrix<double>::random_normal(n, rhs, 402);

  for (const bool upper : {false, true}) {
    for (const Op op : {Op::None, Op::Trans}) {
      for (const bool unit : {false, true}) {
        // Materialise op(tri(A)) densely to build the right-hand side.
        Matrix<double> t(n, n);
        for (index_t j = 0; j < n; ++j)
          for (index_t i = 0; i < n; ++i) {
            const bool keep = upper ? (i <= j) : (i >= j);
            t(i, j) = keep ? a(i, j) : 0.0;
            if (unit && i == j) t(i, j) = 1.0;
          }
        Matrix<double> b(n, rhs);
        gemm(op, Op::None, 1.0, t, x_true, 0.0, b);
        trsm(upper, op, unit, 1.0, a, b);
        EXPECT_LT(diff_fro(b, x_true), 1e-10 * (1 + norm_fro(x_true)))
            << "upper=" << upper << " trans=" << (op == Op::Trans)
            << " unit=" << unit;
      }
    }
  }
}

// ----------------------------------------------------------- Cholesky ----

TEST(Cholesky, FactorizesAndSolves) {
  const index_t n = 40;
  Matrix<double> g = Matrix<double>::random_normal(n, n, 31);
  Matrix<double> spd(n, n);
  gemm(Op::None, Op::Trans, 1.0, g, g, 0.0, spd);
  for (index_t i = 0; i < n; ++i) spd(i, i) += double(n);

  Matrix<double> l = spd;
  ASSERT_TRUE(potrf_lower(l));
  // L L^T == spd (lower triangle check via reconstruction).
  Matrix<double> ll(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) l(i, j) = 0.0;  // clear upper
  gemm(Op::None, Op::Trans, 1.0, l, l, 0.0, ll);
  EXPECT_LT(diff_fro(ll, spd), 1e-8 * norm_fro(spd));

  Matrix<double> x_true = Matrix<double>::random_normal(n, 3, 32);
  Matrix<double> b(n, 3);
  gemm(Op::None, Op::None, 1.0, spd, x_true, 0.0, b);
  chol_solve(l, b);
  EXPECT_LT(diff_fro(b, x_true), 1e-8);
}

TEST(Cholesky, BlockedPathFactorizesLargeSystems) {
  // n = 300 crosses the right-looking panel boundary several times (block
  // 96), so panel factorization, the L21 solve, and the gemm_panel
  // trailing downdates are all exercised — against a reconstruction
  // check, and a solve against a known solution.
  const index_t n = 300;
  Matrix<double> g = Matrix<double>::random_normal(n, n, 33);
  Matrix<double> spd(n, n);
  gemm(Op::None, Op::Trans, 1.0, g, g, 0.0, spd);
  for (index_t i = 0; i < n; ++i) spd(i, i) += double(n);

  Matrix<double> l = spd;
  ASSERT_TRUE(potrf_lower(l));
  // Documented contract: the strict upper triangle is never touched —
  // the blocked trailing downdates must not leak into the stripe wedges.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i)
      ASSERT_EQ(l(i, j), spd(i, j)) << i << "," << j;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) l(i, j) = 0.0;  // clear upper
  Matrix<double> ll(n, n);
  gemm(Op::None, Op::Trans, 1.0, l, l, 0.0, ll);
  EXPECT_LT(diff_fro(ll, spd), 1e-10 * norm_fro(spd));

  Matrix<double> x_true = Matrix<double>::random_normal(n, 2, 34);
  Matrix<double> b(n, 2);
  gemm(Op::None, Op::None, 1.0, spd, x_true, 0.0, b);
  chol_solve(l, b);
  EXPECT_LT(diff_fro(b, x_true), 1e-7);
}

TEST(Cholesky, BlockedPathRejectsIndefiniteTrailingBlock) {
  // Indefiniteness hiding in a late panel must still be detected.
  const index_t n = 260;
  Matrix<double> g = Matrix<double>::random_normal(n, n, 35);
  Matrix<double> spd(n, n);
  gemm(Op::None, Op::Trans, 1.0, g, g, 0.0, spd);
  for (index_t i = 0; i < n; ++i) spd(i, i) += double(n);
  spd(n - 3, n - 3) = -spd(n - 3, n - 3);
  EXPECT_FALSE(potrf_lower(spd));
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix<double> a = Matrix<double>::identity(3);
  a(2, 2) = -1.0;
  EXPECT_FALSE(potrf_lower(a));
}

TEST(Cholesky, SpdInverse) {
  const index_t n = 30;
  Matrix<double> g = Matrix<double>::random_normal(n, n, 41);
  Matrix<double> spd(n, n);
  gemm(Op::None, Op::Trans, 1.0, g, g, 0.0, spd);
  for (index_t i = 0; i < n; ++i) spd(i, i) += double(n);
  Matrix<double> inv = spd_inverse(spd);
  Matrix<double> prod = matmul(spd, inv);
  EXPECT_LT(diff_fro(prod, Matrix<double>::identity(n)), 1e-8);
  // Symmetry of the inverse.
  EXPECT_LT(diff_fro(inv, inv.transposed()), 1e-12 * norm_fro(inv));
}

// --------------------------------------------------- Householder QR ----

/// Materialises Q from a geqrf factorization by applying it to I.
template <typename T>
Matrix<T> materialize_q(const Matrix<T>& qr, const std::vector<T>& tau) {
  Matrix<T> q = Matrix<T>::identity(qr.rows());
  ormqr_left(Op::None, qr, tau, q);
  return q;
}

TEST(Geqrf, ReconstructsTallMatrixAndQIsOrthogonal) {
  // Sizes straddle the compact-WY panel width (32): unblocked, exactly
  // one panel, and multi-panel paths all run.
  for (const index_t cols : {index_t(5), index_t(32), index_t(80)}) {
    const index_t m = 2 * cols + 7;
    Matrix<double> a = Matrix<double>::random_normal(m, cols, 91);
    Matrix<double> qr = a;
    std::vector<double> tau;
    geqrf(qr, tau);
    ASSERT_EQ(index_t(tau.size()), cols);

    const Matrix<double> q = materialize_q(qr, tau);
    // ‖QᵀQ − I‖ <= m·ε — the orthogonality contract the engine's λ-retune
    // rests on (λI must commute through Q exactly up to round-off).
    Matrix<double> qtq(m, m);
    gemm(Op::Trans, Op::None, 1.0, q, q, 0.0, qtq);
    for (index_t i = 0; i < m; ++i) qtq(i, i) -= 1.0;
    EXPECT_LE(norm_fro(qtq),
              double(m) * std::numeric_limits<double>::epsilon() * 8)
        << "cols " << cols;

    // Q R == A.
    Matrix<double> r(m, cols);
    for (index_t j = 0; j < cols; ++j)
      for (index_t i = 0; i <= j; ++i) r(i, j) = qr(i, j);
    EXPECT_LT(diff_fro(matmul(q, r), a), 1e-12 * (1 + norm_fro(a)))
        << "cols " << cols;
  }
}

TEST(Geqrf, QrExtractRMatchesUpperTriangle) {
  const index_t m = 50, n = 20;
  Matrix<double> qr = Matrix<double>::random_normal(m, n, 92);
  std::vector<double> tau;
  geqrf(qr, tau);
  const Matrix<double> r = qr_extract_r(qr);
  ASSERT_EQ(r.rows(), n);
  ASSERT_EQ(r.cols(), n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(r(i, j), i <= j ? qr(i, j) : 0.0);
}

TEST(Ormqr, TransThenNoneRoundTripsAndShiftCommutes) {
  const index_t m = 90, n = 40;  // multi-panel reflector set
  Matrix<double> qr = Matrix<double>::random_normal(m, n, 93);
  std::vector<double> tau;
  geqrf(qr, tau);

  // Qᵀ then Q round-trips a block of vectors.
  const Matrix<double> c0 = Matrix<double>::random_normal(m, 6, 94);
  Matrix<double> c = c0;
  ormqr_left(Op::Trans, qr, tau, c);
  ormqr_left(Op::None, qr, tau, c);
  EXPECT_LT(diff_fro(c, c0), 1e-12 * norm_fro(c0));

  // Qᵀ(A + λI)Q == QᵀAQ + λI — THE identity the orthogonal-ULV retune
  // rests on, checked on a dense symmetric block.
  Matrix<double> g = Matrix<double>::random_normal(m, m, 95);
  Matrix<double> sym(m, m);
  gemm(Op::None, Op::Trans, 1.0, g, g, 0.0, sym);
  const double lambda = 0.37;
  auto rotate = [&](Matrix<double> x) {
    ormqr_left(Op::Trans, qr, tau, x);
    Matrix<double> xt = x.transposed();
    ormqr_left(Op::Trans, qr, tau, xt);
    return xt;
  };
  Matrix<double> shifted = sym;
  for (index_t i = 0; i < m; ++i) shifted(i, i) += lambda;
  Matrix<double> lhs = rotate(shifted);   // Qᵀ(A+λI)Q
  Matrix<double> rhs = rotate(sym);       // QᵀAQ + λI
  for (index_t i = 0; i < m; ++i) rhs(i, i) += lambda;
  EXPECT_LT(diff_fro(lhs, rhs), 1e-11 * norm_fro(sym));
}

TEST(Ormqr, ZeroesBasisBelowR) {
  // Qᵀ V = [R; 0]: the rotated basis vanishes below its rank — the
  // structural fact that closes the eliminated rows over themselves.
  const index_t m = 70, n = 24;
  Matrix<double> v = Matrix<double>::random_normal(m, n, 96);
  Matrix<double> qr = v;
  std::vector<double> tau;
  geqrf(qr, tau);
  ormqr_left(Op::Trans, qr, tau, v);
  double below = 0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = n; i < m; ++i) below = std::max(below, std::abs(v(i, j)));
  EXPECT_LT(below, 1e-13);
}

TEST(Geqrf, FloatPath) {
  const index_t m = 60, n = 33;
  Matrix<float> a = Matrix<float>::random_normal(m, n, 97);
  Matrix<float> qr = a;
  std::vector<float> tau;
  geqrf(qr, tau);
  const Matrix<float> q = materialize_q(qr, tau);
  Matrix<float> r(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = qr(i, j);
  EXPECT_LT(diff_fro(matmul(q, r), a), 1e-4 * (1 + norm_fro(a)));
}

TEST(Geqrf, RejectsWideMatrices) {
  Matrix<double> a(3, 5);
  std::vector<double> tau;
  EXPECT_THROW(geqrf(a, tau), std::invalid_argument);
}

// ------------------------------------------- cached compact-WY (geqrt) ----

/// Exact bitwise equality of two same-shape matrices (no tolerance).
template <typename T>
::testing::AssertionResult bitwise_equal(const Matrix<T>& a,
                                         const Matrix<T>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    return ::testing::AssertionFailure() << "shape mismatch";
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      if (std::memcmp(&a(i, j), &b(i, j), sizeof(T)) != 0)
        return ::testing::AssertionFailure()
               << "first difference at (" << i << ", " << j << "): " << a(i, j)
               << " vs " << b(i, j);
  return ::testing::AssertionSuccess();
}

template <typename T>
void check_cached_matches_rebuilt(index_t m, index_t k, index_t ncols,
                                  std::uint64_t seed) {
  Matrix<T> a = Matrix<T>::random_normal(m, k, seed);
  Matrix<T> rebuilt_qr = a;
  std::vector<T> tau;
  geqrf(rebuilt_qr, tau);
  const QrFactors<T> qf = qr_factorize(std::move(a));

  // The cached factorization stores the same reflectors geqrf produced.
  ASSERT_TRUE(bitwise_equal(qf.vr, rebuilt_qr));

  for (Op op : {Op::Trans, Op::None}) {
    const Matrix<T> c0 = Matrix<T>::random_normal(m, ncols, seed + 1);
    Matrix<T> c_rebuilt = c0;
    ormqr_left(op, rebuilt_qr, tau, c_rebuilt);
    Matrix<T> c_cached = c0;
    larft_calls_reset();
    ormqr_left(op, qf, c_cached);
    // Zero larft rebuilds on the cached hot path — the defect this PR fixes.
    EXPECT_EQ(larft_calls(), 0u) << "m=" << m << " k=" << k;
    // Both overloads funnel into the same larfb kernel, so the cached
    // result is bitwise identical to the rebuild-per-call result.
    EXPECT_TRUE(bitwise_equal(c_cached, c_rebuilt))
        << "op=" << int(op) << " m=" << m << " k=" << k << " ncols=" << ncols;
  }
}

TEST(Ormqr, CachedMatchesRebuiltBitwiseDouble) {
  // Shapes straddle the panel width 32: unblocked, one panel + tail,
  // multi-panel with non-multiple-of-nb tails; ncols=1 is the narrow-rhs
  // sweep case that motivated the cache.
  check_cached_matches_rebuilt<double>(70, 24, 1, 401);
  check_cached_matches_rebuilt<double>(90, 33, 5, 402);
  check_cached_matches_rebuilt<double>(120, 47, 1, 403);
  check_cached_matches_rebuilt<double>(150, 65, 8, 404);
}

TEST(Ormqr, CachedMatchesRebuiltBitwiseFloat) {
  check_cached_matches_rebuilt<float>(70, 24, 1, 411);
  check_cached_matches_rebuilt<float>(150, 65, 8, 412);
}

TEST(Ormqr, ForceRebuildFallbackMatchesCached) {
  // The qr_set_force_rebuild escape hatch routes the cached overload
  // through the rebuild path; results must stay bitwise identical and the
  // larft counter must show the rebuilds actually happened.
  const index_t m = 100, k = 40;
  const QrFactors<double> qf =
      qr_factorize(Matrix<double>::random_normal(m, k, 421));
  const Matrix<double> c0 = Matrix<double>::random_normal(m, 3, 422);

  Matrix<double> c_cached = c0;
  ormqr_left(Op::Trans, qf, c_cached);

  qr_set_force_rebuild(true);
  ASSERT_TRUE(qr_force_rebuild());
  Matrix<double> c_forced = c0;
  larft_calls_reset();
  ormqr_left(Op::Trans, qf, c_forced);
  EXPECT_GT(larft_calls(), 0u);
  qr_set_force_rebuild(false);

  EXPECT_TRUE(bitwise_equal(c_forced, c_cached));
}

TEST(Ormqr, FlopModelMatchesMeasuredExactly) {
  // ormqr_flops is an exact panel-loop model of the larfb work, so it must
  // equal the measured counter to the flop — not approximately. This is
  // the satellite fix for the old ~4mnk model that ignored panel shape.
  for (const auto& [m, k, ncols] :
       {std::tuple<index_t, index_t, index_t>{90, 33, 1},
        std::tuple<index_t, index_t, index_t>{150, 65, 8},
        std::tuple<index_t, index_t, index_t>{64, 32, 4}}) {
    const QrFactors<double> qf =
        qr_factorize(Matrix<double>::random_normal(m, k, 431));
    Matrix<double> c = Matrix<double>::random_normal(m, ncols, 432);
    ormqr_measured_flops_reset();
    ormqr_left(Op::Trans, qf, c);
    ormqr_left(Op::None, qf, c);
    ASSERT_EQ(ormqr_measured_flops(), 2 * ormqr_flops(m, k, ncols))
        << "m=" << m << " k=" << k << " ncols=" << ncols;
  }
}

TEST(Ormqr, QrFactorsExtractRAndSizeAccounting) {
  const index_t m = 90, k = 40;
  Matrix<double> a = Matrix<double>::random_normal(m, k, 441);
  Matrix<double> qr = a;
  std::vector<double> tau;
  geqrf(qr, tau);
  const QrFactors<double> qf = qr_factorize(std::move(a));
  // R extraction agrees between the raw and cached forms.
  EXPECT_TRUE(bitwise_equal(qr_extract_r(qf), qr_extract_r(qr)));
  // size() covers vr + tau + every cached V/T panel (memory accounting
  // used by FactorizationStats).
  std::uint64_t expect = std::uint64_t(qf.vr.size()) + qf.tau.size();
  for (const auto& v : qf.v) expect += std::uint64_t(v.size());
  for (const auto& t : qf.t) expect += std::uint64_t(t.size());
  EXPECT_EQ(qf.size(), expect);
  EXPECT_FALSE(qf.empty());
  EXPECT_EQ(qf.m, m);
  EXPECT_EQ(qf.k, k);
}

// ----------------------------------------------------------------- LU ----

TEST(Lu, FactorizesAndSolvesGeneralSystem) {
  const index_t n = 32;
  Matrix<double> a = Matrix<double>::random_normal(n, n, 81);
  Matrix<double> x_true = Matrix<double>::random_normal(n, 4, 82);
  Matrix<double> b(n, 4);
  gemm(Op::None, Op::None, 1.0, a, x_true, 0.0, b);

  Matrix<double> lu = a;
  std::vector<index_t> piv;
  ASSERT_TRUE(getrf(lu, piv));
  getrs(lu, piv, b);
  EXPECT_LT(diff_fro(b, x_true), 1e-9 * (1 + norm_fro(x_true)));
}

TEST(Lu, BlockedPathFactorizesLargeSystems) {
  // n = 200 crosses the panel boundary (block 64): pivoted panel LU, the
  // U12 triangular stripe, and the gemm_panel trailing downdate all run.
  const index_t n = 200;
  Matrix<double> a = Matrix<double>::random_normal(n, n, 83);
  Matrix<double> x_true = Matrix<double>::random_normal(n, 3, 84);
  Matrix<double> b(n, 3);
  gemm(Op::None, Op::None, 1.0, a, x_true, 0.0, b);

  Matrix<double> lu = a;
  std::vector<index_t> piv;
  ASSERT_TRUE(getrf(lu, piv));
  getrs(lu, piv, b);
  EXPECT_LT(diff_fro(b, x_true), 1e-7 * (1 + norm_fro(x_true)));

  // P A = L U reconstruction: apply the recorded row swaps to A and
  // compare against the unit-lower times upper product.
  Matrix<double> pa = a;
  for (index_t k = 0; k < n; ++k) {
    const index_t p = piv[std::size_t(k)];
    if (p != k)
      for (index_t j = 0; j < n; ++j) std::swap(pa(k, j), pa(p, j));
  }
  Matrix<double> l = Matrix<double>::identity(n);
  Matrix<double> u(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) l(i, j) = lu(i, j);
    for (index_t i = 0; i <= j; ++i) u(i, j) = lu(i, j);
  }
  EXPECT_LT(diff_fro(matmul(l, u), pa), 1e-10 * norm_fro(pa));
}

TEST(Lu, SolvesIndefiniteSymmetricSystem) {
  // The HODLR capacitance matrices are symmetric indefinite: M + W^T X
  // with M = [[0, I], [I, 0]]. Check LU handles that structure.
  const index_t r = 6;
  Matrix<double> m(2 * r, 2 * r);
  for (index_t j = 0; j < r; ++j) {
    m(j, r + j) = 1.0;
    m(r + j, j) = 1.0;
  }
  Matrix<double> g = Matrix<double>::random_normal(2 * r, 2 * r, 83);
  Matrix<double> sym(2 * r, 2 * r);
  gemm(Op::None, Op::Trans, 0.1, g, g, 0.0, sym);
  for (index_t j = 0; j < 2 * r; ++j)
    for (index_t i = 0; i < 2 * r; ++i) m(i, j) += sym(i, j);

  Matrix<double> x_true = Matrix<double>::random_normal(2 * r, 2, 84);
  Matrix<double> b(2 * r, 2);
  gemm(Op::None, Op::None, 1.0, m, x_true, 0.0, b);
  std::vector<index_t> piv;
  ASSERT_TRUE(getrf(m, piv));
  getrs(m, piv, b);
  EXPECT_LT(diff_fro(b, x_true), 1e-9);
}

TEST(Lu, DetectsSingularity) {
  Matrix<double> a(3, 3);  // all zeros
  std::vector<index_t> piv;
  EXPECT_FALSE(getrf(a, piv));
}

// --------------------------------------------------- Bunch-Kaufman LDLᵀ ----

namespace {

/// Random symmetric matrix with eigenvalues spread across both signs.
Matrix<double> random_indefinite(index_t n, std::uint64_t seed) {
  Matrix<double> g = Matrix<double>::random_normal(n, n, seed);
  Matrix<double> a(n, n);
  gemm(Op::None, Op::Trans, 1.0, g, g, 0.0, a);
  // Shift by a multiple of the identity to push part of the spectrum
  // negative; Gram eigenvalues concentrate well below n for random G.
  for (index_t i = 0; i < n; ++i) a(i, i) -= double(n) / 2.0;
  return a;
}

}  // namespace

TEST(Ldlt, FactorizesAndSolvesIndefiniteSystem) {
  const index_t n = 48;
  Matrix<double> a = random_indefinite(n, 301);
  Matrix<double> x_true = Matrix<double>::random_normal(n, 3, 302);
  Matrix<double> b(n, 3);
  gemm(Op::None, Op::None, 1.0, a, x_true, 0.0, b);

  Matrix<double> f = a;
  std::vector<index_t> ipiv;
  ASSERT_TRUE(sytrf_lower(f, ipiv));
  sytrs_lower(f, ipiv, b);
  EXPECT_LT(diff_fro(b, x_true), 1e-9 * (1 + norm_fro(x_true)));

  // Cholesky must refuse the same matrix (it is genuinely indefinite).
  Matrix<double> c = a;
  EXPECT_FALSE(potrf_lower(c));
}

TEST(Ldlt, MatchesCholeskyOnSpdInput) {
  // On an SPD matrix LDLᵀ and Cholesky agree on the determinant and the
  // solve; the inertia must report zero negative eigenvalues.
  const index_t n = 24;
  Matrix<double> g = Matrix<double>::random_normal(n, n, 305);
  Matrix<double> a(n, n);
  gemm(Op::None, Op::Trans, 1.0, g, g, 0.0, a);
  for (index_t i = 0; i < n; ++i) a(i, i) += double(n);

  Matrix<double> c = a;
  ASSERT_TRUE(potrf_lower(c));
  double ld_chol = 0;
  for (index_t i = 0; i < n; ++i) ld_chol += 2.0 * std::log(c(i, i));

  Matrix<double> f = a;
  std::vector<index_t> ipiv;
  ASSERT_TRUE(sytrf_lower(f, ipiv));
  const LdltInertia inertia = ldlt_inertia(f, ipiv);
  EXPECT_EQ(inertia.negative, 0);
  EXPECT_EQ(inertia.zero, 0);
  EXPECT_EQ(inertia.sign, 1);
  EXPECT_NEAR(inertia.log_abs_det, ld_chol, 1e-9 * std::abs(ld_chol));
}

TEST(Ldlt, InertiaCountsNegativeEigenvaluesOfKnownSpectrum) {
  // D = diag(3, -2, 5, -1, -4, 6) conjugated by an orthogonal-ish random
  // basis keeps its inertia (Sylvester's law) and its determinant.
  const index_t n = 6;
  const double eig[] = {3, -2, 5, -1, -4, 6};
  Matrix<double> q = Matrix<double>::random_normal(n, n, 307);
  // Gram-Schmidt to get an exact orthogonal basis.
  for (index_t j = 0; j < n; ++j) {
    for (index_t k = 0; k < j; ++k) {
      const double proj = dot(n, q.col(k), q.col(j));
      axpy(n, -proj, q.col(k), q.col(j));
    }
    const double nrm = nrm2(n, q.col(j));
    for (index_t i = 0; i < n; ++i) q(i, j) /= nrm;
  }
  Matrix<double> qd = q;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) qd(i, j) *= eig[j];
  Matrix<double> a(n, n);
  gemm(Op::None, Op::Trans, 1.0, qd, q, 0.0, a);
  for (index_t j = 0; j < n; ++j)  // kill round-off asymmetry
    for (index_t i = 0; i < j; ++i) a(j, i) = a(i, j);

  std::vector<index_t> ipiv;
  ASSERT_TRUE(sytrf_lower(a, ipiv));
  const LdltInertia inertia = ldlt_inertia(a, ipiv);
  EXPECT_EQ(inertia.negative, 3);
  EXPECT_EQ(inertia.zero, 0);
  EXPECT_EQ(inertia.sign, -1);  // product of signs: (-)(-)(-) = -
  double ld = 0;
  for (double e : eig) ld += std::log(std::abs(e));
  EXPECT_NEAR(inertia.log_abs_det, ld, 1e-10 * std::abs(ld) + 1e-10);
}

TEST(Ldlt, DetectsExactSingularity) {
  Matrix<double> a(4, 4);  // all zeros: every pivot column is zero
  std::vector<index_t> ipiv;
  EXPECT_FALSE(sytrf_lower(a, ipiv));
}

TEST(Ldlt, FloatPath) {
  const index_t n = 20;
  Matrix<float> a(n, n);
  {
    Matrix<double> ad = random_indefinite(n, 311);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) a(i, j) = float(ad(i, j));
  }
  Matrix<float> x_true = Matrix<float>::random_normal(n, 2, 312);
  Matrix<float> b(n, 2);
  gemm(Op::None, Op::None, 1.0f, a, x_true, 0.0f, b);
  std::vector<index_t> ipiv;
  ASSERT_TRUE(sytrf_lower(a, ipiv));
  sytrs_lower(a, ipiv, b);
  EXPECT_LT(diff_fro(b, x_true), 1e-3 * (1 + norm_fro(x_true)));
}

TEST(Ldlt, BlockedPathFactorizesLargeSystems) {
  // n > 128 drives the LASYF-style blocked panels (kBlock = 64); odd sizes
  // exercise kb < nb panel endings and the unblocked tail. The inertia's
  // log|det| is cross-checked against LU, which validates D globally —
  // a panel mis-downdate would corrupt late pivots and fail this.
  for (const index_t n : {index_t(193), index_t(300)}) {
    Matrix<double> a = random_indefinite(n, 321);
    Matrix<double> x_true = Matrix<double>::random_normal(n, 3, 322);
    Matrix<double> b(n, 3);
    gemm(Op::None, Op::None, 1.0, a, x_true, 0.0, b);

    Matrix<double> f = a;
    std::vector<index_t> ipiv;
    ASSERT_TRUE(sytrf_lower(f, ipiv)) << "n " << n;
    sytrs_lower(f, ipiv, b);
    EXPECT_LT(diff_fro(b, x_true), 1e-8 * (1 + norm_fro(x_true))) << "n " << n;

    double ld_lu = 0;
    {
      Matrix<double> lu = a;
      std::vector<index_t> piv;
      ASSERT_TRUE(getrf(lu, piv));
      for (index_t i = 0; i < n; ++i) ld_lu += std::log(std::abs(lu(i, i)));
    }
    const LdltInertia inertia = ldlt_inertia(f, ipiv);
    EXPECT_EQ(inertia.zero, 0) << "n " << n;
    EXPECT_NEAR(inertia.log_abs_det, ld_lu, 1e-8 * std::abs(ld_lu))
        << "n " << n;
  }
}

// -------------------------------------------------------------- GEQP3 ----

TEST(Geqp3, DiagonalOfRIsNonIncreasing) {
  Matrix<double> a = Matrix<double>::random_normal(50, 30, 51);
  auto qr = geqp3(a, 0.0, 0);
  for (index_t k = 1; k < qr.rank; ++k)
    EXPECT_LE(std::abs(qr.r(k, k)), std::abs(qr.r(k - 1, k - 1)) + 1e-12);
}

TEST(Geqp3, PivotsFormPermutation) {
  Matrix<double> a = Matrix<double>::random_normal(20, 20, 52);
  auto qr = geqp3(a, 0.0, 0);
  std::vector<bool> seen(20, false);
  for (index_t j : qr.jpvt) {
    ASSERT_GE(j, 0);
    ASSERT_LT(j, 20);
    EXPECT_FALSE(seen[std::size_t(j)]);
    seen[std::size_t(j)] = true;
  }
}

TEST(Geqp3, DetectsExactRank) {
  // A = B C with inner dimension 7 => rank exactly 7.
  Matrix<double> b = Matrix<double>::random_normal(40, 7, 53);
  Matrix<double> c = Matrix<double>::random_normal(7, 25, 54);
  Matrix<double> a = matmul(b, c);
  auto qr = geqp3(a, 1e-10, 0);
  EXPECT_EQ(qr.rank, 7);
}

TEST(Geqp3, RespectsMaxRank) {
  Matrix<double> a = Matrix<double>::random_normal(30, 30, 55);
  auto qr = geqp3(a, 0.0, 5);
  EXPECT_EQ(qr.rank, 5);
}

TEST(Geqp3, PreservesColumnNormsInR) {
  // ||A p_j||_2 == ||R(:, j)||_2 for every pivoted column (Q orthogonal).
  Matrix<double> a = Matrix<double>::random_normal(25, 10, 56);
  auto qr = geqp3(a, 0.0, 0);
  for (index_t j = 0; j < 10; ++j) {
    const index_t orig = qr.jpvt[std::size_t(j)];
    const double na = nrm2(25, a.col(orig));
    double nr = 0;
    for (index_t i = 0; i < qr.r.rows(); ++i)
      nr += double(qr.r(i, j)) * double(qr.r(i, j));
    EXPECT_NEAR(na, std::sqrt(nr), 1e-9);
  }
}

// ----------------------------------------------------------------- ID ----

class IdRanks : public ::testing::TestWithParam<int> {};

TEST_P(IdRanks, ReconstructsLowRankMatrix) {
  const index_t r = GetParam();
  Matrix<double> b = Matrix<double>::random_normal(60, r, 61);
  Matrix<double> c = Matrix<double>::random_normal(r, 35, 62);
  Matrix<double> a = matmul(b, c);
  auto id = interp_decomp(a, 1e-10, 0);
  EXPECT_EQ(id.rank, r);
  // A ≈ A(:, skel) P.
  std::vector<index_t> all_rows(60);
  std::iota(all_rows.begin(), all_rows.end(), index_t(0));
  Matrix<double> askel = a.gather(all_rows, id.skel);
  Matrix<double> rec = matmul(askel, id.p);
  EXPECT_LT(diff_fro(rec, a), 1e-7 * norm_fro(a));
}

INSTANTIATE_TEST_SUITE_P(Ranks, IdRanks, ::testing::Values(1, 3, 8, 20));

TEST(Id, IdentityOnSkeletonColumns) {
  Matrix<double> a = Matrix<double>::random_normal(30, 12, 63);
  auto id = interp_decomp(a, 0.0, 6);
  ASSERT_EQ(id.rank, 6);
  for (index_t t = 0; t < id.rank; ++t) {
    const index_t col = id.skel[std::size_t(t)];
    for (index_t i = 0; i < id.rank; ++i)
      EXPECT_NEAR(id.p(i, col), i == t ? 1.0 : 0.0, 1e-12);
  }
}

TEST(Id, ToleranceControlsError) {
  // Matrix with geometric singular-value decay.
  const index_t n = 40;
  Matrix<double> u = Matrix<double>::random_normal(n, n, 64);
  Matrix<double> a(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      a(i, j) = u(i, j) * std::pow(0.5, double(j));
  auto loose = interp_decomp(a, 1e-2, 0);
  auto tight = interp_decomp(a, 1e-8, 0);
  EXPECT_LT(loose.rank, tight.rank);
  EXPECT_LE(loose.est_error, 1.1e-2 * 10);  // order of magnitude
}

// ---------------------------------------------------------------- DST ----

TEST(Dst, BasisIsOrthogonal) {
  const index_t n = 16;
  auto q = dst_basis<double>(n);
  Matrix<double> qtq(n, n);
  gemm(Op::Trans, Op::None, 1.0, q, q, 0.0, qtq);
  EXPECT_LT(diff_fro(qtq, Matrix<double>::identity(n)), 1e-12);
}

TEST(Dst, DiagonalizesTridiagonalStencil) {
  const index_t n = 12;
  auto q = dst_basis<double>(n);
  // L = tridiag(-1, 2, -1).
  Matrix<double> l(n, n);
  for (index_t i = 0; i < n; ++i) {
    l(i, i) = 2.0;
    if (i > 0) l(i, i - 1) = -1.0;
    if (i + 1 < n) l(i, i + 1) = -1.0;
  }
  // Q^T L Q should be diag(lambda_k).
  Matrix<double> tmp = matmul(l, q);
  Matrix<double> d(n, n);
  gemm(Op::Trans, Op::None, 1.0, q, tmp, 0.0, d);
  for (index_t k = 0; k < n; ++k)
    EXPECT_NEAR(d(k, k), dst_eigenvalue(k, n), 1e-12);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      if (i != j) EXPECT_NEAR(d(i, j), 0.0, 1e-12);
}

// -------------------------------------------------------------- BLAS-1 ----

TEST(Blas1, NrmDotAxpy) {
  std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(nrm2(2, x.data()), 5.0);
  std::vector<double> y = {1.0, -1.0};
  EXPECT_DOUBLE_EQ(dot(2, x.data(), y.data()), -1.0);
  axpy(2, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

// ------------------------------------------- GEMM microkernel dispatch ----

/// RAII guard: pins GOFMM_FORCE_SCALAR for a scope, restoring the previous
/// environment and re-running dispatch on exit.
class ForceScalarGuard {
 public:
  ForceScalarGuard() {
    const char* prev = std::getenv("GOFMM_FORCE_SCALAR");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("GOFMM_FORCE_SCALAR", "1", 1);
    gemm_kernel_refresh();
  }
  ~ForceScalarGuard() {
    if (had_prev_)
      setenv("GOFMM_FORCE_SCALAR", prev_.c_str(), 1);
    else
      unsetenv("GOFMM_FORCE_SCALAR");
    gemm_kernel_refresh();
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(GemmKernel, DispatchReportsAKnownKernel) {
  const std::string name = gemm_kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
}

TEST(GemmKernel, ForceScalarEscapeHatchPinsScalarKernel) {
  ForceScalarGuard guard;
  EXPECT_STREQ(gemm_kernel_name(), "scalar");
}

template <typename T>
void check_dispatch_bitwise(index_t m, index_t n, index_t k) {
  // Odd, non-multiple-of-vector-width sizes: every kernel path (4-column
  // panels, 1-column remainder, SIMD body, scalar tails on misaligned
  // trailing rows) runs. The ASan/UBSan presets re-run this, which is
  // where an out-of-bounds vector tail would trip.
  const Matrix<T> a = Matrix<T>::random_normal(m, k, 451);
  const Matrix<T> b = Matrix<T>::random_normal(k, n, 452);
  const Matrix<T> c0 = Matrix<T>::random_normal(m, n, 453);

  Matrix<T> c_dispatched = c0;
  gemm(Op::None, Op::None, T(1.3), a, b, T(-0.7), c_dispatched);

  Matrix<T> c_scalar = c0;
  {
    ForceScalarGuard guard;
    gemm(Op::None, Op::None, T(1.3), a, b, T(-0.7), c_scalar);
  }

  // Both kernels perform the identical per-element mul+add sequence (the
  // AVX2 kernel never contracts to FMA), so dispatch must never change a
  // single bit of the result.
  EXPECT_TRUE(bitwise_equal(c_dispatched, c_scalar))
      << m << "x" << n << "x" << k << " kernel " << gemm_kernel_name();
}

TEST(GemmKernel, ScalarAndDispatchedBitwiseIdenticalDouble) {
  check_dispatch_bitwise<double>(257, 130, 241);
  check_dispatch_bitwise<double>(65, 1, 33);
  check_dispatch_bitwise<double>(3, 5, 2);
}

TEST(GemmKernel, ScalarAndDispatchedBitwiseIdenticalFloat) {
  check_dispatch_bitwise<float>(257, 130, 241);
  check_dispatch_bitwise<float>(67, 3, 31);
}

// ------------------------------------------------------------- eigen ----

TEST(Steqr, DiagonalizesKnownTridiagonal) {
  // The (-1, 2, -1) stencil of size n has eigenvalues
  // 2 - 2cos(kπ/(n+1)), a closed-form cross-check of TQL2.
  const int n = 12;
  std::vector<double> diag(n, 2.0);
  std::vector<double> off(n - 1, -1.0);
  Matrix<double> z = Matrix<double>::identity(n);
  ASSERT_TRUE(steqr(diag, off, &z));
  for (int i = 0; i < n; ++i) {
    const double want =
        2.0 - 2.0 * std::cos(double(i + 1) * M_PI / double(n + 1));
    EXPECT_NEAR(diag[std::size_t(i)], want, 1e-12) << "eigenvalue " << i;
    EXPECT_LE(diag[std::size_t(i)],
              i + 1 < n ? diag[std::size_t(i) + 1] : 1e300)
        << "not ascending";
  }
  // z columns are the eigenvectors: T z_i = λ_i z_i and zᵀz = I.
  for (int i = 0; i < n; ++i) {
    for (int r = 0; r < n; ++r) {
      double tz = 2.0 * z(r, i);
      if (r > 0) tz -= z(r - 1, i);
      if (r + 1 < n) tz -= z(r + 1, i);
      EXPECT_NEAR(tz, diag[std::size_t(i)] * z(r, i), 1e-12);
    }
    for (int j = 0; j < n; ++j)
      EXPECT_NEAR(dot(n, z.col(i), z.col(j)), i == j ? 1.0 : 0.0, 1e-12);
  }
}

TEST(Steqr, RotatesAPassedBasisIntoRitzVectors) {
  // Passing an m-by-n block (not identity) must rotate its columns by the
  // same similarity — the Lanczos Ritz-vector path.
  std::vector<double> diag = {1.0, 3.0, 2.0};
  std::vector<double> off = {0.4, 0.1};
  Matrix<double> v = Matrix<double>::random_normal(7, 3, 99);
  const Matrix<double> v0 = v;
  std::vector<double> d2 = diag;
  std::vector<double> o2 = off;
  Matrix<double> s = Matrix<double>::identity(3);
  ASSERT_TRUE(steqr(d2, o2, &s));
  ASSERT_TRUE(steqr(diag, off, &v));
  // v == v0 * s column for column.
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 7; ++i) {
      double want = 0;
      for (index_t l = 0; l < 3; ++l) want += v0(i, l) * s(l, j);
      EXPECT_NEAR(v(i, j), want, 1e-13);
    }
}

TEST(Syev, MatchesEigendecompositionOfRandomSpd) {
  const index_t n = 24;
  // A = GᵀG + I: symmetric positive definite with spread singular values.
  const Matrix<double> g = Matrix<double>::random_normal(n, n, 5);
  Matrix<double> a(n, n);
  gemm(Op::Trans, Op::None, 1.0, g, g, 0.0, a);
  for (index_t i = 0; i < n; ++i) a(i, i) += 1.0;

  std::vector<double> w;
  Matrix<double> z(n, n);
  ASSERT_TRUE(syev(a, w, &z));
  ASSERT_EQ(index_t(w.size()), n);
  double trace = 0, wsum = 0;
  for (index_t i = 0; i < n; ++i) {
    trace += a(i, i);
    wsum += w[std::size_t(i)];
    if (i > 0) EXPECT_GE(w[std::size_t(i)], w[std::size_t(i) - 1]);
    EXPECT_GT(w[std::size_t(i)], 0.0);  // SPD input
  }
  EXPECT_NEAR(trace, wsum, 1e-10 * std::abs(trace));
  // Residual ‖A z_i − w_i z_i‖ and orthonormality of z.
  for (index_t i = 0; i < n; ++i) {
    for (index_t r = 0; r < n; ++r) {
      double az = 0;
      for (index_t c = 0; c < n; ++c) az += a(r, c) * z(c, i);
      EXPECT_NEAR(az, w[std::size_t(i)] * z(r, i), 1e-9 * w[w.size() - 1]);
    }
    for (index_t j = 0; j <= i; ++j)
      EXPECT_NEAR(dot(n, z.col(i), z.col(j)), i == j ? 1.0 : 0.0, 1e-12);
  }
}

TEST(Syev, ReferencesOnlyTheLowerTriangle) {
  // Garbage in the strict upper triangle must not change the result.
  Matrix<double> a(5, 5);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = j; i < 5; ++i) a(i, j) = 1.0 / double(i + j + 1);
  Matrix<double> dirty = a;
  for (index_t j = 1; j < 5; ++j)
    for (index_t i = 0; i < j; ++i) dirty(i, j) = 1e9;
  std::vector<double> w1, w2;
  ASSERT_TRUE(syev(a, w1));
  ASSERT_TRUE(syev(dirty, w2));
  for (std::size_t i = 0; i < w1.size(); ++i) EXPECT_EQ(w1[i], w2[i]);
}

TEST(Syev, AgreesWithLdltInertiaAcrossShifts) {
  // The two dense cross-check tools of the spectral tier must agree with
  // each other: #{w < σ} from syev == LDLᵀ inertia of A − σI.
  const index_t n = 16;
  const Matrix<double> g = Matrix<double>::random_normal(n, n, 21);
  Matrix<double> a(n, n);
  gemm(Op::Trans, Op::None, 1.0, g, g, 0.0, a);
  std::vector<double> w;
  ASSERT_TRUE(syev(a, w));
  for (double q : {0.2, 0.5, 0.8}) {
    const std::size_t i = std::size_t(q * double(n - 1));
    if (w[i + 1] - w[i] < 1e-12) continue;
    const double sigma = 0.5 * (w[i] + w[i + 1]);
    Matrix<double> shifted = a;
    for (index_t d = 0; d < n; ++d) shifted(d, d) -= sigma;
    std::vector<index_t> ipiv;
    ASSERT_TRUE(sytrf_lower(shifted, ipiv));
    EXPECT_EQ(ldlt_inertia(shifted, ipiv).negative, index_t(i) + 1);
  }
}

}  // namespace
}  // namespace gofmm::la
