// Property tests of the hierarchical factorization & solve subsystem
// (core/factorization.hpp) and the preconditioned solve path:
//
//  - solve() inverts the factored operator across the matrix zoo,
//  - logdet() matches a dense Cholesky on small N,
//  - solve() is const, thread-safe, and bit-identical across 8 concurrent
//    threads sharing one factorized operator (the PR 1 evaluate contract
//    extended to the solver),
//  - preconditioned_solve() on the zoo's Gaussian-kernel N = 4096 case
//    reaches 1e-8 residual in ≤ 1/3 the CG iterations of the
//    unpreconditioned path (the acceptance criterion of this subsystem).
//
// Heavy cases are skipped under ThreadSanitizer (the CI TSan job runs the
// concurrency tests here plus test_operator).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/hodlr.hpp"
#include "baselines/rand_hss.hpp"
#include "core/factorization.hpp"
#include "core/gofmm.hpp"
#include "core/solvers.hpp"
#include "la/blas.hpp"
#include "la/lapack.hpp"
#include "la/ldlt.hpp"
#include "la/qr.hpp"
#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"
#include "matrices/zoo.hpp"

#if defined(__SANITIZE_THREAD__)
#define GOFMM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GOFMM_TSAN 1
#endif
#endif

namespace gofmm {
namespace {

std::shared_ptr<zoo::KernelSPD<double>> test_kernel(index_t n,
                                                    double bandwidth = 1.0,
                                                    std::uint64_t seed = 1) {
  zoo::KernelParams p;
  p.kind = zoo::KernelKind::Gaussian;
  p.bandwidth = bandwidth;
  p.ridge = 1e-6;
  return std::make_shared<zoo::KernelSPD<double>>(
      zoo::gaussian_mixture_cloud<double>(3, n, 6, 0.15, seed), p);
}

/// Pure-HSS configuration: budget 0 makes the ULV factorization capture
/// the whole compressed operator, so solve() must invert apply() exactly.
Config hss_config() {
  return Config::defaults()
      .with_leaf_size(64)
      .with_max_rank(64)
      .with_tolerance(1e-7)
      .with_budget(0.0)
      .with_num_workers(2);
}

double sampled_mean_diag(const SPDMatrix<double>& k) {
  const index_t n = k.size();
  const index_t step = std::max<index_t>(1, n / 32);
  double s = 0;
  index_t cnt = 0;
  for (index_t i = 0; i < n; i += step, ++cnt) {
    const index_t one[] = {i};
    s += std::abs(double(k.submatrix(one, one)(0, 0)));
  }
  return s / double(cnt);
}

// ------------------------------------------------- solve correctness ----

TEST(UlvSolve, InvertsTheFactoredOperatorAcrossTheZoo) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "zoo matrices are too slow under TSan";
#endif
  // Kernel, Green-like, graph, and dataset matrices; budget 0 so the
  // factorization is an exact elimination of the compressed operator.
  for (const char* name : {"K04", "K07", "G02", "COVTYPE"}) {
    auto k = std::shared_ptr<SPDMatrix<double>>(
        zoo::make_matrix<double>(name, 512));
    const index_t n = k->size();
    auto kc = CompressedMatrix<double>::compress(k, hss_config());
    const double lambda = 0.1 * sampled_mean_diag(*k);
    kc.factorize(lambda);
    la::Matrix<double> b = la::Matrix<double>::random_normal(n, 3, 5);
    la::Matrix<double> x = kc.solve(b);
    EXPECT_LT(operator_residual(kc, lambda, b, x), 1e-8) << name;
    EXPECT_TRUE(kc.factorization_stats().positive_definite) << name;
    EXPECT_GT(kc.factorization_stats().flops, 0u) << name;
    EXPECT_GT(kc.factorization_stats().memory_bytes, 0u) << name;
  }
}

TEST(UlvSolve, BlockedSolveMatchesColumnwiseSolvesBitwise) {
  const index_t n = 384;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  kc.factorize(1e-2);
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 4, 7);
  const la::Matrix<double> x = kc.solve(b);
  for (index_t j = 0; j < b.cols(); ++j) {
    la::Matrix<double> bj(n, 1);
    std::copy_n(b.col(j), n, bj.col(0));
    la::Matrix<double> xj = kc.solve(bj);
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(xj(i, 0), x(i, j)) << "column " << j << " row " << i;
  }
}

TEST(RandHssFactorizable, SolveInvertsTheFactoredOperatorAcrossTheZoo) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "zoo matrices are too slow under TSan";
#endif
  // The randomized-HSS structure is pure HSS (every off-diagonal coupling
  // is a sibling skeleton block), so the shared ULV engine must invert
  // apply() to round-off on EVERY zoo entry — the same residual bound the
  // CompressedMatrix budget-0 path meets.
  for (const zoo::ZooInfo& info : zoo::catalog()) {
    auto k = std::shared_ptr<SPDMatrix<double>>(
        zoo::make_matrix<double>(info.name, std::min<index_t>(info.default_n,
                                                              512)));
    const index_t n = k->size();
    baseline::RandHssOptions opts;
    opts.leaf_size = 64;
    opts.max_rank = 96;
    opts.tolerance = 1e-7;
    baseline::RandHss<double> rh(*k, opts);
    const double lambda = 0.1 * sampled_mean_diag(*k);
    rh.factorize(lambda);
    la::Matrix<double> b = la::Matrix<double>::random_normal(n, 3, 5);
    la::Matrix<double> x = rh.solve(b);
    EXPECT_LT(operator_residual(rh, lambda, b, x), 1e-8) << info.name;
    EXPECT_GT(rh.factorization_stats().flops, 0u) << info.name;
    EXPECT_GT(rh.factorization_stats().memory_bytes, 0u) << info.name;
    // Rank-capped compression error can push H̃ + λI indefinite at small λ
    // (paper "Limitations") — solve() still inverts the factored operator
    // exactly (asserted above), but logdet/PCG need positive definiteness,
    // restored by escalating λ exactly as make_preconditioner does.
    double lam = lambda;
    for (int attempt = 0;
         attempt < 6 && !rh.factorization_stats().positive_definite;
         ++attempt) {
      lam *= 10;
      rh.factorize(lam);
    }
    EXPECT_TRUE(rh.factorization_stats().positive_definite) << info.name;
    EXPECT_NO_THROW((void)rh.logdet()) << info.name;
  }
}

TEST(RandHssFactorizable, BlockedSolveMatchesColumnwiseSolvesBitwise) {
  const index_t n = 384;
  auto k = test_kernel(n, 0.5);
  baseline::RandHssOptions opts;
  opts.leaf_size = 64;
  opts.max_rank = 96;
  opts.tolerance = 1e-7;
  baseline::RandHss<double> rh(*k, opts);
  rh.factorize(1e-2);
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 4, 7);
  const la::Matrix<double> x = rh.solve(b);
  for (index_t j = 0; j < b.cols(); ++j) {
    la::Matrix<double> bj(n, 1);
    std::copy_n(b.col(j), n, bj.col(0));
    la::Matrix<double> xj = rh.solve(bj);
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(xj(i, 0), x(i, j)) << "column " << j << " row " << i;
  }
}

TEST(RandHssFactorizable, LogdetMatchesDenseCholeskyOnSmallN) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "dense reference factorization is slow under TSan";
#endif
  const index_t n = 256;
  auto k = test_kernel(n, 1.0);
  const double lambda = 1e-2;

  la::Matrix<double> kd = k->dense();
  for (index_t i = 0; i < n; ++i) kd(i, i) += lambda;
  ASSERT_TRUE(la::potrf_lower(kd));
  double ld_dense = 0;
  for (index_t i = 0; i < n; ++i) ld_dense += 2.0 * std::log(kd(i, i));

  baseline::RandHssOptions opts;
  opts.leaf_size = 32;
  opts.max_rank = 256;
  opts.tolerance = 1e-11;
  baseline::RandHss<double> rh(*k, opts);
  rh.factorize(lambda);
  EXPECT_NEAR(rh.logdet(), ld_dense, 1e-3 * std::abs(ld_dense) + 1e-3);
}

// ------------------------------------------------------- sweep modes ----

TEST(SweepModes, LevelParallelBitIdenticalToSequentialAcrossBackends) {
  // The level-synchronous OpenMP sweep must reproduce the sequential
  // recursion BIT-identically (same GEMM sequence per node, only the
  // schedule differs) — on the permuted GOFMM path, the identity-ordered
  // randomized HSS path, and HODLR's explicit-basis path.
  const index_t n = 500;  // non-power-of-two: uneven leaf sizes
  auto k = test_kernel(n, 0.5);
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 5, 23);

  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  kc.factorize(1e-2);
  {
    const la::Matrix<double> xs =
        kc.factorization().solve(b, SweepMode::Sequential);
    const la::Matrix<double> xp =
        kc.factorization().solve(b, SweepMode::LevelParallel);
    for (index_t j = 0; j < b.cols(); ++j)
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(xs(i, j), xp(i, j)) << "gofmm " << i << "," << j;
  }

  baseline::RandHssOptions sopts;
  sopts.leaf_size = 64;
  baseline::RandHss<double> rh(*k, sopts);
  rh.factorize(1e-2);
  {
    const la::Matrix<double> xs =
        rh.factorization().solve(b, SweepMode::Sequential);
    const la::Matrix<double> xp =
        rh.factorization().solve(b, SweepMode::LevelParallel);
    for (index_t j = 0; j < b.cols(); ++j)
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(xs(i, j), xp(i, j)) << "rand_hss " << i << "," << j;
  }

  baseline::HodlrOptions hopts;
  hopts.leaf_size = 64;
  baseline::Hodlr<double> h(*k, hopts);
  h.factorize(1e-2);
  {
    const la::Matrix<double> xs =
        h.factorization().solve(b, SweepMode::Sequential);
    const la::Matrix<double> xp =
        h.factorization().solve(b, SweepMode::LevelParallel);
    for (index_t j = 0; j < b.cols(); ++j)
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(xs(i, j), xp(i, j)) << "hodlr " << i << "," << j;
  }
}

TEST(UlvSolve, RefactorizeWithNewRegularization) {
  const index_t n = 256;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 2, 11);
  kc.factorize(1e-2);
  EXPECT_LT(operator_residual(kc, 1e-2, b, kc.solve(b)), 1e-6);
  kc.factorize(1.0);  // re-eliminate with a different shift
  EXPECT_LT(operator_residual(kc, 1.0, b, kc.solve(b)), 1e-10);
  EXPECT_EQ(kc.factorization_stats().regularization, 1.0);
}

TEST(HodlrFactorizable, RegularizedSolveInvertsShiftedOperator) {
  const index_t n = 300;
  auto k = test_kernel(n, 0.5);
  baseline::HodlrOptions opts;
  opts.leaf_size = 64;
  opts.tolerance = 1e-8;
  opts.max_rank = 256;
  baseline::Hodlr<double> h(*k, opts);
  const double lambda = 0.25;
  h.factorize(lambda);
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 2, 13);
  la::Matrix<double> x = h.solve(b);
  la::Matrix<double> hx = h.matvec(x);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < n; ++i) hx(i, j) += lambda * x(i, j);
  EXPECT_LT(la::diff_fro(hx, b), 1e-9 * la::norm_fro(b));
  EXPECT_TRUE(h.factorization_stats().positive_definite);
}

// ------------------------------------------------------------ logdet ----

TEST(Logdet, MatchesDenseCholeskyOnSmallN) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "dense reference factorization is slow under TSan";
#endif
  const index_t n = 256;
  auto k = test_kernel(n, 1.0);
  const double lambda = 1e-2;

  la::Matrix<double> kd = k->dense();
  for (index_t i = 0; i < n; ++i) kd(i, i) += lambda;
  ASSERT_TRUE(la::potrf_lower(kd));
  double ld_dense = 0;
  for (index_t i = 0; i < n; ++i) ld_dense += 2.0 * std::log(kd(i, i));

  auto kc = CompressedMatrix<double>::compress(
      k, hss_config().with_leaf_size(32).with_max_rank(256)
             .with_tolerance(1e-11));
  kc.factorize(lambda);
  EXPECT_NEAR(kc.logdet(), ld_dense, 1e-3 * std::abs(ld_dense) + 1e-3);

  baseline::HodlrOptions opts;
  opts.leaf_size = 32;
  opts.tolerance = 1e-11;
  opts.max_rank = 256;
  baseline::Hodlr<double> h(*k, opts);
  h.factorize(lambda);
  EXPECT_NEAR(h.logdet(), ld_dense, 1e-3 * std::abs(ld_dense) + 1e-3);
}

TEST(Logdet, ExactOnSingleLeaf) {
  // leaf_size >= N: the tree is one node and the ULV factorization IS the
  // dense Cholesky, so logdet must agree to round-off.
  const index_t n = 200;
  auto k = test_kernel(n, 1.0);
  const double lambda = 0.5;
  la::Matrix<double> kd = k->dense();
  for (index_t i = 0; i < n; ++i) kd(i, i) += lambda;
  ASSERT_TRUE(la::potrf_lower(kd));
  double ld_dense = 0;
  for (index_t i = 0; i < n; ++i) ld_dense += 2.0 * std::log(kd(i, i));

  auto kc = CompressedMatrix<double>::compress(
      k, hss_config().with_leaf_size(256));
  kc.factorize(lambda);
  EXPECT_NEAR(kc.logdet(), ld_dense, 1e-8 * std::abs(ld_dense));
}

// ------------------------------------------------------- concurrency ----

TEST(ConcurrentSolve, EightThreadsBitIdenticalOnSharedFactorization) {
  // One factorized operator, 8 threads solving concurrently (mixed with
  // concurrent matvecs): every result must be bit-identical to the serial
  // one — solve() allocates all scratch locally and runs a deterministic
  // sequential recursion.
  const index_t n = 512;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  kc.factorize(1e-2);

  constexpr int kThreads = 8;
  constexpr int kRepeats = 3;
  std::vector<la::Matrix<double>> inputs;
  std::vector<la::Matrix<double>> serial;
  for (int t = 0; t < kThreads; ++t) {
    inputs.push_back(la::Matrix<double>::random_normal(n, 2, 400 + t));
    serial.push_back(kc.solve(inputs.back()));
  }

  std::vector<double> worst(kThreads, 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      EvalWorkspace<double> ws;
      for (int rep = 0; rep < kRepeats; ++rep) {
        la::Matrix<double> x = kc.solve(inputs[std::size_t(t)]);
        worst[std::size_t(t)] = std::max(
            worst[std::size_t(t)], la::diff_fro(x, serial[std::size_t(t)]));
        // Interleave const matvecs on the same shared operator.
        (void)kc.apply(inputs[std::size_t(t)], ws);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(worst[std::size_t(t)], 0.0) << "thread " << t;
}

// ----------------------------------------------------- state & probes ----

TEST(FactorizableState, SolveBeforeFactorizeThrows) {
  const index_t n = 128;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  la::Matrix<double> b(n, 1);
  EXPECT_FALSE(kc.factorized());
  EXPECT_THROW((void)kc.solve(b), StateError);
  EXPECT_THROW((void)kc.logdet(), StateError);
  EXPECT_THROW((void)kc.factorization_stats(), StateError);
  EXPECT_THROW(
      preconditioned_solve<double>(kc, 1.0, b, b, kc,
                                   SolveOptions::defaults()
                                       .with_max_iterations(10)),
      StateError);
}

TEST(FactorizableState, CapabilityProbeAcrossBackends) {
  const index_t n = 128;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress_unique(k, hss_config());
  CompressedOperator<double>* op = kc.get();
  ASSERT_NE(op->factorizable(), nullptr);  // GOFMM can factorize
  baseline::HodlrOptions hopts;
  hopts.leaf_size = 64;
  baseline::Hodlr<double> h(*k, hopts);
  ASSERT_NE(h.factorizable(), nullptr);    // HODLR can factorize
  baseline::RandHssOptions sopts;
  sopts.leaf_size = 64;
  baseline::RandHss<double> rh(*k, sopts);
  ASSERT_NE(rh.factorizable(), nullptr);   // randomized HSS can factorize

  // Generic path: probe, factorize, solve through the interface only —
  // every backend goes through the one shared ULV engine.
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 1, 3);
  Factorizable<double>* f = op->factorizable();
  f->factorize(0.5);
  EXPECT_TRUE(f->factorized());
  la::Matrix<double> x = f->solve(b);
  EXPECT_LT(operator_residual(*kc, 0.5, b, x), 1e-10);

  Factorizable<double>* frh = rh.factorizable();
  frh->factorize(0.5);
  EXPECT_TRUE(frh->factorized());
  la::Matrix<double> xrh = frh->solve(b);
  EXPECT_LT(operator_residual(rh, 0.5, b, xrh), 1e-10);
}

TEST(Regularization, RejectsNonFiniteAndGatesNegativeOnElimination) {
  const index_t n = 96;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  EXPECT_THROW(kc.factorize(std::nan("")), Error);
  EXPECT_THROW(kc.factorize(std::numeric_limits<double>::infinity()), Error);
  // A shift that makes the leaves indefinite: strict Cholesky refuses,
  // the default (Auto) eliminates through the pivoted-LDLᵀ fallback.
  EXPECT_THROW(kc.factorize(-1.0, FactorizeOptions::defaults().with_elimination(Elimination::Cholesky)),
               StateError);
  kc.factorize(-1.0);
  EXPECT_TRUE(kc.factorized());
  EXPECT_GT(kc.factorization_stats().ldlt_leaves, 0);
  EXPECT_FALSE(kc.factorization_stats().positive_definite);
}

// ----------------------------------------- indefinite (LDLᵀ) elimination ----

TEST(PivotedLdlt, IndefiniteZooEntriesFactorAndSolveAcrossBackends) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "zoo matrices are too slow under TSan";
#endif
  // A negative shift big enough to break leaf Cholesky on every entry:
  // leaves of K − λ̂I with λ̂ a healthy fraction of the mean diagonal are
  // indefinite (leaf minimum eigenvalues sit well below the mean
  // diagonal), yet K̃ − λ̂I stays invertible, so the pivoted-LDLᵀ path
  // must factor it and solve to the same 1e-8 residual the PD path meets.
  for (const char* name : {"K04", "G02"}) {
    auto k = std::shared_ptr<SPDMatrix<double>>(
        zoo::make_matrix<double>(name, 512));
    const index_t n = k->size();
    const double lambda = -0.5 * sampled_mean_diag(*k);
    la::Matrix<double> b = la::Matrix<double>::random_normal(n, 3, 17);

    auto kc = CompressedMatrix<double>::compress(k, hss_config());
    EXPECT_THROW(
        kc.factorize(lambda, FactorizeOptions::defaults().with_elimination(Elimination::Cholesky)),
        StateError)
        << name;
    kc.factorize(lambda, FactorizeOptions::defaults().with_elimination(Elimination::PivotedLdlt));
    EXPECT_GT(kc.factorization_stats().ldlt_leaves, 0) << name;
    EXPECT_GT(kc.factorization_stats().leaf_negative_eigenvalues, 0) << name;
    EXPECT_FALSE(kc.factorization_stats().positive_definite) << name;
    la::Matrix<double> x = kc.solve(b);
    EXPECT_LT(operator_residual(kc, lambda, b, x), 1e-8) << name;
    EXPECT_THROW((void)kc.logdet(), StateError) << name;  // indefinite

    baseline::RandHssOptions sopts;
    sopts.leaf_size = 64;
    sopts.max_rank = 96;
    sopts.tolerance = 1e-9;
    baseline::RandHss<double> rh(*k, sopts);
    rh.factorize(lambda, FactorizeOptions::defaults().with_elimination(Elimination::PivotedLdlt));
    la::Matrix<double> xrh = rh.solve(b);
    EXPECT_LT(operator_residual(rh, lambda, b, xrh), 1e-8) << name;

    baseline::HodlrOptions hopts;
    hopts.leaf_size = 64;
    hopts.tolerance = 1e-9;
    hopts.max_rank = 256;
    baseline::Hodlr<double> h(*k, hopts);
    h.factorize(lambda, FactorizeOptions::defaults().with_elimination(Elimination::PivotedLdlt));
    la::Matrix<double> xh = h.solve(b);
    EXPECT_LT(operator_residual(h, lambda, b, xh), 1e-8) << name;
  }
}

TEST(PivotedLdlt, SignedLogdetMatchesDenseLdltOnIndefiniteShift) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "dense reference factorization is slow under TSan";
#endif
  // log|det(K̃ − λ̂I)| and sign(det) from the hierarchical elimination
  // (leaf LDLᵀ inertia + capacitance LU signs) must match a dense
  // Bunch–Kaufman LDLᵀ of the SAME compressed operator.
  const index_t n = 256;
  auto k = test_kernel(n, 1.0);
  const double lambda = -0.5;
  auto kc = CompressedMatrix<double>::compress(
      k, hss_config().with_leaf_size(32).with_max_rank(256)
             .with_tolerance(1e-11));

  // Dense K̃ via one blocked apply of the identity, then shift.
  la::Matrix<double> kd = kc.apply(la::Matrix<double>::identity(n));
  for (index_t j = 0; j < n; ++j)  // symmetrise round-off before LDLᵀ
    for (index_t i = 0; i < j; ++i) {
      const double avg = 0.5 * (kd(i, j) + kd(j, i));
      kd(i, j) = avg;
      kd(j, i) = avg;
    }
  for (index_t i = 0; i < n; ++i) kd(i, i) += lambda;
  std::vector<index_t> ipiv;
  ASSERT_TRUE(la::sytrf_lower(kd, ipiv));
  const la::LdltInertia dense = la::ldlt_inertia(kd, ipiv);
  ASSERT_GT(dense.negative, 0);  // the shift really is indefinite

  kc.factorize(lambda, FactorizeOptions::defaults().with_elimination(Elimination::PivotedLdlt));
  const UlvFactorization<double>& f = kc.factorization();
  EXPECT_EQ(f.det_sign(), dense.sign);
  EXPECT_NEAR(f.log_abs_det(), dense.log_abs_det,
              1e-3 * std::abs(dense.log_abs_det) + 1e-3);
  EXPECT_THROW((void)f.logdet(), StateError);
}

TEST(PivotedLdlt, AutoUsesCholeskyWhenPositiveDefinite) {
  const index_t n = 256;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  kc.factorize(1e-2);  // Auto default, comfortably PD
  EXPECT_EQ(kc.factorization_stats().ldlt_leaves, 0);
  EXPECT_EQ(kc.factorization_stats().leaf_negative_eigenvalues, 0);
  EXPECT_TRUE(kc.factorization_stats().positive_definite);
  // Forcing LDLᵀ on the same PD operator must agree with Cholesky.
  const double ld_chol = kc.logdet();
  kc.factorize(1e-2, FactorizeOptions::defaults().with_elimination(Elimination::PivotedLdlt));
  EXPECT_GT(kc.factorization_stats().ldlt_leaves, 0);
  EXPECT_TRUE(kc.factorization_stats().positive_definite);
  EXPECT_NEAR(kc.logdet(), ld_chol, 1e-8 * std::abs(ld_chol));
}

// ------------------------------------------- orthogonal-ULV structure ----

TEST(OrthogonalUlv, StoredRotationsAreOrthogonalToMachinePrecision) {
  // The λ-retune rests on Qᵀ(A + λI)Q = QᵀAQ + λI, which holds only as
  // far as the stored rotations are orthogonal: ‖QᵀQ − I‖ ≤ dim·ε per
  // node, measured through the engine's own reflector application.
  const index_t n = 500;  // non-power-of-two: uneven leaf sizes
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  kc.factorize(1e-2);
  const UlvFactorization<double>& f = kc.factorization();
  ASSERT_EQ(f.mode(), UlvMode::Orthogonal);
  EXPECT_LE(f.rotation_orthogonality_error(),
            double(n) * std::numeric_limits<double>::epsilon());

  baseline::RandHssOptions opts;
  opts.leaf_size = 64;
  baseline::RandHss<double> rh(*k, opts);
  rh.factorize(1e-2);
  ASSERT_EQ(rh.factorization().mode(), UlvMode::Orthogonal);
  EXPECT_LE(rh.factorization().rotation_orthogonality_error(),
            double(n) * std::numeric_limits<double>::epsilon());
}

TEST(OrthogonalUlv, ModeResolutionAcrossBackendsAndStats) {
  const index_t n = 300;
  auto k = test_kernel(n, 0.5);
  // Nested views resolve Auto to the orthogonal engine; stats advertise
  // the exact-inertia certificate the structure provides.
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  kc.factorize(1e-2);
  EXPECT_TRUE(kc.factorization_stats().orthogonal);
  EXPECT_TRUE(kc.factorization_stats().exact_inertia);
  EXPECT_EQ(kc.factorization_stats().negative_eigenvalues, 0);
  // Explicit (HODLR) bases cannot telescope through a fixed row
  // elimination: Auto falls back to Woodbury, and forcing Orthogonal is
  // a structural error.
  baseline::HodlrOptions hopts;
  hopts.leaf_size = 64;
  baseline::Hodlr<double> h(*k, hopts);
  h.factorize(1e-2);
  EXPECT_FALSE(h.factorization_stats().orthogonal);
  EXPECT_FALSE(h.factorization_stats().exact_inertia);
  EXPECT_EQ(h.factorization().mode(), UlvMode::Woodbury);
  EXPECT_EQ(h.factorization().rotation_orthogonality_error(), 0.0);
  const FactorizeOptions force =
      FactorizeOptions::defaults().with_mode(UlvMode::Orthogonal);
  EXPECT_THROW(h.factorize(1e-2, force), Error);
}

TEST(OrthogonalUlv, WoodburyModeStillServesNestedViewsAndAgrees) {
  // The classic Woodbury elimination remains forceable on nested views as
  // the verification path: same operator, so solves/logdets agree to
  // round-off (not bitwise — different algebra), and its refactorize
  // stays bit-identical to its own fresh factorize.
  const index_t n = 400;
  auto k = test_kernel(n, 0.5);
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 3, 37);
  const double lambda = 0.25;

  auto kc_orth = CompressedMatrix<double>::compress(k, hss_config());
  kc_orth.factorize(lambda);
  auto kc_wood = CompressedMatrix<double>::compress(k, hss_config());
  const FactorizeOptions wb =
      FactorizeOptions::defaults().with_mode(UlvMode::Woodbury);
  kc_wood.factorize(lambda, wb);
  EXPECT_FALSE(kc_wood.factorization_stats().orthogonal);
  EXPECT_LT(operator_residual(kc_wood, lambda, b, kc_wood.solve(b)), 1e-8);

  const la::Matrix<double> x_orth = kc_orth.solve(b);
  const la::Matrix<double> x_wood = kc_wood.solve(b);
  EXPECT_LT(la::diff_fro(x_orth, x_wood), 1e-7 * (1 + la::norm_fro(x_orth)));
  EXPECT_NEAR(kc_orth.logdet(), kc_wood.logdet(),
              1e-8 * std::abs(kc_orth.logdet()));

  kc_wood.refactorize(0.8);
  const la::Matrix<double> x_re = kc_wood.solve(b);
  kc_wood.factorize(0.8, wb);
  const la::Matrix<double> x_fresh = kc_wood.solve(b);
  for (index_t j = 0; j < b.cols(); ++j)
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(x_re(i, j), x_fresh(i, j)) << i << "," << j;
}

TEST(OrthogonalUlv, ExactInertiaCountsNegativeEigenvaluesOfShiftedOperator) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "dense reference factorization is slow under TSan";
#endif
  // Haynsworth additivity through the orthogonal elimination: the summed
  // block inertia must equal the dense LDLᵀ inertia of the SAME
  // compressed operator — an exact certificate, not the Woodbury path's
  // interlacing lower bound.
  const index_t n = 256;
  auto k = test_kernel(n, 1.0);
  const double lambda = -0.5;
  auto kc = CompressedMatrix<double>::compress(
      k, hss_config().with_leaf_size(32).with_max_rank(256)
             .with_tolerance(1e-11));

  la::Matrix<double> kd = kc.apply(la::Matrix<double>::identity(n));
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) {
      const double avg = 0.5 * (kd(i, j) + kd(j, i));
      kd(i, j) = avg;
      kd(j, i) = avg;
    }
  for (index_t i = 0; i < n; ++i) kd(i, i) += lambda;
  std::vector<index_t> ipiv;
  ASSERT_TRUE(la::sytrf_lower(kd, ipiv));
  const la::LdltInertia dense = la::ldlt_inertia(kd, ipiv);
  ASSERT_GT(dense.negative, 0);

  kc.factorize(lambda);
  ASSERT_TRUE(kc.factorization_stats().exact_inertia);
  EXPECT_EQ(kc.factorization_stats().negative_eigenvalues, dense.negative);
}

TEST(OrthogonalUlv, FactorsBudgetedCompressionsAcrossTheFrontier) {
  // budget > 0 leaves the top levels unskeletonized (declared rank 0):
  // the engine must factor the nested part anyway — skeletonized
  // subtrees eliminate orthogonally up to the frontier, frontier nodes
  // close their reduced systems outright, and the rank-0 region above
  // degrades to block-diagonal. solve() is then a preconditioner-quality
  // approximate inverse of the full operator, and the frontier λ-retune
  // stays bit-identical to a fresh factorization.
  const index_t n = 512;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(
      k, hss_config().with_budget(0.05));
  kc.factorize(0.5);
  EXPECT_TRUE(kc.factorization_stats().orthogonal);
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 2, 41);
  const la::Matrix<double> x = kc.solve(b);
  EXPECT_LT(operator_residual(kc, 0.5, b, x), 0.5);  // approximate inverse
  kc.refactorize(1.5);
  const la::Matrix<double> x_re = kc.solve(b);
  kc.factorize(1.5);
  const la::Matrix<double> x_fresh = kc.solve(b);
  for (index_t j = 0; j < b.cols(); ++j)
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(x_re(i, j), x_fresh(i, j)) << i << "," << j;
}

TEST(OrthogonalUlv, SolveSweepsApplyCachedRotationsWithZeroLarft) {
  // THE bugfix this PR exists for: every eliminate/solve sweep applies the
  // per-node QrFactors cached at factorization time, so the solve hot path
  // performs ZERO larft T-factor rebuilds. A single regression re-adding a
  // rebuilt-path call in either sweep mode trips the counter.
  const index_t n = 500;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  kc.factorize(1e-2);
  ASSERT_EQ(kc.factorization().mode(), UlvMode::Orthogonal);

  const la::Matrix<double> b = la::Matrix<double>::random_normal(n, 1, 61);
  la::larft_calls_reset();
  (void)kc.factorization().solve(b, SweepMode::Sequential);
  (void)kc.factorization().solve(b, SweepMode::LevelParallel);
  (void)kc.solve(b);
  EXPECT_EQ(la::larft_calls(), 0u);

  // Refactorize replays the cached rotations too — λ-retune sweeps stay
  // larft-free end to end.
  la::larft_calls_reset();
  kc.refactorize(0.7);
  (void)kc.solve(b);
  EXPECT_EQ(la::larft_calls(), 0u);
}

TEST(OrthogonalUlv, CachedSweepsMatchForceRebuildBitwise) {
  // Bit-identity guarantee of the cache: routing every stored-rotation
  // application through the rebuild-per-call path (the pre-cache
  // semantics) must reproduce solves and logdet bit-for-bit, because both
  // paths funnel into the same larfb kernel.
  const index_t n = 500;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  kc.factorize(1e-2);
  const la::Matrix<double> b = la::Matrix<double>::random_normal(n, 3, 62);
  const la::Matrix<double> x_cached = kc.solve(b);
  const double logdet_cached = kc.logdet();

  la::qr_set_force_rebuild(true);
  kc.factorize(1e-2);
  const la::Matrix<double> x_rebuilt = kc.solve(b);
  const double logdet_rebuilt = kc.logdet();
  la::qr_set_force_rebuild(false);

  for (index_t j = 0; j < b.cols(); ++j)
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(x_cached(i, j), x_rebuilt(i, j)) << i << "," << j;
  EXPECT_EQ(logdet_cached, logdet_rebuilt);
}

TEST(OrthogonalUlv, StatsFlopsCoverMeasuredOrmqrWork) {
  // The stats ledger charges geqrt_flops per node QR and the exact
  // ormqr_flops model per rotation application; the measured larfb
  // counter bounds the ormqr share from below.
  const index_t n = 500;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  la::ormqr_measured_flops_reset();
  kc.factorize(1e-2);
  const std::uint64_t measured = la::ormqr_measured_flops();
  EXPECT_GT(measured, 0u);
  EXPECT_GE(kc.factorization_stats().flops, measured);
}

// ------------------------------------------------------- λ refactorize ----

TEST(Refactorize, BitIdenticalToFreshFactorizeAcrossBackends) {
  // refactorize(λ₂) after factorize(λ₁) must reproduce factorize(λ₂)
  // BIT-identically on every backend — the engine reruns the identical
  // elimination against its payload snapshot instead of the view.
  const index_t n = 500;  // non-power-of-two: uneven leaf sizes
  auto k = test_kernel(n, 0.5);
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 4, 29);
  const double l1 = 1e-2, l2 = 0.75;

  auto check_bitwise = [&](const la::Matrix<double>& x_re,
                           const la::Matrix<double>& x_fresh,
                           const char* backend) {
    for (index_t j = 0; j < b.cols(); ++j)
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(x_re(i, j), x_fresh(i, j)) << backend << " " << i << "," << j;
  };

  {
    auto kc = CompressedMatrix<double>::compress(k, hss_config());
    kc.factorize(l1);
    kc.refactorize(l2);
    EXPECT_EQ(kc.factorization_stats().regularization, l2);
    EXPECT_EQ(kc.factorization_stats().num_refactorizations, 1);
    const la::Matrix<double> x_re = kc.solve(b);
    const double ld_re = kc.logdet();
    kc.factorize(l2);
    check_bitwise(x_re, kc.solve(b), "gofmm");
    EXPECT_EQ(ld_re, kc.logdet());
  }
  {
    baseline::RandHssOptions opts;
    opts.leaf_size = 64;
    opts.max_rank = 96;
    baseline::RandHss<double> rh(*k, opts);
    rh.factorize(l1);
    rh.refactorize(l2);
    const la::Matrix<double> x_re = rh.solve(b);
    rh.factorize(l2);
    check_bitwise(x_re, rh.solve(b), "rand_hss");
  }
  {
    baseline::HodlrOptions opts;
    opts.leaf_size = 64;
    baseline::Hodlr<double> h(*k, opts);
    h.factorize(l1);
    h.refactorize(l2);
    const la::Matrix<double> x_re = h.solve(b);
    h.factorize(l2);
    check_bitwise(x_re, h.solve(b), "hodlr");
  }
}

TEST(Refactorize, RetunesAcrossSignsAndEliminationSwitches) {
  // One factorization serving a λ sweep that crosses from PD territory
  // into indefinite (negative λ) and back — the Auto path must switch
  // leaf eliminations per retune, bit-identical to a fresh factorization
  // at every stop (including the ill-conditioned small-λ one, where a
  // residual bound would only measure conditioning).
  const index_t n = 384;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  auto kc_fresh = CompressedMatrix<double>::compress(k, hss_config());
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 2, 31);
  kc.factorize(1e-2);
  for (const double lambda : {0.5, -0.5, 1.0, 1e-3}) {
    kc.refactorize(lambda);
    la::Matrix<double> x = kc.solve(b);
    kc_fresh.factorize(lambda);
    la::Matrix<double> x_fresh = kc_fresh.solve(b);
    for (index_t j = 0; j < b.cols(); ++j)
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(x(i, j), x_fresh(i, j)) << lambda << " " << i << "," << j;
    if (lambda >= 0.5) {
      EXPECT_LT(operator_residual(kc, lambda, b, x), 1e-8) << lambda;
      EXPECT_EQ(kc.factorization_stats().ldlt_leaves, 0) << lambda;
      EXPECT_TRUE(kc.factorization_stats().positive_definite) << lambda;
    } else if (lambda < 0) {
      EXPECT_LT(operator_residual(kc, lambda, b, x), 1e-8) << lambda;
      EXPECT_GT(kc.factorization_stats().ldlt_leaves, 0) << lambda;
    }
  }
}

TEST(Refactorize, BeforeFactorizeFallsBackToFullBuild) {
  const index_t n = 128;
  auto k = test_kernel(n, 0.5);
  auto kc = CompressedMatrix<double>::compress(k, hss_config());
  kc.refactorize(0.5);  // no factorization yet: full build
  EXPECT_TRUE(kc.factorized());
  EXPECT_EQ(kc.factorization_stats().num_refactorizations, 0);
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 1, 3);
  la::Matrix<double> x = kc.solve(b);
  EXPECT_LT(operator_residual(kc, 0.5, b, x), 1e-10);
}

// ------------------------------------------- preconditioned solve path ----

TEST(PreconditionedSolve, CutsCgIterationsByAtLeastThreeOnKernelGaussian) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "N = 4096 compression is too slow under TSan";
#endif
  // The acceptance criterion of this subsystem: on the zoo's Gaussian
  // kernel matrix (K04) at N = 4096, CG preconditioned by a factorized
  // coarse-tolerance HSS compression reaches 1e-8 in at most 1/3 of the
  // unpreconditioned iterations.
  auto k = std::shared_ptr<SPDMatrix<double>>(
      zoo::make_matrix<double>("K04", 4096));
  const index_t n = k->size();
  ASSERT_EQ(n, 4096);

  const Config fine = Config::defaults()
                          .with_leaf_size(128)
                          .with_max_rank(128)
                          .with_tolerance(1e-7)
                          .with_budget(0.03);
  auto kc = CompressedMatrix<double>::compress(k, fine);
  const double lambda = 0.5;
  auto prec = make_preconditioner<double>(k, lambda);

  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 2, 9);
  la::Matrix<double> x_plain;
  la::Matrix<double> x_pcg;
  const SolveReport plain =
      conjugate_gradient<double>(kc, lambda, b, x_plain,
                                 SolveOptions::defaults().with_max_iterations(1000));
  const SolveReport pcg =
      preconditioned_solve<double>(kc, lambda, b, x_pcg, *prec,
                                   SolveOptions::defaults().with_max_iterations(1000));

  EXPECT_TRUE(plain.converged);
  ASSERT_TRUE(pcg.converged);
  EXPECT_LE(pcg.relative_residual, 1e-8);
  EXPECT_LE(3 * pcg.iterations, plain.iterations)
      << "pcg " << pcg.iterations << " vs plain " << plain.iterations;
  // Both solve the same system to the same tolerance.
  EXPECT_LT(operator_residual(kc, lambda, b, x_pcg), 2e-8);
}

TEST(PreconditionedSolve, FallsBackGracefullyOnIndefinitePreconditioner) {
  // Hand the solver a deliberately under-regularised factorization: PCG
  // must degrade to plain CG per column (never freeze or diverge) and
  // still converge on the true residual.
  const index_t n = 512;
  auto k = test_kernel(n, 0.3);
  auto kc = CompressedMatrix<double>::compress(
      k, hss_config().with_tolerance(1e-8));
  // Coarse operator with a crude tolerance and tiny λ: likely indefinite.
  auto prec = CompressedMatrix<double>::compress_unique(
      k, hss_config().with_tolerance(5e-2));
  prec->factorize(1e-12);
  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 2, 21);
  la::Matrix<double> x;
  const double lambda = 1.0;
  const SolveReport rep =
      preconditioned_solve<double>(kc, lambda, b, x, *prec,
                                 SolveOptions::defaults().with_max_iterations(500));
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(operator_residual(kc, lambda, b, x), 1e-7);
}

}  // namespace
}  // namespace gofmm
