// Tests for the matrix zoo: SPD-ness, symmetry, generator properties.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "la/dst.hpp"
#include "la/lapack.hpp"
#include "matrices/graphs.hpp"
#include "matrices/kernels.hpp"
#include "matrices/operators.hpp"
#include "matrices/pointcloud.hpp"
#include "matrices/stencil.hpp"
#include "matrices/zoo.hpp"

namespace gofmm::zoo {
namespace {

/// SPD check via Cholesky on a double copy of the dense matrix.
template <typename T>
bool is_spd(const SPDMatrix<T>& k) {
  la::Matrix<T> kd = k.dense();
  la::Matrix<double> d(kd.rows(), kd.cols());
  for (index_t j = 0; j < kd.cols(); ++j)
    for (index_t i = 0; i < kd.rows(); ++i) d(i, j) = double(kd(i, j));
  return la::potrf_lower(d);
}

template <typename T>
double asymmetry(const SPDMatrix<T>& k) {
  la::Matrix<T> kd = k.dense();
  return la::diff_fro(kd, kd.transposed()) / (1.0 + la::norm_fro(kd));
}

// ------------------------------------------------------------ kernels ----

class KernelKinds : public ::testing::TestWithParam<KernelKind> {};

TEST_P(KernelKinds, IsSymmetricPositiveDefinite) {
  KernelParams p;
  p.kind = GetParam();
  p.bandwidth = 0.8;
  p.ridge = 1e-4;
  KernelSPD<double> k(uniform_cloud<double>(4, 128, 31), p);
  EXPECT_LT(asymmetry(k), 1e-12);
  EXPECT_TRUE(is_spd(k));
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelKinds,
                         ::testing::Values(KernelKind::Gaussian,
                                           KernelKind::Exponential,
                                           KernelKind::InverseMultiquadric,
                                           KernelKind::Polynomial,
                                           KernelKind::Cosine));

TEST(Kernels, SubmatrixMatchesEntry) {
  KernelParams p;
  p.kind = KernelKind::Gaussian;
  p.bandwidth = 0.5;
  KernelSPD<double> k(uniform_cloud<double>(6, 100, 32), p);
  std::vector<index_t> I = {3, 14, 15, 92, 65};
  std::vector<index_t> J = {35, 8, 9, 7, 93, 2};
  la::Matrix<double> sub = k.submatrix(I, J);
  for (index_t a = 0; a < 5; ++a)
    for (index_t b = 0; b < 6; ++b)
      EXPECT_NEAR(sub(a, b),
                  k.entry(I[std::size_t(a)], J[std::size_t(b)]), 1e-12);
}

TEST(Kernels, GaussianDiagonalIsOnePlusRidge) {
  KernelParams p;
  p.kind = KernelKind::Gaussian;
  p.bandwidth = 1.0;
  p.ridge = 1e-3;
  KernelSPD<double> k(uniform_cloud<double>(3, 50, 33), p);
  for (index_t i = 0; i < 50; i += 7)
    EXPECT_NEAR(k.entry(i, i), 1.0 + 1e-3, 1e-12);
}

TEST(Kernels, PointsAccessorExposesCoordinates) {
  KernelParams p;
  KernelSPD<double> k(uniform_cloud<double>(5, 64, 34), p);
  ASSERT_NE(k.points(), nullptr);
  EXPECT_EQ(k.points()->rows(), 5);
  EXPECT_EQ(k.points()->cols(), 64);
}

// -------------------------------------------------------- point clouds ----

TEST(PointClouds, ShapesAndDeterminism) {
  auto a = gaussian_mixture_cloud<double>(7, 200, 5, 0.2, 77);
  auto b = gaussian_mixture_cloud<double>(7, 200, 5, 0.2, 77);
  EXPECT_EQ(a.rows(), 7);
  EXPECT_EQ(a.cols(), 200);
  EXPECT_DOUBLE_EQ(la::diff_fro(a, b), 0.0);

  auto m = manifold_cloud<double>(50, 5, 100, 78);
  EXPECT_EQ(m.rows(), 50);
  EXPECT_EQ(m.cols(), 100);
  for (index_t t = 0; t < m.size(); ++t) {
    EXPECT_LE(m.data()[t], 1.0);
    EXPECT_GE(m.data()[t], -1.0);
  }

  auto blobs = two_blob_cloud<double>(4, 500, 3.0, 79);
  // First coordinate should be bimodal: mean roughly separation/2.
  double mean0 = 0;
  for (index_t i = 0; i < 500; ++i) mean0 += blobs(0, i);
  mean0 /= 500;
  EXPECT_NEAR(mean0, 1.5, 0.5);
}

// ------------------------------------------------------------ stencils ----

TEST(Stencil, SpectralAssemblyMatchesBruteForce) {
  // Verify the O(N^2.5) separable assembly against a direct eigen-sum.
  const index_t n = 6;
  auto f = [](double lam) { return 1.0 / (lam + 0.5); };
  la::Matrix<double> k = spectral_grid_matrix_2d<double>(n, f);
  const la::Matrix<double> q = la::dst_basis<double>(n);
  for (index_t p = 0; p < n * n; p += 7) {
    for (index_t r = 0; r < n * n; r += 5) {
      const index_t i1 = p / n, i2 = p % n, j1 = r / n, j2 = r % n;
      double expect = 0;
      for (index_t k1 = 0; k1 < n; ++k1)
        for (index_t k2 = 0; k2 < n; ++k2)
          expect += f(la::dst_eigenvalue(k1, n) + la::dst_eigenvalue(k2, n)) *
                    q(i1, k1) * q(j1, k1) * q(i2, k2) * q(j2, k2);
      EXPECT_NEAR(k(p, r), expect, 1e-10);
    }
  }
}

TEST(Stencil, K02IsSpdAndSymmetric) {
  la::Matrix<double> k = k02_inverse_laplacian_squared<double>(12);
  DenseSPD<double> m(std::move(k));
  EXPECT_LT(asymmetry(m), 1e-10);
  EXPECT_TRUE(is_spd(m));
}

TEST(Stencil, K03IsSpd) {
  la::Matrix<double> k = k03_helmholtz_like<double>(12);
  DenseSPD<double> m(std::move(k));
  EXPECT_TRUE(is_spd(m));
}

TEST(Stencil, K02InvertsTheOperatorSquared) {
  // K02 * (L + sigma)^2 should be the identity.
  const index_t n = 8;
  const double sigma = 1e-2;
  la::Matrix<double> k = k02_inverse_laplacian_squared<double>(n, sigma);
  // Dense (L + sigma I) on the n*n grid.
  const index_t nn = n * n;
  la::Matrix<double> a(nn, nn);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      const index_t p = i * n + j;
      a(p, p) = 4.0 + sigma;
      if (i > 0) a(p, p - n) = -1.0;
      if (i + 1 < n) a(p, p + n) = -1.0;
      if (j > 0) a(p, p - 1) = -1.0;
      if (j + 1 < n) a(p, p + 1) = -1.0;
    }
  la::Matrix<double> a2 = la::matmul(a, a);
  la::Matrix<double> prod = la::matmul(k, a2);
  EXPECT_LT(la::diff_fro(prod, la::Matrix<double>::identity(nn)), 1e-8);
}

// ----------------------------------------------------------- operators ----

TEST(Operators, ChebyshevDifferentiatesPolynomials) {
  const index_t n = 10;
  la::Matrix<double> d = chebyshev_diff(n);
  // Differentiate f(x) = x^2 at the Chebyshev nodes: f' = 2x.
  la::Matrix<double> f(n, 1);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    x[std::size_t(j)] = std::cos(M_PI * double(j) / double(n - 1));
    f(j, 0) = x[std::size_t(j)] * x[std::size_t(j)];
  }
  la::Matrix<double> df = la::matmul(d, f);
  for (index_t j = 0; j < n; ++j)
    EXPECT_NEAR(df(j, 0), 2.0 * x[std::size_t(j)], 1e-9);
}

class OperatorVariants : public ::testing::TestWithParam<int> {};

TEST_P(OperatorVariants, AdvectionDiffusionInverseIsSpd) {
  la::Matrix<double> k = advection_diffusion_2d<double>(10, GetParam());
  DenseSPD<double> m(std::move(k));
  EXPECT_LT(asymmetry(m), 1e-9);
  EXPECT_TRUE(is_spd(m));
}

INSTANTIATE_TEST_SUITE_P(Variants, OperatorVariants,
                         ::testing::Values(0, 1, 2));

TEST(Operators, PseudospectralInversesAreSpd) {
  {
    DenseSPD<double> m(pseudospectral_2d<double>(8, 0));
    EXPECT_TRUE(is_spd(m));
  }
  {
    DenseSPD<double> m(pseudospectral_3d<double>(5));
    EXPECT_TRUE(is_spd(m));
  }
  {
    DenseSPD<double> m(inverse_squared_laplacian_3d<double>(5));
    EXPECT_TRUE(is_spd(m));
  }
}

// -------------------------------------------------------------- graphs ----

TEST(Graphs, GeneratorsProduceSimpleGraphs) {
  for (const Graph& g :
       {power_grid_graph(400, 1), quasi_banded_graph(400, 2),
        random_geometric_graph(400, 3), banded_perturbed_graph(400, 4),
        torus_4d_graph(400)}) {
    EXPECT_GT(g.n, 0);
    EXPECT_GT(g.num_edges(), g.n / 2);
    for (const auto& [a, b] : g.edges) {
      EXPECT_GE(a, 0);
      EXPECT_LT(b, g.n);
      EXPECT_LT(a, b);  // canonical, no self-loops
    }
    // No duplicates (canonicalised).
    auto copy = g.edges;
    std::sort(copy.begin(), copy.end());
    EXPECT_EQ(std::adjacent_find(copy.begin(), copy.end()), copy.end());
  }
}

TEST(Graphs, Torus4dIsRegular) {
  Graph g = torus_4d_graph(256);  // t = 4
  EXPECT_EQ(g.n, 256);
  std::vector<index_t> deg(static_cast<std::size_t>(g.n), 0);
  for (const auto& [a, b] : g.edges) {
    deg[std::size_t(a)]++;
    deg[std::size_t(b)]++;
  }
  for (index_t d : deg) EXPECT_EQ(d, 8);  // 4-D torus: 2 per dimension
}

TEST(Graphs, InverseLaplacianIsSpd) {
  Graph g = random_geometric_graph(200, 5);
  DenseSPD<double> m(graph_inverse_laplacian<double>(g));
  EXPECT_LT(asymmetry(m), 1e-10);
  EXPECT_TRUE(is_spd(m));
}

// ----------------------------------------------------------------- zoo ----

TEST(Zoo, CatalogIsComplete) {
  const auto& cat = catalog();
  EXPECT_EQ(cat.size(), 24u);  // 16 K + 5 G + 3 datasets
  for (const char* name : {"K02", "K06", "K13", "K17", "G03", "COVTYPE"})
    EXPECT_NO_THROW(info(name));
  EXPECT_THROW(info("K99"), std::invalid_argument);
}

class ZooMatrices : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooMatrices, SmallInstanceIsSpd) {
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  auto m = make_matrix<double>(GetParam(), 256);
  ASSERT_GT(m->size(), 0);
  EXPECT_LE(m->size(), 256);
  EXPECT_LT(asymmetry(*m), 1e-6);
  EXPECT_TRUE(is_spd(*m));
  EXPECT_EQ(info(GetParam()).has_points, m->points() != nullptr);
}

INSTANTIATE_TEST_SUITE_P(Names, ZooMatrices,
                         ::testing::Values("K02", "K03", "K04", "K05", "K06",
                                           "K07", "K08", "K09", "K10", "K12",
                                           "K13", "K14", "K15", "K16", "K17",
                                           "K18", "G01", "G02", "G03", "G04",
                                           "G05", "COVTYPE", "HIGGS",
                                           "MNIST"));

TEST(Zoo, CacheRoundTrip) {
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  auto a = make_matrix<double>("G03", 128);
  auto b = make_matrix<double>("G03", 128);  // second call hits the cache
  ASSERT_EQ(a->size(), b->size());
  la::Matrix<double> da = a->dense();
  la::Matrix<double> db = b->dense();
  EXPECT_DOUBLE_EQ(la::diff_fro(da, db), 0.0);
}

TEST(Zoo, DatasetKernelBandwidths) {
  auto a = make_dataset_kernel<double>("COVTYPE", 128, 1.0);
  auto b = make_dataset_kernel<double>("COVTYPE", 128, 0.1);
  // Smaller bandwidth => smaller off-diagonal entries.
  double off_a = 0;
  double off_b = 0;
  for (index_t i = 0; i < 128; i += 3)
    for (index_t j = 0; j < 128; j += 5)
      if (i != j) {
        off_a += std::abs(double(a->entry(i, j)));
        off_b += std::abs(double(b->entry(i, j)));
      }
  EXPECT_GT(off_a, off_b);
}

}  // namespace
}  // namespace gofmm::zoo
