// Unit tests for the task runtime (DAG scheduler + traversal engines).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "runtime/engines.hpp"
#include "runtime/scheduler.hpp"
#include "util/prng.hpp"

namespace gofmm::rt {
namespace {

/// Records completion order with thread safety.
struct Recorder {
  std::mutex mu;
  std::vector<int> order;
  void record(int id) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(id);
  }
  [[nodiscard]] index_t position(int id) const {
    for (std::size_t i = 0; i < order.size(); ++i)
      if (order[i] == id) return index_t(i);
    return -1;
  }
};

class SchedulerWorkers : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerWorkers, ChainExecutesInOrder) {
  Recorder rec;
  TaskGraph g;
  Task* prev = nullptr;
  for (int i = 0; i < 32; ++i) {
    Task* t = g.emplace([&rec, i](int) { rec.record(i); });
    if (prev != nullptr) g.add_edge(prev, t);
    prev = t;
  }
  Scheduler s(GetParam());
  s.run(g);
  ASSERT_EQ(rec.order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rec.order[std::size_t(i)], i);
}

TEST_P(SchedulerWorkers, DiamondDependency) {
  Recorder rec;
  TaskGraph g;
  Task* a = g.emplace([&](int) { rec.record(0); });
  Task* b = g.emplace([&](int) { rec.record(1); });
  Task* c = g.emplace([&](int) { rec.record(2); });
  Task* d = g.emplace([&](int) { rec.record(3); });
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  Scheduler s(GetParam());
  s.run(g);
  EXPECT_EQ(rec.position(0), 0);
  EXPECT_EQ(rec.position(3), 3);
}

TEST_P(SchedulerWorkers, WideFanCompletes) {
  std::atomic<int> count{0};
  TaskGraph g;
  Task* src = g.emplace([&](int) { count++; });
  Task* sink = g.emplace([&](int) { count++; });
  for (int i = 0; i < 200; ++i) {
    Task* t = g.emplace([&](int) { count++; });
    g.add_edge(src, t);
    g.add_edge(t, sink);
  }
  Scheduler s(GetParam());
  s.run(g);
  EXPECT_EQ(count.load(), 202);
}

TEST_P(SchedulerWorkers, RandomDagRespectsAllEdges) {
  // Layered random DAG; after execution, verify every edge ordering.
  Prng rng(2024);
  Recorder rec;
  TaskGraph g;
  std::vector<Task*> tasks;
  std::vector<std::pair<int, int>> edges;
  const int layers = 8;
  const int width = 12;
  for (int l = 0; l < layers; ++l)
    for (int w = 0; w < width; ++w) {
      const int id = l * width + w;
      tasks.push_back(
          g.emplace([&rec, id](int) { rec.record(id); }, 1.0 + double(id % 7)));
      if (l > 0) {
        const int npar = 1 + int(rng.below(3));
        for (int p = 0; p < npar; ++p) {
          const int parent = (l - 1) * width + int(rng.below(width));
          g.add_edge(tasks[std::size_t(parent)], tasks.back());
          edges.emplace_back(parent, id);
        }
      }
    }
  Scheduler s(GetParam());
  s.run(g);
  ASSERT_EQ(rec.order.size(), std::size_t(layers * width));
  for (const auto& [from, to] : edges)
    EXPECT_LT(rec.position(from), rec.position(to)) << from << " -> " << to;
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, SchedulerWorkers,
                         ::testing::Values(1, 2, 4, 8));

TEST(Scheduler, EmptyGraph) {
  TaskGraph g;
  Scheduler s(2);
  EXPECT_NO_THROW(s.run(g));
}

TEST(Scheduler, TaskExceptionPropagates) {
  TaskGraph g;
  g.emplace([](int) { throw std::runtime_error("boom"); });
  Scheduler s(2);
  EXPECT_THROW(s.run(g), std::runtime_error);
}

TEST(Scheduler, TaskExceptionKeepsOriginalMessage) {
  // The ORIGINAL exception crosses the pool (exception_ptr), not a
  // generic "a task threw" wrapper; downstream tasks still drain.
  std::atomic<int> after{0};
  TaskGraph g;
  Task* a = g.emplace([](int) { throw std::invalid_argument("original"); });
  Task* b = g.emplace([&](int) { after++; });
  g.add_edge(a, b);
  Scheduler s(2);
  try {
    s.run(g);
    FAIL() << "expected the task exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "original");
  }
  EXPECT_EQ(after.load(), 1);
}

TEST(Scheduler, GraphCanBeRerun) {
  std::atomic<int> count{0};
  TaskGraph g;
  Task* a = g.emplace([&](int) { count++; });
  Task* b = g.emplace([&](int) { count++; });
  g.add_edge(a, b);
  Scheduler s(2);
  s.run(g);
  s.run(g);
  EXPECT_EQ(count.load(), 4);
}

// ------------------------------------------------- cycle detection ----
// The seed scheduler "detected" a dependency cycle as a multi-second
// idle-spin stall; these tests pin the contract the service executor
// relies on: a cyclic graph throws CycleError BEFORE any task executes.

TEST(Scheduler, TwoTaskCycleThrowsWithoutExecuting) {
  std::atomic<int> ran{0};
  TaskGraph g;
  Task* a = g.emplace([&](int) { ran++; }, 1.0, "a");
  Task* b = g.emplace([&](int) { ran++; }, 1.0, "b");
  g.add_edge(a, b);
  g.add_edge(b, a);
  Scheduler s(2);
  EXPECT_THROW(s.run(g), CycleError);
  EXPECT_EQ(ran.load(), 0);
}

TEST(Scheduler, SelfCycleThrows) {
  TaskGraph g;
  Task* a = g.emplace([](int) {}, 1.0, "self");
  g.add_edge(a, a);
  Scheduler s(1);
  EXPECT_THROW(s.run(g), CycleError);
}

TEST(Scheduler, CycleNamesAMemberTaskAndSparesIndependentWork) {
  // A cycle plus independent source tasks: still rejected atomically
  // (nothing ran, not even the acyclic part), and the error names a task
  // on the cycle for diagnosis.
  std::atomic<int> ran{0};
  TaskGraph g;
  g.emplace([&](int) { ran++; }, 1.0, "independent");
  Task* a = g.emplace([&](int) { ran++; }, 1.0, "cyclic_a");
  Task* b = g.emplace([&](int) { ran++; }, 1.0, "cyclic_b");
  g.add_edge(a, b);
  g.add_edge(b, a);
  Scheduler s(2);
  try {
    s.run(g);
    FAIL() << "expected CycleError";
  } catch (const CycleError& e) {
    EXPECT_NE(std::string(e.what()).find("cyclic_"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(Scheduler, CycleErrorIsARuntimeError) {
  // The seed code threw std::runtime_error from the stall path; callers
  // catching the standard type keep working.
  TaskGraph g;
  Task* a = g.emplace([](int) {});
  Task* b = g.emplace([](int) {});
  g.add_edge(a, b);
  g.add_edge(b, a);
  Scheduler s(1);
  EXPECT_THROW(s.run(g), std::runtime_error);
}

// --------------------------------------------------- work stealing ----

TEST(Scheduler, StealCounterObservesRebalancing) {
  // Force the HEFT cost model to misestimate: a sleeper task with a tiny
  // estimated cost pins one worker, and the instant tasks queued behind
  // it can only complete via steals by the other worker. The counter is
  // cumulative per scheduler, so a second run can only grow it.
  Scheduler s(2);
  const std::uint64_t before = s.steal_count();
  for (int round = 0; round < 2; ++round) {
    std::atomic<int> done{0};
    TaskGraph g;
    Task* src = g.emplace([](int) {});
    // All equal costs: HEFT round-robins them across both queues, so
    // ~half sit behind the sleeper once it starts.
    Task* sleeper = g.emplace(
        [](int) { std::this_thread::sleep_for(std::chrono::milliseconds(100)); },
        1.0, "sleeper");
    g.add_edge(src, sleeper);
    for (int i = 0; i < 64; ++i) {
      Task* t = g.emplace([&](int) { done++; }, 1.0);
      g.add_edge(src, t);
    }
    s.run(g);
    EXPECT_EQ(done.load(), 64);
  }
  EXPECT_GT(s.steal_count(), before);
}

// ------------------------------------------------- async submission ----

TEST(Scheduler, SubmitOverlapsIndependentGraphs) {
  // Two graphs in flight on one pool; each future completes with its own
  // graph's work, and a sleeper in the first does not block the second.
  Scheduler s(4);
  std::atomic<int> a{0}, b{0};
  TaskGraph g1, g2;
  Task* slow = g1.emplace([&](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    a++;
  });
  Task* after = g1.emplace([&](int) { a++; });
  g1.add_edge(slow, after);
  for (int i = 0; i < 8; ++i) g2.emplace([&](int) { b++; });
  auto f1 = s.submit(g1);
  auto f2 = s.submit(g2);
  f2.get();
  EXPECT_EQ(b.load(), 8);
  f1.get();
  EXPECT_EQ(a.load(), 2);
}

TEST(Scheduler, SubmitPropagatesExceptionThroughFuture) {
  Scheduler s(2);
  TaskGraph g;
  g.emplace([](int) { throw std::runtime_error("async boom"); });
  auto f = s.submit(g);
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Scheduler, ConcurrentSubmittersShareThePool) {
  Scheduler s(4);
  std::atomic<int> total{0};
  constexpr int kThreads = 8;
  std::vector<TaskGraph> graphs(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < 32; ++i) graphs[std::size_t(t)].emplace([&](int) { total++; });
    submitters.emplace_back(
        [&s, &graphs, t] { s.submit(graphs[std::size_t(t)]).get(); });
  }
  for (auto& th : submitters) th.join();
  EXPECT_EQ(total.load(), kThreads * 32);
}

TEST(Scheduler, DroppedFutureStillCompletes) {
  // A caller may fire-and-forget; destruction of the scheduler drains the
  // graph before the worker threads join.
  std::atomic<int> count{0};
  TaskGraph g;
  for (int i = 0; i < 16; ++i) g.emplace([&](int) { count++; });
  {
    Scheduler s(2);
    (void)s.submit(g);
  }  // ~Scheduler drains
  EXPECT_EQ(count.load(), 16);
}

// -------------------------------------------------- traversal engines ----

/// Minimal binary tree for traversal tests.
struct TNode {
  int id = 0;
  TNode* l = nullptr;
  TNode* r = nullptr;
  [[nodiscard]] TNode* left() const { return l; }
  [[nodiscard]] TNode* right() const { return r; }
};

struct TestTree {
  std::vector<std::unique_ptr<TNode>> pool;
  TNode* root = nullptr;
  std::vector<std::vector<TNode*>> levels;

  explicit TestTree(int depth) { root = make(depth, 0); }
  TNode* make(int depth, int level) {
    pool.push_back(std::make_unique<TNode>());
    TNode* n = pool.back().get();
    n->id = int(pool.size()) - 1;
    if (index_t(levels.size()) <= level)
      levels.resize(std::size_t(level) + 1);
    levels[std::size_t(level)].push_back(n);
    if (depth > 0) {
      n->l = make(depth - 1, level + 1);
      n->r = make(depth - 1, level + 1);
    }
    return n;
  }
};

TEST(Engines, OmpPostorderRespectsDependencies) {
  TestTree t(5);
  Recorder rec;
  auto f = [&](TNode* n) { rec.record(n->id); };
  omp_postorder(t.root, f);
  ASSERT_EQ(rec.order.size(), t.pool.size());
  for (const auto& up : t.pool) {
    if (up->l == nullptr) continue;
    EXPECT_GT(rec.position(up->id), rec.position(up->l->id));
    EXPECT_GT(rec.position(up->id), rec.position(up->r->id));
  }
}

TEST(Engines, OmpPreorderRespectsDependencies) {
  TestTree t(5);
  Recorder rec;
  auto f = [&](TNode* n) { rec.record(n->id); };
  omp_preorder(t.root, f);
  ASSERT_EQ(rec.order.size(), t.pool.size());
  for (const auto& up : t.pool) {
    if (up->l == nullptr) continue;
    EXPECT_LT(rec.position(up->id), rec.position(up->l->id));
    EXPECT_LT(rec.position(up->id), rec.position(up->r->id));
  }
}

TEST(Engines, LevelTraversalsCoverAllNodes) {
  TestTree t(4);
  std::atomic<int> count{0};
  level_bottom_up(t.levels, [&](TNode*) { count++; });
  EXPECT_EQ(count.load(), int(t.pool.size()));
  count = 0;
  level_top_down(t.levels, [&](TNode*) { count++; });
  EXPECT_EQ(count.load(), int(t.pool.size()));
}

TEST(Engines, StringRoundTrip) {
  for (Engine e : {Engine::LevelByLevel, Engine::OmpTask, Engine::Heft})
    EXPECT_EQ(engine_from_string(to_string(e)), e);
  EXPECT_THROW(engine_from_string("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace gofmm::rt
