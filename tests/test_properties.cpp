// Property-based sweeps over the GOFMM configuration space: the paper's
// structural invariants must hold for every combination of ordering,
// budget, leaf size and precision — not just the defaults.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/gofmm.hpp"
#include "la/blas.hpp"
#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"

namespace gofmm {
namespace {

using tree::DistanceKind;

std::shared_ptr<const zoo::KernelSPD<double>> make_matrix(index_t n) {
  zoo::KernelParams p;
  p.kind = zoo::KernelKind::Gaussian;
  p.bandwidth = 0.4;
  p.ridge = 1e-6;
  return std::make_shared<zoo::KernelSPD<double>>(
      zoo::gaussian_mixture_cloud<double>(3, n, 5, 0.2, 77), p);
}

/// (ordering, budget, leaf size) grid.
using Param = std::tuple<DistanceKind, double, index_t>;

class GofmmGrid : public ::testing::TestWithParam<Param> {
 protected:
  Config config() const {
    const auto [dist, budget, leaf] = GetParam();
    Config cfg;
    cfg.distance = dist;
    cfg.budget = budget;
    cfg.leaf_size = leaf;
    cfg.max_rank = 48;
    cfg.tolerance = 1e-6;
    cfg.kappa = 8;
    cfg.num_workers = 2;
    return cfg;
  }
};

TEST_P(GofmmGrid, PartitionTilesOffDiagonalExactlyOnce) {
  const index_t n = 333;  // deliberately not a power of two
  auto k = make_matrix(n);
  auto kc = CompressedMatrix<double>::compress(k, config());
  const auto& t = kc.cluster_tree();

  la::Matrix<double> cover(n, n);
  auto add = [&](const tree::Node* rows, const tree::Node* cols) {
    for (index_t i = rows->begin; i < rows->begin + rows->count; ++i)
      for (index_t j = cols->begin; j < cols->begin + cols->count; ++j)
        cover(i, j) += 1.0;
  };
  for (const tree::Node* node : t.nodes()) {
    for (const tree::Node* alpha : kc.near_list(node)) add(node, alpha);
    for (const tree::Node* alpha : kc.far_list(node)) add(node, alpha);
  }
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) ASSERT_EQ(cover(i, j), 1.0);
}

TEST_P(GofmmGrid, FarPairsAreSymmetricAndSkeletonized) {
  auto k = make_matrix(420);
  auto kc = CompressedMatrix<double>::compress(k, config());
  const auto& t = kc.cluster_tree();
  for (const tree::Node* beta : t.nodes()) {
    for (const tree::Node* alpha : kc.far_list(beta)) {
      const auto& mirror = kc.far_list(alpha);
      EXPECT_NE(std::find(mirror.begin(), mirror.end(), beta), mirror.end());
      // Every far participant must own a skeleton (the S2S crash guard).
      EXPECT_FALSE(kc.skeleton(alpha).empty());
      EXPECT_FALSE(kc.skeleton(beta).empty());
    }
  }
}

TEST_P(GofmmGrid, EvaluateMatchesDenseApply) {
  const index_t n = 333;
  auto k = make_matrix(n);
  auto kc = CompressedMatrix<double>::compress(k, config());
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 5);
  la::Matrix<double> u = kc.evaluate(w);
  la::Matrix<double> kd = k->dense();
  la::Matrix<double> exact(n, 2);
  la::gemm(la::Op::None, la::Op::None, 1.0, kd, w, 0.0, exact);
  const double err = la::diff_fro(u, exact) / la::norm_fro(exact);
  // Distance orderings must be accurate; the control orderings only sane.
  EXPECT_LT(err, tree::has_distance(std::get<0>(GetParam())) ? 2e-2 : 1.5);
}

TEST_P(GofmmGrid, EvaluateIsLinear) {
  // K̃(a w1 + b w2) == a K̃ w1 + b K̃ w2 to round-off: the compressed
  // operator is a fixed linear map regardless of configuration.
  const index_t n = 256;
  auto k = make_matrix(n);
  auto kc = CompressedMatrix<double>::compress(k, config());
  la::Matrix<double> w1 = la::Matrix<double>::random_normal(n, 1, 6);
  la::Matrix<double> w2 = la::Matrix<double>::random_normal(n, 1, 7);
  la::Matrix<double> combo(n, 1);
  for (index_t i = 0; i < n; ++i)
    combo(i, 0) = 2.5 * w1(i, 0) - 0.5 * w2(i, 0);
  auto u1 = kc.evaluate(w1);
  auto u2 = kc.evaluate(w2);
  auto uc = kc.evaluate(combo);
  double err = 0;
  for (index_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(uc(i, 0) - 2.5 * u1(i, 0) + 0.5 * u2(i, 0)));
  EXPECT_LT(err, 1e-10 * (1.0 + la::norm_max(uc)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GofmmGrid,
    ::testing::Combine(
        ::testing::Values(DistanceKind::Kernel, DistanceKind::Angle,
                          DistanceKind::Lexicographic),
        ::testing::Values(0.0, 0.05, 0.5),
        ::testing::Values(24, 64)));

// ------------------------------------------------------- monotonicity ----

TEST(GofmmProperties, ErrorDecreasesWithRankOnAverage) {
  auto k = make_matrix(512);
  double last = 1e9;
  int violations = 0;
  for (index_t rank : {8, 16, 32, 64}) {
    Config cfg;
    cfg.leaf_size = 64;
    cfg.max_rank = rank;
    cfg.tolerance = 0;
    cfg.kappa = 8;
    cfg.budget = 0.03;
    auto kc = CompressedMatrix<double>::compress(k, cfg);
    la::Matrix<double> w = la::Matrix<double>::random_normal(512, 2, 8);
    auto u = kc.evaluate(w);
    const double err = kc.estimate_error(w, u, 128);
    if (err > last * 1.2) ++violations;
    last = err;
  }
  EXPECT_LE(violations, 1);  // statistical: allow one inversion
}

TEST(GofmmProperties, PermutingTheMatrixDoesNotHurtGramOrderings) {
  // The geometry-oblivious property: eps2 under the Angle ordering is
  // (statistically) invariant to a symmetric permutation of K.
  const index_t n = 384;
  auto base = make_matrix(n);
  la::Matrix<double> kd = base->dense();

  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t(0));
  Prng rng(9);
  for (index_t i = n - 1; i > 0; --i)
    std::swap(perm[std::size_t(i)], perm[std::size_t(rng.below(i + 1))]);
  DenseSPD<double> shuffled(kd.gather(perm, perm));
  DenseSPD<double> original(std::move(kd));

  Config cfg;
  cfg.leaf_size = 64;
  cfg.max_rank = 48;
  cfg.tolerance = 0;
  cfg.kappa = 8;
  cfg.budget = 0.05;
  cfg.distance = DistanceKind::Angle;

  auto run = [&](const SPDMatrix<double>& m) {
    auto kc = CompressedMatrix<double>::compress(borrow(m), cfg);
    la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 10);
    auto u = kc.evaluate(w);
    return kc.estimate_error(w, u, 128);
  };
  const double e_orig = run(original);
  const double e_shuf = run(shuffled);
  EXPECT_LT(e_shuf, std::max(10.0 * e_orig, 1e-4));
}

TEST(GofmmProperties, HigherKappaDoesNotHurt) {
  auto k = make_matrix(512);
  double e_small = 0;
  double e_large = 0;
  for (index_t kappa : {4, 24}) {
    Config cfg;
    cfg.leaf_size = 64;
    cfg.max_rank = 32;
    cfg.tolerance = 0;
    cfg.kappa = kappa;
    cfg.budget = 0.05;
    auto kc = CompressedMatrix<double>::compress(k, cfg);
    la::Matrix<double> w = la::Matrix<double>::random_normal(512, 2, 11);
    auto u = kc.evaluate(w);
    (kappa == 4 ? e_small : e_large) = kc.estimate_error(w, u, 128);
  }
  EXPECT_LT(e_large, e_small * 3.0 + 1e-12);
}

TEST(GofmmProperties, NearFractionGrowsWithBudget) {
  auto k = make_matrix(512);
  double last = -1;
  for (double budget : {0.0, 0.1, 0.5, 1.0}) {
    Config cfg;
    cfg.leaf_size = 64;
    cfg.max_rank = 32;
    cfg.tolerance = 1e-5;
    cfg.kappa = 8;
    cfg.budget = budget;
    auto kc = CompressedMatrix<double>::compress(k, cfg);
    EXPECT_GE(kc.stats().near_fraction, last);
    last = kc.stats().near_fraction;
  }
  // budget 1 with kappa-limited votes still needn't reach a full matrix,
  // but must clearly exceed the diagonal-only fraction.
  auto kc_diag = [&] {
    Config cfg;
    cfg.leaf_size = 64;
    cfg.max_rank = 32;
    cfg.tolerance = 1e-5;
    cfg.kappa = 8;
    cfg.budget = 0.0;
    return CompressedMatrix<double>::compress(k, cfg).stats().near_fraction;
  }();
  EXPECT_GT(last, kc_diag);
}

TEST(GofmmProperties, OddSizesAndTinyMatrices) {
  for (index_t n : {2, 3, 17, 65, 127}) {
    zoo::KernelParams p;
    p.kind = zoo::KernelKind::Gaussian;
    p.bandwidth = 0.5;
    p.ridge = 1e-4;
    zoo::KernelSPD<double> k(zoo::uniform_cloud<double>(2, n, 13), p);
    Config cfg;
    cfg.leaf_size = 8;
    cfg.max_rank = 8;
    cfg.tolerance = 1e-6;
    cfg.kappa = 4;
    cfg.budget = 0.1;
    auto kc = CompressedMatrix<double>::compress(borrow(k), cfg);
    la::Matrix<double> w = la::Matrix<double>::random_normal(n, 1, 14);
    auto u = kc.evaluate(w);
    EXPECT_EQ(u.rows(), n) << "n=" << n;
    for (index_t i = 0; i < n; ++i)
      EXPECT_TRUE(std::isfinite(u(i, 0))) << "n=" << n << " i=" << i;
  }
}

}  // namespace
}  // namespace gofmm
