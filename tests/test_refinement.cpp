// Mixed-precision refinement convergence suite.
//
// The contract under test (docs/SOLVERS.md "Mixed precision & refinement"):
// a Precision::MixedF32 factorization stores every factor in float —
// roughly HALVING resident factor bytes — and iterative refinement
// (float-factored sweeps + double-accumulated residual corrections)
// recovers the double-solve residual in a handful of iterations. This
// suite pins both halves across the whole zoo: every catalog matrix must
// reach the 1e-8 double target in at most 4 refinement iterations while
// the float factorization stays ≥1.7× smaller than its double twin.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/factorization.hpp"
#include "core/solvers.hpp"
#include "matrices/zoo.hpp"

namespace gofmm {
namespace {

/// Same PR-tier size cap as the golden suite: large enough that every
/// matrix is hierarchical, small enough for the full-zoo sweep.
constexpr index_t kMaxN = 512;
constexpr index_t kRhs = 2;
constexpr double kLambda = 0.1;
constexpr double kTarget = 1e-8;

Config refinement_config() {
  // budget 0 → pure HSS, so the ULV factorization is exact for the
  // compressed operator and the refined residual is solver error alone.
  return Config::defaults()
      .with_leaf_size(64)
      .with_max_rank(64)
      .with_tolerance(1e-5)
      .with_budget(0.0)
      .with_num_workers(2);
}

TEST(RefinementConvergence, EveryZooEntryReachesDoubleTargetWithinFourIters) {
#ifdef GOFMM_TSAN
  GTEST_SKIP() << "full-zoo sweep is too slow under TSan";
#endif
  for (const zoo::ZooInfo& info : zoo::catalog()) {
    const index_t n = std::min(info.default_n, kMaxN);
    std::shared_ptr<const SPDMatrix<double>> k(
        zoo::make_matrix<double>(info.name, n));
    auto kc = CompressedMatrix<double>::compress(k, refinement_config());
    const la::Matrix<double> b =
        la::Matrix<double>::random_normal(kc.size(), kRhs, 99);

    // Double twin: the storage baseline and the residual the float path
    // must match.
    kc.factorize(kLambda);
    const std::uint64_t f64_bytes = kc.factorization_stats().memory_bytes;
    {
      const la::Matrix<double> x = kc.solve(b);
      EXPECT_LE(operator_residual(kc, kLambda, b, x), kTarget)
          << info.name << ": double baseline misses the target";
    }

    // Float-stored twin: ≥1.7× fewer resident factor bytes...
    kc.factorize(kLambda, FactorizeOptions::defaults().with_precision(
                              Precision::MixedF32));
    EXPECT_EQ(kc.factorization_stats().precision, Precision::MixedF32)
        << info.name;
    const std::uint64_t f32_bytes = kc.factorization_stats().memory_bytes;
    EXPECT_GE(double(f64_bytes), 1.7 * double(f32_bytes))
        << info.name << ": float factors not ~2x smaller (" << f64_bytes
        << " vs " << f32_bytes << " bytes)";

    // ...refined back to the double target in at most 4 iterations.
    la::Matrix<double> x;
    const SolveReport rep = refined_solve(kc, kc, kLambda, b, x);
    EXPECT_LE(rep.relative_residual, kTarget)
        << info.name << ": refinement stalled above the double target";
    EXPECT_TRUE(rep.converged) << info.name;
    EXPECT_LE(rep.iterations, index_t(4))
        << info.name << ": refinement took too many correction sweeps";
    EXPECT_LE(operator_residual(kc, kLambda, b, x), kTarget) << info.name;
  }
}

TEST(RefinementConvergence, SolveEntryPointRefinesByDefault) {
  std::shared_ptr<const SPDMatrix<double>> k(
      zoo::make_matrix<double>("K04", 512));
  auto kc = CompressedMatrix<double>::compress(k, refinement_config());
  kc.factorize(kLambda, FactorizeOptions::defaults().with_precision(
                            Precision::MixedF32));
  const la::Matrix<double> b =
      la::Matrix<double>::random_normal(kc.size(), kRhs, 7);

  // The plain solve() entry point refines by default...
  const la::Matrix<double> x = kc.solve(b);
  EXPECT_LE(operator_residual(kc, kLambda, b, x), kTarget);

  // ...and with_refine(false) exposes the raw float-sweep accuracy: still
  // a solve, but short of the double target.
  const la::Matrix<double> raw =
      kc.solve(b, SolveOptions::defaults().with_refine(false));
  const double raw_resid = operator_residual(kc, kLambda, b, raw);
  EXPECT_LE(raw_resid, 1e-3);
  EXPECT_GT(raw_resid, kTarget);
}

TEST(RefinementConvergence, FloatScalarNormalizesMixedToNativeDouble) {
  // For T = float there is no narrower storage tier: MixedF32 must
  // normalize to a native float factorization, not recurse.
  std::shared_ptr<const SPDMatrix<float>> k(
      zoo::make_matrix<float>("K04", 256));
  auto kc = CompressedMatrix<float>::compress(k, refinement_config());
  kc.factorize(0.5f, FactorizeOptions::defaults().with_precision(
                         Precision::MixedF32));
  EXPECT_EQ(kc.factorization_stats().precision, Precision::Double);
  const la::Matrix<float> b =
      la::Matrix<float>::random_normal(kc.size(), 1, 3);
  const la::Matrix<float> x = kc.solve(b);
  EXPECT_LE(operator_residual(kc, 0.5f, b, x), 1e-4);
}

TEST(RefinementConvergence, RetuneKeepsTheFloatStoragePolicy) {
  // refactorize(λ) on a mixed factorization must stay mixed: the λ-sweep
  // fast path may not silently re-inflate the cache entry to double.
  std::shared_ptr<const SPDMatrix<double>> k(
      zoo::make_matrix<double>("K07", 512));
  auto kc = CompressedMatrix<double>::compress(k, refinement_config());
  kc.factorize(kLambda, FactorizeOptions::defaults().with_precision(
                            Precision::MixedF32));
  const std::uint64_t f32_bytes = kc.factorization_stats().memory_bytes;

  kc.refactorize(2.0 * kLambda);
  EXPECT_EQ(kc.factorization_stats().precision, Precision::MixedF32);
  EXPECT_EQ(kc.factorization_stats().memory_bytes, f32_bytes);

  const la::Matrix<double> b =
      la::Matrix<double>::random_normal(kc.size(), kRhs, 21);
  la::Matrix<double> x;
  const SolveReport rep = refined_solve(kc, kc, 2.0 * kLambda, b, x);
  EXPECT_LE(rep.relative_residual, kTarget);
  EXPECT_LE(rep.iterations, index_t(4));
}

}  // namespace
}  // namespace gofmm
