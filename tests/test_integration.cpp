// Cross-module integration tests: zoo matrices through the full GOFMM
// pipeline, Krylov solves on the compressed operator, and baseline
// agreement on common inputs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "baselines/hodlr.hpp"
#include "baselines/rand_hss.hpp"
#include "core/gofmm.hpp"
#include "la/blas.hpp"
#include "matrices/zoo.hpp"

namespace gofmm {
namespace {

Config default_config() {
  Config cfg;
  cfg.leaf_size = 64;
  cfg.max_rank = 64;
  cfg.tolerance = 1e-6;
  cfg.kappa = 16;
  cfg.budget = 0.1;
  cfg.num_workers = 2;
  return cfg;
}

class ZooPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooPipeline, CompressesWithSmallError) {
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  std::shared_ptr<const SPDMatrix<double>> k =
      zoo::make_matrix<double>(GetParam(), 512);
  auto kc = CompressedMatrix<double>::compress(k, default_config());
  la::Matrix<double> w = la::Matrix<double>::random_normal(k->size(), 2, 3);
  auto u = kc.evaluate(w);
  const double err = kc.estimate_error(w, u, 128);
  EXPECT_LT(err, 5e-2) << GetParam();
}

// Compressible representatives of each family (K15-K17 are the paper's
// intentionally hard high-rank cases; their accuracy story is exercised by
// the Fig. 5 bench rather than asserted here).
INSTANTIATE_TEST_SUITE_P(Matrices, ZooPipeline,
                         ::testing::Values("K02", "K03", "K04", "K05", "K07",
                                           "K08", "K09", "K10", "K12", "G01",
                                           "G03", "G04", "COVTYPE", "HIGGS"));

TEST(Integration, ConjugateGradientSolveWithCompressedOperator) {
  // Kernel ridge regression normal equations: (K + λI) x = y solved by CG
  // where every operator application is the compressed matvec.
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  std::shared_ptr<const SPDMatrix<double>> k =
      zoo::make_matrix<double>("K04", 512);
  const index_t n = k->size();
  Config cfg = default_config();
  cfg.tolerance = 1e-8;
  cfg.max_rank = 128;
  auto kc = CompressedMatrix<double>::compress(k, cfg);

  // Ridge large enough to dominate the compression error (the usual
  // regime for kernel ridge regression).
  const double lambda = 1.0;
  la::Matrix<double> y = la::Matrix<double>::random_normal(n, 1, 4);
  la::Matrix<double> x(n, 1);
  la::Matrix<double> r = y;
  la::Matrix<double> p = r;
  double rho = la::dot(n, r.data(), r.data());
  const double rho0 = rho;
  int iters = 0;
  for (; iters < 200 && rho > 1e-18 * rho0; ++iters) {
    la::Matrix<double> ap = kc.evaluate(p);
    la::axpy(n, lambda, p.data(), ap.data());
    const double alpha = rho / la::dot(n, p.data(), ap.data());
    la::axpy(n, alpha, p.data(), x.data());
    la::axpy(n, -alpha, ap.data(), r.data());
    const double rho_new = la::dot(n, r.data(), r.data());
    if (rho_new < 1e-20 * rho0) {
      rho = rho_new;
      break;
    }
    const double beta = rho_new / rho;
    rho = rho_new;
    for (index_t i = 0; i < n; ++i)
      p(i, 0) = r(i, 0) + beta * p(i, 0);
  }
  EXPECT_LT(iters, 200);

  // Residual against the *exact* operator must be small too.
  la::Matrix<double> kd = k->dense();
  la::Matrix<double> kx(n, 1);
  la::gemm(la::Op::None, la::Op::None, 1.0, kd, x, 0.0, kx);
  la::axpy(n, lambda, x.data(), kx.data());
  double num = 0;
  for (index_t i = 0; i < n; ++i) {
    const double d = kx(i, 0) - y(i, 0);
    num += d * d;
  }
  EXPECT_LT(std::sqrt(num) / la::norm_fro(y), 1e-2);
}

TEST(Integration, GofmmBeatsLexicographicBaselinesOnPermutedKernel) {
  // The paper's central claim in miniature: for a kernel matrix whose rows
  // arrive in a random (geometry-destroying) order, Gram-distance
  // partitioning recovers low ranks while lexicographic codes cannot.
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  auto base = zoo::make_matrix<double>("K04", 512);
  const index_t n = base->size();
  // Shuffle rows/columns.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t(0));
  Prng rng(123);
  for (index_t i = n - 1; i > 0; --i)
    std::swap(perm[std::size_t(i)], perm[std::size_t(rng.below(i + 1))]);
  la::Matrix<double> kd = base->dense().gather(perm, perm);
  DenseSPD<double> shuffled(std::move(kd));

  Config cfg = default_config();
  cfg.distance = tree::DistanceKind::Angle;
  cfg.max_rank = 48;
  cfg.tolerance = 0;  // fixed rank for a fair comparison
  auto kc = CompressedMatrix<double>::compress(borrow(shuffled), cfg);

  baseline::RandHssOptions hss_opts;
  hss_opts.leaf_size = 64;
  hss_opts.max_rank = 48;
  hss_opts.tolerance = 0;
  baseline::RandHss<double> hss(shuffled, hss_opts);

  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 5);
  auto u_gofmm = kc.evaluate(w);
  auto u_hss = hss.matvec(w);

  la::Matrix<double> dense_k = shuffled.dense();
  la::Matrix<double> exact(n, 2);
  la::gemm(la::Op::None, la::Op::None, 1.0, dense_k, w, 0.0, exact);
  const double err_gofmm = la::diff_fro(u_gofmm, exact) / la::norm_fro(exact);
  const double err_hss = la::diff_fro(u_hss, exact) / la::norm_fro(exact);
  EXPECT_LT(err_gofmm, err_hss)
      << "gofmm " << err_gofmm << " vs lexicographic HSS " << err_hss;
}

TEST(Integration, HodlrAndGofmmAgreeOnEasyMatrix) {
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  std::shared_ptr<const SPDMatrix<double>> k =
      zoo::make_matrix<double>("K05", 384);  // wide kernel: easy
  const index_t n = k->size();
  auto kc = CompressedMatrix<double>::compress(k, default_config());
  baseline::HodlrOptions opts;
  opts.leaf_size = 64;
  opts.tolerance = 1e-8;
  baseline::Hodlr<double> h(*k, opts);

  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 1, 6);
  auto u1 = kc.evaluate(w);
  auto u2 = h.matvec(w);
  EXPECT_LT(la::diff_fro(u1, u2), 1e-3 * (1.0 + la::norm_fro(u2)));
}

TEST(Integration, SingleAndDoublePrecisionAgree) {
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  std::shared_ptr<const SPDMatrix<double>> kd =
      zoo::make_matrix<double>("K04", 256);
  std::shared_ptr<const SPDMatrix<float>> kf =
      zoo::make_matrix<float>("K04", 256);
  const index_t n = kd->size();
  Config cfg = default_config();
  cfg.tolerance = 1e-5;
  auto kcd = CompressedMatrix<double>::compress(kd, cfg);
  auto kcf = CompressedMatrix<float>::compress(kf, cfg);

  la::Matrix<double> wd = la::Matrix<double>::random_normal(n, 1, 7);
  la::Matrix<float> wf(n, 1);
  for (index_t i = 0; i < n; ++i) wf(i, 0) = float(wd(i, 0));
  auto ud = kcd.evaluate(wd);
  auto uf = kcf.evaluate(wf);
  double max_rel = 0;
  const double scale = la::norm_max(ud) + 1e-30;
  for (index_t i = 0; i < n; ++i)
    max_rel = std::max(max_rel,
                       std::abs(double(uf(i, 0)) - ud(i, 0)) / scale);
  EXPECT_LT(max_rel, 1e-2);
}

}  // namespace
}  // namespace gofmm
