// Golden accuracy-regression harness.
//
// For every matrix-zoo entry × compression backend × precision this test
// rebuilds the operator with pinned configuration/seeds, measures the
// sampled relative Frobenius error and the max-norm matvec error against
// the exact oracle, and compares them to the checked-in golden values
// under tests/golden/. The test FAILS when an error regresses beyond 2×
// its golden value — accuracy is an interface, not an accident.
//
// Two tiers share this binary:
//
//  * PR tier (default, ctest label tier1): every backend in double and
//    float at N ≤ 512 — goldens <backend>.json / <backend>_f32.json.
//  * Nightly tier (--nightly, ctest label nightly): the same sweep at the
//    CATALOG DEFAULT sizes (N up to 4096), catching precision-sensitive
//    regressions the small PR harness cannot — goldens
//    <backend>_nightly.json / <backend>_f32_nightly.json.
//
// Regenerating the goldens (after an intentional accuracy change):
//
//   cd build && GOFMM_CACHE_DIR=$PWD/zoo_cache \
//     ./test_golden --update-golden [--nightly]
//
// which rewrites tests/golden/<set>.json in the source tree (the
// directory is baked in via the GOFMM_GOLDEN_DIR compile definition).
// Commit the diff together with the change that moved the numbers, and
// say why in the commit message.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/aca.hpp"
#include "baselines/hodlr.hpp"
#include "baselines/rand_hss.hpp"
#include "core/gofmm.hpp"
#include "core/spd_matrix.hpp"
#include "la/blas.hpp"
#include "matrices/zoo.hpp"

#ifndef GOFMM_GOLDEN_DIR
#define GOFMM_GOLDEN_DIR "tests/golden"
#endif

namespace gofmm {
namespace {

bool g_update_golden = false;
bool g_nightly = false;

/// PR-tier size cap: small enough that the whole zoo × backend × precision
/// sweep stays in CI budget, large enough that every matrix is
/// hierarchical. The nightly tier lifts the cap to the catalog defaults.
constexpr index_t kMaxN = 512;
constexpr index_t kRhs = 2;
constexpr std::uint64_t kRhsSeed = 777;

struct GoldenRecord {
  std::string matrix;
  index_t n = 0;
  double rel_fro = 0;   ///< sampled ‖K̃w − Kw‖_F / ‖Kw‖_F (paper Eq. 11)
  double max_rel = 0;   ///< sampled max-norm matvec error bound
};

/// Measured errors of one backend on one matrix.
template <typename T>
GoldenRecord measure(const std::string& name, const SPDMatrix<T>& k,
                     const CompressedOperator<T>& op) {
  GoldenRecord rec;
  rec.matrix = name;
  rec.n = k.size();
  la::Matrix<T> w = la::Matrix<T>::random_normal(k.size(), kRhs, kRhsSeed);
  la::Matrix<T> u = op.apply(w);
  rec.rel_fro = sampled_relative_error(k, w, u, 100, 1234);

  // Max-norm variant on 64 sampled rows (deterministic seed).
  const index_t n = k.size();
  const index_t s = std::min<index_t>(64, n);
  Prng rng(4321);
  const std::vector<index_t> rows = sample_without_replacement(rng, n, s);
  std::vector<index_t> all(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) all[std::size_t(i)] = i;
  const la::Matrix<T> krows = k.submatrix(rows, all);
  la::Matrix<T> exact(s, kRhs);
  la::gemm(la::Op::None, la::Op::None, T(1), krows, w, T(0), exact);
  double num = 0;
  double den = 0;
  for (index_t j = 0; j < kRhs; ++j)
    for (index_t i = 0; i < s; ++i) {
      num = std::max(num, std::abs(double(u(rows[std::size_t(i)], j)) -
                                   double(exact(i, j))));
      den = std::max(den, std::abs(double(exact(i, j))));
    }
  rec.max_rel = den > 0 ? num / den : num;
  return rec;
}

/// Golden set name: backend, "_f32" for float, "_nightly" for the
/// default-size tier — e.g. tests/golden/rand_hss_f32_nightly.json.
std::string golden_path(const std::string& set) {
  return std::string(GOFMM_GOLDEN_DIR) + "/" + set +
         (g_nightly ? "_nightly" : "") + ".json";
}

/// Writes records in the exact one-entry-per-line format read() expects.
void write_golden(const std::string& set,
                  const std::vector<GoldenRecord>& recs) {
  std::ofstream out(golden_path(set));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(set);
  out << "{\n  \"backend\": \"" << set << "\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"matrix\": \"%s\", \"n\": %lld, \"rel_fro\": "
                  "%.9e, \"max_rel\": %.9e}%s\n",
                  recs[i].matrix.c_str(), static_cast<long long>(recs[i].n),
                  recs[i].rel_fro, recs[i].max_rel,
                  i + 1 < recs.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

/// Minimal parser for the fixed format above: one entry per line.
std::map<std::string, GoldenRecord> read_golden(const std::string& set) {
  std::map<std::string, GoldenRecord> out;
  std::ifstream in(golden_path(set));
  if (!in.good()) return out;
  std::string line;
  while (std::getline(in, line)) {
    GoldenRecord rec;
    char mat[64] = {0};
    long long n = 0;
    if (std::sscanf(line.c_str(),
                    " {\"matrix\": \"%63[^\"]\", \"n\": %lld, \"rel_fro\": "
                    "%lg, \"max_rel\": %lg",
                    mat, &n, &rec.rel_fro, &rec.max_rel) == 4) {
      rec.matrix = mat;
      rec.n = index_t(n);
      out[rec.matrix] = rec;
    }
  }
  return out;
}

/// A measured error may not exceed 2× its golden value (plus an absolute
/// floor so goldens at round-off level cannot flap across compilers; the
/// float sweep gets a proportionally larger floor).
void expect_no_regression(const std::string& set, const GoldenRecord& golden,
                          const GoldenRecord& now, double floor) {
  EXPECT_EQ(golden.n, now.n)
      << set << "/" << now.matrix
      << ": harness size changed — regenerate with --update-golden";
  EXPECT_LE(now.rel_fro, 2.0 * golden.rel_fro + floor)
      << set << "/" << now.matrix << " relative Frobenius error regressed"
      << " (golden " << golden.rel_fro << ")";
  EXPECT_LE(now.max_rel, 2.0 * golden.max_rel + floor)
      << set << "/" << now.matrix << " max-norm matvec error regressed"
      << " (golden " << golden.max_rel << ")";
}

/// Builds the backend under its pinned harness configuration.
template <typename T>
std::unique_ptr<CompressedOperator<T>> build_backend(
    const std::string& backend, std::shared_ptr<const SPDMatrix<T>> k) {
  if (backend == "gofmm") {
    const Config cfg = Config::defaults()
                           .with_leaf_size(64)
                           .with_max_rank(64)
                           .with_tolerance(1e-5)
                           .with_kappa(16)
                           .with_budget(0.03)
                           .with_engine(rt::Engine::LevelByLevel)
                           .with_num_workers(2);
    return CompressedMatrix<T>::compress_unique(std::move(k), cfg);
  }
  if (backend == "hodlr") {
    baseline::HodlrOptions o;
    o.leaf_size = 64;
    o.tolerance = 1e-5;
    o.max_rank = 256;
    return std::make_unique<baseline::Hodlr<T>>(*k, o);
  }
  if (backend == "rand_hss") {
    baseline::RandHssOptions o;
    o.leaf_size = 64;
    o.max_rank = 96;
    o.tolerance = 1e-5;
    return std::make_unique<baseline::RandHss<T>>(*k, o);
  }
  if (backend == "aca") {
    return std::make_unique<baseline::AcaLowRank<T>>(*k, T(1e-5),
                                                     /*max_rank=*/256);
  }
  ADD_FAILURE() << "unknown backend " << backend;
  return nullptr;
}

template <typename T>
std::vector<GoldenRecord> run_sweep(const std::string& backend) {
  std::vector<GoldenRecord> measured;
  for (const zoo::ZooInfo& info : zoo::catalog()) {
    const index_t n_req =
        g_nightly ? info.default_n : std::min(info.default_n, kMaxN);
    std::shared_ptr<const SPDMatrix<T>> k(
        zoo::make_matrix<T>(info.name, n_req));
    auto op = build_backend<T>(backend, k);
    if (op == nullptr) break;
    measured.push_back(measure<T>(info.name, *k, *op));
  }
  return measured;
}

class GoldenAccuracy : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenAccuracy, NoBackendRegressesBeyondTwiceGolden) {
  std::string set = GetParam();
  std::string backend = set;
  const bool is_float = set.size() > 4 && set.ends_with("_f32");
  if (is_float) backend = set.substr(0, set.size() - 4);

  const std::vector<GoldenRecord> measured =
      is_float ? run_sweep<float>(backend) : run_sweep<double>(backend);

  if (g_update_golden) {
    write_golden(set, measured);
    GTEST_LOG_(INFO) << "rewrote " << golden_path(set);
    return;
  }

  const auto golden = read_golden(set);
  ASSERT_FALSE(golden.empty())
      << "no goldens for set '" << set
      << "' — run ./test_golden --update-golden"
      << (g_nightly ? " --nightly" : "") << " once and commit "
      << golden_path(set);
  const double floor = is_float ? 1e-6 : 1e-12;
  for (const GoldenRecord& now : measured) {
    const auto it = golden.find(now.matrix);
    if (it == golden.end()) {
      ADD_FAILURE() << set << "/" << now.matrix
                    << " has no golden entry — run --update-golden";
      continue;
    }
    expect_no_regression(set, it->second, now, floor);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, GoldenAccuracy,
                         ::testing::Values("gofmm", "hodlr", "rand_hss",
                                           "aca", "gofmm_f32", "hodlr_f32",
                                           "rand_hss_f32", "aca_f32"));

}  // namespace
}  // namespace gofmm

/// Custom main (overrides gtest_main): --update-golden switches the run
/// from "compare against goldens" to "rewrite goldens in the source
/// tree"; --nightly lifts the size cap to the catalog defaults and reads/
/// writes the *_nightly golden sets.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0)
      gofmm::g_update_golden = true;
    if (std::strcmp(argv[i], "--nightly") == 0) gofmm::g_nightly = true;
  }
  return RUN_ALL_TESTS();
}
