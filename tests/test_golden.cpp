// Golden accuracy-regression harness.
//
// For every matrix-zoo entry × compression backend this test rebuilds the
// operator with pinned configuration/seeds, measures the sampled relative
// Frobenius error and the max-norm matvec error against the exact oracle,
// and compares them to the checked-in golden values under tests/golden/.
// The test FAILS when an error regresses beyond 2× its golden value —
// accuracy is an interface, not an accident.
//
// Regenerating the goldens (after an intentional accuracy change):
//
//   cd build && GOFMM_CACHE_DIR=$PWD/zoo_cache \
//     ./test_golden --update-golden
//
// which rewrites tests/golden/<backend>.json in the source tree (the
// directory is baked in via the GOFMM_GOLDEN_DIR compile definition).
// Commit the diff together with the change that moved the numbers, and
// say why in the commit message.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/aca.hpp"
#include "baselines/hodlr.hpp"
#include "baselines/rand_hss.hpp"
#include "core/gofmm.hpp"
#include "core/spd_matrix.hpp"
#include "la/blas.hpp"
#include "matrices/zoo.hpp"

#ifndef GOFMM_GOLDEN_DIR
#define GOFMM_GOLDEN_DIR "tests/golden"
#endif

namespace gofmm {
namespace {

bool g_update_golden = false;

/// Harness-wide knobs: small enough that the whole zoo × backend sweep
/// stays in CI budget, large enough that every matrix is hierarchical.
constexpr index_t kMaxN = 512;
constexpr index_t kRhs = 2;
constexpr std::uint64_t kRhsSeed = 777;

struct GoldenRecord {
  std::string matrix;
  index_t n = 0;
  double rel_fro = 0;   ///< sampled ‖K̃w − Kw‖_F / ‖Kw‖_F (paper Eq. 11)
  double max_rel = 0;   ///< sampled max-norm matvec error bound
};

/// Measured errors of one backend on one matrix.
GoldenRecord measure(const std::string& name, const SPDMatrix<double>& k,
                     const CompressedOperator<double>& op) {
  GoldenRecord rec;
  rec.matrix = name;
  rec.n = k.size();
  la::Matrix<double> w =
      la::Matrix<double>::random_normal(k.size(), kRhs, kRhsSeed);
  la::Matrix<double> u = op.apply(w);
  rec.rel_fro = sampled_relative_error(k, w, u, 100, 1234);

  // Max-norm variant on 64 sampled rows (deterministic seed).
  const index_t n = k.size();
  const index_t s = std::min<index_t>(64, n);
  Prng rng(4321);
  const std::vector<index_t> rows = sample_without_replacement(rng, n, s);
  std::vector<index_t> all(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) all[std::size_t(i)] = i;
  const la::Matrix<double> krows = k.submatrix(rows, all);
  la::Matrix<double> exact(s, kRhs);
  la::gemm(la::Op::None, la::Op::None, 1.0, krows, w, 0.0, exact);
  double num = 0;
  double den = 0;
  for (index_t j = 0; j < kRhs; ++j)
    for (index_t i = 0; i < s; ++i) {
      num = std::max(
          num, std::abs(u(rows[std::size_t(i)], j) - exact(i, j)));
      den = std::max(den, std::abs(exact(i, j)));
    }
  rec.max_rel = den > 0 ? num / den : num;
  return rec;
}

std::string golden_path(const std::string& backend) {
  return std::string(GOFMM_GOLDEN_DIR) + "/" + backend + ".json";
}

/// Writes records in the exact one-entry-per-line format read() expects.
void write_golden(const std::string& backend,
                  const std::vector<GoldenRecord>& recs) {
  std::ofstream out(golden_path(backend));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(backend);
  out << "{\n  \"backend\": \"" << backend << "\",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"matrix\": \"%s\", \"n\": %lld, \"rel_fro\": "
                  "%.9e, \"max_rel\": %.9e}%s\n",
                  recs[i].matrix.c_str(), static_cast<long long>(recs[i].n),
                  recs[i].rel_fro, recs[i].max_rel,
                  i + 1 < recs.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

/// Minimal parser for the fixed format above: one entry per line.
std::map<std::string, GoldenRecord> read_golden(const std::string& backend) {
  std::map<std::string, GoldenRecord> out;
  std::ifstream in(golden_path(backend));
  if (!in.good()) return out;
  std::string line;
  while (std::getline(in, line)) {
    GoldenRecord rec;
    char mat[64] = {0};
    long long n = 0;
    if (std::sscanf(line.c_str(),
                    " {\"matrix\": \"%63[^\"]\", \"n\": %lld, \"rel_fro\": "
                    "%lg, \"max_rel\": %lg",
                    mat, &n, &rec.rel_fro, &rec.max_rel) == 4) {
      rec.matrix = mat;
      rec.n = index_t(n);
      out[rec.matrix] = rec;
    }
  }
  return out;
}

/// A measured error may not exceed 2× its golden value (plus an absolute
/// floor so goldens at round-off level cannot flap across compilers).
void expect_no_regression(const std::string& backend,
                          const GoldenRecord& golden,
                          const GoldenRecord& now) {
  const double floor = 1e-12;
  EXPECT_EQ(golden.n, now.n)
      << backend << "/" << now.matrix
      << ": harness size changed — regenerate with --update-golden";
  EXPECT_LE(now.rel_fro, 2.0 * golden.rel_fro + floor)
      << backend << "/" << now.matrix << " relative Frobenius error regressed"
      << " (golden " << golden.rel_fro << ")";
  EXPECT_LE(now.max_rel, 2.0 * golden.max_rel + floor)
      << backend << "/" << now.matrix << " max-norm matvec error regressed"
      << " (golden " << golden.max_rel << ")";
}

/// Builds the backend under its pinned harness configuration.
std::unique_ptr<CompressedOperator<double>> build_backend(
    const std::string& backend, std::shared_ptr<const SPDMatrix<double>> k) {
  if (backend == "gofmm") {
    const Config cfg = Config::defaults()
                           .with_leaf_size(64)
                           .with_max_rank(64)
                           .with_tolerance(1e-5)
                           .with_kappa(16)
                           .with_budget(0.03)
                           .with_engine(rt::Engine::LevelByLevel)
                           .with_num_workers(2);
    return CompressedMatrix<double>::compress_unique(std::move(k), cfg);
  }
  if (backend == "hodlr") {
    baseline::HodlrOptions o;
    o.leaf_size = 64;
    o.tolerance = 1e-5;
    o.max_rank = 256;
    return std::make_unique<baseline::Hodlr<double>>(*k, o);
  }
  if (backend == "rand_hss") {
    baseline::RandHssOptions o;
    o.leaf_size = 64;
    o.max_rank = 96;
    o.tolerance = 1e-5;
    return std::make_unique<baseline::RandHss<double>>(*k, o);
  }
  if (backend == "aca") {
    return std::make_unique<baseline::AcaLowRank<double>>(*k, 1e-5,
                                                          /*max_rank=*/256);
  }
  ADD_FAILURE() << "unknown backend " << backend;
  return nullptr;
}

class GoldenAccuracy : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenAccuracy, NoBackendRegressesBeyondTwiceGolden) {
  const std::string backend = GetParam();
  const auto golden = read_golden(backend);
  std::vector<GoldenRecord> measured;

  for (const zoo::ZooInfo& info : zoo::catalog()) {
    const index_t n_req = std::min(info.default_n, kMaxN);
    std::shared_ptr<const SPDMatrix<double>> k(
        zoo::make_matrix<double>(info.name, n_req));
    auto op = build_backend(backend, k);
    ASSERT_NE(op, nullptr);
    measured.push_back(measure(info.name, *k, *op));
  }

  if (g_update_golden) {
    write_golden(backend, measured);
    GTEST_LOG_(INFO) << "rewrote " << golden_path(backend);
    return;
  }

  ASSERT_FALSE(golden.empty())
      << "no goldens for backend '" << backend
      << "' — run ./test_golden --update-golden once and commit "
      << golden_path(backend);
  for (const GoldenRecord& now : measured) {
    const auto it = golden.find(now.matrix);
    if (it == golden.end()) {
      ADD_FAILURE() << backend << "/" << now.matrix
                    << " has no golden entry — run --update-golden";
      continue;
    }
    expect_no_regression(backend, it->second, now);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, GoldenAccuracy,
                         ::testing::Values("gofmm", "hodlr", "rand_hss",
                                           "aca"));

}  // namespace
}  // namespace gofmm

/// Custom main (overrides gtest_main): --update-golden switches the run
/// from "compare against goldens" to "rewrite goldens in the source tree".
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--update-golden") == 0)
      gofmm::g_update_golden = true;
  return RUN_ALL_TESTS();
}
