// Tests for the matrix-free solvers built on the compressed operator.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/solvers.hpp"
#include "matrices/zoo.hpp"

namespace gofmm {
namespace {

Config solver_config() {
  Config cfg;
  cfg.leaf_size = 64;
  cfg.max_rank = 96;
  cfg.tolerance = 1e-8;
  cfg.kappa = 16;
  cfg.budget = 0.1;
  return cfg;
}

TEST(ConjugateGradient, SolvesRegularisedSystem) {
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  std::shared_ptr<const SPDMatrix<double>> k =
      zoo::make_matrix<double>("K04", 512);
  const index_t n = k->size();
  auto kc = CompressedMatrix<double>::compress(k, solver_config());

  la::Matrix<double> b = la::Matrix<double>::random_normal(n, 1, 2);
  la::Matrix<double> x;
  const double lambda = 1.0;
  SolveReport rep = conjugate_gradient(
      kc, lambda, b, x,
      SolveOptions::defaults().with_target_residual(1e-9).with_max_iterations(
          500));
  EXPECT_TRUE(rep.converged) << "relres " << rep.relative_residual;

  // Verify against the compressed operator itself.
  la::Matrix<double> ax = kc.evaluate(x);
  la::axpy(n, lambda, x.data(), ax.data());
  double num = 0;
  for (index_t i = 0; i < n; ++i) {
    const double d = ax(i, 0) - b(i, 0);
    num += d * d;
  }
  EXPECT_LT(std::sqrt(num) / la::norm_fro(b), 1e-7);
}

TEST(ConjugateGradient, ZeroRhsConvergesImmediately) {
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  std::shared_ptr<const SPDMatrix<double>> k =
      zoo::make_matrix<double>("K05", 256);
  auto kc = CompressedMatrix<double>::compress(k, solver_config());
  la::Matrix<double> b(k->size(), 1);
  la::Matrix<double> x;
  SolveReport rep = conjugate_gradient(kc, 0.1, b, x);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.iterations, 0);
}

TEST(ConjugateGradient, BadShapeThrows) {
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  std::shared_ptr<const SPDMatrix<double>> k =
      zoo::make_matrix<double>("K05", 256);
  auto kc = CompressedMatrix<double>::compress(k, solver_config());
  la::Matrix<double> b(17, 1);
  la::Matrix<double> x;
  EXPECT_THROW(conjugate_gradient(kc, 0.1, b, x), std::invalid_argument);
}

TEST(PowerIteration, FindsDominantEigenvalueOfKernelMatrix) {
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  std::shared_ptr<const SPDMatrix<double>> k =
      zoo::make_matrix<double>("K05", 384);  // wide kernel: strong gap
  const index_t n = k->size();
  Config cfg = solver_config();
  cfg.tolerance = 1e-10;
  auto kc = CompressedMatrix<double>::compress(k, cfg);

  la::Matrix<double> v;
  auto eig = power_iteration(kc, 2, 80, 3, &v);
  ASSERT_EQ(eig.size(), 2u);
  EXPECT_GT(eig[0], eig[1]);

  // Residual check ||K v - lambda v|| against the exact dense operator.
  la::Matrix<double> kd = k->dense();
  la::Matrix<double> kv(n, 2);
  la::gemm(la::Op::None, la::Op::None, 1.0, kd, v, 0.0, kv);
  for (index_t j = 0; j < 2; ++j) {
    double res = 0;
    for (index_t i = 0; i < n; ++i) {
      const double d = kv(i, j) - eig[std::size_t(j)] * v(i, j);
      res += d * d;
    }
    EXPECT_LT(std::sqrt(res) / eig[std::size_t(j)], 5e-2) << "pair " << j;
  }
}

TEST(PowerIteration, RejectsBadArguments) {
  setenv("GOFMM_CACHE_DIR", "/tmp/gofmm_test_cache", 1);
  std::shared_ptr<const SPDMatrix<double>> k =
      zoo::make_matrix<double>("K05", 128);
  auto kc = CompressedMatrix<double>::compress(k, solver_config());
  EXPECT_THROW(power_iteration(kc, 0), std::invalid_argument);
  EXPECT_THROW(power_iteration(kc, 10000), std::invalid_argument);
}

}  // namespace
}  // namespace gofmm
