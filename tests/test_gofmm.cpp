// Core GOFMM tests: interaction-list invariants, skeleton nesting,
// accuracy, engine equivalence, and the HSS/FMM structure switch.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/gofmm.hpp"
#include "la/blas.hpp"
#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"

namespace gofmm {
namespace {

using tree::DistanceKind;

/// Standard small test matrix: Gaussian kernel on clustered 3-D points.
/// Shared ownership so it hands straight to compress(shared_ptr, config).
std::shared_ptr<const zoo::KernelSPD<double>> test_kernel(
    index_t n, std::uint64_t seed = 1) {
  zoo::KernelParams p;
  p.kind = zoo::KernelKind::Gaussian;
  p.bandwidth = 0.3;
  p.ridge = 1e-6;
  return std::make_shared<zoo::KernelSPD<double>>(
      zoo::gaussian_mixture_cloud<double>(3, n, 6, 0.15, seed), p);
}

Config small_config() {
  Config cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 32;
  cfg.tolerance = 1e-7;
  cfg.kappa = 8;
  cfg.budget = 0.05;
  cfg.num_workers = 2;
  return cfg;
}

/// Dense K̃ via evaluate on the identity.
template <typename T>
la::Matrix<T> dense_compressed(CompressedMatrix<T>& kc) {
  return kc.evaluate(la::Matrix<T>::identity(kc.size()));
}

// ---------------------------------------------------- structure checks ----

TEST(GofmmStructure, BudgetZeroIsExactlyHss) {
  auto k = test_kernel(256);
  Config cfg = small_config();
  cfg.budget = 0.0;
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  const auto& t = kc.cluster_tree();
  for (const tree::Node* node : t.nodes()) {
    if (node->is_leaf()) {
      const auto& near = kc.near_list(node);
      ASSERT_EQ(near.size(), 1u);
      EXPECT_EQ(near[0], node);
    }
    const auto& far = kc.far_list(node);
    if (node->parent == nullptr) {
      EXPECT_TRUE(far.empty());
    } else {
      ASSERT_EQ(far.size(), 1u) << "node " << node->id;
      EXPECT_EQ(far[0], node->sibling());
    }
  }
}

TEST(GofmmStructure, NearListsAreSymmetric) {
  auto k = test_kernel(512);
  Config cfg = small_config();
  cfg.budget = 0.2;
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  const auto& t = kc.cluster_tree();
  for (const tree::Node* beta : t.leaves()) {
    for (const tree::Node* alpha : kc.near_list(beta)) {
      const auto& other = kc.near_list(alpha);
      EXPECT_NE(std::find(other.begin(), other.end(), beta), other.end())
          << "asymmetric near pair " << beta->id << "," << alpha->id;
    }
  }
}

TEST(GofmmStructure, FarListsAreSymmetric) {
  auto k = test_kernel(512);
  Config cfg = small_config();
  cfg.budget = 0.15;
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  const auto& t = kc.cluster_tree();
  for (const tree::Node* beta : t.nodes()) {
    for (const tree::Node* alpha : kc.far_list(beta)) {
      const auto& other = kc.far_list(alpha);
      EXPECT_NE(std::find(other.begin(), other.end(), beta), other.end())
          << "asymmetric far pair " << beta->id << "," << alpha->id;
    }
  }
}

class GofmmCoverage : public ::testing::TestWithParam<double> {};

TEST_P(GofmmCoverage, NearAndFarTileEveryEntryExactlyOnce) {
  // The defining invariant of the H-matrix partition (paper Fig. 2): the
  // near blocks and the far blocks at all levels cover each (i, j) entry
  // exactly once.
  const index_t n = 256;
  auto k = test_kernel(n);
  Config cfg = small_config();
  cfg.budget = GetParam();
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  const auto& t = kc.cluster_tree();

  la::Matrix<double> cover(n, n);  // counts per (tree-position) entry
  auto add_block = [&](const tree::Node* rows, const tree::Node* cols) {
    for (index_t i = rows->begin; i < rows->begin + rows->count; ++i)
      for (index_t j = cols->begin; j < cols->begin + cols->count; ++j)
        cover(i, j) += 1.0;
  };
  for (const tree::Node* node : t.nodes()) {
    for (const tree::Node* alpha : kc.near_list(node)) add_block(node, alpha);
    for (const tree::Node* alpha : kc.far_list(node)) add_block(node, alpha);
  }
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      ASSERT_EQ(cover(i, j), 1.0) << "entry (" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(Budgets, GofmmCoverage,
                         ::testing::Values(0.0, 0.05, 0.25, 1.0));

TEST(GofmmStructure, RootNeedsNoSkeleton) {
  auto k = test_kernel(256);
  auto kc = CompressedMatrix<double>::compress(k, small_config());
  const auto ranks = kc.skeleton_ranks();
  EXPECT_EQ(ranks[std::size_t(kc.cluster_tree().root()->id)], 0);
}

TEST(GofmmStructure, SkeletonsAreNested) {
  // Nesting property (paper Eq. 8): α̃ ⊆ l̃ ∪ r̃ for every interior node,
  // and leaf skeletons are subsets of the leaf's own indices.
  auto k = test_kernel(512);
  auto kc = CompressedMatrix<double>::compress(k, small_config());
  const auto& t = kc.cluster_tree();
  for (const tree::Node* node : t.nodes()) {
    const auto& skel = kc.skeleton(node);
    if (skel.empty()) continue;
    if (node->is_leaf()) {
      const auto own = t.indices(node);
      for (index_t s : skel)
        EXPECT_NE(std::find(own.begin(), own.end(), s), own.end());
    } else {
      std::set<index_t> children;
      for (index_t s : kc.skeleton(node->left())) children.insert(s);
      for (index_t s : kc.skeleton(node->right())) children.insert(s);
      for (index_t s : skel)
        EXPECT_TRUE(children.count(s)) << "node " << node->id;
    }
  }
}

// ------------------------------------------------------------ accuracy ----

TEST(GofmmAccuracy, CompressedMatvecIsAccurate) {
  const index_t n = 512;
  auto k = test_kernel(n);
  Config cfg = small_config();
  cfg.budget = 0.1;
  cfg.max_rank = 64;
  auto kc = CompressedMatrix<double>::compress(k, cfg);

  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 3, 99);
  la::Matrix<double> u = kc.evaluate(w);

  const la::Matrix<double> kd = k->dense();
  la::Matrix<double> exact(n, 3);
  la::gemm(la::Op::None, la::Op::None, 1.0, kd, w, 0.0, exact);
  const double err = la::diff_fro(u, exact) / la::norm_fro(exact);
  EXPECT_LT(err, 1e-3);
}

TEST(GofmmAccuracy, DenseReconstructionIsSymmetric) {
  const index_t n = 256;
  auto k = test_kernel(n);
  Config cfg = small_config();
  cfg.budget = 0.1;
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  la::Matrix<double> kt = dense_compressed(kc);
  EXPECT_LT(la::diff_fro(kt, kt.transposed()), 1e-8 * la::norm_fro(kt));
}

TEST(GofmmAccuracy, ErrorEstimatorTracksTrueError) {
  const index_t n = 400;
  auto k = test_kernel(n);
  Config cfg = small_config();
  cfg.tolerance = 1e-4;
  cfg.max_rank = 24;  // deliberately capped: visible error
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 5);
  la::Matrix<double> u = kc.evaluate(w);

  const la::Matrix<double> kd = k->dense();
  la::Matrix<double> exact(n, 2);
  la::gemm(la::Op::None, la::Op::None, 1.0, kd, w, 0.0, exact);
  const double true_err = la::diff_fro(u, exact) / la::norm_fro(exact);
  const double est = kc.estimate_error(w, u, 200);
  if (true_err > 1e-12) {
    EXPECT_LT(est, true_err * 10 + 1e-12);
    EXPECT_GT(est, true_err / 10 - 1e-12);
  }
}

TEST(GofmmAccuracy, TighterToleranceGivesSmallerError) {
  const index_t n = 512;
  auto k = test_kernel(n);
  Config loose = small_config();
  loose.tolerance = 1e-1;
  loose.max_rank = 64;
  Config tight = loose;
  tight.tolerance = 1e-9;

  auto kc_loose = CompressedMatrix<double>::compress(k, loose);
  auto kc_tight = CompressedMatrix<double>::compress(k, tight);
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 6);
  auto ul = kc_loose.evaluate(w);
  auto ut = kc_tight.evaluate(w);
  const double el = kc_loose.estimate_error(w, ul, 150);
  const double et = kc_tight.estimate_error(w, ut, 150);
  EXPECT_LE(et, el + 1e-12);
}

TEST(GofmmAccuracy, LargerBudgetNotWorse) {
  const index_t n = 512;
  auto k = test_kernel(n);
  Config hss = small_config();
  hss.budget = 0.0;
  hss.max_rank = 16;  // small rank so the budget matters
  hss.tolerance = 0;  // fixed rank
  Config fmm = hss;
  fmm.budget = 0.3;

  auto kc_h = CompressedMatrix<double>::compress(k, hss);
  auto kc_f = CompressedMatrix<double>::compress(k, fmm);
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 7);
  auto uh = kc_h.evaluate(w);
  auto uf = kc_f.evaluate(w);
  const double eh = kc_h.estimate_error(w, uh, 150);
  const double ef = kc_f.estimate_error(w, uf, 150);
  EXPECT_LE(ef, eh * 1.5 + 1e-12);  // generous slack: statistical claim
}

// ------------------------------------------------------------- engines ----

class GofmmEngines : public ::testing::TestWithParam<rt::Engine> {};

TEST_P(GofmmEngines, AllEnginesProduceTheSameResult) {
  const index_t n = 384;
  auto k = test_kernel(n);
  Config ref_cfg = small_config();
  ref_cfg.engine = rt::Engine::Heft;
  Config cfg = ref_cfg;
  cfg.engine = GetParam();

  auto kc_ref = CompressedMatrix<double>::compress(k, ref_cfg);
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 3, 8);
  auto u_ref = kc_ref.evaluate(w);
  auto u = kc.evaluate(w);
  EXPECT_LT(la::diff_fro(u, u_ref), 1e-10 * (1.0 + la::norm_fro(u_ref)));
}

INSTANTIATE_TEST_SUITE_P(Engines, GofmmEngines,
                         ::testing::Values(rt::Engine::Heft,
                                           rt::Engine::LevelByLevel,
                                           rt::Engine::OmpTask));

TEST(GofmmEngines, RepeatedEvaluationIsStable) {
  const index_t n = 256;
  auto k = test_kernel(n);
  auto kc = CompressedMatrix<double>::compress(k, small_config());
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 9);
  auto u1 = kc.evaluate(w);
  auto u2 = kc.evaluate(w);
  EXPECT_DOUBLE_EQ(la::diff_fro(u1, u2), 0.0);
}

TEST(GofmmEngines, MultiRhsMatchesSingleRhs) {
  const index_t n = 256;
  auto k = test_kernel(n);
  auto kc = CompressedMatrix<double>::compress(k, small_config());
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 4, 10);
  auto u = kc.evaluate(w);
  for (index_t j = 0; j < 4; ++j) {
    la::Matrix<double> wj(n, 1);
    std::copy_n(w.col(j), n, wj.col(0));
    auto uj = kc.evaluate(wj);
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(uj(i, 0), u(i, j), 1e-11) << "rhs " << j;
  }
}

// ----------------------------------------------------- config variants ----

TEST(GofmmConfig, CachedAndUncachedAgree) {
  const index_t n = 256;
  auto k = test_kernel(n);
  Config cached = small_config();
  cached.cache_blocks = true;
  Config lazy = cached;
  lazy.cache_blocks = false;

  auto kc1 = CompressedMatrix<double>::compress(k, cached);
  auto kc2 = CompressedMatrix<double>::compress(k, lazy);
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 11);
  auto u1 = kc1.evaluate(w);
  auto u2 = kc2.evaluate(w);
  EXPECT_LT(la::diff_fro(u1, u2), 1e-11);
  EXPECT_GT(kc1.stats().cached_bytes, 0u);
  EXPECT_EQ(kc2.stats().cached_bytes, 0u);
}

class GofmmOrderings : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(GofmmOrderings, CompressesUnderEveryOrdering) {
  const index_t n = 384;
  auto k = test_kernel(n);
  Config cfg = small_config();
  cfg.distance = GetParam();
  cfg.max_rank = 48;
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, 2, 12);
  auto u = kc.evaluate(w);
  const double err = kc.estimate_error(w, u, 150);
  // Distance-based orderings must do well; lexicographic/random merely
  // have to produce a finite, sane result on this easy matrix.
  if (tree::has_distance(GetParam()))
    EXPECT_LT(err, 1e-2) << to_string(GetParam());
  else
    EXPECT_LT(err, 1.0) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Orderings, GofmmOrderings,
                         ::testing::Values(DistanceKind::Kernel,
                                           DistanceKind::Angle,
                                           DistanceKind::Geometric,
                                           DistanceKind::Lexicographic,
                                           DistanceKind::Random));

TEST(GofmmConfig, InvalidArgumentsThrow) {
  auto k = test_kernel(64);
  Config cfg = small_config();
  cfg.budget = 2.0;
  EXPECT_THROW(CompressedMatrix<double>::compress(k, cfg),
               std::invalid_argument);
  cfg = small_config();
  cfg.leaf_size = 0;
  EXPECT_THROW(CompressedMatrix<double>::compress(k, cfg),
               std::invalid_argument);
  cfg = small_config();
  la::Matrix<double> w_bad(32, 1);
  auto kc = CompressedMatrix<double>::compress(k, small_config());
  EXPECT_THROW(kc.evaluate(w_bad), std::invalid_argument);
}

TEST(GofmmConfig, GeometricWithoutPointsThrows) {
  DenseSPD<double> k(la::Matrix<double>::identity(64));
  Config cfg = small_config();
  cfg.distance = DistanceKind::Geometric;
  EXPECT_THROW(CompressedMatrix<double>::compress(borrow(k), cfg),
               std::invalid_argument);
}

TEST(GofmmConfig, StatsArePopulated) {
  auto k = test_kernel(512);
  auto kc = CompressedMatrix<double>::compress(k, small_config());
  const auto& s = kc.stats();
  EXPECT_GT(s.total_seconds, 0.0);
  EXPECT_GT(s.avg_rank, 0.0);
  EXPECT_GT(s.num_far_pairs, 0);
  EXPECT_GT(s.num_near_pairs, 0);
  EXPECT_GT(s.near_fraction, 0.0);
  EXPECT_LT(s.near_fraction, 1.0);
  EXPECT_GT(s.skel_flops, 0u);
  la::Matrix<double> w = la::Matrix<double>::random_normal(512, 8, 13);
  kc.evaluate(w);
  EXPECT_GT(kc.last_eval_stats().flops, 0u);
  EXPECT_GT(kc.last_eval_stats().seconds, 0.0);
}

TEST(GofmmConfig, FixedRankModeHonoursMaxRank) {
  auto k = test_kernel(512);
  Config cfg = small_config();
  cfg.tolerance = 0;  // fixed rank
  cfg.max_rank = 12;
  auto kc = CompressedMatrix<double>::compress(k, cfg);
  for (index_t r : kc.skeleton_ranks()) EXPECT_LE(r, 12);
  EXPECT_EQ(kc.stats().max_rank, 12);
}

TEST(GofmmConfig, SinglePrecisionWorks) {
  const index_t n = 384;
  zoo::KernelParams p;
  p.kind = zoo::KernelKind::Gaussian;
  p.bandwidth = 0.3;
  zoo::KernelSPD<float> k(zoo::gaussian_mixture_cloud<float>(3, n, 6, 0.15, 1),
                          p);
  Config cfg = small_config();
  cfg.tolerance = 1e-4;
  auto kc = CompressedMatrix<float>::compress(borrow(k), cfg);
  la::Matrix<float> w = la::Matrix<float>::random_normal(n, 2, 14);
  auto u = kc.evaluate(w);
  EXPECT_LT(kc.estimate_error(w, u, 100), 1e-2);
}

}  // namespace
}  // namespace gofmm
