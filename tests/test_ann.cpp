// Unit tests for the randomized all-nearest-neighbors search.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"
#include "tree/ann.hpp"

namespace gofmm::tree {
namespace {

zoo::KernelParams gaussian_params(double h) {
  zoo::KernelParams p;
  p.kind = zoo::KernelKind::Gaussian;
  p.bandwidth = h;
  return p;
}

TEST(Ann, SelfIsAlwaysANeighbor) {
  zoo::KernelSPD<double> k(zoo::uniform_cloud<double>(3, 300, 1),
                           gaussian_params(1.0));
  Metric<double> metric(k, DistanceKind::Kernel);
  AnnOptions opts;
  opts.kappa = 8;
  opts.leaf_size = 32;
  AnnResult res = all_nearest_neighbors(k, metric, opts);
  for (index_t i = 0; i < k.size(); ++i) {
    const auto list = res.neighbors.of(i);
    EXPECT_NE(std::find(list.begin(), list.end(), i), list.end())
        << "index " << i << " lost itself";
  }
}

TEST(Ann, NoDuplicateNeighbors) {
  zoo::KernelSPD<double> k(zoo::uniform_cloud<double>(3, 200, 2),
                           gaussian_params(1.0));
  Metric<double> metric(k, DistanceKind::Kernel);
  AnnOptions opts;
  opts.kappa = 16;
  opts.leaf_size = 25;
  AnnResult res = all_nearest_neighbors(k, metric, opts);
  for (index_t i = 0; i < k.size(); ++i) {
    const auto list = res.neighbors.of(i);
    std::vector<index_t> sorted(list.begin(), list.end());
    std::sort(sorted.begin(), sorted.end());
    // -1 padding allowed (unfilled slots), but no repeated real ids.
    for (std::size_t t = 1; t < sorted.size(); ++t)
      if (sorted[t] >= 0) EXPECT_NE(sorted[t], sorted[t - 1]);
  }
}

class AnnMetrics : public ::testing::TestWithParam<DistanceKind> {};

TEST_P(AnnMetrics, ReachesHighRecall) {
  // Clustered points: random trees find local neighbors quickly.
  zoo::KernelSPD<double> k(
      zoo::gaussian_mixture_cloud<double>(4, 500, 8, 0.1, 3),
      gaussian_params(0.5));
  Metric<double> metric(k, GetParam());
  AnnOptions opts;
  opts.kappa = 10;
  opts.leaf_size = 50;
  opts.max_iterations = 10;
  opts.target_recall = 0.8;
  AnnResult res = all_nearest_neighbors(k, metric, opts);

  // Exact recall over every index (not just the stop-criterion probes).
  std::vector<index_t> all(500);
  std::iota(all.begin(), all.end(), index_t(0));
  double hits = 0;
  for (index_t i = 0; i < 500; i += 7) {
    std::vector<double> dist(500);
    metric.pairwise_batch(all, i, dist.data());
    dist[std::size_t(i)] = -1;
    std::vector<index_t> order(500);
    std::iota(order.begin(), order.end(), index_t(0));
    std::nth_element(order.begin(), order.begin() + 10, order.end(),
                     [&](index_t a, index_t b) {
                       return dist[std::size_t(a)] < dist[std::size_t(b)];
                     });
    std::set<index_t> truth(order.begin(), order.begin() + 10);
    for (index_t j : res.neighbors.of(i))
      if (truth.count(j)) hits += 1;
  }
  const double recall = hits / (double(500 / 7 + 1) * 10.0);
  EXPECT_GT(recall, 0.6) << "metric " << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Metrics, AnnMetrics,
                         ::testing::Values(DistanceKind::Kernel,
                                           DistanceKind::Angle,
                                           DistanceKind::Geometric));

TEST(Ann, RecallImprovesAcrossIterations) {
  zoo::KernelSPD<double> k(zoo::uniform_cloud<double>(6, 600, 4),
                           gaussian_params(1.0));
  Metric<double> metric(k, DistanceKind::Kernel);
  AnnOptions opts;
  opts.kappa = 16;
  opts.leaf_size = 40;
  opts.max_iterations = 10;
  opts.target_recall = 1.1;  // never stop early
  AnnResult res = all_nearest_neighbors(k, metric, opts);
  ASSERT_GE(res.recall_per_iteration.size(), 2u);
  EXPECT_GE(res.recall_per_iteration.back(),
            res.recall_per_iteration.front() - 1e-12);
}

TEST(Ann, StopsAtTargetRecall) {
  zoo::KernelSPD<double> k(zoo::uniform_cloud<double>(2, 400, 5),
                           gaussian_params(1.0));
  Metric<double> metric(k, DistanceKind::Kernel);
  AnnOptions opts;
  opts.kappa = 4;
  opts.leaf_size = 64;
  opts.target_recall = 0.5;  // easy target: should stop well before 10
  AnnResult res = all_nearest_neighbors(k, metric, opts);
  EXPECT_LT(res.iterations, 10);
  EXPECT_GE(res.recall_per_iteration.back(), 0.5);
}

TEST(Ann, KappaClampedToN) {
  zoo::KernelSPD<double> k(zoo::uniform_cloud<double>(2, 10, 6),
                           gaussian_params(1.0));
  Metric<double> metric(k, DistanceKind::Kernel);
  AnnOptions opts;
  opts.kappa = 64;  // > N
  opts.leaf_size = 4;
  AnnResult res = all_nearest_neighbors(k, metric, opts);
  EXPECT_EQ(res.neighbors.kappa, 10);
}

TEST(Ann, RejectsOrderingsWithoutDistance) {
  zoo::KernelSPD<double> k(zoo::uniform_cloud<double>(2, 50, 7),
                           gaussian_params(1.0));
  Metric<double> metric(k, DistanceKind::Lexicographic);
  EXPECT_THROW(all_nearest_neighbors(k, metric, AnnOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gofmm::tree
