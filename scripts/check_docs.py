#!/usr/bin/env python3
"""Strict doc-comment lint over the public core headers.

Mirrors the Doxygen warnings-as-errors contract (`cmake --build build
--target docs`) for environments without doxygen: every public/protected
declaration in the audited headers must be immediately preceded by a
`///` (or `//`) doc comment, or carry a trailing `///<`. The `docs`
CMake target falls back to this script when doxygen is not installed;
the docs CI job runs BOTH (this lint first, then real doxygen).

Usage: check_docs.py [repo_root]
Exits 1 listing every undocumented declaration.
"""

import re
import sys
from pathlib import Path

HEADERS = [
    "src/core/operator.hpp",
    "src/core/factorization.hpp",
    "src/core/hss_view.hpp",
    "src/core/solvers.hpp",
]

SCOPE_RE = re.compile(
    r"^(template\s*<.*>\s*)?(class|struct|enum(\s+class)?|namespace|union)\b")


def audit(lines):
    """Return indices of undocumented declaration starts.

    A tiny scope tracker: braces opened by class/struct/enum/namespace
    declarations are 'scope' (their members are audited); braces opened by
    anything else (inline function bodies, initialisers) are 'body' and
    everything inside is skipped. Comment text is stripped before brace
    counting so prose braces cannot desynchronise the stack.
    """
    failures = []
    stack = []          # 'scope' | 'body' per open brace
    pending_kind = None  # kind of the statement currently being read
    stmt_open = False   # inside a multi-line statement
    in_private = False
    private_depth = 0

    for i, raw in enumerate(lines):
        code = re.sub(r"//.*$", "", raw).rstrip()
        stripped = raw.strip()
        in_body = "body" in stack

        if not in_body:
            if stripped == "private:":
                in_private, private_depth = True, len(stack)
            elif stripped in ("public:", "protected:"):
                in_private = False

        is_comment = stripped.startswith(("//", "/*", "*")) or stripped == ""
        starts_stmt = (not stmt_open and not in_body and not is_comment
                       and not stripped.startswith("#")
                       and not re.match(r"^\}", stripped)
                       and stripped not in ("public:", "private:",
                                            "protected:"))
        # A `template <...>` head puts class/struct on a continuation
        # line, so upgrade the pending kind whenever any line of the
        # statement names a scope-opening construct.
        if (starts_stmt or stmt_open) and SCOPE_RE.match(stripped):
            pending_kind = "scope"
        if starts_stmt:
            if not SCOPE_RE.match(stripped):
                pending_kind = "body"
            needs_doc = (
                not in_private
                and not re.match(r"^(extern\s+template|template\s+class|"
                                 r"friend\s|namespace\s|using\s+gofmm)",
                                 stripped))
            if needs_doc and not _has_doc(lines, i):
                failures.append(i)

        # Track statement continuation on code content.
        if code.strip() and not stripped.startswith("#"):
            if starts_stmt or stmt_open:
                stmt_open = not re.search(r"[;{}]\s*$", code.strip())

        for ch in code:
            if ch == "{":
                stack.append(pending_kind or "body")
                pending_kind = "scope" if stack[-1] == "scope" else None
                stmt_open = False
            elif ch == "}":
                if stack:
                    stack.pop()
                if in_private and len(stack) < private_depth:
                    in_private = False
    return failures


def _has_doc(lines, i):
    """Doc attached: /// (or //) block directly above, or ///< trailing on
    any line of the declaration statement."""
    j = i - 1
    if j >= 0 and lines[j].strip() != "" and (
            lines[j].strip().startswith(("///", "//", "*"))
            or lines[j].strip().endswith("*/")):
        return True
    k = i
    while k < len(lines):
        if "///<" in lines[k]:
            return True
        if re.search(r"[;{]\s*(//.*)?$", re.sub(r"//.*$", "",
                                                lines[k]).strip()) or \
                re.search(r"[;{]\s*$", lines[k].strip()):
            break
        k += 1
    return False


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__).resolve().parent.parent
    failures = []
    checked = 0
    for rel in HEADERS:
        lines = (root / rel).read_text().splitlines()
        bad = audit(lines)
        checked += 1
        for i in bad:
            failures.append(f"{rel}:{i + 1}: {lines[i].strip()[:70]}")
    if failures:
        print(f"FAIL: {len(failures)} undocumented public declaration(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: every public declaration documented across "
          f"{len(HEADERS)} headers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
