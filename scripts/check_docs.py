#!/usr/bin/env python3
"""Strict documentation lint: doc comments, snippet symbols, and links.

Three checks, all mirrored by the `docs` CI job:

1. Doc-comment audit over the public headers (mirrors the Doxygen
   warnings-as-errors contract of `cmake --build build --target docs` for
   environments without doxygen): every public/protected declaration must
   be immediately preceded by a `///` (or `//`) doc comment, or carry a
   trailing `///<`.
2. Snippet-symbol audit over every fenced code block in docs/*.md: each
   block that names identifiers must name at least one REAL symbol
   (grepped against src/), so prose cannot drift away from the code it
   claims to document. Blocks with no identifier-shaped tokens (ASCII
   diagrams, algebra) are skipped.
3. Relative-link audit over README.md and docs/*.md: every relative
   markdown link must resolve to an existing file.

Usage: check_docs.py [repo_root]
       check_docs.py --self-test   # negative tests: seeded violations
                                   # of all three checks must be caught
Exits 1 listing every violation.
"""

import re
import sys
from pathlib import Path

HEADERS = [
    "src/core/operator.hpp",
    "src/core/factorization.hpp",
    "src/core/hss_view.hpp",
    "src/core/solvers.hpp",
    "src/la/ldlt.hpp",
    "src/la/qr.hpp",
    "src/la/eigen.hpp",
    "src/util/random.hpp",
    "src/spectral/eigs.hpp",
    "src/spectral/trace.hpp",
    "src/spectral/selected_inverse.hpp",
    "src/service/service_stats.hpp",
    "src/service/operator_cache.hpp",
    "src/service/solve_service.hpp",
]

SCOPE_RE = re.compile(
    r"^(template\s*<.*>\s*)?(class|struct|enum(\s+class)?|namespace|union)\b")


def audit(lines):
    """Return indices of undocumented declaration starts.

    A tiny scope tracker: braces opened by class/struct/enum/namespace
    declarations are 'scope' (their members are audited); braces opened by
    anything else (inline function bodies, initialisers) are 'body' and
    everything inside is skipped. Comment text is stripped before brace
    counting so prose braces cannot desynchronise the stack.
    """
    failures = []
    stack = []          # 'scope' | 'body' per open brace
    pending_kind = None  # kind of the statement currently being read
    stmt_open = False   # inside a multi-line statement
    in_private = False
    private_depth = 0

    for i, raw in enumerate(lines):
        code = re.sub(r"//.*$", "", raw).rstrip()
        stripped = raw.strip()
        in_body = "body" in stack

        if not in_body:
            if stripped == "private:":
                in_private, private_depth = True, len(stack)
            elif stripped in ("public:", "protected:"):
                in_private = False

        is_comment = stripped.startswith(("//", "/*", "*")) or stripped == ""
        starts_stmt = (not stmt_open and not in_body and not is_comment
                       and not stripped.startswith("#")
                       and not re.match(r"^\}", stripped)
                       and stripped not in ("public:", "private:",
                                            "protected:"))
        # A `template <...>` head puts class/struct on a continuation
        # line, so upgrade the pending kind whenever any line of the
        # statement names a scope-opening construct.
        if (starts_stmt or stmt_open) and SCOPE_RE.match(stripped):
            pending_kind = "scope"
        if starts_stmt:
            if not SCOPE_RE.match(stripped):
                pending_kind = "body"
            needs_doc = (
                not in_private
                and not re.match(r"^(extern\s+template|template\s+class|"
                                 r"friend\s|namespace\s|using\s+gofmm)",
                                 stripped))
            if needs_doc and not _has_doc(lines, i):
                failures.append(i)

        # Track statement continuation on code content.
        if code.strip() and not stripped.startswith("#"):
            if starts_stmt or stmt_open:
                stmt_open = not re.search(r"[;{}]\s*$", code.strip())

        for ch in code:
            if ch == "{":
                stack.append(pending_kind or "body")
                pending_kind = "scope" if stack[-1] == "scope" else None
                stmt_open = False
            elif ch == "}":
                if stack:
                    stack.pop()
                if in_private and len(stack) < private_depth:
                    in_private = False
    return failures


def _has_doc(lines, i):
    """Doc attached: /// (or //) block directly above, or ///< trailing on
    any line of the declaration statement."""
    j = i - 1
    if j >= 0 and lines[j].strip() != "" and (
            lines[j].strip().startswith(("///", "//", "*"))
            or lines[j].strip().endswith("*/")):
        return True
    k = i
    while k < len(lines):
        if "///<" in lines[k]:
            return True
        if re.search(r"[;{]\s*(//.*)?$", re.sub(r"//.*$", "",
                                                lines[k]).strip()) or \
                re.search(r"[;{]\s*$", lines[k].strip()):
            break
        k += 1
    return False


# Identifier shapes that count as "naming a symbol": CamelCase types and
# snake_case calls/members — the tokens a reader would grep for.
SNIPPET_TOKEN_RE = re.compile(
    r"\b([A-Z][a-z0-9]+(?:[A-Z][A-Za-z0-9]*)+|[a-z][a-z0-9]*(?:_[a-z0-9]+)+)\b")
FENCE_RE = re.compile(r"^\s*```")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def snippet_blocks(lines):
    """Yields (start_line_1based, [block lines]) per fenced code block."""
    block, start = None, 0
    for i, line in enumerate(lines):
        if FENCE_RE.match(line):
            if block is None:
                block, start = [], i + 1
            else:
                yield start, block
                block = None
        elif block is not None:
            block.append(line)
    # An unterminated fence is itself a doc bug; surface its content too.
    if block:
        yield start, block


def audit_snippets(doc_rel, lines, src_text):
    """Returns violations: fenced blocks whose identifiers name nothing
    that exists in src/. Blocks with no identifier-shaped token (ASCII
    diagrams, pure algebra) are skipped."""
    failures = []
    for start, block in snippet_blocks(lines):
        tokens = set()
        for line in block:
            tokens.update(SNIPPET_TOKEN_RE.findall(line))
        if not tokens:
            continue
        if not any(t in src_text for t in tokens):
            sample = ", ".join(sorted(tokens)[:4])
            failures.append(
                f"{doc_rel}:{start}: code snippet names no symbol found in "
                f"src/ (saw: {sample})")
    return failures


def audit_links(doc_rel, lines, root):
    """Returns violations: relative markdown links to missing files."""
    failures = []
    base = (root / doc_rel).parent
    for i, line in enumerate(lines):
        for target in LINK_RE.findall(line):
            if "://" in target or target.startswith(("#", "mailto:")):
                continue
            path = target.split("#")[0]
            if not path:
                continue
            resolved = (base / path).resolve()
            if root.resolve() not in resolved.parents and \
                    resolved != root.resolve():
                continue  # escapes the repo: GitHub web-relative (badges)
            if not (base / path).exists():
                failures.append(
                    f"{doc_rel}:{i + 1}: broken relative link '{target}'")
    return failures


def run_checks(root):
    failures = []
    for rel in HEADERS:
        lines = (root / rel).read_text().splitlines()
        for i in audit(lines):
            failures.append(f"{rel}:{i + 1}: undocumented declaration: "
                            f"{lines[i].strip()[:60]}")
    src_text = "\n".join(
        p.read_text() for pat in ("*.hpp", "*.cpp")
        for p in sorted((root / "src").rglob(pat)))
    docs = sorted((root / "docs").glob("*.md")) if (root / "docs").exists() \
        else []
    linked = [p for p in [root / "README.md"] + docs if p.exists()]
    for doc in docs:
        rel = str(doc.relative_to(root))
        failures += audit_snippets(rel, doc.read_text().splitlines(),
                                   src_text)
    for doc in linked:
        rel = str(doc.relative_to(root))
        failures += audit_links(rel, doc.read_text().splitlines(), root)
    return failures, len(docs), len(linked)


def self_test(root):
    """Negative tests: seeded violations of every check must be caught."""
    import shutil
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        fake = Path(tmp)
        for rel in HEADERS:
            (fake / rel).parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(root / rel, fake / rel)
        (fake / "docs").mkdir()
        (fake / "README.md").write_text("[docs](docs/BAD_TARGET.md)\n")
        (fake / "docs" / "bad.md").write_text(
            "A snippet naming a phantom symbol:\n"
            "```cpp\nop.no_such_symbol_xyz();\n```\n"
            "and a [broken link](../missing_page.md).\n")
        # Seed an undocumented declaration into an audited header.
        hdr = fake / HEADERS[0]
        text = hdr.read_text()
        hdr.write_text(text.replace(
            "}  // namespace gofmm",
            "struct UndocumentedSeed { int field; };\n}  // namespace gofmm"))
        failures, _, _ = run_checks(fake)
        expected = ["undocumented declaration", "names no symbol",
                    "broken relative link"]
        missing = [e for e in expected
                   if not any(e in f for f in failures)]
        if missing:
            print(f"SELF-TEST FAIL: seeded violations not caught: {missing}")
            for f in failures:
                print(f"  caught: {f}")
            return 1
    print(f"SELF-TEST OK: all {len(expected)} seeded violation kinds caught")
    return 0


def main():
    args = [a for a in sys.argv[1:] if a != "--self-test"]
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    if "--self-test" in sys.argv[1:]:
        return self_test(root)
    failures, num_docs, num_linked = run_checks(root)
    if failures:
        print(f"FAIL: {len(failures)} documentation violation(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: every public declaration documented across {len(HEADERS)} "
          f"headers; every snippet in {num_docs} docs pages names a real "
          f"symbol; every relative link across {num_linked} pages resolves")
    return 0


if __name__ == "__main__":
    sys.exit(main())
