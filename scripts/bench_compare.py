#!/usr/bin/env python3
"""Compare a bench --json run against a checked-in baseline.

Two named suites, selected with --suite (each bench JSON gates against its
own baseline file with its own thresholds):

--suite solve (default; bench_solve --json) fails when

  * any (matrix, method) wall time regresses more than --tolerance
    (default 25%) beyond the baseline, past an absolute floor that keeps
    micro-timings from flapping, or
  * the batched multi-RHS speedup drops below --min-batch-speedup
    (a machine-independent RATIO: one blocked 16-wide ULV sweep must beat
    16 sequential single-RHS sweeps), or
  * the lambda-sweep retune speedup drops below --min-retune-speedup
    (another machine-independent ratio: 8 refactorize(lambda) retunes must
    beat 8 full factorize(lambda) rebuilds). Under the orthogonal-ULV
    engine lambda*I commutes through the stored per-node rotations, so a
    retune re-factors only small rotated diagonal blocks — no view walk,
    oracle reads, basis work, or Gram chain — and measures 3.9-4.7x on the
    kernel zoo (vs ~1.1-1.2x for the old Woodbury snapshot retune). The
    gate is 3.0: the margin above it absorbs runner noise on the
    sub-second sweep timings, while a drop below 3.0 means the retune is
    re-doing lambda-independent work again, or
  * the narrow-rhs (r=1) sweep either performs ANY larft rebuilds
    (larft_calls must be 0 — the solve hot path applies the geqrt-form
    QrFactors cached at factorization time) or its cached-vs-rebuilt
    speedup drops below --min-narrow-speedup, or its cached wall time
    regresses past the baseline by --tolerance, or
  * the mixed-precision section misses its contract: the float-stored
    factorization must hold ≥ --min-memory-ratio (default 1.7x) fewer
    resident factor bytes than the double twin (pure sizeof ratio, so
    machine-independent; 2.0x minus per-node bookkeeping), its refine-free
    sweeps must run ≥ --min-mixed-sweep-speedup (default 1.3x) faster
    (the sweep is bandwidth-bound, so halving the factor bytes must show
    up in wall time), and the refined solve must land at or below
    --max-refined-residual (default 1e-8) — the memory saving is void if
    refinement cannot recover the double target. These are current-run
    gates: the "mixed" array needs no baseline entry, so older baseline
    files keep working.

--suite service (bench_service --json) fails when

  * the batched/unbatched throughput ratio drops below
    --min-batch-ratio (default 3.0). This is the machine-independent gate
    on the solve service's request coalescing: open-loop traffic from 16
    concurrent clients over a handful of cached operators must absorb into
    blocked multi-rhs sweeps. Measured ~10x on the kernel zoo (wide sweeps
    stream the factors once per batch, and per-request serving also pays a
    λ-retune per interleaved request); below 3x the dispatcher is
    scattering concurrent arrivals into narrow batches again.
  * the batched mode's average batch width drops below
    --min-avg-batch (default 4.0) — the ratio could stay high for the
    wrong reason (e.g. the unbatched mode regressing), so the width is
    gated directly.
  * any mode's max per-column residual exceeds --max-residual
    (default 1e-8): throughput means nothing if the coalesced sweep stops
    solving the system.

--suite spectral (bench_spectral --json) fails when

  * any matrix's end-to-end eigensolver speedup (compress + factorize +
    two Lanczos runs for the 10 extreme pairs, against materializing n²
    oracle entries + one dense symmetric eigensolve) drops below
    --min-eigs-speedup (default 5.0). Machine-independent ratio and the
    headline number of the spectral subsystem: the compressed path is
    O(k · n log n) against the dense O(n³), measuring ~19x at n=1024 and
    far more at the nightly n=4096; below 5x the shift-invert path is
    re-doing dense-scale work, or
  * any eigensolver run failed to converge, or its true relative residual
    max ‖K̃v − λv‖/‖K̃‖ exceeds --max-eig-residual (default 1e-8) — the
    solver's accuracy contract, or the extreme eigenvalues drift from the
    dense oracle spectrum by more than --max-dense-drift (default 1e-2,
    dominated by compression error, not solver error), or
  * any trace estimate's 99% confidence interval fails to COVER the exact
    oracle trace (the estimator's whole statistical contract), or the
    Hutch++ estimate misses the exact trace by more than --max-hpp-error
    (default 0.02) under the same 128-probe budget, or the SLQ
    log-determinant misses the factorization's exact one by more than
    --max-slq-error (default 0.05), or
  * eigs_s wall time regresses more than --tolerance past the baseline
    (the dense reference is NOT wall-time gated — it exists to form the
    ratio).

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--suite solve|service|spectral]
      [--tolerance 0.25] [--floor-seconds 0.05] [--min-batch-speedup 1.5]
      [--min-retune-speedup 3.0] [--min-narrow-speedup 1.5]
      [--min-memory-ratio 1.7] [--min-mixed-sweep-speedup 1.3]
      [--max-refined-residual 1e-8]
      [--min-batch-ratio 3.0] [--min-avg-batch 4.0] [--max-residual 1e-8]
      [--min-eigs-speedup 5.0] [--max-eig-residual 1e-8]
      [--max-dense-drift 1e-2] [--max-hpp-error 0.02] [--max-slq-error 0.05]

The baselines live in bench/baselines/ and are regenerated (on an idle
machine) with the exact configs the CI jobs run:

  ./bench_solve 1024 4 --json bench/baselines/bench_solve.json K04 G02
  ./bench_service --json bench/baselines/bench_service.json
  ./bench_spectral 4096 10 --json bench/baselines/bench_spectral.json
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_solve(base, cur, args):
    """Gate bench_solve output. Returns (failures, checked)."""
    failures = []
    checked = 0

    if base.get("n") != cur.get("n") or base.get("rhs") != cur.get("rhs"):
        failures.append(
            f"config mismatch: baseline n={base.get('n')} "
            f"rhs={base.get('rhs')} vs current n={cur.get('n')} "
            f"rhs={cur.get('rhs')} — regenerate the baseline")
        return failures, checked

    base_entries = {(e["matrix"], e["method"]): e for e in base["entries"]}
    for e in cur["entries"]:
        key = (e["matrix"], e["method"])
        b = base_entries.get(key)
        if b is None:
            print(f"note: {key} has no baseline entry (new method?) — skipped")
            continue
        for field in ("setup_s", "solve_s"):
            allowed = b[field] * (1.0 + args.tolerance) + args.floor_seconds
            checked += 1
            if e[field] > allowed:
                failures.append(
                    f"{e['matrix']}/{e['method']} {field}: "
                    f"{e[field]:.3f}s > {allowed:.3f}s "
                    f"(baseline {b[field]:.3f}s + {args.tolerance:.0%})")

    for e in cur.get("batched", []):
        checked += 1
        if e["speedup"] < args.min_batch_speedup:
            failures.append(
                f"{e['matrix']} batched speedup {e['speedup']:.2f}x < "
                f"{args.min_batch_speedup:.2f}x "
                f"(batch {e['batch_s']:.3f}s vs seq {e['seq_s']:.3f}s)")

    for e in cur.get("lambda_sweep", []):
        checked += 1
        if e["speedup"] < args.min_retune_speedup:
            failures.append(
                f"{e['matrix']} lambda-sweep retune speedup "
                f"{e['speedup']:.2f}x < {args.min_retune_speedup:.2f}x "
                f"(refactorize {e['refactorize_s']:.3f}s vs full "
                f"{e['full_s']:.3f}s)")

    base_narrow = {e["matrix"]: e for e in base.get("narrow_rhs", [])}
    for e in cur.get("narrow_rhs", []):
        checked += 1
        if e["larft_calls"] != 0:
            failures.append(
                f"{e['matrix']} narrow-rhs sweep performed "
                f"{e['larft_calls']} larft rebuilds — the cached-rotation "
                f"hot path must be larft-free")
        checked += 1
        if e["speedup"] < args.min_narrow_speedup:
            failures.append(
                f"{e['matrix']} narrow-rhs cached-vs-rebuilt speedup "
                f"{e['speedup']:.2f}x < {args.min_narrow_speedup:.2f}x "
                f"(cached {e['cached_s']:.3f}s vs rebuilt "
                f"{e['rebuilt_s']:.3f}s)")
        b = base_narrow.get(e["matrix"])
        if b is not None:
            allowed = b["cached_s"] * (1.0 + args.tolerance) \
                + args.floor_seconds
            checked += 1
            if e["cached_s"] > allowed:
                failures.append(
                    f"{e['matrix']} narrow-rhs cached_s: "
                    f"{e['cached_s']:.3f}s > {allowed:.3f}s "
                    f"(baseline {b['cached_s']:.3f}s + {args.tolerance:.0%})")

    for e in cur.get("mixed", []):
        checked += 1
        if e["memory_ratio"] < args.min_memory_ratio:
            failures.append(
                f"{e['matrix']} mixed-precision memory ratio "
                f"{e['memory_ratio']:.2f}x < {args.min_memory_ratio:.2f}x "
                f"({e['f64_bytes']} f64 bytes vs {e['f32_bytes']} f32 bytes)")
        checked += 1
        if e["sweep_speedup"] < args.min_mixed_sweep_speedup:
            failures.append(
                f"{e['matrix']} mixed-precision sweep speedup "
                f"{e['sweep_speedup']:.2f}x < "
                f"{args.min_mixed_sweep_speedup:.2f}x "
                f"(f64 {e['f64_sweep_s']:.3f}s vs f32 "
                f"{e['f32_sweep_s']:.3f}s)")
        checked += 1
        if e["refined_resid"] > args.max_refined_residual:
            failures.append(
                f"{e['matrix']} refined residual {e['refined_resid']:.3e} > "
                f"{args.max_refined_residual:.3e} after "
                f"{e['refine_iters']} refinement iteration(s)")

    return failures, checked


def compare_service(base, cur, args):
    """Gate bench_service output. Returns (failures, checked)."""
    failures = []
    checked = 0

    for field in ("n", "clients", "requests_per_client", "operators"):
        if base.get(field) != cur.get(field):
            failures.append(
                f"config mismatch: baseline {field}={base.get(field)} vs "
                f"current {field}={cur.get(field)} — regenerate the baseline")
            return failures, checked

    checked += 1
    ratio = cur.get("ratio", 0.0)
    if ratio < args.min_batch_ratio:
        failures.append(
            f"batched/unbatched throughput ratio {ratio:.2f}x < "
            f"{args.min_batch_ratio:.2f}x")

    modes = {m["mode"]: m for m in cur.get("modes", [])}
    batched = modes.get("batched")
    if batched is None:
        failures.append("no 'batched' mode in bench output")
        return failures, checked

    checked += 1
    if batched["avg_batch_cols"] < args.min_avg_batch:
        failures.append(
            f"batched avg batch width {batched['avg_batch_cols']:.2f} < "
            f"{args.min_avg_batch:.2f} — coalescing is not engaging")

    for m in cur.get("modes", []):
        checked += 1
        if m["max_resid"] > args.max_residual:
            failures.append(
                f"{m['mode']} max residual {m['max_resid']:.3e} > "
                f"{args.max_residual:.3e}")

    return failures, checked


def compare_spectral(base, cur, args):
    """Gate bench_spectral output. Returns (failures, checked)."""
    failures = []
    checked = 0

    for field in ("n", "k"):
        if base.get(field) != cur.get(field):
            failures.append(
                f"config mismatch: baseline {field}={base.get(field)} vs "
                f"current {field}={cur.get(field)} — regenerate the baseline")
            return failures, checked

    base_eigs = {e["matrix"]: e for e in base.get("eigs", [])}
    for e in cur.get("eigs", []):
        checked += 1
        if not e["converged"]:
            failures.append(f"{e['matrix']} eigensolver did not converge")
        checked += 1
        if e["speedup"] < args.min_eigs_speedup:
            failures.append(
                f"{e['matrix']} eigs-vs-dense speedup {e['speedup']:.2f}x < "
                f"{args.min_eigs_speedup:.2f}x "
                f"(eigs {e['eigs_s']:.3f}s vs dense {e['dense_s']:.3f}s)")
        checked += 1
        if e["max_rel_residual"] > args.max_eig_residual:
            failures.append(
                f"{e['matrix']} max relative eigen-residual "
                f"{e['max_rel_residual']:.3e} > {args.max_eig_residual:.3e}")
        checked += 1
        if e["dense_drift"] > args.max_dense_drift:
            failures.append(
                f"{e['matrix']} extreme-eigenvalue drift vs dense oracle "
                f"{e['dense_drift']:.3e} > {args.max_dense_drift:.3e}")
        b = base_eigs.get(e["matrix"])
        if b is not None:
            allowed = b["eigs_s"] * (1.0 + args.tolerance) + args.floor_seconds
            checked += 1
            if e["eigs_s"] > allowed:
                failures.append(
                    f"{e['matrix']} eigs_s: {e['eigs_s']:.3f}s > "
                    f"{allowed:.3f}s "
                    f"(baseline {b['eigs_s']:.3f}s + {args.tolerance:.0%})")
        else:
            print(f"note: {e['matrix']} has no baseline eigs entry — "
                  f"wall time not gated")

    for e in cur.get("trace", []):
        checked += 1
        if not e["covered"]:
            failures.append(
                f"{e['matrix']} Hutchinson CI [{e['ci_low']:.6e}, "
                f"{e['ci_high']:.6e}] does not cover exact trace "
                f"{e['exact']:.6e}")
        checked += 1
        if e["hpp_rel_err"] > args.max_hpp_error:
            failures.append(
                f"{e['matrix']} Hutch++ relative error "
                f"{e['hpp_rel_err']:.3e} > {args.max_hpp_error:.3e}")
        checked += 1
        if e["slq_rel_err"] > args.max_slq_error:
            failures.append(
                f"{e['matrix']} SLQ logdet relative error "
                f"{e['slq_rel_err']:.3e} > {args.max_slq_error:.3e}")

    return failures, checked


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--suite", choices=("solve", "service", "spectral"),
                    default="solve",
                    help="which bench's gates to apply (default: solve)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional wall-time regression")
    ap.add_argument("--floor-seconds", type=float, default=0.05,
                    help="absolute slack added to every comparison")
    ap.add_argument("--min-batch-speedup", type=float, default=1.5,
                    help="[solve] required batched-vs-sequential solve "
                         "speedup")
    ap.add_argument("--min-retune-speedup", type=float, default=3.0,
                    help="[solve] required refactorize-vs-full-factorize "
                         "lambda-sweep speedup (the orthogonal-ULV retune "
                         "re-factors only rotated diagonal blocks, so "
                         "dropping below 3x means lambda-independent work "
                         "is being redone)")
    ap.add_argument("--min-narrow-speedup", type=float, default=1.5,
                    help="[solve] required narrow-rhs (r=1) sweep speedup of "
                         "cached compact-WY rotations over forced "
                         "larft-rebuild-per-application (measures 3.5-4.7x "
                         "on the kernel zoo; below 1.5x the geqrt cache is "
                         "not being hit)")
    ap.add_argument("--min-memory-ratio", type=float, default=1.7,
                    help="[solve] required f64/f32 resident-factor-byte "
                         "ratio of the mixed-precision section (pure "
                         "sizeof accounting: ~2.0x minus bookkeeping)")
    ap.add_argument("--min-mixed-sweep-speedup", type=float, default=1.3,
                    help="[solve] required refine-free sweep speedup of "
                         "float-stored over double-stored factors (the "
                         "sweep is bandwidth-bound, so the halved bytes "
                         "must show up in wall time)")
    ap.add_argument("--max-refined-residual", type=float, default=1e-8,
                    help="[solve] max relative residual the refined "
                         "mixed-precision solve may leave")
    ap.add_argument("--min-batch-ratio", type=float, default=3.0,
                    help="[service] required batched/unbatched request "
                         "throughput ratio under concurrent traffic")
    ap.add_argument("--min-avg-batch", type=float, default=4.0,
                    help="[service] required average batch width in the "
                         "batched mode")
    ap.add_argument("--max-residual", type=float, default=1e-8,
                    help="[service] max per-column residual allowed in "
                         "any mode")
    ap.add_argument("--min-eigs-speedup", type=float, default=5.0,
                    help="[spectral] required end-to-end speedup of the "
                         "compressed eigensolver (compress + factorize + "
                         "Lanczos) over the dense materialize + syev path")
    ap.add_argument("--max-eig-residual", type=float, default=1e-8,
                    help="[spectral] max true relative residual "
                         "‖Kv − λv‖/‖K‖ over all returned eigenpairs")
    ap.add_argument("--max-dense-drift", type=float, default=1e-2,
                    help="[spectral] max relative drift of the extreme "
                         "eigenvalues from the dense oracle spectrum "
                         "(dominated by compression error)")
    ap.add_argument("--max-hpp-error", type=float, default=0.02,
                    help="[spectral] max Hutch++ relative trace error "
                         "under the 128-probe budget")
    ap.add_argument("--max-slq-error", type=float, default=0.05,
                    help="[spectral] max SLQ logdet relative error vs the "
                         "factorization's exact log-determinant")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    compare = {"solve": compare_solve, "service": compare_service,
               "spectral": compare_spectral}[args.suite]
    failures, checked = compare(base, cur, args)

    if checked == 0 and not failures:
        print("FAIL: nothing compared — empty or mismatched bench output")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} bench regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: suite '{args.suite}', {checked} comparisons passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
