#!/usr/bin/env python3
"""Compare a bench_solve --json run against a checked-in baseline.

Fails (exit 1) when

  * any (matrix, method) wall time regresses more than --tolerance
    (default 25%) beyond the baseline, past an absolute floor that keeps
    micro-timings from flapping, or
  * the batched multi-RHS speedup drops below --min-batch-speedup
    (a machine-independent RATIO: one blocked 16-wide ULV sweep must beat
    16 sequential single-RHS sweeps), or
  * the lambda-sweep retune speedup drops below --min-retune-speedup
    (another machine-independent ratio: 8 refactorize(lambda) retunes must
    beat 8 full factorize(lambda) rebuilds). Under the orthogonal-ULV
    engine lambda*I commutes through the stored per-node rotations, so a
    retune re-factors only small rotated diagonal blocks — no view walk,
    oracle reads, basis work, or Gram chain — and measures 3.9-4.7x on the
    kernel zoo (vs ~1.1-1.2x for the old Woodbury snapshot retune). The
    gate is 3.0: the margin above it absorbs runner noise on the
    sub-second sweep timings, while a drop below 3.0 means the retune is
    re-doing lambda-independent work again.

Usage:
  bench_compare.py BASELINE.json CURRENT.json \
      [--tolerance 0.25] [--floor-seconds 0.05] [--min-batch-speedup 1.5] \
      [--min-retune-speedup 3.0]

The baseline lives at bench/baselines/bench_solve.json and is regenerated
(on an idle machine) with the exact config the CI job runs:

  ./bench_solve 1024 4 --json bench/baselines/bench_solve.json K04 G02
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional wall-time regression")
    ap.add_argument("--floor-seconds", type=float, default=0.05,
                    help="absolute slack added to every comparison")
    ap.add_argument("--min-batch-speedup", type=float, default=1.5,
                    help="required batched-vs-sequential solve speedup")
    ap.add_argument("--min-retune-speedup", type=float, default=3.0,
                    help="required refactorize-vs-full-factorize "
                         "lambda-sweep speedup (the orthogonal-ULV retune "
                         "re-factors only rotated diagonal blocks, so "
                         "dropping below 3x means lambda-independent work "
                         "is being redone)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    if base.get("n") != cur.get("n") or base.get("rhs") != cur.get("rhs"):
        print(f"FAIL: config mismatch: baseline n={base.get('n')} "
              f"rhs={base.get('rhs')} vs current n={cur.get('n')} "
              f"rhs={cur.get('rhs')} — regenerate the baseline")
        return 1

    base_entries = {(e["matrix"], e["method"]): e for e in base["entries"]}
    failures = []
    checked = 0

    for e in cur["entries"]:
        key = (e["matrix"], e["method"])
        b = base_entries.get(key)
        if b is None:
            print(f"note: {key} has no baseline entry (new method?) — skipped")
            continue
        for field in ("setup_s", "solve_s"):
            allowed = b[field] * (1.0 + args.tolerance) + args.floor_seconds
            checked += 1
            if e[field] > allowed:
                failures.append(
                    f"{e['matrix']}/{e['method']} {field}: "
                    f"{e[field]:.3f}s > {allowed:.3f}s "
                    f"(baseline {b[field]:.3f}s + {args.tolerance:.0%})")

    for e in cur.get("batched", []):
        checked += 1
        if e["speedup"] < args.min_batch_speedup:
            failures.append(
                f"{e['matrix']} batched speedup {e['speedup']:.2f}x < "
                f"{args.min_batch_speedup:.2f}x "
                f"(batch {e['batch_s']:.3f}s vs seq {e['seq_s']:.3f}s)")

    for e in cur.get("lambda_sweep", []):
        checked += 1
        if e["speedup"] < args.min_retune_speedup:
            failures.append(
                f"{e['matrix']} lambda-sweep retune speedup "
                f"{e['speedup']:.2f}x < {args.min_retune_speedup:.2f}x "
                f"(refactorize {e['refactorize_s']:.3f}s vs full "
                f"{e['full_s']:.3f}s)")

    if checked == 0:
        print("FAIL: nothing compared — empty or mismatched bench output")
        return 1
    if failures:
        print(f"FAIL: {len(failures)} bench regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: {checked} comparisons within "
          f"{args.tolerance:.0%}+{args.floor_seconds}s, batched speedup >= "
          f"{args.min_batch_speedup}x, retune speedup >= "
          f"{args.min_retune_speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
