// GOFMM: geometry-oblivious FMM compression of SPD matrices.
//
// This is the public entry point of the library. Typical use:
//
//   auto k = std::make_shared<zoo::KernelSPD<float>>(...);
//   gofmm::Config cfg = gofmm::Config::defaults()
//                           .with_leaf_size(128)
//                           .with_budget(0.03);      // m, s, τ, κ, ...
//   auto kc = gofmm::CompressedMatrix<float>::compress(k, cfg);
//   gofmm::EvalWorkspace<float> ws;                  // reusable scratch
//   la::Matrix<float> u = kc.apply(w, ws);           // u ≈ K w, N-by-r
//   double eps2 = kc.estimate_error(w, u);           // sampled ‖·‖_F error
//
// Compression implements Algorithm 2.2 of the paper: iterative randomized
// neighbor search, metric-tree partitioning, near/far interaction lists
// with budget-capped direct evaluations, nested adaptive-rank interpolative
// decompositions, and optional caching of the direct/skeleton blocks.
// Evaluation implements Algorithm 2.7 (N2S, S2S, S2N, L2L) under any of the
// three traversal engines. apply()/evaluate() are const and thread-safe:
// any number of threads can run matvecs on one compressed matrix at once,
// each against its own EvalWorkspace (see core/operator.hpp).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/config.hpp"
#include "core/error.hpp"
#include "core/operator.hpp"
#include "core/spd_matrix.hpp"
#include "la/matrix.hpp"
#include "runtime/scheduler.hpp"
#include "tree/ann.hpp"
#include "tree/cluster_tree.hpp"

namespace gofmm {

/// Phase timings and work counters for one compressed matrix — everything
/// the paper's tables report (Comp/Eval seconds, GFs, average rank, ...).
struct CompressionStats {
  double ann_seconds = 0;       ///< neighbor search (steps 1-3 of Alg. 2.2)
  double tree_seconds = 0;      ///< metric-tree build (step 4)
  double lists_seconds = 0;     ///< near/far lists (steps 5-7)
  double skel_seconds = 0;      ///< skeletonization + coefficients (8-9)
  double cache_seconds = 0;     ///< Kba / SKba caching (10-11)
  double total_seconds = 0;     ///< whole Compress() wall-clock

  std::uint64_t skel_flops = 0;   ///< QR + TRSM work
  std::uint64_t cached_bytes = 0; ///< memory held by cached blocks

  double avg_rank = 0;          ///< mean skeleton rank over all nodes
  index_t max_rank = 0;         ///< largest skeleton rank
  index_t num_near_pairs = 0;   ///< |{(β,α) : α ∈ Near(β)}| (leaf pairs)
  index_t num_far_pairs = 0;    ///< |{(β,α) : α ∈ Far(β)}|
  double near_fraction = 0;     ///< fraction of K evaluated exactly
  double ann_recall = 0;        ///< estimated neighbor recall at stop
  index_t ann_iterations = 0;
};

template <typename T>
class UlvFactorization;  // core/factorization.hpp
template <typename T>
class GofmmHssView;  // core/factorization.cpp (HssView over a compression)

/// A hierarchically compressed SPD matrix: K̃ = D + S + UV (Eq. 1).
template <typename T>
class CompressedMatrix final : public CompressedOperator<T>,
                               public Factorizable<T> {
 public:
  // Out-of-line: the ULV factors are an incomplete type here.
  ~CompressedMatrix() override;
  /// Compresses `k` under `config`, sharing ownership of the oracle: the
  /// compressed matrix keeps the matrix alive for uncached evaluation and
  /// estimate_error, so the handle may go out of scope freely.
  static CompressedMatrix compress(std::shared_ptr<const SPDMatrix<T>> k,
                                   const Config& config);

  /// Heap-allocating variant for polymorphic use behind
  /// CompressedOperator<T> (the class itself is neither movable nor
  /// copyable — it owns mutexes and atomics).
  static std::unique_ptr<CompressedMatrix> compress_unique(
      std::shared_ptr<const SPDMatrix<T>> k, const Config& config);

  /// u = K̃ * w for an N-by-r block of right-hand sides (paper Alg. 2.7).
  /// Const and thread-safe: scratch comes from an internal workspace pool.
  /// Equivalent to apply(w) with pooled instead of throwaway workspaces;
  /// apply(w, ws) with a caller-owned workspace skips the pool lock.
  la::Matrix<T> evaluate(const la::Matrix<T>& w) const;

  /// Relative error ε₂ = ‖K̃w − Kw‖_F / ‖Kw‖_F estimated on a row sample,
  /// clamped at N (paper Eq. 11; default 100 rows as in §3).
  double estimate_error(const la::Matrix<T>& w, const la::Matrix<T>& u,
                        index_t sample_rows = 100,
                        std::uint64_t seed = 1234) const;

  // --- CompressedOperator interface ---
  [[nodiscard]] index_t size() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "gofmm"; }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] OperatorStats operator_stats() const override;
  [[nodiscard]] Factorizable<T>* factorizable() override { return this; }
  [[nodiscard]] const Factorizable<T>* factorizable() const override {
    return this;
  }

  // --- Factorizable capability (core/factorization.cpp) ---
  //
  // factorize() builds a symmetric ULV-style factorization of the NESTED
  // (HSS) part of the compression — leaf diagonal blocks plus the
  // skeleton-basis sibling couplings — through the shared ULV engine
  // (UlvFactorization over a GofmmHssView): bottom-up block elimination
  // with Woodbury capacitance updates at every tree level. For a pure HSS
  // compression (budget 0) this factors K̃ + λI exactly; with a direct
  // budget > 0 the dropped near/far corrections make solve() a
  // preconditioner-quality approximate inverse (see preconditioned_solve
  // in core/solvers.hpp). Mutating setup step; solve()/logdet() are const
  // and thread-safe afterwards. solve() takes an N-by-r block and runs one
  // level-parallel sweep with r-wide GEMMs (see core/factorization.hpp).
  // Indefinite shifts eliminate through the pivoted-LDLᵀ leaf path per
  // `options`; refactorize(λ) re-eliminates with a new shift reusing the
  // engine's payload snapshot — no oracle traffic, bit-identical to a
  // fresh factorize(λ).
  void factorize(T regularization = T(0),
                 FactorizeOptions options = {}) override;
  void refactorize(T regularization) override;
  [[nodiscard]] bool factorized() const override { return fact_ != nullptr; }
  [[nodiscard]] la::Matrix<T> solve(
      const la::Matrix<T>& b,
      const SolveOptions& options = SolveOptions::defaults()) const override;
  [[nodiscard]] double logdet() const override;
  [[nodiscard]] FactorizationStats factorization_stats() const override;

  /// The ULV factors built by factorize() — exposed for sweep-mode
  /// verification and advanced use. Throws StateError before factorize().
  [[nodiscard]] const UlvFactorization<T>& factorization() const;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const CompressionStats& stats() const { return stats_; }

  /// Stats of the most recent evaluate() on this object (guarded copy;
  /// concurrent evaluations overwrite it last-writer-wins). apply() does
  /// not touch it — its stats land in the caller's workspace instead.
  [[nodiscard]] EvaluationStats last_eval_stats() const {
    std::lock_guard<std::mutex> lock(eval_stats_mutex_);
    return eval_stats_;
  }

  /// The input oracle (alive as long as this object per shared ownership).
  [[nodiscard]] const SPDMatrix<T>& matrix() const { return *k_; }

  [[nodiscard]] const tree::ClusterTree& cluster_tree() const { return *tree_; }
  [[nodiscard]] const tree::NeighborLists& neighbors() const {
    return neighbors_;
  }

  /// Per-node skeleton ranks (by node id); rank 0 = not skeletonized.
  [[nodiscard]] std::vector<index_t> skeleton_ranks() const;

  /// Skeleton indices α̃ of a node (original matrix ids); empty when the
  /// node was not skeletonized. Exposed for the nesting invariant tests.
  [[nodiscard]] const std::vector<index_t>& skeleton(
      const tree::Node* node) const {
    return data_[std::size_t(node->id)].skel;
  }

  /// Near/far lists of a node, exposed for tests of the partition
  /// invariants (coverage, symmetry, HSS reduction at budget 0).
  [[nodiscard]] const std::vector<const tree::Node*>& near_list(
      const tree::Node* node) const {
    return data_[std::size_t(node->id)].near;
  }
  [[nodiscard]] const std::vector<const tree::Node*>& far_list(
      const tree::Node* node) const {
    return data_[std::size_t(node->id)].far;
  }

 protected:
  la::Matrix<T> do_apply(const la::Matrix<T>& w,
                         EvalWorkspace<T>& ws) const override;

 private:
  friend class GofmmHssView<T>;

  CompressedMatrix(std::shared_ptr<const SPDMatrix<T>> k,
                   const Config& config);

  /// Per-node payload, indexed by tree::Node::id. Immutable once
  /// compression finishes — evaluation scratch lives in EvalWorkspace.
  struct NodeData {
    // --- compression products ---
    std::vector<index_t> skel;  ///< skeleton indices α̃ (original ids)
    la::Matrix<T> proj;  ///< P_{α̃α} (leaf) or P_{α̃[l̃r̃]} (internal)
    bool needs_skeleton = false;
    std::vector<index_t> sample_rows;  ///< importance-sampled row ids

    // --- interaction lists ---
    std::vector<const tree::Node*> near;  ///< leaves only (incl. self)
    std::vector<const tree::Node*> far;
    std::vector<index_t> near_leaf_ordinals;  ///< sorted, for FindFar

    // --- cached blocks ---
    std::vector<la::Matrix<T>> near_blocks;  ///< K(β, α), α ∈ near
    std::vector<la::Matrix<T>> far_blocks;   ///< K(β̃, α̃), α ∈ far
  };

  // Pipeline stages (defined across the core/*.cpp files).
  void run_neighbor_search();
  void build_partition_tree();
  void build_interaction_lists();
  void skeletonize_all();
  void cache_interaction_blocks();

  // Skeletonization helpers.
  void skeletonize_node(const tree::Node* node);
  std::vector<index_t> sample_rows_for(const tree::Node* node,
                                       std::span<const index_t> columns,
                                       index_t want, Prng& rng) const;

  // Evaluation helpers (evaluator.cpp). All const: per-call state lives in
  // the workspace (ws.x/ws.y = tree-ordered rhs/outputs, ws.up/ws.down =
  // per-node skeleton weights/potentials).
  void eval_prepare(const la::Matrix<T>& w, EvalWorkspace<T>& ws) const;
  void task_n2s(const tree::Node* node, EvalWorkspace<T>& ws) const;
  void task_s2s(const tree::Node* node, EvalWorkspace<T>& ws) const;
  void task_s2n(const tree::Node* node, EvalWorkspace<T>& ws) const;
  void task_l2l(const tree::Node* node, EvalWorkspace<T>& ws) const;
  void eval_with_heft(EvalWorkspace<T>& ws) const;
  void eval_with_levels(EvalWorkspace<T>& ws) const;
  void eval_with_omp_tasks(EvalWorkspace<T>& ws) const;

  // Block access: cached or evaluated on demand.
  la::Matrix<T> near_block(const tree::Node* beta, std::size_t t) const;
  la::Matrix<T> far_block(const tree::Node* beta, std::size_t t) const;

  // Workspace pool backing the evaluate() convenience path.
  [[nodiscard]] std::unique_ptr<EvalWorkspace<T>> acquire_workspace() const;
  void release_workspace(std::unique_ptr<EvalWorkspace<T>> ws) const;

  std::shared_ptr<const SPDMatrix<T>> k_;
  Config config_;
  index_t n_;
  index_t num_leaves_ = 0;

  std::unique_ptr<tree::Metric<T>> metric_;
  std::unique_ptr<tree::ClusterTree> tree_;
  tree::NeighborLists neighbors_;
  std::vector<NodeData> data_;

  std::atomic<std::uint64_t> skel_flops_{0};

  CompressionStats stats_;
  mutable std::mutex eval_stats_mutex_;
  mutable EvaluationStats eval_stats_;

  mutable std::mutex pool_mutex_;
  mutable std::vector<std::unique_ptr<EvalWorkspace<T>>> pool_;

  // ULV factors (null until factorize(); immutable afterwards, so const
  // solve()/logdet() are thread-safe).
  std::unique_ptr<UlvFactorization<T>> fact_;
};

extern template class CompressedMatrix<float>;
extern template class CompressedMatrix<double>;

}  // namespace gofmm
