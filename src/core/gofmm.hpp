// GOFMM: geometry-oblivious FMM compression of SPD matrices.
//
// This is the public entry point of the library. Typical use:
//
//   gofmm::Config cfg;                 // m, s, τ, κ, budget, distance, ...
//   auto kc = gofmm::CompressedMatrix<float>::compress(K, cfg);
//   la::Matrix<float> u = kc.evaluate(w);            // u ≈ K w, N-by-r
//   double eps2 = kc.estimate_error(w, u);           // sampled ‖·‖_F error
//
// Compression implements Algorithm 2.2 of the paper: iterative randomized
// neighbor search, metric-tree partitioning, near/far interaction lists
// with budget-capped direct evaluations, nested adaptive-rank interpolative
// decompositions, and optional caching of the direct/skeleton blocks.
// Evaluation implements Algorithm 2.7 (N2S, S2S, S2N, L2L) under any of the
// three traversal engines.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/spd_matrix.hpp"
#include "la/matrix.hpp"
#include "runtime/scheduler.hpp"
#include "tree/ann.hpp"
#include "tree/cluster_tree.hpp"

namespace gofmm {

/// Phase timings and work counters for one compressed matrix — everything
/// the paper's tables report (Comp/Eval seconds, GFs, average rank, ...).
struct CompressionStats {
  double ann_seconds = 0;       ///< neighbor search (steps 1-3 of Alg. 2.2)
  double tree_seconds = 0;      ///< metric-tree build (step 4)
  double lists_seconds = 0;     ///< near/far lists (steps 5-7)
  double skel_seconds = 0;      ///< skeletonization + coefficients (8-9)
  double cache_seconds = 0;     ///< Kba / SKba caching (10-11)
  double total_seconds = 0;     ///< whole Compress() wall-clock

  std::uint64_t skel_flops = 0;   ///< QR + TRSM work
  std::uint64_t cached_bytes = 0; ///< memory held by cached blocks

  double avg_rank = 0;          ///< mean skeleton rank over all nodes
  index_t max_rank = 0;         ///< largest skeleton rank
  index_t num_near_pairs = 0;   ///< |{(β,α) : α ∈ Near(β)}| (leaf pairs)
  index_t num_far_pairs = 0;    ///< |{(β,α) : α ∈ Far(β)}|
  double near_fraction = 0;     ///< fraction of K evaluated exactly
  double ann_recall = 0;        ///< estimated neighbor recall at stop
  index_t ann_iterations = 0;
};

/// Work counters for one evaluation (matvec) call.
struct EvaluationStats {
  double seconds = 0;
  std::uint64_t flops = 0;  ///< per Table 2: N2S + S2S + S2N + L2L
  [[nodiscard]] double gflops() const {
    return seconds > 0 ? double(flops) * 1e-9 / seconds : 0;
  }
};

/// A hierarchically compressed SPD matrix: K̃ = D + S + UV (Eq. 1).
template <typename T>
class CompressedMatrix {
 public:
  /// Compresses `k` under `config`. The reference must stay valid for the
  /// life of the compressed matrix when cache_blocks is off, or when
  /// estimate_error / uncached evaluation is used.
  static CompressedMatrix compress(const SPDMatrix<T>& k,
                                   const Config& config);

  /// u = K̃ * w for an N-by-r block of right-hand sides (paper Alg. 2.7).
  /// Non-const: reuses internal per-node workspaces across calls.
  la::Matrix<T> evaluate(const la::Matrix<T>& w);

  /// Relative error ε₂ = ‖K̃w − Kw‖_F / ‖Kw‖_F estimated on a row sample
  /// (paper Eq. 11; default 100 rows as in §3).
  double estimate_error(const la::Matrix<T>& w, const la::Matrix<T>& u,
                        index_t sample_rows = 100,
                        std::uint64_t seed = 1234) const;

  [[nodiscard]] index_t size() const { return n_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const CompressionStats& stats() const { return stats_; }
  [[nodiscard]] const EvaluationStats& last_eval_stats() const {
    return eval_stats_;
  }
  [[nodiscard]] const tree::ClusterTree& cluster_tree() const { return *tree_; }
  [[nodiscard]] const tree::NeighborLists& neighbors() const {
    return neighbors_;
  }

  /// Per-node skeleton ranks (by node id); rank 0 = not skeletonized.
  [[nodiscard]] std::vector<index_t> skeleton_ranks() const;

  /// Skeleton indices α̃ of a node (original matrix ids); empty when the
  /// node was not skeletonized. Exposed for the nesting invariant tests.
  [[nodiscard]] const std::vector<index_t>& skeleton(
      const tree::Node* node) const {
    return data_[std::size_t(node->id)].skel;
  }

  /// Near/far lists of a node, exposed for tests of the partition
  /// invariants (coverage, symmetry, HSS reduction at budget 0).
  [[nodiscard]] const std::vector<const tree::Node*>& near_list(
      const tree::Node* node) const {
    return data_[std::size_t(node->id)].near;
  }
  [[nodiscard]] const std::vector<const tree::Node*>& far_list(
      const tree::Node* node) const {
    return data_[std::size_t(node->id)].far;
  }

 private:
  CompressedMatrix(const SPDMatrix<T>& k, const Config& config);

  /// Per-node payload, indexed by tree::Node::id.
  struct NodeData {
    // --- compression products ---
    std::vector<index_t> skel;  ///< skeleton indices α̃ (original ids)
    la::Matrix<T> proj;  ///< P_{α̃α} (leaf) or P_{α̃[l̃r̃]} (internal)
    bool needs_skeleton = false;
    std::vector<index_t> sample_rows;  ///< importance-sampled row ids

    // --- interaction lists ---
    std::vector<const tree::Node*> near;  ///< leaves only (incl. self)
    std::vector<const tree::Node*> far;
    std::vector<index_t> near_leaf_ordinals;  ///< sorted, for FindFar

    // --- cached blocks ---
    std::vector<la::Matrix<T>> near_blocks;  ///< K(β, α), α ∈ near
    std::vector<la::Matrix<T>> far_blocks;   ///< K(β̃, α̃), α ∈ far

    // --- evaluation workspaces ---
    la::Matrix<T> w_skel;  ///< skeleton weights  (rank-by-r)
    la::Matrix<T> u_skel;  ///< skeleton potentials (rank-by-r)
  };

  // Pipeline stages (defined across the core/*.cpp files).
  void run_neighbor_search();
  void build_partition_tree();
  void build_interaction_lists();
  void skeletonize_all();
  void cache_interaction_blocks();

  // Skeletonization helpers.
  void skeletonize_node(const tree::Node* node);
  std::vector<index_t> sample_rows_for(const tree::Node* node,
                                       std::span<const index_t> columns,
                                       index_t want, Prng& rng) const;

  // Evaluation helpers (evaluator.cpp).
  void eval_prepare(const la::Matrix<T>& w);
  void task_n2s(const tree::Node* node);
  void task_s2s(const tree::Node* node);
  void task_s2n(const tree::Node* node);
  void task_l2l(const tree::Node* node);
  void eval_with_heft();
  void eval_with_levels();
  void eval_with_omp_tasks();

  // Block access: cached or evaluated on demand.
  la::Matrix<T> near_block(const tree::Node* beta, std::size_t t) const;
  la::Matrix<T> far_block(const tree::Node* beta, std::size_t t) const;

  const SPDMatrix<T>& k_;
  Config config_;
  index_t n_;
  index_t num_leaves_ = 0;

  std::unique_ptr<tree::Metric<T>> metric_;
  std::unique_ptr<tree::ClusterTree> tree_;
  tree::NeighborLists neighbors_;
  std::vector<NodeData> data_;

  // Evaluation state (valid during evaluate()).
  la::Matrix<T> w_tree_;  ///< right-hand sides in tree order
  la::Matrix<T> u_tree_;  ///< accumulated outputs in tree order
  std::atomic<std::uint64_t> eval_flops_{0};
  std::atomic<std::uint64_t> skel_flops_{0};

  CompressionStats stats_;
  EvaluationStats eval_stats_;
};

extern template class CompressedMatrix<float>;
extern template class CompressedMatrix<double>;

}  // namespace gofmm
