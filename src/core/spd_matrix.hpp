// The only input GOFMM requires: entry access to an SPD matrix.
//
// The paper's problem statement: "the only required input to our algorithm
// is a routine that returns K_{I,J} for arbitrary row and column index sets
// I and J". This header defines that routine as an abstract interface, plus
// the two standard realisations (a stored dense matrix and a lazily
// evaluated kernel matrix lives in matrices/kernels.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "util/common.hpp"

namespace gofmm {

/// Abstract SPD matrix accessed by entries (the GOFMM sampling oracle).
///
/// Implementations must be thread-safe for concurrent reads: compression
/// samples entries from many tasks at once.
template <typename T>
class SPDMatrix {
 public:
  virtual ~SPDMatrix() = default;

  /// Matrix order N.
  [[nodiscard]] virtual index_t size() const = 0;

  /// Returns K(i, j). Must satisfy entry(i, j) == entry(j, i).
  [[nodiscard]] virtual T entry(index_t i, index_t j) const = 0;

  /// Gathers the |I|-by-|J| submatrix K(I, J). The default loops over
  /// entry(); implementations override when a faster batched path exists.
  [[nodiscard]] virtual la::Matrix<T> submatrix(
      std::span<const index_t> I, std::span<const index_t> J) const {
    la::Matrix<T> out(index_t(I.size()), index_t(J.size()));
    for (index_t j = 0; j < out.cols(); ++j)
      for (index_t i = 0; i < out.rows(); ++i)
        out(i, j) = entry(I[std::size_t(i)], J[std::size_t(j)]);
    return out;
  }

  /// Optional geometric side-information: a d-by-N matrix of point
  /// coordinates when K_ij = K(x_i, x_j). Null for purely algebraic
  /// matrices — the geometry-oblivious case the paper targets.
  [[nodiscard]] virtual const la::Matrix<T>* points() const { return nullptr; }

  /// The diagonal K(i,i), i = 0..N-1, needed by both Gram distances.
  [[nodiscard]] std::vector<T> diagonal() const {
    std::vector<T> d(static_cast<std::size_t>(size()));
    for (index_t i = 0; i < size(); ++i) d[std::size_t(i)] = entry(i, i);
    return d;
  }

  /// Dense materialisation (tests and small benches only; O(N^2)).
  [[nodiscard]] la::Matrix<T> dense() const {
    const index_t n = size();
    std::vector<index_t> all(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) all[std::size_t(i)] = i;
    return submatrix(all, all);
  }
};

/// SPD matrix stored densely in memory. Used for the matrix zoo's
/// inverse-operator matrices (which are materialised once) and in tests.
template <typename T>
class DenseSPD final : public SPDMatrix<T> {
 public:
  explicit DenseSPD(la::Matrix<T> k) : k_(std::move(k)) {
    require(k_.rows() == k_.cols(), "DenseSPD: matrix must be square");
  }

  [[nodiscard]] index_t size() const override { return k_.rows(); }
  [[nodiscard]] T entry(index_t i, index_t j) const override {
    return k_(i, j);
  }
  [[nodiscard]] la::Matrix<T> submatrix(
      std::span<const index_t> I, std::span<const index_t> J) const override {
    return k_.gather(I, J);
  }

  /// Direct access to the stored matrix (benches compare against GEMM).
  [[nodiscard]] const la::Matrix<T>& matrix() const { return k_; }

  /// Attaches optional point coordinates (d-by-N) for geometric splits.
  void set_points(la::Matrix<T> pts) { points_ = std::move(pts); }
  [[nodiscard]] const la::Matrix<T>* points() const override {
    return points_.empty() ? nullptr : &points_;
  }

 private:
  la::Matrix<T> k_;
  la::Matrix<T> points_;
};

/// Wraps a caller-managed matrix in a NON-owning shared_ptr, for handing a
/// stack- or member-held SPDMatrix to APIs that take shared ownership
/// (e.g. CompressedMatrix::compress). The caller keeps the lifetime
/// obligation: `k` must outlive every copy of the returned pointer.
template <typename T>
[[nodiscard]] std::shared_ptr<const SPDMatrix<T>> borrow(
    const SPDMatrix<T>& k) {
  return std::shared_ptr<const SPDMatrix<T>>(&k,
                                             [](const SPDMatrix<T>*) {});
}

/// Relative error ε₂ = ‖u − Kw‖_F / ‖Kw‖_F estimated on `sample_rows`
/// sampled rows of the exact operator (paper Eq. 11; sample clamped at N).
/// Works for any approximate matvec output `u`, whatever backend made it.
template <typename T>
double sampled_relative_error(const SPDMatrix<T>& k, const la::Matrix<T>& w,
                              const la::Matrix<T>& u,
                              index_t sample_rows = 100,
                              std::uint64_t seed = 1234);

extern template double sampled_relative_error<float>(const SPDMatrix<float>&,
                                                     const la::Matrix<float>&,
                                                     const la::Matrix<float>&,
                                                     index_t, std::uint64_t);
extern template double sampled_relative_error<double>(
    const SPDMatrix<double>&, const la::Matrix<double>&,
    const la::Matrix<double>&, index_t, std::uint64_t);

}  // namespace gofmm
