// Backend-neutral view of one hierarchically semi-separable (HSS-like)
// operator — the structural contract the shared ULV factorization engine
// (core/factorization.hpp) builds against.
//
// Every hierarchical backend in this library is, algebraically, the same
// object: a binary cluster tree whose leaves own exact diagonal blocks and
// whose interior nodes couple their two children through low-rank bases,
//
//   K̃_p = blkdiag(K̃_l, K̃_r) + W M Wᵀ,
//   W = blkdiag(V_l, V_r),  M = [[0, B], [Bᵀ, 0]].
//
// What differs between backends is bookkeeping, not algebra:
//
//  * GOFMM's CompressedMatrix stores telescoping projection matrices over a
//    metric-tree permutation (nested bases, oracle-evaluated couplings).
//  * The randomized-HSS baseline stores nested interpolation bases and the
//    sibling couplings directly, in the input ordering.
//  * The HODLR baseline stores an explicit (non-nested) basis per level:
//    K(l, r) ≈ U₁₂ V₁₂ᵀ is W M Wᵀ with V_l = U₁₂, V_r = V₁₂ᵀ, B = I.
//
// HssView flattens any of these into a dense-id node array plus four
// payload fetchers (leaf diagonal, per-node basis/transfer, sibling
// coupling). The engine consumes the view only while factoring; the
// resulting factorization owns a topology snapshot and never touches the
// view (or the backend) again, so solves outlive the view.
#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "util/common.hpp"

namespace gofmm {

/// Topology of one node of a flattened HSS hierarchy. `row_begin/count`
/// reference the tree-ordered row range the node owns; ids are dense in
/// [0, num_nodes) and index the engine's factor arrays.
struct HssTopoNode {
  static constexpr index_t kNone = -1;  ///< "no such node" sentinel id
  index_t id = 0;         ///< dense node id in [0, num_nodes)
  index_t level = 0;      ///< depth, root = 0
  index_t row_begin = 0;  ///< first tree-ordered row owned
  index_t count = 0;      ///< number of rows owned
  index_t parent = kNone; ///< parent id, kNone at the root
  index_t left = kNone;   ///< left child id, kNone at leaves
  index_t right = kNone;  ///< right child id, kNone at leaves
  /// True when the node owns a dense diagonal block (no children).
  [[nodiscard]] bool is_leaf() const { return left == kNone; }
};

/// How a node's parent-facing basis is represented by the view.
enum class BasisKind {
  /// basis(leaf) is the |β|-by-r interpolation basis; basis(interior) is
  /// the (r_l + r_r)-by-r_p transfer map E, so V_p = blkdiag(V_l, V_r) E
  /// telescopes (GOFMM, randomized HSS) and the engine factors/solves in
  /// O(N r² log N) / O(N r log N).
  Nested,
  /// basis(node) is the full |β|-by-r basis at every node (HODLR): no
  /// telescoping, so the engine computes each Φ = K̃⁻¹ V by a subtree
  /// solve — the classical O(N log² N) HODLR factorization cost.
  Explicit,
};

/// Read-only structural view of one hierarchical operator. Subclasses are
/// defined next to their backend (they need its internals); the engine
/// sees only this interface.
template <typename T>
class HssView {
 public:
  virtual ~HssView() = default;  ///< views are polymorphic handles

  /// Operator order N.
  [[nodiscard]] index_t size() const { return n_; }
  /// Number of tree nodes (ids are dense in [0, num_nodes())).
  [[nodiscard]] index_t num_nodes() const { return index_t(topo_.size()); }
  /// Id of the root node.
  [[nodiscard]] index_t root() const { return root_; }
  /// Topology record of one node.
  [[nodiscard]] const HssTopoNode& node(index_t id) const {
    return topo_[std::size_t(id)];
  }
  /// The whole dense-id node array (what the engine snapshots).
  [[nodiscard]] const std::vector<HssTopoNode>& nodes() const { return topo_; }

  /// Row permutation: perm()[pos] = external row index at tree-ordered
  /// position pos. Empty means identity (backends built in input order).
  [[nodiscard]] const std::vector<index_t>& perm() const { return perm_; }

  /// Exact leaf diagonal block K(β, β), tree-ordered.
  [[nodiscard]] virtual la::Matrix<T> leaf_diag(index_t id) const = 0;

  /// Declared rank of the node's parent-facing basis; 0 when the node has
  /// none (the root, or an unskeletonized node). A node whose built basis
  /// ends up narrower than this rank is incomplete and degrades its
  /// ancestors to block-diagonal elimination.
  [[nodiscard]] virtual index_t basis_rank(index_t id) const = 0;

  /// Representation of this node's parent-facing basis (see BasisKind).
  [[nodiscard]] virtual BasisKind basis_kind(index_t id) const = 0;

  /// The basis payload: leaf / Explicit nodes return the |β|-by-r basis,
  /// Nested interior nodes the (r_l + r_r)-by-r_p transfer map.
  [[nodiscard]] virtual la::Matrix<T> basis(index_t id) const = 0;

  /// Sibling coupling B (r_l-by-r_r) of an interior node's children —
  /// K(l̃, r̃) for skeleton backends. Queried only when both children have
  /// complete nonzero-rank bases.
  ///
  /// Identity convention: returning an EMPTY matrix declares B = I (legal
  /// only when r_l == r_r). A view whose couplings are structurally the
  /// identity — HODLR, where K(l, r) ≈ U₁₂ V₁₂ᵀ already IS the factored
  /// coupling — should return empty instead of materialising I: the
  /// engine then skips every GEMM against B (they would be pure copies)
  /// in both the elimination and the solve sweeps, at identical results.
  [[nodiscard]] virtual la::Matrix<T> coupling(index_t id) const = 0;

 protected:
  index_t n_ = 0;                  ///< operator order N
  index_t root_ = 0;               ///< id of the root node
  std::vector<HssTopoNode> topo_;  ///< dense-id node array
  std::vector<index_t> perm_;      ///< tree ordering (empty = identity)
};

}  // namespace gofmm
