// Typed error hierarchy of the public API.
//
// Every precondition violation on user input raises a subclass of
// gofmm::Error, so callers can discriminate configuration mistakes from
// shape mismatches from misuse of object state. The base derives from
// std::invalid_argument: existing call sites (and tests) that catch the
// standard type keep working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace gofmm {

/// Base of every error thrown by the gofmm public API.
class Error : public std::invalid_argument {
 public:
  explicit Error(const std::string& msg);
};

/// An invalid Config field (raised by Config::validate()).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& msg);
};

/// A shape mismatch between an operator and its operands.
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& msg);
};

/// An operation invoked on an object in the wrong state (for example
/// Hodlr::solve() before factorize()).
class StateError : public Error {
 public:
  explicit StateError(const std::string& msg);
};

/// Throws `E(msg)` when `cond` is false.
template <typename E = Error>
inline void check(bool cond, const std::string& msg) {
  if (!cond) throw E(msg);
}

}  // namespace gofmm
