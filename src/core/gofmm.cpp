// Compression pipeline orchestration (paper Algorithm 2.2).
#include "core/gofmm.hpp"

#include "core/factorization.hpp"
#include "util/timer.hpp"

namespace gofmm {

template <typename T>
CompressedMatrix<T>::CompressedMatrix(std::shared_ptr<const SPDMatrix<T>> k,
                                      const Config& config)
    : k_(std::move(k)), config_(config) {
  check<Error>(k_ != nullptr, "compress: null matrix");
  n_ = k_->size();
  check<Error>(n_ > 0, "compress: empty matrix");
  config_.validate();
  if (config_.distance == tree::DistanceKind::Geometric)
    check<ConfigError>(
        k_->points() != nullptr,
        "compress: geometric distance requires point coordinates");

  Timer total;
  metric_ = std::make_unique<tree::Metric<T>>(*k_, config_.distance);

  Timer phase;
  run_neighbor_search();
  stats_.ann_seconds = phase.seconds();

  phase.reset();
  build_partition_tree();
  stats_.tree_seconds = phase.seconds();

  phase.reset();
  build_interaction_lists();
  stats_.lists_seconds = phase.seconds();

  phase.reset();
  skeletonize_all();
  stats_.skel_seconds = phase.seconds();
  stats_.skel_flops = skel_flops_.load(std::memory_order_relaxed);

  phase.reset();
  if (config_.cache_blocks) cache_interaction_blocks();
  stats_.cache_seconds = phase.seconds();

  stats_.total_seconds = total.seconds();

  // Rank summary.
  double rank_sum = 0;
  index_t skel_nodes = 0;
  for (const auto& nd : data_) {
    if (nd.skel.empty()) continue;
    rank_sum += double(nd.skel.size());
    stats_.max_rank =
        std::max<index_t>(stats_.max_rank, index_t(nd.skel.size()));
    ++skel_nodes;
  }
  stats_.avg_rank = skel_nodes > 0 ? rank_sum / double(skel_nodes) : 0.0;
}

template <typename T>
CompressedMatrix<T>::~CompressedMatrix() = default;

template <typename T>
CompressedMatrix<T> CompressedMatrix<T>::compress(
    std::shared_ptr<const SPDMatrix<T>> k, const Config& config) {
  // Returned as a prvalue: guaranteed copy elision constructs the result
  // in place (the class is neither movable nor copyable — it owns atomics
  // and mutexes).
  return CompressedMatrix(std::move(k), config);
}

template <typename T>
std::unique_ptr<CompressedMatrix<T>> CompressedMatrix<T>::compress_unique(
    std::shared_ptr<const SPDMatrix<T>> k, const Config& config) {
  return std::unique_ptr<CompressedMatrix>(
      new CompressedMatrix(std::move(k), config));
}

template <typename T>
void CompressedMatrix<T>::run_neighbor_search() {
  // Orderings without a distance (lexicographic/random) have no neighbor
  // notion: near lists degenerate to the diagonal (pure HSS) and sampling
  // falls back to uniform.
  if (!tree::has_distance(config_.distance)) return;
  tree::AnnOptions opts;
  opts.kappa = config_.kappa;
  opts.leaf_size = std::max<index_t>(config_.leaf_size, 2 * config_.kappa);
  opts.max_iterations = config_.ann_max_iterations;
  opts.target_recall = config_.ann_target_recall;
  opts.seed = config_.seed;
  tree::AnnResult res = tree::all_nearest_neighbors(*k_, *metric_, opts);
  neighbors_ = std::move(res.neighbors);
  stats_.ann_iterations = res.iterations;
  stats_.ann_recall = res.recall_per_iteration.empty()
                          ? 0.0
                          : res.recall_per_iteration.back();
}

template <typename T>
void CompressedMatrix<T>::build_partition_tree() {
  Prng rng(config_.seed + 1);
  tree_ = std::make_unique<tree::ClusterTree>(
      tree::build_tree(*k_, *metric_, config_.leaf_size, rng));
  num_leaves_ = index_t(tree_->leaves().size());
  data_.assign(std::size_t(tree_->num_nodes()), NodeData{});
}

template <typename T>
std::vector<index_t> CompressedMatrix<T>::skeleton_ranks() const {
  std::vector<index_t> ranks(data_.size(), 0);
  for (std::size_t i = 0; i < data_.size(); ++i)
    ranks[i] = index_t(data_[i].skel.size());
  return ranks;
}

template <typename T>
std::uint64_t CompressedMatrix<T>::memory_bytes() const {
  std::uint64_t bytes = stats_.cached_bytes;
  for (const auto& nd : data_) {
    bytes += std::uint64_t(nd.proj.size()) * sizeof(T);
    bytes += std::uint64_t(nd.skel.size()) * sizeof(index_t);
    bytes += std::uint64_t(nd.sample_rows.size()) * sizeof(index_t);
    bytes += std::uint64_t(nd.near.size() + nd.far.size()) * sizeof(void*);
    bytes += std::uint64_t(nd.near_leaf_ordinals.size()) * sizeof(index_t);
  }
  if (fact_ != nullptr) bytes += fact_->stats().memory_bytes;
  return bytes;
}

template <typename T>
OperatorStats CompressedMatrix<T>::operator_stats() const {
  OperatorStats out;
  out.compress_seconds = stats_.total_seconds;
  out.avg_rank = stats_.avg_rank;
  out.max_rank = stats_.max_rank;
  out.memory_bytes = memory_bytes();
  return out;
}

template <typename T>
std::unique_ptr<EvalWorkspace<T>> CompressedMatrix<T>::acquire_workspace()
    const {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      auto ws = std::move(pool_.back());
      pool_.pop_back();
      return ws;
    }
  }
  return std::make_unique<EvalWorkspace<T>>();
}

template <typename T>
void CompressedMatrix<T>::release_workspace(
    std::unique_ptr<EvalWorkspace<T>> ws) const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  // Bound the pool at the peak concurrency seen so far, with a small cap
  // so a burst of parallel matvecs does not pin workspace memory forever.
  if (pool_.size() < 16) pool_.push_back(std::move(ws));
}

template <typename T>
la::Matrix<T> CompressedMatrix<T>::near_block(const tree::Node* beta,
                                              std::size_t t) const {
  const NodeData& nd = data_[std::size_t(beta->id)];
  if (!nd.near_blocks.empty()) return nd.near_blocks[t];
  const tree::Node* alpha = nd.near[t];
  return k_->submatrix(tree_->indices(beta), tree_->indices(alpha));
}

template <typename T>
la::Matrix<T> CompressedMatrix<T>::far_block(const tree::Node* beta,
                                             std::size_t t) const {
  const NodeData& nd = data_[std::size_t(beta->id)];
  if (!nd.far_blocks.empty()) return nd.far_blocks[t];
  const tree::Node* alpha = nd.far[t];
  return k_->submatrix(nd.skel, data_[std::size_t(alpha->id)].skel);
}

template <typename T>
void CompressedMatrix<T>::cache_interaction_blocks() {
  // Kba(β) and SKba(β) of Algorithm 2.2: evaluate and store every direct
  // block K(β, α) and skeleton block K(β̃, α̃). Any order; parallel.
  const auto& nodes = tree_->nodes();
#pragma omp parallel for schedule(dynamic, 1)
  for (index_t t = 0; t < index_t(nodes.size()); ++t) {
    const tree::Node* beta = nodes[std::size_t(t)];
    NodeData& nd = data_[std::size_t(beta->id)];
    nd.near_blocks.clear();
    nd.near_blocks.reserve(nd.near.size());
    for (const tree::Node* alpha : nd.near)
      nd.near_blocks.push_back(
          k_->submatrix(tree_->indices(beta), tree_->indices(alpha)));
    nd.far_blocks.clear();
    nd.far_blocks.reserve(nd.far.size());
    for (const tree::Node* alpha : nd.far)
      nd.far_blocks.push_back(
          k_->submatrix(nd.skel, data_[std::size_t(alpha->id)].skel));
  }
  std::uint64_t bytes = 0;
  for (const auto& nd : data_) {
    for (const auto& b : nd.near_blocks)
      bytes += std::uint64_t(b.size()) * sizeof(T);
    for (const auto& b : nd.far_blocks)
      bytes += std::uint64_t(b.size()) * sizeof(T);
  }
  stats_.cached_bytes = bytes;
}

template class CompressedMatrix<float>;
template class CompressedMatrix<double>;

}  // namespace gofmm
