// Sampled relative-error estimator (paper Eq. 11 and §3: "we instead
// sample 100 rows of K").
#include <numeric>

#include "core/gofmm.hpp"

#include "la/blas.hpp"
#include "la/flops.hpp"

namespace gofmm {

template <typename T>
double CompressedMatrix<T>::estimate_error(const la::Matrix<T>& w,
                                           const la::Matrix<T>& u,
                                           index_t sample_rows,
                                           std::uint64_t seed) const {
  require(w.rows() == n_ && u.rows() == n_ && w.cols() == u.cols(),
          "estimate_error: shape mismatch");
  const index_t s = std::min(sample_rows, n_);

  // Distinct random rows.
  std::vector<index_t> rows(static_cast<std::size_t>(n_));
  std::iota(rows.begin(), rows.end(), index_t(0));
  Prng rng(seed);
  for (index_t i = 0; i < s; ++i) {
    const index_t j = i + rng.below(n_ - i);
    std::swap(rows[std::size_t(i)], rows[std::size_t(j)]);
  }
  rows.resize(std::size_t(s));

  // Exact rows: (K w)(rows, :) = K(rows, :) * w — O(s N r) entry work.
  std::vector<index_t> all(static_cast<std::size_t>(n_));
  std::iota(all.begin(), all.end(), index_t(0));
  const la::Matrix<T> krows = k_.submatrix(rows, all);
  la::Matrix<T> exact(s, w.cols());
  la::gemm(la::Op::None, la::Op::None, T(1), krows, w, T(0), exact);

  double num = 0;
  double den = 0;
  for (index_t j = 0; j < w.cols(); ++j)
    for (index_t i = 0; i < s; ++i) {
      const double e = double(exact(i, j));
      const double a = double(u(rows[std::size_t(i)], j));
      num += (a - e) * (a - e);
      den += e * e;
    }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

template double CompressedMatrix<float>::estimate_error(
    const la::Matrix<float>&, const la::Matrix<float>&, index_t,
    std::uint64_t) const;
template double CompressedMatrix<double>::estimate_error(
    const la::Matrix<double>&, const la::Matrix<double>&, index_t,
    std::uint64_t) const;

}  // namespace gofmm
