// Error types, configuration validation, and the sampled relative-error
// estimator (paper Eq. 11 and §3: "we instead sample 100 rows of K").
#include "core/error.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "core/config.hpp"
#include "core/gofmm.hpp"
#include "la/blas.hpp"
#include "util/random.hpp"

namespace gofmm {

// Out-of-line constructors anchor the vtables in this translation unit.
Error::Error(const std::string& msg) : std::invalid_argument(msg) {}
ConfigError::ConfigError(const std::string& msg) : Error(msg) {}
DimensionError::DimensionError(const std::string& msg) : Error(msg) {}
StateError::StateError(const std::string& msg) : Error(msg) {}

namespace {

[[noreturn]] void bad_config(const std::string& field,
                             const std::string& why) {
  throw ConfigError("Config::" + field + " " + why);
}

}  // namespace

void Config::validate() const {
  if (leaf_size < 1) bad_config("leaf_size", "must be positive");
  if (max_rank < 1) bad_config("max_rank", "must be positive");
  if (!std::isfinite(tolerance)) bad_config("tolerance", "must be finite");
  if (kappa < 1) bad_config("kappa", "must be positive");
  if (!std::isfinite(budget) || budget < 0.0 || budget > 1.0)
    bad_config("budget", "must lie in [0, 1]");
  if (num_workers < 0) bad_config("num_workers", "must be >= 0");
  if (!std::isfinite(sample_factor) || sample_factor <= 0.0)
    bad_config("sample_factor", "must be positive");
  if (sample_extra < 0) bad_config("sample_extra", "must be >= 0");
  if (ann_max_iterations < 1) bad_config("ann_max_iterations", "must be >= 1");
  if (!std::isfinite(ann_target_recall) || ann_target_recall <= 0.0 ||
      ann_target_recall > 1.0)
    bad_config("ann_target_recall", "must lie in (0, 1]");
}

template <typename T>
double sampled_relative_error(const SPDMatrix<T>& k, const la::Matrix<T>& w,
                              const la::Matrix<T>& u, index_t sample_rows,
                              std::uint64_t seed) {
  const index_t n = k.size();
  check<DimensionError>(w.rows() == n && u.rows() == n && w.cols() == u.cols(),
                        "sampled_relative_error: shape mismatch");
  check<Error>(sample_rows > 0,
               "sampled_relative_error: sample_rows must be positive");
  // Clamp at n: the default 100 rows must neither oversample nor index out
  // of range on matrices smaller than the sample.
  const index_t s = std::min(sample_rows, n);

  // Distinct random rows through the shared seeded-sampling utility
  // (util/random.hpp) — the same stream the spectral trace estimators
  // draw from, and bit-identical to the pre-existing Prng +
  // sample_without_replacement sequence, so golden errors are unchanged.
  SampleStream stream(seed);
  const std::vector<index_t> rows = stream.rows(n, s);

  // Exact rows: (K w)(rows, :) = K(rows, :) * w — O(s N r) entry work.
  std::vector<index_t> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), index_t(0));
  const la::Matrix<T> krows = k.submatrix(rows, all);
  la::Matrix<T> exact(s, w.cols());
  la::gemm(la::Op::None, la::Op::None, T(1), krows, w, T(0), exact);

  double num = 0;
  double den = 0;
  for (index_t j = 0; j < w.cols(); ++j)
    for (index_t i = 0; i < s; ++i) {
      const double e = double(exact(i, j));
      const double a = double(u(rows[std::size_t(i)], j));
      num += (a - e) * (a - e);
      den += e * e;
    }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

template <typename T>
double CompressedMatrix<T>::estimate_error(const la::Matrix<T>& w,
                                           const la::Matrix<T>& u,
                                           index_t sample_rows,
                                           std::uint64_t seed) const {
  return sampled_relative_error(*k_, w, u, sample_rows, seed);
}

template double sampled_relative_error<float>(const SPDMatrix<float>&,
                                              const la::Matrix<float>&,
                                              const la::Matrix<float>&,
                                              index_t, std::uint64_t);
template double sampled_relative_error<double>(const SPDMatrix<double>&,
                                               const la::Matrix<double>&,
                                               const la::Matrix<double>&,
                                               index_t, std::uint64_t);
template double CompressedMatrix<float>::estimate_error(
    const la::Matrix<float>&, const la::Matrix<float>&, index_t,
    std::uint64_t) const;
template double CompressedMatrix<double>::estimate_error(
    const la::Matrix<double>&, const la::Matrix<double>&, index_t,
    std::uint64_t) const;

}  // namespace gofmm
