// Iterative solvers on top of the compressed operator.
//
// The paper notes that the usual end goal of an H-matrix approximation is
// a factorization/solve (left to future work there). This header provides
// the matrix-free half of that story: Krylov solvers whose only contact
// with K is the compressed matvec — O(N) per iteration instead of O(N²).
#pragma once

#include "core/gofmm.hpp"
#include "la/blas.hpp"

namespace gofmm {

/// Convergence report of an iterative solve.
struct SolveReport {
  index_t iterations = 0;
  double relative_residual = 0.0;  ///< ‖b − Ax‖ / ‖b‖ in the Krylov metric
  bool converged = false;
};

/// Conjugate gradients on (K̃ + λI) x = b with the compressed matvec.
///
/// λ > 0 regularises both the problem and the compression error (the
/// approximate operator must stay positive definite; the paper's
/// "Limitations" notes positive definiteness may be lost when ε₂ is
/// large — a λ exceeding ε₂‖K‖ restores it).
template <typename T>
SolveReport conjugate_gradient(CompressedMatrix<T>& kc, T lambda,
                               const la::Matrix<T>& b, la::Matrix<T>& x,
                               double rel_tol = 1e-8,
                               index_t max_iterations = 500) {
  const index_t n = kc.size();
  require(b.rows() == n && b.cols() == 1, "cg: b must be N-by-1");
  x.resize(n, 1);

  la::Matrix<T> r = b;
  la::Matrix<T> p = r;
  double rho = la::dot(n, r.data(), r.data());
  const double b2 = rho;
  SolveReport rep;
  if (b2 == 0.0) {
    rep.converged = true;
    return rep;
  }

  while (rep.iterations < max_iterations &&
         rho > rel_tol * rel_tol * b2) {
    la::Matrix<T> ap = kc.evaluate(p);
    la::axpy(n, lambda, p.data(), ap.data());
    const double denom = la::dot(n, p.data(), ap.data());
    if (denom <= 0.0) break;  // operator lost definiteness: stop honestly
    const T alpha = T(rho / denom);
    la::axpy(n, alpha, p.data(), x.data());
    la::axpy(n, -alpha, ap.data(), r.data());
    const double rho_new = la::dot(n, r.data(), r.data());
    const T beta = T(rho_new / rho);
    rho = rho_new;
    for (index_t i = 0; i < n; ++i) p(i, 0) = r(i, 0) + beta * p(i, 0);
    ++rep.iterations;
  }
  rep.relative_residual = std::sqrt(rho / b2);
  rep.converged = rep.relative_residual <= rel_tol;
  return rep;
}

/// Block power iteration for the top eigenpairs of K̃ (orthonormalised by
/// modified Gram-Schmidt each step). Returns the Rayleigh quotients.
template <typename T>
std::vector<double> power_iteration(CompressedMatrix<T>& kc, index_t nev,
                                    index_t iterations = 50,
                                    std::uint64_t seed = 11,
                                    la::Matrix<T>* vectors_out = nullptr) {
  const index_t n = kc.size();
  require(nev >= 1 && nev <= n, "power_iteration: bad eigenpair count");
  la::Matrix<T> v = la::Matrix<T>::random_normal(n, nev, seed);
  auto orthonormalise = [&](la::Matrix<T>& m) {
    for (index_t j = 0; j < m.cols(); ++j) {
      for (index_t k = 0; k < j; ++k) {
        const T proj = T(la::dot(n, m.col(k), m.col(j)));
        la::axpy(n, -proj, m.col(k), m.col(j));
      }
      const double nrm = la::nrm2(n, m.col(j));
      require(nrm > 0, "power_iteration: degenerate block");
      for (index_t i = 0; i < n; ++i) m(i, j) = T(double(m(i, j)) / nrm);
    }
  };
  orthonormalise(v);
  for (index_t it = 0; it < iterations; ++it) {
    v = kc.evaluate(v);
    orthonormalise(v);
  }
  la::Matrix<T> kv = kc.evaluate(v);
  std::vector<double> eig(static_cast<std::size_t>(nev));
  for (index_t j = 0; j < nev; ++j)
    eig[std::size_t(j)] = la::dot(n, v.col(j), kv.col(j));
  if (vectors_out != nullptr) *vectors_out = std::move(v);
  return eig;
}

}  // namespace gofmm
