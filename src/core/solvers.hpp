// Iterative solvers on top of the compressed operator.
//
// The paper notes that the usual end goal of an H-matrix approximation is
// a factorization/solve (left to future work there). This header provides
// the matrix-free half of that story: Krylov solvers whose only contact
// with K is the compressed matvec — O(N) per iteration instead of O(N²).
// Both solvers are written against the abstract CompressedOperator<T>, so
// they run unchanged on GOFMM, HODLR, randomized HSS, or ACA backends, and
// they only use the const thread-safe apply() — a single compressed
// operator can serve many concurrent solves.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "core/error.hpp"
#include "core/gofmm.hpp"
#include "core/operator.hpp"
#include "la/blas.hpp"

namespace gofmm {

/// Convergence report of an iterative solve.
struct SolveReport {
  index_t iterations = 0;          ///< blocked iterations executed
  double relative_residual = 0.0;  ///< worst column: ‖b_j − Ax_j‖ / ‖b_j‖
  bool converged = false;          ///< every column reached rel_tol
  std::vector<double> column_residuals;  ///< per right-hand side
};

/// ‖(A + λI)X − B‖_F / ‖B‖_F through the operator's own matvec — the
/// verification counterpart of SolveReport, shared by tests, benches, and
/// examples so they all measure the same quantity.
template <typename T>
double operator_residual(const CompressedOperator<T>& a, T lambda,
                         const la::Matrix<T>& b, const la::Matrix<T>& x,
                         EvalWorkspace<T>* workspace = nullptr) {
  EvalWorkspace<T> local_ws;
  la::Matrix<T> ax =
      a.apply(x, workspace != nullptr ? *workspace : local_ws);
  for (index_t j = 0; j < x.cols(); ++j)
    for (index_t i = 0; i < x.rows(); ++i) ax(i, j) += lambda * x(i, j);
  return la::diff_fro(ax, b) / std::max(la::norm_fro(b), 1e-300);
}

/// (Preconditioned) conjugate gradients on (K̃ + λI) X = B with the
/// compressed matvec, for a blocked N-by-r set of right-hand sides solved
/// simultaneously: each iteration performs ONE blocked apply() (plus one
/// blocked preconditioner solve when given) and per-column α/β updates, so
/// the multi-rhs throughput of the compressed matvec carries over to the
/// solve. Columns converge (or stall) independently; the report carries
/// per-column residuals measured on the TRUE residual ‖b − (A+λI)x‖.
///
/// λ > 0 regularises both the problem and the compression error (the
/// approximate operator must stay positive definite; the paper's
/// "Limitations" notes positive definiteness may be lost when ε₂ is
/// large — a λ exceeding ε₂‖K‖ restores it).
///
/// `preconditioner`, when non-null, must be a factorized Factorizable —
/// any CompressedOperator with the capability works (GOFMM, HODLR, and
/// randomized HSS all factorize through the shared ULV engine; typically a
/// coarse-tolerance pure-HSS compression of the same matrix, factorized
/// with the same λ; see make_preconditioner in core/factorization.hpp).
/// Each iteration then applies z = M⁻¹ r through its const thread-safe
/// solve() — ONE blocked r-wide level-parallel sweep for the whole block
/// of right-hand sides, not r sequential sweeps, so the preconditioner
/// cost amortises across columns exactly like the blocked matvec.
///
/// `options` supplies the convergence policy: target_residual is the
/// per-column relative tolerance and max_iterations caps the blocked
/// iterations. Preconditioner applications always run refinement-free
/// (z = M⁻¹r need not be accurate, only spectrally close), so a
/// mixed-precision preconditioner serves PCG at full f32 sweep speed.
///
/// Pass `workspace` to reuse apply() scratch across calls; concurrent
/// solves on one operator must each use their own workspace.
template <typename T>
SolveReport conjugate_gradient(const CompressedOperator<T>& a, T lambda,
                               const la::Matrix<T>& b, la::Matrix<T>& x,
                               const SolveOptions& options =
                                   SolveOptions::defaults(),
                               EvalWorkspace<T>* workspace = nullptr,
                               const Factorizable<T>* preconditioner = nullptr) {
  const double rel_tol = options.target_residual;
  const index_t max_iterations = options.max_iterations;
  // The coarse preconditioner is spectrally close either way; refining its
  // solves would spend matvecs buying accuracy CG does not need.
  const SolveOptions precond_options =
      SolveOptions::defaults().with_refine(false);
  const index_t n = a.size();
  check<DimensionError>(b.rows() == n, "cg: b must have N rows");
  check<DimensionError>(b.cols() >= 1, "cg: b must have at least one column");
  // x.resize below discards contents; an aliased b would silently become
  // an all-zero right-hand side.
  check<Error>(&x != &b, "cg: x must not alias b");
  if (preconditioner != nullptr)
    check<StateError>(preconditioner->factorized(),
                      "cg: factorize() the preconditioner first");
  const index_t r = b.cols();
  x.resize(n, r);
  EvalWorkspace<T> local_ws;
  EvalWorkspace<T>& ws = workspace != nullptr ? *workspace : local_ws;

  la::Matrix<T> res = b;  // residuals R = B - (A + λI) X, X = 0
  // Preconditioned residuals Z = M⁻¹ R; without a preconditioner Z aliases
  // R (plain CG) and z_buf stays empty.
  la::Matrix<T> z_buf;
  if (preconditioner != nullptr)
    z_buf = preconditioner->solve(res, precond_options);
  const la::Matrix<T>* z = preconditioner != nullptr ? &z_buf : &res;
  // A residual-dependent negative rᵀ M⁻¹ r exposes an indefinite
  // preconditioner (compression error can exceed its λ). Such a column
  // permanently falls back to plain CG — graceful degradation instead of
  // divergence or a frozen zero solution.
  std::vector<bool> use_precond(std::size_t(r), preconditioner != nullptr);
  auto zcol = [&](index_t j) {
    return use_precond[std::size_t(j)] ? z->col(j) : res.col(j);
  };
  la::Matrix<T> p = *z;        // search directions
  la::Matrix<T> best_x(n, r);  // per-column iterate with the lowest residual
  std::vector<double> rho(std::size_t(r), 0.0);   // rᵀ z
  std::vector<double> rr2(std::size_t(r), 0.0);   // rᵀ r (true residual²)
  std::vector<double> best_rr2(std::size_t(r), 0.0);
  std::vector<double> b2(std::size_t(r), 0.0);
  // active: column still iterating. Compression error can leave K̃ + λI
  // slightly indefinite; when a direction hits non-positive curvature the
  // column restarts its Krylov space from the (preconditioned) residual
  // once, and only freezes if the restarted direction is also non-positive.
  std::vector<bool> active(std::size_t(r), true);
  std::vector<bool> restarted(std::size_t(r), false);
  auto zero_col = [&](la::Matrix<T>& m, index_t j) {
    std::fill_n(m.col(j), n, T(0));
  };
  index_t num_active = 0;
  for (index_t j = 0; j < r; ++j) {
    rr2[std::size_t(j)] = la::dot(n, res.col(j), res.col(j));
    rho[std::size_t(j)] = la::dot(n, res.col(j), z->col(j));
    best_rr2[std::size_t(j)] = rr2[std::size_t(j)];
    b2[std::size_t(j)] = rr2[std::size_t(j)];
    if (b2[std::size_t(j)] == 0.0) {
      active[std::size_t(j)] = false;  // zero rhs: x_j = 0 is exact
      zero_col(p, j);
    } else {
      if (use_precond[std::size_t(j)] && rho[std::size_t(j)] <= 0.0) {
        use_precond[std::size_t(j)] = false;  // indefinite M on this rhs
        rho[std::size_t(j)] = rr2[std::size_t(j)];
        std::copy_n(res.col(j), n, p.col(j));
      }
      ++num_active;
    }
  }

  SolveReport rep;
  const double tol2 = rel_tol * rel_tol;
  while (num_active > 0 && rep.iterations < max_iterations) {
    la::Matrix<T> ap = a.apply(p, ws);  // inactive columns of p are zero
    la::axpy(n * r, lambda, p.data(), ap.data());
    bool need_z = false;
    for (index_t j = 0; j < r; ++j) {
      if (!active[std::size_t(j)]) continue;
      const double denom = la::dot(n, p.col(j), ap.col(j));
      if (denom <= 0.0) {
        if (!restarted[std::size_t(j)]) {
          // First breakdown on this direction: steepest-descent restart
          // (from the preconditioned residual when preconditioning).
          std::copy_n(zcol(j), n, p.col(j));
          restarted[std::size_t(j)] = true;
        } else {
          // Non-positive curvature along the residual itself: genuinely
          // indefinite. Freeze the column at its best iterate.
          active[std::size_t(j)] = false;
          --num_active;
          zero_col(p, j);
        }
        continue;
      }
      restarted[std::size_t(j)] = false;
      const T alpha = T(rho[std::size_t(j)] / denom);
      la::axpy(n, alpha, p.col(j), x.col(j));
      la::axpy(n, -alpha, ap.col(j), res.col(j));
      const double rr2_new = la::dot(n, res.col(j), res.col(j));
      if (rr2_new < best_rr2[std::size_t(j)]) {
        best_rr2[std::size_t(j)] = rr2_new;
        std::copy_n(x.col(j), n, best_x.col(j));
      }
      rr2[std::size_t(j)] = rr2_new;
      if (rr2_new <= tol2 * b2[std::size_t(j)]) {
        active[std::size_t(j)] = false;
        --num_active;
        zero_col(p, j);
      } else if (use_precond[std::size_t(j)]) {
        need_z = true;
      }
    }
    // One blocked preconditioner solve per iteration, shared by every
    // still-active column (mirrors the single blocked apply above).
    if (need_z && preconditioner != nullptr)
      z_buf = preconditioner->solve(res, precond_options);
    for (index_t j = 0; j < r; ++j) {
      if (!active[std::size_t(j)] || restarted[std::size_t(j)]) continue;
      double rho_new = la::dot(n, res.col(j), zcol(j));
      if (use_precond[std::size_t(j)] && rho_new <= 0.0) {
        // The preconditioner lost positive definiteness on this residual:
        // drop to plain CG for this column and restart from steepest
        // descent (rho becomes rᵀ r, matching the unpreconditioned z).
        use_precond[std::size_t(j)] = false;
        rho[std::size_t(j)] = rr2[std::size_t(j)];
        std::copy_n(res.col(j), n, p.col(j));
        continue;
      }
      const T beta = T(rho_new / rho[std::size_t(j)]);
      rho[std::size_t(j)] = rho_new;
      const T* zj = zcol(j);
      for (index_t i = 0; i < n; ++i) p(i, j) = zj[i] + beta * p(i, j);
    }
    ++rep.iterations;
  }

  rep.column_residuals.assign(std::size_t(r), 0.0);
  rep.converged = true;
  for (index_t j = 0; j < r; ++j) {
    // Return the best iterate, not necessarily the last (a near-indefinite
    // operator can let the residual rise after its minimum).
    std::copy_n(best_x.col(j), n, x.col(j));
    const double rr =
        b2[std::size_t(j)] > 0
            ? std::sqrt(best_rr2[std::size_t(j)] / b2[std::size_t(j)])
            : 0.0;
    rep.column_residuals[std::size_t(j)] = rr;
    rep.relative_residual = std::max(rep.relative_residual, rr);
    if (rr > rel_tol) rep.converged = false;
  }
  return rep;
}

/// Preconditioned solve of (K̃ + λI) X = B: conjugate gradients on the
/// fine-tolerance operator `a`, preconditioned by a factorized coarse
/// compression `m` of the same matrix. The standard two-level recipe:
///
///   auto fine = CompressedMatrix<T>::compress(k, cfg);             // τ small
///   auto prec = make_preconditioner(k, lambda);                    // τ coarse
///   preconditioned_solve(fine, lambda, b, x, *prec);
///
/// Each iteration costs one fine matvec plus one O(N r log N) coarse
/// ULV solve, and the iteration count drops by the ratio the coarse
/// operator captures of the spectrum (assert ≥ 3× on the paper's kernel
/// matrices — see tests/test_factorization.cpp).
template <typename T>
SolveReport preconditioned_solve(const CompressedOperator<T>& a, T lambda,
                                 const la::Matrix<T>& b, la::Matrix<T>& x,
                                 const Factorizable<T>& m,
                                 const SolveOptions& options =
                                     SolveOptions::defaults(),
                                 EvalWorkspace<T>* workspace = nullptr) {
  check<StateError>(m.factorized(),
                    "preconditioned_solve: factorize() the preconditioner "
                    "first");
  return conjugate_gradient(a, lambda, b, x, options, workspace, &m);
}

/// Iterative refinement of a direct solve: x = fact.solve(b) in the
/// factorization's storage precision, then correction sweeps
///
///   r = b − (A + λI)x        (one blocked double-precision apply())
///   x += fact.solve(r)       (one blocked refinement-free ULV sweep)
///
/// until every column's relative residual reaches
/// `options.target_residual` or `options.max_refine_iters` corrections
/// ran. This is the classic mixed-precision recipe (LAPACK's dsgesv;
/// Bock & Challacombe 2013): the float-stored factorization supplies a
/// preconditioner whose error contracts by ~ε_f32·κ per sweep, so double
/// accuracy returns in 1-3 corrections while the factors stay at half
/// the bytes. `fact` is the operator's own factorization capability
/// (`*a.factorizable()`); its stored λ must equal `lambda`.
///
/// Also correct — deliberately — when the factorization is only an
/// approximate inverse of apply() (a budget > 0 compression, where the
/// ULV factors cover just the nested part): the loop is then
/// preconditioned Richardson iteration. It may stall above the target in
/// that regime, so progress is monitored: when a sweep fails to shrink
/// the worst residual by at least 2×, the loop stops and the best
/// iterate seen is returned per column (converged = false tells the
/// caller to fall back to PCG). SolveReport.iterations counts the
/// correction sweeps (0 when the base solve already meets the target).
template <typename T>
SolveReport refined_solve(const CompressedOperator<T>& a,
                          const Factorizable<T>& fact, T lambda,
                          const la::Matrix<T>& b, la::Matrix<T>& x,
                          const SolveOptions& options =
                              SolveOptions::defaults(),
                          EvalWorkspace<T>* workspace = nullptr) {
  const index_t n = a.size();
  check<DimensionError>(b.rows() == n, "refined_solve: b must have N rows");
  check<DimensionError>(b.cols() >= 1,
                        "refined_solve: b must have at least one column");
  check<Error>(&x != &b, "refined_solve: x must not alias b");
  check<StateError>(fact.factorized(),
                    "refined_solve: factorize() the operator first");
  EvalWorkspace<T> local_ws;
  EvalWorkspace<T>& ws = workspace != nullptr ? *workspace : local_ws;
  const SolveOptions direct = SolveOptions(options).with_refine(false);
  const index_t r = b.cols();

  x = fact.solve(b, direct);
  la::Matrix<T> best_x = x;
  std::vector<double> b2(std::size_t(r), 0.0);
  std::vector<double> best_rr(std::size_t(r), 0.0);
  for (index_t j = 0; j < r; ++j)
    b2[std::size_t(j)] = la::dot(n, b.col(j), b.col(j));

  SolveReport rep;
  double best_worst = std::numeric_limits<double>::infinity();
  for (;;) {
    // True residual R = B − (A + λI)X through the blocked double matvec —
    // the accumulation that makes float factors recover double accuracy.
    la::Matrix<T> res = a.apply(x, ws);
    double worst = 0.0;
    for (index_t j = 0; j < r; ++j) {
      double rr2 = 0.0;
      for (index_t i = 0; i < n; ++i) {
        const double v =
            double(b(i, j)) - double(res(i, j)) - double(lambda) * x(i, j);
        res(i, j) = T(v);
        rr2 += v * v;
      }
      const double rr = b2[std::size_t(j)] > 0
                            ? std::sqrt(rr2 / b2[std::size_t(j)])
                            : 0.0;
      if (rep.iterations == 0 || rr < best_rr[std::size_t(j)]) {
        best_rr[std::size_t(j)] = rr;
        std::copy_n(x.col(j), n, best_x.col(j));
      }
      worst = std::max(worst, rr);
    }
    if (worst <= options.target_residual) break;
    if (rep.iterations >= options.max_refine_iters) break;
    // Stalled (or diverging) refinement: a budget > 0 factorization only
    // preconditions apply(), so the contraction factor can approach 1.
    // Require a 2× reduction per sweep; the best iterate is kept anyway.
    if (worst > 0.5 * best_worst) break;
    best_worst = std::min(best_worst, worst);
    la::Matrix<T> d = fact.solve(res, direct);
    la::axpy(n * r, T(1), d.data(), x.data());
    ++rep.iterations;
  }

  rep.column_residuals.assign(std::size_t(r), 0.0);
  rep.converged = true;
  for (index_t j = 0; j < r; ++j) {
    std::copy_n(best_x.col(j), n, x.col(j));
    const double rr = best_rr[std::size_t(j)];
    rep.column_residuals[std::size_t(j)] = rr;
    rep.relative_residual = std::max(rep.relative_residual, rr);
    if (rr > options.target_residual) rep.converged = false;
  }
  return rep;
}

/// Block power iteration for the top eigenpairs of K̃ (orthonormalised by
/// modified Gram-Schmidt each step). Returns the Rayleigh quotients.
/// Works on any CompressedOperator backend; `workspace` as in CG.
template <typename T>
std::vector<double> power_iteration(const CompressedOperator<T>& a,
                                    index_t nev, index_t iterations = 50,
                                    std::uint64_t seed = 11,
                                    la::Matrix<T>* vectors_out = nullptr,
                                    EvalWorkspace<T>* workspace = nullptr) {
  const index_t n = a.size();
  check<Error>(nev >= 1 && nev <= n, "power_iteration: bad eigenpair count");
  EvalWorkspace<T> local_ws;
  EvalWorkspace<T>& ws = workspace != nullptr ? *workspace : local_ws;
  la::Matrix<T> v = la::Matrix<T>::random_normal(n, nev, seed);
  auto orthonormalise = [&](la::Matrix<T>& m) {
    for (index_t j = 0; j < m.cols(); ++j) {
      for (index_t k = 0; k < j; ++k) {
        const T proj = T(la::dot(n, m.col(k), m.col(j)));
        la::axpy(n, -proj, m.col(k), m.col(j));
      }
      const double nrm = la::nrm2(n, m.col(j));
      check<Error>(nrm > 0, "power_iteration: degenerate block");
      for (index_t i = 0; i < n; ++i) m(i, j) = T(double(m(i, j)) / nrm);
    }
  };
  orthonormalise(v);
  for (index_t it = 0; it < iterations; ++it) {
    v = a.apply(v, ws);
    orthonormalise(v);
  }
  la::Matrix<T> kv = a.apply(v, ws);
  std::vector<double> eig(static_cast<std::size_t>(nev));
  for (index_t j = 0; j < nev; ++j)
    eig[std::size_t(j)] = la::dot(n, v.col(j), kv.col(j));
  if (vectors_out != nullptr) *vectors_out = std::move(v);
  return eig;
}

}  // namespace gofmm
