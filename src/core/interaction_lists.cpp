// Near/far interaction lists (paper Algorithms 2.3-2.5 and Eq. 6).
//
// Near(β) — leaves only — holds the leaves containing at least one
// neighbor of β's indices, budget-capped by ballot; Far(β) holds maximal
// subtrees with no neighbor interaction against β, merged up the tree so
// common far nodes of two siblings migrate to the parent. Together the
// near pairs (dense blocks) and far pairs (skeleton low-rank blocks) tile
// the off-diagonal part of K exactly once — the structure in Figure 2.
#include <algorithm>
#include <unordered_map>

#include "core/gofmm.hpp"

namespace gofmm {

namespace {

/// True when subtree(alpha) contains any leaf ordinal in the sorted list.
bool intersects(const tree::Node* alpha,
                const std::vector<index_t>& sorted_leaf_ordinals) {
  const auto it =
      std::lower_bound(sorted_leaf_ordinals.begin(),
                       sorted_leaf_ordinals.end(), alpha->leaf_lo);
  return it != sorted_leaf_ordinals.end() && *it < alpha->leaf_hi;
}

}  // namespace

template <typename T>
void CompressedMatrix<T>::build_interaction_lists() {
  const auto& leaves = tree_->leaves();
  const index_t budget_cap =
      index_t(std::llround(config_.budget * double(num_leaves_)));

  // ---- LeafNear (Algorithm 2.3) with the budget ballot (Eq. 6) ----
  if (tree::has_distance(config_.distance) && neighbors_.kappa > 0) {
#pragma omp parallel for schedule(dynamic, 1)
    for (index_t li = 0; li < num_leaves_; ++li) {
      const tree::Node* beta = leaves[std::size_t(li)];
      NodeData& nd = data_[std::size_t(beta->id)];

      // Ballot: one vote per (index, neighbor) pair landing in a leaf.
      std::unordered_map<index_t, index_t> votes;
      for (index_t i : tree_->indices(beta))
        for (index_t j : neighbors_.of(i)) {
          if (j < 0) continue;
          const index_t ord = tree_->leaf_of(j)->leaf_lo;
          if (ord != li) votes[ord] += 1;
        }

      std::vector<std::pair<index_t, index_t>> ranked(votes.begin(),
                                                      votes.end());
      std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        return a.second != b.second ? a.second > b.second : a.first < b.first;
      });

      nd.near.push_back(beta);  // the diagonal block is always direct
      for (const auto& [ord, cnt] : ranked) {
        if (index_t(nd.near.size()) - 1 >= budget_cap) break;
        nd.near.push_back(leaves[std::size_t(ord)]);
      }
    }
  } else {
    // No distance: only the diagonal blocks are direct (pure HSS).
    for (const tree::Node* beta : leaves)
      data_[std::size_t(beta->id)].near.push_back(beta);
  }

  // ---- Symmetrise: α ∈ Near(β) ⇒ β ∈ Near(α) (may exceed the cap) ----
  if (config_.symmetric_near) {
    for (const tree::Node* beta : leaves) {
      for (const tree::Node* alpha : data_[std::size_t(beta->id)].near) {
        if (alpha == beta) continue;
        auto& other = data_[std::size_t(alpha->id)].near;
        if (std::find(other.begin(), other.end(), beta) == other.end())
          other.push_back(beta);
      }
    }
  }

  // Sorted near-leaf ordinals aggregated per node (union over the node's
  // leaves). The paper keys the ancestor test on Morton IDs; sorted
  // leaf-ordinal intervals answer the same query in O(log) time.
  for (const tree::Node* beta : leaves) {
    NodeData& nd = data_[std::size_t(beta->id)];
    nd.near_leaf_ordinals.reserve(nd.near.size());
    for (const tree::Node* alpha : nd.near)
      nd.near_leaf_ordinals.push_back(alpha->leaf_lo);
    std::sort(nd.near_leaf_ordinals.begin(), nd.near_leaf_ordinals.end());
  }
  for (const tree::Node* node : tree_->postorder()) {
    if (node->is_leaf()) continue;
    NodeData& nd = data_[std::size_t(node->id)];
    const auto& ll = data_[std::size_t(node->left()->id)].near_leaf_ordinals;
    const auto& rl = data_[std::size_t(node->right()->id)].near_leaf_ordinals;
    nd.near_leaf_ordinals.reserve(ll.size() + rl.size());
    std::merge(ll.begin(), ll.end(), rl.begin(), rl.end(),
               std::back_inserter(nd.near_leaf_ordinals));
    nd.near_leaf_ordinals.erase(std::unique(nd.near_leaf_ordinals.begin(),
                                            nd.near_leaf_ordinals.end()),
                                nd.near_leaf_ordinals.end());
  }

  // ---- Far lists: symmetric dual-tree sweep ----
  //
  // The paper builds Far via per-leaf FindFar (Alg. 2.4) followed by
  // MergeFar (Alg. 2.5). Under a budget-capped near ballot that pairing
  // can come out asymmetric at the margins (the two maximality conditions
  // reference different near lists), which would break the symmetry of K̃
  // that the paper requires. We therefore construct the identical
  // partition with the equivalent symmetric sweep: a pair (a, b) is far
  // (admissible) when no neighbor interaction links a's leaves to b —
  // the same Morton/near-list intersection test — and inadmissible sibling
  // pairs are split 4-ways until leaves (which are then near by
  // construction, since their mutual ordinals sit in each other's lists).
  {
    auto admissible = [&](const tree::Node* a, const tree::Node* b) {
      // Near lists are symmetric, so one direction suffices.
      return !intersects(b, data_[std::size_t(a->id)].near_leaf_ordinals);
    };
    std::vector<std::pair<const tree::Node*, const tree::Node*>> stack;
    for (const tree::Node* node : tree_->nodes())
      if (!node->is_leaf()) stack.emplace_back(node->left(), node->right());
    while (!stack.empty()) {
      const auto [a, b] = stack.back();
      stack.pop_back();
      if (admissible(a, b)) {
        data_[std::size_t(a->id)].far.push_back(b);
        data_[std::size_t(b->id)].far.push_back(a);
      } else if (!a->is_leaf()) {
        stack.emplace_back(a->left(), b->left());
        stack.emplace_back(a->left(), b->right());
        stack.emplace_back(a->right(), b->left());
        stack.emplace_back(a->right(), b->right());
      }
      // Inadmissible leaf pairs are exactly the near pairs built above.
    }
    for (const tree::Node* node : tree_->nodes()) {
      auto& far = data_[std::size_t(node->id)].far;
      std::sort(far.begin(), far.end(),
                [](const tree::Node* x, const tree::Node* y) {
                  return x->id < y->id;
                });
    }
  }

  // ---- Which nodes need skeletons? (preorder: a node does if it has far
  // interactions or its parent needs one — nested bases) ----
  for (const tree::Node* node : tree_->nodes()) {
    NodeData& nd = data_[std::size_t(node->id)];
    const bool parent_needs =
        node->parent != nullptr &&
        data_[std::size_t(node->parent->id)].needs_skeleton;
    nd.needs_skeleton = parent_needs || !nd.far.empty();
    // tree_->nodes() is preorder, so parents precede children.
  }

  // ---- Statistics ----
  index_t near_pairs = 0;
  index_t far_pairs = 0;
  double direct_entries = 0;
  for (const tree::Node* node : tree_->nodes()) {
    const NodeData& nd = data_[std::size_t(node->id)];
    far_pairs += index_t(nd.far.size());
    near_pairs += index_t(nd.near.size());
    for (const tree::Node* alpha : nd.near)
      direct_entries += double(node->count) * double(alpha->count);
  }
  stats_.num_near_pairs = near_pairs;
  stats_.num_far_pairs = far_pairs;
  stats_.near_fraction = direct_entries / (double(n_) * double(n_));
}

template void CompressedMatrix<float>::build_interaction_lists();
template void CompressedMatrix<double>::build_interaction_lists();

}  // namespace gofmm
