// Hierarchical factorization & solve subsystem.
//
// UlvFactorization is a symmetric ULV-style factorization of the nested
// (HSS) part of a GOFMM compression: the exact leaf diagonal blocks
// K(β, β) + λI plus, at every interior node, the skeleton-basis coupling
// between its two children,
//
//   K̃_p = blkdiag(K̃_l, K̃_r) + W M Wᵀ,
//   W = blkdiag(V_l, V_r),  M = [[0, B], [Bᵀ, 0]],  B = K(l̃, r̃),
//
// where V_α is the nested interpolation basis assembled from the
// telescoping GOFMM projection matrices (V_leaf = P_{α̃α}ᵀ, V_p =
// blkdiag(V_l, V_r) P_{α̃[l̃r̃]}ᵀ). Bottom-up block elimination applies the
// Woodbury identity at each level; the nesting lets every per-node solve
// operator Φ_β = K̃_β⁻¹ V_β and Gram matrix S_β = V_βᵀ K̃_β⁻¹ V_β be
// updated from the children's in O(|β| r²), so the factorization costs
// O(N r² log N) work and O(N r log N) memory, and each solve() costs
// O(N r log N) — near-linear, the "factorization of K" the paper leaves
// to future work, realised on the GOFMM structure (cf. Schäfer-Sullivan-
// Owhadi and the "compress and eliminate" solvers).
//
// For a pure HSS compression (budget 0) the factored operator IS the
// compressed operator, so solve() inverts apply() to round-off. With a
// direct budget > 0 the near/far corrections outside the nested part are
// dropped and solve() is a preconditioner-quality approximate inverse.
//
// Thread safety: construction mutates only this object; solve()/logdet()
// are const, allocate all scratch locally, and run the same sequential
// recursion every call — concurrent solves on one factorization are safe
// and bit-identical.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/gofmm.hpp"
#include "core/operator.hpp"
#include "la/matrix.hpp"

namespace gofmm {

/// ULV/Woodbury factors of the HSS part of one CompressedMatrix (+ λI).
template <typename T>
class UlvFactorization {
 public:
  /// Factors the nested part of `kc` plus `regularization`·I. Throws
  /// StateError when a leaf block (plus λ) is not positive definite or a
  /// capacitance system is singular — increase λ in those cases.
  UlvFactorization(const CompressedMatrix<T>& kc, T regularization);

  /// x = (HSS(kc) + λI)⁻¹ b for N-by-r right-hand sides. Const,
  /// thread-safe, bit-deterministic.
  [[nodiscard]] la::Matrix<T> solve(const la::Matrix<T>& b) const;

  /// log det(HSS(kc) + λI); throws StateError if the factored operator is
  /// not positive definite.
  [[nodiscard]] double logdet() const;

  [[nodiscard]] const FactorizationStats& stats() const { return stats_; }

 private:
  /// Per-node factors, indexed by tree::Node::id. Immutable after build.
  struct FNode {
    la::Matrix<T> chol;      ///< leaf: lower Cholesky of K(β,β) + λI
    la::Matrix<T> v;         ///< |β|-by-r nested basis V_β (tree-ordered)
    la::Matrix<T> phi;       ///< |β|-by-r solve operator (K̃_β+λI)⁻¹ V_β
    la::Matrix<T> s;         ///< r-by-r Gram V_βᵀ (K̃_β+λI)⁻¹ V_β
    la::Matrix<T> coupling;  ///< B = K(l̃, r̃), r_l-by-r_r
    la::Matrix<T> cap;       ///< LU of C = I + blkdiag(S_l,S_r)·M
    std::vector<index_t> cap_pivots;
    [[nodiscard]] bool has_coupling() const { return cap.rows() > 0; }
  };

  void factor_leaf(const tree::Node* node, T regularization);
  void factor_internal(const tree::Node* node);
  /// Solves (K̃_node + λI) x = b in place; b holds the node's local rows.
  void solve_node(const tree::Node* node, la::Matrix<T>& b) const;

  const CompressedMatrix<T>& kc_;  ///< owner; outlives this object
  std::vector<FNode> fn_;
  FactorizationStats stats_;
  double logdet_ = 0;
  int det_sign_ = 1;
};

extern template class UlvFactorization<float>;
extern template class UlvFactorization<double>;

/// Builds the standard two-level preconditioner setup: compresses `k` at
/// a coarse tolerance with budget 0 (pure HSS, so the ULV factorization
/// captures every coupling) and factorizes (K̃_coarse + λI), escalating λ
/// from `regularization` as needed until the factorization is verified
/// positive definite (PCG breaks on an indefinite preconditioner; the λ
/// actually used is reported by factorization_stats().regularization).
/// The result plugs into preconditioned_solve() / conjugate_gradient()
/// against a fine-tolerance operator of the same matrix.
template <typename T>
std::unique_ptr<CompressedMatrix<T>> make_preconditioner(
    std::shared_ptr<const SPDMatrix<T>> k, T regularization,
    Config coarse = Config::defaults().with_tolerance(1e-4));

extern template std::unique_ptr<CompressedMatrix<float>>
make_preconditioner<float>(std::shared_ptr<const SPDMatrix<float>>, float,
                           Config);
extern template std::unique_ptr<CompressedMatrix<double>>
make_preconditioner<double>(std::shared_ptr<const SPDMatrix<double>>, double,
                            Config);

}  // namespace gofmm
