// Hierarchical factorization & solve subsystem.
//
// UlvFactorization is a symmetric ULV-style factorization of a
// hierarchically semi-separable operator described by an HssView
// (core/hss_view.hpp): exact leaf diagonal blocks K(β, β) + λI plus, at
// every interior node, the low-rank coupling between its two children,
//
//   K̃_p = blkdiag(K̃_l, K̃_r) + W M Wᵀ,
//   W = blkdiag(V_l, V_r),  M = [[0, B], [Bᵀ, 0]].
//
// Bottom-up block elimination applies the Woodbury identity at each level.
// For Nested views (GOFMM, randomized HSS) the bases telescope, so every
// per-node solve operator Φ_β = K̃_β⁻¹ V_β and Gram matrix S_β = V_βᵀ Φ_β
// is updated from the children's in O(|β| r²): the factorization costs
// O(N r² log N) work and O(N r log N) memory, each solve O(N r log N).
// For Explicit views (HODLR) each Φ is computed by a subtree solve — the
// classical O(N log² N) HODLR direct factorization — through the very same
// elimination and solve code. One engine, every backend; this is the
// "factorization of K" the paper leaves to future work, realised on the
// GOFMM structure (cf. Schäfer-Sullivan-Owhadi and the "compress and
// eliminate" solvers).
//
// Leaves are eliminated by Cholesky when positive definite and by
// Bunch–Kaufman pivoted LDLᵀ (la/ldlt.hpp) when not — compression error or
// a small/negative λ no longer aborts the factorization (see Elimination
// in core/operator.hpp); the LDLᵀ inertia keeps the log-determinant sign
// bookkeeping exact. The construction snapshots every λ-independent
// payload (leaf diagonals, bases/transfer maps, couplings), so
// refactorize(λ') re-eliminates with a new shift WITHOUT touching the view
// or the entry oracle again — the cheap path for λ escalation and
// kernel-regression λ sweeps, bit-identical to a fresh factorization.
//
// For a pure HSS compression (budget 0), randomized HSS, or HODLR, the
// factored operator IS the compressed operator, so solve() inverts apply()
// to round-off. With a direct budget > 0 the near/far corrections outside
// the nested part are dropped and solve() is a preconditioner-quality
// approximate inverse.
//
// solve() runs the elimination sweep level by level: every node of a level
// touches a disjoint tree-ordered row range, so the nodes of one level run
// under an OpenMP parallel-for with a barrier between levels — the same
// scheduling as the LevelByLevel evaluation engine. Each node performs a
// fixed sequence of GEMMs on its own rows regardless of thread count or
// schedule, so the parallel sweep is bit-identical to the sequential
// recursion (SweepMode::Sequential keeps the recursion for verification).
// Right-hand sides are blocked: solve(N-by-r) performs ONE sweep whose
// GEMMs are r columns wide instead of r sequential sweeps.
//
// Thread safety: construction and refactorize() mutate only this object
// (the view is read during construction, then dropped — the factorization
// owns a topology-and-payload snapshot and outlives both the view and, for
// solves, the backend). solve()/logdet() are const, allocate all scratch
// locally, and are bit-deterministic — concurrent solves on one
// factorization are safe; refactorize() must not race them.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/gofmm.hpp"
#include "core/hss_view.hpp"
#include "core/operator.hpp"
#include "la/matrix.hpp"

namespace gofmm {

/// Traversal used by UlvFactorization::solve (results are bit-identical).
enum class SweepMode {
  LevelParallel,  ///< level-synchronous OpenMP sweep (default)
  Sequential,     ///< sequential postorder recursion (verification path)
};

/// ULV/Woodbury factors of one HssView'd hierarchical operator (+ λI).
template <typename T>
class UlvFactorization {
 public:
  /// Factors the operator described by `view` plus `regularization`·I. The
  /// view is only read during construction (every λ-independent payload is
  /// snapshotted for refactorize()). λ may be any finite value — negative
  /// shifts eliminate through the pivoted-LDLᵀ leaf path unless
  /// `options.elimination` forces Cholesky. Throws StateError when a leaf
  /// block refuses to eliminate (Cholesky mode and not positive definite,
  /// or exactly singular under LDLᵀ) or a capacitance system is singular —
  /// adjust λ in those cases.
  UlvFactorization(const HssView<T>& view, T regularization,
                   FactorizeOptions options = {});

  /// Re-eliminates with a new λ, reusing the snapshotted λ-independent
  /// payloads (leaf diagonals, bases, transfer maps, couplings): only the
  /// leaf factorizations, capacitance systems, and telescoped Φ/S are
  /// recomputed — no view, oracle, or basis work. Bit-identical to
  /// constructing a fresh factorization of the same view at the new λ.
  /// On throw (same conditions as the constructor) the factors are
  /// inconsistent and the factorization must be discarded.
  void refactorize(T regularization);

  /// x = (K̃ + λI)⁻¹ b for N-by-r right-hand sides — one blocked sweep with
  /// r-wide GEMMs. Const, thread-safe, bit-deterministic; both sweep modes
  /// produce bit-identical results.
  [[nodiscard]] la::Matrix<T> solve(
      const la::Matrix<T>& b, SweepMode sweep = SweepMode::LevelParallel) const;

  /// log det(K̃ + λI); throws StateError if the factored operator is not
  /// positive definite (use log_abs_det()/det_sign() for indefinite
  /// operators).
  [[nodiscard]] double logdet() const;

  /// log |det(K̃ + λI)| — defined for indefinite operators too, from the
  /// leaf LDLᵀ inertia and capacitance LU diagonals.
  [[nodiscard]] double log_abs_det() const { return logdet_; }

  /// Sign of det(K̃ + λI) (+1 or -1) as tracked through the elimination.
  [[nodiscard]] int det_sign() const { return det_sign_; }

  /// Work counters of the latest factorize()/refactorize().
  [[nodiscard]] const FactorizationStats& stats() const { return stats_; }

 private:
  /// Per-node factors, indexed by HssTopoNode::id. Immutable between
  /// eliminations.
  struct FNode {
    /// Leaf factorization of K(β,β) + λI: lower Cholesky, or Bunch–Kaufman
    /// LDLᵀ when leaf_pivots is nonempty.
    la::Matrix<T> leaf_fac;
    std::vector<index_t> leaf_pivots;  ///< empty means Cholesky
    la::Matrix<T> v;         ///< |β|-by-r parent-facing basis (tree-ordered)
    la::Matrix<T> phi;       ///< |β|-by-r solve operator (K̃_β+λI)⁻¹ V_β
    la::Matrix<T> s;         ///< r-by-r Gram V_βᵀ (K̃_β+λI)⁻¹ V_β
    la::Matrix<T> coupling;  ///< B, r_l-by-r_r (empty when identity_coupling)
    la::Matrix<T> cap;       ///< LU of C = I + blkdiag(S_l,S_r)·M
    std::vector<index_t> cap_pivots;
    /// View returned an empty coupling(): B = I by convention, and every
    /// GEMM against B is skipped (see HssView::coupling).
    bool identity_coupling = false;
    [[nodiscard]] bool has_coupling() const { return cap.rows() > 0; }
  };

  /// λ-independent payloads snapshotted from the view at construction so
  /// refactorize() never touches the view again. (Bases live in FNode::v,
  /// couplings in FNode::coupling.)
  struct PayloadCache {
    la::Matrix<T> leaf_k;    ///< leaf: K(β, β) WITHOUT the λ shift
    la::Matrix<T> transfer;  ///< nested interior: the (r_l+r_r)-by-r_p map E
  };

  /// One full bottom-up elimination at shift `regularization`. During
  /// construction view_ is non-null and payloads are fetched-and-cached;
  /// refactorize() runs the very same code against the cache (bit-identical
  /// by construction). Resets and refills every λ-dependent factor/stat.
  void eliminate(T regularization);
  void factor_leaf(index_t id, T regularization);
  void factor_internal(index_t id);
  /// Explicit-basis path: Φ_β = (K̃_β + λI)⁻¹ V_β by a subtree solve, run
  /// after β's own capacitance is factored.
  void attach_explicit_basis(index_t id);
  /// Leaf block solve through whichever factorization the leaf holds.
  void leaf_solve(const FNode& f, la::Matrix<T>& b) const;
  /// One node of the elimination sweep applied to the tree-ordered x:
  /// leaf solve, or the interior Woodbury downdate (children — i.e. every
  /// deeper level — must already be done).
  void sweep_node(index_t id, la::Matrix<T>& x) const;
  /// The Woodbury downdate of one coupled interior node, applied to its
  /// children's already-solved row blocks (shared by both sweep modes so
  /// they are bit-identical by construction).
  void coupling_downdate(index_t id, la::Matrix<T>& top,
                         la::Matrix<T>& bot) const;
  /// Solves (K̃_id + λI) b = b in place; b holds the node's local rows.
  void solve_subtree(index_t id, la::Matrix<T>& b) const;

  index_t n_ = 0;
  index_t root_ = 0;
  FactorizeOptions options_;
  /// Non-null only while the constructor runs (payload fetch phase).
  const HssView<T>* view_ = nullptr;
  std::vector<HssTopoNode> topo_;             ///< snapshot of the view
  std::vector<index_t> post_;                 ///< postorder node ids
  std::vector<std::vector<index_t>> levels_;  ///< node ids by depth
  std::vector<index_t> subtree_depth_;        ///< levels below each node, >= 1
  std::vector<index_t> declared_rank_;        ///< basis_rank() snapshot
  std::vector<BasisKind> basis_kind_;         ///< basis_kind() snapshot
  std::vector<index_t> perm_;                 ///< tree-ordering (may be empty)
  std::vector<FNode> fn_;
  std::vector<PayloadCache> cache_;
  FactorizationStats stats_;
  double logdet_ = 0;
  int det_sign_ = 1;
  index_t leaf_negative_ = 0;  ///< negative leaf LDLᵀ eigenvalues
};

extern template class UlvFactorization<float>;
extern template class UlvFactorization<double>;

/// Builds the standard two-level preconditioner setup: compresses `k` at
/// a coarse tolerance with budget 0 (pure HSS, so the ULV factorization
/// captures every coupling), factorizes (K̃_coarse + λI) once, then
/// escalates λ from `regularization` via cheap refactorize() calls — no
/// oracle traffic or basis rebuilds — until the factorization is verified
/// positive definite (PCG breaks on an indefinite preconditioner; the λ
/// actually used is reported by factorization_stats().regularization).
/// The result plugs into preconditioned_solve() / conjugate_gradient()
/// against a fine-tolerance operator of the same matrix.
template <typename T>
std::unique_ptr<CompressedMatrix<T>> make_preconditioner(
    std::shared_ptr<const SPDMatrix<T>> k, T regularization,
    Config coarse = Config::defaults().with_tolerance(1e-4));

extern template std::unique_ptr<CompressedMatrix<float>>
make_preconditioner<float>(std::shared_ptr<const SPDMatrix<float>>, float,
                           Config);
extern template std::unique_ptr<CompressedMatrix<double>>
make_preconditioner<double>(std::shared_ptr<const SPDMatrix<double>>, double,
                            Config);

}  // namespace gofmm
