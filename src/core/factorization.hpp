// Hierarchical factorization & solve subsystem.
//
// UlvFactorization factors a hierarchically semi-separable operator
// described by an HssView (core/hss_view.hpp): exact leaf diagonal blocks
// K(β, β) + λI plus, at every interior node, the low-rank coupling between
// its two children,
//
//   K̃_p = blkdiag(K̃_l, K̃_r) + W M Wᵀ,
//   W = blkdiag(V_l, V_r),  M = [[0, B], [Bᵀ, 0]].
//
// Two elimination structures share this engine (UlvMode):
//
// ORTHOGONAL (Nested views — GOFMM, randomized HSS; the default). Per node
// the engine computes ONCE, at construction, the Householder QR of the
// node's parent-facing basis, V = Q [R; 0] (la/qr.hpp), and stores Q in
// geqrt form (la::QrFactors: reflectors plus the per-panel compact-WY T
// factors), so every application during eliminate/solve sweeps is pure
// GEMMs with zero larft rebuilds. Rotating a node's block by its Q zeroes
// the off-diagonal
// coupling below the leading r rows, so the trailing rows close over
// themselves and are eliminated by a dense factorization of the rotated
// trailing block Ĝ; the kept r rows carry a Schur complement and the
// reduced basis R up to the parent, where the children's R factors stack
// into the next basis ([R_l E_top; R_r E_bot]) and the reduced coupling
// B̃ = R_l B R_rᵀ — both λ-independent. Because Qᵀ(A + λI)Q = QᵀAQ + λI,
// EVERYTHING except the small dense block factorizations is λ-independent:
// rotations, rotated leaf blocks QᵀK(β,β)Q, reduced couplings, and the
// elimination order are all computed once, and refactorize(λ') re-factors
// only the rotated diagonal blocks — no view walk, no oracle reads, no
// basis or Gram work (the compress-and-eliminate structure of Sushnikova–
// Oseledets / STRUMPACK, in the spirit of Schäfer–Sullivan–Owhadi).
// A further payoff: orthogonal similarity preserves inertia and the Schur
// chain adds it (Haynsworth), so the block inertias sum to the EXACT
// inertia of the factored operator — positive_definite is a certificate,
// not a heuristic, and signed log-determinants read off the blocks.
//
// WOODBURY (Explicit views — HODLR; forceable on any view). The classic
// path: leaves factor K(β, β) + λI directly, every interior node folds the
// sibling coupling in with a Woodbury capacitance system over the per-node
// solve operators Φ_β = (K̃_β + λI)⁻¹ V_β and Grams S_β = V_βᵀ Φ_β. For
// Explicit bases each Φ comes from a subtree solve — the classical
// O(N log² N) HODLR direct factorization. Φ and S depend on λ, so a
// Woodbury retune re-eliminates most of the factorization (still with
// zero oracle traffic, against the construction-time payload snapshot).
//
// For a pure HSS compression (budget 0), randomized HSS, or HODLR, the
// factored operator IS the compressed operator, so solve() inverts apply()
// to round-off. With a direct budget > 0 the near/far corrections outside
// the nested part are dropped and solve() is a preconditioner-quality
// approximate inverse.
//
// solve() runs level-synchronous sweeps: nodes of one level touch disjoint
// tree-ordered row ranges, so each level runs under an OpenMP parallel-for
// with a barrier between levels (orthogonal mode sweeps up — rotate,
// eliminate — then down — back-substitute, rotate back; Woodbury mode is
// the single bottom-up downdate sweep). Each node performs a fixed GEMM
// sequence on its own rows regardless of thread count or schedule, so the
// parallel sweep is bit-identical to the sequential recursion
// (SweepMode::Sequential keeps the recursion for verification).
// Right-hand sides are blocked: solve(N-by-r) performs ONE sweep whose
// GEMMs are r columns wide instead of r sequential sweeps.
//
// Thread safety: construction and refactorize() mutate only this object
// (the view is read during construction, then dropped — the factorization
// owns a topology-and-payload snapshot and outlives both the view and, for
// solves, the backend). solve()/logdet() are const, allocate all scratch
// locally, and are bit-deterministic — concurrent solves on one
// factorization are safe; refactorize() must not race them.
#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/gofmm.hpp"
#include "core/hss_view.hpp"
#include "core/operator.hpp"
#include "la/matrix.hpp"
#include "la/qr.hpp"

namespace gofmm {

/// Traversal used by UlvFactorization::solve (results are bit-identical).
enum class SweepMode {
  LevelParallel,  ///< level-synchronous OpenMP sweep (default)
  Sequential,     ///< sequential postorder recursion (verification path)
};

/// ULV factors of one HssView'd hierarchical operator (+ λI).
template <typename T>
class UlvFactorization {
 public:
  /// Factors the operator described by `view` plus `regularization`·I. The
  /// view is only read during construction (every λ-independent quantity —
  /// rotations, rotated leaf blocks, reduced couplings, or the Woodbury
  /// path's payload snapshot — is built here and never refetched). λ may
  /// be any finite value — negative shifts eliminate through the pivoted-
  /// LDLᵀ block path unless `options.elimination` forces Cholesky. Throws
  /// StateError when a block refuses to eliminate (Cholesky mode and not
  /// positive definite, or exactly singular under LDLᵀ) — adjust λ in
  /// those cases — and Error when options.mode forces Orthogonal on a view
  /// with Explicit (non-nested) bases.
  UlvFactorization(const HssView<T>& view, T regularization,
                   FactorizeOptions options = {});

  /// Re-eliminates with a new λ. Orthogonal mode re-factors ONLY the small
  /// rotated diagonal blocks (λI commutes through the stored rotations);
  /// Woodbury mode re-runs the elimination over the payload snapshot. In
  /// both modes there is zero view or oracle traffic and the result is
  /// bit-identical to constructing a fresh factorization of the same view
  /// at the new λ. On throw (same conditions as the constructor) the
  /// factors are inconsistent and the factorization must be discarded.
  void refactorize(T regularization);

  /// x = (K̃ + λI)⁻¹ b for N-by-r right-hand sides — one blocked sweep with
  /// r-wide GEMMs. Const, thread-safe, bit-deterministic; both sweep modes
  /// produce bit-identical results.
  [[nodiscard]] la::Matrix<T> solve(
      const la::Matrix<T>& b, SweepMode sweep = SweepMode::LevelParallel) const;

  /// log det(K̃ + λI); throws StateError if the factored operator is not
  /// positive definite (use log_abs_det()/det_sign() for indefinite
  /// operators).
  [[nodiscard]] double logdet() const;

  /// log |det(K̃ + λI)| — defined for indefinite operators too, from the
  /// eliminated-block inertias (orthogonal mode) or the leaf LDLᵀ inertia
  /// plus capacitance LU diagonals (Woodbury mode).
  [[nodiscard]] double log_abs_det() const { return logdet_; }

  /// Sign of det(K̃ + λI) (+1 or -1) as tracked through the elimination.
  [[nodiscard]] int det_sign() const { return det_sign_; }

  /// Elimination structure actually used (UlvMode::Auto resolved at
  /// construction: Orthogonal for all-Nested views, Woodbury otherwise).
  [[nodiscard]] UlvMode mode() const { return mode_; }

  /// Storage precision actually used (normalised at construction:
  /// Precision::MixedF32 on a float operator IS the native path, so it
  /// reports Precision::Double — "native scalar").
  [[nodiscard]] Precision precision() const { return options_.precision; }

  /// Max over stored rotations of ‖QᵀQ − I‖_F, measured by applying each
  /// node's reflectors to the identity. Diagnostic for the orthogonality
  /// contract the λ-retune rests on (≤ dim·ε for Householder Q); returns 0
  /// in Woodbury mode (no rotations are stored).
  [[nodiscard]] double rotation_orthogonality_error() const;

  /// Work counters of the latest factorize()/refactorize().
  [[nodiscard]] const FactorizationStats& stats() const { return stats_; }

 private:
  /// Per-node factors of the WOODBURY elimination, indexed by
  /// HssTopoNode::id. Immutable between eliminations.
  struct FNode {
    /// Leaf factorization of K(β,β) + λI: lower Cholesky, or Bunch–Kaufman
    /// LDLᵀ when leaf_pivots is nonempty.
    la::Matrix<T> leaf_fac;
    std::vector<index_t> leaf_pivots;  ///< empty means Cholesky
    la::Matrix<T> v;         ///< |β|-by-r parent-facing basis (tree-ordered)
    la::Matrix<T> phi;       ///< |β|-by-r solve operator (K̃_β+λI)⁻¹ V_β
    la::Matrix<T> s;         ///< r-by-r Gram V_βᵀ (K̃_β+λI)⁻¹ V_β
    la::Matrix<T> coupling;  ///< B, r_l-by-r_r (empty when identity_coupling)
    la::Matrix<T> cap;       ///< LU of C = I + blkdiag(S_l,S_r)·M
    std::vector<index_t> cap_pivots;
    /// View returned an empty coupling(): B = I by convention, and every
    /// GEMM against B is skipped (see HssView::coupling).
    bool identity_coupling = false;
    [[nodiscard]] bool has_coupling() const { return cap.rows() > 0; }
  };

  /// Per-node factors of the ORTHOGONAL elimination. Everything above the
  /// marker is λ-independent (built once at construction); the fields
  /// below it are refilled by every eliminate — they are the ONLY
  /// λ-dependent state.
  struct ONode {
    /// Stacked-basis QR in geqrt form: reflectors + tau + the cached
    /// per-panel compact-WY V/T blocks, so sweep applications never
    /// rebuild T (dim×kept reflectors).
    la::QrFactors<T> qf;
    la::Matrix<T> rk;    ///< kept (reduced) basis R, kept×kept upper
    /// Cached rotated λ-independent block Qᵀ A₀ Q: always present at
    /// leaves (A₀ = K(β,β)); present at an interior node when every
    /// contributing child is `shifted` — then the whole subtree's
    /// λ-dependence is the single +λI that commutes through Q, and the
    /// retune skips this node's assembly AND rotation.
    la::Matrix<T> a0;
    la::Matrix<T> bt;      ///< interior: reduced coupling B̃ = R_l B R_rᵀ
    /// Row blocks of the dense Q (k_l-by-dim / k_r-by-dim), materialised
    /// only where a per-λ rotation is unavoidable (interior, kept > 0, a0
    /// not cacheable). The λ-dependent part of the reduced system is block
    /// diagonal, so Qᵀ A Q = Q_tᵀ S_l Q_t + Q_bᵀ S_r Q_b + base0 — large
    /// GEMMs over HALF of A instead of reflector sweeps over all of it.
    la::Matrix<T> qtop;
    la::Matrix<T> qbot;
    /// Cached rotated λ-independent part of the reduced system: the
    /// coupling [[0, B̃], [B̃ᵀ, 0]] plus, for every low-rank child (see
    /// lowrank_l/r), that child's E₀ diagonal block.
    la::Matrix<T> base0;
    /// Per-λ rotation shortcut for a child whose OWN rotated block is
    /// cached: its Schur is S(λ) = E₀ + λI − F̂₀ w(λ) with F̂₀ fixed and
    /// rank elim < kept, so Q_iᵀ S Q_i = [base0 part] + λ·(Q_iᵀQ_i) −
    /// (Q_iᵀF̂₀)(w(λ) Q_i) — a cached Gram plus a thin downdate using the
    /// w the child computes per λ anyway. Chosen at build (structurally,
    /// so retunes stay bit-identical) exactly when it saves flops.
    bool lowrank_l = false;
    bool lowrank_r = false;
    la::Matrix<T> qq_l;  ///< Q_tᵀ Q_t (dim×dim), cached when lowrank_l
    la::Matrix<T> qq_r;  ///< Q_bᵀ Q_b (dim×dim), cached when lowrank_r
    la::Matrix<T> u_l;   ///< Q_tᵀ F̂₀_l (dim×elim_l), cached when lowrank_l
    la::Matrix<T> u_r;   ///< Q_bᵀ F̂₀_r (dim×elim_r), cached when lowrank_r
    /// Some parent reads this node's dense Schur per λ (split rotation or
    /// unrotated assembly); false lets the retune skip computing it.
    bool schur_needed = false;
    index_t dim = 0;     ///< node system size (leaf: |β|; interior: k_l+k_r)
    index_t kept = 0;    ///< rows passed to the parent (0 = eliminate all)
    bool coupled = false;    ///< B̃ present (else block-diagonal assembly)
    bool a0_cached = false;  ///< a0 holds the full rotated block
    /// Node eliminates nothing (kept == dim) and a0 is cached: its Schur
    /// complement is EXACTLY a0 + λI, so no per-λ work happens here at
    /// all — the λ-linear frontier the cheap retune rests on.
    bool shifted = false;
    // λ-dependent factors, refilled by every eliminate(λ):
    la::Matrix<T> gfac;         ///< factor of the trailing block Ĝ
    std::vector<index_t> gpiv;  ///< LDLᵀ pivots of gfac (empty = Cholesky)
    la::Matrix<T> fhat;         ///< F̂ = Â(0:kept, kept:dim)
    la::Matrix<T> w;            ///< Ĝ⁻¹ F̂ᵀ (solve downdates become GEMMs)
    la::Matrix<T> schur;        ///< S = Ê − F̂ w, the parent's diagonal block
  };

  /// λ-independent payloads snapshotted from the view at construction so
  /// the Woodbury refactorize() never touches the view again. (Bases live
  /// in FNode::v, couplings in FNode::coupling.)
  struct PayloadCache {
    la::Matrix<T> leaf_k;    ///< leaf: K(β, β) WITHOUT the λ shift
    la::Matrix<T> transfer;  ///< nested interior: the (r_l+r_r)-by-r_p map E
  };

  /// Per-node scratch tally of one parallel elimination sweep: the nodes
  /// of a level eliminate concurrently into their own tally, then the
  /// tallies fold into logdet/inertia/stats in FIXED postorder — the
  /// reduction is bit-identical for any thread count or schedule.
  struct OrthoTally {
    double logdet = 0;           ///< log|det| of this node's factored block
    int sign = 1;                ///< sign of that determinant
    index_t negative = 0;        ///< negative eigenvalues of the block
    bool ldlt = false;           ///< block eliminated via pivoted LDLᵀ
    std::uint64_t flops = 0;     ///< work of this node's elimination
  };

  // --- shared structure -----------------------------------------------
  void snapshot_topology(const HssView<T>& view);
  /// Factors one symmetric block in place per options_.elimination,
  /// accumulating logdet/inertia into `tally`; returns via `pivots`
  /// (empty = Cholesky).
  void factor_block(la::Matrix<T>& block, std::vector<index_t>& pivots,
                    OrthoTally& tally) const;
  /// Solves block_factor · x = b in place (Cholesky or LDLᵀ).
  static void block_solve(const la::Matrix<T>& fac,
                          const std::vector<index_t>& pivots,
                          la::Matrix<T>& b);
  void reset_lambda_stats(T regularization);
  void finish_stats();

  // --- orthogonal elimination ------------------------------------------
  /// One-time structure build: rotations (geqrf), rotated leaf blocks,
  /// reduced couplings, kept ranks, and the solve slot lists.
  void build_orthogonal(const HssView<T>& view);
  /// λ-dependent part: factor rotated trailing blocks bottom-up, one
  /// OpenMP parallel-for per level (nodes of a level are independent).
  void eliminate_orthogonal(T regularization);
  void ortho_eliminate_node(index_t id, T regularization, OrthoTally& tally);
  /// Upward solve step of one node: gather, rotate by Qᵀ, eliminate the
  /// trailing rows, park their partial solution.
  void ortho_up_node(index_t id, la::Matrix<T>& x) const;
  /// Downward step: recover the trailing rows, rotate back by Q, scatter.
  void ortho_down_node(index_t id, la::Matrix<T>& x) const;
  void ortho_solve_recursive_up(index_t id, la::Matrix<T>& x) const;
  void ortho_solve_recursive_down(index_t id, la::Matrix<T>& x) const;

  // --- Woodbury elimination --------------------------------------------
  /// One full bottom-up elimination at shift `regularization`. During
  /// construction view_ is non-null and payloads are fetched-and-cached;
  /// refactorize() runs the very same code against the cache (bit-identical
  /// by construction). Resets and refills every λ-dependent factor/stat.
  void eliminate_woodbury(T regularization);
  void factor_leaf(index_t id, T regularization);
  void factor_internal(index_t id);
  /// Explicit-basis path: Φ_β = (K̃_β + λI)⁻¹ V_β by a subtree solve, run
  /// after β's own capacitance is factored.
  void attach_explicit_basis(index_t id);
  /// Leaf block solve through whichever factorization the leaf holds.
  void leaf_solve(const FNode& f, la::Matrix<T>& b) const;
  /// One node of the elimination sweep applied to the tree-ordered x:
  /// leaf solve, or the interior Woodbury downdate (children — i.e. every
  /// deeper level — must already be done).
  void sweep_node(index_t id, la::Matrix<T>& x) const;
  /// The Woodbury downdate of one coupled interior node, applied to its
  /// children's already-solved row blocks (shared by both sweep modes so
  /// they are bit-identical by construction).
  void coupling_downdate(index_t id, la::Matrix<T>& top,
                         la::Matrix<T>& bot) const;
  /// Solves (K̃_id + λI) b = b in place; b holds the node's local rows.
  void solve_subtree(index_t id, la::Matrix<T>& b) const;

  // --- mixed precision ---------------------------------------------------
  /// Copies the float engine's counters/logdet into this object's fields,
  /// restamping the precision tag, the true λ, and the double-path flop
  /// ledger semantics (memory_bytes stays the float engine's — that IS the
  /// resident footprint).
  void adopt_low_stats(T regularization);

  index_t n_ = 0;
  index_t root_ = 0;
  FactorizeOptions options_;
  UlvMode mode_ = UlvMode::Woodbury;  ///< resolved (never Auto) after ctor
  /// Non-null only while the constructor runs (payload fetch phase).
  const HssView<T>* view_ = nullptr;
  std::vector<HssTopoNode> topo_;             ///< snapshot of the view
  std::vector<index_t> post_;                 ///< postorder node ids
  std::vector<std::vector<index_t>> levels_;  ///< node ids by depth
  std::vector<index_t> subtree_depth_;        ///< levels below each node, >= 1
  std::vector<index_t> declared_rank_;        ///< basis_rank() snapshot
  std::vector<BasisKind> basis_kind_;         ///< basis_kind() snapshot
  std::vector<index_t> perm_;                 ///< tree-ordering (may be empty)
  std::vector<FNode> fn_;                     ///< Woodbury factors
  std::vector<ONode> on_;                     ///< orthogonal factors
  /// Orthogonal solve slot lists: the tree-ordered workspace rows holding
  /// an interior node's reduced system (children's kept slots, left then
  /// right). Leaves use their contiguous row range directly.
  std::vector<std::vector<index_t>> slots_;
  std::vector<PayloadCache> cache_;
  /// The entire factorization when Precision::MixedF32 is requested on a
  /// double operator: a float engine built over a payload-demoting view
  /// (all storage — rotations, rotated blocks, couplings — at half the
  /// bytes, sweeps on the 8-lane f32 kernels). The outer object then only
  /// demotes b / promotes x at the solve boundary and mirrors
  /// stats/logdet/inertia. Null on native-precision factorizations.
  std::unique_ptr<UlvFactorization<float>> low_;
  FactorizationStats stats_;
  double logdet_ = 0;
  int det_sign_ = 1;
  index_t negative_total_ = 0;  ///< negative eigenvalues over all blocks
  index_t leaf_negative_ = 0;   ///< negative eigenvalues from leaf blocks
};

extern template class UlvFactorization<float>;
extern template class UlvFactorization<double>;

/// Builds the standard two-level preconditioner setup: compresses `k` at
/// a coarse tolerance with budget 0 (pure HSS, so the ULV factorization
/// captures every coupling), factorizes (K̃_coarse + λI) once, then
/// escalates λ from `regularization` via cheap refactorize() calls — under
/// the orthogonal engine each retry re-factors only the small rotated
/// diagonal blocks — until the factorization is positive definite (PCG
/// breaks on an indefinite preconditioner; the λ actually used is reported
/// by factorization_stats().regularization). The orthogonal engine's block
/// inertia is an exact certificate (exact_inertia), so the escalation
/// trusts it directly; on the Woodbury path an inverse-power probe backs
/// up the heuristic determinant test. The result plugs into
/// preconditioned_solve() / conjugate_gradient() against a fine-tolerance
/// operator of the same matrix.
template <typename T>
std::unique_ptr<CompressedMatrix<T>> make_preconditioner(
    std::shared_ptr<const SPDMatrix<T>> k, T regularization,
    Config coarse = Config::defaults().with_tolerance(1e-4));

extern template std::unique_ptr<CompressedMatrix<float>>
make_preconditioner<float>(std::shared_ptr<const SPDMatrix<float>>, float,
                           Config);
extern template std::unique_ptr<CompressedMatrix<double>>
make_preconditioner<double>(std::shared_ptr<const SPDMatrix<double>>, double,
                            Config);

}  // namespace gofmm
