// Evaluation phase u = K̃ w (paper Algorithm 2.7 and Figure 3).
//
// Four task families over the tree:
//   N2S (postorder): skeleton weights   w̃_α = P_α̃α w_α, nested upward.
//   S2S (any order): skeleton potential ũ_β = Σ_{α∈Far(β)} K_β̃α̃ w̃_α.
//   S2N (preorder):  interpolate back   [ũ_l; ũ_r] += P^T ũ_β; at leaves
//                    u_β += P^T ũ_β.
//   L2L (any order): direct blocks      u_β += Σ_{α∈Near(β)} K_βα w_α.
// Three engines execute them: level-synchronous loops, recursive OpenMP
// tasks, or the HEFT DAG runtime with the dependency structure of Fig. 3.
//
// Everything here is const on the compressed matrix: the per-call state
// (tree-ordered rhs/outputs in ws.x/ws.y, per-node skeleton weights and
// potentials in ws.up/ws.down, the flop counter) lives in the caller's
// EvalWorkspace, so concurrent evaluations never touch shared storage.
#include "core/gofmm.hpp"

#include "la/blas.hpp"
#include "la/flops.hpp"
#include "runtime/engines.hpp"
#include "util/timer.hpp"

namespace gofmm {

template <typename T>
void CompressedMatrix<T>::eval_prepare(const la::Matrix<T>& w,
                                       EvalWorkspace<T>& ws) const {
  const index_t r = w.cols();
  // Permute the right-hand sides into tree order once; every task then
  // reads/writes contiguous row blocks.
  ws.x.resize(n_, r);
  const auto& perm = tree_->perm();
  for (index_t j = 0; j < r; ++j) {
    const T* src = w.col(j);
    T* dst = ws.x.col(j);
    for (index_t pos = 0; pos < n_; ++pos)
      dst[pos] = src[perm[std::size_t(pos)]];
  }
  ws.y.resize(n_, r);

  const std::size_t nn = std::size_t(tree_->num_nodes());
  if (ws.up.size() < nn) ws.up.resize(nn);
  if (ws.down.size() < nn) ws.down.resize(nn);
  for (const tree::Node* node : tree_->nodes()) {
    const NodeData& nd = data_[std::size_t(node->id)];
    const index_t s = index_t(nd.skel.size());
    ws.up[std::size_t(node->id)].resize(s, s > 0 ? r : 0);
    ws.down[std::size_t(node->id)].resize(s, s > 0 ? r : 0);
  }
}

template <typename T>
void CompressedMatrix<T>::task_n2s(const tree::Node* node,
                                   EvalWorkspace<T>& ws) const {
  const NodeData& nd = data_[std::size_t(node->id)];
  if (nd.skel.empty()) return;
  const index_t r = ws.x.cols();
  la::Matrix<T>& w_skel = ws.up[std::size_t(node->id)];
  if (node->is_leaf()) {
    // w̃ = P_α̃α w_α over the leaf's contiguous rows.
    const la::Matrix<T> wloc = ws.x.block(node->begin, 0, node->count, r);
    la::gemm(la::Op::None, la::Op::None, T(1), nd.proj, wloc, T(0), w_skel);
    ws.flops.fetch_add(
        la::FlopCounter::gemm_flops(nd.proj.rows(), r, nd.proj.cols()),
        std::memory_order_relaxed);
  } else {
    // w̃ = P_α̃[l̃r̃] [w̃_l; w̃_r].
    const la::Matrix<T>& wl = ws.up[std::size_t(node->left()->id)];
    const la::Matrix<T>& wr = ws.up[std::size_t(node->right()->id)];
    la::Matrix<T> stacked(wl.rows() + wr.rows(), r);
    for (index_t j = 0; j < r; ++j) {
      std::copy_n(wl.col(j), wl.rows(), stacked.col(j));
      std::copy_n(wr.col(j), wr.rows(), stacked.col(j) + wl.rows());
    }
    la::gemm(la::Op::None, la::Op::None, T(1), nd.proj, stacked, T(0),
             w_skel);
    ws.flops.fetch_add(
        la::FlopCounter::gemm_flops(nd.proj.rows(), r, nd.proj.cols()),
        std::memory_order_relaxed);
  }
}

template <typename T>
void CompressedMatrix<T>::task_s2s(const tree::Node* node,
                                   EvalWorkspace<T>& ws) const {
  const NodeData& nd = data_[std::size_t(node->id)];
  if (nd.skel.empty()) return;
  la::Matrix<T>& u_skel = ws.down[std::size_t(node->id)];
  u_skel.fill(T(0));
  if (nd.far.empty()) return;
  const index_t r = ws.x.cols();
  for (std::size_t t = 0; t < nd.far.size(); ++t) {
    const tree::Node* alpha = nd.far[t];
    const la::Matrix<T>& w_alpha = ws.up[std::size_t(alpha->id)];
    const la::Matrix<T> kba = far_block(node, t);
    la::gemm(la::Op::None, la::Op::None, T(1), kba, w_alpha, T(1), u_skel);
    ws.flops.fetch_add(
        la::FlopCounter::gemm_flops(kba.rows(), r, kba.cols()),
        std::memory_order_relaxed);
  }
}

template <typename T>
void CompressedMatrix<T>::task_s2n(const tree::Node* node,
                                   EvalWorkspace<T>& ws) const {
  const NodeData& nd = data_[std::size_t(node->id)];
  if (nd.skel.empty()) return;
  const index_t r = ws.x.cols();
  const la::Matrix<T>& u_skel = ws.down[std::size_t(node->id)];
  // tmp = P^T ũ_β.
  la::Matrix<T> tmp(nd.proj.cols(), r);
  la::gemm(la::Op::Trans, la::Op::None, T(1), nd.proj, u_skel, T(0), tmp);
  ws.flops.fetch_add(
      la::FlopCounter::gemm_flops(nd.proj.cols(), r, nd.proj.rows()),
      std::memory_order_relaxed);
  if (node->is_leaf()) {
    // Accumulate into the leaf's output rows.
    for (index_t j = 0; j < r; ++j) {
      T* dst = ws.y.col(j) + node->begin;
      const T* src = tmp.col(j);
      for (index_t i = 0; i < node->count; ++i) dst[i] += src[i];
    }
  } else {
    // Split into the children's skeleton potentials.
    la::Matrix<T>& ul = ws.down[std::size_t(node->left()->id)];
    la::Matrix<T>& ur = ws.down[std::size_t(node->right()->id)];
    for (index_t j = 0; j < r; ++j) {
      const T* src = tmp.col(j);
      T* dl = ul.col(j);
      for (index_t i = 0; i < ul.rows(); ++i) dl[i] += src[i];
      T* dr = ur.col(j);
      for (index_t i = 0; i < ur.rows(); ++i) dr[i] += src[ul.rows() + i];
    }
  }
}

template <typename T>
void CompressedMatrix<T>::task_l2l(const tree::Node* node,
                                   EvalWorkspace<T>& ws) const {
  const NodeData& nd = data_[std::size_t(node->id)];
  const index_t r = ws.x.cols();
  la::Matrix<T> acc(node->count, r);
  for (std::size_t t = 0; t < nd.near.size(); ++t) {
    const tree::Node* alpha = nd.near[t];
    const la::Matrix<T> kba = near_block(node, t);
    const la::Matrix<T> wloc = ws.x.block(alpha->begin, 0, alpha->count, r);
    la::gemm(la::Op::None, la::Op::None, T(1), kba, wloc, T(1), acc);
    ws.flops.fetch_add(
        la::FlopCounter::gemm_flops(kba.rows(), r, kba.cols()),
        std::memory_order_relaxed);
  }
  for (index_t j = 0; j < r; ++j) {
    T* dst = ws.y.col(j) + node->begin;
    const T* src = acc.col(j);
    for (index_t i = 0; i < node->count; ++i) dst[i] += src[i];
  }
}

template <typename T>
void CompressedMatrix<T>::eval_with_levels(EvalWorkspace<T>& ws) const {
  // Level-synchronous engine: barriers between phases and between levels.
  rt::level_bottom_up(tree_->levels(),
                      [&](const tree::Node* n) { task_n2s(n, ws); });
  rt::any_order(tree_->nodes(), [&](const tree::Node* n) { task_s2s(n, ws); });
  rt::level_top_down(tree_->levels(),
                     [&](const tree::Node* n) { task_s2n(n, ws); });
  rt::any_order(tree_->leaves(),
                [&](const tree::Node* n) { task_l2l(n, ws); });
}

template <typename T>
void CompressedMatrix<T>::eval_with_omp_tasks(EvalWorkspace<T>& ws) const {
  // The paper's `omp task` scheme: recursive task traversals with
  // taskwait barriers; cross-phase dependencies (N2S→S2S) cannot be
  // expressed, so a barrier separates the phases.
  auto n2s = [&](const tree::Node* n) { task_n2s(n, ws); };
  rt::omp_postorder(tree_->root(), n2s);
  rt::any_order(tree_->nodes(), [&](const tree::Node* n) { task_s2s(n, ws); });
  auto s2n = [&](const tree::Node* n) { task_s2n(n, ws); };
  rt::omp_preorder(tree_->root(), s2n);
  rt::any_order(tree_->leaves(),
                [&](const tree::Node* n) { task_l2l(n, ws); });
}

template <typename T>
void CompressedMatrix<T>::eval_with_heft(EvalWorkspace<T>& ws) const {
  // Out-of-order engine: the full dependency DAG of Figure 3. RAW edges:
  //   N2S(α) ← N2S(l), N2S(r)                  (nested weights)
  //   S2S(β) ← N2S(α) for every α ∈ Far(β)     (reads w̃_α)
  //   S2N(β) ← S2S(β)                          (reads ũ_β)
  //   S2N(β) ← S2N(parent β)                   (parent adds into ũ_β)
  //   S2N(parent β) ← S2S(β)                   (orders the two writers)
  //   S2N(leaf β) ← L2L(β)                     (both write u rows of β)
  const index_t r = ws.x.cols();
  rt::TaskGraph graph;
  const std::size_t nn = std::size_t(tree_->num_nodes());
  std::vector<rt::Task*> n2s_of(nn, nullptr);
  std::vector<rt::Task*> s2s_of(nn, nullptr);
  std::vector<rt::Task*> s2n_of(nn, nullptr);
  std::vector<rt::Task*> l2l_of(nn, nullptr);

  for (const tree::Node* node : tree_->postorder()) {
    const NodeData& nd = data_[std::size_t(node->id)];
    if (nd.skel.empty()) continue;
    const double s = double(nd.skel.size());
    rt::Task* t = graph.emplace([this, node, &ws](int) { task_n2s(node, ws); },
                                2.0 * s * double(nd.proj.cols()) * double(r),
                                "N2S#" + std::to_string(node->id));
    n2s_of[std::size_t(node->id)] = t;
    if (!node->is_leaf()) {
      if (auto* c = n2s_of[std::size_t(node->left()->id)])
        graph.add_edge(c, t);
      if (auto* c = n2s_of[std::size_t(node->right()->id)])
        graph.add_edge(c, t);
    }
  }

  for (const tree::Node* node : tree_->nodes()) {
    const NodeData& nd = data_[std::size_t(node->id)];
    if (nd.skel.empty()) continue;
    double cost = 0;
    for (const tree::Node* alpha : nd.far)
      cost += 2.0 * double(nd.skel.size()) *
              double(data_[std::size_t(alpha->id)].skel.size()) * double(r);
    rt::Task* t = graph.emplace([this, node, &ws](int) { task_s2s(node, ws); },
                                std::max(1.0, cost),
                                "S2S#" + std::to_string(node->id));
    s2s_of[std::size_t(node->id)] = t;
    for (const tree::Node* alpha : nd.far)
      if (auto* dep = n2s_of[std::size_t(alpha->id)]) graph.add_edge(dep, t);
  }

  for (const tree::Node* node : tree_->leaves()) {
    const NodeData& nd = data_[std::size_t(node->id)];
    double cost = 0;
    for (const tree::Node* alpha : nd.near)
      cost += 2.0 * double(node->count) * double(alpha->count) * double(r);
    l2l_of[std::size_t(node->id)] =
        graph.emplace([this, node, &ws](int) { task_l2l(node, ws); },
                      std::max(1.0, cost), "L2L#" + std::to_string(node->id));
  }

  // Preorder so the parent's S2N task exists before the children's.
  for (const tree::Node* node : tree_->nodes()) {
    const NodeData& nd = data_[std::size_t(node->id)];
    if (nd.skel.empty()) continue;
    rt::Task* t = graph.emplace(
        [this, node, &ws](int) { task_s2n(node, ws); },
        2.0 * double(nd.skel.size()) * double(nd.proj.cols()) * double(r),
        "S2N#" + std::to_string(node->id));
    s2n_of[std::size_t(node->id)] = t;
    if (auto* own_s2s = s2s_of[std::size_t(node->id)])
      graph.add_edge(own_s2s, t);
    if (node->parent != nullptr) {
      if (auto* p = s2n_of[std::size_t(node->parent->id)]) {
        graph.add_edge(p, t);
        // The parent S2N writes ũ of this node; order it after our S2S.
        if (auto* own_s2s = s2s_of[std::size_t(node->id)])
          graph.add_edge(own_s2s, p);
      }
    }
    if (node->is_leaf()) {
      if (auto* l = l2l_of[std::size_t(node->id)]) graph.add_edge(l, t);
    }
  }

  rt::Scheduler sched(config_.num_workers);
  sched.run(graph);
}

template <typename T>
la::Matrix<T> CompressedMatrix<T>::do_apply(const la::Matrix<T>& w,
                                            EvalWorkspace<T>& ws) const {
  eval_prepare(w, ws);

  switch (config_.engine) {
    case rt::Engine::LevelByLevel:
      eval_with_levels(ws);
      break;
    case rt::Engine::OmpTask:
      eval_with_omp_tasks(ws);
      break;
    case rt::Engine::Heft:
      eval_with_heft(ws);
      break;
  }

  // Un-permute the accumulated result.
  la::Matrix<T> u(n_, w.cols());
  const auto& perm = tree_->perm();
  for (index_t j = 0; j < w.cols(); ++j) {
    const T* src = ws.y.col(j);
    T* dst = u.col(j);
    for (index_t pos = 0; pos < n_; ++pos)
      dst[perm[std::size_t(pos)]] = src[pos];
  }
  return u;
}

template <typename T>
la::Matrix<T> CompressedMatrix<T>::evaluate(const la::Matrix<T>& w) const {
  std::unique_ptr<EvalWorkspace<T>> ws = acquire_workspace();
  la::Matrix<T> u = this->apply(w, *ws);
  {
    std::lock_guard<std::mutex> lock(eval_stats_mutex_);
    eval_stats_ = ws->last;
  }
  release_workspace(std::move(ws));
  return u;
}

template void CompressedMatrix<float>::eval_prepare(
    const la::Matrix<float>&, EvalWorkspace<float>&) const;
template void CompressedMatrix<double>::eval_prepare(
    const la::Matrix<double>&, EvalWorkspace<double>&) const;
template void CompressedMatrix<float>::task_n2s(const tree::Node*,
                                                EvalWorkspace<float>&) const;
template void CompressedMatrix<double>::task_n2s(const tree::Node*,
                                                 EvalWorkspace<double>&) const;
template void CompressedMatrix<float>::task_s2s(const tree::Node*,
                                                EvalWorkspace<float>&) const;
template void CompressedMatrix<double>::task_s2s(const tree::Node*,
                                                 EvalWorkspace<double>&) const;
template void CompressedMatrix<float>::task_s2n(const tree::Node*,
                                                EvalWorkspace<float>&) const;
template void CompressedMatrix<double>::task_s2n(const tree::Node*,
                                                 EvalWorkspace<double>&) const;
template void CompressedMatrix<float>::task_l2l(const tree::Node*,
                                                EvalWorkspace<float>&) const;
template void CompressedMatrix<double>::task_l2l(const tree::Node*,
                                                 EvalWorkspace<double>&) const;
template void CompressedMatrix<float>::eval_with_levels(
    EvalWorkspace<float>&) const;
template void CompressedMatrix<double>::eval_with_levels(
    EvalWorkspace<double>&) const;
template void CompressedMatrix<float>::eval_with_omp_tasks(
    EvalWorkspace<float>&) const;
template void CompressedMatrix<double>::eval_with_omp_tasks(
    EvalWorkspace<double>&) const;
template void CompressedMatrix<float>::eval_with_heft(
    EvalWorkspace<float>&) const;
template void CompressedMatrix<double>::eval_with_heft(
    EvalWorkspace<double>&) const;
template la::Matrix<float> CompressedMatrix<float>::do_apply(
    const la::Matrix<float>&, EvalWorkspace<float>&) const;
template la::Matrix<double> CompressedMatrix<double>::do_apply(
    const la::Matrix<double>&, EvalWorkspace<double>&) const;
template la::Matrix<float> CompressedMatrix<float>::evaluate(
    const la::Matrix<float>&) const;
template la::Matrix<double> CompressedMatrix<double>::evaluate(
    const la::Matrix<double>&) const;

}  // namespace gofmm
