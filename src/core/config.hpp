// User-facing configuration of GOFMM compression (paper §3 "Parameter
// selection": m, s, τ, κ, budget, distance, plus engineering switches).
#pragma once

#include <cstdint>

#include "runtime/engines.hpp"
#include "tree/metric.hpp"
#include "util/common.hpp"

namespace gofmm {

/// All tunables of Compress/Evaluate. Defaults follow the paper's standard
/// setting (m = 256-512, s = m, τ = 1e-5, κ = 32, 3% budget, Angle
/// distance) scaled to the laptop-sized problems of this reproduction.
struct Config {
  /// Leaf node size m: the tree splits until every leaf holds <= m indices.
  index_t leaf_size = 128;

  /// Maximum skeleton rank s per node.
  index_t max_rank = 128;

  /// Adaptive-rank tolerance τ: the ID truncates once the pivoted-QR
  /// diagonal drops below τ relative to the largest. <= 0 disables
  /// adaptivity (fixed rank = max_rank).
  double tolerance = 1e-5;

  /// Number of nearest neighbors κ per index (near/far pruning and
  /// importance sampling).
  index_t kappa = 32;

  /// Direct-evaluation budget (Eq. 6): each leaf keeps at most
  /// round(budget * num_leaves) near leaves besides itself.
  /// budget = 0 forces the HSS structure (S = 0); larger budgets move the
  /// approximation toward FMM with more exact off-diagonal blocks.
  double budget = 0.03;

  /// Index-ordering / distance choice (paper Fig. 7).
  tree::DistanceKind distance = tree::DistanceKind::Angle;

  /// Traversal engine (paper Fig. 4): HEFT runtime, level-by-level, or
  /// recursive OpenMP tasks.
  rt::Engine engine = rt::Engine::Heft;

  /// Number of scheduler workers; 0 = hardware concurrency.
  int num_workers = 0;

  /// Cache K_{βα} and K_{β̃α̃} blocks at compression time (paper's
  /// Kba/SKba tasks). Off = evaluate entries on the fly during matvecs.
  bool cache_blocks = true;

  /// Enforce symmetric near lists (paper requires this for a symmetric
  /// K̃; the ASKIT baseline switches it off).
  bool symmetric_near = true;

  /// Neighbor-based importance sampling of ID rows (paper §2.2); when off,
  /// rows are drawn uniformly at random (the STRUMPACK/HODLR-style
  /// geometry-free sampling used as an ablation).
  bool neighbor_sampling = true;

  /// Number of sampled rows for each ID, as a multiple of the column count
  /// of the block being skeletonized.
  double sample_factor = 2.0;
  /// Additive extra rows on top of sample_factor * ncols.
  index_t sample_extra = 32;

  /// PRNG seed for every stochastic component.
  std::uint64_t seed = 7;

  /// ANN iteration cap and target recall (paper: 10 iterations / 80%).
  index_t ann_max_iterations = 10;
  double ann_target_recall = 0.8;

  /// Throws ConfigError describing the first invalid field, if any.
  /// compress() calls this; call it yourself to fail fast at config time.
  void validate() const;

  // --- fluent builder -----------------------------------------------------
  //
  //   Config cfg = Config::defaults()
  //                    .with_leaf_size(128)
  //                    .with_budget(0.0)
  //                    .with_engine(rt::Engine::Heft);
  //
  // Each setter returns *this, so the chain works on both lvalues and the
  // temporary defaults() produces.

  [[nodiscard]] static Config defaults() { return Config{}; }

  Config& with_leaf_size(index_t v) { leaf_size = v; return *this; }
  Config& with_max_rank(index_t v) { max_rank = v; return *this; }
  Config& with_tolerance(double v) { tolerance = v; return *this; }
  Config& with_kappa(index_t v) { kappa = v; return *this; }
  Config& with_budget(double v) { budget = v; return *this; }
  Config& with_distance(tree::DistanceKind v) { distance = v; return *this; }
  Config& with_engine(rt::Engine v) { engine = v; return *this; }
  Config& with_num_workers(int v) { num_workers = v; return *this; }
  Config& with_cache_blocks(bool v) { cache_blocks = v; return *this; }
  Config& with_symmetric_near(bool v) { symmetric_near = v; return *this; }
  Config& with_neighbor_sampling(bool v) { neighbor_sampling = v; return *this; }
  Config& with_sample_factor(double v) { sample_factor = v; return *this; }
  Config& with_sample_extra(index_t v) { sample_extra = v; return *this; }
  Config& with_seed(std::uint64_t v) { seed = v; return *this; }
};

}  // namespace gofmm
