// The unified compressed-operator interface.
//
// Every compression backend in this library — GOFMM's CompressedMatrix,
// the HODLR and randomized-HSS baselines, and the global ACA low-rank
// operator — approximates the same thing: an SPD matrix known through an
// entry oracle, served as a fast matvec. This header defines the one
// abstraction they all implement, so solvers, benches, and examples are
// written once against CompressedOperator<T> and run against any backend.
//
// Thread safety contract: apply() is const and never mutates the operator.
// All per-evaluation scratch lives in a caller-owned EvalWorkspace, so N
// threads may call apply() on one shared operator concurrently, each with
// its own workspace. Reusing a workspace across calls amortises its
// allocations; sharing one workspace between concurrent calls is a data
// race, exactly like sharing any other scratch buffer.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "la/matrix.hpp"
#include "util/common.hpp"
#include "util/timer.hpp"

/// Geometry-oblivious FMM: SPD compression, Krylov solvers, and the shared
/// hierarchical factorization engine.
namespace gofmm {

/// Work counters for one evaluation (matvec) call.
struct EvaluationStats {
  double seconds = 0;       ///< wall-clock of the apply() call
  std::uint64_t flops = 0;  ///< per Table 2: N2S + S2S + S2N + L2L
  /// Achieved GFLOP/s of the call (0 before any call).
  [[nodiscard]] double gflops() const {
    return seconds > 0 ? double(flops) * 1e-9 / seconds : 0;
  }
};

/// Backend-agnostic summary of a compressed operator — the columns every
/// comparison table reports (build time, ranks, memory footprint).
struct OperatorStats {
  double compress_seconds = 0;    ///< wall-clock of the compression build
  double avg_rank = 0;            ///< mean low-rank block / skeleton rank
  index_t max_rank = 0;           ///< largest low-rank block / skeleton rank
  std::uint64_t memory_bytes = 0; ///< bytes held by the compressed form
};

/// Leaf elimination strategy of the hierarchical factorization engine.
///
/// The engine eliminates exact leaf diagonal blocks K(β, β) + λI. Those are
/// principal submatrices of the regularized operator, so compression error
/// or a small (or negative) λ can make them indefinite — plain Cholesky
/// then refuses to eliminate, while Bunch–Kaufman pivoted LDLᵀ factors any
/// symmetric block at the same n³/3 cost and carries the inertia needed for
/// signed log-determinants (see la/ldlt.hpp).
enum class Elimination {
  /// Try Cholesky per leaf, fall back to pivoted LDLᵀ on the leaves that
  /// are not positive definite. The default: PD operators pay nothing,
  /// indefinite compressions factor anyway.
  Auto,
  /// Cholesky only; throws gofmm::StateError when a leaf block (plus λ)
  /// is not positive definite. The strict pre-PR4 behaviour.
  Cholesky,
  /// Bunch–Kaufman pivoted LDLᵀ at every leaf, PD or not.
  PivotedLdlt,
};

/// Elimination structure of the hierarchical factorization engine.
///
/// The orthogonal structure stores, per node, the Householder rotation Q of
/// the node's parent-facing basis (la/qr.hpp). Because Qᵀ(A + λI)Q =
/// QᵀAQ + λI, every rotation, rotated leaf block, and reduced coupling is
/// λ-independent: refactorize(λ') only re-factors small rotated diagonal
/// blocks — no Gram chain, no basis work — and the block inertias sum to
/// the EXACT operator inertia (Haynsworth). It requires nested bases, so
/// Explicit (HODLR) views eliminate through the classic Woodbury structure
/// instead (per-node solve operators Φ = (K̃+λI)⁻¹V and Grams, recomputed
/// on every retune).
enum class UlvMode {
  /// Orthogonal for all-Nested views (GOFMM, randomized HSS), Woodbury for
  /// views with Explicit bases (HODLR). The default.
  Auto,
  /// Force the stored-Q orthogonal elimination; throws gofmm::Error when
  /// the view carries Explicit bases (they do not telescope, so λI cannot
  /// commute through a fixed row elimination).
  Orthogonal,
  /// Force the classic Woodbury elimination on any view — the verification
  /// path (results agree with Orthogonal to round-off, not bitwise).
  Woodbury,
};

/// Storage precision policy of the hierarchical factorization engine.
///
/// The ULV factors — stored rotations (la::QrFactors), rotated leaf
/// blocks, reduced couplings — dominate a factorized operator's resident
/// bytes. MixedF32 holds them all in float, halving that footprint
/// (which doubles how many operators an OperatorCache byte budget keeps
/// resident) and putting solve sweeps on the 8-lane f32 AVX2 kernels;
/// double accuracy is recovered by iterative refinement against the
/// operator's own double-precision matvec (refined_solve in
/// core/solvers.hpp, run automatically by Factorizable::solve when
/// SolveOptions::refine is set).
enum class Precision {
  /// Store the factors in the operator's native scalar T. The default.
  Double,
  /// Store the factors in float, refine solves back to double residuals.
  /// On a float operator this is identical to the native path.
  MixedF32,
};

/// Options of one factorize() call (see Factorizable::factorize).
/// Aggregate with a fluent builder mirroring Config::defaults():
/// `FactorizeOptions::defaults().with_precision(Precision::MixedF32)`.
struct FactorizeOptions {
  /// Leaf elimination strategy (see Elimination).
  Elimination elimination = Elimination::Auto;
  /// Engine structure (see UlvMode).
  UlvMode mode = UlvMode::Auto;
  /// Storage precision of the factors (see Precision).
  Precision precision = Precision::Double;

  /// Default options, the seed of the with_* builder chain.
  [[nodiscard]] static FactorizeOptions defaults() {
    return FactorizeOptions{};
  }
  /// Sets the leaf elimination strategy.
  FactorizeOptions& with_elimination(Elimination v) {
    elimination = v;
    return *this;
  }
  /// Sets the engine structure.
  FactorizeOptions& with_mode(UlvMode v) {
    mode = v;
    return *this;
  }
  /// Sets the storage precision of the factors.
  FactorizeOptions& with_precision(Precision v) {
    precision = v;
    return *this;
  }
};

/// Options of one solve. Accepted uniformly by Factorizable::solve,
/// conjugate_gradient / preconditioned_solve, refined_solve, and
/// SolveService::submit; each path reads the fields that apply to it.
/// Aggregate with a fluent builder:
/// `SolveOptions::defaults().with_target_residual(1e-10)`.
struct SolveOptions {
  /// Run iterative refinement after the direct sweep when the
  /// factorization stores reduced-precision factors (Precision::MixedF32).
  /// Native-precision factorizations ignore the flag — their direct sweep
  /// is already exact — so leaving it true costs nothing there.
  bool refine = true;
  /// Relative residual ‖b − (A+λI)x‖/‖b‖ to drive each column to: the
  /// refinement stopping target, and the Krylov solvers' rel_tol.
  double target_residual = 1e-8;
  /// Refinement correction sweeps before giving up (the best iterate per
  /// column is kept either way). Converging cases take 1-3.
  index_t max_refine_iters = 8;
  /// Iteration cap of the Krylov solvers (ignored by direct solves).
  index_t max_iterations = 500;

  /// Default options, the seed of the with_* builder chain.
  [[nodiscard]] static SolveOptions defaults() { return SolveOptions{}; }
  /// Enables/disables refinement on mixed-precision factorizations.
  SolveOptions& with_refine(bool v) {
    refine = v;
    return *this;
  }
  /// Sets the relative-residual target.
  SolveOptions& with_target_residual(double v) {
    target_residual = v;
    return *this;
  }
  /// Sets the refinement sweep cap.
  SolveOptions& with_max_refine_iters(index_t v) {
    max_refine_iters = v;
    return *this;
  }
  /// Sets the Krylov iteration cap.
  SolveOptions& with_max_iterations(index_t v) {
    max_iterations = v;
    return *this;
  }
};

/// Work/footprint summary of one factorize() call.
struct FactorizationStats {
  double seconds = 0;            ///< wall-clock of factorize()/refactorize()
  std::uint64_t flops = 0;       ///< Cholesky/LDLᵀ + GEMM + LU work
  std::uint64_t memory_bytes = 0;///< bytes held by the stored factors
  double regularization = 0;     ///< λ folded into the factored operator
  /// Coupled sibling systems folded in: Woodbury capacitance systems
  /// factored, or (orthogonal structure) coupled reduced blocks
  /// eliminated — λ-linear frontier nodes, whose coupling lives inside
  /// an ancestor's cache, are not counted.
  index_t num_couplings = 0;
  /// Largest coupled system order (r_l + r_r) seen by the count above.
  index_t max_coupling_size = 0;
  /// Diagonal blocks eliminated via pivoted LDLᵀ (under the Woodbury
  /// structure those are exactly the leaves; the orthogonal structure also
  /// counts its rotated interior blocks).
  index_t ldlt_leaves = 0;
  /// Negative eigenvalues visible to the elimination. Woodbury: the leaf
  /// LDLᵀ blocks only — leaves are principal submatrices of the
  /// (regularized, permuted) operator, so by Cauchy interlacing any count
  /// > 0 proves the operator indefinite. Orthogonal: the exact operator
  /// total (same value as negative_eigenvalues).
  index_t leaf_negative_eigenvalues = 0;
  /// refactorize() calls served by this factorization since it was built.
  index_t num_refactorizations = 0;
  /// Storage precision the factors are held in. Under Precision::MixedF32
  /// memory_bytes reflects the float storage (~2× below the double path)
  /// and solves should run with SolveOptions::refine to recover double
  /// residuals.
  Precision precision = Precision::Double;
  /// True when the factorization ran the stored-Q orthogonal elimination
  /// (UlvMode); false on the Woodbury path.
  bool orthogonal = false;
  /// Negative eigenvalues of the factored operator as summed over the
  /// eliminated diagonal blocks. EXACT under the orthogonal elimination
  /// (orthogonal similarity preserves inertia and Haynsworth additivity
  /// sums it over the Schur chain — see exact_inertia); on the Woodbury
  /// path only the leaf contribution is visible and the count is a lower
  /// bound.
  index_t negative_eigenvalues = 0;
  /// True when negative_eigenvalues / positive_definite are exact rather
  /// than the Woodbury path's interlacing lower bound. Callers holding an
  /// exact-inertia factorization can trust positive_definite outright
  /// (make_preconditioner skips its inverse-power probe then).
  bool exact_inertia = false;
  /// Whether the factored operator came out positive definite. Compression
  /// error can push K̃ + λI indefinite when λ is below ε₂‖K‖ (paper
  /// "Limitations"); solve() still applies the exact inverse then, but
  /// logdet() throws and PCG must not use the factorization — raise λ
  /// (cheap via refactorize()).
  bool positive_definite = false;
};

/// Optional capability of a compressed operator: a hierarchical direct
/// factorization of (Op + λI) enabling solves and log-determinants.
///
/// Contract mirroring the evaluation discipline: factorize() and
/// refactorize() are MUTATING setup steps (run them before sharing the
/// operator across threads); solve() and logdet() are const and
/// thread-safe afterwards — any number of threads may solve against one
/// factorized operator concurrently, and repeated solves of the same
/// right-hand side are bit-identical.
template <typename T>
class Factorizable {
 public:
  virtual ~Factorizable() = default;  ///< capability handles are polymorphic

  /// Builds the factorization of (Op + regularization·I). λ > 0 both
  /// regularises ill-conditioned kernels and restores positive
  /// definiteness lost to compression error (paper "Limitations"); λ < 0
  /// (spectrum shifts) is allowed and factors through the pivoted-LDLᵀ
  /// leaf path of `options` (Elimination::Cholesky then throws).
  /// Calling again re-factorizes from scratch (e.g. with a different λ);
  /// prefer refactorize() when only λ changed.
  virtual void factorize(T regularization = T(0),
                         FactorizeOptions options = {}) = 0;

  /// Re-eliminates the existing factorization with a new λ, reusing every
  /// λ-independent quantity (bases, transfer maps, couplings, leaf
  /// payloads): an O(N r²)-per-level update with no oracle traffic, versus
  /// the full rebuild factorize() performs — the cheap path for
  /// make_preconditioner's λ escalation and kernel-regression λ sweeps.
  /// Results are bit-identical to a fresh factorize() at the same λ with
  /// the same options. The default implementation falls back to a full
  /// factorize() for backends without an incremental path.
  virtual void refactorize(T regularization) { factorize(regularization); }

  /// True once factorize() has completed.
  [[nodiscard]] virtual bool factorized() const = 0;

  /// x ≈ (Op + λI)⁻¹ b for an N-by-r block of right-hand sides, solved in
  /// ONE blocked sweep with r-wide GEMMs (not r sequential sweeps). When
  /// the factorization stores float factors (Precision::MixedF32) and
  /// `options.refine` is set, the sweep is followed by iterative
  /// refinement against the operator's own double-precision matvec until
  /// `options.target_residual`; native-precision factorizations ignore
  /// `options` entirely, so the default argument changes nothing for them.
  /// Const + thread-safe; throws StateError before factorize().
  [[nodiscard]] virtual la::Matrix<T> solve(
      const la::Matrix<T>& b,
      const SolveOptions& options = SolveOptions::defaults()) const = 0;

  /// log det(Op + λI) of the factored operator (exact for the factored
  /// approximation). Throws StateError before factorize(), or if the
  /// factored operator turned out not positive definite.
  [[nodiscard]] virtual double logdet() const = 0;

  /// Work counters of the most recent factorize().
  [[nodiscard]] virtual FactorizationStats factorization_stats() const = 0;
};

/// Caller-owned scratch for one in-flight apply(). The fields are generic
/// slots the backends interpret as they need:
///   x, y      N-by-r input/output staging (GOFMM: tree-ordered w/u)
///   up, down  per-node skeleton weights/potentials, indexed by node id
///   flops     work counter accumulated across the call's parallel tasks
/// A default-constructed workspace fits any operator; buffers grow on
/// first use and are reused by later calls.
template <typename T>
struct EvalWorkspace {
  /// Empty workspace; buffers grow on first use.
  EvalWorkspace() = default;
  /// Non-copyable: sharing scratch between calls is a data race.
  EvalWorkspace(const EvalWorkspace&) = delete;
  /// Non-copyable: sharing scratch between calls is a data race.
  EvalWorkspace& operator=(const EvalWorkspace&) = delete;

  /// Clears the call-scoped state (counters, last-call stats) while
  /// RETAINING every buffer's capacity: Matrix::resize assigns in place
  /// when the new extent fits the existing allocation, so a workspace
  /// cycled through reset() serves same-shape evaluations with zero
  /// (re)allocations — the contract the service's WorkspacePool
  /// (src/service/solve_service.hpp) leases workspaces under.
  void reset() noexcept {
    flops.store(0, std::memory_order_relaxed);
    last = EvaluationStats{};
  }

  la::Matrix<T> x;                    ///< staged right-hand sides
  la::Matrix<T> y;                    ///< staged outputs
  std::vector<la::Matrix<T>> up;      ///< upward per-node buffers
  std::vector<la::Matrix<T>> down;    ///< downward per-node buffers
  std::atomic<std::uint64_t> flops{0};///< work counter across parallel tasks
  EvaluationStats last;               ///< stats of the latest apply()
};

/// Abstract compressed SPD operator: a thread-safe approximate matvec.
template <typename T>
class CompressedOperator {
 public:
  virtual ~CompressedOperator() = default;  ///< operators are polymorphic

  /// Matrix order N.
  [[nodiscard]] virtual index_t size() const = 0;

  /// Short backend tag ("gofmm", "hodlr", "rand_hss", "aca").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Bytes held by the compressed representation.
  [[nodiscard]] virtual std::uint64_t memory_bytes() const = 0;

  /// Build-time and structural summary of the compression.
  [[nodiscard]] virtual OperatorStats operator_stats() const = 0;

  /// The operator's factorization capability, or nullptr when the backend
  /// has none. Backends that can solve (GOFMM's CompressedMatrix, the
  /// HODLR and randomized-HSS baselines — all through the shared ULV
  /// engine of core/factorization.hpp) override this to return themselves;
  /// generic code can then probe `op.factorizable()` and fall back to
  /// iterative solves.
  [[nodiscard]] virtual Factorizable<T>* factorizable() { return nullptr; }
  /// Const view of the factorization capability (nullptr when absent).
  [[nodiscard]] virtual const Factorizable<T>* factorizable() const {
    return nullptr;
  }

  /// u = Op * w for an N-by-r block of right-hand sides. Const and
  /// thread-safe: all scratch lives in `ws`, whose `last` field receives
  /// this call's timing/flop counters.
  la::Matrix<T> apply(const la::Matrix<T>& w, EvalWorkspace<T>& ws) const {
    check<DimensionError>(w.rows() == size(),
                          name() + "::apply: w has wrong row count");
    Timer timer;
    ws.flops.store(0, std::memory_order_relaxed);
    la::Matrix<T> u = do_apply(w, ws);
    ws.last.seconds = timer.seconds();
    ws.last.flops = ws.flops.load(std::memory_order_relaxed);
    return u;
  }

  /// Convenience overload with a throwaway workspace (still thread-safe;
  /// a reused workspace avoids the per-call allocations).
  [[nodiscard]] la::Matrix<T> apply(const la::Matrix<T>& w) const {
    EvalWorkspace<T> ws;
    return apply(w, ws);
  }

 protected:
  /// Backend matvec; shapes are already validated.
  virtual la::Matrix<T> do_apply(const la::Matrix<T>& w,
                                 EvalWorkspace<T>& ws) const = 0;
};

}  // namespace gofmm
