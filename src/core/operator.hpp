// The unified compressed-operator interface.
//
// Every compression backend in this library — GOFMM's CompressedMatrix,
// the HODLR and randomized-HSS baselines, and the global ACA low-rank
// operator — approximates the same thing: an SPD matrix known through an
// entry oracle, served as a fast matvec. This header defines the one
// abstraction they all implement, so solvers, benches, and examples are
// written once against CompressedOperator<T> and run against any backend.
//
// Thread safety contract: apply() is const and never mutates the operator.
// All per-evaluation scratch lives in a caller-owned EvalWorkspace, so N
// threads may call apply() on one shared operator concurrently, each with
// its own workspace. Reusing a workspace across calls amortises its
// allocations; sharing one workspace between concurrent calls is a data
// race, exactly like sharing any other scratch buffer.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "la/matrix.hpp"
#include "util/common.hpp"
#include "util/timer.hpp"

namespace gofmm {

/// Work counters for one evaluation (matvec) call.
struct EvaluationStats {
  double seconds = 0;
  std::uint64_t flops = 0;  ///< per Table 2: N2S + S2S + S2N + L2L
  [[nodiscard]] double gflops() const {
    return seconds > 0 ? double(flops) * 1e-9 / seconds : 0;
  }
};

/// Backend-agnostic summary of a compressed operator — the columns every
/// comparison table reports (build time, ranks, memory footprint).
struct OperatorStats {
  double compress_seconds = 0;
  double avg_rank = 0;
  index_t max_rank = 0;
  std::uint64_t memory_bytes = 0;
};

/// Work/footprint summary of one factorize() call.
struct FactorizationStats {
  double seconds = 0;            ///< wall-clock of factorize()
  std::uint64_t flops = 0;       ///< Cholesky + GEMM + LU work
  std::uint64_t memory_bytes = 0;///< bytes held by the stored factors
  double regularization = 0;     ///< λ folded into the factored operator
  index_t num_couplings = 0;     ///< capacitance systems factored
  index_t max_coupling_size = 0; ///< largest capacitance order (r_l + r_r)
  /// Whether the factored operator came out positive definite. Compression
  /// error can push K̃ + λI indefinite when λ is below ε₂‖K‖ (paper
  /// "Limitations"); solve() still applies the exact inverse then, but
  /// logdet() throws and PCG must not use the factorization — raise λ.
  bool positive_definite = false;
};

/// Optional capability of a compressed operator: a hierarchical direct
/// factorization of (Op + λI) enabling solves and log-determinants.
///
/// Contract mirroring the evaluation discipline: factorize() is a MUTATING
/// setup step (run it once, before sharing the operator across threads);
/// solve() and logdet() are const and thread-safe afterwards — any number
/// of threads may solve against one factorized operator concurrently, and
/// repeated solves of the same right-hand side are bit-identical.
template <typename T>
class Factorizable {
 public:
  virtual ~Factorizable() = default;

  /// Builds the factorization of (Op + regularization·I). λ > 0 both
  /// regularises ill-conditioned kernels and restores positive
  /// definiteness lost to compression error (paper "Limitations").
  /// Calling again re-factorizes (e.g. with a different λ).
  virtual void factorize(T regularization = T(0)) = 0;

  /// True once factorize() has completed.
  [[nodiscard]] virtual bool factorized() const = 0;

  /// x ≈ (Op + λI)⁻¹ b for an N-by-r block of right-hand sides, solved in
  /// ONE blocked sweep with r-wide GEMMs (not r sequential sweeps).
  /// Const + thread-safe; throws StateError before factorize().
  [[nodiscard]] virtual la::Matrix<T> solve(const la::Matrix<T>& b) const = 0;

  /// log det(Op + λI) of the factored operator (exact for the factored
  /// approximation). Throws StateError before factorize(), or if the
  /// factored operator turned out not positive definite.
  [[nodiscard]] virtual double logdet() const = 0;

  /// Work counters of the most recent factorize().
  [[nodiscard]] virtual FactorizationStats factorization_stats() const = 0;
};

/// Caller-owned scratch for one in-flight apply(). The fields are generic
/// slots the backends interpret as they need:
///   x, y      N-by-r input/output staging (GOFMM: tree-ordered w/u)
///   up, down  per-node skeleton weights/potentials, indexed by node id
///   flops     work counter accumulated across the call's parallel tasks
/// A default-constructed workspace fits any operator; buffers grow on
/// first use and are reused by later calls.
template <typename T>
struct EvalWorkspace {
  EvalWorkspace() = default;
  EvalWorkspace(const EvalWorkspace&) = delete;
  EvalWorkspace& operator=(const EvalWorkspace&) = delete;

  la::Matrix<T> x;                    ///< staged right-hand sides
  la::Matrix<T> y;                    ///< staged outputs
  std::vector<la::Matrix<T>> up;      ///< upward per-node buffers
  std::vector<la::Matrix<T>> down;    ///< downward per-node buffers
  std::atomic<std::uint64_t> flops{0};
  EvaluationStats last;               ///< stats of the latest apply()
};

/// Abstract compressed SPD operator: a thread-safe approximate matvec.
template <typename T>
class CompressedOperator {
 public:
  virtual ~CompressedOperator() = default;

  /// Matrix order N.
  [[nodiscard]] virtual index_t size() const = 0;

  /// Short backend tag ("gofmm", "hodlr", "rand_hss", "aca").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Bytes held by the compressed representation.
  [[nodiscard]] virtual std::uint64_t memory_bytes() const = 0;

  /// Build-time and structural summary of the compression.
  [[nodiscard]] virtual OperatorStats operator_stats() const = 0;

  /// The operator's factorization capability, or nullptr when the backend
  /// has none. Backends that can solve (GOFMM's CompressedMatrix, the
  /// HODLR and randomized-HSS baselines — all through the shared ULV
  /// engine of core/factorization.hpp) override this to return themselves;
  /// generic code can then probe `op.factorizable()` and fall back to
  /// iterative solves.
  [[nodiscard]] virtual Factorizable<T>* factorizable() { return nullptr; }
  [[nodiscard]] virtual const Factorizable<T>* factorizable() const {
    return nullptr;
  }

  /// u = Op * w for an N-by-r block of right-hand sides. Const and
  /// thread-safe: all scratch lives in `ws`, whose `last` field receives
  /// this call's timing/flop counters.
  la::Matrix<T> apply(const la::Matrix<T>& w, EvalWorkspace<T>& ws) const {
    check<DimensionError>(w.rows() == size(),
                          name() + "::apply: w has wrong row count");
    Timer timer;
    ws.flops.store(0, std::memory_order_relaxed);
    la::Matrix<T> u = do_apply(w, ws);
    ws.last.seconds = timer.seconds();
    ws.last.flops = ws.flops.load(std::memory_order_relaxed);
    return u;
  }

  /// Convenience overload with a throwaway workspace (still thread-safe;
  /// a reused workspace avoids the per-call allocations).
  [[nodiscard]] la::Matrix<T> apply(const la::Matrix<T>& w) const {
    EvalWorkspace<T> ws;
    return apply(w, ws);
  }

 protected:
  /// Backend matvec; shapes are already validated.
  virtual la::Matrix<T> do_apply(const la::Matrix<T>& w,
                                 EvalWorkspace<T>& ws) const = 0;
};

}  // namespace gofmm
