// Nested adaptive-rank skeletonization (paper §2.2 "Low-rank
// approximation", Algorithms 2.6; tasks SKEL and COEF of Table 2).
//
// Each node α is skeletonized by an interpolative decomposition of the
// sampled off-diagonal block K(I', cols(α)) where cols is the node's own
// index set for leaves and the union of the children's skeletons for
// interior nodes — this nesting gives the telescoping coefficient matrices
// of Eq. 10. Rows I' are drawn by neighbor-based importance sampling.
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/gofmm.hpp"
#include "la/flops.hpp"
#include "la/id.hpp"
#include "runtime/engines.hpp"
#include "util/timer.hpp"

namespace gofmm {

template <typename T>
std::vector<index_t> CompressedMatrix<T>::sample_rows_for(
    const tree::Node* node, std::span<const index_t> columns, index_t want,
    Prng& rng) const {
  const auto& inv = tree_->inv_perm();
  auto inside = [&](index_t j) {
    const index_t pos = inv[std::size_t(j)];
    return pos >= node->begin && pos < node->begin + node->count;
  };

  std::vector<index_t> rows;
  rows.reserve(std::size_t(want));
  std::unordered_set<index_t> taken;

  // Importance sampling: neighbors of the node's columns that live outside
  // the subtree, ranked by vote count (how many columns list them).
  if (config_.neighbor_sampling && neighbors_.kappa > 0) {
    std::unordered_map<index_t, index_t> votes;
    for (index_t c : columns)
      for (index_t j : neighbors_.of(c))
        if (j >= 0 && !inside(j)) votes[j] += 1;
    std::vector<std::pair<index_t, index_t>> ranked(votes.begin(),
                                                    votes.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    for (const auto& [j, cnt] : ranked) {
      if (index_t(rows.size()) >= want) break;
      rows.push_back(j);
      taken.insert(j);
    }
  }

  // Uniform fill from outside the subtree (also the whole sample when
  // neighbor sampling is off or unavailable).
  const index_t avail = n_ - node->count;
  const index_t target = std::min(want, avail);
  index_t guard = 0;
  while (index_t(rows.size()) < target && guard < 64 * target) {
    ++guard;
    const index_t j = rng.below(n_);
    if (inside(j) || taken.count(j) != 0) continue;
    rows.push_back(j);
    taken.insert(j);
  }
  return rows;
}

template <typename T>
void CompressedMatrix<T>::skeletonize_node(const tree::Node* node) {
  NodeData& nd = data_[std::size_t(node->id)];
  if (!nd.needs_skeleton) return;

  // Columns: own indices (leaf) or the children's skeletons (nested).
  std::vector<index_t> cols;
  if (node->is_leaf()) {
    const auto idx = tree_->indices(node);
    cols.assign(idx.begin(), idx.end());
  } else {
    const auto& ls = data_[std::size_t(node->left()->id)].skel;
    const auto& rs = data_[std::size_t(node->right()->id)].skel;
    cols.reserve(ls.size() + rs.size());
    cols.insert(cols.end(), ls.begin(), ls.end());
    cols.insert(cols.end(), rs.begin(), rs.end());
  }
  if (cols.empty()) return;

  const index_t want = index_t(config_.sample_factor * double(cols.size())) +
                       config_.sample_extra;
  Prng rng(config_.seed + 77 + std::uint64_t(node->id));
  const std::vector<index_t> rows = sample_rows_for(node, cols, want, rng);
  if (rows.empty()) {
    // Root-like degenerate case: nothing outside the subtree to compress
    // against; keep everything (identity interpolation).
    nd.skel = cols;
    nd.proj = la::Matrix<T>::identity(index_t(cols.size()));
    return;
  }

  const la::Matrix<T> block = k_->submatrix(rows, cols);
  const la::Interpolative<T> id = la::interp_decomp(
      block, T(config_.tolerance), std::min(config_.max_rank,
                                            index_t(cols.size())));

  nd.skel.resize(std::size_t(id.rank));
  for (index_t t = 0; t < id.rank; ++t)
    nd.skel[std::size_t(t)] = cols[std::size_t(id.skel[std::size_t(t)])];
  nd.proj = id.p;

  skel_flops_.fetch_add(
      la::FlopCounter::qr_flops(index_t(rows.size()), index_t(cols.size()),
                                id.rank) +
          la::FlopCounter::trsm_flops(id.rank, index_t(cols.size())),
      std::memory_order_relaxed);
}

template <typename T>
void CompressedMatrix<T>::skeletonize_all() {
  switch (config_.engine) {
    case rt::Engine::LevelByLevel: {
      rt::level_bottom_up(tree_->levels(),
                          [this](const tree::Node* n) { skeletonize_node(n); });
      return;
    }
    case rt::Engine::OmpTask: {
      auto visit = [this](const tree::Node* n) { skeletonize_node(n); };
      rt::omp_postorder(tree_->root(), visit);
      return;
    }
    case rt::Engine::Heft: {
      // SKEL(α) after SKEL(l), SKEL(r): the postorder DAG. COEF (the TRSM)
      // is fused into skeletonize_node — it sits on the same critical path.
      rt::TaskGraph graph;
      std::vector<rt::Task*> task_of(std::size_t(tree_->num_nodes()), nullptr);
      for (const tree::Node* node : tree_->postorder()) {
        if (!data_[std::size_t(node->id)].needs_skeleton) continue;
        const double cols =
            node->is_leaf() ? double(node->count) : 2.0 * double(config_.max_rank);
        const double cost = 2.0 * double(config_.max_rank) * cols *
                            (config_.sample_factor * cols + 32.0);
        rt::Task* t = graph.emplace(
            [this, node](int) { skeletonize_node(node); }, cost,
            "SKEL#" + std::to_string(node->id));
        task_of[std::size_t(node->id)] = t;
        if (!node->is_leaf()) {
          if (auto* lt = task_of[std::size_t(node->left()->id)])
            graph.add_edge(lt, t);
          if (auto* rt_ = task_of[std::size_t(node->right()->id)])
            graph.add_edge(rt_, t);
        }
      }
      rt::Scheduler sched(config_.num_workers);
      sched.run(graph);
      return;
    }
  }
}

template std::vector<index_t> CompressedMatrix<float>::sample_rows_for(
    const tree::Node*, std::span<const index_t>, index_t, Prng&) const;
template std::vector<index_t> CompressedMatrix<double>::sample_rows_for(
    const tree::Node*, std::span<const index_t>, index_t, Prng&) const;
template void CompressedMatrix<float>::skeletonize_node(const tree::Node*);
template void CompressedMatrix<double>::skeletonize_node(const tree::Node*);
template void CompressedMatrix<float>::skeletonize_all();
template void CompressedMatrix<double>::skeletonize_all();

}  // namespace gofmm
