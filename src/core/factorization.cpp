// ULV-style factorization of the nested (HSS) part of a GOFMM compression
// (see factorization.hpp for the algebra). Bottom-up block elimination:
// leaves are Cholesky-factored exactly, every interior node folds its
// children's sibling coupling in with a Woodbury capacitance system
//
//   C = I + blkdiag(S_l, S_r) M,   M = [[0, B], [Bᵀ, 0]],
//
// and the nested solve operators Φ and Grams S telescope upward so no
// quantity larger than |β| × r is ever formed.
#include "core/factorization.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "la/blas.hpp"
#include "la/flops.hpp"
#include "la/lapack.hpp"
#include "util/timer.hpp"

namespace gofmm {

namespace {

constexpr std::uint64_t chol_flops(index_t n) {
  return std::uint64_t(n) * std::uint64_t(n) * std::uint64_t(n) / 3;
}

constexpr std::uint64_t getrf_flops(index_t n) {
  return 2ull * std::uint64_t(n) * std::uint64_t(n) * std::uint64_t(n) / 3;
}

/// out rows [row0, row0+src.rows()) = src.
template <typename T>
void put_rows(la::Matrix<T>& out, index_t row0, const la::Matrix<T>& src) {
  for (index_t j = 0; j < src.cols(); ++j)
    std::copy_n(src.col(j), src.rows(), out.col(j) + row0);
}

template <typename T>
void symmetrize(la::Matrix<T>& s) {
  for (index_t j = 0; j < s.cols(); ++j)
    for (index_t i = 0; i < j; ++i) {
      const T avg = (s(i, j) + s(j, i)) / T(2);
      s(i, j) = avg;
      s(j, i) = avg;
    }
}

}  // namespace

template <typename T>
UlvFactorization<T>::UlvFactorization(const CompressedMatrix<T>& kc,
                                      T regularization)
    : kc_(kc) {
  check<Error>(std::isfinite(double(regularization)) && regularization >= T(0),
               "factorize: regularization must be finite and >= 0");
  Timer timer;
  stats_.regularization = double(regularization);
  fn_.assign(std::size_t(kc_.tree_->num_nodes()), FNode{});
  for (const tree::Node* node : kc_.tree_->postorder()) {
    if (node->is_leaf())
      factor_leaf(node, regularization);
    else
      factor_internal(node);
  }
  stats_.seconds = timer.seconds();
  stats_.positive_definite = det_sign_ > 0;
  for (const FNode& f : fn_) {
    stats_.memory_bytes +=
        std::uint64_t(f.chol.size() + f.v.size() + f.phi.size() + f.s.size() +
                      f.coupling.size() + f.cap.size()) *
        sizeof(T);
    stats_.memory_bytes += std::uint64_t(f.cap_pivots.size()) * sizeof(index_t);
  }
}

template <typename T>
void UlvFactorization<T>::factor_leaf(const tree::Node* node,
                                      T regularization) {
  FNode& f = fn_[std::size_t(node->id)];
  const auto& nd = kc_.data_[std::size_t(node->id)];

  // Exact diagonal block K(β, β) + λI (the self block leads every near
  // list, so the cached copy is reused when present).
  la::Matrix<T> d;
  if (!nd.near_blocks.empty() && !nd.near.empty() && nd.near[0] == node)
    d = nd.near_blocks[0];
  else
    d = kc_.k_->submatrix(kc_.tree_->indices(node), kc_.tree_->indices(node));
  for (index_t i = 0; i < node->count; ++i) d(i, i) += regularization;

  check<StateError>(la::potrf_lower(d),
                    "UlvFactorization: leaf diagonal block not positive "
                    "definite; increase the regularization");
  for (index_t i = 0; i < node->count; ++i)
    logdet_ += 2.0 * std::log(double(d(i, i)));
  stats_.flops += chol_flops(node->count);
  f.chol = std::move(d);

  // Parent-facing basis V = Pᵀ, solve operator Φ = (D + λI)⁻¹ V, and Gram
  // S = Vᵀ Φ. The root (no parent) never couples upward.
  if (node->parent == nullptr || nd.skel.empty()) return;
  const index_t rank = index_t(nd.skel.size());
  f.v = nd.proj.transposed();
  f.phi = f.v;
  la::chol_solve(f.chol, f.phi);
  stats_.flops += 2 * la::FlopCounter::trsm_flops(node->count, rank);
  f.s.resize(rank, rank);
  la::gemm(la::Op::Trans, la::Op::None, T(1), f.v, f.phi, T(0), f.s);
  stats_.flops += la::FlopCounter::gemm_flops(rank, rank, node->count);
  symmetrize(f.s);
}

template <typename T>
void UlvFactorization<T>::factor_internal(const tree::Node* node) {
  const tree::Node* l = node->left();
  const tree::Node* r = node->right();
  FNode& f = fn_[std::size_t(node->id)];
  const FNode& fl = fn_[std::size_t(l->id)];
  const FNode& fr = fn_[std::size_t(r->id)];
  const auto& nd = kc_.data_[std::size_t(node->id)];
  const auto& skel_l = kc_.data_[std::size_t(l->id)].skel;
  const auto& skel_r = kc_.data_[std::size_t(r->id)].skel;
  const index_t nl = l->count;
  const index_t rl = fl.v.cols();
  const index_t rr = fr.v.cols();

  // A child's basis is "complete" when its V spans its whole skeleton —
  // always true for skeletonized subtrees; rank 0 (never skeletonized,
  // e.g. the top levels of a budget > 0 FMM partition) degrades to a
  // block-diagonal step here.
  const bool complete_l = rl == index_t(skel_l.size());
  const bool complete_r = rr == index_t(skel_r.size());
  const bool couple = complete_l && complete_r && rl > 0 && rr > 0;

  if (couple) {
    // Sibling coupling through the skeleton block B = K(l̃, r̃) and the
    // capacitance C = I + blkdiag(S_l, S_r) M = [[I, S_l B], [S_r Bᵀ, I]].
    f.coupling = kc_.k_->submatrix(skel_l, skel_r);
    la::Matrix<T> slb(rl, rr);
    la::gemm(la::Op::None, la::Op::None, T(1), fl.s, f.coupling, T(0), slb);
    la::Matrix<T> srbt(rr, rl);
    la::gemm(la::Op::None, la::Op::Trans, T(1), fr.s, f.coupling, T(0), srbt);
    stats_.flops += la::FlopCounter::gemm_flops(rl, rr, rl) +
                    la::FlopCounter::gemm_flops(rr, rl, rr);
    la::Matrix<T> c(rl + rr, rl + rr);
    for (index_t j = 0; j < rr; ++j) std::copy_n(slb.col(j), rl, c.col(rl + j));
    for (index_t j = 0; j < rl; ++j) std::copy_n(srbt.col(j), rr, c.col(j) + rl);
    for (index_t i = 0; i < rl + rr; ++i) c(i, i) += T(1);
    check<StateError>(la::getrf(c, f.cap_pivots),
                      "UlvFactorization: singular capacitance system; "
                      "increase the regularization");
    stats_.flops += getrf_flops(rl + rr);
    // det(K̃_p + λI) = det(blkdiag) · det(C) (Sylvester); the LU diagonal
    // and pivot swaps carry det(C) including its sign.
    for (index_t i = 0; i < rl + rr; ++i) {
      const double u = double(c(i, i));
      if (u < 0) det_sign_ = -det_sign_;
      logdet_ += std::log(std::abs(u));
      if (f.cap_pivots[std::size_t(i)] != i) det_sign_ = -det_sign_;
    }
    f.cap = std::move(c);
    stats_.num_couplings += 1;
    stats_.max_coupling_size = std::max(stats_.max_coupling_size, rl + rr);
  }

  // Parent-facing factors via the telescoping identities
  //   V_p = blkdiag(V_l, V_r) E,            E = P_{α̃[l̃r̃]}ᵀ
  //   Φ_p = blkdiag(Φ_l, Φ_r) (E − M C⁻¹ Ŝ E),
  //   S_p = (Ŝ E)ᵀ (E − M C⁻¹ Ŝ E),         Ŝ = blkdiag(S_l, S_r),
  // each O(|β| r²) given the children's factors.
  if (node->parent == nullptr || nd.skel.empty() || !complete_l ||
      !complete_r || rl + rr == 0)
    return;
  const index_t rp = index_t(nd.skel.size());
  const la::Matrix<T> e = nd.proj.transposed();
  check<StateError>(e.rows() == rl + rr,
                    "UlvFactorization: projection/basis rank mismatch");
  const la::Matrix<T> e_top = e.block(0, 0, rl, rp);
  const la::Matrix<T> e_bot = e.block(rl, 0, rr, rp);

  f.v.resize(node->count, rp);
  if (rl > 0) {
    la::Matrix<T> top(nl, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fl.v, e_top, T(0), top);
    put_rows(f.v, 0, top);
    stats_.flops += la::FlopCounter::gemm_flops(nl, rp, rl);
  }
  if (rr > 0) {
    la::Matrix<T> bot(r->count, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fr.v, e_bot, T(0), bot);
    put_rows(f.v, nl, bot);
    stats_.flops += la::FlopCounter::gemm_flops(r->count, rp, rr);
  }

  la::Matrix<T> se(rl + rr, rp);
  if (rl > 0) {
    la::Matrix<T> t(rl, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fl.s, e_top, T(0), t);
    put_rows(se, 0, t);
  }
  if (rr > 0) {
    la::Matrix<T> t(rr, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fr.s, e_bot, T(0), t);
    put_rows(se, rl, t);
  }

  la::Matrix<T> fmat = e;  // F = E − M C⁻¹ Ŝ E (couple) or E (diagonal)
  if (couple) {
    la::Matrix<T> z = se;
    la::getrs(f.cap, f.cap_pivots, z);
    stats_.flops += la::FlopCounter::gemm_flops(rl + rr, rp, rl + rr);
    const la::Matrix<T> z_top = z.block(0, 0, rl, rp);
    const la::Matrix<T> z_bot = z.block(rl, 0, rr, rp);
    la::Matrix<T> m_top(rl, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), f.coupling, z_bot, T(0), m_top);
    la::Matrix<T> m_bot(rr, rp);
    la::gemm(la::Op::Trans, la::Op::None, T(1), f.coupling, z_top, T(0), m_bot);
    for (index_t j = 0; j < rp; ++j) {
      for (index_t i = 0; i < rl; ++i) fmat(i, j) -= m_top(i, j);
      for (index_t i = 0; i < rr; ++i) fmat(rl + i, j) -= m_bot(i, j);
    }
  }

  f.phi.resize(node->count, rp);
  if (rl > 0) {
    const la::Matrix<T> f_top = fmat.block(0, 0, rl, rp);
    la::Matrix<T> top(nl, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fl.phi, f_top, T(0), top);
    put_rows(f.phi, 0, top);
    stats_.flops += la::FlopCounter::gemm_flops(nl, rp, rl);
  }
  if (rr > 0) {
    const la::Matrix<T> f_bot = fmat.block(rl, 0, rr, rp);
    la::Matrix<T> bot(r->count, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fr.phi, f_bot, T(0), bot);
    put_rows(f.phi, nl, bot);
    stats_.flops += la::FlopCounter::gemm_flops(r->count, rp, rr);
  }

  f.s.resize(rp, rp);
  la::gemm(la::Op::Trans, la::Op::None, T(1), se, fmat, T(0), f.s);
  stats_.flops += la::FlopCounter::gemm_flops(rp, rp, rl + rr);
  symmetrize(f.s);
}

template <typename T>
void UlvFactorization<T>::solve_node(const tree::Node* node,
                                     la::Matrix<T>& b) const {
  const FNode& f = fn_[std::size_t(node->id)];
  if (node->is_leaf()) {
    la::chol_solve(f.chol, b);
    return;
  }
  const tree::Node* l = node->left();
  const tree::Node* r = node->right();
  const index_t nl = l->count;
  const index_t nr = r->count;
  const index_t rhs = b.cols();

  // y = blkdiag(K̃_l + λI, K̃_r + λI)⁻¹ b.
  la::Matrix<T> top = b.block(0, 0, nl, rhs);
  solve_node(l, top);
  la::Matrix<T> bot = b.block(nl, 0, nr, rhs);
  solve_node(r, bot);

  if (f.has_coupling()) {
    const FNode& fl = fn_[std::size_t(l->id)];
    const FNode& fr = fn_[std::size_t(r->id)];
    const index_t rl = fl.v.cols();
    const index_t rr = fr.v.cols();
    // Woodbury downdate: y −= blkdiag(Φ_l, Φ_r) M C⁻¹ [V_lᵀ y_l; V_rᵀ y_r].
    la::Matrix<T> z(rl + rr, rhs);
    {
      la::Matrix<T> tl(rl, rhs);
      la::gemm(la::Op::Trans, la::Op::None, T(1), fl.v, top, T(0), tl);
      put_rows(z, 0, tl);
      la::Matrix<T> tr(rr, rhs);
      la::gemm(la::Op::Trans, la::Op::None, T(1), fr.v, bot, T(0), tr);
      put_rows(z, rl, tr);
    }
    la::getrs(f.cap, f.cap_pivots, z);
    const la::Matrix<T> z_top = z.block(0, 0, rl, rhs);
    const la::Matrix<T> z_bot = z.block(rl, 0, rr, rhs);
    la::Matrix<T> gl(rl, rhs);
    la::gemm(la::Op::None, la::Op::None, T(1), f.coupling, z_bot, T(0), gl);
    la::Matrix<T> gr(rr, rhs);
    la::gemm(la::Op::Trans, la::Op::None, T(1), f.coupling, z_top, T(0), gr);
    la::gemm(la::Op::None, la::Op::None, T(-1), fl.phi, gl, T(1), top);
    la::gemm(la::Op::None, la::Op::None, T(-1), fr.phi, gr, T(1), bot);
  }

  put_rows(b, 0, top);
  put_rows(b, nl, bot);
}

template <typename T>
la::Matrix<T> UlvFactorization<T>::solve(const la::Matrix<T>& b) const {
  const index_t n = kc_.size();
  check<DimensionError>(b.rows() == n,
                        "UlvFactorization::solve: b must have N rows");
  check<DimensionError>(b.cols() >= 1,
                        "UlvFactorization::solve: b must have >= 1 column");
  const index_t r = b.cols();
  const auto& perm = kc_.tree_->perm();

  la::Matrix<T> x(n, r);
  for (index_t j = 0; j < r; ++j) {
    const T* src = b.col(j);
    T* dst = x.col(j);
    for (index_t pos = 0; pos < n; ++pos)
      dst[pos] = src[perm[std::size_t(pos)]];
  }
  solve_node(kc_.tree_->root(), x);
  la::Matrix<T> out(n, r);
  for (index_t j = 0; j < r; ++j) {
    const T* src = x.col(j);
    T* dst = out.col(j);
    for (index_t pos = 0; pos < n; ++pos)
      dst[perm[std::size_t(pos)]] = src[pos];
  }
  return out;
}

template <typename T>
double UlvFactorization<T>::logdet() const {
  check<StateError>(det_sign_ > 0,
                    "UlvFactorization::logdet: factored operator is not "
                    "positive definite");
  return logdet_;
}

// --- CompressedMatrix's Factorizable capability ----------------------------

template <typename T>
void CompressedMatrix<T>::factorize(T regularization) {
  fact_ = std::make_unique<UlvFactorization<T>>(*this, regularization);
}

template <typename T>
la::Matrix<T> CompressedMatrix<T>::solve(const la::Matrix<T>& b) const {
  check<StateError>(fact_ != nullptr,
                    "CompressedMatrix::solve: call factorize() first");
  return fact_->solve(b);
}

template <typename T>
double CompressedMatrix<T>::logdet() const {
  check<StateError>(fact_ != nullptr,
                    "CompressedMatrix::logdet: call factorize() first");
  return fact_->logdet();
}

template <typename T>
FactorizationStats CompressedMatrix<T>::factorization_stats() const {
  check<StateError>(
      fact_ != nullptr,
      "CompressedMatrix::factorization_stats: call factorize() first");
  return fact_->stats();
}

template <typename T>
std::unique_ptr<CompressedMatrix<T>> make_preconditioner(
    std::shared_ptr<const SPDMatrix<T>> k, T regularization, Config coarse) {
  // Pure HSS structure: with budget 0 every off-diagonal coupling is a
  // sibling skeleton block, so the ULV factorization captures the whole
  // coarse operator (solve() inverts it to round-off).
  coarse.budget = 0.0;
  // Diagonal scale of K, for the λ escalation floor below.
  double diag_scale = 0;
  {
    const index_t n = k->size();
    const index_t step = std::max<index_t>(1, n / 16);
    index_t cnt = 0;
    for (index_t i = 0; i < n; i += step, ++cnt) {
      const index_t one[] = {i};
      diag_scale += std::abs(double(k->submatrix(one, one)(0, 0)));
    }
    diag_scale /= double(cnt);
  }
  auto op = CompressedMatrix<T>::compress_unique(std::move(k), coarse);
  const index_t n = op->size();

  // PCG needs an SPD preconditioner, but the coarse compression error E =
  // K̃ − K can leave K̃ + λI indefinite whenever λ < ‖E‖ (paper
  // "Limitations"). Start λ at twice the sampled absolute error estimate,
  // then verify positive definiteness and escalate geometrically until it
  // holds — re-elimination is cheap, over-regularising only costs CG
  // iterations, while an indefinite preconditioner breaks PCG outright.
  T lambda = regularization;
  {
    // λ floor from the coarse compression error E = K̃ − K: power
    // iteration on E_colsᵀ E_cols over s sampled columns gives
    // σ_max(E_cols), a LOWER bound on ‖E‖₂ (column sampling only sees
    // part of the spectrum). The ×2 compensates for that underestimate
    // heuristically — it is NOT a guarantee, which is why the PD probe
    // below and the per-column PCG fallback in conjugate_gradient remain
    // load-bearing. One blocked apply + an s-column oracle read.
    const index_t s = std::min<index_t>(64, n);
    Prng rng(coarse.seed + 13);
    const std::vector<index_t> cols = sample_without_replacement(rng, n, s);
    la::Matrix<T> unit(n, s);
    for (index_t j = 0; j < s; ++j) unit(cols[std::size_t(j)], j) = T(1);
    const la::Matrix<T> approx = op->apply(unit);
    std::vector<index_t> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), index_t(0));
    la::Matrix<T> err = op->matrix().submatrix(all, cols);  // E_cols = K̃−K
    for (index_t j = 0; j < s; ++j)
      for (index_t i = 0; i < n; ++i) err(i, j) = approx(i, j) - err(i, j);
    la::Matrix<T> v = la::Matrix<T>::random_normal(s, 1, coarse.seed + 29);
    double sigma = 0;
    for (int it = 0; it < 6; ++it) {
      la::Matrix<T> y(n, 1);
      la::gemm(la::Op::None, la::Op::None, T(1), err, v, T(0), y);
      la::gemm(la::Op::Trans, la::Op::None, T(1), err, y, T(0), v);
      const double nrm = la::nrm2(s, v.col(0));  // ≈ σ², v was unit-norm
      sigma = std::sqrt(nrm);
      if (nrm <= 0) break;
      for (index_t i = 0; i < s; ++i) v(i, 0) = T(double(v(i, 0)) / nrm);
    }
    lambda = std::max(lambda, T(2 * sigma));
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool ok = true;
    try {
      op->factorize(lambda);
      // Necessary condition from the elimination itself (determinant
      // signs), then a sharper probe: inverse power iteration. The
      // largest-magnitude eigenvalue of (K̃ + λI)⁻¹ is 1/μ_min, so its
      // Rayleigh quotient is negative exactly when an indefinite μ_min
      // survived λ — even in pairs the determinant test cannot see.
      ok = op->factorization_stats().positive_definite;
      if (ok) {
        la::Matrix<T> y = la::Matrix<T>::random_normal(n, 1, coarse.seed + 17);
        for (int it = 0; it < 8 && ok; ++it) {
          y = op->solve(y);
          const double nrm = la::nrm2(n, y.col(0));
          if (nrm <= 0) {
            ok = false;
            break;
          }
          for (index_t i = 0; i < n; ++i) y(i, 0) = T(double(y(i, 0)) / nrm);
        }
        if (ok) {
          la::Matrix<T> z = op->solve(y);
          ok = la::dot(n, y.col(0), z.col(0)) > 0;
        }
      }
    } catch (const StateError&) {
      ok = false;  // a leaf or capacitance refused to eliminate
    }
    if (ok) return op;
    lambda = std::max({T(4) * lambda, T(1e-3 * diag_scale),
                       std::numeric_limits<T>::min()});
  }
  check<StateError>(false,
                    "make_preconditioner: could not reach a positive "
                    "definite factorization; tighten the coarse tolerance");
  return op;
}

template class UlvFactorization<float>;
template class UlvFactorization<double>;

template void CompressedMatrix<float>::factorize(float);
template void CompressedMatrix<double>::factorize(double);
template la::Matrix<float> CompressedMatrix<float>::solve(
    const la::Matrix<float>&) const;
template la::Matrix<double> CompressedMatrix<double>::solve(
    const la::Matrix<double>&) const;
template double CompressedMatrix<float>::logdet() const;
template double CompressedMatrix<double>::logdet() const;
template FactorizationStats CompressedMatrix<float>::factorization_stats()
    const;
template FactorizationStats CompressedMatrix<double>::factorization_stats()
    const;

template std::unique_ptr<CompressedMatrix<float>> make_preconditioner<float>(
    std::shared_ptr<const SPDMatrix<float>>, float, Config);
template std::unique_ptr<CompressedMatrix<double>> make_preconditioner<double>(
    std::shared_ptr<const SPDMatrix<double>>, double, Config);

}  // namespace gofmm
