// Shared ULV factorization engine over the backend-neutral HssView (see
// factorization.hpp for the algebra). Two elimination structures:
//
// ORTHOGONAL (Nested views). Per node the stacked parent-facing basis is
// QR-factored ONCE, V = Q [R; 0]; rotating the node's block by Qᵀ(·)Q
// zeroes the off-diagonal coupling below the leading r rows, the trailing
// rotated block Ĝ is eliminated by a dense factorization, and the kept
// rows pass a Schur complement plus the reduced basis R upward, where the
// reduced coupling is B̃ = R_l B R_rᵀ. Because Qᵀ(A + λI)Q = QᵀAQ + λI,
// the rotations, rotated leaf blocks, and reduced couplings are all
// λ-independent — refactorize(λ') re-factors only rotated diagonal blocks.
//
// WOODBURY (Explicit views, or forced). Bottom-up block elimination:
// leaves are factored exactly, every interior node folds its children's
// sibling coupling in with a Woodbury capacitance system
//
//   C = I + blkdiag(S_l, S_r) M,   M = [[0, B], [Bᵀ, 0]],
//
// and the per-node solve operators Φ and Grams S telescope upward (Nested
// views) or come from subtree solves (Explicit views).
//
// Both paths are λ-oblivious about where their inputs come from: during
// construction every payload is fetched from the view and cached;
// refactorize(λ') reruns IDENTICAL code against the cache, so a retune is
// bit-identical to a fresh factorization with zero oracle or view work.
#include "core/factorization.hpp"

#include <atomic>
#include <cmath>
#include <exception>
#include <limits>
#include <numeric>
#include <type_traits>

#include "core/solvers.hpp"
#include "la/blas.hpp"
#include "la/flops.hpp"
#include "la/lapack.hpp"
#include "la/ldlt.hpp"
#include "la/qr.hpp"
#include "util/timer.hpp"

namespace gofmm {

namespace {

constexpr std::uint64_t chol_flops(index_t n) {
  return std::uint64_t(n) * std::uint64_t(n) * std::uint64_t(n) / 3;
}

constexpr std::uint64_t getrf_flops(index_t n) {
  return 2ull * std::uint64_t(n) * std::uint64_t(n) * std::uint64_t(n) / 3;
}

/// out rows [row0, row0+src.rows()) = src.
template <typename T>
void put_rows(la::Matrix<T>& out, index_t row0, const la::Matrix<T>& src) {
  for (index_t j = 0; j < src.cols(); ++j)
    std::copy_n(src.col(j), src.rows(), out.col(j) + row0);
}

template <typename T>
void symmetrize(la::Matrix<T>& s) {
  for (index_t j = 0; j < s.cols(); ++j)
    for (index_t i = 0; i < j; ++i) {
      const T avg = (s(i, j) + s(j, i)) / T(2);
      s(i, j) = avg;
      s(j, i) = avg;
    }
}

/// Assembles an interior node's reduced block [[D_l, B̃], [B̃ᵀ, D_r]] from
/// its children's kept diagonal blocks (kl-by-kl / kr-by-kr) and the
/// cached reduced coupling (absent: block-diagonal assembly).
template <typename T>
la::Matrix<T> assemble_reduced(index_t kl, index_t kr, const la::Matrix<T>& dl,
                               const la::Matrix<T>& dr,
                               const la::Matrix<T>* bt) {
  la::Matrix<T> a(kl + kr, kl + kr);
  for (index_t j = 0; j < kl; ++j) std::copy_n(dl.col(j), kl, a.col(j));
  for (index_t j = 0; j < kr; ++j)
    std::copy_n(dr.col(j), kr, a.col(kl + j) + kl);
  if (bt != nullptr) {
    for (index_t j = 0; j < kr; ++j)
      std::copy_n(bt->col(j), kl, a.col(kl + j));
    for (index_t j = 0; j < kl; ++j)
      for (index_t i = 0; i < kr; ++i) a(kl + i, j) = (*bt)(j, i);
  }
  return a;
}

/// HssView<float> adapter over a higher-precision view: the topology and
/// permutation are copied verbatim, every payload fetch (leaf diagonal,
/// basis, coupling) is demoted element-wise. The engine reads a view only
/// during construction, so the adapter lives on the constructor's stack —
/// this is how Precision::MixedF32 reuses the entire float engine with
/// zero backend changes. An empty coupling() stays empty (the B = I
/// convention survives demotion).
template <typename T>
class DemotedHssView final : public HssView<float> {
 public:
  explicit DemotedHssView(const HssView<T>& src) : src_(src) {
    this->n_ = src.size();
    this->root_ = src.root();
    this->topo_ = src.nodes();
    this->perm_ = src.perm();
  }
  [[nodiscard]] la::Matrix<float> leaf_diag(index_t id) const override {
    return la::convert<float>(src_.leaf_diag(id));
  }
  [[nodiscard]] index_t basis_rank(index_t id) const override {
    return src_.basis_rank(id);
  }
  [[nodiscard]] BasisKind basis_kind(index_t id) const override {
    return src_.basis_kind(id);
  }
  [[nodiscard]] la::Matrix<float> basis(index_t id) const override {
    return la::convert<float>(src_.basis(id));
  }
  [[nodiscard]] la::Matrix<float> coupling(index_t id) const override {
    return la::convert<float>(src_.coupling(id));
  }

 private:
  const HssView<T>& src_;
};

}  // namespace

// ======================================================================
// Construction: topology snapshot, mode resolution, first elimination.
// ======================================================================

template <typename T>
void UlvFactorization<T>::snapshot_topology(const HssView<T>& view) {
  n_ = view.size();
  root_ = view.root();
  topo_ = view.nodes();
  perm_ = view.perm();
  check<Error>(perm_.empty() || index_t(perm_.size()) == n_,
               "UlvFactorization: view permutation has wrong length");

  // Group node ids by depth for the level-synchronous solve sweeps.
  index_t max_level = 0;
  for (const HssTopoNode& nd : topo_)
    max_level = std::max(max_level, nd.level);
  levels_.assign(std::size_t(max_level) + 1, {});
  for (const HssTopoNode& nd : topo_)
    levels_[std::size_t(nd.level)].push_back(nd.id);

  // Iterative postorder (children before parents), kept for refactorize().
  post_.reserve(topo_.size());
  {
    std::vector<index_t> stack{root_};
    while (!stack.empty()) {
      const index_t id = stack.back();
      stack.pop_back();
      post_.push_back(id);
      const HssTopoNode& nd = topo_[std::size_t(id)];
      if (!nd.is_leaf()) {
        stack.push_back(nd.left);
        stack.push_back(nd.right);
      }
    }
    std::reverse(post_.begin(), post_.end());
  }

  // Per-node subtree depth (1 at leaves), for the explicit-basis flop
  // accounting — trees with uneven leaf depths must not be overcharged.
  subtree_depth_.assign(topo_.size(), 1);
  declared_rank_.assign(topo_.size(), 0);
  basis_kind_.assign(topo_.size(), BasisKind::Nested);
  for (const index_t id : post_) {
    const HssTopoNode& nd = topo_[std::size_t(id)];
    if (!nd.is_leaf())
      subtree_depth_[std::size_t(id)] =
          1 + std::max(subtree_depth_[std::size_t(nd.left)],
                       subtree_depth_[std::size_t(nd.right)]);
    declared_rank_[std::size_t(id)] = view.basis_rank(id);
    basis_kind_[std::size_t(id)] = view.basis_kind(id);
  }
}

template <typename T>
UlvFactorization<T>::UlvFactorization(const HssView<T>& view, T regularization,
                                      FactorizeOptions options)
    : options_(options) {
  Timer timer;

  // Precision normalisation / the mixed-precision delegate. On a float
  // operator MixedF32 IS the native path, so it collapses to Double. On a
  // double operator MixedF32 builds the whole factorization as an internal
  // UlvFactorization<float> over a payload-demoting view adapter: bases,
  // couplings, rotations and rotated leaf blocks are all resident in float
  // (~2x fewer bytes), while solve() promotes results back to double and
  // callers recover double accuracy through refined_solve().
  if constexpr (std::is_same_v<T, float>) {
    options_.precision = Precision::Double;
  } else {
    if (options_.precision == Precision::MixedF32) {
      snapshot_topology(view);
      const DemotedHssView<T> demoted(view);
      FactorizeOptions low_options = options_;
      low_options.precision = Precision::Double;
      low_ = std::make_unique<UlvFactorization<float>>(
          demoted, float(regularization), low_options);
      adopt_low_stats(regularization);
      stats_.seconds = timer.seconds();
      return;
    }
  }

  snapshot_topology(view);

  bool all_nested = true;
  for (const BasisKind kind : basis_kind_)
    if (kind == BasisKind::Explicit) all_nested = false;
  check<Error>(options.mode != UlvMode::Orthogonal || all_nested,
               "UlvFactorization: UlvMode::Orthogonal requires nested bases "
               "(Explicit/HODLR views eliminate through UlvMode::Woodbury)");
  mode_ = options.mode == UlvMode::Woodbury
              ? UlvMode::Woodbury
              : (all_nested ? UlvMode::Orthogonal : UlvMode::Woodbury);

  if (mode_ == UlvMode::Orthogonal) {
    on_.assign(topo_.size(), ONode{});
    slots_.assign(topo_.size(), {});
    build_orthogonal(view);
    const std::uint64_t build_flops = stats_.flops;  // λ-independent work
    eliminate_orthogonal(regularization);
    stats_.flops += build_flops;
  } else {
    fn_.assign(topo_.size(), FNode{});
    cache_.assign(topo_.size(), PayloadCache{});
    // First elimination: view_ is live, so payload reads fetch-and-cache.
    view_ = &view;
    eliminate_woodbury(regularization);
    view_ = nullptr;
  }
  stats_.seconds = timer.seconds();
}

template <typename T>
void UlvFactorization<T>::refactorize(T regularization) {
  if (low_ != nullptr) {
    Timer timer;
    low_->refactorize(float(regularization));
    adopt_low_stats(regularization);
    stats_.seconds = timer.seconds();
    return;
  }
  Timer timer;
  if (mode_ == UlvMode::Orthogonal)
    eliminate_orthogonal(regularization);
  else
    eliminate_woodbury(regularization);
  stats_.seconds = timer.seconds();
  stats_.num_refactorizations += 1;
}

template <typename T>
void UlvFactorization<T>::adopt_low_stats(T regularization) {
  // Mirror the float engine's state so every double-facing accessor
  // (stats, logdet, inertia, mode) reports the mixed factorization
  // without consulting low_ again. num_refactorizations rides along from
  // low_'s own counter; memory_bytes already reflects sizeof(float).
  stats_ = low_->stats();
  stats_.precision = Precision::MixedF32;
  stats_.regularization = double(regularization);
  mode_ = low_->mode();
  logdet_ = low_->log_abs_det();
  det_sign_ = low_->det_sign();
  negative_total_ = stats_.negative_eigenvalues;
  leaf_negative_ = stats_.leaf_negative_eigenvalues;
}

// ======================================================================
// Shared λ-dependent bookkeeping.
// ======================================================================

template <typename T>
void UlvFactorization<T>::reset_lambda_stats(T regularization) {
  check<Error>(std::isfinite(double(regularization)),
               "factorize: regularization must be finite");
  stats_.regularization = double(regularization);
  stats_.flops = 0;
  stats_.num_couplings = 0;
  stats_.max_coupling_size = 0;
  stats_.ldlt_leaves = 0;
  logdet_ = 0;
  det_sign_ = 1;
  negative_total_ = 0;
  leaf_negative_ = 0;
}

template <typename T>
void UlvFactorization<T>::finish_stats() {
  stats_.orthogonal = mode_ == UlvMode::Orthogonal;
  stats_.exact_inertia = stats_.orthogonal;
  if (stats_.orthogonal) {
    // Orthogonal similarity preserves inertia and the Schur chain adds it
    // (Haynsworth): the block inertias ARE the operator inertia. The leaf
    // field reports the exact total too — a full-rank leaf eliminates
    // nothing at leaf level, so its inertia surfaces in ancestor blocks,
    // and the exact total is the strictly stronger indefiniteness signal.
    stats_.leaf_negative_eigenvalues = negative_total_;
    stats_.negative_eigenvalues = negative_total_;
    stats_.positive_definite = negative_total_ == 0 && det_sign_ > 0;
  } else {
    stats_.leaf_negative_eigenvalues = leaf_negative_;
    // A leaf with a negative LDLᵀ eigenvalue is a principal submatrix of
    // the regularized operator, so (Cauchy interlacing) the operator is
    // indefinite; an even count of sign flips in the capacitance LUs can
    // still hide indefiniteness, hence the inverse-power probe callers run
    // on top (make_preconditioner).
    stats_.negative_eigenvalues = leaf_negative_;
    stats_.positive_definite = det_sign_ > 0 && leaf_negative_ == 0;
  }
  stats_.memory_bytes = 0;
  for (const FNode& f : fn_) {
    stats_.memory_bytes +=
        std::uint64_t(f.leaf_fac.size() + f.v.size() + f.phi.size() +
                      f.s.size() + f.coupling.size() + f.cap.size()) *
        sizeof(T);
    stats_.memory_bytes +=
        std::uint64_t(f.cap_pivots.size() + f.leaf_pivots.size()) *
        sizeof(index_t);
  }
  for (const ONode& o : on_) {
    stats_.memory_bytes +=
        std::uint64_t(o.rk.size() + o.a0.size() + o.bt.size() +
                      o.qtop.size() + o.qbot.size() + o.base0.size() +
                      o.qq_l.size() + o.qq_r.size() + o.u_l.size() +
                      o.u_r.size() + o.gfac.size() + o.fhat.size() +
                      o.w.size() + o.schur.size()) *
        sizeof(T);
    // qf.size() covers vr + tau + the cached compact-WY V/T panels.
    stats_.memory_bytes += o.qf.size() * sizeof(T) +
                           std::uint64_t(o.gpiv.size()) * sizeof(index_t);
  }
  for (const std::vector<index_t>& s : slots_)
    stats_.memory_bytes += std::uint64_t(s.size()) * sizeof(index_t);
  for (const PayloadCache& c : cache_)
    stats_.memory_bytes +=
        std::uint64_t(c.leaf_k.size() + c.transfer.size()) * sizeof(T);
}

template <typename T>
void UlvFactorization<T>::factor_block(la::Matrix<T>& block,
                                       std::vector<index_t>& pivots,
                                       OrthoTally& tally) const {
  const index_t n = block.rows();
  pivots.clear();
  if (n == 0) return;
  bool use_ldlt = options_.elimination == Elimination::PivotedLdlt;
  la::Matrix<T> saved;
  if (!use_ldlt) {
    saved = block;  // potrf partially overwrites on failure
    if (la::potrf_lower(block)) {
      for (index_t i = 0; i < n; ++i)
        tally.logdet += 2.0 * std::log(double(block(i, i)));
    } else {
      check<StateError>(options_.elimination != Elimination::Cholesky,
                        "UlvFactorization: eliminated diagonal block not "
                        "positive definite; increase the regularization or "
                        "use Elimination::Auto / PivotedLdlt");
      block = std::move(saved);
      use_ldlt = true;
    }
  }
  if (use_ldlt) {
    check<StateError>(la::sytrf_lower(block, pivots),
                      "UlvFactorization: eliminated diagonal block is "
                      "exactly singular at this regularization; adjust "
                      "lambda");
    const la::LdltInertia inertia = la::ldlt_inertia(block, pivots);
    tally.logdet += inertia.log_abs_det;
    tally.sign *= inertia.sign;
    tally.negative += inertia.negative;
    tally.ldlt = true;
  }
  tally.flops += chol_flops(n);
}

template <typename T>
void UlvFactorization<T>::block_solve(const la::Matrix<T>& fac,
                                      const std::vector<index_t>& pivots,
                                      la::Matrix<T>& b) {
  if (pivots.empty())
    la::chol_solve(fac, b);
  else
    la::sytrs_lower(fac, pivots, b);
}

// ======================================================================
// Orthogonal elimination: λ-independent structure build.
// ======================================================================

template <typename T>
void UlvFactorization<T>::build_orthogonal(const HssView<T>& view) {
  stats_.flops = 0;
  for (const index_t id : post_) {
    const HssTopoNode& nd = topo_[std::size_t(id)];
    ONode& o = on_[std::size_t(id)];
    if (nd.is_leaf()) {
      o.dim = nd.count;
      la::Matrix<T> k0 = view.leaf_diag(id);
      check<StateError>(k0.rows() == nd.count && k0.cols() == nd.count,
                        "UlvFactorization: leaf diagonal block has wrong "
                        "shape");
      const index_t r = declared_rank_[std::size_t(id)];
      if (r > 0) {
        check<StateError>(r <= nd.count,
                          "UlvFactorization: leaf basis rank exceeds the "
                          "leaf size");
        la::Matrix<T> basis = view.basis(id);
        check<StateError>(basis.rows() == nd.count && basis.cols() == r,
                          "UlvFactorization: leaf basis has wrong shape");
        o.qf = la::qr_factorize(std::move(basis));
        o.rk = la::qr_extract_r(o.qf);
        o.kept = r;
        stats_.flops += la::geqrt_flops(nd.count, r);
        // a0 = Qᵀ K(β,β) Q: apply Qᵀ, transpose (K symmetric), apply Qᵀ.
        la::ormqr_left(la::Op::Trans, o.qf, k0);
        la::Matrix<T> kt = k0.transposed();
        la::ormqr_left(la::Op::Trans, o.qf, kt);
        symmetrize(kt);
        o.a0 = std::move(kt);
        stats_.flops += 2 * la::ormqr_flops(nd.count, r, nd.count);
      } else {
        o.kept = 0;
        o.a0 = std::move(k0);
      }
      o.a0_cached = true;
      // A full-rank leaf eliminates nothing: its Schur complement is
      // exactly a0 + λI — the base of the λ-linear frontier.
      o.shifted = o.kept == o.dim;
      continue;
    }

    const ONode& ol = on_[std::size_t(nd.left)];
    const ONode& orr = on_[std::size_t(nd.right)];
    const index_t kl = ol.kept;
    const index_t kr = orr.kept;
    o.dim = kl + kr;
    const bool complete_l = kl == declared_rank_[std::size_t(nd.left)];
    const bool complete_r = kr == declared_rank_[std::size_t(nd.right)];
    o.coupled = complete_l && complete_r && kl > 0 && kr > 0;

    if (o.coupled) {
      // Reduced coupling B̃ = R_l B R_rᵀ (λ-independent). An EMPTY coupling
      // payload means B = I by convention (see HssView::coupling), so B̃
      // collapses to R_l R_rᵀ.
      la::Matrix<T> b = view.coupling(id);
      if (b.empty()) {
        check<StateError>(kl == kr,
                          "UlvFactorization: identity coupling (empty "
                          "coupling()) requires equal child ranks");
        o.bt.resize(kl, kr);
        la::gemm(la::Op::None, la::Op::Trans, T(1), ol.rk, orr.rk, T(0), o.bt);
      } else {
        check<StateError>(b.rows() == kl && b.cols() == kr,
                          "UlvFactorization: coupling block has wrong shape");
        la::Matrix<T> brt(kl, kr);
        la::gemm(la::Op::None, la::Op::Trans, T(1), b, orr.rk, T(0), brt);
        o.bt.resize(kl, kr);
        la::gemm(la::Op::None, la::Op::None, T(1), ol.rk, brt, T(0), o.bt);
        stats_.flops += 2 * la::FlopCounter::gemm_flops(kl, kr, kr);
      }
    }

    // Parent-facing reduced basis Ṽ_p = [R_l E_top; R_r E_bot], QR'd once.
    const index_t rp = declared_rank_[std::size_t(id)];
    const bool keeps = nd.parent != HssTopoNode::kNone && rp > 0 &&
                       complete_l && complete_r && o.dim > 0;
    if (keeps) {
      const la::Matrix<T> e = view.basis(id);
      check<StateError>(e.rows() == kl + kr && e.cols() == rp,
                        "UlvFactorization: projection/basis rank mismatch");
      check<StateError>(rp <= o.dim,
                        "UlvFactorization: basis rank exceeds the reduced "
                        "dimension");
      la::Matrix<T> vt(o.dim, rp);
      if (kl > 0) {
        const la::Matrix<T> e_top = e.block(0, 0, kl, rp);
        la::Matrix<T> t(kl, rp);
        la::gemm(la::Op::None, la::Op::None, T(1), ol.rk, e_top, T(0), t);
        put_rows(vt, 0, t);
      }
      if (kr > 0) {
        const la::Matrix<T> e_bot = e.block(kl, 0, kr, rp);
        la::Matrix<T> t(kr, rp);
        la::gemm(la::Op::None, la::Op::None, T(1), orr.rk, e_bot, T(0), t);
        put_rows(vt, kl, t);
      }
      o.qf = la::qr_factorize(std::move(vt));
      o.rk = la::qr_extract_r(o.qf);
      o.kept = rp;
      stats_.flops += la::geqrt_flops(o.dim, rp);
    } else {
      o.kept = 0;
    }

    // λ-linear frontier caching: when every CONTRIBUTING child is shifted
    // (its Schur is exactly a0 + λI), this node's assembled block is
    // A₀ + λI with A₀ fixed — rotate and cache A₀ now, and the retune
    // skips this node's assembly and rotation entirely. Otherwise the
    // rotation is unavoidably per-λ, so materialise dense Q once: the
    // retune's Qᵀ A Q then runs as two large GEMMs.
    const bool lchild_ok = kl == 0 || ol.shifted;
    const bool rchild_ok = kr == 0 || orr.shifted;
    o.a0_cached = o.dim > 0 && lchild_ok && rchild_ok;
    if (o.a0_cached) {
      la::Matrix<T> a = assemble_reduced(kl, kr, ol.a0, orr.a0,
                                         o.coupled ? &o.bt : nullptr);
      if (o.kept > 0) {
        la::ormqr_left(la::Op::Trans, o.qf, a);
        la::Matrix<T> at = a.transposed();
        la::ormqr_left(la::Op::Trans, o.qf, at);
        symmetrize(at);
        a = std::move(at);
        stats_.flops += 2 * la::ormqr_flops(o.dim, o.kept, o.dim);
      }
      o.a0 = std::move(a);
    } else if (o.kept > 0) {
      la::Matrix<T> qdense = la::Matrix<T>::identity(o.dim);
      la::ormqr_left(la::Op::None, o.qf, qdense);
      stats_.flops += la::ormqr_flops(o.dim, o.kept, o.dim);
      o.qtop = qdense.block(0, 0, kl, o.dim);
      o.qbot = qdense.block(kl, 0, kr, o.dim);
      // Per-child rotation strategy, fixed at build so every retune is
      // bit-identical: a child with a cached rotated block and a thin
      // eliminated set (elim < kept) takes the low-rank shortcut — its E₀
      // folds into base0, λ enters through the cached Gram QᵢᵀQᵢ, and the
      // per-λ work is a rank-elim downdate. Everything else pays the
      // dense split rotation per λ.
      auto pick_lowrank = [](const ONode& c) {
        return c.a0_cached && (c.dim - c.kept) < c.kept;
      };
      o.lowrank_l = kl > 0 && pick_lowrank(ol);
      o.lowrank_r = kr > 0 && pick_lowrank(orr);
      // base0 = Qᵀ M₀ Q with M₀ the λ-independent part of the reduced
      // system: the coupling plus every low-rank child's E₀ block.
      if (o.coupled || o.lowrank_l || o.lowrank_r) {
        la::Matrix<T> m0(o.dim, o.dim);
        if (o.lowrank_l)
          for (index_t j = 0; j < kl; ++j)
            std::copy_n(ol.a0.col(j), kl, m0.col(j));
        if (o.lowrank_r)
          for (index_t j = 0; j < kr; ++j)
            std::copy_n(orr.a0.col(j), kr, m0.col(kl + j) + kl);
        if (o.coupled) {
          for (index_t j = 0; j < kr; ++j)
            std::copy_n(o.bt.col(j), kl, m0.col(kl + j));
          for (index_t j = 0; j < kl; ++j)
            for (index_t i = 0; i < kr; ++i) m0(kl + i, j) = o.bt(j, i);
        }
        la::ormqr_left(la::Op::Trans, o.qf, m0);
        la::Matrix<T> m0t = m0.transposed();
        la::ormqr_left(la::Op::Trans, o.qf, m0t);
        symmetrize(m0t);
        o.base0 = std::move(m0t);
        stats_.flops += 2 * la::ormqr_flops(o.dim, o.kept, o.dim);
      }
      auto build_lowrank = [&](const ONode& c, const la::Matrix<T>& qi,
                               la::Matrix<T>& qq, la::Matrix<T>& u) {
        qq.resize(o.dim, o.dim);
        la::gemm(la::Op::Trans, la::Op::None, T(1), qi, qi, T(0), qq);
        stats_.flops += la::FlopCounter::gemm_flops(o.dim, o.dim, c.kept);
        const index_t ce = c.dim - c.kept;
        if (ce > 0) {
          const la::Matrix<T> f0 = c.a0.block(0, c.kept, c.kept, ce);
          u.resize(o.dim, ce);
          la::gemm(la::Op::Trans, la::Op::None, T(1), qi, f0, T(0), u);
          stats_.flops += la::FlopCounter::gemm_flops(o.dim, ce, c.kept);
        }
      };
      if (o.lowrank_l) build_lowrank(ol, o.qtop, o.qq_l, o.u_l);
      if (o.lowrank_r) build_lowrank(orr, o.qbot, o.qq_r, o.u_r);
    }
    o.shifted = o.a0_cached && o.kept == o.dim;
  }

  // Dense-Schur demand: a node must materialise its Schur complement per
  // λ only when its parent reads it as a dense block — the unrotated
  // assembly of a kept-0 parent, or the split-rotation side of a rotated
  // one. Shifted and low-rank children are read through caches instead.
  for (const index_t id : post_) {
    const HssTopoNode& nd = topo_[std::size_t(id)];
    if (nd.is_leaf()) continue;
    const ONode& o = on_[std::size_t(id)];
    if (o.a0_cached) continue;  // read through child a0 caches at build
    ONode& ol = on_[std::size_t(nd.left)];
    ONode& orr = on_[std::size_t(nd.right)];
    if (ol.kept > 0 && !ol.shifted && !(o.kept > 0 && o.lowrank_l))
      ol.schur_needed = true;
    if (orr.kept > 0 && !orr.shifted && !(o.kept > 0 && o.lowrank_r))
      orr.schur_needed = true;
  }

  // Solve slot lists: an interior node's reduced system lives on its
  // children's kept workspace rows (left block first). A leaf's kept rows
  // are simply the first `kept` rows of its contiguous range.
  for (const index_t id : post_) {
    const HssTopoNode& nd = topo_[std::size_t(id)];
    if (nd.is_leaf()) continue;
    std::vector<index_t>& s = slots_[std::size_t(id)];
    s.reserve(std::size_t(on_[std::size_t(id)].dim));
    for (const index_t cid : {nd.left, nd.right}) {
      const HssTopoNode& cn = topo_[std::size_t(cid)];
      const index_t ck = on_[std::size_t(cid)].kept;
      if (cn.is_leaf()) {
        for (index_t i = 0; i < ck; ++i) s.push_back(cn.row_begin + i);
      } else {
        const std::vector<index_t>& cs = slots_[std::size_t(cid)];
        s.insert(s.end(), cs.begin(), cs.begin() + ck);
      }
    }
  }
}

// ======================================================================
// Orthogonal elimination: λ-dependent block factorization.
// ======================================================================

template <typename T>
void UlvFactorization<T>::eliminate_orthogonal(T regularization) {
  reset_lambda_stats(regularization);
  // Level-synchronous parallel elimination: nodes of a level depend only
  // on the (finished) level below and write only their own factors and
  // tally, so they run under an OpenMP parallel-for with a barrier per
  // level. The tallies fold in FIXED postorder afterwards, keeping
  // logdet's floating-point summation order — and therefore every result
  // bit — independent of thread count and schedule. A block that refuses
  // to eliminate records its exception instead of throwing across the
  // omp region; the first failure in postorder is rethrown with its
  // original type intact (StateError stays StateError, bad_alloc stays
  // bad_alloc), deterministically.
  std::vector<OrthoTally> tally(topo_.size());
  std::vector<std::exception_ptr> errors(topo_.size());
  std::atomic<bool> failed{false};
  for (index_t d = index_t(levels_.size()) - 1; d >= 0; --d) {
    const std::vector<index_t>& level = levels_[std::size_t(d)];
    // Narrow levels (1-2 big nodes near the root) stay serial here so the
    // GEMMs inside each node keep their own OpenMP parallelism.
    const bool parallel_level = level.size() > 2;
#pragma omp parallel for schedule(dynamic, 1) if (parallel_level)
    for (index_t i = 0; i < index_t(level.size()); ++i) {
      const index_t id = level[std::size_t(i)];
      try {
        ortho_eliminate_node(id, regularization, tally[std::size_t(id)]);
      } catch (...) {
        errors[std::size_t(id)] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
    // The failing level runs to completion (its nodes depend only on the
    // finished level below, so every failure gets recorded and the
    // postorder pick below stays deterministic); deeper progress stops
    // here — ancestors would read unfinished children.
    if (failed.load(std::memory_order_relaxed)) break;
  }
  if (failed.load(std::memory_order_relaxed))
    for (const index_t id : post_)
      if (errors[std::size_t(id)])
        std::rethrow_exception(errors[std::size_t(id)]);
  for (const index_t id : post_) {
    const OrthoTally& t = tally[std::size_t(id)];
    const ONode& o = on_[std::size_t(id)];
    logdet_ += t.logdet;
    det_sign_ *= t.sign;
    negative_total_ += t.negative;
    if (topo_[std::size_t(id)].is_leaf()) leaf_negative_ += t.negative;
    if (t.ldlt) stats_.ldlt_leaves += 1;
    stats_.flops += t.flops;
    if (o.dim > 0 && o.coupled && !o.shifted) {
      stats_.num_couplings += 1;
      stats_.max_coupling_size = std::max(stats_.max_coupling_size, o.dim);
    }
  }
  finish_stats();
}

template <typename T>
void UlvFactorization<T>::ortho_eliminate_node(index_t id, T regularization,
                                               OrthoTally& tally) {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  ONode& o = on_[std::size_t(id)];
  if (o.dim == 0) return;
  // λ-linear frontier: the node eliminates nothing and its rotated block
  // is cached, so its Schur complement is EXACTLY a0 + λI — the ancestors
  // read it off the cache and this node does zero per-λ work.
  if (o.shifted) return;
  const index_t kept = o.kept;
  const index_t elim = o.dim - kept;

  // Â = rotated node block. Cached nodes (every leaf; interior nodes whose
  // contributing children are all shifted) read a0 and add the shift —
  // λI commutes through Q. The rest assemble the reduced system from the
  // children's Schur complements per λ and rotate through the
  // materialised dense Q with two GEMMs.
  la::Matrix<T> ahat;
  if (o.a0_cached) {
    ahat = o.a0;
    for (index_t i = 0; i < o.dim; ++i) ahat(i, i) += regularization;
  } else {
    const ONode& ol = on_[std::size_t(nd.left)];
    const ONode& orr = on_[std::size_t(nd.right)];
    // Materialises a shifted child's Schur (= a0 + λI) into `scratch`;
    // a dense child's already-materialised Schur is referenced in place.
    auto child_block = [&](const ONode& c,
                           la::Matrix<T>& scratch) -> const la::Matrix<T>& {
      if (!c.shifted) return c.schur;
      scratch = c.a0;
      for (index_t i = 0; i < c.kept; ++i) scratch(i, i) += regularization;
      return scratch;
    };
    la::Matrix<T> dl_scratch;
    la::Matrix<T> dr_scratch;
    if (kept == 0) {
      const la::Matrix<T>& dl = child_block(ol, dl_scratch);
      const la::Matrix<T>& dr = child_block(orr, dr_scratch);
      ahat = assemble_reduced(ol.kept, orr.kept, dl, dr,
                              o.coupled ? &o.bt : nullptr);
    } else {
      // Qᵀ A Q with the λ-dependence confined to the block diagonal.
      // Low-rank children enter through λ·(QᵢᵀQᵢ) minus a rank-elim
      // downdate built from their per-λ w; dense children pay the split
      // rotation Q_iᵀ S_i Q_i — GEMMs over half of A per child.
      ahat = o.base0.empty() ? la::Matrix<T>(o.dim, o.dim) : o.base0;
      auto add_child = [&](const ONode& c, bool lowrank,
                           const la::Matrix<T>& qi, const la::Matrix<T>& qq,
                           const la::Matrix<T>& u) {
        if (c.kept == 0) return;
        if (lowrank) {
          const T* src = qq.data();
          T* dst = ahat.data();
          for (index_t t = 0; t < ahat.size(); ++t)
            dst[t] += regularization * src[t];
          const index_t ce = c.dim - c.kept;
          if (ce > 0) {
            la::Matrix<T> t(ce, o.dim);
            la::gemm(la::Op::None, la::Op::None, T(1), c.w, qi, T(0), t);
            la::gemm(la::Op::None, la::Op::None, T(-1), u, t, T(1), ahat);
            tally.flops += la::FlopCounter::gemm_flops(ce, o.dim, c.kept) +
                           la::FlopCounter::gemm_flops(o.dim, o.dim, ce);
          }
          return;
        }
        la::Matrix<T> d_scratch;
        const la::Matrix<T>& d = child_block(c, d_scratch);
        la::Matrix<T> t(c.kept, o.dim);
        la::gemm(la::Op::None, la::Op::None, T(1), d, qi, T(0), t);
        la::gemm(la::Op::Trans, la::Op::None, T(1), qi, t, T(1), ahat);
        tally.flops += la::FlopCounter::gemm_flops(c.kept, o.dim, c.kept) +
                       la::FlopCounter::gemm_flops(o.dim, o.dim, c.kept);
      };
      add_child(ol, o.lowrank_l, o.qtop, o.qq_l, o.u_l);
      add_child(orr, o.lowrank_r, o.qbot, o.qq_r, o.u_r);
      symmetrize(ahat);
    }
  }

  // Eliminate the trailing rows; the kept rows carry S = Ê − F̂ Ĝ⁻¹ F̂ᵀ
  // and w = Ĝ⁻¹ F̂ᵀ (so the solve sweeps downdate by GEMM, not re-solve).
  if (elim > 0) {
    o.gfac = ahat.block(kept, kept, elim, elim);
    factor_block(o.gfac, o.gpiv, tally);
  } else {
    o.gfac = la::Matrix<T>();
    o.gpiv.clear();
  }
  if (kept > 0) {
    if (elim > 0) {
      o.fhat = ahat.block(0, kept, kept, elim);
      o.w = o.fhat.transposed();
      block_solve(o.gfac, o.gpiv, o.w);
      tally.flops += 2 * la::FlopCounter::trsm_flops(elim, kept);
    } else {
      o.fhat = la::Matrix<T>();
      o.w = la::Matrix<T>();
    }
    // The dense Schur complement is materialised only when some ancestor
    // reads it as a dense block (split rotation / unrotated assembly);
    // low-rank parents reconstruct it from fhat/w instead.
    if (o.schur_needed) {
      la::Matrix<T> e = ahat.block(0, 0, kept, kept);
      if (elim > 0) {
        la::gemm(la::Op::None, la::Op::None, T(-1), o.fhat, o.w, T(1), e);
        symmetrize(e);
        tally.flops += la::FlopCounter::gemm_flops(kept, kept, elim);
      }
      o.schur = std::move(e);
    } else {
      o.schur = la::Matrix<T>();
    }
  } else {
    o.fhat = la::Matrix<T>();
    o.w = la::Matrix<T>();
    o.schur = la::Matrix<T>();
  }
}

// ======================================================================
// Orthogonal solve sweeps.
// ======================================================================

namespace {

/// Gathers the rows listed in `slots` from `x` into a dense block.
template <typename T>
la::Matrix<T> gather_rows(const la::Matrix<T>& x,
                          const std::vector<index_t>& slots) {
  la::Matrix<T> y(index_t(slots.size()), x.cols());
  for (index_t j = 0; j < x.cols(); ++j) {
    const T* src = x.col(j);
    T* dst = y.col(j);
    for (std::size_t i = 0; i < slots.size(); ++i) dst[i] = src[slots[i]];
  }
  return y;
}

/// Scatters a dense block back onto the rows listed in `slots`.
template <typename T>
void scatter_rows(la::Matrix<T>& x, const std::vector<index_t>& slots,
                  const la::Matrix<T>& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    T* dst = x.col(j);
    const T* src = y.col(j);
    for (std::size_t i = 0; i < slots.size(); ++i) dst[slots[i]] = src[i];
  }
}

}  // namespace

template <typename T>
void UlvFactorization<T>::ortho_up_node(index_t id, la::Matrix<T>& x) const {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  const ONode& o = on_[std::size_t(id)];
  if (o.dim == 0) return;
  const index_t rhs = x.cols();
  const index_t kept = o.kept;
  const index_t elim = o.dim - kept;

  la::Matrix<T> y = nd.is_leaf()
                        ? x.block(nd.row_begin, 0, o.dim, rhs)
                        : gather_rows(x, slots_[std::size_t(id)]);
  if (kept > 0) la::ormqr_left(la::Op::Trans, o.qf, y);
  if (elim > 0) {
    // Trailing rows close over themselves: solve them, park the partial
    // solution z, and downdate the kept rows by F̂ z.
    la::Matrix<T> z = y.block(kept, 0, elim, rhs);
    block_solve(o.gfac, o.gpiv, z);
    if (kept > 0) {
      la::Matrix<T> top = y.block(0, 0, kept, rhs);
      la::gemm(la::Op::None, la::Op::None, T(-1), o.fhat, z, T(1), top);
      put_rows(y, 0, top);
    }
    put_rows(y, kept, z);
  }
  if (nd.is_leaf())
    put_rows(x, nd.row_begin, y);
  else
    scatter_rows(x, slots_[std::size_t(id)], y);
}

template <typename T>
void UlvFactorization<T>::ortho_down_node(index_t id, la::Matrix<T>& x) const {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  const ONode& o = on_[std::size_t(id)];
  // kept == 0 nodes were solved outright on the way up (their rows close
  // over themselves and no rotation is stored) — the downward pass is the
  // identity there.
  if (o.dim == 0 || o.kept == 0) return;
  const index_t rhs = x.cols();
  const index_t kept = o.kept;
  const index_t elim = o.dim - kept;

  la::Matrix<T> y = nd.is_leaf()
                        ? x.block(nd.row_begin, 0, o.dim, rhs)
                        : gather_rows(x, slots_[std::size_t(id)]);
  // Rows [0, kept) hold this node's kept solution (written by the parent);
  // rows [kept, dim) hold the parked z = Ĝ⁻¹ b̂₂ from the upward pass.
  if (elim > 0) {
    const la::Matrix<T> top = y.block(0, 0, kept, rhs);
    la::Matrix<T> z = y.block(kept, 0, elim, rhs);
    la::gemm(la::Op::None, la::Op::None, T(-1), o.w, top, T(1), z);
    put_rows(y, kept, z);
  }
  la::ormqr_left(la::Op::None, o.qf, y);
  if (nd.is_leaf())
    put_rows(x, nd.row_begin, y);
  else
    scatter_rows(x, slots_[std::size_t(id)], y);
}

template <typename T>
void UlvFactorization<T>::ortho_solve_recursive_up(index_t id,
                                                   la::Matrix<T>& x) const {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  if (!nd.is_leaf()) {
    ortho_solve_recursive_up(nd.left, x);
    ortho_solve_recursive_up(nd.right, x);
  }
  ortho_up_node(id, x);
}

template <typename T>
void UlvFactorization<T>::ortho_solve_recursive_down(index_t id,
                                                     la::Matrix<T>& x) const {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  ortho_down_node(id, x);
  if (!nd.is_leaf()) {
    ortho_solve_recursive_down(nd.left, x);
    ortho_solve_recursive_down(nd.right, x);
  }
}

template <typename T>
double UlvFactorization<T>::rotation_orthogonality_error() const {
  if (low_ != nullptr) return low_->rotation_orthogonality_error();
  double worst = 0;
  for (const ONode& o : on_) {
    if (o.kept == 0) continue;
    la::Matrix<T> q = la::Matrix<T>::identity(o.dim);
    la::ormqr_left(la::Op::None, o.qf, q);
    la::Matrix<T> qtq(o.dim, o.dim);
    la::gemm(la::Op::Trans, la::Op::None, T(1), q, q, T(0), qtq);
    for (index_t i = 0; i < o.dim; ++i) qtq(i, i) -= T(1);
    worst = std::max(worst, la::norm_fro(qtq));
  }
  return worst;
}

// ======================================================================
// Woodbury elimination (Explicit views, or forced for verification).
// ======================================================================

template <typename T>
void UlvFactorization<T>::eliminate_woodbury(T regularization) {
  reset_lambda_stats(regularization);

  for (const index_t id : post_) {
    const HssTopoNode& nd = topo_[std::size_t(id)];
    if (nd.is_leaf())
      factor_leaf(id, regularization);
    else
      factor_internal(id);
    // Leaves of every view and all Explicit-basis nodes get their
    // parent-facing Φ from a subtree solve (for a leaf that is exactly the
    // leaf-factor solve); Nested interior nodes telescoped theirs above.
    if (nd.parent != HssTopoNode::kNone && declared_rank_[std::size_t(id)] > 0 &&
        (nd.is_leaf() || basis_kind_[std::size_t(id)] == BasisKind::Explicit))
      attach_explicit_basis(id);
  }

  finish_stats();
}

template <typename T>
void UlvFactorization<T>::factor_leaf(index_t id, T regularization) {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  FNode& f = fn_[std::size_t(id)];

  if (view_ != nullptr) {
    cache_[std::size_t(id)].leaf_k = view_->leaf_diag(id);
    check<StateError>(cache_[std::size_t(id)].leaf_k.rows() == nd.count &&
                          cache_[std::size_t(id)].leaf_k.cols() == nd.count,
                      "UlvFactorization: leaf diagonal block has wrong shape");
  }
  const la::Matrix<T>& k0 = cache_[std::size_t(id)].leaf_k;

  la::Matrix<T> d = k0;
  for (index_t i = 0; i < nd.count; ++i) d(i, i) += regularization;

  bool use_ldlt = options_.elimination == Elimination::PivotedLdlt;
  if (!use_ldlt) {
    if (la::potrf_lower(d)) {
      for (index_t i = 0; i < nd.count; ++i)
        logdet_ += 2.0 * std::log(double(d(i, i)));
      f.leaf_pivots.clear();
    } else {
      check<StateError>(options_.elimination != Elimination::Cholesky,
                        "UlvFactorization: leaf diagonal block not positive "
                        "definite; increase the regularization or use "
                        "Elimination::Auto / PivotedLdlt");
      // Auto fallback: restore the shifted block (potrf partially
      // overwrote it) and eliminate through pivoted LDLᵀ instead.
      d = k0;
      for (index_t i = 0; i < nd.count; ++i) d(i, i) += regularization;
      use_ldlt = true;
    }
  }
  if (use_ldlt) {
    check<StateError>(la::sytrf_lower(d, f.leaf_pivots),
                      "UlvFactorization: leaf diagonal block is exactly "
                      "singular at this regularization; adjust lambda");
    const la::LdltInertia inertia = la::ldlt_inertia(d, f.leaf_pivots);
    logdet_ += inertia.log_abs_det;
    det_sign_ *= inertia.sign;
    leaf_negative_ += inertia.negative;
    negative_total_ += inertia.negative;
    stats_.ldlt_leaves += 1;
  }
  stats_.flops += chol_flops(nd.count);
  f.leaf_fac = std::move(d);
}

template <typename T>
void UlvFactorization<T>::factor_internal(index_t id) {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  FNode& f = fn_[std::size_t(id)];
  const index_t lid = nd.left;
  const index_t rid = nd.right;
  const FNode& fl = fn_[std::size_t(lid)];
  const FNode& fr = fn_[std::size_t(rid)];
  const index_t nl = topo_[std::size_t(lid)].count;
  const index_t nr = topo_[std::size_t(rid)].count;
  const index_t rl = fl.v.cols();
  const index_t rr = fr.v.cols();

  // A child's basis is "complete" when its built V spans its declared
  // rank — always true for skeletonized subtrees and explicit bases; rank
  // 0 (never skeletonized, e.g. the top levels of a budget > 0 FMM
  // partition) degrades to a block-diagonal step here.
  const bool complete_l = rl == declared_rank_[std::size_t(lid)];
  const bool complete_r = rr == declared_rank_[std::size_t(rid)];
  const bool couple = complete_l && complete_r && rl > 0 && rr > 0;

  if (couple) {
    // Sibling coupling through the children's bases, B = K(l̃, r̃), and the
    // capacitance C = I + blkdiag(S_l, S_r) M = [[I, S_l B], [S_r Bᵀ, I]].
    // An EMPTY coupling payload means B = I by convention (HODLR), so the
    // GEMMs against B — pure copies — are skipped entirely.
    if (view_ != nullptr) {
      f.coupling = view_->coupling(id);
      f.identity_coupling = f.coupling.empty();
      if (f.identity_coupling)
        check<StateError>(rl == rr,
                          "UlvFactorization: identity coupling (empty "
                          "coupling()) requires equal child ranks");
      else
        check<StateError>(f.coupling.rows() == rl && f.coupling.cols() == rr,
                          "UlvFactorization: coupling block has wrong shape");
    }
    la::Matrix<T> slb;   // S_l B,  rl-by-rr
    la::Matrix<T> srbt;  // S_r Bᵀ, rr-by-rl
    if (f.identity_coupling) {
      slb = fl.s;
      srbt = fr.s;
    } else {
      slb.resize(rl, rr);
      la::gemm(la::Op::None, la::Op::None, T(1), fl.s, f.coupling, T(0), slb);
      srbt.resize(rr, rl);
      la::gemm(la::Op::None, la::Op::Trans, T(1), fr.s, f.coupling, T(0), srbt);
      stats_.flops += la::FlopCounter::gemm_flops(rl, rr, rl) +
                      la::FlopCounter::gemm_flops(rr, rl, rr);
    }
    la::Matrix<T> c(rl + rr, rl + rr);
    for (index_t j = 0; j < rr; ++j) std::copy_n(slb.col(j), rl, c.col(rl + j));
    for (index_t j = 0; j < rl; ++j) std::copy_n(srbt.col(j), rr, c.col(j) + rl);
    for (index_t i = 0; i < rl + rr; ++i) c(i, i) += T(1);
    check<StateError>(la::getrf(c, f.cap_pivots),
                      "UlvFactorization: singular capacitance system; "
                      "increase the regularization");
    stats_.flops += getrf_flops(rl + rr);
    // det(K̃_p + λI) = det(blkdiag) · det(C) (Sylvester); the LU diagonal
    // and pivot swaps carry det(C) including its sign.
    for (index_t i = 0; i < rl + rr; ++i) {
      const double u = double(c(i, i));
      if (u < 0) det_sign_ = -det_sign_;
      logdet_ += std::log(std::abs(u));
      if (f.cap_pivots[std::size_t(i)] != i) det_sign_ = -det_sign_;
    }
    f.cap = std::move(c);
    stats_.num_couplings += 1;
    stats_.max_coupling_size = std::max(stats_.max_coupling_size, rl + rr);
  }

  // Parent-facing factors via the telescoping identities (Nested views;
  // Explicit nodes attach theirs by subtree solve instead)
  //   V_p = blkdiag(V_l, V_r) E,
  //   Φ_p = blkdiag(Φ_l, Φ_r) (E − M C⁻¹ Ŝ E),
  //   S_p = (Ŝ E)ᵀ (E − M C⁻¹ Ŝ E),         Ŝ = blkdiag(S_l, S_r),
  // each O(|β| r²) given the children's factors.
  if (nd.parent == HssTopoNode::kNone ||
      basis_kind_[std::size_t(id)] != BasisKind::Nested)
    return;
  const index_t rp = declared_rank_[std::size_t(id)];
  if (rp == 0 || !complete_l || !complete_r || rl + rr == 0) return;
  if (view_ != nullptr) {
    cache_[std::size_t(id)].transfer = view_->basis(id);
    check<StateError>(cache_[std::size_t(id)].transfer.rows() == rl + rr &&
                          cache_[std::size_t(id)].transfer.cols() == rp,
                      "UlvFactorization: projection/basis rank mismatch");
  }
  const la::Matrix<T>& e = cache_[std::size_t(id)].transfer;
  const la::Matrix<T> e_top = e.block(0, 0, rl, rp);
  const la::Matrix<T> e_bot = e.block(rl, 0, rr, rp);

  // V_p is λ-independent, so only the first elimination builds it;
  // refactorize() reuses the telescoped basis untouched.
  if (view_ != nullptr) {
    f.v.resize(nd.count, rp);
    if (rl > 0) {
      la::Matrix<T> top(nl, rp);
      la::gemm(la::Op::None, la::Op::None, T(1), fl.v, e_top, T(0), top);
      put_rows(f.v, 0, top);
      stats_.flops += la::FlopCounter::gemm_flops(nl, rp, rl);
    }
    if (rr > 0) {
      la::Matrix<T> bot(nr, rp);
      la::gemm(la::Op::None, la::Op::None, T(1), fr.v, e_bot, T(0), bot);
      put_rows(f.v, nl, bot);
      stats_.flops += la::FlopCounter::gemm_flops(nr, rp, rr);
    }
  }

  la::Matrix<T> se(rl + rr, rp);
  if (rl > 0) {
    la::Matrix<T> t(rl, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fl.s, e_top, T(0), t);
    put_rows(se, 0, t);
  }
  if (rr > 0) {
    la::Matrix<T> t(rr, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fr.s, e_bot, T(0), t);
    put_rows(se, rl, t);
  }

  la::Matrix<T> fmat = e;  // F = E − M C⁻¹ Ŝ E (couple) or E (diagonal)
  if (couple) {
    la::Matrix<T> z = se;
    la::getrs(f.cap, f.cap_pivots, z);
    stats_.flops += la::FlopCounter::gemm_flops(rl + rr, rp, rl + rr);
    const la::Matrix<T> z_top = z.block(0, 0, rl, rp);
    const la::Matrix<T> z_bot = z.block(rl, 0, rr, rp);
    la::Matrix<T> m_top;  // B z_bot
    la::Matrix<T> m_bot;  // Bᵀ z_top
    if (f.identity_coupling) {
      m_top = z_bot;
      m_bot = z_top;
    } else {
      m_top.resize(rl, rp);
      la::gemm(la::Op::None, la::Op::None, T(1), f.coupling, z_bot, T(0),
               m_top);
      m_bot.resize(rr, rp);
      la::gemm(la::Op::Trans, la::Op::None, T(1), f.coupling, z_top, T(0),
               m_bot);
    }
    for (index_t j = 0; j < rp; ++j) {
      for (index_t i = 0; i < rl; ++i) fmat(i, j) -= m_top(i, j);
      for (index_t i = 0; i < rr; ++i) fmat(rl + i, j) -= m_bot(i, j);
    }
  }

  f.phi.resize(nd.count, rp);
  if (rl > 0) {
    const la::Matrix<T> f_top = fmat.block(0, 0, rl, rp);
    la::Matrix<T> top(nl, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fl.phi, f_top, T(0), top);
    put_rows(f.phi, 0, top);
    stats_.flops += la::FlopCounter::gemm_flops(nl, rp, rl);
  }
  if (rr > 0) {
    const la::Matrix<T> f_bot = fmat.block(rl, 0, rr, rp);
    la::Matrix<T> bot(nr, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fr.phi, f_bot, T(0), bot);
    put_rows(f.phi, nl, bot);
    stats_.flops += la::FlopCounter::gemm_flops(nr, rp, rr);
  }

  f.s.resize(rp, rp);
  la::gemm(la::Op::Trans, la::Op::None, T(1), se, fmat, T(0), f.s);
  stats_.flops += la::FlopCounter::gemm_flops(rp, rp, rl + rr);
  symmetrize(f.s);
}

template <typename T>
void UlvFactorization<T>::attach_explicit_basis(index_t id) {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  FNode& f = fn_[std::size_t(id)];
  const index_t r = declared_rank_[std::size_t(id)];
  if (view_ != nullptr) {
    f.v = view_->basis(id);
    check<StateError>(f.v.rows() == nd.count && f.v.cols() == r,
                      "UlvFactorization: explicit basis has wrong shape");
  }
  // Φ = (K̃_β + λI)⁻¹ V through the already-factored subtree (for a leaf
  // this is exactly the leaf-factor solve). The subtree solve touches
  // every level of β's OWN subtree once, so charge the triangular-solve
  // cost per subtree level — the O(N log² N) term of the explicit-basis
  // (HODLR) factorization.
  f.phi = f.v;
  solve_subtree(id, f.phi);
  stats_.flops += std::uint64_t(subtree_depth_[std::size_t(id)]) * 2 *
                  la::FlopCounter::trsm_flops(nd.count, r);
  f.s.resize(r, r);
  la::gemm(la::Op::Trans, la::Op::None, T(1), f.v, f.phi, T(0), f.s);
  stats_.flops += la::FlopCounter::gemm_flops(r, r, nd.count);
  symmetrize(f.s);
}

template <typename T>
void UlvFactorization<T>::leaf_solve(const FNode& f, la::Matrix<T>& b) const {
  if (f.leaf_pivots.empty())
    la::chol_solve(f.leaf_fac, b);
  else
    la::sytrs_lower(f.leaf_fac, f.leaf_pivots, b);
}

template <typename T>
void UlvFactorization<T>::solve_subtree(index_t id, la::Matrix<T>& b) const {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  const FNode& f = fn_[std::size_t(id)];
  if (nd.is_leaf()) {
    leaf_solve(f, b);
    return;
  }
  const index_t nl = topo_[std::size_t(nd.left)].count;
  const index_t nr = topo_[std::size_t(nd.right)].count;
  const index_t rhs = b.cols();

  // y = blkdiag(K̃_l + λI, K̃_r + λI)⁻¹ b.
  la::Matrix<T> top = b.block(0, 0, nl, rhs);
  solve_subtree(nd.left, top);
  la::Matrix<T> bot = b.block(nl, 0, nr, rhs);
  solve_subtree(nd.right, bot);

  if (f.has_coupling()) coupling_downdate(id, top, bot);

  put_rows(b, 0, top);
  put_rows(b, nl, bot);
}

template <typename T>
void UlvFactorization<T>::coupling_downdate(index_t id, la::Matrix<T>& top,
                                            la::Matrix<T>& bot) const {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  const FNode& f = fn_[std::size_t(id)];
  const FNode& fl = fn_[std::size_t(nd.left)];
  const FNode& fr = fn_[std::size_t(nd.right)];
  const index_t rl = fl.v.cols();
  const index_t rr = fr.v.cols();
  const index_t rhs = top.cols();
  // Woodbury downdate: y −= blkdiag(Φ_l, Φ_r) M C⁻¹ [V_lᵀ y_l; V_rᵀ y_r].
  la::Matrix<T> z(rl + rr, rhs);
  {
    la::Matrix<T> tl(rl, rhs);
    la::gemm(la::Op::Trans, la::Op::None, T(1), fl.v, top, T(0), tl);
    put_rows(z, 0, tl);
    la::Matrix<T> tr(rr, rhs);
    la::gemm(la::Op::Trans, la::Op::None, T(1), fr.v, bot, T(0), tr);
    put_rows(z, rl, tr);
  }
  la::getrs(f.cap, f.cap_pivots, z);
  const la::Matrix<T> z_top = z.block(0, 0, rl, rhs);
  const la::Matrix<T> z_bot = z.block(rl, 0, rr, rhs);
  if (f.identity_coupling) {
    // B = I: M C⁻¹ z is just the swapped halves — skip the copy GEMMs.
    la::gemm(la::Op::None, la::Op::None, T(-1), fl.phi, z_bot, T(1), top);
    la::gemm(la::Op::None, la::Op::None, T(-1), fr.phi, z_top, T(1), bot);
    return;
  }
  la::Matrix<T> gl(rl, rhs);
  la::gemm(la::Op::None, la::Op::None, T(1), f.coupling, z_bot, T(0), gl);
  la::Matrix<T> gr(rr, rhs);
  la::gemm(la::Op::Trans, la::Op::None, T(1), f.coupling, z_top, T(0), gr);
  la::gemm(la::Op::None, la::Op::None, T(-1), fl.phi, gl, T(1), top);
  la::gemm(la::Op::None, la::Op::None, T(-1), fr.phi, gr, T(1), bot);
}

template <typename T>
void UlvFactorization<T>::sweep_node(index_t id, la::Matrix<T>& x) const {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  const FNode& f = fn_[std::size_t(id)];
  const index_t rhs = x.cols();
  if (nd.is_leaf()) {
    la::Matrix<T> blk = x.block(nd.row_begin, 0, nd.count, rhs);
    leaf_solve(f, blk);
    put_rows(x, nd.row_begin, blk);
    return;
  }
  if (!f.has_coupling()) return;
  const HssTopoNode& l = topo_[std::size_t(nd.left)];
  const HssTopoNode& r = topo_[std::size_t(nd.right)];
  // All deeper levels are done, so the children's rows of x already hold
  // blkdiag(K̃_l + λI, K̃_r + λI)⁻¹ b — exactly the recursion's state when
  // it reaches this node's downdate.
  la::Matrix<T> top = x.block(l.row_begin, 0, l.count, rhs);
  la::Matrix<T> bot = x.block(r.row_begin, 0, r.count, rhs);
  coupling_downdate(id, top, bot);
  put_rows(x, l.row_begin, top);
  put_rows(x, r.row_begin, bot);
}

// ======================================================================
// Blocked solve entry point (both modes, both sweep schedules).
// ======================================================================

template <typename T>
la::Matrix<T> UlvFactorization<T>::solve(const la::Matrix<T>& b,
                                         SweepMode sweep) const {
  check<DimensionError>(b.rows() == n_,
                        "UlvFactorization::solve: b must have N rows");
  check<DimensionError>(b.cols() >= 1,
                        "UlvFactorization::solve: b must have >= 1 column");
  // MixedF32: demote the rhs, sweep entirely in the float engine, promote
  // the solution. Callers that need double residuals run refined_solve().
  if (low_ != nullptr)
    return la::convert<T>(low_->solve(la::convert<float>(b), sweep));
  const index_t r = b.cols();

  // Identity-ordered views (randomized HSS, HODLR) skip the permutation
  // staging entirely — one copy of b, no scratch allocation.
  la::Matrix<T> x = perm_.empty() ? b : la::Matrix<T>(n_, r);
  if (!perm_.empty()) {
    for (index_t j = 0; j < r; ++j) {
      const T* src = b.col(j);
      T* dst = x.col(j);
      for (index_t pos = 0; pos < n_; ++pos)
        dst[pos] = src[perm_[std::size_t(pos)]];
    }
  }

  if (mode_ == UlvMode::Orthogonal) {
    // Upward sweep (rotate, eliminate, park), then downward sweep
    // (back-substitute, rotate back). Nodes of one level own disjoint
    // workspace rows, so each level runs in parallel; every node performs
    // a fixed GEMM sequence, so both schedules are bit-identical.
    if (sweep == SweepMode::Sequential) {
      ortho_solve_recursive_up(root_, x);
      ortho_solve_recursive_down(root_, x);
    } else {
      for (index_t d = index_t(levels_.size()) - 1; d >= 0; --d) {
        const std::vector<index_t>& level = levels_[std::size_t(d)];
#pragma omp parallel for schedule(dynamic, 1)
        for (index_t i = 0; i < index_t(level.size()); ++i)
          ortho_up_node(level[std::size_t(i)], x);
      }
      for (index_t d = 0; d < index_t(levels_.size()); ++d) {
        const std::vector<index_t>& level = levels_[std::size_t(d)];
#pragma omp parallel for schedule(dynamic, 1)
        for (index_t i = 0; i < index_t(level.size()); ++i)
          ortho_down_node(level[std::size_t(i)], x);
      }
    }
  } else if (sweep == SweepMode::Sequential) {
    solve_subtree(root_, x);
  } else {
    // Level-synchronous bottom-up elimination sweep: nodes of one level
    // own disjoint row ranges of x, so they run in parallel; the barrier
    // between levels enforces the children-before-parent dependency. Each
    // node performs the same GEMM sequence as the recursion, so the result
    // is bit-identical for any thread count or schedule.
    for (index_t d = index_t(levels_.size()) - 1; d >= 0; --d) {
      const std::vector<index_t>& level = levels_[std::size_t(d)];
#pragma omp parallel for schedule(dynamic, 1)
      for (index_t i = 0; i < index_t(level.size()); ++i)
        sweep_node(level[std::size_t(i)], x);
    }
  }

  if (perm_.empty()) return x;
  la::Matrix<T> out(n_, r);
  for (index_t j = 0; j < r; ++j) {
    const T* src = x.col(j);
    T* dst = out.col(j);
    for (index_t pos = 0; pos < n_; ++pos)
      dst[perm_[std::size_t(pos)]] = src[pos];
  }
  return out;
}

template <typename T>
double UlvFactorization<T>::logdet() const {
  check<StateError>(stats_.positive_definite,
                    "UlvFactorization::logdet: factored operator is not "
                    "positive definite (see log_abs_det/det_sign)");
  return logdet_;
}

// --- CompressedMatrix's HssView + Factorizable capability ------------------

/// HssView over a GOFMM compression: metric-tree topology and permutation,
/// cached/oracle-evaluated leaf diagonals, telescoping projection bases,
/// and oracle-evaluated skeleton couplings. Only alive inside factorize().
template <typename T>
class GofmmHssView final : public HssView<T> {
 public:
  explicit GofmmHssView(const CompressedMatrix<T>& kc) : kc_(kc) {
    this->n_ = kc.size();
    this->perm_ = kc.tree_->perm();
    this->root_ = kc.tree_->root()->id;
    this->topo_.resize(std::size_t(kc.tree_->num_nodes()));
    for (const tree::Node* node : kc.tree_->nodes()) {
      HssTopoNode& t = this->topo_[std::size_t(node->id)];
      t.id = node->id;
      t.level = node->level;
      t.row_begin = node->begin;
      t.count = node->count;
      t.parent =
          node->parent != nullptr ? node->parent->id : HssTopoNode::kNone;
      if (!node->is_leaf()) {
        t.left = node->left()->id;
        t.right = node->right()->id;
      }
    }
  }

  la::Matrix<T> leaf_diag(index_t id) const override {
    const tree::Node* node = kc_.tree_->nodes()[std::size_t(id)];
    const auto& nd = kc_.data_[std::size_t(id)];
    // The self block leads every near list, so the cached copy is reused
    // when present.
    if (!nd.near_blocks.empty() && !nd.near.empty() && nd.near[0] == node)
      return nd.near_blocks[0];
    return kc_.k_->submatrix(kc_.tree_->indices(node),
                             kc_.tree_->indices(node));
  }

  index_t basis_rank(index_t id) const override {
    const tree::Node* node = kc_.tree_->nodes()[std::size_t(id)];
    if (node->parent == nullptr) return 0;
    return index_t(kc_.data_[std::size_t(id)].skel.size());
  }

  BasisKind basis_kind(index_t) const override { return BasisKind::Nested; }

  la::Matrix<T> basis(index_t id) const override {
    // P_{α̃α}ᵀ at a leaf, the transfer map P_{α̃[l̃r̃]}ᵀ at interior nodes.
    return kc_.data_[std::size_t(id)].proj.transposed();
  }

  la::Matrix<T> coupling(index_t id) const override {
    const HssTopoNode& t = this->topo_[std::size_t(id)];
    return kc_.k_->submatrix(kc_.data_[std::size_t(t.left)].skel,
                             kc_.data_[std::size_t(t.right)].skel);
  }

 private:
  const CompressedMatrix<T>& kc_;
};

template <typename T>
void CompressedMatrix<T>::factorize(T regularization,
                                    FactorizeOptions options) {
  // Invalidate up front — deliberately trading the strong exception
  // guarantee for loudness: after a FAILED re-factorize the operator
  // throws StateError on solve() instead of silently serving the old-λ
  // factors to a caller who asked for a new λ.
  fact_.reset();
  const GofmmHssView<T> view(*this);
  fact_ = std::make_unique<UlvFactorization<T>>(view, regularization, options);
}

template <typename T>
void CompressedMatrix<T>::refactorize(T regularization) {
  if (fact_ == nullptr) {
    factorize(regularization);
    return;
  }
  try {
    fact_->refactorize(regularization);
  } catch (...) {
    // A failed re-elimination leaves the factors inconsistent; drop them
    // so solve() throws StateError instead of serving garbage.
    fact_.reset();
    throw;
  }
}

template <typename T>
la::Matrix<T> CompressedMatrix<T>::solve(const la::Matrix<T>& b,
                                         const SolveOptions& options) const {
  check<StateError>(fact_ != nullptr,
                    "CompressedMatrix::solve: call factorize() first");
  // Under MixedF32 a raw float-factored sweep carries ~1e-6 relative
  // error; iterative refinement (double-accumulated residuals against the
  // compressed apply) drives it back to options.target_residual. Native
  // double/float factorizations return the direct sweep untouched.
  if (options.refine &&
      fact_->stats().precision == Precision::MixedF32) {
    la::Matrix<T> x;
    refined_solve(*this, *this, T(fact_->stats().regularization), b, x,
                  options);
    return x;
  }
  return fact_->solve(b);
}

template <typename T>
double CompressedMatrix<T>::logdet() const {
  check<StateError>(fact_ != nullptr,
                    "CompressedMatrix::logdet: call factorize() first");
  return fact_->logdet();
}

template <typename T>
FactorizationStats CompressedMatrix<T>::factorization_stats() const {
  check<StateError>(
      fact_ != nullptr,
      "CompressedMatrix::factorization_stats: call factorize() first");
  return fact_->stats();
}

template <typename T>
const UlvFactorization<T>& CompressedMatrix<T>::factorization() const {
  check<StateError>(fact_ != nullptr,
                    "CompressedMatrix::factorization: call factorize() first");
  return *fact_;
}

template <typename T>
std::unique_ptr<CompressedMatrix<T>> make_preconditioner(
    std::shared_ptr<const SPDMatrix<T>> k, T regularization, Config coarse) {
  // Pure HSS structure: with budget 0 every off-diagonal coupling is a
  // sibling skeleton block, so the ULV factorization captures the whole
  // coarse operator (solve() inverts it to round-off).
  coarse.budget = 0.0;
  // Diagonal scale of K, for the λ escalation floor below.
  double diag_scale = 0;
  {
    const index_t n = k->size();
    const index_t step = std::max<index_t>(1, n / 16);
    index_t cnt = 0;
    for (index_t i = 0; i < n; i += step, ++cnt) {
      const index_t one[] = {i};
      diag_scale += std::abs(double(k->submatrix(one, one)(0, 0)));
    }
    diag_scale /= double(cnt);
  }
  auto op = CompressedMatrix<T>::compress_unique(std::move(k), coarse);
  const index_t n = op->size();

  // PCG needs an SPD preconditioner, but the coarse compression error E =
  // K̃ − K can leave K̃ + λI indefinite whenever λ < ‖E‖ (paper
  // "Limitations"). Start λ at twice the sampled absolute error estimate,
  // then verify positive definiteness and escalate geometrically until it
  // holds — each retry is a refactorize() (under the orthogonal engine:
  // rotated diagonal block re-factorization only, no oracle traffic), so
  // over-estimating merely costs CG iterations while an indefinite
  // preconditioner breaks PCG outright.
  T lambda = regularization;
  {
    // λ floor from the coarse compression error E = K̃ − K: power
    // iteration on E_colsᵀ E_cols over s sampled columns gives
    // σ_max(E_cols), a LOWER bound on ‖E‖₂ (column sampling only sees
    // part of the spectrum). The ×2 compensates for that underestimate
    // heuristically — it is NOT a guarantee, which is why the PD check
    // below and the per-column PCG fallback in conjugate_gradient remain
    // load-bearing. One blocked apply + an s-column oracle read.
    const index_t s = std::min<index_t>(64, n);
    Prng rng(coarse.seed + 13);
    const std::vector<index_t> cols = sample_without_replacement(rng, n, s);
    la::Matrix<T> unit(n, s);
    for (index_t j = 0; j < s; ++j) unit(cols[std::size_t(j)], j) = T(1);
    const la::Matrix<T> approx = op->apply(unit);
    std::vector<index_t> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), index_t(0));
    la::Matrix<T> err = op->matrix().submatrix(all, cols);  // E_cols = K̃−K
    for (index_t j = 0; j < s; ++j)
      for (index_t i = 0; i < n; ++i) err(i, j) = approx(i, j) - err(i, j);
    la::Matrix<T> v = la::Matrix<T>::random_normal(s, 1, coarse.seed + 29);
    double sigma = 0;
    for (int it = 0; it < 6; ++it) {
      la::Matrix<T> y(n, 1);
      la::gemm(la::Op::None, la::Op::None, T(1), err, v, T(0), y);
      la::gemm(la::Op::Trans, la::Op::None, T(1), err, y, T(0), v);
      const double nrm = la::nrm2(s, v.col(0));  // ≈ σ², v was unit-norm
      sigma = std::sqrt(nrm);
      if (nrm <= 0) break;
      for (index_t i = 0; i < s; ++i) v(i, 0) = T(double(v(i, 0)) / nrm);
    }
    lambda = std::max(lambda, T(2 * sigma));
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool ok = true;
    try {
      // First attempt builds the factorization (rotations + rotated
      // payloads); every λ retry afterwards re-factors only the small
      // rotated diagonal blocks.
      if (!op->factorized())
        op->factorize(lambda);
      else
        op->refactorize(lambda);
      const FactorizationStats fs = op->factorization_stats();
      ok = fs.positive_definite;
      // The orthogonal engine's block inertia is an exact certificate
      // (Haynsworth), so its verdict stands on its own. The Woodbury
      // path's determinant-sign test can miss eigenvalue PAIRS, so back
      // it up with an inverse power iteration: the largest-magnitude
      // eigenvalue of (K̃ + λI)⁻¹ is 1/μ_min, and its Rayleigh quotient
      // is negative exactly when an indefinite μ_min survived λ.
      if (ok && !fs.exact_inertia) {
        la::Matrix<T> y = la::Matrix<T>::random_normal(n, 1, coarse.seed + 17);
        for (int it = 0; it < 8 && ok; ++it) {
          y = op->solve(y);
          const double nrm = la::nrm2(n, y.col(0));
          if (nrm <= 0) {
            ok = false;
            break;
          }
          for (index_t i = 0; i < n; ++i) y(i, 0) = T(double(y(i, 0)) / nrm);
        }
        if (ok) {
          la::Matrix<T> z = op->solve(y);
          ok = la::dot(n, y.col(0), z.col(0)) > 0;
        }
      }
    } catch (const StateError&) {
      ok = false;  // a block refused to eliminate
    }
    if (ok) return op;
    lambda = std::max({T(4) * lambda, T(1e-3 * diag_scale),
                       std::numeric_limits<T>::min()});
  }
  check<StateError>(false,
                    "make_preconditioner: could not reach a positive "
                    "definite factorization; tighten the coarse tolerance");
  return op;
}

template class UlvFactorization<float>;
template class UlvFactorization<double>;
template class GofmmHssView<float>;
template class GofmmHssView<double>;

template void CompressedMatrix<float>::factorize(float, FactorizeOptions);
template void CompressedMatrix<double>::factorize(double, FactorizeOptions);
template void CompressedMatrix<float>::refactorize(float);
template void CompressedMatrix<double>::refactorize(double);
template la::Matrix<float> CompressedMatrix<float>::solve(
    const la::Matrix<float>&, const SolveOptions&) const;
template la::Matrix<double> CompressedMatrix<double>::solve(
    const la::Matrix<double>&, const SolveOptions&) const;
template double CompressedMatrix<float>::logdet() const;
template double CompressedMatrix<double>::logdet() const;
template FactorizationStats CompressedMatrix<float>::factorization_stats()
    const;
template FactorizationStats CompressedMatrix<double>::factorization_stats()
    const;
template const UlvFactorization<float>& CompressedMatrix<float>::factorization()
    const;
template const UlvFactorization<double>&
CompressedMatrix<double>::factorization() const;

template std::unique_ptr<CompressedMatrix<float>> make_preconditioner<float>(
    std::shared_ptr<const SPDMatrix<float>>, float, Config);
template std::unique_ptr<CompressedMatrix<double>> make_preconditioner<double>(
    std::shared_ptr<const SPDMatrix<double>>, double, Config);

}  // namespace gofmm
