// Shared ULV factorization engine over the backend-neutral HssView (see
// factorization.hpp for the algebra). Bottom-up block elimination: leaves
// are factored exactly (Cholesky, or Bunch–Kaufman pivoted LDLᵀ when the
// shifted block is indefinite), every interior node folds its children's
// sibling coupling in with a Woodbury capacitance system
//
//   C = I + blkdiag(S_l, S_r) M,   M = [[0, B], [Bᵀ, 0]],
//
// and the nested solve operators Φ and Grams S telescope upward (Nested
// views) or come from subtree solves (Explicit views), so no quantity
// larger than |β| × r is ever formed.
//
// The elimination itself is λ-oblivious about where its inputs come from:
// during construction every payload (leaf diagonal, basis/transfer,
// coupling) is fetched from the view and cached; refactorize(λ') reruns
// the IDENTICAL code against the cache, so a retune is bit-identical to a
// fresh factorization while performing zero oracle or view work.
#include "core/factorization.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "la/blas.hpp"
#include "la/flops.hpp"
#include "la/lapack.hpp"
#include "la/ldlt.hpp"
#include "util/timer.hpp"

namespace gofmm {

namespace {

constexpr std::uint64_t chol_flops(index_t n) {
  return std::uint64_t(n) * std::uint64_t(n) * std::uint64_t(n) / 3;
}

constexpr std::uint64_t getrf_flops(index_t n) {
  return 2ull * std::uint64_t(n) * std::uint64_t(n) * std::uint64_t(n) / 3;
}

/// out rows [row0, row0+src.rows()) = src.
template <typename T>
void put_rows(la::Matrix<T>& out, index_t row0, const la::Matrix<T>& src) {
  for (index_t j = 0; j < src.cols(); ++j)
    std::copy_n(src.col(j), src.rows(), out.col(j) + row0);
}

template <typename T>
void symmetrize(la::Matrix<T>& s) {
  for (index_t j = 0; j < s.cols(); ++j)
    for (index_t i = 0; i < j; ++i) {
      const T avg = (s(i, j) + s(j, i)) / T(2);
      s(i, j) = avg;
      s(j, i) = avg;
    }
}

}  // namespace

template <typename T>
UlvFactorization<T>::UlvFactorization(const HssView<T>& view, T regularization,
                                      FactorizeOptions options)
    : options_(options) {
  Timer timer;
  n_ = view.size();
  root_ = view.root();
  topo_ = view.nodes();
  perm_ = view.perm();
  check<Error>(perm_.empty() || index_t(perm_.size()) == n_,
               "UlvFactorization: view permutation has wrong length");

  // Group node ids by depth for the level-synchronous solve sweep.
  index_t max_level = 0;
  for (const HssTopoNode& nd : topo_)
    max_level = std::max(max_level, nd.level);
  levels_.assign(std::size_t(max_level) + 1, {});
  for (const HssTopoNode& nd : topo_)
    levels_[std::size_t(nd.level)].push_back(nd.id);

  // Iterative postorder (children before parents), kept for refactorize().
  post_.reserve(topo_.size());
  {
    std::vector<index_t> stack{root_};
    while (!stack.empty()) {
      const index_t id = stack.back();
      stack.pop_back();
      post_.push_back(id);
      const HssTopoNode& nd = topo_[std::size_t(id)];
      if (!nd.is_leaf()) {
        stack.push_back(nd.left);
        stack.push_back(nd.right);
      }
    }
    std::reverse(post_.begin(), post_.end());
  }

  // Per-node subtree depth (1 at leaves), for the explicit-basis flop
  // accounting — trees with uneven leaf depths must not be overcharged.
  subtree_depth_.assign(topo_.size(), 1);
  declared_rank_.assign(topo_.size(), 0);
  basis_kind_.assign(topo_.size(), BasisKind::Nested);
  for (const index_t id : post_) {
    const HssTopoNode& nd = topo_[std::size_t(id)];
    if (!nd.is_leaf())
      subtree_depth_[std::size_t(id)] =
          1 + std::max(subtree_depth_[std::size_t(nd.left)],
                       subtree_depth_[std::size_t(nd.right)]);
    declared_rank_[std::size_t(id)] = view.basis_rank(id);
    basis_kind_[std::size_t(id)] = view.basis_kind(id);
  }

  fn_.assign(topo_.size(), FNode{});
  cache_.assign(topo_.size(), PayloadCache{});

  // First elimination: view_ is live, so payload reads fetch-and-cache.
  view_ = &view;
  eliminate(regularization);
  view_ = nullptr;
  stats_.seconds = timer.seconds();
}

template <typename T>
void UlvFactorization<T>::refactorize(T regularization) {
  Timer timer;
  eliminate(regularization);
  stats_.seconds = timer.seconds();
  stats_.num_refactorizations += 1;
}

template <typename T>
void UlvFactorization<T>::eliminate(T regularization) {
  check<Error>(std::isfinite(double(regularization)),
               "factorize: regularization must be finite");
  stats_.regularization = double(regularization);
  stats_.flops = 0;
  stats_.num_couplings = 0;
  stats_.max_coupling_size = 0;
  stats_.ldlt_leaves = 0;
  logdet_ = 0;
  det_sign_ = 1;
  leaf_negative_ = 0;

  for (const index_t id : post_) {
    const HssTopoNode& nd = topo_[std::size_t(id)];
    if (nd.is_leaf())
      factor_leaf(id, regularization);
    else
      factor_internal(id);
    // Leaves of every view and all Explicit-basis nodes get their
    // parent-facing Φ from a subtree solve (for a leaf that is exactly the
    // leaf-factor solve); Nested interior nodes telescoped theirs above.
    if (nd.parent != HssTopoNode::kNone && declared_rank_[std::size_t(id)] > 0 &&
        (nd.is_leaf() || basis_kind_[std::size_t(id)] == BasisKind::Explicit))
      attach_explicit_basis(id);
  }

  // A leaf with a negative LDLᵀ eigenvalue is a principal submatrix of the
  // regularized operator, so (Cauchy interlacing) the operator itself is
  // indefinite; an even count of sign flips in the capacitance LUs can
  // still hide indefiniteness, hence the inverse-power probe callers run
  // on top (make_preconditioner).
  stats_.positive_definite = det_sign_ > 0 && leaf_negative_ == 0;
  stats_.leaf_negative_eigenvalues = leaf_negative_;
  stats_.memory_bytes = 0;
  for (const FNode& f : fn_) {
    stats_.memory_bytes +=
        std::uint64_t(f.leaf_fac.size() + f.v.size() + f.phi.size() +
                      f.s.size() + f.coupling.size() + f.cap.size()) *
        sizeof(T);
    stats_.memory_bytes +=
        std::uint64_t(f.cap_pivots.size() + f.leaf_pivots.size()) *
        sizeof(index_t);
  }
  for (const PayloadCache& c : cache_)
    stats_.memory_bytes +=
        std::uint64_t(c.leaf_k.size() + c.transfer.size()) * sizeof(T);
}

template <typename T>
void UlvFactorization<T>::factor_leaf(index_t id, T regularization) {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  FNode& f = fn_[std::size_t(id)];

  if (view_ != nullptr) {
    cache_[std::size_t(id)].leaf_k = view_->leaf_diag(id);
    check<StateError>(cache_[std::size_t(id)].leaf_k.rows() == nd.count &&
                          cache_[std::size_t(id)].leaf_k.cols() == nd.count,
                      "UlvFactorization: leaf diagonal block has wrong shape");
  }
  const la::Matrix<T>& k0 = cache_[std::size_t(id)].leaf_k;

  la::Matrix<T> d = k0;
  for (index_t i = 0; i < nd.count; ++i) d(i, i) += regularization;

  bool use_ldlt = options_.elimination == Elimination::PivotedLdlt;
  if (!use_ldlt) {
    if (la::potrf_lower(d)) {
      for (index_t i = 0; i < nd.count; ++i)
        logdet_ += 2.0 * std::log(double(d(i, i)));
      f.leaf_pivots.clear();
    } else {
      check<StateError>(options_.elimination != Elimination::Cholesky,
                        "UlvFactorization: leaf diagonal block not positive "
                        "definite; increase the regularization or use "
                        "Elimination::Auto / PivotedLdlt");
      // Auto fallback: restore the shifted block (potrf partially
      // overwrote it) and eliminate through pivoted LDLᵀ instead.
      d = k0;
      for (index_t i = 0; i < nd.count; ++i) d(i, i) += regularization;
      use_ldlt = true;
    }
  }
  if (use_ldlt) {
    check<StateError>(la::sytrf_lower(d, f.leaf_pivots),
                      "UlvFactorization: leaf diagonal block is exactly "
                      "singular at this regularization; adjust lambda");
    const la::LdltInertia inertia = la::ldlt_inertia(d, f.leaf_pivots);
    logdet_ += inertia.log_abs_det;
    det_sign_ *= inertia.sign;
    leaf_negative_ += inertia.negative;
    stats_.ldlt_leaves += 1;
  }
  stats_.flops += chol_flops(nd.count);
  f.leaf_fac = std::move(d);
}

template <typename T>
void UlvFactorization<T>::factor_internal(index_t id) {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  FNode& f = fn_[std::size_t(id)];
  const index_t lid = nd.left;
  const index_t rid = nd.right;
  const FNode& fl = fn_[std::size_t(lid)];
  const FNode& fr = fn_[std::size_t(rid)];
  const index_t nl = topo_[std::size_t(lid)].count;
  const index_t nr = topo_[std::size_t(rid)].count;
  const index_t rl = fl.v.cols();
  const index_t rr = fr.v.cols();

  // A child's basis is "complete" when its built V spans its declared
  // rank — always true for skeletonized subtrees and explicit bases; rank
  // 0 (never skeletonized, e.g. the top levels of a budget > 0 FMM
  // partition) degrades to a block-diagonal step here.
  const bool complete_l = rl == declared_rank_[std::size_t(lid)];
  const bool complete_r = rr == declared_rank_[std::size_t(rid)];
  const bool couple = complete_l && complete_r && rl > 0 && rr > 0;

  if (couple) {
    // Sibling coupling through the children's bases, B = K(l̃, r̃), and the
    // capacitance C = I + blkdiag(S_l, S_r) M = [[I, S_l B], [S_r Bᵀ, I]].
    // An EMPTY coupling payload means B = I by convention (HODLR), so the
    // GEMMs against B — pure copies — are skipped entirely.
    if (view_ != nullptr) {
      f.coupling = view_->coupling(id);
      f.identity_coupling = f.coupling.empty();
      if (f.identity_coupling)
        check<StateError>(rl == rr,
                          "UlvFactorization: identity coupling (empty "
                          "coupling()) requires equal child ranks");
      else
        check<StateError>(f.coupling.rows() == rl && f.coupling.cols() == rr,
                          "UlvFactorization: coupling block has wrong shape");
    }
    la::Matrix<T> slb;   // S_l B,  rl-by-rr
    la::Matrix<T> srbt;  // S_r Bᵀ, rr-by-rl
    if (f.identity_coupling) {
      slb = fl.s;
      srbt = fr.s;
    } else {
      slb.resize(rl, rr);
      la::gemm(la::Op::None, la::Op::None, T(1), fl.s, f.coupling, T(0), slb);
      srbt.resize(rr, rl);
      la::gemm(la::Op::None, la::Op::Trans, T(1), fr.s, f.coupling, T(0), srbt);
      stats_.flops += la::FlopCounter::gemm_flops(rl, rr, rl) +
                      la::FlopCounter::gemm_flops(rr, rl, rr);
    }
    la::Matrix<T> c(rl + rr, rl + rr);
    for (index_t j = 0; j < rr; ++j) std::copy_n(slb.col(j), rl, c.col(rl + j));
    for (index_t j = 0; j < rl; ++j) std::copy_n(srbt.col(j), rr, c.col(j) + rl);
    for (index_t i = 0; i < rl + rr; ++i) c(i, i) += T(1);
    check<StateError>(la::getrf(c, f.cap_pivots),
                      "UlvFactorization: singular capacitance system; "
                      "increase the regularization");
    stats_.flops += getrf_flops(rl + rr);
    // det(K̃_p + λI) = det(blkdiag) · det(C) (Sylvester); the LU diagonal
    // and pivot swaps carry det(C) including its sign.
    for (index_t i = 0; i < rl + rr; ++i) {
      const double u = double(c(i, i));
      if (u < 0) det_sign_ = -det_sign_;
      logdet_ += std::log(std::abs(u));
      if (f.cap_pivots[std::size_t(i)] != i) det_sign_ = -det_sign_;
    }
    f.cap = std::move(c);
    stats_.num_couplings += 1;
    stats_.max_coupling_size = std::max(stats_.max_coupling_size, rl + rr);
  }

  // Parent-facing factors via the telescoping identities (Nested views;
  // Explicit nodes attach theirs by subtree solve instead)
  //   V_p = blkdiag(V_l, V_r) E,
  //   Φ_p = blkdiag(Φ_l, Φ_r) (E − M C⁻¹ Ŝ E),
  //   S_p = (Ŝ E)ᵀ (E − M C⁻¹ Ŝ E),         Ŝ = blkdiag(S_l, S_r),
  // each O(|β| r²) given the children's factors.
  if (nd.parent == HssTopoNode::kNone ||
      basis_kind_[std::size_t(id)] != BasisKind::Nested)
    return;
  const index_t rp = declared_rank_[std::size_t(id)];
  if (rp == 0 || !complete_l || !complete_r || rl + rr == 0) return;
  if (view_ != nullptr) {
    cache_[std::size_t(id)].transfer = view_->basis(id);
    check<StateError>(cache_[std::size_t(id)].transfer.rows() == rl + rr &&
                          cache_[std::size_t(id)].transfer.cols() == rp,
                      "UlvFactorization: projection/basis rank mismatch");
  }
  const la::Matrix<T>& e = cache_[std::size_t(id)].transfer;
  const la::Matrix<T> e_top = e.block(0, 0, rl, rp);
  const la::Matrix<T> e_bot = e.block(rl, 0, rr, rp);

  // V_p is λ-independent, so only the first elimination builds it;
  // refactorize() reuses the telescoped basis untouched.
  if (view_ != nullptr) {
    f.v.resize(nd.count, rp);
    if (rl > 0) {
      la::Matrix<T> top(nl, rp);
      la::gemm(la::Op::None, la::Op::None, T(1), fl.v, e_top, T(0), top);
      put_rows(f.v, 0, top);
      stats_.flops += la::FlopCounter::gemm_flops(nl, rp, rl);
    }
    if (rr > 0) {
      la::Matrix<T> bot(nr, rp);
      la::gemm(la::Op::None, la::Op::None, T(1), fr.v, e_bot, T(0), bot);
      put_rows(f.v, nl, bot);
      stats_.flops += la::FlopCounter::gemm_flops(nr, rp, rr);
    }
  }

  la::Matrix<T> se(rl + rr, rp);
  if (rl > 0) {
    la::Matrix<T> t(rl, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fl.s, e_top, T(0), t);
    put_rows(se, 0, t);
  }
  if (rr > 0) {
    la::Matrix<T> t(rr, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fr.s, e_bot, T(0), t);
    put_rows(se, rl, t);
  }

  la::Matrix<T> fmat = e;  // F = E − M C⁻¹ Ŝ E (couple) or E (diagonal)
  if (couple) {
    la::Matrix<T> z = se;
    la::getrs(f.cap, f.cap_pivots, z);
    stats_.flops += la::FlopCounter::gemm_flops(rl + rr, rp, rl + rr);
    const la::Matrix<T> z_top = z.block(0, 0, rl, rp);
    const la::Matrix<T> z_bot = z.block(rl, 0, rr, rp);
    la::Matrix<T> m_top;  // B z_bot
    la::Matrix<T> m_bot;  // Bᵀ z_top
    if (f.identity_coupling) {
      m_top = z_bot;
      m_bot = z_top;
    } else {
      m_top.resize(rl, rp);
      la::gemm(la::Op::None, la::Op::None, T(1), f.coupling, z_bot, T(0),
               m_top);
      m_bot.resize(rr, rp);
      la::gemm(la::Op::Trans, la::Op::None, T(1), f.coupling, z_top, T(0),
               m_bot);
    }
    for (index_t j = 0; j < rp; ++j) {
      for (index_t i = 0; i < rl; ++i) fmat(i, j) -= m_top(i, j);
      for (index_t i = 0; i < rr; ++i) fmat(rl + i, j) -= m_bot(i, j);
    }
  }

  f.phi.resize(nd.count, rp);
  if (rl > 0) {
    const la::Matrix<T> f_top = fmat.block(0, 0, rl, rp);
    la::Matrix<T> top(nl, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fl.phi, f_top, T(0), top);
    put_rows(f.phi, 0, top);
    stats_.flops += la::FlopCounter::gemm_flops(nl, rp, rl);
  }
  if (rr > 0) {
    const la::Matrix<T> f_bot = fmat.block(rl, 0, rr, rp);
    la::Matrix<T> bot(nr, rp);
    la::gemm(la::Op::None, la::Op::None, T(1), fr.phi, f_bot, T(0), bot);
    put_rows(f.phi, nl, bot);
    stats_.flops += la::FlopCounter::gemm_flops(nr, rp, rr);
  }

  f.s.resize(rp, rp);
  la::gemm(la::Op::Trans, la::Op::None, T(1), se, fmat, T(0), f.s);
  stats_.flops += la::FlopCounter::gemm_flops(rp, rp, rl + rr);
  symmetrize(f.s);
}

template <typename T>
void UlvFactorization<T>::attach_explicit_basis(index_t id) {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  FNode& f = fn_[std::size_t(id)];
  const index_t r = declared_rank_[std::size_t(id)];
  if (view_ != nullptr) {
    f.v = view_->basis(id);
    check<StateError>(f.v.rows() == nd.count && f.v.cols() == r,
                      "UlvFactorization: explicit basis has wrong shape");
  }
  // Φ = (K̃_β + λI)⁻¹ V through the already-factored subtree (for a leaf
  // this is exactly the leaf-factor solve). The subtree solve touches
  // every level of β's OWN subtree once, so charge the triangular-solve
  // cost per subtree level — the O(N log² N) term of the explicit-basis
  // (HODLR) factorization.
  f.phi = f.v;
  solve_subtree(id, f.phi);
  stats_.flops += std::uint64_t(subtree_depth_[std::size_t(id)]) * 2 *
                  la::FlopCounter::trsm_flops(nd.count, r);
  f.s.resize(r, r);
  la::gemm(la::Op::Trans, la::Op::None, T(1), f.v, f.phi, T(0), f.s);
  stats_.flops += la::FlopCounter::gemm_flops(r, r, nd.count);
  symmetrize(f.s);
}

template <typename T>
void UlvFactorization<T>::leaf_solve(const FNode& f, la::Matrix<T>& b) const {
  if (f.leaf_pivots.empty())
    la::chol_solve(f.leaf_fac, b);
  else
    la::sytrs_lower(f.leaf_fac, f.leaf_pivots, b);
}

template <typename T>
void UlvFactorization<T>::solve_subtree(index_t id, la::Matrix<T>& b) const {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  const FNode& f = fn_[std::size_t(id)];
  if (nd.is_leaf()) {
    leaf_solve(f, b);
    return;
  }
  const index_t nl = topo_[std::size_t(nd.left)].count;
  const index_t nr = topo_[std::size_t(nd.right)].count;
  const index_t rhs = b.cols();

  // y = blkdiag(K̃_l + λI, K̃_r + λI)⁻¹ b.
  la::Matrix<T> top = b.block(0, 0, nl, rhs);
  solve_subtree(nd.left, top);
  la::Matrix<T> bot = b.block(nl, 0, nr, rhs);
  solve_subtree(nd.right, bot);

  if (f.has_coupling()) coupling_downdate(id, top, bot);

  put_rows(b, 0, top);
  put_rows(b, nl, bot);
}

template <typename T>
void UlvFactorization<T>::coupling_downdate(index_t id, la::Matrix<T>& top,
                                            la::Matrix<T>& bot) const {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  const FNode& f = fn_[std::size_t(id)];
  const FNode& fl = fn_[std::size_t(nd.left)];
  const FNode& fr = fn_[std::size_t(nd.right)];
  const index_t rl = fl.v.cols();
  const index_t rr = fr.v.cols();
  const index_t rhs = top.cols();
  // Woodbury downdate: y −= blkdiag(Φ_l, Φ_r) M C⁻¹ [V_lᵀ y_l; V_rᵀ y_r].
  la::Matrix<T> z(rl + rr, rhs);
  {
    la::Matrix<T> tl(rl, rhs);
    la::gemm(la::Op::Trans, la::Op::None, T(1), fl.v, top, T(0), tl);
    put_rows(z, 0, tl);
    la::Matrix<T> tr(rr, rhs);
    la::gemm(la::Op::Trans, la::Op::None, T(1), fr.v, bot, T(0), tr);
    put_rows(z, rl, tr);
  }
  la::getrs(f.cap, f.cap_pivots, z);
  const la::Matrix<T> z_top = z.block(0, 0, rl, rhs);
  const la::Matrix<T> z_bot = z.block(rl, 0, rr, rhs);
  if (f.identity_coupling) {
    // B = I: M C⁻¹ z is just the swapped halves — skip the copy GEMMs.
    la::gemm(la::Op::None, la::Op::None, T(-1), fl.phi, z_bot, T(1), top);
    la::gemm(la::Op::None, la::Op::None, T(-1), fr.phi, z_top, T(1), bot);
    return;
  }
  la::Matrix<T> gl(rl, rhs);
  la::gemm(la::Op::None, la::Op::None, T(1), f.coupling, z_bot, T(0), gl);
  la::Matrix<T> gr(rr, rhs);
  la::gemm(la::Op::Trans, la::Op::None, T(1), f.coupling, z_top, T(0), gr);
  la::gemm(la::Op::None, la::Op::None, T(-1), fl.phi, gl, T(1), top);
  la::gemm(la::Op::None, la::Op::None, T(-1), fr.phi, gr, T(1), bot);
}

template <typename T>
void UlvFactorization<T>::sweep_node(index_t id, la::Matrix<T>& x) const {
  const HssTopoNode& nd = topo_[std::size_t(id)];
  const FNode& f = fn_[std::size_t(id)];
  const index_t rhs = x.cols();
  if (nd.is_leaf()) {
    la::Matrix<T> blk = x.block(nd.row_begin, 0, nd.count, rhs);
    leaf_solve(f, blk);
    put_rows(x, nd.row_begin, blk);
    return;
  }
  if (!f.has_coupling()) return;
  const HssTopoNode& l = topo_[std::size_t(nd.left)];
  const HssTopoNode& r = topo_[std::size_t(nd.right)];
  // All deeper levels are done, so the children's rows of x already hold
  // blkdiag(K̃_l + λI, K̃_r + λI)⁻¹ b — exactly the recursion's state when
  // it reaches this node's downdate.
  la::Matrix<T> top = x.block(l.row_begin, 0, l.count, rhs);
  la::Matrix<T> bot = x.block(r.row_begin, 0, r.count, rhs);
  coupling_downdate(id, top, bot);
  put_rows(x, l.row_begin, top);
  put_rows(x, r.row_begin, bot);
}

template <typename T>
la::Matrix<T> UlvFactorization<T>::solve(const la::Matrix<T>& b,
                                         SweepMode sweep) const {
  check<DimensionError>(b.rows() == n_,
                        "UlvFactorization::solve: b must have N rows");
  check<DimensionError>(b.cols() >= 1,
                        "UlvFactorization::solve: b must have >= 1 column");
  const index_t r = b.cols();

  // Identity-ordered views (randomized HSS, HODLR) skip the permutation
  // staging entirely — one copy of b, no scratch allocation.
  la::Matrix<T> x = perm_.empty() ? b : la::Matrix<T>(n_, r);
  if (!perm_.empty()) {
    for (index_t j = 0; j < r; ++j) {
      const T* src = b.col(j);
      T* dst = x.col(j);
      for (index_t pos = 0; pos < n_; ++pos)
        dst[pos] = src[perm_[std::size_t(pos)]];
    }
  }

  if (sweep == SweepMode::Sequential) {
    solve_subtree(root_, x);
  } else {
    // Level-synchronous bottom-up elimination sweep: nodes of one level
    // own disjoint row ranges of x, so they run in parallel; the barrier
    // between levels enforces the children-before-parent dependency. Each
    // node performs the same GEMM sequence as the recursion, so the result
    // is bit-identical for any thread count or schedule.
    for (index_t d = index_t(levels_.size()) - 1; d >= 0; --d) {
      const std::vector<index_t>& level = levels_[std::size_t(d)];
#pragma omp parallel for schedule(dynamic, 1)
      for (index_t i = 0; i < index_t(level.size()); ++i)
        sweep_node(level[std::size_t(i)], x);
    }
  }

  if (perm_.empty()) return x;
  la::Matrix<T> out(n_, r);
  for (index_t j = 0; j < r; ++j) {
    const T* src = x.col(j);
    T* dst = out.col(j);
    for (index_t pos = 0; pos < n_; ++pos)
      dst[perm_[std::size_t(pos)]] = src[pos];
  }
  return out;
}

template <typename T>
double UlvFactorization<T>::logdet() const {
  check<StateError>(stats_.positive_definite,
                    "UlvFactorization::logdet: factored operator is not "
                    "positive definite (see log_abs_det/det_sign)");
  return logdet_;
}

// --- CompressedMatrix's HssView + Factorizable capability ------------------

/// HssView over a GOFMM compression: metric-tree topology and permutation,
/// cached/oracle-evaluated leaf diagonals, telescoping projection bases,
/// and oracle-evaluated skeleton couplings. Only alive inside factorize().
template <typename T>
class GofmmHssView final : public HssView<T> {
 public:
  explicit GofmmHssView(const CompressedMatrix<T>& kc) : kc_(kc) {
    this->n_ = kc.size();
    this->perm_ = kc.tree_->perm();
    this->root_ = kc.tree_->root()->id;
    this->topo_.resize(std::size_t(kc.tree_->num_nodes()));
    for (const tree::Node* node : kc.tree_->nodes()) {
      HssTopoNode& t = this->topo_[std::size_t(node->id)];
      t.id = node->id;
      t.level = node->level;
      t.row_begin = node->begin;
      t.count = node->count;
      t.parent =
          node->parent != nullptr ? node->parent->id : HssTopoNode::kNone;
      if (!node->is_leaf()) {
        t.left = node->left()->id;
        t.right = node->right()->id;
      }
    }
  }

  la::Matrix<T> leaf_diag(index_t id) const override {
    const tree::Node* node = kc_.tree_->nodes()[std::size_t(id)];
    const auto& nd = kc_.data_[std::size_t(id)];
    // The self block leads every near list, so the cached copy is reused
    // when present.
    if (!nd.near_blocks.empty() && !nd.near.empty() && nd.near[0] == node)
      return nd.near_blocks[0];
    return kc_.k_->submatrix(kc_.tree_->indices(node),
                             kc_.tree_->indices(node));
  }

  index_t basis_rank(index_t id) const override {
    const tree::Node* node = kc_.tree_->nodes()[std::size_t(id)];
    if (node->parent == nullptr) return 0;
    return index_t(kc_.data_[std::size_t(id)].skel.size());
  }

  BasisKind basis_kind(index_t) const override { return BasisKind::Nested; }

  la::Matrix<T> basis(index_t id) const override {
    // P_{α̃α}ᵀ at a leaf, the transfer map P_{α̃[l̃r̃]}ᵀ at interior nodes.
    return kc_.data_[std::size_t(id)].proj.transposed();
  }

  la::Matrix<T> coupling(index_t id) const override {
    const HssTopoNode& t = this->topo_[std::size_t(id)];
    return kc_.k_->submatrix(kc_.data_[std::size_t(t.left)].skel,
                             kc_.data_[std::size_t(t.right)].skel);
  }

 private:
  const CompressedMatrix<T>& kc_;
};

template <typename T>
void CompressedMatrix<T>::factorize(T regularization,
                                    FactorizeOptions options) {
  // Invalidate up front — deliberately trading the strong exception
  // guarantee for loudness: after a FAILED re-factorize the operator
  // throws StateError on solve() instead of silently serving the old-λ
  // factors to a caller who asked for a new λ.
  fact_.reset();
  const GofmmHssView<T> view(*this);
  fact_ = std::make_unique<UlvFactorization<T>>(view, regularization, options);
}

template <typename T>
void CompressedMatrix<T>::refactorize(T regularization) {
  if (fact_ == nullptr) {
    factorize(regularization);
    return;
  }
  try {
    fact_->refactorize(regularization);
  } catch (...) {
    // A failed re-elimination leaves the factors inconsistent; drop them
    // so solve() throws StateError instead of serving garbage.
    fact_.reset();
    throw;
  }
}

template <typename T>
la::Matrix<T> CompressedMatrix<T>::solve(const la::Matrix<T>& b) const {
  check<StateError>(fact_ != nullptr,
                    "CompressedMatrix::solve: call factorize() first");
  return fact_->solve(b);
}

template <typename T>
double CompressedMatrix<T>::logdet() const {
  check<StateError>(fact_ != nullptr,
                    "CompressedMatrix::logdet: call factorize() first");
  return fact_->logdet();
}

template <typename T>
FactorizationStats CompressedMatrix<T>::factorization_stats() const {
  check<StateError>(
      fact_ != nullptr,
      "CompressedMatrix::factorization_stats: call factorize() first");
  return fact_->stats();
}

template <typename T>
const UlvFactorization<T>& CompressedMatrix<T>::factorization() const {
  check<StateError>(fact_ != nullptr,
                    "CompressedMatrix::factorization: call factorize() first");
  return *fact_;
}

template <typename T>
std::unique_ptr<CompressedMatrix<T>> make_preconditioner(
    std::shared_ptr<const SPDMatrix<T>> k, T regularization, Config coarse) {
  // Pure HSS structure: with budget 0 every off-diagonal coupling is a
  // sibling skeleton block, so the ULV factorization captures the whole
  // coarse operator (solve() inverts it to round-off).
  coarse.budget = 0.0;
  // Diagonal scale of K, for the λ escalation floor below.
  double diag_scale = 0;
  {
    const index_t n = k->size();
    const index_t step = std::max<index_t>(1, n / 16);
    index_t cnt = 0;
    for (index_t i = 0; i < n; i += step, ++cnt) {
      const index_t one[] = {i};
      diag_scale += std::abs(double(k->submatrix(one, one)(0, 0)));
    }
    diag_scale /= double(cnt);
  }
  auto op = CompressedMatrix<T>::compress_unique(std::move(k), coarse);
  const index_t n = op->size();

  // PCG needs an SPD preconditioner, but the coarse compression error E =
  // K̃ − K can leave K̃ + λI indefinite whenever λ < ‖E‖ (paper
  // "Limitations"). Start λ at twice the sampled absolute error estimate,
  // then verify positive definiteness and escalate geometrically until it
  // holds — each retry is a refactorize() (leaf + capacitance
  // re-elimination only, no oracle traffic), so over-estimating merely
  // costs CG iterations while an indefinite preconditioner breaks PCG
  // outright.
  T lambda = regularization;
  {
    // λ floor from the coarse compression error E = K̃ − K: power
    // iteration on E_colsᵀ E_cols over s sampled columns gives
    // σ_max(E_cols), a LOWER bound on ‖E‖₂ (column sampling only sees
    // part of the spectrum). The ×2 compensates for that underestimate
    // heuristically — it is NOT a guarantee, which is why the PD probe
    // below and the per-column PCG fallback in conjugate_gradient remain
    // load-bearing. One blocked apply + an s-column oracle read.
    const index_t s = std::min<index_t>(64, n);
    Prng rng(coarse.seed + 13);
    const std::vector<index_t> cols = sample_without_replacement(rng, n, s);
    la::Matrix<T> unit(n, s);
    for (index_t j = 0; j < s; ++j) unit(cols[std::size_t(j)], j) = T(1);
    const la::Matrix<T> approx = op->apply(unit);
    std::vector<index_t> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), index_t(0));
    la::Matrix<T> err = op->matrix().submatrix(all, cols);  // E_cols = K̃−K
    for (index_t j = 0; j < s; ++j)
      for (index_t i = 0; i < n; ++i) err(i, j) = approx(i, j) - err(i, j);
    la::Matrix<T> v = la::Matrix<T>::random_normal(s, 1, coarse.seed + 29);
    double sigma = 0;
    for (int it = 0; it < 6; ++it) {
      la::Matrix<T> y(n, 1);
      la::gemm(la::Op::None, la::Op::None, T(1), err, v, T(0), y);
      la::gemm(la::Op::Trans, la::Op::None, T(1), err, y, T(0), v);
      const double nrm = la::nrm2(s, v.col(0));  // ≈ σ², v was unit-norm
      sigma = std::sqrt(nrm);
      if (nrm <= 0) break;
      for (index_t i = 0; i < s; ++i) v(i, 0) = T(double(v(i, 0)) / nrm);
    }
    lambda = std::max(lambda, T(2 * sigma));
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    bool ok = true;
    try {
      // First attempt builds the factorization (payload snapshot + full
      // elimination); every λ retry afterwards is a cheap re-elimination
      // over the snapshot.
      if (!op->factorized())
        op->factorize(lambda);
      else
        op->refactorize(lambda);
      // Necessary condition from the elimination itself (leaf inertia +
      // determinant signs), then a sharper probe: inverse power iteration.
      // The largest-magnitude eigenvalue of (K̃ + λI)⁻¹ is 1/μ_min, so its
      // Rayleigh quotient is negative exactly when an indefinite μ_min
      // survived λ — even in pairs the determinant test cannot see.
      ok = op->factorization_stats().positive_definite;
      if (ok) {
        la::Matrix<T> y = la::Matrix<T>::random_normal(n, 1, coarse.seed + 17);
        for (int it = 0; it < 8 && ok; ++it) {
          y = op->solve(y);
          const double nrm = la::nrm2(n, y.col(0));
          if (nrm <= 0) {
            ok = false;
            break;
          }
          for (index_t i = 0; i < n; ++i) y(i, 0) = T(double(y(i, 0)) / nrm);
        }
        if (ok) {
          la::Matrix<T> z = op->solve(y);
          ok = la::dot(n, y.col(0), z.col(0)) > 0;
        }
      }
    } catch (const StateError&) {
      ok = false;  // a leaf or capacitance refused to eliminate
    }
    if (ok) return op;
    lambda = std::max({T(4) * lambda, T(1e-3 * diag_scale),
                       std::numeric_limits<T>::min()});
  }
  check<StateError>(false,
                    "make_preconditioner: could not reach a positive "
                    "definite factorization; tighten the coarse tolerance");
  return op;
}

template class UlvFactorization<float>;
template class UlvFactorization<double>;
template class GofmmHssView<float>;
template class GofmmHssView<double>;

template void CompressedMatrix<float>::factorize(float, FactorizeOptions);
template void CompressedMatrix<double>::factorize(double, FactorizeOptions);
template void CompressedMatrix<float>::refactorize(float);
template void CompressedMatrix<double>::refactorize(double);
template la::Matrix<float> CompressedMatrix<float>::solve(
    const la::Matrix<float>&) const;
template la::Matrix<double> CompressedMatrix<double>::solve(
    const la::Matrix<double>&) const;
template double CompressedMatrix<float>::logdet() const;
template double CompressedMatrix<double>::logdet() const;
template FactorizationStats CompressedMatrix<float>::factorization_stats()
    const;
template FactorizationStats CompressedMatrix<double>::factorization_stats()
    const;
template const UlvFactorization<float>& CompressedMatrix<float>::factorization()
    const;
template const UlvFactorization<double>&
CompressedMatrix<double>::factorization() const;

template std::unique_ptr<CompressedMatrix<float>> make_preconditioner<float>(
    std::shared_ptr<const SPDMatrix<float>>, float, Config);
template std::unique_ptr<CompressedMatrix<double>> make_preconditioner<double>(
    std::shared_ptr<const SPDMatrix<double>>, double, Config);

}  // namespace gofmm
