#include "la/id.hpp"

#include <cmath>

namespace gofmm::la {

template <typename T>
Interpolative<T> interp_decomp(const Matrix<T>& a, T rel_tol,
                               index_t max_rank) {
  const index_t n = a.cols();
  Interpolative<T> out;
  if (n == 0 || a.rows() == 0) return out;

  PivotedQr<T> qr = geqp3(a, rel_tol, max_rank);
  index_t r = qr.rank;
  if (r == 0) r = 1;  // never emit an empty basis: keep the top pivot column
  out.rank = r;

  out.skel.assign(qr.jpvt.begin(), qr.jpvt.begin() + r);

  // Relative truncation estimate from the next diagonal of R.
  const double r00 = std::abs(double(qr.r(0, 0)));
  if (r < std::min(a.rows(), n) && r00 > 0.0)
    out.est_error = std::abs(double(qr.r(r, r))) / r00;

  // Solve R11 * Z = R12 for the non-skeleton coefficients.
  Matrix<T> r11(r, r);
  for (index_t j = 0; j < r; ++j)
    for (index_t i = 0; i <= j; ++i) r11(i, j) = qr.r(i, j);
  Matrix<T> z(r, n - r);
  for (index_t j = 0; j < n - r; ++j)
    for (index_t i = 0; i < r; ++i) z(i, j) = qr.r(i, r + j);
  if (n - r > 0)
    trsm(/*upper=*/true, Op::None, /*unit_diag=*/false, T(1), r11, z);

  // Un-pivot: P(:, jpvt[t]) = e_t for t < r, else Z(:, t - r).
  out.p.resize(r, n);
  for (index_t t = 0; t < r; ++t) out.p(t, qr.jpvt[std::size_t(t)]) = T(1);
  for (index_t t = r; t < n; ++t)
    for (index_t i = 0; i < r; ++i)
      out.p(i, qr.jpvt[std::size_t(t)]) = z(i, t - r);
  return out;
}

template Interpolative<float> interp_decomp<float>(const Matrix<float>&, float,
                                                   index_t);
template Interpolative<double> interp_decomp<double>(const Matrix<double>&,
                                                     double, index_t);

}  // namespace gofmm::la
