#include "la/ldlt.hpp"

#include <cmath>

#include "la/blas.hpp"

namespace gofmm::la {

namespace {

/// The Bunch–Kaufman threshold: alpha = (1 + sqrt(17)) / 8 minimises the
/// worst-case element growth over the 1×1 vs 2×2 pivot choice.
const double kBkAlpha = (1.0 + std::sqrt(17.0)) / 8.0;

/// Symmetric interchange of rows/columns kk and kp (kp > kk) inside the
/// trailing lower-triangular submatrix, LAPACK SYTF2-style.
template <typename T>
void symmetric_swap(Matrix<T>& a, index_t kk, index_t kp) {
  const index_t n = a.rows();
  for (index_t i = kp + 1; i < n; ++i) std::swap(a(i, kk), a(i, kp));
  for (index_t j = kk + 1; j < kp; ++j) std::swap(a(j, kk), a(kp, j));
  std::swap(a(kk, kk), a(kp, kp));
}

/// Unblocked Bunch–Kaufman on the trailing columns [k0, n) (LAPACK SYTF2,
/// lower). Assumes every update from columns < k0 has already been applied
/// (the blocked driver's right-looking panel downdates guarantee it).
/// Records global 1-based pivots; returns false when a fully zero pivot
/// column makes the matrix exactly singular.
template <typename T>
bool sytf2_lower(Matrix<T>& a, std::vector<index_t>& ipiv, index_t k0) {
  const index_t n = a.rows();
  const double alpha = kBkAlpha;
  bool singular = false;

  index_t k = k0;
  while (k < n) {
    index_t kstep = 1;
    index_t kp = k;
    const double absakk = std::abs(double(a(k, k)));

    // Largest subdiagonal entry of column k.
    index_t imax = k;
    double colmax = 0;
    for (index_t i = k + 1; i < n; ++i) {
      const double v = std::abs(double(a(i, k)));
      if (v > colmax) {
        colmax = v;
        imax = i;
      }
    }

    if (std::max(absakk, colmax) == 0.0) {
      // Whole pivot column is zero: exactly singular. Record a do-nothing
      // 1×1 pivot and keep factoring so the caller still gets the inertia
      // of the nonsingular part.
      singular = true;
    } else if (absakk >= alpha * colmax) {
      // 1×1 pivot at k, no interchange.
    } else {
      // Largest off-diagonal entry of row/column imax in the trailing block.
      double rowmax = 0;
      for (index_t j = k; j < imax; ++j)
        rowmax = std::max(rowmax, std::abs(double(a(imax, j))));
      for (index_t i = imax + 1; i < n; ++i)
        rowmax = std::max(rowmax, std::abs(double(a(i, imax))));
      if (absakk >= alpha * colmax * (colmax / rowmax)) {
        // 1×1 pivot at k after all: growth is bounded.
      } else if (std::abs(double(a(imax, imax))) >= alpha * rowmax) {
        kp = imax;  // 1×1 pivot, interchange k <-> imax
      } else {
        kp = imax;  // 2×2 pivot, interchange k+1 <-> imax
        kstep = 2;
      }
    }

    const index_t kk = k + kstep - 1;
    if (kp != kk) {
      symmetric_swap(a, kk, kp);
      if (kstep == 2) std::swap(a(k + 1, k), a(kp, k));
    }

    if (std::max(absakk, colmax) != 0.0) {
      if (kstep == 1) {
        // A(k+1:, k+1:) -= d⁻¹ * a(k+1:, k) a(k+1:, k)ᵀ, column stored as L.
        if (k < n - 1) {
          const T d11 = T(1) / a(k, k);
          for (index_t j = k + 1; j < n; ++j) {
            const T wj = d11 * a(j, k);
            if (wj != T(0)) {
              const T* ck = a.col(k);
              T* cj = a.col(j);
              for (index_t i = j; i < n; ++i) cj[i] -= ck[i] * wj;
            }
          }
          for (index_t i = k + 1; i < n; ++i) a(i, k) *= d11;
        }
      } else if (k < n - 2) {
        // 2×2 pivot D = [[a(k,k), a(k+1,k)], [a(k+1,k), a(k+1,k+1)]]:
        // rank-2 update of the trailing block with L columns stored in place
        // (LAPACK SYTF2 update, scaled through d21 to avoid overflow).
        const T d21 = a(k + 1, k);
        const T d11 = a(k + 1, k + 1) / d21;
        const T d22 = a(k, k) / d21;
        const T t = T(1) / (d11 * d22 - T(1));
        const T d21inv = t / d21;
        for (index_t j = k + 2; j < n; ++j) {
          const T wk = d21inv * (d11 * a(j, k) - a(j, k + 1));
          const T wkp1 = d21inv * (d22 * a(j, k + 1) - a(j, k));
          const T* ck = a.col(k);
          const T* ck1 = a.col(k + 1);
          T* cj = a.col(j);
          for (index_t i = j; i < n; ++i) cj[i] -= ck[i] * wk + ck1[i] * wkp1;
          a(j, k) = wk;
          a(j, k + 1) = wkp1;
        }
      }
    }

    // LAPACK 1-based pivot convention (sign encodes the block size).
    if (kstep == 1) {
      ipiv[std::size_t(k)] = kp + 1;
    } else {
      ipiv[std::size_t(k)] = -(kp + 1);
      ipiv[std::size_t(k + 1)] = -(kp + 1);
    }
    k += kstep;
  }
  return !singular;
}

/// Blocked panel factorization (LAPACK LASYF, lower): factors kb columns
/// starting at k0 using a workspace W of UPDATED columns — Bunch–Kaufman
/// pivot decisions need post-update values, so each candidate column is
/// formed in W (copy + rank-j downdate) before it is inspected, and the
/// stored L columns are read back out of W. Returns kb (kBlock-1 or kBlock
/// in the steady state; a 2×2 pivot may not straddle the panel edge), and
/// records global 1-based pivots into `ipiv`. The trailing submatrix is NOT
/// updated here — the driver downdates it with gemm_panel at
/// matrix-multiply speed.
template <typename T>
index_t lasyf_panel(Matrix<T>& a, std::vector<index_t>& ipiv, index_t k0,
                    index_t nb, bool& singular) {
  const index_t n = a.rows();
  const index_t rem = n - k0;
  const double alpha = kBkAlpha;
  // W rows mirror global rows k0..n; one spare column holds the updated
  // imax candidate while the pivot choice is still open.
  Matrix<T> w(rem, std::min(rem, nb + 1));
  // Local signed 1-based pivots (LAPACK LASYF convention) — converted to
  // global after the partial interchange undo below.
  std::vector<index_t> lp(std::size_t(std::min(rem, nb + 1)), 0);
  // A 2×2 pivot never straddles the panel edge: stop one column short
  // unless this panel reaches the end of the matrix.
  const index_t jlimit = (k0 + nb >= n) ? rem : nb - 1;

  index_t j = 0;
  while (j < jlimit) {
    const index_t k = k0 + j;  // global pivot column
    // Updated column k into W(:, j): copy, then downdate by the panel
    // columns factored so far (their L lives in A, their D·Lᵀ row in W).
    for (index_t i = k; i < n; ++i) w(i - k0, j) = a(i, k);
    for (index_t c = 0; c < j; ++c) {
      const T coef = w(j, c);
      if (coef == T(0)) continue;
      const T* lc = a.col(k0 + c);
      for (index_t i = k; i < n; ++i) w(i - k0, j) -= lc[i] * coef;
    }

    index_t kstep = 1;
    index_t kp = k;  // global interchange target
    const double absakk = std::abs(double(w(j, j)));
    index_t imax = k;
    double colmax = 0;
    for (index_t i = k + 1; i < n; ++i) {
      const double v = std::abs(double(w(i - k0, j)));
      if (v > colmax) {
        colmax = v;
        imax = i;
      }
    }

    const bool zero_col = std::max(absakk, colmax) == 0.0;
    if (zero_col) {
      singular = true;  // do-nothing 1×1 pivot, keep factoring for inertia
    } else if (absakk >= alpha * colmax) {
      // 1×1 pivot at k, no interchange.
    } else {
      // Updated column imax into the spare W column j+1.
      for (index_t i = k; i < imax; ++i) w(i - k0, j + 1) = a(imax, i);
      for (index_t i = imax; i < n; ++i) w(i - k0, j + 1) = a(i, imax);
      for (index_t c = 0; c < j; ++c) {
        const T coef = w(imax - k0, c);
        if (coef == T(0)) continue;
        const T* lc = a.col(k0 + c);
        for (index_t i = k; i < n; ++i) w(i - k0, j + 1) -= lc[i] * coef;
      }
      double rowmax = 0;
      for (index_t i = k; i < n; ++i) {
        if (i == imax) continue;
        rowmax = std::max(rowmax, std::abs(double(w(i - k0, j + 1))));
      }
      if (absakk >= alpha * colmax * (colmax / rowmax)) {
        // 1×1 pivot at k after all: growth is bounded.
      } else if (std::abs(double(w(imax - k0, j + 1))) >= alpha * rowmax) {
        // 1×1 pivot at imax: its updated column becomes the pivot column.
        kp = imax;
        for (index_t i = k; i < n; ++i) w(i - k0, j) = w(i - k0, j + 1);
      } else {
        kp = imax;  // 2×2 pivot, interchange k+1 <-> imax
        kstep = 2;
      }
    }

    const index_t kk = k + kstep - 1;     // global column being swapped
    const index_t jj = j + kstep - 1;     // its local/W column
    if (kp != kk) {
      // Interchange kk <-> kp inside the trailing block. Column kk's
      // updated values live in W (copied back below), so one-way copies
      // move its stale A entries into kp's symmetric positions...
      a(kp, kp) = a(kk, kk);
      for (index_t i = kk + 1; i < kp; ++i) a(kp, i) = a(i, kk);
      for (index_t i = kp + 1; i < n; ++i) a(i, kp) = a(i, kk);
      // ...and the factored panel columns (plus W) swap whole rows so the
      // trailing gemm downdate sees one consistent row ordering.
      for (index_t c = 0; c <= jj; ++c)
        std::swap(a(kk, k0 + c), a(kp, k0 + c));
      for (index_t c = 0; c <= jj; ++c)
        std::swap(w(kk - k0, c), w(kp - k0, c));
    }

    if (kstep == 1) {
      // Column j of W holds L(k)·D(k): store it and scale to recover L.
      for (index_t i = k; i < n; ++i) a(i, k) = w(i - k0, j);
      if (!zero_col && k < n - 1) {
        const T r1 = T(1) / a(k, k);
        for (index_t i = k + 1; i < n; ++i) a(i, k) *= r1;
      }
    } else {
      // 2×2 pivot D = [[w(j,j), w(j+1,j)], [w(j+1,j), w(j+1,j+1)]]: solve
      // the L columns through d21 (same scaled formulas as the unblocked
      // kernel) and copy D into place.
      if (k < n - 2) {
        const T d21 = w(j + 1, j);
        const T d11 = w(j + 1, j + 1) / d21;
        const T d22 = w(j, j) / d21;
        const T t = T(1) / (d11 * d22 - T(1));
        const T d21inv = t / d21;
        for (index_t i = k + 2; i < n; ++i) {
          a(i, k) = d21inv * (d11 * w(i - k0, j) - w(i - k0, j + 1));
          a(i, k + 1) = d21inv * (d22 * w(i - k0, j + 1) - w(i - k0, j));
        }
      }
      a(k, k) = w(j, j);
      a(k + 1, k) = w(j + 1, j);
      a(k + 1, k + 1) = w(j + 1, j + 1);
    }

    // Local signed pivots, 1-based (sign encodes the block size).
    if (kstep == 1) {
      lp[std::size_t(j)] = (kp - k0) + 1;
    } else {
      lp[std::size_t(j)] = -((kp - k0) + 1);
      lp[std::size_t(j + 1)] = -((kp - k0) + 1);
    }
    j += kstep;
  }
  const index_t kb = j;

  // Trailing downdate A22 -= L21·(D·L21ᵀ) = L21·W21ᵀ, lower trapezoid
  // only, at matrix-multiply speed: W21ᵀ is a small kb-by-rest transpose
  // copy, then each column stripe gets ONE in-place gemm_panel with a
  // wedge save/restore — the same treatment potrf_lower gives its
  // trailing update, so the strict upper triangle stays untouched.
  const index_t rest = n - k0 - kb;
  if (rest > 0) {
    Matrix<T> wt(kb, rest);
    for (index_t c = 0; c < kb; ++c)
      for (index_t i = 0; i < rest; ++i) wt(c, i) = w(kb + i, c);
    constexpr index_t kStripe = 128;
    for (index_t c0 = 0; c0 < rest; c0 += kStripe) {
      const index_t cb = std::min(kStripe, rest - c0);
      Matrix<T> wedge(cb, cb);
      for (index_t jc = 1; jc < cb; ++jc)
        std::copy_n(a.col(k0 + kb + c0 + jc) + k0 + kb + c0, jc,
                    wedge.col(jc));
      gemm_panel(rest - c0, cb, kb, T(-1), a.col(k0) + k0 + kb + c0, n,
                 wt.col(c0), kb, a.col(k0 + kb + c0) + k0 + kb + c0, n);
      for (index_t jc = 1; jc < cb; ++jc)
        std::copy_n(wedge.col(jc), jc, a.col(k0 + kb + c0 + jc) + k0 + kb + c0);
    }
  }

  // Put L21 in standard form: during the panel, interchanges were applied
  // across ALL its factored columns (so the gemm above sees one row
  // ordering); the SYTF2/SYTRS convention applies each step's interchange
  // only from that step on, so partially undo them, walking backwards.
  {
    index_t u = kb - 1;
    while (u >= 0) {
      const index_t uu = u;
      index_t up = lp[std::size_t(u)];
      if (up < 0) {
        up = -up;
        --u;
      }
      --u;
      const index_t up0 = up - 1;  // 0-based local row
      if (up0 != uu && u >= 0)
        for (index_t c = 0; c <= u; ++c)
          std::swap(a(k0 + up0, k0 + c), a(k0 + uu, k0 + c));
    }
  }

  // Globalise the pivot indices (LAPACK 1-based, sign preserved).
  for (index_t c = 0; c < kb; ++c)
    ipiv[std::size_t(k0 + c)] =
        lp[std::size_t(c)] > 0 ? lp[std::size_t(c)] + k0
                               : lp[std::size_t(c)] - k0;
  return kb;
}

}  // namespace

template <typename T>
bool sytrf_lower(Matrix<T>& a, std::vector<index_t>& ipiv) {
  const index_t n = a.rows();
  require(a.rows() == a.cols(), "sytrf: matrix must be square");
  ipiv.assign(std::size_t(n), 0);
  // Blocked right-looking factorization, mirroring potrf/getrf: LASYF
  // panels with gemm_panel trailing downdates carry the O(n³) bulk at
  // matrix-multiply speed; small matrices and the final columns keep the
  // unblocked kernel (the workspace would not amortise).
  constexpr index_t kBlock = 64;
  if (n <= 2 * kBlock) return sytf2_lower(a, ipiv, 0);
  bool singular = false;
  index_t k0 = 0;
  while (n - k0 > kBlock) {
    bool panel_singular = false;
    k0 += lasyf_panel(a, ipiv, k0, kBlock, panel_singular);
    singular = singular || panel_singular;
  }
  if (k0 < n && !sytf2_lower(a, ipiv, k0)) singular = true;
  return !singular;
}

template <typename T>
void sytrs_lower(const Matrix<T>& a, const std::vector<index_t>& ipiv,
                 Matrix<T>& b) {
  const index_t n = a.rows();
  require(b.rows() == n, "sytrs: B row count must match A");
  const index_t rhs = b.cols();
  auto swap_rows = [&](index_t r1, index_t r2) {
    if (r1 != r2)
      for (index_t j = 0; j < rhs; ++j) std::swap(b(r1, j), b(r2, j));
  };

  // Forward: X := D⁻¹ L⁻¹ Pᵀ B, interleaving the interchanges block by
  // block exactly as the factorization recorded them.
  index_t k = 0;
  while (k < n) {
    if (ipiv[std::size_t(k)] > 0) {
      swap_rows(k, ipiv[std::size_t(k)] - 1);
      const T* ck = a.col(k);
      for (index_t j = 0; j < rhs; ++j) {
        const T bk = b(k, j);
        if (bk != T(0))
          for (index_t i = k + 1; i < n; ++i) b(i, j) -= ck[i] * bk;
      }
      const T dinv = T(1) / a(k, k);
      for (index_t j = 0; j < rhs; ++j) b(k, j) *= dinv;
      k += 1;
    } else {
      swap_rows(k + 1, -ipiv[std::size_t(k)] - 1);
      const T* ck = a.col(k);
      const T* ck1 = a.col(k + 1);
      for (index_t j = 0; j < rhs; ++j) {
        const T bk = b(k, j);
        const T bk1 = b(k + 1, j);
        for (index_t i = k + 2; i < n; ++i)
          b(i, j) -= ck[i] * bk + ck1[i] * bk1;
      }
      // 2×2 block solve, scaled through the off-diagonal as in SYTRS.
      const T akm1k = a(k + 1, k);
      const T akm1 = a(k, k) / akm1k;
      const T ak = a(k + 1, k + 1) / akm1k;
      const T denom = akm1 * ak - T(1);
      for (index_t j = 0; j < rhs; ++j) {
        const T bkm1 = b(k, j) / akm1k;
        const T bk = b(k + 1, j) / akm1k;
        b(k, j) = (ak * bkm1 - bk) / denom;
        b(k + 1, j) = (akm1 * bk - bkm1) / denom;
      }
      k += 2;
    }
  }

  // Backward: X := P L⁻ᵀ X, undoing the interchanges in reverse order.
  k = n - 1;
  while (k >= 0) {
    if (ipiv[std::size_t(k)] > 0) {
      const T* ck = a.col(k);
      for (index_t j = 0; j < rhs; ++j) {
        double s = 0;
        for (index_t i = k + 1; i < n; ++i)
          s += double(ck[i]) * double(b(i, j));
        b(k, j) -= T(s);
      }
      swap_rows(k, ipiv[std::size_t(k)] - 1);
      k -= 1;
    } else {
      const T* ck = a.col(k);
      const T* ckm1 = a.col(k - 1);
      for (index_t j = 0; j < rhs; ++j) {
        double s = 0;
        double sm1 = 0;
        for (index_t i = k + 1; i < n; ++i) {
          s += double(ck[i]) * double(b(i, j));
          sm1 += double(ckm1[i]) * double(b(i, j));
        }
        b(k, j) -= T(s);
        b(k - 1, j) -= T(sm1);
      }
      swap_rows(k, -ipiv[std::size_t(k)] - 1);
      k -= 2;
    }
  }
}

template <typename T>
LdltInertia ldlt_inertia(const Matrix<T>& a, const std::vector<index_t>& ipiv) {
  const index_t n = a.rows();
  LdltInertia out;
  index_t k = 0;
  while (k < n) {
    if (ipiv[std::size_t(k)] > 0) {
      const double d = double(a(k, k));
      if (d == 0.0) {
        out.zero += 1;
      } else {
        if (d < 0) {
          out.negative += 1;
          out.sign = -out.sign;
        }
        out.log_abs_det += std::log(std::abs(d));
      }
      k += 1;
    } else {
      // 2×2 block [[d11, d21], [d21, d22]], det computed directly in
      // double (block entries are pivoted matrix entries, far from the
      // overflow range for any operator this library factors).
      const double d21 = double(a(k + 1, k));
      const double d11 = double(a(k, k));
      const double d22 = double(a(k + 1, k + 1));
      const double det = d11 * d22 - d21 * d21;
      if (det < 0) {
        // One positive and one negative eigenvalue (the Bunch–Kaufman
        // normal case for a 2×2 pivot).
        out.negative += 1;
        out.sign = -out.sign;
        out.log_abs_det += std::log(-det);
      } else if (det > 0) {
        if (d11 + d22 < 0) out.negative += 2;  // both eigenvalues negative
        out.log_abs_det += std::log(det);
      } else {
        out.zero += 1;  // rank-1 block: one zero eigenvalue
        if (d11 + d22 < 0) {
          out.negative += 1;
          out.sign = -out.sign;
        }
      }
      k += 2;
    }
  }
  if (out.zero > 0) out.sign = 0;
  return out;
}

template bool sytrf_lower<float>(Matrix<float>&, std::vector<index_t>&);
template bool sytrf_lower<double>(Matrix<double>&, std::vector<index_t>&);
template void sytrs_lower<float>(const Matrix<float>&,
                                 const std::vector<index_t>&, Matrix<float>&);
template void sytrs_lower<double>(const Matrix<double>&,
                                  const std::vector<index_t>&,
                                  Matrix<double>&);
template LdltInertia ldlt_inertia<float>(const Matrix<float>&,
                                         const std::vector<index_t>&);
template LdltInertia ldlt_inertia<double>(const Matrix<double>&,
                                          const std::vector<index_t>&);

}  // namespace gofmm::la
