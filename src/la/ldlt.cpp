#include "la/ldlt.hpp"

#include <cmath>

namespace gofmm::la {

namespace {

/// Symmetric interchange of rows/columns kk and kp (kp > kk) inside the
/// trailing lower-triangular submatrix, LAPACK SYTF2-style.
template <typename T>
void symmetric_swap(Matrix<T>& a, index_t kk, index_t kp) {
  const index_t n = a.rows();
  for (index_t i = kp + 1; i < n; ++i) std::swap(a(i, kk), a(i, kp));
  for (index_t j = kk + 1; j < kp; ++j) std::swap(a(j, kk), a(kp, j));
  std::swap(a(kk, kk), a(kp, kp));
}

}  // namespace

template <typename T>
bool sytrf_lower(Matrix<T>& a, std::vector<index_t>& ipiv) {
  const index_t n = a.rows();
  require(a.rows() == a.cols(), "sytrf: matrix must be square");
  ipiv.assign(std::size_t(n), 0);
  // The Bunch–Kaufman threshold: alpha = (1 + sqrt(17)) / 8 minimises the
  // worst-case element growth over the 1×1 vs 2×2 pivot choice.
  const double alpha = (1.0 + std::sqrt(17.0)) / 8.0;
  bool singular = false;

  index_t k = 0;
  while (k < n) {
    index_t kstep = 1;
    index_t kp = k;
    const double absakk = std::abs(double(a(k, k)));

    // Largest subdiagonal entry of column k.
    index_t imax = k;
    double colmax = 0;
    for (index_t i = k + 1; i < n; ++i) {
      const double v = std::abs(double(a(i, k)));
      if (v > colmax) {
        colmax = v;
        imax = i;
      }
    }

    if (std::max(absakk, colmax) == 0.0) {
      // Whole pivot column is zero: exactly singular. Record a do-nothing
      // 1×1 pivot and keep factoring so the caller still gets the inertia
      // of the nonsingular part.
      singular = true;
    } else if (absakk >= alpha * colmax) {
      // 1×1 pivot at k, no interchange.
    } else {
      // Largest off-diagonal entry of row/column imax in the trailing block.
      double rowmax = 0;
      for (index_t j = k; j < imax; ++j)
        rowmax = std::max(rowmax, std::abs(double(a(imax, j))));
      for (index_t i = imax + 1; i < n; ++i)
        rowmax = std::max(rowmax, std::abs(double(a(i, imax))));
      if (absakk >= alpha * colmax * (colmax / rowmax)) {
        // 1×1 pivot at k after all: growth is bounded.
      } else if (std::abs(double(a(imax, imax))) >= alpha * rowmax) {
        kp = imax;  // 1×1 pivot, interchange k <-> imax
      } else {
        kp = imax;  // 2×2 pivot, interchange k+1 <-> imax
        kstep = 2;
      }
    }

    const index_t kk = k + kstep - 1;
    if (kp != kk) {
      symmetric_swap(a, kk, kp);
      if (kstep == 2) std::swap(a(k + 1, k), a(kp, k));
    }

    if (std::max(absakk, colmax) != 0.0) {
      if (kstep == 1) {
        // A(k+1:, k+1:) -= d⁻¹ * a(k+1:, k) a(k+1:, k)ᵀ, column stored as L.
        if (k < n - 1) {
          const T d11 = T(1) / a(k, k);
          for (index_t j = k + 1; j < n; ++j) {
            const T wj = d11 * a(j, k);
            if (wj != T(0)) {
              const T* ck = a.col(k);
              T* cj = a.col(j);
              for (index_t i = j; i < n; ++i) cj[i] -= ck[i] * wj;
            }
          }
          for (index_t i = k + 1; i < n; ++i) a(i, k) *= d11;
        }
      } else if (k < n - 2) {
        // 2×2 pivot D = [[a(k,k), a(k+1,k)], [a(k+1,k), a(k+1,k+1)]]:
        // rank-2 update of the trailing block with L columns stored in place
        // (LAPACK SYTF2 update, scaled through d21 to avoid overflow).
        const T d21 = a(k + 1, k);
        const T d11 = a(k + 1, k + 1) / d21;
        const T d22 = a(k, k) / d21;
        const T t = T(1) / (d11 * d22 - T(1));
        const T d21inv = t / d21;
        for (index_t j = k + 2; j < n; ++j) {
          const T wk = d21inv * (d11 * a(j, k) - a(j, k + 1));
          const T wkp1 = d21inv * (d22 * a(j, k + 1) - a(j, k));
          const T* ck = a.col(k);
          const T* ck1 = a.col(k + 1);
          T* cj = a.col(j);
          for (index_t i = j; i < n; ++i) cj[i] -= ck[i] * wk + ck1[i] * wkp1;
          a(j, k) = wk;
          a(j, k + 1) = wkp1;
        }
      }
    }

    // LAPACK 1-based pivot convention (sign encodes the block size).
    if (kstep == 1) {
      ipiv[std::size_t(k)] = kp + 1;
    } else {
      ipiv[std::size_t(k)] = -(kp + 1);
      ipiv[std::size_t(k + 1)] = -(kp + 1);
    }
    k += kstep;
  }
  return !singular;
}

template <typename T>
void sytrs_lower(const Matrix<T>& a, const std::vector<index_t>& ipiv,
                 Matrix<T>& b) {
  const index_t n = a.rows();
  require(b.rows() == n, "sytrs: B row count must match A");
  const index_t rhs = b.cols();
  auto swap_rows = [&](index_t r1, index_t r2) {
    if (r1 != r2)
      for (index_t j = 0; j < rhs; ++j) std::swap(b(r1, j), b(r2, j));
  };

  // Forward: X := D⁻¹ L⁻¹ Pᵀ B, interleaving the interchanges block by
  // block exactly as the factorization recorded them.
  index_t k = 0;
  while (k < n) {
    if (ipiv[std::size_t(k)] > 0) {
      swap_rows(k, ipiv[std::size_t(k)] - 1);
      const T* ck = a.col(k);
      for (index_t j = 0; j < rhs; ++j) {
        const T bk = b(k, j);
        if (bk != T(0))
          for (index_t i = k + 1; i < n; ++i) b(i, j) -= ck[i] * bk;
      }
      const T dinv = T(1) / a(k, k);
      for (index_t j = 0; j < rhs; ++j) b(k, j) *= dinv;
      k += 1;
    } else {
      swap_rows(k + 1, -ipiv[std::size_t(k)] - 1);
      const T* ck = a.col(k);
      const T* ck1 = a.col(k + 1);
      for (index_t j = 0; j < rhs; ++j) {
        const T bk = b(k, j);
        const T bk1 = b(k + 1, j);
        for (index_t i = k + 2; i < n; ++i)
          b(i, j) -= ck[i] * bk + ck1[i] * bk1;
      }
      // 2×2 block solve, scaled through the off-diagonal as in SYTRS.
      const T akm1k = a(k + 1, k);
      const T akm1 = a(k, k) / akm1k;
      const T ak = a(k + 1, k + 1) / akm1k;
      const T denom = akm1 * ak - T(1);
      for (index_t j = 0; j < rhs; ++j) {
        const T bkm1 = b(k, j) / akm1k;
        const T bk = b(k + 1, j) / akm1k;
        b(k, j) = (ak * bkm1 - bk) / denom;
        b(k + 1, j) = (akm1 * bk - bkm1) / denom;
      }
      k += 2;
    }
  }

  // Backward: X := P L⁻ᵀ X, undoing the interchanges in reverse order.
  k = n - 1;
  while (k >= 0) {
    if (ipiv[std::size_t(k)] > 0) {
      const T* ck = a.col(k);
      for (index_t j = 0; j < rhs; ++j) {
        double s = 0;
        for (index_t i = k + 1; i < n; ++i)
          s += double(ck[i]) * double(b(i, j));
        b(k, j) -= T(s);
      }
      swap_rows(k, ipiv[std::size_t(k)] - 1);
      k -= 1;
    } else {
      const T* ck = a.col(k);
      const T* ckm1 = a.col(k - 1);
      for (index_t j = 0; j < rhs; ++j) {
        double s = 0;
        double sm1 = 0;
        for (index_t i = k + 1; i < n; ++i) {
          s += double(ck[i]) * double(b(i, j));
          sm1 += double(ckm1[i]) * double(b(i, j));
        }
        b(k, j) -= T(s);
        b(k - 1, j) -= T(sm1);
      }
      swap_rows(k, -ipiv[std::size_t(k)] - 1);
      k -= 2;
    }
  }
}

template <typename T>
LdltInertia ldlt_inertia(const Matrix<T>& a, const std::vector<index_t>& ipiv) {
  const index_t n = a.rows();
  LdltInertia out;
  index_t k = 0;
  while (k < n) {
    if (ipiv[std::size_t(k)] > 0) {
      const double d = double(a(k, k));
      if (d == 0.0) {
        out.zero += 1;
      } else {
        if (d < 0) {
          out.negative += 1;
          out.sign = -out.sign;
        }
        out.log_abs_det += std::log(std::abs(d));
      }
      k += 1;
    } else {
      // 2×2 block [[d11, d21], [d21, d22]], det computed directly in
      // double (block entries are pivoted matrix entries, far from the
      // overflow range for any operator this library factors).
      const double d21 = double(a(k + 1, k));
      const double d11 = double(a(k, k));
      const double d22 = double(a(k + 1, k + 1));
      const double det = d11 * d22 - d21 * d21;
      if (det < 0) {
        // One positive and one negative eigenvalue (the Bunch–Kaufman
        // normal case for a 2×2 pivot).
        out.negative += 1;
        out.sign = -out.sign;
        out.log_abs_det += std::log(-det);
      } else if (det > 0) {
        if (d11 + d22 < 0) out.negative += 2;  // both eigenvalues negative
        out.log_abs_det += std::log(det);
      } else {
        out.zero += 1;  // rank-1 block: one zero eigenvalue
        if (d11 + d22 < 0) {
          out.negative += 1;
          out.sign = -out.sign;
        }
      }
      k += 2;
    }
  }
  if (out.zero > 0) out.sign = 0;
  return out;
}

template bool sytrf_lower<float>(Matrix<float>&, std::vector<index_t>&);
template bool sytrf_lower<double>(Matrix<double>&, std::vector<index_t>&);
template void sytrs_lower<float>(const Matrix<float>&,
                                 const std::vector<index_t>&, Matrix<float>&);
template void sytrs_lower<double>(const Matrix<double>&,
                                  const std::vector<index_t>&,
                                  Matrix<double>&);
template LdltInertia ldlt_inertia<float>(const Matrix<float>&,
                                         const std::vector<index_t>&);
template LdltInertia ldlt_inertia<double>(const Matrix<double>&,
                                          const std::vector<index_t>&);

}  // namespace gofmm::la
