// Column-major dense matrix container — the storage type used by every
// numeric routine in the library (BLAS subset, pivoted QR, GOFMM blocks).
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "util/common.hpp"
#include "util/prng.hpp"

namespace gofmm::la {

/// Owning column-major dense matrix of `T` (float or double).
///
/// Column-major layout matches the access pattern of the blocked GEMM and
/// Householder QR implementations in this library: columns are contiguous,
/// so panel operations stream memory.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// Creates an m-by-n matrix initialised to `value` (default 0).
  Matrix(index_t m, index_t n, T value = T(0)) : m_(m), n_(n) {
    require(m >= 0 && n >= 0, "Matrix: negative dimension");
    data_.assign(std::size_t(m) * std::size_t(n), value);
  }

  [[nodiscard]] index_t rows() const { return m_; }
  [[nodiscard]] index_t cols() const { return n_; }
  [[nodiscard]] index_t size() const { return m_ * n_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Element access, column-major: a(i, j) = data[i + j*m].
  T& operator()(index_t i, index_t j) {
    assert(i >= 0 && i < m_ && j >= 0 && j < n_);
    return data_[std::size_t(i) + std::size_t(j) * std::size_t(m_)];
  }
  const T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < m_ && j >= 0 && j < n_);
    return data_[std::size_t(i) + std::size_t(j) * std::size_t(m_)];
  }

  /// Raw storage (column-major, contiguous, leading dimension == rows()).
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Pointer to the start of column j.
  T* col(index_t j) { return data() + std::size_t(j) * std::size_t(m_); }
  const T* col(index_t j) const {
    return data() + std::size_t(j) * std::size_t(m_);
  }

  /// Reshapes in place, discarding contents.
  void resize(index_t m, index_t n) {
    m_ = m;
    n_ = n;
    data_.assign(std::size_t(m) * std::size_t(n), T(0));
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Returns the (i0:i0+mb, j0:j0+nb) block as a new matrix.
  [[nodiscard]] Matrix block(index_t i0, index_t j0, index_t mb,
                             index_t nb) const {
    assert(i0 + mb <= m_ && j0 + nb <= n_);
    Matrix out(mb, nb);
    for (index_t j = 0; j < nb; ++j)
      std::copy_n(col(j0 + j) + i0, mb, out.col(j));
    return out;
  }

  /// Gathers rows I and columns J into a new |I|-by-|J| matrix.
  [[nodiscard]] Matrix gather(std::span<const index_t> I,
                              std::span<const index_t> J) const {
    Matrix out(index_t(I.size()), index_t(J.size()));
    for (index_t j = 0; j < out.cols(); ++j) {
      const T* src = col(J[std::size_t(j)]);
      T* dst = out.col(j);
      for (index_t i = 0; i < out.rows(); ++i) dst[i] = src[I[std::size_t(i)]];
    }
    return out;
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix out(n_, m_);
    for (index_t j = 0; j < n_; ++j)
      for (index_t i = 0; i < m_; ++i) out(j, i) = (*this)(i, j);
    return out;
  }

  /// Identity matrix of order n.
  static Matrix identity(index_t n) {
    Matrix out(n, n);
    for (index_t i = 0; i < n; ++i) out(i, i) = T(1);
    return out;
  }

  /// Matrix with i.i.d. standard normal entries (deterministic from seed).
  static Matrix random_normal(index_t m, index_t n, std::uint64_t seed) {
    Matrix out(m, n);
    Prng rng(seed);
    for (auto& v : out.data_) v = T(rng.normal());
    return out;
  }

  /// Matrix with i.i.d. uniform(lo, hi) entries.
  static Matrix random_uniform(index_t m, index_t n, std::uint64_t seed,
                               T lo = T(0), T hi = T(1)) {
    Matrix out(m, n);
    Prng rng(seed);
    for (auto& v : out.data_) v = T(rng.uniform(double(lo), double(hi)));
    return out;
  }

 private:
  index_t m_ = 0;
  index_t n_ = 0;
  std::vector<T> data_;
};

/// Element-wise precision cast, e.g. convert<float>(d) demotes a double
/// matrix to float and convert<double>(f) promotes it back — the
/// demote/promote step of the mixed-precision factorization path.
template <typename To, typename From>
Matrix<To> convert(const Matrix<From>& a) {
  Matrix<To> out(a.rows(), a.cols());
  const From* src = a.data();
  To* dst = out.data();
  for (index_t k = 0; k < a.size(); ++k) dst[k] = To(src[k]);
  return out;
}

/// Frobenius norm.
template <typename T>
double norm_fro(const Matrix<T>& a) {
  double s = 0;
  const T* p = a.data();
  for (index_t k = 0; k < a.size(); ++k) s += double(p[k]) * double(p[k]);
  return std::sqrt(s);
}

/// Max-abs (Chebyshev) norm.
template <typename T>
double norm_max(const Matrix<T>& a) {
  double s = 0;
  const T* p = a.data();
  for (index_t k = 0; k < a.size(); ++k)
    s = std::max(s, std::abs(double(p[k])));
  return s;
}

/// Frobenius norm of (a - b); dimensions must match.
template <typename T>
double diff_fro(const Matrix<T>& a, const Matrix<T>& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double s = 0;
  const T* pa = a.data();
  const T* pb = b.data();
  for (index_t k = 0; k < a.size(); ++k) {
    const double d = double(pa[k]) - double(pb[k]);
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace gofmm::la
