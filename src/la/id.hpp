// Interpolative decomposition (ID) built on the rank-revealing pivoted QR.
//
// The ID is the low-rank primitive of GOFMM's skeletonization (paper Eq. 7):
//   A  ≈  A(:, skel) * P,   skel ⊂ {0..n-1}, |skel| = rank,
// where P is rank-by-n with P(:, skel) = I. Skeleton columns are the pivot
// columns of the QR; P's remaining columns solve R11 * Z = R12.
#pragma once

#include <vector>

#include "la/lapack.hpp"
#include "la/matrix.hpp"

namespace gofmm::la {

/// Result of an interpolative decomposition A ≈ A(:, skel) * P.
template <typename T>
struct Interpolative {
  std::vector<index_t> skel;  ///< Skeleton column indices (into 0..n-1).
  Matrix<T> p;                ///< rank-by-n interpolation coefficients.
  index_t rank = 0;           ///< |skel|.
  /// Estimated relative truncation error |R(rank,rank)| / |R(0,0)|;
  /// 0 when the factorization is exact at the chosen rank.
  double est_error = 0.0;
};

/// Computes an ID of `a` with adaptive rank: the rank is the smallest k such
/// that the pivoted-QR diagonal satisfies |R(k,k)| <= rel_tol * |R(0,0)|,
/// capped at max_rank (<=0 means uncapped). rel_tol <= 0 disables the
/// tolerance and forces rank = min(max_rank, min(m,n)) — the paper's
/// fixed-rank mode.
template <typename T>
Interpolative<T> interp_decomp(const Matrix<T>& a, T rel_tol,
                               index_t max_rank);

extern template Interpolative<float> interp_decomp<float>(
    const Matrix<float>&, float, index_t);
extern template Interpolative<double> interp_decomp<double>(
    const Matrix<double>&, double, index_t);

}  // namespace gofmm::la
