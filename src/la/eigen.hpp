// Dense symmetric eigensolvers (EISPACK TRED2 + TQL2 lineage).
//
// The spectral subsystem (src/spectral/) needs two small eigen kernels:
// the Rayleigh–Ritz step of Lanczos diagonalizes the projected tridiagonal
// T_m, stochastic Lanczos quadrature reads Gauss weights off T_m's
// eigenvectors, and every spectral test/bench cross-checks against a full
// dense decomposition. This environment ships no LAPACK, so both kernels
// are provided here: Householder tridiagonalization with accumulated
// transforms (TRED2) feeding an implicit-shift QL iteration (TQL2). All
// internal accumulation is double regardless of the input scalar — an
// O(n³) reference path, not a performance kernel.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace gofmm::la {

/// Eigendecomposition of a symmetric tridiagonal matrix by implicit-shift
/// QL (LAPACK STEQR semantics). `diag` (n entries) and `off` (n-1 entries,
/// off[i] couples rows i and i+1) define the matrix; on return `diag`
/// holds the eigenvalues in ascending order and `off` is destroyed. When
/// `z` is non-null it must hold an m-by-n matrix (any m); its columns are
/// rotated by the accumulated similarity, so passing identity(n) yields
/// the eigenvectors while passing a Lanczos basis V yields Ritz vectors
/// directly. Returns false if any eigenvalue fails to converge within
/// `max_sweeps` QL iterations (pathological; 30 suffices in practice).
bool steqr(std::vector<double>& diag, std::vector<double>& off,
           Matrix<double>* z = nullptr, int max_sweeps = 60);

/// Full eigendecomposition of a dense symmetric matrix: `w` receives the
/// eigenvalues ascending; when `z` is non-null it receives the n-by-n
/// orthonormal eigenvector matrix (column j pairs with w[j]). Only the
/// lower triangle of `a` is referenced (the matrix is assumed symmetric);
/// input scalars are widened to double before any arithmetic. Returns
/// false on QL non-convergence, true otherwise.
template <typename T>
bool syev(const Matrix<T>& a, std::vector<double>& w,
          Matrix<double>* z = nullptr);

extern template bool syev<float>(const Matrix<float>&, std::vector<double>&,
                                 Matrix<double>*);
extern template bool syev<double>(const Matrix<double>&, std::vector<double>&,
                                  Matrix<double>*);

}  // namespace gofmm::la
