// Discrete-sine-transform eigenbasis of the 1-D Dirichlet Laplacian.
//
// The 5-point (2-D) and 7-point (3-D) constant-coefficient Laplacians on a
// regular grid with Dirichlet boundaries diagonalise in the tensor-product
// sine basis. The matrix zoo uses this to assemble the paper's K02/K03
// (inverse-operator) matrices *exactly*, without ever forming or inverting
// the sparse operator.
#pragma once

#include <cmath>

#include "la/matrix.hpp"

namespace gofmm::la {

/// Orthonormal DST-I basis Q of order n: Q(i,k) = sqrt(2/(n+1)) *
/// sin(pi*(i+1)*(k+1)/(n+1)). Columns are the eigenvectors of the 1-D
/// Dirichlet Laplacian; Q is symmetric and orthogonal.
template <typename T>
Matrix<T> dst_basis(index_t n) {
  Matrix<T> q(n, n);
  const double c = std::sqrt(2.0 / double(n + 1));
  for (index_t k = 0; k < n; ++k)
    for (index_t i = 0; i < n; ++i)
      q(i, k) = T(c * std::sin(M_PI * double(i + 1) * double(k + 1) /
                               double(n + 1)));
  return q;
}

/// Eigenvalues of the 1-D Dirichlet Laplacian stencil [-1, 2, -1] (unit
/// spacing): lambda_k = 4 sin^2(pi (k+1) / (2(n+1))), k = 0..n-1.
inline double dst_eigenvalue(index_t k, index_t n) {
  const double s = std::sin(M_PI * double(k + 1) / (2.0 * double(n + 1)));
  return 4.0 * s * s;
}

}  // namespace gofmm::la
