// Blocked Householder QR kernels (LAPACK GEQRF/ORMQR subset).
//
// The orthogonal-ULV factorization engine (core/factorization.hpp) stores,
// per tree node, the orthogonal rotation Q that zeroes the node's
// parent-facing basis below its leading r rows. Because Qᵀ(A + λI)Q =
// QᵀAQ + λI, those rotations are λ-independent: they are computed ONCE at
// construction (geqrf of the telescoped basis) and every λ-retune merely
// re-factors small rotated diagonal blocks. Q is never materialised — it
// lives as Householder reflectors inside the factored basis and is applied
// by ormqr_left, exactly LAPACK's storage convention.
//
// Both kernels are blocked (compact-WY): panels of kQrBlock reflectors are
// accumulated into a triangular T factor so the trailing update runs as
// GEMMs instead of rank-1 sweeps — the same panel treatment la/blas.cpp
// gives TRSM and la/lapack.cpp gives POTRF/GETRF.
#pragma once

#include <vector>

#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace gofmm::la {

/// Householder QR factorization A = Q R of an m-by-n matrix with m >= n
/// (LAPACK GEQRF semantics). On exit the upper triangle of `a` holds R and
/// the columns below the diagonal hold the Householder vectors v_j
/// (implicit unit diagonal); `tau` receives the n reflector scalars, so
/// Q = H_0 H_1 ... H_{n-1} with H_j = I - tau_j v_j v_jᵀ. Blocked
/// (compact-WY) above kQrBlock columns; bitwise-deterministic for a given
/// shape.
template <typename T>
void geqrf(Matrix<T>& a, std::vector<T>& tau);

/// Applies Q (op == Op::None) or Qᵀ (op == Op::Trans) from a geqrf
/// factorization to the left of `c`: c ← op(Q) · c (LAPACK ORMQR, side L).
/// `a`/`tau` are the geqrf outputs; c must have a.rows() rows. Blocked
/// like geqrf; repeated applications are bitwise-deterministic.
template <typename T>
void ormqr_left(Op op, const Matrix<T>& a, const std::vector<T>& tau,
                Matrix<T>& c);

/// Copies the n-by-n upper-triangular R factor out of a geqrf result
/// (zeros below the diagonal, reflectors discarded).
template <typename T>
Matrix<T> qr_extract_r(const Matrix<T>& a);

/// Flops of one geqrf(m, n): ~2mn² − 2n³/3 (LAPACK operation count).
constexpr std::uint64_t geqrf_flops(index_t m, index_t n) {
  return 2ull * std::uint64_t(m) * std::uint64_t(n) * std::uint64_t(n) -
         2ull * std::uint64_t(n) * std::uint64_t(n) * std::uint64_t(n) / 3;
}

/// Flops of one ormqr_left over an m-by-k block with n reflectors: ~4mnk.
constexpr std::uint64_t ormqr_flops(index_t m, index_t n, index_t k) {
  return 4ull * std::uint64_t(m) * std::uint64_t(n) * std::uint64_t(k);
}

extern template void geqrf<float>(Matrix<float>&, std::vector<float>&);
extern template void geqrf<double>(Matrix<double>&, std::vector<double>&);
extern template void ormqr_left<float>(Op, const Matrix<float>&,
                                       const std::vector<float>&,
                                       Matrix<float>&);
extern template void ormqr_left<double>(Op, const Matrix<double>&,
                                        const std::vector<double>&,
                                        Matrix<double>&);
extern template Matrix<float> qr_extract_r<float>(const Matrix<float>&);
extern template Matrix<double> qr_extract_r<double>(const Matrix<double>&);

}  // namespace gofmm::la
