// Blocked Householder QR kernels (LAPACK GEQRF/GEQRT/ORMQR/GEMQRT subset).
//
// The orthogonal-ULV factorization engine (core/factorization.hpp) stores,
// per tree node, the orthogonal rotation Q that zeroes the node's
// parent-facing basis below its leading r rows. Because Qᵀ(A + λI)Q =
// QᵀAQ + λI, those rotations are λ-independent: they are computed ONCE at
// construction and every λ-retune merely re-factors small rotated diagonal
// blocks. Q is never materialised — it lives in LAPACK's geqrt form
// (`QrFactors`): the Householder vectors inside the factored basis plus the
// per-panel compact-WY T factors, built once at factorization time, so every
// application (gemqrt form of ormqr_left) runs pure GEMMs with ZERO larft
// rebuilds on the hot path.
//
// Both kernels are blocked (compact-WY): panels of kQrPanel reflectors are
// accumulated into a triangular T factor so the trailing update runs as
// GEMMs instead of rank-1 sweeps — the same panel treatment la/blas.cpp
// gives TRSM and la/lapack.cpp gives POTRF/GETRF.
#pragma once

#include <cstdint>
#include <vector>

#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace gofmm::la {

/// Reflector-panel width shared by geqrf, ormqr_left, and qr_factorize:
/// every kQrPanel consecutive reflectors share one compact-WY T factor.
inline constexpr index_t kQrPanel = 32;

/// Householder QR factorization A = Q R of an m-by-n matrix with m >= n
/// (LAPACK GEQRF semantics). On exit the upper triangle of `a` holds R and
/// the columns below the diagonal hold the Householder vectors v_j
/// (implicit unit diagonal); `tau` receives the n reflector scalars, so
/// Q = H_0 H_1 ... H_{n-1} with H_j = I - tau_j v_j v_jᵀ. Blocked
/// (compact-WY) above kQrPanel columns; bitwise-deterministic for a given
/// shape.
template <typename T>
void geqrf(Matrix<T>& a, std::vector<T>& tau);

/// A QR factorization in LAPACK's geqrt storage form: the geqrf output
/// (`vr`/`tau`) plus the per-panel compact-WY factors, materialised ONCE at
/// factorization time. `ormqr_left(op, qf, c)` consumes the cached panels,
/// so repeated applications — the ULV engine's eliminate/solve sweeps —
/// never rebuild T (larft) or re-materialise V. The cached ormqr overload
/// and the rebuild-per-call overload share one larfb kernel, so their
/// results are bitwise identical.
template <typename T>
struct QrFactors {
  /// geqrf output: R in the upper triangle, reflector vectors below.
  Matrix<T> vr;
  /// Reflector scalars tau_j (k entries, k = vr.cols()).
  std::vector<T> tau;
  /// Per-panel unit-lower-trapezoidal reflector blocks V (rows j0..m).
  std::vector<Matrix<T>> v;
  /// Per-panel upper-triangular compact-WY T factors (nb-by-nb).
  std::vector<Matrix<T>> t;
  /// Row count of the factored matrix (Q is m-by-m).
  index_t m = 0;
  /// Reflector count (column count of the factored matrix).
  index_t k = 0;

  /// True when no factorization is stored (default-constructed).
  [[nodiscard]] bool empty() const { return k == 0; }
  /// Total stored elements (vr + tau + cached V/T panels) — the engine's
  /// per-node memory accounting.
  [[nodiscard]] std::uint64_t size() const {
    std::uint64_t s = std::uint64_t(vr.size()) + tau.size();
    for (const auto& p : v) s += std::uint64_t(p.size());
    for (const auto& p : t) s += std::uint64_t(p.size());
    return s;
  }
};

/// Factors `a` (consumed; m >= n) and caches the per-panel V/T blocks:
/// geqrf + one larft per panel, done exactly once (LAPACK GEQRT).
template <typename T>
QrFactors<T> qr_factorize(Matrix<T> a);

/// Applies Q (op == Op::None) or Qᵀ (op == Op::Trans) from a geqrf
/// factorization to the left of `c`: c ← op(Q) · c (LAPACK ORMQR, side L).
/// `a`/`tau` are the geqrf outputs; c must have a.rows() rows. Rebuilds the
/// per-panel V/T blocks on every call — prefer the `QrFactors` overload on
/// hot paths. Repeated applications are bitwise-deterministic.
template <typename T>
void ormqr_left(Op op, const Matrix<T>& a, const std::vector<T>& tau,
                Matrix<T>& c);

/// Applies op(Q) · c from cached factors with ZERO larft calls (LAPACK
/// GEMQRT): each panel is three GEMMs against the stored V/T. Bitwise
/// identical to the rebuild-per-call overload (same larfb kernel, same
/// rounding order).
template <typename T>
void ormqr_left(Op op, const QrFactors<T>& qf, Matrix<T>& c);

/// Copies the n-by-n upper-triangular R factor out of a geqrf result
/// (zeros below the diagonal, reflectors discarded).
template <typename T>
Matrix<T> qr_extract_r(const Matrix<T>& a);

/// Convenience: extracts R from cached factors (reads qf.vr).
template <typename T>
Matrix<T> qr_extract_r(const QrFactors<T>& qf);

/// Number of larft (compact-WY T build) invocations since start/reset.
/// Tests and benches bracket hot paths with this to assert the cached
/// (geqrt/gemqrt) path never rebuilds T.
std::uint64_t larft_calls();

/// Resets the larft call counter to zero.
void larft_calls_reset();

/// Exact flops performed by compact-WY larfb block applications (both
/// ormqr overloads, plus geqrf's trailing updates) since start/reset —
/// reset it after factorizing to measure the apply cost the ormqr_flops
/// model must match.
std::uint64_t ormqr_measured_flops();

/// Resets the measured ormqr flop counter to zero.
void ormqr_measured_flops_reset();

/// Test/bench hook: when true, the QrFactors ormqr overload ignores the
/// cached V/T and rebuilds them per panel per call — the pre-cache (PR 5/6)
/// cost model. Output is bitwise identical either way; only larft_calls()
/// and time differ. Not thread-safe against concurrent appliers; flip it
/// only between sweeps.
void qr_set_force_rebuild(bool on);

/// Current state of the force-rebuild hook.
bool qr_force_rebuild();

/// Flops of one geqrf(m, n): ~2mn² − 2n³/3 (LAPACK operation count),
/// excluding the compact-WY T builds (see geqrt_flops).
constexpr std::uint64_t geqrf_flops(index_t m, index_t n) {
  return 2ull * std::uint64_t(m) * std::uint64_t(n) * std::uint64_t(n) -
         2ull * std::uint64_t(n) * std::uint64_t(n) * std::uint64_t(n) / 3;
}

/// Flops of the one-time per-panel larft builds of qr_factorize(m, n):
/// each panel's T costs ~m·nb per column pair, ~m·n·kQrPanel in total.
constexpr std::uint64_t larft_flops(index_t m, index_t n) {
  return std::uint64_t(m) * std::uint64_t(n) * std::uint64_t(kQrPanel);
}

/// Flops of one qr_factorize(m, n): geqrf plus the one-time T builds.
constexpr std::uint64_t geqrt_flops(index_t m, index_t n) {
  return geqrf_flops(m, n) + larft_flops(m, n);
}

/// Flops of one cached ormqr_left over an m-by-k factorization applied to
/// `ncols` columns. EXACT for the larfb panel schedule (each panel of nb
/// reflectors over `rows` trailing rows costs 4·rows·nb·ncols GEMM flops
/// plus 2·nb²·ncols for the T multiply), so it equals
/// ormqr_measured_flops() by construction — the model the cached-T path
/// actually pays, with no larft rebuild term (that cost moved into
/// geqrt_flops, paid once).
constexpr std::uint64_t ormqr_flops(index_t m, index_t k, index_t ncols) {
  std::uint64_t total = 0;
  for (index_t j0 = 0; j0 < k; j0 += kQrPanel) {
    const index_t nb = (k - j0) < kQrPanel ? (k - j0) : kQrPanel;
    const std::uint64_t rows = std::uint64_t(m - j0);
    total += 4ull * rows * std::uint64_t(nb) * std::uint64_t(ncols) +
             2ull * std::uint64_t(nb) * std::uint64_t(nb) *
                 std::uint64_t(ncols);
  }
  return total;
}

extern template void geqrf<float>(Matrix<float>&, std::vector<float>&);
extern template void geqrf<double>(Matrix<double>&, std::vector<double>&);
extern template QrFactors<float> qr_factorize<float>(Matrix<float>);
extern template QrFactors<double> qr_factorize<double>(Matrix<double>);
extern template void ormqr_left<float>(Op, const Matrix<float>&,
                                       const std::vector<float>&,
                                       Matrix<float>&);
extern template void ormqr_left<double>(Op, const Matrix<double>&,
                                        const std::vector<double>&,
                                        Matrix<double>&);
extern template void ormqr_left<float>(Op, const QrFactors<float>&,
                                       Matrix<float>&);
extern template void ormqr_left<double>(Op, const QrFactors<double>&,
                                        Matrix<double>&);
extern template Matrix<float> qr_extract_r<float>(const Matrix<float>&);
extern template Matrix<double> qr_extract_r<double>(const Matrix<double>&);
extern template Matrix<float> qr_extract_r<float>(const QrFactors<float>&);
extern template Matrix<double> qr_extract_r<double>(const QrFactors<double>&);

}  // namespace gofmm::la
