// Symmetric eigensolvers: Householder tridiagonalization (TRED2) and
// implicit-shift QL iteration (TQL2/STEQR), double accumulation throughout.
#include "la/eigen.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "core/error.hpp"

namespace gofmm::la {

namespace {

// Householder reduction of the symmetric matrix in `a` to tridiagonal form
// (EISPACK TRED2, 0-based). On exit `d` holds the diagonal, `e` the
// subdiagonal in the e[i]-couples-(i-1,i) convention (e[0] = 0), and `a`
// the accumulated orthogonal transform Q with A = Q T Qᵀ.
void tred2(Matrix<double>& a, std::vector<double>& d, std::vector<double>& e) {
  const index_t n = a.rows();
  d.assign(std::size_t(n), 0.0);
  e.assign(std::size_t(n), 0.0);
  for (index_t i = n - 1; i >= 1; --i) {
    const index_t l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (index_t k = 0; k <= l; ++k) scale += std::abs(a(i, k));
      if (scale == 0.0) {
        e[std::size_t(i)] = a(i, l);
      } else {
        for (index_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[std::size_t(i)] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (index_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (index_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (index_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[std::size_t(j)] = g / h;
          f += e[std::size_t(j)] * a(i, j);
        }
        const double hh = f / (h + h);
        for (index_t j = 0; j <= l; ++j) {
          f = a(i, j);
          g = e[std::size_t(j)] - hh * f;
          e[std::size_t(j)] = g;
          for (index_t k = 0; k <= j; ++k)
            a(j, k) -= f * e[std::size_t(k)] + g * a(i, k);
        }
      }
    } else {
      e[std::size_t(i)] = a(i, l);
    }
    d[std::size_t(i)] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the stored Householder reflectors into Q (in place).
  for (index_t i = 0; i < n; ++i) {
    if (d[std::size_t(i)] != 0.0) {
      for (index_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (index_t k = 0; k < i; ++k) g += a(i, k) * a(k, j);
        for (index_t k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[std::size_t(i)] = a(i, i);
    a(i, i) = 1.0;
    for (index_t j = 0; j < i; ++j) a(j, i) = a(i, j) = 0.0;
  }
}

// Implicit-shift QL on a tridiagonal (d, e) with e[i] coupling rows i and
// i+1 (e[n-1] unused); rotates the columns of `z` when non-null. Returns
// false on non-convergence.
bool tql2(std::vector<double>& d, std::vector<double>& e, Matrix<double>* z,
          int max_sweeps) {
  const index_t n = index_t(d.size());
  if (n > 0) e[std::size_t(n - 1)] = 0.0;
  for (index_t l = 0; l < n; ++l) {
    int iter = 0;
    index_t m;
    do {
      // Split point: first negligible off-diagonal at or after l.
      for (m = l; m < n - 1; ++m) {
        const double dd =
            std::abs(d[std::size_t(m)]) + std::abs(d[std::size_t(m + 1)]);
        if (std::abs(e[std::size_t(m)]) <=
            std::numeric_limits<double>::epsilon() * dd)
          break;
      }
      if (m != l) {
        if (iter++ == max_sweeps) return false;
        // Wilkinson-style shift from the leading 2×2, then one implicit
        // QL sweep of Givens rotations chased from m down to l.
        double g =
            (d[std::size_t(l + 1)] - d[std::size_t(l)]) /
            (2.0 * e[std::size_t(l)]);
        double r = std::hypot(g, 1.0);
        g = d[std::size_t(m)] - d[std::size_t(l)] +
            e[std::size_t(l)] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        index_t i;
        for (i = m - 1; i >= l; --i) {
          double f = s * e[std::size_t(i)];
          const double b = c * e[std::size_t(i)];
          r = std::hypot(f, g);
          e[std::size_t(i + 1)] = r;
          if (r == 0.0) {  // deflate: recover and restart this eigenvalue
            d[std::size_t(i + 1)] -= p;
            e[std::size_t(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[std::size_t(i + 1)] - p;
          r = (d[std::size_t(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[std::size_t(i + 1)] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            for (index_t k = 0; k < z->rows(); ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[std::size_t(l)] -= p;
        e[std::size_t(l)] = g;
        e[std::size_t(m)] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

// Ascending selection sort of eigenvalues, permuting z's columns along.
void sort_ascending(std::vector<double>& d, Matrix<double>* z) {
  const index_t n = index_t(d.size());
  for (index_t i = 0; i + 1 < n; ++i) {
    index_t k = i;
    for (index_t j = i + 1; j < n; ++j)
      if (d[std::size_t(j)] < d[std::size_t(k)]) k = j;
    if (k != i) {
      std::swap(d[std::size_t(i)], d[std::size_t(k)]);
      if (z != nullptr)
        for (index_t r = 0; r < z->rows(); ++r)
          std::swap((*z)(r, i), (*z)(r, k));
    }
  }
}

}  // namespace

bool steqr(std::vector<double>& diag, std::vector<double>& off,
           Matrix<double>* z, int max_sweeps) {
  const index_t n = index_t(diag.size());
  check<DimensionError>(n == 0 || index_t(off.size()) >= n - 1,
                        "steqr: off-diagonal must have n-1 entries");
  check<DimensionError>(z == nullptr || z->cols() == n,
                        "steqr: z must have one column per eigenvalue");
  if (n == 0) return true;
  std::vector<double> e(std::size_t(n), 0.0);
  for (index_t i = 0; i + 1 < n; ++i) e[std::size_t(i)] = off[std::size_t(i)];
  if (!tql2(diag, e, z, max_sweeps)) return false;
  sort_ascending(diag, z);
  return true;
}

template <typename T>
bool syev(const Matrix<T>& a, std::vector<double>& w, Matrix<double>* z) {
  const index_t n = a.rows();
  check<DimensionError>(a.cols() == n, "syev: matrix must be square");
  check<DimensionError>(z == nullptr || (z->rows() == n && z->cols() == n),
                        "syev: z must be n-by-n");
  w.assign(std::size_t(n), 0.0);
  if (n == 0) return true;
  // Symmetrize from the lower triangle into a double working copy that
  // tred2 overwrites with the accumulated transform.
  Matrix<double> q(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) {
      const double v = double(a(i, j));
      q(i, j) = v;
      q(j, i) = v;
    }
  std::vector<double> e;
  tred2(q, w, e);
  // Re-index the subdiagonal into the e[i]-couples-(i,i+1) convention.
  for (index_t i = 0; i + 1 < n; ++i) e[std::size_t(i)] = e[std::size_t(i + 1)];
  e[std::size_t(n - 1)] = 0.0;
  if (!tql2(w, e, &q, 60)) return false;
  sort_ascending(w, &q);
  if (z != nullptr) *z = std::move(q);
  return true;
}

template bool syev<float>(const Matrix<float>&, std::vector<double>&,
                          Matrix<double>*);
template bool syev<double>(const Matrix<double>&, std::vector<double>&,
                           Matrix<double>*);

}  // namespace gofmm::la
