#include "la/blas.hpp"

#include <omp.h>

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) && defined(__GNUC__)
#define GOFMM_X86_DISPATCH 1
#include <immintrin.h>
#else
#define GOFMM_X86_DISPATCH 0
#endif

namespace gofmm::la {

namespace {

// Cache-blocking parameters. KB*MB elements of A must fit comfortably in L2
// (240*256*8B = 480KB at double; halve effectively at float). Tuned for the
// generic x86-64 target of this repo; correctness never depends on them.
constexpr index_t kMB = 256;  // rows of A per block
constexpr index_t kKB = 240;  // depth per block
constexpr index_t kNB = 64;   // columns of C per parallel panel

// C(i0:i0+mb, :) += A(i0:i0+mb, k0:k0+kb) * B(k0:k0+kb, jcols) for a panel of
// columns. Inner loops are structured as 4-column rank-1 updates so each
// loaded column of A feeds 8 flops; the i-loop auto-vectorises. This is the
// portable reference kernel of the runtime dispatch below; the AVX2 kernel
// performs the identical per-element operation sequence, so dispatch never
// changes bits.
template <typename T>
void gemm_block_scalar(index_t mb, index_t kb, index_t nb, const T* a,
                       index_t lda, const T* b, index_t ldb, T* c,
                       index_t ldc) {
  index_t j = 0;
  for (; j + 4 <= nb; j += 4) {
    T* c0 = c + (j + 0) * ldc;
    T* c1 = c + (j + 1) * ldc;
    T* c2 = c + (j + 2) * ldc;
    T* c3 = c + (j + 3) * ldc;
    for (index_t k = 0; k < kb; ++k) {
      const T* ak = a + k * lda;
      const T b0 = b[k + (j + 0) * ldb];
      const T b1 = b[k + (j + 1) * ldb];
      const T b2 = b[k + (j + 2) * ldb];
      const T b3 = b[k + (j + 3) * ldb];
      for (index_t i = 0; i < mb; ++i) {
        const T av = ak[i];
        c0[i] += av * b0;
        c1[i] += av * b1;
        c2[i] += av * b2;
        c3[i] += av * b3;
      }
    }
  }
  for (; j < nb; ++j) {
    T* cj = c + j * ldc;
    for (index_t k = 0; k < kb; ++k) {
      const T* ak = a + k * lda;
      const T bv = b[k + j * ldb];
      for (index_t i = 0; i < mb; ++i) cj[i] += ak[i] * bv;
    }
  }
}

#if GOFMM_X86_DISPATCH

// Hand-vectorised AVX2 twins of gemm_block_scalar. Deliberately explicit
// mul + add intrinsics (NOT vfmadd): the baseline x86-64 scalar kernel
// cannot fuse, so fusing here would make dispatch results differ in the
// last bit. Unaligned loads throughout — lda/ldc are caller column strides
// with no alignment guarantee — and scalar tails for mb % width, which is
// exactly where misaligned-access defects would hide (covered by the
// ASan/UBSan test presets).
__attribute__((target("avx2"))) void gemm_block_avx2(
    index_t mb, index_t kb, index_t nb, const double* a, index_t lda,
    const double* b, index_t ldb, double* c, index_t ldc) {
  index_t j = 0;
  for (; j + 4 <= nb; j += 4) {
    double* c0 = c + (j + 0) * ldc;
    double* c1 = c + (j + 1) * ldc;
    double* c2 = c + (j + 2) * ldc;
    double* c3 = c + (j + 3) * ldc;
    for (index_t k = 0; k < kb; ++k) {
      const double* ak = a + k * lda;
      const __m256d b0 = _mm256_set1_pd(b[k + (j + 0) * ldb]);
      const __m256d b1 = _mm256_set1_pd(b[k + (j + 1) * ldb]);
      const __m256d b2 = _mm256_set1_pd(b[k + (j + 2) * ldb]);
      const __m256d b3 = _mm256_set1_pd(b[k + (j + 3) * ldb]);
      index_t i = 0;
      for (; i + 4 <= mb; i += 4) {
        const __m256d av = _mm256_loadu_pd(ak + i);
        _mm256_storeu_pd(c0 + i, _mm256_add_pd(_mm256_loadu_pd(c0 + i),
                                               _mm256_mul_pd(av, b0)));
        _mm256_storeu_pd(c1 + i, _mm256_add_pd(_mm256_loadu_pd(c1 + i),
                                               _mm256_mul_pd(av, b1)));
        _mm256_storeu_pd(c2 + i, _mm256_add_pd(_mm256_loadu_pd(c2 + i),
                                               _mm256_mul_pd(av, b2)));
        _mm256_storeu_pd(c3 + i, _mm256_add_pd(_mm256_loadu_pd(c3 + i),
                                               _mm256_mul_pd(av, b3)));
      }
      for (; i < mb; ++i) {
        const double av = ak[i];
        c0[i] += av * b[k + (j + 0) * ldb];
        c1[i] += av * b[k + (j + 1) * ldb];
        c2[i] += av * b[k + (j + 2) * ldb];
        c3[i] += av * b[k + (j + 3) * ldb];
      }
    }
  }
  for (; j < nb; ++j) {
    double* cj = c + j * ldc;
    for (index_t k = 0; k < kb; ++k) {
      const double* ak = a + k * lda;
      const double bv = b[k + j * ldb];
      const __m256d bvv = _mm256_set1_pd(bv);
      index_t i = 0;
      for (; i + 4 <= mb; i += 4)
        _mm256_storeu_pd(cj + i, _mm256_add_pd(_mm256_loadu_pd(cj + i),
                                               _mm256_mul_pd(
                                                   _mm256_loadu_pd(ak + i),
                                                   bvv)));
      for (; i < mb; ++i) cj[i] += ak[i] * bv;
    }
  }
}

__attribute__((target("avx2"))) void gemm_block_avx2(
    index_t mb, index_t kb, index_t nb, const float* a, index_t lda,
    const float* b, index_t ldb, float* c, index_t ldc) {
  index_t j = 0;
  for (; j + 4 <= nb; j += 4) {
    float* c0 = c + (j + 0) * ldc;
    float* c1 = c + (j + 1) * ldc;
    float* c2 = c + (j + 2) * ldc;
    float* c3 = c + (j + 3) * ldc;
    for (index_t k = 0; k < kb; ++k) {
      const float* ak = a + k * lda;
      const __m256 b0 = _mm256_set1_ps(b[k + (j + 0) * ldb]);
      const __m256 b1 = _mm256_set1_ps(b[k + (j + 1) * ldb]);
      const __m256 b2 = _mm256_set1_ps(b[k + (j + 2) * ldb]);
      const __m256 b3 = _mm256_set1_ps(b[k + (j + 3) * ldb]);
      index_t i = 0;
      for (; i + 8 <= mb; i += 8) {
        const __m256 av = _mm256_loadu_ps(ak + i);
        _mm256_storeu_ps(c0 + i, _mm256_add_ps(_mm256_loadu_ps(c0 + i),
                                               _mm256_mul_ps(av, b0)));
        _mm256_storeu_ps(c1 + i, _mm256_add_ps(_mm256_loadu_ps(c1 + i),
                                               _mm256_mul_ps(av, b1)));
        _mm256_storeu_ps(c2 + i, _mm256_add_ps(_mm256_loadu_ps(c2 + i),
                                               _mm256_mul_ps(av, b2)));
        _mm256_storeu_ps(c3 + i, _mm256_add_ps(_mm256_loadu_ps(c3 + i),
                                               _mm256_mul_ps(av, b3)));
      }
      for (; i < mb; ++i) {
        const float av = ak[i];
        c0[i] += av * b[k + (j + 0) * ldb];
        c1[i] += av * b[k + (j + 1) * ldb];
        c2[i] += av * b[k + (j + 2) * ldb];
        c3[i] += av * b[k + (j + 3) * ldb];
      }
    }
  }
  for (; j < nb; ++j) {
    float* cj = c + j * ldc;
    for (index_t k = 0; k < kb; ++k) {
      const float* ak = a + k * lda;
      const float bv = b[k + j * ldb];
      const __m256 bvv = _mm256_set1_ps(bv);
      index_t i = 0;
      for (; i + 8 <= mb; i += 8)
        _mm256_storeu_ps(cj + i, _mm256_add_ps(_mm256_loadu_ps(cj + i),
                                               _mm256_mul_ps(
                                                   _mm256_loadu_ps(ak + i),
                                                   bvv)));
      for (; i < mb; ++i) cj[i] += ak[i] * bv;
    }
  }
}

#endif  // GOFMM_X86_DISPATCH

// One dispatch point: cached per-type function pointers, initialised on
// first use and re-evaluated by gemm_kernel_refresh(). GOFMM_FORCE_SCALAR
// (any non-empty value except "0") pins the portable kernel — the
// escape hatch for feature-detection bugs in the field.
template <typename T>
using GemmBlockFn = void (*)(index_t, index_t, index_t, const T*, index_t,
                             const T*, index_t, T*, index_t);

template <typename T>
struct GemmDispatch {
  static inline std::atomic<GemmBlockFn<T>> fn{nullptr};
};
std::atomic<const char*> g_kernel_name{nullptr};

bool want_avx2() {
  const char* force = std::getenv("GOFMM_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0'))
    return false;
#if GOFMM_X86_DISPATCH
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void dispatch_kernels() {
  const bool avx2 = want_avx2();
#if GOFMM_X86_DISPATCH
  if (avx2) {
    GemmDispatch<double>::fn.store(
        static_cast<GemmBlockFn<double>>(&gemm_block_avx2),
        std::memory_order_relaxed);
    GemmDispatch<float>::fn.store(
        static_cast<GemmBlockFn<float>>(&gemm_block_avx2),
        std::memory_order_relaxed);
    g_kernel_name.store("avx2", std::memory_order_release);
    return;
  }
#endif
  (void)avx2;
  GemmDispatch<double>::fn.store(&gemm_block_scalar<double>,
                                 std::memory_order_relaxed);
  GemmDispatch<float>::fn.store(&gemm_block_scalar<float>,
                                std::memory_order_relaxed);
  g_kernel_name.store("scalar", std::memory_order_release);
}

template <typename T>
inline void gemm_block(index_t mb, index_t kb, index_t nb, const T* a,
                       index_t lda, const T* b, index_t ldb, T* c,
                       index_t ldc) {
  GemmBlockFn<T> fn = GemmDispatch<T>::fn.load(std::memory_order_relaxed);
  if (fn == nullptr) {
    dispatch_kernels();
    fn = GemmDispatch<T>::fn.load(std::memory_order_relaxed);
  }
  fn(mb, kb, nb, a, lda, b, ldb, c, ldc);
}

// C = alpha*A*B + beta*C with no transposes; A is m-by-kk, B kk-by-n.
template <typename T>
void gemm_nn(T alpha, const Matrix<T>& a, const Matrix<T>& b, T beta,
             Matrix<T>& c) {
  const index_t m = a.rows(), kk = a.cols(), n = b.cols();
  // Scale C by beta first (single pass).
  if (beta != T(1)) {
    T* pc = c.data();
    if (beta == T(0))
      std::fill(pc, pc + c.size(), T(0));
    else
      for (index_t t = 0; t < c.size(); ++t) pc[t] *= beta;
  }
  if (alpha == T(0) || m == 0 || n == 0 || kk == 0) return;

  // When alpha != 1 we scale a temporary copy of B's panel values inline by
  // folding alpha into B access; cheaper: scale B once into a copy only if
  // alpha != 1 (rare in this codebase).
  const Matrix<T>* bp = &b;
  Matrix<T> bscaled;
  if (alpha != T(1)) {
    bscaled = b;
    T* p = bscaled.data();
    for (index_t t = 0; t < bscaled.size(); ++t) p[t] *= alpha;
    bp = &bscaled;
  }

  // Gate the OpenMP team on problem size: narrow-rhs solve sweeps issue
  // thousands of tiny GEMMs (n is 1, m*kk a few thousand) where forking a
  // team costs more than the multiply. The serial and parallel paths run
  // the identical per-column work, so the gate never changes bits.
#pragma omp parallel for schedule(dynamic, 1) \
    if (n > kNB || m * kk * n > index_t(1) << 16)
  for (index_t j0 = 0; j0 < n; j0 += kNB) {
    const index_t nb = std::min(kNB, n - j0);
    for (index_t k0 = 0; k0 < kk; k0 += kKB) {
      const index_t kb = std::min(kKB, kk - k0);
      for (index_t i0 = 0; i0 < m; i0 += kMB) {
        const index_t mb = std::min(kMB, m - i0);
        gemm_block(mb, kb, nb, a.col(k0) + i0, a.rows(), bp->col(j0) + k0,
                   bp->rows(), c.col(j0) + i0, c.rows());
      }
    }
  }
}

}  // namespace

const char* gemm_kernel_name() {
  const char* name = g_kernel_name.load(std::memory_order_acquire);
  if (name == nullptr) {
    dispatch_kernels();
    name = g_kernel_name.load(std::memory_order_acquire);
  }
  return name;
}

void gemm_kernel_refresh() { dispatch_kernels(); }

template <typename T>
void gemm(Op opa, Op opb, T alpha, const Matrix<T>& a, const Matrix<T>& b,
          T beta, Matrix<T>& c) {
  const index_t m = (opa == Op::None) ? a.rows() : a.cols();
  const index_t ka = (opa == Op::None) ? a.cols() : a.rows();
  const index_t kb = (opb == Op::None) ? b.rows() : b.cols();
  const index_t n = (opb == Op::None) ? b.cols() : b.rows();
  require(ka == kb, "gemm: inner dimensions disagree");
  require(c.rows() == m && c.cols() == n, "gemm: C has wrong shape");

  // Normalise to the NN case. The transpose copies cost O(mn) against the
  // O(mnk) multiply, and keep a single highly-tuned kernel.
  if (opa == Op::None && opb == Op::None) {
    gemm_nn(alpha, a, b, beta, c);
  } else if (opa == Op::Trans && opb == Op::None) {
    gemm_nn(alpha, a.transposed(), b, beta, c);
  } else if (opa == Op::None && opb == Op::Trans) {
    gemm_nn(alpha, a, b.transposed(), beta, c);
  } else {
    gemm_nn(alpha, a.transposed(), b.transposed(), beta, c);
  }
}

template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b) {
  Matrix<T> c(a.rows(), b.cols());
  gemm(Op::None, Op::None, T(1), a, b, T(0), c);
  return c;
}

template <typename T>
void gemv(Op opa, T alpha, const Matrix<T>& a, const T* x, T beta, T* y) {
  const index_t m = a.rows(), n = a.cols();
  if (opa == Op::None) {
    for (index_t i = 0; i < m; ++i) y[i] *= beta;
    for (index_t j = 0; j < n; ++j) {
      const T xv = alpha * x[j];
      const T* aj = a.col(j);
      for (index_t i = 0; i < m; ++i) y[i] += aj[i] * xv;
    }
  } else {
    for (index_t j = 0; j < n; ++j) {
      const T* aj = a.col(j);
      T s = 0;
      for (index_t i = 0; i < m; ++i) s += aj[i] * x[i];
      y[j] = beta * y[j] + alpha * s;
    }
  }
}

namespace {

/// Unblocked triangular solve on the [i0, i0+nb) diagonal block of op(A),
/// applied to the same row range of B. Indices are global; only entries of
/// the block are referenced.
template <typename T>
void trsm_diag_block(bool solve_upper, Op opa, bool unit_diag,
                     const Matrix<T>& a, Matrix<T>& b, index_t i0,
                     index_t nb) {
#pragma omp parallel for schedule(static) if (b.cols() > 8)
  for (index_t j = 0; j < b.cols(); ++j) {
    T* x = b.col(j);
    if (solve_upper) {
      for (index_t i = i0 + nb - 1; i >= i0; --i) {
        T s = x[i];
        if (opa == Op::None) {
          for (index_t k = i + 1; k < i0 + nb; ++k) s -= a(i, k) * x[k];
        } else {  // A^T upper-effective means A lower stored
          for (index_t k = i + 1; k < i0 + nb; ++k) s -= a(k, i) * x[k];
        }
        if (!unit_diag) s /= a(i, i);
        x[i] = s;
      }
    } else {
      for (index_t i = i0; i < i0 + nb; ++i) {
        T s = x[i];
        if (opa == Op::None) {
          for (index_t k = i0; k < i; ++k) s -= a(i, k) * x[k];
        } else {  // transposed upper matrix acts lower
          for (index_t k = i0; k < i; ++k) s -= a(k, i) * x[k];
        }
        if (!unit_diag) s /= a(i, i);
        x[i] = s;
      }
    }
  }
}

}  // namespace

template <typename T>
void trsm(bool upper, Op opa, bool unit_diag, T alpha, const Matrix<T>& a,
          Matrix<T>& b) {
  const index_t n = a.rows();
  require(a.rows() == a.cols(), "trsm: A must be square");
  require(b.rows() == n, "trsm: B row count must match A");
  if (alpha != T(1)) {
    T* p = b.data();
    for (index_t t = 0; t < b.size(); ++t) p[t] *= alpha;
  }

  // Effective triangle after transposition: solving U^T X = B is a
  // lower-triangular solve with the transposed access pattern.
  const bool solve_upper = (opa == Op::None) ? upper : !upper;

  // Right-looking blocked solve: scalar-solve an nb-wide diagonal block,
  // then downdate every remaining row with ONE GEMM — the O(n² rhs) bulk
  // runs at matrix-multiply speed with cache-friendly access instead of
  // the strided row walks of the scalar loop. Small systems stay on the
  // unblocked path (the copies would not amortise).
  constexpr index_t kBlock = 64;
  if (n <= kBlock + kBlock / 2) {
    trsm_diag_block(solve_upper, opa, unit_diag, a, b, 0, n);
    return;
  }
  const index_t rhs = b.cols();
  if (solve_upper) {
    for (index_t k0 = ((n - 1) / kBlock) * kBlock; k0 >= 0; k0 -= kBlock) {
      const index_t nb = std::min(kBlock, n - k0);
      trsm_diag_block(solve_upper, opa, unit_diag, a, b, k0, nb);
      if (k0 == 0) break;
      // Rows [0, k0) -= U(0:k0, blk) * X(blk).
      const Matrix<T> xblk = b.block(k0, 0, nb, rhs);
      Matrix<T> xrest = b.block(0, 0, k0, rhs);
      if (opa == Op::None) {
        const Matrix<T> panel = a.block(0, k0, k0, nb);
        gemm(Op::None, Op::None, T(-1), panel, xblk, T(1), xrest);
      } else {
        const Matrix<T> panel = a.block(k0, 0, nb, k0);
        gemm(Op::Trans, Op::None, T(-1), panel, xblk, T(1), xrest);
      }
      for (index_t j = 0; j < rhs; ++j)
        std::copy_n(xrest.col(j), k0, b.col(j));
    }
  } else {
    for (index_t k0 = 0; k0 < n; k0 += kBlock) {
      const index_t nb = std::min(kBlock, n - k0);
      trsm_diag_block(solve_upper, opa, unit_diag, a, b, k0, nb);
      const index_t rest = n - (k0 + nb);
      if (rest == 0) break;
      // Rows [k0+nb, n) -= L(rest, blk) * X(blk).
      const Matrix<T> xblk = b.block(k0, 0, nb, rhs);
      Matrix<T> xrest = b.block(k0 + nb, 0, rest, rhs);
      if (opa == Op::None) {
        const Matrix<T> panel = a.block(k0 + nb, k0, rest, nb);
        gemm(Op::None, Op::None, T(-1), panel, xblk, T(1), xrest);
      } else {
        const Matrix<T> panel = a.block(k0, k0 + nb, nb, rest);
        gemm(Op::Trans, Op::None, T(-1), panel, xblk, T(1), xrest);
      }
      for (index_t j = 0; j < rhs; ++j)
        std::copy_n(xrest.col(j), rest, b.col(j) + k0 + nb);
    }
  }
}

template <typename T>
void gemm_panel(index_t m, index_t n, index_t k, T alpha, const T* a,
                index_t lda, const T* b, index_t ldb, T* c, index_t ldc) {
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;
  // Fold alpha into a scaled copy of B (the panel operand is k-by-n with
  // k = one block, so the copy is O(kn) against the O(mnk) multiply).
  std::vector<T> bscaled;
  const T* bp = b;
  index_t ldb_eff = ldb;
  if (alpha != T(1)) {
    bscaled.resize(std::size_t(k) * std::size_t(n));
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < k; ++i)
        bscaled[std::size_t(i) + std::size_t(j) * std::size_t(k)] =
            alpha * b[i + j * ldb];
    bp = bscaled.data();
    ldb_eff = k;
  }
#pragma omp parallel for schedule(dynamic, 1) if (n > kNB)
  for (index_t j0 = 0; j0 < n; j0 += kNB) {
    const index_t nb = std::min(kNB, n - j0);
    for (index_t k0 = 0; k0 < k; k0 += kKB) {
      const index_t kb = std::min(kKB, k - k0);
      for (index_t i0 = 0; i0 < m; i0 += kMB) {
        const index_t mb = std::min(kMB, m - i0);
        gemm_block(mb, kb, nb, a + i0 + k0 * lda, lda,
                   bp + k0 + j0 * ldb_eff, ldb_eff, c + i0 + j0 * ldc, ldc);
      }
    }
  }
}

template <typename T>
void syrk_lower(T alpha, const Matrix<T>& a, T beta, Matrix<T>& c) {
  const index_t n = a.rows(), k = a.cols();
  require(c.rows() == n && c.cols() == n, "syrk: C must be n-by-n");
#pragma omp parallel for schedule(dynamic, 8)
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      double s = 0;
      for (index_t t = 0; t < k; ++t)
        s += double(a(i, t)) * double(a(j, t));
      c(i, j) = T(alpha * T(s) + beta * c(i, j));
    }
  }
}

template <typename T>
double nrm2(index_t n, const T* x) {
  double s = 0;
  for (index_t i = 0; i < n; ++i) s += double(x[i]) * double(x[i]);
  return std::sqrt(s);
}

template <typename T>
double dot(index_t n, const T* x, const T* y) {
  double s = 0;
  for (index_t i = 0; i < n; ++i) s += double(x[i]) * double(y[i]);
  return s;
}

template <typename T>
void axpy(index_t n, T alpha, const T* x, T* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template void gemm<float>(Op, Op, float, const Matrix<float>&,
                          const Matrix<float>&, float, Matrix<float>&);
template void gemm<double>(Op, Op, double, const Matrix<double>&,
                           const Matrix<double>&, double, Matrix<double>&);
template Matrix<float> matmul<float>(const Matrix<float>&,
                                     const Matrix<float>&);
template Matrix<double> matmul<double>(const Matrix<double>&,
                                       const Matrix<double>&);
template void gemv<float>(Op, float, const Matrix<float>&, const float*, float,
                          float*);
template void gemv<double>(Op, double, const Matrix<double>&, const double*,
                           double, double*);
template void trsm<float>(bool, Op, bool, float, const Matrix<float>&,
                          Matrix<float>&);
template void trsm<double>(bool, Op, bool, double, const Matrix<double>&,
                           Matrix<double>&);
template void gemm_panel<float>(index_t, index_t, index_t, float, const float*,
                                index_t, const float*, index_t, float*,
                                index_t);
template void gemm_panel<double>(index_t, index_t, index_t, double,
                                 const double*, index_t, const double*,
                                 index_t, double*, index_t);
template void syrk_lower<float>(float, const Matrix<float>&, float,
                                Matrix<float>&);
template void syrk_lower<double>(double, const Matrix<double>&, double,
                                 Matrix<double>&);
template double nrm2<float>(index_t, const float*);
template double nrm2<double>(index_t, const double*);
template double dot<float>(index_t, const float*, const float*);
template double dot<double>(index_t, const double*, const double*);
template void axpy<float>(index_t, float, const float*, float*);
template void axpy<double>(index_t, double, const double*, double*);

}  // namespace gofmm::la
