#include "la/lapack.hpp"

#include <cmath>
#include <limits>

namespace gofmm::la {

namespace {

/// Left-looking scalar Cholesky of the diagonal block [k0, k0+nb), reading
/// only columns >= k0 (earlier columns' contributions were already folded
/// in by the right-looking panel updates). Also updates the panel rows
/// below the block (rows [k0+nb, n) of the same columns).
template <typename T>
bool potrf_diag_panel(Matrix<T>& a, index_t k0, index_t nb) {
  const index_t n = a.rows();
  for (index_t k = k0; k < k0 + nb; ++k) {
    double d = double(a(k, k));
    for (index_t t = k0; t < k; ++t) d -= double(a(k, t)) * double(a(k, t));
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const T lkk = T(std::sqrt(d));
    a(k, k) = lkk;
    const T inv = T(1) / lkk;
#pragma omp parallel for schedule(static) if (n - k > 256)
    for (index_t i = k + 1; i < n; ++i) {
      double s = double(a(i, k));
      for (index_t t = k0; t < k; ++t) s -= double(a(i, t)) * double(a(k, t));
      a(i, k) = T(s) * inv;
    }
  }
  return true;
}

}  // namespace

template <typename T>
bool potrf_lower(Matrix<T>& a) {
  const index_t n = a.rows();
  require(a.rows() == a.cols(), "potrf: matrix must be square");
  // Right-looking blocked factorization: factor an nb-wide panel with the
  // scalar kernel, then downdate the trailing lower triangle with ONE
  // in-place panel GEMM per column stripe — the O(n³) bulk runs at
  // matrix-multiply speed instead of the strided scalar dot products.
  // Small matrices stay on the scalar path (the panel setup would not
  // amortise); the per-block arithmetic is unchanged, only reordered.
  constexpr index_t kBlock = 96;
  if (n <= 2 * kBlock) return potrf_diag_panel(a, 0, n);
  for (index_t k0 = 0; k0 < n; k0 += kBlock) {
    const index_t nb = std::min(kBlock, n - k0);
    if (!potrf_diag_panel(a, k0, nb)) return false;
    const index_t rest = n - k0 - nb;
    if (rest == 0) break;
    // Trailing update A22 -= L21 L21ᵀ, lower trapezoid only: stripe the
    // trailing columns and update rows [c0, n) of each stripe. L21ᵀ is a
    // small nb-by-rest transpose copy (O(nb·rest) against 2·rest²·nb).
    Matrix<T> l21t(nb, rest);
    for (index_t j = 0; j < nb; ++j)
      for (index_t i = 0; i < rest; ++i)
        l21t(j, i) = a(k0 + nb + i, k0 + j);
    constexpr index_t kStripe = 128;
    for (index_t c0 = 0; c0 < rest; c0 += kStripe) {
      const index_t cb = std::min(kStripe, rest - c0);
      // The stripe's rectangular update starts at its own first row, so
      // the cb-wide wedge ABOVE the diagonal inside the stripe would be
      // downdated too. Save and restore it around the GEMM — O(cb²)
      // copies against 2·(rest−c0)·cb·nb flops — to keep the documented
      // contract that potrf_lower never touches the strict upper
      // triangle.
      Matrix<T> wedge(cb, cb);
      for (index_t j = 1; j < cb; ++j)
        std::copy_n(a.col(k0 + nb + c0 + j) + k0 + nb + c0, j,
                    wedge.col(j));
      gemm_panel(rest - c0, cb, nb, T(-1), a.col(k0) + k0 + nb + c0, n,
                 l21t.col(c0), nb, a.col(k0 + nb + c0) + k0 + nb + c0, n);
      for (index_t j = 1; j < cb; ++j)
        std::copy_n(wedge.col(j), j, a.col(k0 + nb + c0 + j) + k0 + nb + c0);
    }
  }
  return true;
}

template <typename T>
void chol_solve(const Matrix<T>& l, Matrix<T>& b) {
  // A = L L^T => solve L y = b, then L^T x = y.
  trsm(/*upper=*/false, Op::None, /*unit_diag=*/false, T(1), l, b);
  trsm(/*upper=*/false, Op::Trans, /*unit_diag=*/false, T(1), l, b);
}

template <typename T>
Matrix<T> spd_inverse(Matrix<T> a) {
  const index_t n = a.rows();
  require(potrf_lower(a), "spd_inverse: matrix is not positive definite");
  Matrix<T> inv = Matrix<T>::identity(n);
  chol_solve(a, inv);
  // Symmetrise to kill the O(eps) asymmetry from the triangular solves.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j + 1; i < n; ++i) {
      const T v = T(0.5) * (inv(i, j) + inv(j, i));
      inv(i, j) = v;
      inv(j, i) = v;
    }
  return inv;
}

template <typename T>
PivotedQr<T> geqp3(Matrix<T> a, T rel_tol, index_t max_rank) {
  const index_t m = a.rows(), n = a.cols();
  const index_t kmax0 = std::min(m, n);
  const index_t kmax =
      (max_rank > 0) ? std::min(kmax0, max_rank) : kmax0;

  PivotedQr<T> out;
  out.jpvt.resize(std::size_t(n));
  for (index_t j = 0; j < n; ++j) out.jpvt[std::size_t(j)] = j;

  // Partial column norms, maintained by downdating (LAPACK-style) with a
  // recompute guard against cancellation.
  std::vector<double> cnorm(std::size_t(n), 0.0);
  std::vector<double> cnorm0(std::size_t(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    cnorm[std::size_t(j)] = nrm2(m, a.col(j));
    cnorm0[std::size_t(j)] = cnorm[std::size_t(j)];
  }

  double r00 = 0.0;
  index_t k = 0;
  for (; k < kmax; ++k) {
    // Pivot: bring the column with the largest partial norm to position k.
    index_t p = k;
    for (index_t j = k + 1; j < n; ++j)
      if (cnorm[std::size_t(j)] > cnorm[std::size_t(p)]) p = j;
    if (p != k) {
      for (index_t i = 0; i < m; ++i) std::swap(a(i, k), a(i, p));
      std::swap(cnorm[std::size_t(k)], cnorm[std::size_t(p)]);
      std::swap(cnorm0[std::size_t(k)], cnorm0[std::size_t(p)]);
      std::swap(out.jpvt[std::size_t(k)], out.jpvt[std::size_t(p)]);
    }

    // Householder vector for column k, rows k..m-1.
    const double alpha = nrm2(m - k, a.col(k) + k);
    if (k == 0) r00 = alpha;
    // Rank-revealing early exit: the next diagonal of R estimates
    // sigma_{k+1}; stop once it falls below the relative tolerance.
    if (rel_tol > T(0) && alpha <= double(rel_tol) * std::max(r00, 1e-300))
      break;
    if (alpha == 0.0) break;

    const T akk = a(k, k);
    const double beta = (double(akk) >= 0.0) ? -alpha : alpha;
    // v = x - beta*e1, normalised so v[0] = 1.
    const T v0 = T(double(akk) - beta);
    if (std::abs(double(v0)) < std::numeric_limits<double>::min()) {
      // Column already zero below the diagonal with x aligned to e1.
      a(k, k) = T(beta);
      for (index_t i = k + 1; i < m; ++i) a(i, k) = T(0);
    } else {
      const T inv_v0 = T(1) / v0;
      for (index_t i = k + 1; i < m; ++i) a(i, k) *= inv_v0;
      const double tau = double(beta - double(akk)) / beta;  // 2/(v^T v) scaled
      a(k, k) = T(beta);

      // Apply H = I - tau * v v^T to trailing columns.
#pragma omp parallel for schedule(static) if (n - k > 32)
      for (index_t j = k + 1; j < n; ++j) {
        T* cj = a.col(j);
        double s = double(cj[k]);
        for (index_t i = k + 1; i < m; ++i)
          s += double(a(i, k)) * double(cj[i]);
        const T ts = T(tau * s);
        cj[k] -= ts;
        for (index_t i = k + 1; i < m; ++i) cj[i] -= a(i, k) * ts;
      }
    }

    // Downdate partial norms for columns right of k.
    for (index_t j = k + 1; j < n; ++j) {
      double& cn = cnorm[std::size_t(j)];
      if (cn == 0.0) continue;
      const double t = std::abs(double(a(k, j))) / cn;
      const double f = std::max(0.0, (1.0 + t) * (1.0 - t));
      const double ratio = cn / std::max(cnorm0[std::size_t(j)], 1e-300);
      if (f * ratio * ratio <= 1e-12) {
        // Cancellation risk: recompute exactly.
        cn = nrm2(m - k - 1, a.col(j) + k + 1);
        cnorm0[std::size_t(j)] = cn;
      } else {
        cn *= std::sqrt(f);
      }
    }
  }
  out.rank = k;

  // Extract R: kmax0-by-n upper trapezoid (entries below diag are the
  // Householder vectors; zero them out in the copy).
  out.r.resize(kmax0, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= std::min(j, kmax0 - 1); ++i)
      out.r(i, j) = a(i, j);
  return out;
}

namespace {

/// Scalar right-looking LU with partial pivoting on the panel columns
/// [k0, k0+nb), rows [k0, n). Row swaps are applied to the FULL rows
/// (LAPACK laswp convention), so the already-factored left part and the
/// not-yet-updated right part stay consistent.
template <typename T>
bool getrf_panel(Matrix<T>& a, std::vector<index_t>& pivots, index_t k0,
                 index_t nb) {
  const index_t n = a.rows();
  for (index_t k = k0; k < k0 + nb; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    index_t p = k;
    double best = std::abs(double(a(k, k)));
    for (index_t i = k + 1; i < n; ++i) {
      const double v = std::abs(double(a(i, k)));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    pivots[std::size_t(k)] = p;
    if (best == 0.0) return false;
    if (p != k)
      for (index_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
    const T inv = T(1) / a(k, k);
    for (index_t i = k + 1; i < n; ++i) a(i, k) *= inv;
    // Right-looking update restricted to the panel's own columns. Each
    // column reads only the fixed pivot column, so the OpenMP sweep is
    // bitwise identical to the serial loop at any thread count.
#pragma omp parallel for schedule(static) if (k0 + nb - k > 8 && n - k > 256)
    for (index_t j = k + 1; j < k0 + nb; ++j) {
      const T akj = a(k, j);
      if (akj == T(0)) continue;
      T* cj = a.col(j);
      const T* ck = a.col(k);
      for (index_t i = k + 1; i < n; ++i) cj[i] -= ck[i] * akj;
    }
  }
  return true;
}

}  // namespace

template <typename T>
bool getrf(Matrix<T>& a, std::vector<index_t>& pivots) {
  const index_t n = a.rows();
  require(a.rows() == a.cols(), "getrf: matrix must be square");
  pivots.assign(std::size_t(n), 0);
  // Right-looking blocked factorization: pivoted scalar LU on a full-height
  // panel, a small triangular solve for the U12 stripe, then ONE in-place
  // panel GEMM downdate of the trailing submatrix — the capacitance-system
  // hot path of the factorization engine runs at matrix-multiply speed.
  // Small systems keep the scalar path.
  constexpr index_t kBlock = 64;
  if (n <= 2 * kBlock) return getrf_panel(a, pivots, 0, n);
  for (index_t k0 = 0; k0 < n; k0 += kBlock) {
    const index_t nb = std::min(kBlock, n - k0);
    if (!getrf_panel(a, pivots, k0, nb)) return false;
    const index_t rest = n - k0 - nb;
    if (rest == 0) break;
    // U12 = L11⁻¹ A12: unit-lower solve against the nb-by-nb panel block,
    // run on a copy (trsm wants a square operand; O(nb²·rest) work).
    Matrix<T> l11(nb, nb);
    for (index_t j = 0; j < nb; ++j)
      for (index_t i = j; i < nb; ++i) l11(i, j) = a(k0 + i, k0 + j);
    Matrix<T> u12(nb, rest);
    for (index_t j = 0; j < rest; ++j)
      std::copy_n(a.col(k0 + nb + j) + k0, nb, u12.col(j));
    trsm(/*upper=*/false, Op::None, /*unit_diag=*/true, T(1), l11, u12);
    for (index_t j = 0; j < rest; ++j)
      std::copy_n(u12.col(j), nb, a.col(k0 + nb + j) + k0);
    // Trailing downdate A22 -= L21 U12, in place.
    gemm_panel(rest, rest, nb, T(-1), a.col(k0) + k0 + nb, n, u12.data(), nb,
               a.col(k0 + nb) + k0 + nb, n);
  }
  return true;
}

template <typename T>
void getrs(const Matrix<T>& lu, const std::vector<index_t>& pivots,
           Matrix<T>& b) {
  const index_t n = lu.rows();
  require(b.rows() == n, "getrs: B row count must match A");
  // Apply row swaps, then L (unit) forward solve, then U back solve.
  for (index_t k = 0; k < n; ++k) {
    const index_t p = pivots[std::size_t(k)];
    if (p != k)
      for (index_t j = 0; j < b.cols(); ++j) std::swap(b(k, j), b(p, j));
  }
  trsm(/*upper=*/false, Op::None, /*unit_diag=*/true, T(1), lu, b);
  trsm(/*upper=*/true, Op::None, /*unit_diag=*/false, T(1), lu, b);
}

template bool getrf<float>(Matrix<float>&, std::vector<index_t>&);
template bool getrf<double>(Matrix<double>&, std::vector<index_t>&);
template void getrs<float>(const Matrix<float>&, const std::vector<index_t>&,
                           Matrix<float>&);
template void getrs<double>(const Matrix<double>&,
                            const std::vector<index_t>&, Matrix<double>&);

template bool potrf_lower<float>(Matrix<float>&);
template bool potrf_lower<double>(Matrix<double>&);
template void chol_solve<float>(const Matrix<float>&, Matrix<float>&);
template void chol_solve<double>(const Matrix<double>&, Matrix<double>&);
template Matrix<float> spd_inverse<float>(Matrix<float>);
template Matrix<double> spd_inverse<double>(Matrix<double>);
template PivotedQr<float> geqp3<float>(Matrix<float>, float, index_t);
template PivotedQr<double> geqp3<double>(Matrix<double>, double, index_t);

}  // namespace gofmm::la
