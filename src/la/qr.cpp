// Blocked Householder QR (GEQRF/GEQRT) and multiply-by-Q (ORMQR/GEMQRT).
//
// Panels of kQrPanel reflectors are accumulated into the compact-WY form
// I - V T Vᵀ (LAPACK LARFT, forward/columnwise) so both the trailing
// factorization update and every ormqr application run as three GEMMs per
// panel instead of per-reflector rank-1 sweeps. qr_factorize caches the
// per-panel V/T blocks once (geqrt storage); the cached ormqr overload then
// applies them with zero larft calls — the gemqrt hot path the ULV solve
// sweeps run on. Both ormqr overloads funnel into the same larfb kernel, so
// cached and rebuilt applications are bitwise identical.
#include "la/qr.hpp"

#include <omp.h>

#include <atomic>
#include <cmath>

namespace gofmm::la {

namespace {

std::atomic<std::uint64_t> g_larft_calls{0};
std::atomic<std::uint64_t> g_ormqr_flops{0};
std::atomic<bool> g_force_rebuild{false};

/// Unblocked GEQR2 on columns [j0, j1) of `a`, reflectors over rows
/// [j, m); trailing columns up to `jtrail` are updated per reflector.
/// The trailing-column updates are independent per column, so the OpenMP
/// loop is bitwise identical to the serial sweep at any thread count.
template <typename T>
void geqr2_panel(Matrix<T>& a, std::vector<T>& tau, index_t j0, index_t j1,
                 index_t jtrail) {
  const index_t m = a.rows();
  for (index_t j = j0; j < j1; ++j) {
    // Householder vector for column j, rows j..m-1.
    const T alpha = a(j, j);
    const double xnorm = nrm2(m - j - 1, a.col(j) + j + 1);
    if (xnorm == 0.0) {
      tau[std::size_t(j)] = T(0);  // H = I, column already upper-triangular
    } else {
      double beta = std::sqrt(double(alpha) * double(alpha) + xnorm * xnorm);
      if (double(alpha) >= 0.0) beta = -beta;
      tau[std::size_t(j)] = T((beta - double(alpha)) / beta);
      const T scale = T(1) / T(double(alpha) - beta);
      for (index_t i = j + 1; i < m; ++i) a(i, j) *= scale;
      a(j, j) = T(beta);
    }
    const T tj = tau[std::size_t(j)];
    if (tj == T(0)) continue;
    // Apply H_j = I - tau v vᵀ to columns (j, jtrail).
#pragma omp parallel for schedule(static) if (jtrail - j > 8 && m - j > 256)
    for (index_t c = j + 1; c < jtrail; ++c) {
      T* cc = a.col(c);
      double s = double(cc[j]);
      for (index_t i = j + 1; i < m; ++i)
        s += double(a(i, j)) * double(cc[i]);
      const T ts = T(double(tj) * s);
      cc[j] -= ts;
      for (index_t i = j + 1; i < m; ++i) cc[i] -= a(i, j) * ts;
    }
  }
}

/// LARFT, forward/columnwise: the nb-by-nb upper-triangular T with
/// H_{j0} ... H_{j0+nb-1} = I - V T Vᵀ, V the unit-lower-trapezoidal
/// reflector block of columns [j0, j0+nb) over rows [j0, m). Every call is
/// counted: the cached (geqrt) path must show zero of these per apply.
template <typename T>
Matrix<T> larft(const Matrix<T>& a, const std::vector<T>& tau, index_t j0,
                index_t nb) {
  g_larft_calls.fetch_add(1, std::memory_order_relaxed);
  const index_t m = a.rows();
  Matrix<T> t(nb, nb);
  for (index_t i = 0; i < nb; ++i) {
    const index_t j = j0 + i;
    const T ti = tau[std::size_t(j)];
    t(i, i) = ti;
    if (i == 0 || ti == T(0)) continue;
    // w = Vᵀ v_i over the leading i reflector columns: v_i has an implicit
    // unit at row j and zeros above, so w[c] = V(j, c) + Σ_{r>j} V(r, c) v_i[r].
    std::vector<double> w(std::size_t(i), 0.0);
    for (index_t c = 0; c < i; ++c) {
      const T* vc = a.col(j0 + c);
      double s = double(vc[j]);
      for (index_t r = j + 1; r < m; ++r)
        s += double(vc[r]) * double(a(r, j));
      w[std::size_t(c)] = s;
    }
    // T(0:i, i) = -tau_i * T(0:i, 0:i) * w.
    for (index_t r = 0; r < i; ++r) {
      double s = 0;
      for (index_t c = r; c < i; ++c)
        s += double(t(r, c)) * w[std::size_t(c)];
      t(r, i) = T(-double(ti) * s);
    }
  }
  return t;
}

/// Materialises the unit-lower-trapezoidal reflector block V of columns
/// [j0, j0+nb) over rows [j0, m) (zeros above, unit diagonal).
template <typename T>
Matrix<T> reflector_block(const Matrix<T>& a, index_t j0, index_t nb) {
  const index_t m = a.rows();
  Matrix<T> v(m - j0, nb);
  for (index_t c = 0; c < nb; ++c) {
    v(c, c) = T(1);
    const T* src = a.col(j0 + c);
    for (index_t r = j0 + c + 1; r < m; ++r) v(r - j0, c) = src[r];
  }
  return v;
}

/// Applies (I - V T Vᵀ) (op None) or (I - V Tᵀ Vᵀ) (op Trans) to rows
/// [j0, m) of columns [col0, col0+ncols) of `c` — the compact-WY LARFB,
/// side left. Only those rows of those columns are read or written. Both
/// ormqr overloads (cached and rebuilt) run exactly this kernel, which is
/// what makes them bitwise identical; its exact flops (4·rows·nb·ncols +
/// 2·nb²·ncols) feed the measured counter ormqr_flops() must match.
template <typename T>
void larfb_left(Op op, const Matrix<T>& v, const Matrix<T>& t, index_t j0,
                Matrix<T>& c, index_t col0, index_t ncols) {
  const index_t rows = v.rows();
  const index_t nb = v.cols();
  if (ncols == 0 || nb == 0) return;
  g_ormqr_flops.fetch_add(
      4ull * std::uint64_t(rows) * std::uint64_t(nb) * std::uint64_t(ncols) +
          2ull * std::uint64_t(nb) * std::uint64_t(nb) * std::uint64_t(ncols),
      std::memory_order_relaxed);
  Matrix<T> cblk(rows, ncols);
  for (index_t j = 0; j < ncols; ++j)
    std::copy_n(c.col(col0 + j) + j0, rows, cblk.col(j));
  Matrix<T> w(nb, ncols);
  gemm(Op::Trans, Op::None, T(1), v, cblk, T(0), w);  // W = Vᵀ C
  // W ← op(T)ᵀ-free small triangular multiply: W = T W (None) or Tᵀ W.
  Matrix<T> tw(nb, ncols);
  gemm(op == Op::None ? Op::None : Op::Trans, Op::None, T(1), t, w, T(0), tw);
  gemm(Op::None, Op::None, T(-1), v, tw, T(1), cblk);  // C -= V (T W)
  for (index_t j = 0; j < ncols; ++j)
    std::copy_n(cblk.col(j), rows, c.col(col0 + j) + j0);
}

/// Shared panel schedule of both ormqr overloads: Qᵀ applies panels forward
/// (H_0 first), Q applies them backward. `panel(p, j0, nb)` must hand back
/// the V/T pair for panel p — cached from a QrFactors or rebuilt on the
/// spot — and larfb does the rest.
template <typename T, typename PanelFn>
void ormqr_panels(Op op, index_t k, Matrix<T>& c, PanelFn&& panel) {
  const index_t npanels = (k + kQrPanel - 1) / kQrPanel;
  if (op == Op::Trans) {
    for (index_t p = 0; p < npanels; ++p) {
      const index_t j0 = p * kQrPanel;
      const index_t nb = std::min(kQrPanel, k - j0);
      const auto& [v, t] = panel(p, j0, nb);
      larfb_left(Op::Trans, v, t, j0, c, 0, c.cols());
    }
  } else {
    for (index_t p = npanels - 1; p >= 0; --p) {
      const index_t j0 = p * kQrPanel;
      const index_t nb = std::min(kQrPanel, k - j0);
      const auto& [v, t] = panel(p, j0, nb);
      larfb_left(Op::None, v, t, j0, c, 0, c.cols());
    }
  }
}

}  // namespace

std::uint64_t larft_calls() {
  return g_larft_calls.load(std::memory_order_relaxed);
}

void larft_calls_reset() {
  g_larft_calls.store(0, std::memory_order_relaxed);
}

std::uint64_t ormqr_measured_flops() {
  return g_ormqr_flops.load(std::memory_order_relaxed);
}

void ormqr_measured_flops_reset() {
  g_ormqr_flops.store(0, std::memory_order_relaxed);
}

void qr_set_force_rebuild(bool on) {
  g_force_rebuild.store(on, std::memory_order_relaxed);
}

bool qr_force_rebuild() {
  return g_force_rebuild.load(std::memory_order_relaxed);
}

template <typename T>
void geqrf(Matrix<T>& a, std::vector<T>& tau) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  require(m >= n, "geqrf: requires m >= n (tall factorization)");
  tau.assign(std::size_t(n), T(0));
  if (n == 0) return;
  if (n <= kQrPanel) {
    geqr2_panel(a, tau, 0, n, n);
    return;
  }
  for (index_t j0 = 0; j0 < n; j0 += kQrPanel) {
    const index_t nb = std::min(kQrPanel, n - j0);
    // Factor the panel (its own trailing columns updated per reflector),
    // then hit the remaining columns with one compact-WY update.
    geqr2_panel(a, tau, j0, j0 + nb, j0 + nb);
    if (j0 + nb < n)
      larfb_left(Op::Trans, reflector_block(a, j0, nb), larft(a, tau, j0, nb),
                 j0, a, j0 + nb, n - j0 - nb);
  }
}

template <typename T>
QrFactors<T> qr_factorize(Matrix<T> a) {
  QrFactors<T> qf;
  qf.m = a.rows();
  geqrf(a, qf.tau);
  qf.k = index_t(qf.tau.size());
  qf.vr = std::move(a);
  const index_t npanels = (qf.k + kQrPanel - 1) / kQrPanel;
  qf.v.reserve(std::size_t(npanels));
  qf.t.reserve(std::size_t(npanels));
  for (index_t j0 = 0; j0 < qf.k; j0 += kQrPanel) {
    const index_t nb = std::min(kQrPanel, qf.k - j0);
    qf.v.push_back(reflector_block(qf.vr, j0, nb));
    qf.t.push_back(larft(qf.vr, qf.tau, j0, nb));
  }
  return qf;
}

template <typename T>
void ormqr_left(Op op, const Matrix<T>& a, const std::vector<T>& tau,
                Matrix<T>& c) {
  const index_t m = a.rows();
  const index_t k = index_t(tau.size());
  require(k <= a.cols(), "ormqr_left: tau longer than reflector columns");
  require(c.rows() == m, "ormqr_left: C must have A's row count");
  if (k == 0 || c.cols() == 0) return;
  std::pair<Matrix<T>, Matrix<T>> vt;
  ormqr_panels(op, k, c,
               [&](index_t, index_t j0, index_t nb) -> decltype(vt)& {
                 vt.first = reflector_block(a, j0, nb);
                 vt.second = larft(a, tau, j0, nb);
                 return vt;
               });
}

template <typename T>
void ormqr_left(Op op, const QrFactors<T>& qf, Matrix<T>& c) {
  require(c.rows() == qf.m, "ormqr_left: C must have Q's row count");
  if (qf.k == 0 || c.cols() == 0) return;
  if (g_force_rebuild.load(std::memory_order_relaxed)) {
    ormqr_left(op, qf.vr, qf.tau, c);
    return;
  }
  ormqr_panels(op, qf.k, c,
               [&](index_t p, index_t, index_t) -> std::pair<
                   const Matrix<T>&, const Matrix<T>&> {
                 return {qf.v[std::size_t(p)], qf.t[std::size_t(p)]};
               });
}

template <typename T>
Matrix<T> qr_extract_r(const Matrix<T>& a) {
  const index_t n = a.cols();
  Matrix<T> r(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = a(i, j);
  return r;
}

template <typename T>
Matrix<T> qr_extract_r(const QrFactors<T>& qf) {
  return qr_extract_r(qf.vr);
}

template void geqrf<float>(Matrix<float>&, std::vector<float>&);
template void geqrf<double>(Matrix<double>&, std::vector<double>&);
template QrFactors<float> qr_factorize<float>(Matrix<float>);
template QrFactors<double> qr_factorize<double>(Matrix<double>);
template void ormqr_left<float>(Op, const Matrix<float>&,
                                const std::vector<float>&, Matrix<float>&);
template void ormqr_left<double>(Op, const Matrix<double>&,
                                 const std::vector<double>&, Matrix<double>&);
template void ormqr_left<float>(Op, const QrFactors<float>&, Matrix<float>&);
template void ormqr_left<double>(Op, const QrFactors<double>&,
                                 Matrix<double>&);
template Matrix<float> qr_extract_r<float>(const Matrix<float>&);
template Matrix<double> qr_extract_r<double>(const Matrix<double>&);
template Matrix<float> qr_extract_r<float>(const QrFactors<float>&);
template Matrix<double> qr_extract_r<double>(const QrFactors<double>&);

}  // namespace gofmm::la
