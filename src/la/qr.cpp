// Blocked Householder QR (GEQRF) and multiply-by-Q (ORMQR, left side).
//
// Panels of kQrBlock reflectors are accumulated into the compact-WY form
// I - V T Vᵀ (LAPACK LARFT, forward/columnwise) so both the trailing
// factorization update and every ormqr application run as three GEMMs per
// panel instead of per-reflector rank-1 sweeps.
#include "la/qr.hpp"

#include <cmath>

namespace gofmm::la {

namespace {

constexpr index_t kQrBlock = 32;

/// Unblocked GEQR2 on columns [j0, j1) of `a`, reflectors over rows
/// [j, m); trailing columns up to `jtrail` are updated per reflector.
template <typename T>
void geqr2_panel(Matrix<T>& a, std::vector<T>& tau, index_t j0, index_t j1,
                 index_t jtrail) {
  const index_t m = a.rows();
  for (index_t j = j0; j < j1; ++j) {
    // Householder vector for column j, rows j..m-1.
    const T alpha = a(j, j);
    const double xnorm = nrm2(m - j - 1, a.col(j) + j + 1);
    if (xnorm == 0.0) {
      tau[std::size_t(j)] = T(0);  // H = I, column already upper-triangular
    } else {
      double beta = std::sqrt(double(alpha) * double(alpha) + xnorm * xnorm);
      if (double(alpha) >= 0.0) beta = -beta;
      tau[std::size_t(j)] = T((beta - double(alpha)) / beta);
      const T scale = T(1) / T(double(alpha) - beta);
      for (index_t i = j + 1; i < m; ++i) a(i, j) *= scale;
      a(j, j) = T(beta);
    }
    const T tj = tau[std::size_t(j)];
    if (tj == T(0)) continue;
    // Apply H_j = I - tau v vᵀ to columns (j, jtrail).
    for (index_t c = j + 1; c < jtrail; ++c) {
      T* cc = a.col(c);
      double s = double(cc[j]);
      for (index_t i = j + 1; i < m; ++i)
        s += double(a(i, j)) * double(cc[i]);
      const T ts = T(double(tj) * s);
      cc[j] -= ts;
      for (index_t i = j + 1; i < m; ++i) cc[i] -= a(i, j) * ts;
    }
  }
}

/// LARFT, forward/columnwise: the nb-by-nb upper-triangular T with
/// H_{j0} ... H_{j0+nb-1} = I - V T Vᵀ, V the unit-lower-trapezoidal
/// reflector block of columns [j0, j0+nb) over rows [j0, m).
template <typename T>
Matrix<T> larft(const Matrix<T>& a, const std::vector<T>& tau, index_t j0,
                index_t nb) {
  const index_t m = a.rows();
  Matrix<T> t(nb, nb);
  for (index_t i = 0; i < nb; ++i) {
    const index_t j = j0 + i;
    const T ti = tau[std::size_t(j)];
    t(i, i) = ti;
    if (i == 0 || ti == T(0)) continue;
    // w = Vᵀ v_i over the leading i reflector columns: v_i has an implicit
    // unit at row j and zeros above, so w[c] = V(j, c) + Σ_{r>j} V(r, c) v_i[r].
    std::vector<double> w(std::size_t(i), 0.0);
    for (index_t c = 0; c < i; ++c) {
      const T* vc = a.col(j0 + c);
      double s = double(vc[j]);
      for (index_t r = j + 1; r < m; ++r)
        s += double(vc[r]) * double(a(r, j));
      w[std::size_t(c)] = s;
    }
    // T(0:i, i) = -tau_i * T(0:i, 0:i) * w.
    for (index_t r = 0; r < i; ++r) {
      double s = 0;
      for (index_t c = r; c < i; ++c)
        s += double(t(r, c)) * w[std::size_t(c)];
      t(r, i) = T(-double(ti) * s);
    }
  }
  return t;
}

/// Materialises the unit-lower-trapezoidal reflector block V of columns
/// [j0, j0+nb) over rows [j0, m) (zeros above, unit diagonal).
template <typename T>
Matrix<T> reflector_block(const Matrix<T>& a, index_t j0, index_t nb) {
  const index_t m = a.rows();
  Matrix<T> v(m - j0, nb);
  for (index_t c = 0; c < nb; ++c) {
    v(c, c) = T(1);
    const T* src = a.col(j0 + c);
    for (index_t r = j0 + c + 1; r < m; ++r) v(r - j0, c) = src[r];
  }
  return v;
}

/// Applies (I - V T Vᵀ) (op None) or (I - V Tᵀ Vᵀ) (op Trans) to rows
/// [j0, m) of columns [col0, col0+ncols) of `c` — the compact-WY LARFB,
/// side left. Only those rows of those columns are read or written.
template <typename T>
void larfb_left(Op op, const Matrix<T>& v, const Matrix<T>& t, index_t j0,
                Matrix<T>& c, index_t col0, index_t ncols) {
  const index_t rows = v.rows();
  const index_t nb = v.cols();
  if (ncols == 0 || nb == 0) return;
  Matrix<T> cblk(rows, ncols);
  for (index_t j = 0; j < ncols; ++j)
    std::copy_n(c.col(col0 + j) + j0, rows, cblk.col(j));
  Matrix<T> w(nb, ncols);
  gemm(Op::Trans, Op::None, T(1), v, cblk, T(0), w);  // W = Vᵀ C
  // W ← op(T)ᵀ-free small triangular multiply: W = T W (None) or Tᵀ W.
  Matrix<T> tw(nb, ncols);
  gemm(op == Op::None ? Op::None : Op::Trans, Op::None, T(1), t, w, T(0), tw);
  gemm(Op::None, Op::None, T(-1), v, tw, T(1), cblk);  // C -= V (T W)
  for (index_t j = 0; j < ncols; ++j)
    std::copy_n(cblk.col(j), rows, c.col(col0 + j) + j0);
}

/// Unblocked ORMQR: applies reflectors one by one (forward for Qᵀ,
/// backward for Q).
template <typename T>
void orm2r_left(Op op, const Matrix<T>& a, const std::vector<T>& tau,
                Matrix<T>& c, index_t k) {
  const index_t m = a.rows();
  const index_t rhs = c.cols();
  const index_t begin = (op == Op::Trans) ? 0 : k - 1;
  const index_t end = (op == Op::Trans) ? k : -1;
  const index_t step = (op == Op::Trans) ? 1 : -1;
  for (index_t j = begin; j != end; j += step) {
    const T tj = tau[std::size_t(j)];
    if (tj == T(0)) continue;
    for (index_t col = 0; col < rhs; ++col) {
      T* cc = c.col(col);
      double s = double(cc[j]);
      for (index_t i = j + 1; i < m; ++i)
        s += double(a(i, j)) * double(cc[i]);
      const T ts = T(double(tj) * s);
      cc[j] -= ts;
      for (index_t i = j + 1; i < m; ++i) cc[i] -= a(i, j) * ts;
    }
  }
}

}  // namespace

template <typename T>
void geqrf(Matrix<T>& a, std::vector<T>& tau) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  require(m >= n, "geqrf: requires m >= n (tall factorization)");
  tau.assign(std::size_t(n), T(0));
  if (n == 0) return;
  if (n <= kQrBlock) {
    geqr2_panel(a, tau, 0, n, n);
    return;
  }
  for (index_t j0 = 0; j0 < n; j0 += kQrBlock) {
    const index_t nb = std::min(kQrBlock, n - j0);
    // Factor the panel (its own trailing columns updated per reflector),
    // then hit the remaining columns with one compact-WY update.
    geqr2_panel(a, tau, j0, j0 + nb, j0 + nb);
    if (j0 + nb < n)
      larfb_left(Op::Trans, reflector_block(a, j0, nb), larft(a, tau, j0, nb),
                 j0, a, j0 + nb, n - j0 - nb);
  }
}

template <typename T>
void ormqr_left(Op op, const Matrix<T>& a, const std::vector<T>& tau,
                Matrix<T>& c) {
  const index_t m = a.rows();
  const index_t k = index_t(tau.size());
  require(k <= a.cols(), "ormqr_left: tau longer than reflector columns");
  require(c.rows() == m, "ormqr_left: C must have A's row count");
  if (k == 0 || c.cols() == 0) return;
  if (k <= kQrBlock) {
    orm2r_left(op, a, tau, c, k);
    return;
  }
  // Qᵀ applies panels forward (H_0 first), Q applies them backward.
  if (op == Op::Trans) {
    for (index_t j0 = 0; j0 < k; j0 += kQrBlock) {
      const index_t nb = std::min(kQrBlock, k - j0);
      larfb_left(Op::Trans, reflector_block(a, j0, nb), larft(a, tau, j0, nb),
                 j0, c, 0, c.cols());
    }
  } else {
    const index_t last = ((k - 1) / kQrBlock) * kQrBlock;
    for (index_t j0 = last; j0 >= 0; j0 -= kQrBlock) {
      const index_t nb = std::min(kQrBlock, k - j0);
      larfb_left(Op::None, reflector_block(a, j0, nb), larft(a, tau, j0, nb),
                 j0, c, 0, c.cols());
      if (j0 == 0) break;
    }
  }
}

template <typename T>
Matrix<T> qr_extract_r(const Matrix<T>& a) {
  const index_t n = a.cols();
  Matrix<T> r(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) r(i, j) = a(i, j);
  return r;
}

template void geqrf<float>(Matrix<float>&, std::vector<float>&);
template void geqrf<double>(Matrix<double>&, std::vector<double>&);
template void ormqr_left<float>(Op, const Matrix<float>&,
                                const std::vector<float>&, Matrix<float>&);
template void ormqr_left<double>(Op, const Matrix<double>&,
                                 const std::vector<double>&, Matrix<double>&);
template Matrix<float> qr_extract_r<float>(const Matrix<float>&);
template Matrix<double> qr_extract_r<double>(const Matrix<double>&);

}  // namespace gofmm::la
