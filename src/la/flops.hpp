// FLOP-count bookkeeping used to report the paper's "GFs" columns.
#pragma once

#include <atomic>
#include <cstdint>

#include "la/qr.hpp"
#include "util/common.hpp"

namespace gofmm::la {

/// Thread-safe accumulator of floating-point operation counts per phase.
/// The counts follow Table 2 of the paper (2mnk per GEMM, 2mn^2 per QR, ...).
class FlopCounter {
 public:
  void add(std::uint64_t flops) {
    count_.fetch_add(flops, std::memory_order_relaxed);
  }
  void reset() { count_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t total() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// GFLOP/s for this counter over `seconds` of wall-clock time.
  [[nodiscard]] double gflops(double seconds) const {
    return seconds > 0 ? double(total()) / seconds * 1e-9 : 0.0;
  }

  static constexpr std::uint64_t gemm_flops(index_t m, index_t n, index_t k) {
    return 2ull * std::uint64_t(m) * std::uint64_t(n) * std::uint64_t(k);
  }
  static constexpr std::uint64_t qr_flops(index_t m, index_t n,
                                          index_t rank) {
    return 2ull * std::uint64_t(m) * std::uint64_t(n) * std::uint64_t(rank);
  }
  static constexpr std::uint64_t trsm_flops(index_t n, index_t nrhs) {
    return std::uint64_t(n) * std::uint64_t(n) * std::uint64_t(nrhs);
  }
  /// One-time cost of factoring + caching a node rotation in geqrt form
  /// (geqrf plus the per-panel compact-WY T builds). The old model charged
  /// geqrf alone and then under-charged every application; the T-build cost
  /// now lives here, paid exactly once per stored rotation.
  static constexpr std::uint64_t geqrt_build_flops(index_t m, index_t n) {
    return geqrt_flops(m, n);
  }
  /// Per-application cost of a cached rotation (gemqrt): exact larfb panel
  /// flops with NO larft rebuild term — matches ormqr_measured_flops() for
  /// the hot path bit for bit. (The pre-cache code paid an extra
  /// ~m·k·kQrPanel larft rebuild per application that the old ~4mnk model
  /// silently ignored.)
  static constexpr std::uint64_t ormqr_apply_flops(index_t m, index_t k,
                                                   index_t ncols) {
    return ormqr_flops(m, k, ncols);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace gofmm::la
