// FLOP-count bookkeeping used to report the paper's "GFs" columns.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/common.hpp"

namespace gofmm::la {

/// Thread-safe accumulator of floating-point operation counts per phase.
/// The counts follow Table 2 of the paper (2mnk per GEMM, 2mn^2 per QR, ...).
class FlopCounter {
 public:
  void add(std::uint64_t flops) {
    count_.fetch_add(flops, std::memory_order_relaxed);
  }
  void reset() { count_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t total() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// GFLOP/s for this counter over `seconds` of wall-clock time.
  [[nodiscard]] double gflops(double seconds) const {
    return seconds > 0 ? double(total()) / seconds * 1e-9 : 0.0;
  }

  static constexpr std::uint64_t gemm_flops(index_t m, index_t n, index_t k) {
    return 2ull * std::uint64_t(m) * std::uint64_t(n) * std::uint64_t(k);
  }
  static constexpr std::uint64_t qr_flops(index_t m, index_t n,
                                          index_t rank) {
    return 2ull * std::uint64_t(m) * std::uint64_t(n) * std::uint64_t(rank);
  }
  static constexpr std::uint64_t trsm_flops(index_t n, index_t nrhs) {
    return std::uint64_t(n) * std::uint64_t(n) * std::uint64_t(nrhs);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace gofmm::la
