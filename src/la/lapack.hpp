// LAPACK-subset: Cholesky factorization/inversion and rank-revealing
// column-pivoted Householder QR (GEQP3) with early termination — the two
// factorizations GOFMM's skeletonization and matrix generators require.
#pragma once

#include <vector>

#include "la/blas.hpp"
#include "la/matrix.hpp"

namespace gofmm::la {

/// In-place lower Cholesky factorization A = L*L^T of an SPD matrix.
/// On exit the lower triangle of `a` holds L (upper triangle untouched).
/// Returns false if a non-positive pivot is met (matrix not SPD within
/// round-off), in which case `a` is partially overwritten.
template <typename T>
bool potrf_lower(Matrix<T>& a);

/// Solves A*X = B for SPD A given its Cholesky factor L (from potrf_lower).
/// X overwrites B.
template <typename T>
void chol_solve(const Matrix<T>& l, Matrix<T>& b);

/// Dense inverse of an SPD matrix via Cholesky: returns A^{-1} (symmetric).
/// O(N^3); used by the matrix zoo to materialise inverse-operator matrices.
template <typename T>
Matrix<T> spd_inverse(Matrix<T> a);

/// Result of a column-pivoted, rank-revealing QR factorization.
///
/// Factors A*P = Q*R where P permutes columns so diagonal entries of R are
/// non-increasing in magnitude. Only R and the pivots are retained: GOFMM's
/// interpolative decomposition needs R11^{-1}*R12, never Q.
template <typename T>
struct PivotedQr {
  Matrix<T> r;                 ///< min(m,n)-by-n upper-trapezoidal factor.
  std::vector<index_t> jpvt;   ///< Column permutation: column k of A*P is A(:, jpvt[k]).
  index_t rank = 0;            ///< Numerical rank detected (see geqp3).
};

/// LU factorization with partial pivoting (LAPACK GETRF): A = P*L*U,
/// factors stored in place, pivots as row-swap indices. Returns false on
/// exact singularity. Used for the small dense "capacitance" systems of
/// the HODLR direct solver (symmetric but indefinite, so Cholesky does
/// not apply).
template <typename T>
bool getrf(Matrix<T>& a, std::vector<index_t>& pivots);

/// Solves A*X = B given the getrf factorization; X overwrites B.
template <typename T>
void getrs(const Matrix<T>& lu, const std::vector<index_t>& pivots,
           Matrix<T>& b);

/// Column-pivoted Householder QR with early stop (LAPACK GEQP3 semantics
/// plus truncation). Stops at step k when either k == max_rank or
/// |R(k,k)| <= rel_tol * |R(0,0)| — the paper's adaptive-rank criterion
/// sigma_{s+1} < tau estimated by the pivoted-QR diagonal.
/// Pass max_rank <= 0 for "no cap"; rel_tol <= 0 for "no tolerance stop".
template <typename T>
PivotedQr<T> geqp3(Matrix<T> a, T rel_tol, index_t max_rank);

extern template bool potrf_lower<float>(Matrix<float>&);
extern template bool potrf_lower<double>(Matrix<double>&);
extern template void chol_solve<float>(const Matrix<float>&, Matrix<float>&);
extern template void chol_solve<double>(const Matrix<double>&,
                                        Matrix<double>&);
extern template Matrix<float> spd_inverse<float>(Matrix<float>);
extern template Matrix<double> spd_inverse<double>(Matrix<double>);
extern template PivotedQr<float> geqp3<float>(Matrix<float>, float, index_t);
extern template PivotedQr<double> geqp3<double>(Matrix<double>, double,
                                                index_t);
extern template bool getrf<float>(Matrix<float>&, std::vector<index_t>&);
extern template bool getrf<double>(Matrix<double>&, std::vector<index_t>&);
extern template void getrs<float>(const Matrix<float>&,
                                  const std::vector<index_t>&,
                                  Matrix<float>&);
extern template void getrs<double>(const Matrix<double>&,
                                   const std::vector<index_t>&,
                                   Matrix<double>&);

}  // namespace gofmm::la
