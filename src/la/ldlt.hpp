// Symmetric-indefinite LDLᵀ factorization with Bunch–Kaufman partial
// pivoting (LAPACK SYTRF/SYTRS semantics, lower triangle, unblocked).
//
// The shared ULV engine (core/factorization.hpp) eliminates leaf diagonal
// blocks K(β, β) + λI. Those blocks are principal submatrices of the
// regularized operator, so whenever compression error or a small/negative
// λ pushes the operator indefinite, plain Cholesky refuses to eliminate.
// The pivoted LDLᵀ path factors P A Pᵀ = L D Lᵀ with 1×1 and 2×2 diagonal
// blocks instead: it is backward stable for any symmetric matrix, costs the
// same n³/3 flops as Cholesky, and its D blocks carry the inertia — the
// exact log|det| and determinant sign the engine needs for logdet
// bookkeeping on indefinite operators.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace gofmm::la {

/// Bunch–Kaufman LDLᵀ of a symmetric matrix, lower triangle (LAPACK SYTF2).
///
/// On entry `a` holds the symmetric matrix (only the lower triangle is
/// referenced). On successful exit the lower triangle holds the unit-lower
/// factor L and the 1×1/2×2 diagonal blocks of D, and `ipiv` records the
/// pivoting in LAPACK's 1-based convention: ipiv[k] = p > 0 means row/column
/// k was swapped with p-1 and D(k,k) is a 1×1 block; ipiv[k] = ipiv[k+1] =
/// -p < 0 means rows/columns k+1 and p-1 were swapped and D(k:k+1, k:k+1)
/// is a 2×2 block. Returns false when a fully zero pivot column makes the
/// matrix exactly singular (`a` is then partially overwritten).
template <typename T>
bool sytrf_lower(Matrix<T>& a, std::vector<index_t>& ipiv);

/// Solves A X = B given the sytrf_lower factorization; X overwrites B.
template <typename T>
void sytrs_lower(const Matrix<T>& a, const std::vector<index_t>& ipiv,
                 Matrix<T>& b);

/// Inertia and determinant data read off the D blocks of an LDLᵀ.
struct LdltInertia {
  index_t negative = 0;    ///< number of negative eigenvalues of A
  index_t zero = 0;        ///< number of (numerically exact) zero eigenvalues
  /// log |det A| over the NONSINGULAR part: exact-zero pivots contribute
  /// nothing here (stays finite) — test `zero > 0` / `sign == 0` for
  /// singularity, not this field.
  double log_abs_det = 0;
  int sign = 1;            ///< sign of det A (0 when zero > 0)
};

/// Reads inertia, determinant sign, and log|det| off a sytrf_lower result.
/// Sylvester's law: D and A are congruent, so D's eigenvalue signs ARE A's.
template <typename T>
LdltInertia ldlt_inertia(const Matrix<T>& a, const std::vector<index_t>& ipiv);

extern template bool sytrf_lower<float>(Matrix<float>&, std::vector<index_t>&);
extern template bool sytrf_lower<double>(Matrix<double>&,
                                         std::vector<index_t>&);
extern template void sytrs_lower<float>(const Matrix<float>&,
                                        const std::vector<index_t>&,
                                        Matrix<float>&);
extern template void sytrs_lower<double>(const Matrix<double>&,
                                         const std::vector<index_t>&,
                                         Matrix<double>&);
extern template LdltInertia ldlt_inertia<float>(const Matrix<float>&,
                                                const std::vector<index_t>&);
extern template LdltInertia ldlt_inertia<double>(const Matrix<double>&,
                                                 const std::vector<index_t>&);

}  // namespace gofmm::la
