// BLAS-subset on column-major dense matrices.
//
// This environment ships no BLAS/LAPACK, so the library provides its own
// kernels: a register-blocked, cache-blocked, OpenMP-parallel GEMM plus the
// level-1/2/3 helpers GOFMM needs (GEMV, TRSM, SYRK, AXPY, DOT). All kernels
// are templated on float/double — the paper runs in both precisions.
#pragma once

#include "la/matrix.hpp"

namespace gofmm::la {

/// Transposition selector for gemm-style routines.
enum class Op { None, Trans };

/// C = alpha * op(A) * op(B) + beta * C.
///
/// General matrix-matrix multiply; the workhorse of skeletonization and of
/// the N2S/S2S/S2N/L2L evaluation tasks. Blocked for cache and parallelised
/// over column panels with OpenMP.
template <typename T>
void gemm(Op opa, Op opb, T alpha, const Matrix<T>& a, const Matrix<T>& b,
          T beta, Matrix<T>& c);

/// Convenience: C = A * B (allocating).
template <typename T>
Matrix<T> matmul(const Matrix<T>& a, const Matrix<T>& b);

/// y = alpha * op(A) * x + beta * y  (x, y are n-by-1 / m-by-1 matrices).
template <typename T>
void gemv(Op opa, T alpha, const Matrix<T>& a, const T* x, T beta, T* y);

/// Triangular solve with multiple right-hand sides (left side only):
///   op(A) * X = alpha * B, X overwrites B.
/// `upper` selects the triangle of A referenced; `unit_diag` assumes 1s on
/// the diagonal. This is LAPACK's TRSM restricted to the cases GOFMM uses
/// (interpolation-coefficient solves against the R factor of a pivoted QR).
template <typename T>
void trsm(bool upper, Op opa, bool unit_diag, T alpha, const Matrix<T>& a,
          Matrix<T>& b);

/// Raw-pointer panel GEMM: C += alpha * A * B on column-major blocks with
/// explicit leading dimensions (A m-by-k/lda, B k-by-n/ldb, C m-by-n/ldc).
/// This is the in-place trailing-submatrix update the blocked POTRF/GETRF
/// panels in la/lapack.cpp run at matrix-multiply speed — no O(n²) copies
/// of the trailing block per panel step. Same cache tiling and OpenMP
/// column-panel parallelism as gemm().
template <typename T>
void gemm_panel(index_t m, index_t n, index_t k, T alpha, const T* a,
                index_t lda, const T* b, index_t ldb, T* c, index_t ldc);

/// Symmetric rank-k update, lower triangle: C = alpha*A*A^T + beta*C.
/// Only the lower triangle of C is written; the caller may symmetrise.
template <typename T>
void syrk_lower(T alpha, const Matrix<T>& a, T beta, Matrix<T>& c);

/// Euclidean norm of a contiguous vector.
template <typename T>
double nrm2(index_t n, const T* x);

/// Dot product of two contiguous vectors.
template <typename T>
double dot(index_t n, const T* x, const T* y);

/// y += alpha * x on contiguous vectors.
template <typename T>
void axpy(index_t n, T alpha, const T* x, T* y);

/// Name of the GEMM microkernel selected by runtime dispatch: "avx2" when
/// the CPU supports AVX2 and GOFMM_FORCE_SCALAR is unset, else "scalar".
/// Both kernels perform the identical per-element operation sequence
/// (explicit mul+add, no FMA contraction), so results are bitwise equal
/// across the dispatch — the escape hatch changes speed, never bits.
const char* gemm_kernel_name();

/// Re-runs the microkernel dispatch, re-reading the GOFMM_FORCE_SCALAR
/// environment variable (test hook; dispatch normally happens once at
/// first use). Not thread-safe against concurrent GEMMs.
void gemm_kernel_refresh();

extern template void gemm<float>(Op, Op, float, const Matrix<float>&,
                                 const Matrix<float>&, float, Matrix<float>&);
extern template void gemm<double>(Op, Op, double, const Matrix<double>&,
                                  const Matrix<double>&, double,
                                  Matrix<double>&);
extern template Matrix<float> matmul<float>(const Matrix<float>&,
                                            const Matrix<float>&);
extern template Matrix<double> matmul<double>(const Matrix<double>&,
                                              const Matrix<double>&);
extern template void gemv<float>(Op, float, const Matrix<float>&, const float*,
                                 float, float*);
extern template void gemv<double>(Op, double, const Matrix<double>&,
                                  const double*, double, double*);
extern template void trsm<float>(bool, Op, bool, float, const Matrix<float>&,
                                 Matrix<float>&);
extern template void trsm<double>(bool, Op, bool, double,
                                  const Matrix<double>&, Matrix<double>&);
extern template void gemm_panel<float>(index_t, index_t, index_t, float,
                                       const float*, index_t, const float*,
                                       index_t, float*, index_t);
extern template void gemm_panel<double>(index_t, index_t, index_t, double,
                                        const double*, index_t, const double*,
                                        index_t, double*, index_t);
extern template void syrk_lower<float>(float, const Matrix<float>&, float,
                                       Matrix<float>&);
extern template void syrk_lower<double>(double, const Matrix<double>&, double,
                                        Matrix<double>&);
extern template double nrm2<float>(index_t, const float*);
extern template double nrm2<double>(index_t, const double*);
extern template double dot<float>(index_t, const float*, const float*);
extern template double dot<double>(index_t, const double*, const double*);
extern template void axpy<float>(index_t, float, const float*, float*);
extern template void axpy<double>(index_t, double, const double*, double*);

}  // namespace gofmm::la
