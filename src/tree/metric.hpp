// The paper's three distances (§2.1) plus the two no-distance orderings.
//
// Because an SPD matrix is the Gram matrix of unknown vectors φ_i, the
// entries define genuine distances:
//   kernel distance   d²_ij = K_ii + K_jj − 2 K_ij           (Eq. 3)
//   angle  distance   d_ij  = 1 − K²_ij / (K_ii K_jj)        (Eq. 4)
// and, when coordinates are available,
//   geometric         d_ij  = ‖x_i − x_j‖₂.
// These drive tree partitioning, neighbor search and near/far pruning —
// the whole "geometry-oblivious" machinery.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/spd_matrix.hpp"
#include "util/common.hpp"

namespace gofmm::tree {

/// Index-ordering strategy for the partitioning tree.
enum class DistanceKind {
  Kernel,         ///< Gram-space l2 distance (Eq. 3)
  Angle,          ///< Gram-space sine/angle distance (Eq. 4)
  Geometric,      ///< point l2 distance (requires SPDMatrix::points())
  Lexicographic,  ///< input order, no distance (HODLR/STRUMPACK mode)
  Random,         ///< random order, no distance (control experiment)
};

DistanceKind distance_from_string(const std::string& name);
std::string to_string(DistanceKind kind);

/// True for the orderings that define pairwise distances (and can therefore
/// run ANN search and FMM pruning).
constexpr bool has_distance(DistanceKind kind) {
  return kind == DistanceKind::Kernel || kind == DistanceKind::Angle ||
         kind == DistanceKind::Geometric;
}

/// Pairwise and point-to-centroid distance evaluations against an SPD
/// matrix. Caches the diagonal once (both Gram distances need K_ii).
template <typename T>
class Metric {
 public:
  Metric(const SPDMatrix<T>& k, DistanceKind kind);

  [[nodiscard]] DistanceKind kind() const { return kind_; }

  /// d(i, j) per the selected distance. For Kernel the *squared* Gram
  /// distance is returned — monotone-equivalent and cheaper, and only
  /// comparisons matter (paper §2.1).
  [[nodiscard]] double operator()(index_t i, index_t j) const;

  /// A centroid is defined implicitly by a small sample of indices: in Gram
  /// space c = (1/n_c) Σ φ_s over the samples, which keeps every distance
  /// computable from O(n_c) matrix entries (paper Algorithm 2.1).
  struct Centroid {
    std::vector<index_t> samples;
    double norm2 = 0.0;  ///< ‖c‖² (Gram distances) — from n_c² entries.
    std::vector<T> coords;  ///< mean point (geometric only).
  };

  /// Builds the centroid of the given sample indices.
  [[nodiscard]] Centroid centroid(std::span<const index_t> samples) const;

  /// Distance from index i to a centroid (same convention as operator()).
  [[nodiscard]] double to_centroid(index_t i, const Centroid& c) const;

  /// Batched distances to a centroid: out[t] = d(idx[t], c). One submatrix
  /// gather instead of |idx|·n_c entry() calls — the hot path of tree
  /// construction.
  void to_centroid_batch(std::span<const index_t> idx, const Centroid& c,
                         double* out) const;

  /// Batched pairwise distances: out[t] = d(idx[t], j).
  void pairwise_batch(std::span<const index_t> idx, index_t j,
                      double* out) const;

 private:
  const SPDMatrix<T>& k_;
  DistanceKind kind_;
  std::vector<T> diag_;
};

extern template class Metric<float>;
extern template class Metric<double>;

}  // namespace gofmm::tree
