#include "tree/metric.hpp"

#include <cmath>

namespace gofmm::tree {

DistanceKind distance_from_string(const std::string& name) {
  if (name == "kernel") return DistanceKind::Kernel;
  if (name == "angle") return DistanceKind::Angle;
  if (name == "geometric") return DistanceKind::Geometric;
  if (name == "lexicographic") return DistanceKind::Lexicographic;
  if (name == "random") return DistanceKind::Random;
  throw std::invalid_argument("unknown distance: " + name);
}

std::string to_string(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::Kernel:
      return "kernel";
    case DistanceKind::Angle:
      return "angle";
    case DistanceKind::Geometric:
      return "geometric";
    case DistanceKind::Lexicographic:
      return "lexicographic";
    case DistanceKind::Random:
      return "random";
  }
  return "?";
}

template <typename T>
Metric<T>::Metric(const SPDMatrix<T>& k, DistanceKind kind)
    : k_(k), kind_(kind) {
  if (kind_ == DistanceKind::Kernel || kind_ == DistanceKind::Angle)
    diag_ = k_.diagonal();
  if (kind_ == DistanceKind::Geometric)
    require(k_.points() != nullptr,
            "Metric: geometric distance requires point coordinates");
}

template <typename T>
double Metric<T>::operator()(index_t i, index_t j) const {
  switch (kind_) {
    case DistanceKind::Kernel: {
      // Squared Gram distance (Eq. 3); clamped at 0 against round-off.
      const double d2 = double(diag_[std::size_t(i)]) +
                        double(diag_[std::size_t(j)]) -
                        2.0 * double(k_.entry(i, j));
      return d2 > 0.0 ? d2 : 0.0;
    }
    case DistanceKind::Angle: {
      // sin^2 of the Gram angle (Eq. 4).
      const double kij = double(k_.entry(i, j));
      const double denom =
          double(diag_[std::size_t(i)]) * double(diag_[std::size_t(j)]);
      if (denom <= 0.0) return 1.0;
      const double c2 = kij * kij / denom;
      return c2 < 1.0 ? 1.0 - c2 : 0.0;
    }
    case DistanceKind::Geometric: {
      const la::Matrix<T>& pts = *k_.points();
      const T* xi = pts.col(i);
      const T* xj = pts.col(j);
      double s = 0;
      for (index_t d = 0; d < pts.rows(); ++d) {
        const double diff = double(xi[d]) - double(xj[d]);
        s += diff * diff;
      }
      return s;  // squared l2: monotone-equivalent, cheaper
    }
    default:
      throw std::logic_error("Metric: ordering has no pairwise distance");
  }
}

template <typename T>
typename Metric<T>::Centroid Metric<T>::centroid(
    std::span<const index_t> samples) const {
  Centroid c;
  c.samples.assign(samples.begin(), samples.end());
  const index_t nc = index_t(samples.size());
  require(nc > 0, "Metric::centroid: empty sample set");

  if (kind_ == DistanceKind::Geometric) {
    const la::Matrix<T>& pts = *k_.points();
    c.coords.assign(std::size_t(pts.rows()), T(0));
    for (index_t s = 0; s < nc; ++s) {
      const T* x = pts.col(samples[std::size_t(s)]);
      for (index_t d = 0; d < pts.rows(); ++d) c.coords[std::size_t(d)] += x[d];
    }
    for (auto& v : c.coords) v /= T(nc);
    return c;
  }

  // Gram centroid: ‖c‖² = (1/nc²) Σ_s Σ_t K(s, t), needs nc² entries.
  la::Matrix<T> kss = k_.submatrix(samples, samples);
  double s2 = 0;
  for (index_t a = 0; a < nc; ++a)
    for (index_t b = 0; b < nc; ++b) s2 += double(kss(a, b));
  c.norm2 = s2 / (double(nc) * double(nc));
  return c;
}

template <typename T>
double Metric<T>::to_centroid(index_t i, const Centroid& c) const {
  switch (kind_) {
    case DistanceKind::Kernel: {
      // ‖φ_i − c‖² = K_ii − 2 φ_i·c + ‖c‖², with φ_i·c = mean_s K(i, s).
      double ic = 0;
      for (index_t s : c.samples) ic += double(k_.entry(i, s));
      ic /= double(c.samples.size());
      const double d2 = double(diag_[std::size_t(i)]) - 2.0 * ic + c.norm2;
      return d2 > 0.0 ? d2 : 0.0;
    }
    case DistanceKind::Angle: {
      double ic = 0;
      for (index_t s : c.samples) ic += double(k_.entry(i, s));
      ic /= double(c.samples.size());
      const double denom = double(diag_[std::size_t(i)]) * c.norm2;
      if (denom <= 0.0) return 1.0;
      const double c2 = ic * ic / denom;
      return c2 < 1.0 ? 1.0 - c2 : 0.0;
    }
    case DistanceKind::Geometric: {
      const la::Matrix<T>& pts = *k_.points();
      const T* xi = pts.col(i);
      double s = 0;
      for (index_t d = 0; d < pts.rows(); ++d) {
        const double diff = double(xi[d]) - double(c.coords[std::size_t(d)]);
        s += diff * diff;
      }
      return s;
    }
    default:
      throw std::logic_error("Metric: ordering has no centroid distance");
  }
}

template <typename T>
void Metric<T>::to_centroid_batch(std::span<const index_t> idx,
                                  const Centroid& c, double* out) const {
  const index_t n = index_t(idx.size());
  if (kind_ == DistanceKind::Geometric) {
#pragma omp parallel for schedule(static) if (n > 2048)
    for (index_t t = 0; t < n; ++t)
      out[t] = to_centroid(idx[std::size_t(t)], c);
    return;
  }
  // One gather of K(idx, samples) covers every φ_i · c inner product.
  const la::Matrix<T> kis = k_.submatrix(idx, c.samples);
  const double nc = double(c.samples.size());
#pragma omp parallel for schedule(static) if (n > 2048)
  for (index_t t = 0; t < n; ++t) {
    double ic = 0;
    for (index_t s = 0; s < kis.cols(); ++s) ic += double(kis(t, s));
    ic /= nc;
    const double dii = double(diag_[std::size_t(idx[std::size_t(t)])]);
    if (kind_ == DistanceKind::Kernel) {
      const double d2 = dii - 2.0 * ic + c.norm2;
      out[t] = d2 > 0.0 ? d2 : 0.0;
    } else {
      const double denom = dii * c.norm2;
      if (denom <= 0.0) {
        out[t] = 1.0;
      } else {
        const double c2 = ic * ic / denom;
        out[t] = c2 < 1.0 ? 1.0 - c2 : 0.0;
      }
    }
  }
}

template <typename T>
void Metric<T>::pairwise_batch(std::span<const index_t> idx, index_t j,
                               double* out) const {
  const index_t n = index_t(idx.size());
  if (kind_ == DistanceKind::Geometric) {
#pragma omp parallel for schedule(static) if (n > 2048)
    for (index_t t = 0; t < n; ++t) out[t] = (*this)(idx[std::size_t(t)], j);
    return;
  }
  const index_t cols[1] = {j};
  const la::Matrix<T> kij =
      k_.submatrix(idx, std::span<const index_t>(cols, 1));
  const double djj = double(diag_[std::size_t(j)]);
#pragma omp parallel for schedule(static) if (n > 2048)
  for (index_t t = 0; t < n; ++t) {
    const double dii = double(diag_[std::size_t(idx[std::size_t(t)])]);
    const double kv = double(kij(t, 0));
    if (kind_ == DistanceKind::Kernel) {
      const double d2 = dii + djj - 2.0 * kv;
      out[t] = d2 > 0.0 ? d2 : 0.0;
    } else {
      const double denom = dii * djj;
      if (denom <= 0.0) {
        out[t] = 1.0;
      } else {
        const double c2 = kv * kv / denom;
        out[t] = c2 < 1.0 ? 1.0 - c2 : 0.0;
      }
    }
  }
}

template class Metric<float>;
template class Metric<double>;

}  // namespace gofmm::tree
