#include "tree/ann.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gofmm::tree {

namespace {

/// Fixed-capacity max-heap view over one index's neighbor slots: the worst
/// (largest-distance) neighbor sits at slot 0 so replacement is O(log κ).
class HeapView {
 public:
  HeapView(index_t* ids, double* dists, index_t kappa)
      : ids_(ids), dists_(dists), kappa_(kappa) {}

  [[nodiscard]] double worst() const { return dists_[0]; }

  /// Inserts candidate (id, d) if it improves the list and is not already
  /// present. Duplicate check is linear — κ is small (≤ 64).
  void offer(index_t id, double d) {
    if (d >= dists_[0]) return;
    for (index_t t = 0; t < kappa_; ++t)
      if (ids_[t] == id) return;
    // Replace the root and sift the candidate down.
    index_t hole = 0;
    for (;;) {
      const index_t l = 2 * hole + 1;
      const index_t r = l + 1;
      index_t big = hole;
      double big_val = d;
      if (l < kappa_ && dists_[l] > big_val) {
        big = l;
        big_val = dists_[l];
      }
      if (r < kappa_ && dists_[r] > big_val) big = r;
      if (big == hole) break;
      dists_[hole] = dists_[big];
      ids_[hole] = ids_[big];
      hole = big;
    }
    dists_[hole] = d;
    ids_[hole] = id;
  }

 private:
  index_t* ids_;
  double* dists_;
  index_t kappa_;
};

/// Exhaustive κ-NN of index i over the whole matrix (ground truth for
/// recall estimation). Returns the sorted id set of the true neighbors.
template <typename T>
std::vector<index_t> brute_force_knn(const SPDMatrix<T>& k,
                                     const Metric<T>& metric, index_t i,
                                     index_t kappa) {
  const index_t n = k.size();
  std::vector<index_t> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), index_t(0));
  std::vector<double> dist(static_cast<std::size_t>(n));
  metric.pairwise_batch(all, i, dist.data());
  dist[std::size_t(i)] = -1.0;  // self is always the nearest
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t(0));
  std::nth_element(order.begin(), order.begin() + kappa, order.end(),
                   [&](index_t a, index_t b) {
                     return dist[std::size_t(a)] < dist[std::size_t(b)];
                   });
  order.resize(std::size_t(kappa));
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

template <typename T>
AnnResult all_nearest_neighbors(const SPDMatrix<T>& k, const Metric<T>& metric,
                                const AnnOptions& options) {
  require(has_distance(metric.kind()),
          "all_nearest_neighbors: ordering defines no distance");
  const index_t n = k.size();
  const index_t kappa = std::min(options.kappa, n);
  Prng rng(options.seed);

  AnnResult result;
  result.neighbors.kappa = kappa;
  result.neighbors.ids.assign(std::size_t(n * kappa), index_t(-1));
  result.neighbors.dists.assign(std::size_t(n * kappa),
                                std::numeric_limits<double>::infinity());
  // Seed every list with the index itself (distance 0): the paper treats
  // i as its own nearest neighbor, which anchors the near-list votes.
  for (index_t i = 0; i < n; ++i)
    HeapView(result.neighbors.ids.data() + i * kappa,
             result.neighbors.dists.data() + i * kappa, kappa)
        .offer(i, 0.0);

  // Ground truth on a probe sample for the recall stop criterion.
  const index_t probes = std::min(options.probe_count, n);
  std::vector<index_t> probe_ids(static_cast<std::size_t>(probes));
  for (auto& p : probe_ids) p = rng.below(n);
  std::vector<std::vector<index_t>> truth(static_cast<std::size_t>(probes));
#pragma omp parallel for schedule(dynamic, 1)
  for (index_t t = 0; t < probes; ++t)
    truth[std::size_t(t)] =
        brute_force_knn(k, metric, probe_ids[std::size_t(t)], kappa);

  for (index_t iter = 0; iter < options.max_iterations; ++iter) {
    // One randomized projection tree per iteration.
    ClusterTree tr(n, options.leaf_size,
                   metric_split(metric, rng, /*randomized=*/true));

    // Exhaustive search inside each leaf; a leaf's updates touch only its
    // own indices, so leaves parallelise without locking.
    const auto& leaves = tr.leaves();
#pragma omp parallel for schedule(dynamic, 1)
    for (index_t li = 0; li < index_t(leaves.size()); ++li) {
      const auto idx = tr.indices(leaves[std::size_t(li)]);
      const index_t m = index_t(idx.size());
      const la::Matrix<T> kll = k.submatrix(idx, idx);
      for (index_t a = 0; a < m; ++a) {
        const index_t ia = idx[std::size_t(a)];
        HeapView ha(result.neighbors.ids.data() + ia * kappa,
                    result.neighbors.dists.data() + ia * kappa, kappa);
        for (index_t b = a + 1; b < m; ++b) {
          const index_t ib = idx[std::size_t(b)];
          double d;
          if (metric.kind() == DistanceKind::Geometric) {
            d = metric(ia, ib);
          } else if (metric.kind() == DistanceKind::Kernel) {
            const double d2 = double(kll(a, a)) + double(kll(b, b)) -
                              2.0 * double(kll(a, b));
            d = d2 > 0.0 ? d2 : 0.0;
          } else {  // Angle
            const double denom = double(kll(a, a)) * double(kll(b, b));
            const double c2 =
                denom > 0.0
                    ? double(kll(a, b)) * double(kll(a, b)) / denom
                    : 0.0;
            d = c2 < 1.0 ? 1.0 - c2 : 0.0;
          }
          ha.offer(ib, d);
          HeapView hb(result.neighbors.ids.data() + ib * kappa,
                      result.neighbors.dists.data() + ib * kappa, kappa);
          hb.offer(ia, d);
        }
      }
    }
    result.iterations = iter + 1;

    // Estimated recall over the probe set.
    double hits = 0;
    for (index_t t = 0; t < probes; ++t) {
      const auto found = result.neighbors.of(probe_ids[std::size_t(t)]);
      const auto& tset = truth[std::size_t(t)];
      for (index_t id : found)
        if (std::binary_search(tset.begin(), tset.end(), id)) hits += 1;
    }
    const double recall = hits / double(probes * kappa);
    result.recall_per_iteration.push_back(recall);
    if (recall >= options.target_recall) break;
  }
  return result;
}

template AnnResult all_nearest_neighbors<float>(const SPDMatrix<float>&,
                                                const Metric<float>&,
                                                const AnnOptions&);
template AnnResult all_nearest_neighbors<double>(const SPDMatrix<double>&,
                                                 const Metric<double>&,
                                                 const AnnOptions&);

}  // namespace gofmm::tree
