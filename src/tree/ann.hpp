// Approximate all-nearest-neighbors search (paper §2.1-2.2, steps 1-3 of
// Algorithm 2.2).
//
// Neighbors drive GOFMM's near/far pruning and its importance sampling.
// The search iterates randomized projection trees (same splitter as the
// metric tree but with random p, q); within each leaf an exhaustive search
// updates the per-index neighbor lists. Iteration stops once estimated
// recall reaches 80% or after 10 trees, exactly as the paper prescribes.
#pragma once

#include <vector>

#include "tree/cluster_tree.hpp"
#include "tree/metric.hpp"
#include "util/common.hpp"
#include "util/prng.hpp"

namespace gofmm::tree {

/// κ nearest neighbors for every index, stored flat: neighbor t of index i
/// is (ids[i*kappa + t], dists[i*kappa + t]), unordered within the list.
struct NeighborLists {
  index_t kappa = 0;
  std::vector<index_t> ids;
  std::vector<double> dists;

  [[nodiscard]] std::span<const index_t> of(index_t i) const {
    return {ids.data() + i * kappa, std::size_t(kappa)};
  }
};

/// Options for the iterative search.
struct AnnOptions {
  index_t kappa = 32;          ///< neighbors per index (paper: κ = 32/64)
  index_t leaf_size = 128;     ///< projection-tree leaf size
  index_t max_iterations = 10; ///< paper: at most 10 random trees
  double target_recall = 0.8;  ///< paper: stop at 80% accuracy
  index_t probe_count = 64;    ///< indices sampled to estimate recall
  std::uint64_t seed = 42;
};

/// Result plus the recall trace (one entry per completed iteration).
struct AnnResult {
  NeighborLists neighbors;
  std::vector<double> recall_per_iteration;
  index_t iterations = 0;
};

/// Runs the iterated randomized-tree search under the given metric
/// (must satisfy has_distance(metric.kind())).
template <typename T>
AnnResult all_nearest_neighbors(const SPDMatrix<T>& k, const Metric<T>& metric,
                                const AnnOptions& options);

extern template AnnResult all_nearest_neighbors<float>(const SPDMatrix<float>&,
                                                       const Metric<float>&,
                                                       const AnnOptions&);
extern template AnnResult all_nearest_neighbors<double>(
    const SPDMatrix<double>&, const Metric<double>&, const AnnOptions&);

}  // namespace gofmm::tree
