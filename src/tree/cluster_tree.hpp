// Balanced binary metric ball tree (paper §2.1, Algorithm 2.1).
//
// The tree encodes a symmetric permutation of K: its leaves, read left to
// right, give the new index order. Interior nodes split their index set in
// half along the direction between two far-apart representatives p and q
// (distances measured in Gram space, point space, or not at all for the
// lexicographic/random control orderings).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "tree/metric.hpp"
#include "tree/morton.hpp"
#include "util/common.hpp"
#include "util/prng.hpp"

namespace gofmm::tree {

/// A node of the partitioning tree. Owns its children; `begin/count`
/// reference a contiguous slice of the tree's permutation array.
struct Node {
  index_t id = 0;      ///< preorder id, root = 0; dense in [0, num_nodes)
  index_t level = 0;   ///< depth, root = 0
  index_t begin = 0;   ///< first position in the permutation array
  index_t count = 0;   ///< number of indices owned
  Node* parent = nullptr;
  MortonCode morton;
  index_t leaf_lo = 0;  ///< leaf-ordinal interval [leaf_lo, leaf_hi)
  index_t leaf_hi = 0;

  std::unique_ptr<Node> left_child;
  std::unique_ptr<Node> right_child;

  [[nodiscard]] Node* left() const { return left_child.get(); }
  [[nodiscard]] Node* right() const { return right_child.get(); }
  [[nodiscard]] bool is_leaf() const { return left_child == nullptr; }
  [[nodiscard]] Node* sibling() const {
    if (parent == nullptr) return nullptr;
    return parent->left() == this ? parent->right() : parent->left();
  }
};

/// Partitioner callback: reorder `idx` in place so that its first `half`
/// entries become the left child. The default (null) keeps the current
/// order — the lexicographic split.
using SplitFn = std::function<void(std::span<index_t> idx, index_t half)>;

/// The balanced binary partitioning tree over indices {0..n-1}.
///
/// All leaves sit at the same depth ceil(log2(n/m)) and own at most m
/// indices, matching the complete tree of the paper's Figure 2.
class ClusterTree {
 public:
  /// Builds the tree. `split` arranges each node's indices (see SplitFn).
  ClusterTree(index_t n, index_t leaf_size, const SplitFn& split);

  [[nodiscard]] index_t size() const { return n_; }
  [[nodiscard]] index_t leaf_size() const { return m_; }
  [[nodiscard]] index_t depth() const { return depth_; }
  [[nodiscard]] index_t num_nodes() const { return index_t(nodes_.size()); }

  [[nodiscard]] Node* root() { return root_.get(); }
  [[nodiscard]] const Node* root() const { return root_.get(); }

  /// Permutation: perm()[pos] = original index at tree position pos.
  [[nodiscard]] const std::vector<index_t>& perm() const { return perm_; }
  /// Inverse permutation: position of original index i.
  [[nodiscard]] const std::vector<index_t>& inv_perm() const {
    return inv_perm_;
  }

  /// Indices owned by a node, in tree order (a view into perm()).
  [[nodiscard]] std::span<const index_t> indices(const Node* node) const {
    return {perm_.data() + node->begin, std::size_t(node->count)};
  }

  /// All nodes by preorder id (stable addressing for payload arrays).
  [[nodiscard]] const std::vector<Node*>& nodes() const { return nodes_; }
  /// Leaves left-to-right; leaf k has leaf_lo == k.
  [[nodiscard]] const std::vector<Node*>& leaves() const { return leaves_; }
  /// Nodes grouped by depth (levels()[0] = {root}).
  [[nodiscard]] const std::vector<std::vector<Node*>>& levels() const {
    return levels_;
  }
  /// Postorder sequence (children before parents).
  [[nodiscard]] const std::vector<Node*>& postorder() const {
    return postorder_;
  }

  /// Leaf containing original index i.
  [[nodiscard]] Node* leaf_of(index_t original_index) const {
    return leaves_[std::size_t(
        leaf_ordinal_of_pos_[std::size_t(inv_perm_[std::size_t(original_index)])])];
  }

 private:
  void build(Node* node, const SplitFn& split);

  index_t n_;
  index_t m_;
  index_t depth_ = 0;
  std::unique_ptr<Node> root_;
  std::vector<index_t> perm_;
  std::vector<index_t> inv_perm_;
  std::vector<Node*> nodes_;
  std::vector<Node*> leaves_;
  std::vector<std::vector<Node*>> levels_;
  std::vector<Node*> postorder_;
  std::vector<index_t> leaf_ordinal_of_pos_;
};

/// Splitter implementing the paper's Algorithm 2.1 (metricSplit): sample a
/// Gram/geometric centroid c, take p = argmax d(i,c), q = argmax d(i,p),
/// then median-split on d(i,p) − d(i,q). With `randomized` = true, p and q
/// are random distinct indices — the random projection trees used for the
/// approximate neighbor search.
template <typename T>
SplitFn metric_split(const Metric<T>& metric, Prng& rng,
                     bool randomized = false, index_t num_centroid_samples = 32);

/// Splitter for DistanceKind::Random: shuffles then halves.
SplitFn random_split(Prng& rng);

/// Convenience: builds the tree for any ordering kind.
template <typename T>
ClusterTree build_tree(const SPDMatrix<T>& k, const Metric<T>& metric,
                       index_t leaf_size, Prng& rng);

extern template SplitFn metric_split<float>(const Metric<float>&, Prng&, bool,
                                            index_t);
extern template SplitFn metric_split<double>(const Metric<double>&, Prng&,
                                             bool, index_t);
extern template ClusterTree build_tree<float>(const SPDMatrix<float>&,
                                              const Metric<float>&, index_t,
                                              Prng&);
extern template ClusterTree build_tree<double>(const SPDMatrix<double>&,
                                               const Metric<double>&, index_t,
                                               Prng&);

}  // namespace gofmm::tree
