// Morton IDs: bit-paths from the root of the binary partitioning tree.
//
// The paper uses Morton IDs to answer "is tree node α an ancestor of the
// leaf containing index i" during near/far-list construction (Algorithms
// 2.3-2.4) without chasing pointers. A code stores the left/right turns on
// the root-to-node path plus the depth.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace gofmm::tree {

/// Path-encoded node identifier in a binary tree.
///
/// Bit d of `bits` (0 = root's child decision) is 0 for "left", 1 for
/// "right"; `level` is the node depth (root = 0, so the root's code is
/// {0, 0}). Supports trees up to depth 62.
struct MortonCode {
  std::uint64_t bits = 0;
  index_t level = 0;

  /// Code of this node's left/right child.
  [[nodiscard]] MortonCode child(bool right) const {
    return {bits | (std::uint64_t(right) << level), level + 1};
  }

  /// True when `this` lies on the root path of `other` (or equals it):
  /// the first `level` turn bits match.
  [[nodiscard]] bool is_ancestor_of(const MortonCode& other) const {
    if (level > other.level) return false;
    const std::uint64_t mask =
        (level >= 64) ? ~0ull : ((std::uint64_t(1) << level) - 1);
    return (other.bits & mask) == bits;
  }

  friend bool operator==(const MortonCode& a, const MortonCode& b) {
    return a.bits == b.bits && a.level == b.level;
  }

  /// Total order (level-major) so codes can key sorted containers.
  friend bool operator<(const MortonCode& a, const MortonCode& b) {
    return a.level != b.level ? a.level < b.level : a.bits < b.bits;
  }
};

}  // namespace gofmm::tree
