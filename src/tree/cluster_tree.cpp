#include "tree/cluster_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gofmm::tree {

ClusterTree::ClusterTree(index_t n, index_t leaf_size, const SplitFn& split)
    : n_(n), m_(leaf_size) {
  require(n > 0, "ClusterTree: n must be positive");
  require(leaf_size > 0, "ClusterTree: leaf size must be positive");

  // Depth so that every leaf holds at most m indices and all leaves share
  // one level: ceil(log2(n/m)).
  depth_ = 0;
  while ((n_ + ((index_t(1) << depth_) - 1)) >> depth_ > m_) ++depth_;

  perm_.resize(std::size_t(n_));
  std::iota(perm_.begin(), perm_.end(), index_t(0));

  root_ = std::make_unique<Node>();
  root_->begin = 0;
  root_->count = n_;
  build(root_.get(), split);

  // Assign preorder ids and collect node lists.
  levels_.resize(std::size_t(depth_) + 1);
  std::vector<Node*> stack{root_.get()};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    node->id = index_t(nodes_.size());
    nodes_.push_back(node);
    levels_[std::size_t(node->level)].push_back(node);
    if (!node->is_leaf()) {
      stack.push_back(node->right());
      stack.push_back(node->left());
    }
  }
  // Preorder pushes right last, so within a level nodes appear left to
  // right after the (depth-first) walk; re-sort by begin for determinism.
  for (auto& level : levels_)
    std::sort(level.begin(), level.end(),
              [](const Node* a, const Node* b) { return a->begin < b->begin; });

  // Leaves and leaf-ordinal intervals.
  leaves_ = levels_[std::size_t(depth_)];
  leaf_ordinal_of_pos_.resize(std::size_t(n_));
  for (index_t k = 0; k < index_t(leaves_.size()); ++k) {
    Node* leaf = leaves_[std::size_t(k)];
    leaf->leaf_lo = k;
    leaf->leaf_hi = k + 1;
    for (index_t t = 0; t < leaf->count; ++t)
      leaf_ordinal_of_pos_[std::size_t(leaf->begin + t)] = k;
  }
  // Propagate intervals upward (postorder).
  postorder_.reserve(nodes_.size());
  std::function<void(Node*)> post = [&](Node* node) {
    if (!node->is_leaf()) {
      post(node->left());
      post(node->right());
      node->leaf_lo = node->left()->leaf_lo;
      node->leaf_hi = node->right()->leaf_hi;
    }
    postorder_.push_back(node);
  };
  post(root_.get());

  inv_perm_.resize(std::size_t(n_));
  for (index_t pos = 0; pos < n_; ++pos)
    inv_perm_[std::size_t(perm_[std::size_t(pos)])] = pos;
}

void ClusterTree::build(Node* node, const SplitFn& split) {
  if (node->level == depth_) return;  // leaf
  std::span<index_t> idx(perm_.data() + node->begin,
                         std::size_t(node->count));
  const index_t half = node->count - node->count / 2;  // left gets the ceil
  if (split) split(idx, half);

  node->left_child = std::make_unique<Node>();
  node->right_child = std::make_unique<Node>();
  Node* l = node->left();
  Node* r = node->right();
  l->parent = r->parent = node;
  l->level = r->level = node->level + 1;
  l->morton = node->morton.child(false);
  r->morton = node->morton.child(true);
  l->begin = node->begin;
  l->count = half;
  r->begin = node->begin + half;
  r->count = node->count - half;
  build(l, split);
  build(r, split);
}

template <typename T>
SplitFn metric_split(const Metric<T>& metric, Prng& rng, bool randomized,
                     index_t num_centroid_samples) {
  // The Prng reference must outlive the returned callable.
  return [&metric, &rng, randomized,
          num_centroid_samples](std::span<index_t> idx, index_t half) {
    const index_t n = index_t(idx.size());
    if (n < 2 || half <= 0 || half >= n) return;

    index_t p = 0;
    index_t q = 0;
    std::vector<double> dist(static_cast<std::size_t>(n));
    if (randomized) {
      // Random projection tree: p, q are random distinct indices.
      p = rng.below(n);
      do {
        q = rng.below(n);
      } while (q == p && n > 1);
    } else {
      // Algorithm 2.1: approximate centroid from a small sample, then
      // p = farthest-from-centroid and q = farthest-from-p.
      const index_t nc = std::min<index_t>(num_centroid_samples, n);
      std::vector<index_t> samples(static_cast<std::size_t>(nc));
      for (auto& s : samples) s = idx[std::size_t(rng.below(n))];
      const auto c = metric.centroid(samples);
      metric.to_centroid_batch(idx, c, dist.data());
      p = index_t(std::max_element(dist.begin(), dist.end()) - dist.begin());
    }

    metric.pairwise_batch(idx, idx[std::size_t(p)], dist.data());
    if (!randomized)
      q = index_t(std::max_element(dist.begin(), dist.end()) - dist.begin());

    // Projection value d(i, p) − d(i, q); partition on the median so the
    // left child receives the half closer to p.
    std::vector<double> dq(static_cast<std::size_t>(n));
    metric.pairwise_batch(idx, idx[std::size_t(q)], dq.data());
    std::vector<index_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), index_t(0));
    std::nth_element(order.begin(), order.begin() + half, order.end(),
                     [&](index_t a, index_t b) {
                       return dist[std::size_t(a)] - dq[std::size_t(a)] <
                              dist[std::size_t(b)] - dq[std::size_t(b)];
                     });
    std::vector<index_t> reordered(static_cast<std::size_t>(n));
    for (index_t t = 0; t < n; ++t)
      reordered[std::size_t(t)] = idx[std::size_t(order[std::size_t(t)])];
    std::copy(reordered.begin(), reordered.end(), idx.begin());
  };
}

SplitFn random_split(Prng& rng) {
  return [&rng](std::span<index_t> idx, index_t /*half*/) {
    // Fisher-Yates shuffle; halving the shuffled order is a random split.
    for (index_t i = index_t(idx.size()) - 1; i > 0; --i) {
      const index_t j = rng.below(i + 1);
      std::swap(idx[std::size_t(i)], idx[std::size_t(j)]);
    }
  };
}

template <typename T>
ClusterTree build_tree(const SPDMatrix<T>& k, const Metric<T>& metric,
                       index_t leaf_size, Prng& rng) {
  switch (metric.kind()) {
    case DistanceKind::Lexicographic:
      return ClusterTree(k.size(), leaf_size, SplitFn{});
    case DistanceKind::Random:
      return ClusterTree(k.size(), leaf_size, random_split(rng));
    default:
      return ClusterTree(k.size(), leaf_size, metric_split(metric, rng));
  }
}

template SplitFn metric_split<float>(const Metric<float>&, Prng&, bool,
                                     index_t);
template SplitFn metric_split<double>(const Metric<double>&, Prng&, bool,
                                      index_t);
template ClusterTree build_tree<float>(const SPDMatrix<float>&,
                                       const Metric<float>&, index_t, Prng&);
template ClusterTree build_tree<double>(const SPDMatrix<double>&,
                                        const Metric<double>&, index_t, Prng&);

}  // namespace gofmm::tree
