// Variable-coefficient PDE operators and their SPD inverse matrices
// (the paper's K12-K18).
//
// Each generator assembles a discrete operator A (finite-difference or
// pseudo-spectral), symmetrises it as A^T A + σI (the paper's operators are
// inverses of possibly nonsymmetric discretisations), and materialises the
// dense SPD inverse with the library's own Cholesky. Generation always runs
// in double precision and casts to the requested type at the end.
#pragma once

#include "la/matrix.hpp"
#include "util/common.hpp"

namespace gofmm::zoo {

/// Chebyshev differentiation matrix of order n on [-1, 1] (standard
/// Trefethen construction); the building block of the pseudo-spectral
/// operators K15-K17.
la::Matrix<double> chebyshev_diff(index_t n);

/// K12-K14: 2-D advection-diffusion with highly variable coefficients on a
/// grid_side² grid. `variant` in {0,1,2} selects the coefficient field and
/// the Péclet number (K12 mild, K13/K14 sharper fields — the matrices whose
/// rank the paper's adaptive ID underestimates).
/// Returns K = (AᵀA + σI)⁻¹.
template <typename T>
la::Matrix<T> advection_diffusion_2d(index_t grid_side, int variant,
                                     double sigma = 1e-2);

/// K15-K16: 2-D pseudo-spectral advection-diffusion-reaction operator with
/// variable coefficients on an n×n Chebyshev grid; `variant` in {0,1}.
/// These have high off-diagonal rank — the paper's "does not compress"
/// cases. Returns K = (AᵀA + σI)⁻¹.
template <typename T>
la::Matrix<T> pseudospectral_2d(index_t cheb_n, int variant,
                                double sigma = 1e-2);

/// K17: 3-D pseudo-spectral operator with variable coefficients on an
/// n×n×n Chebyshev grid. Returns K = (AᵀA + σI)⁻¹.
template <typename T>
la::Matrix<T> pseudospectral_3d(index_t cheb_n, double sigma = 1e-2);

/// K18: inverse squared 3-D variable-coefficient Laplacian on a
/// grid_side³ grid: K = (A_spd)⁻², A_spd the SPD 7-point discretisation of
/// -∇·(a(x)∇).
template <typename T>
la::Matrix<T> inverse_squared_laplacian_3d(index_t grid_side,
                                           double sigma = 1e-2);

extern template la::Matrix<float> advection_diffusion_2d<float>(index_t, int,
                                                                double);
extern template la::Matrix<double> advection_diffusion_2d<double>(index_t, int,
                                                                  double);
extern template la::Matrix<float> pseudospectral_2d<float>(index_t, int,
                                                           double);
extern template la::Matrix<double> pseudospectral_2d<double>(index_t, int,
                                                             double);
extern template la::Matrix<float> pseudospectral_3d<float>(index_t, double);
extern template la::Matrix<double> pseudospectral_3d<double>(index_t, double);
extern template la::Matrix<float> inverse_squared_laplacian_3d<float>(index_t,
                                                                      double);
extern template la::Matrix<double> inverse_squared_laplacian_3d<double>(
    index_t, double);

}  // namespace gofmm::zoo
