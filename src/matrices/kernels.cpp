#include "matrices/kernels.hpp"

#include <cmath>

#include "la/blas.hpp"

namespace gofmm::zoo {

std::string to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::Gaussian:
      return "gaussian";
    case KernelKind::Exponential:
      return "exponential";
    case KernelKind::InverseMultiquadric:
      return "imq";
    case KernelKind::Polynomial:
      return "polynomial";
    case KernelKind::Cosine:
      return "cosine";
  }
  return "?";
}

template <typename T>
KernelSPD<T>::KernelSPD(la::Matrix<T> points, KernelParams params)
    : points_(std::move(points)), params_(params) {
  require(points_.cols() > 0, "KernelSPD: empty point set");
  norm2_.resize(std::size_t(points_.cols()));
  for (index_t i = 0; i < points_.cols(); ++i) {
    const T* x = points_.col(i);
    double s = 0;
    for (index_t d = 0; d < points_.rows(); ++d)
      s += double(x[d]) * double(x[d]);
    norm2_[std::size_t(i)] = s;
  }
}

template <typename T>
T KernelSPD<T>::apply_kernel(double dot_ij, double n2_i, double n2_j) const {
  switch (params_.kind) {
    case KernelKind::Gaussian: {
      const double r2 = std::max(0.0, n2_i + n2_j - 2.0 * dot_ij);
      const double h = params_.bandwidth;
      return T(std::exp(-r2 / (2.0 * h * h)));
    }
    case KernelKind::Exponential: {
      const double r2 = std::max(0.0, n2_i + n2_j - 2.0 * dot_ij);
      return T(std::exp(-std::sqrt(r2) / params_.bandwidth));
    }
    case KernelKind::InverseMultiquadric: {
      const double r2 = std::max(0.0, n2_i + n2_j - 2.0 * dot_ij);
      const double c = params_.bandwidth;
      return T(1.0 / std::sqrt(r2 + c * c));
    }
    case KernelKind::Polynomial: {
      const double base =
          dot_ij / double(points_.rows()) + params_.bandwidth;
      return T(std::pow(base, params_.degree));
    }
    case KernelKind::Cosine: {
      const double denom = std::sqrt(std::max(1e-300, n2_i * n2_j));
      return T(dot_ij / denom);
    }
  }
  return T(0);
}

template <typename T>
T KernelSPD<T>::entry(index_t i, index_t j) const {
  const T* xi = points_.col(i);
  const T* xj = points_.col(j);
  double dot_ij = 0;
  for (index_t d = 0; d < points_.rows(); ++d)
    dot_ij += double(xi[d]) * double(xj[d]);
  T v = apply_kernel(dot_ij, norm2_[std::size_t(i)], norm2_[std::size_t(j)]);
  if (i == j) v += T(params_.ridge);
  return v;
}

template <typename T>
la::Matrix<T> KernelSPD<T>::submatrix(std::span<const index_t> I,
                                      std::span<const index_t> J) const {
  // Batched: one GEMM for all inner products X_I^T X_J, then the scalar
  // kernel map. This is the "compute K_βα with a GEMM using the 2-norm
  // expansion" optimisation of the paper's §4 ARM experiments.
  const index_t mi = index_t(I.size());
  const index_t mj = index_t(J.size());
  const index_t d = points_.rows();
  la::Matrix<T> xi(d, mi);
  la::Matrix<T> xj(d, mj);
  for (index_t a = 0; a < mi; ++a)
    std::copy_n(points_.col(I[std::size_t(a)]), d, xi.col(a));
  for (index_t b = 0; b < mj; ++b)
    std::copy_n(points_.col(J[std::size_t(b)]), d, xj.col(b));
  la::Matrix<T> dots(mi, mj);
  la::gemm(la::Op::Trans, la::Op::None, T(1), xi, xj, T(0), dots);

  la::Matrix<T> out(mi, mj);
  for (index_t b = 0; b < mj; ++b) {
    const index_t jb = J[std::size_t(b)];
    for (index_t a = 0; a < mi; ++a) {
      const index_t ia = I[std::size_t(a)];
      T v = apply_kernel(double(dots(a, b)), norm2_[std::size_t(ia)],
                         norm2_[std::size_t(jb)]);
      if (ia == jb) v += T(params_.ridge);
      out(a, b) = v;
    }
  }
  return out;
}

template class KernelSPD<float>;
template class KernelSPD<double>;

}  // namespace gofmm::zoo
