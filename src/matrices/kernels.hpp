// Kernel matrices K_ij = K(x_i, x_j): the lazily-evaluated SPD oracles of
// the zoo (paper's K04-K10 and the machine-learning Gaussian matrices).
//
// Entries are computed on demand from stored point coordinates (the paper's
// "compute K_ij on the fly" mode used on memory-limited platforms);
// submatrix gathers batch the inner products through GEMM.
#pragma once

#include <memory>
#include <string>

#include "core/spd_matrix.hpp"
#include "la/matrix.hpp"

namespace gofmm::zoo {

/// Kernel function families used by the matrix zoo.
enum class KernelKind {
  Gaussian,             ///< exp(-r² / (2h²))
  Exponential,          ///< exp(-r / h)           (Matérn-1/2)
  InverseMultiquadric,  ///< 1 / sqrt(r² + c²)     (Laplace-Green stand-in)
  Polynomial,           ///< (x·y/d + c)^p
  Cosine,               ///< x·y / (‖x‖ ‖y‖)
};

std::string to_string(KernelKind kind);

/// Parameters of a kernel matrix.
struct KernelParams {
  KernelKind kind = KernelKind::Gaussian;
  double bandwidth = 1.0;  ///< h for Gaussian/Exponential, c for IMQ/poly
  double degree = 3.0;     ///< polynomial degree p
  double ridge = 1e-5;     ///< diagonal regularisation (guarantees SPD)
};

/// SPD kernel matrix over a d-by-N point set. Thread-safe entry access.
template <typename T>
class KernelSPD final : public SPDMatrix<T> {
 public:
  /// Takes ownership of the points (column i = x_i).
  KernelSPD(la::Matrix<T> points, KernelParams params);

  [[nodiscard]] index_t size() const override { return points_.cols(); }
  [[nodiscard]] T entry(index_t i, index_t j) const override;
  [[nodiscard]] la::Matrix<T> submatrix(
      std::span<const index_t> I, std::span<const index_t> J) const override;
  [[nodiscard]] const la::Matrix<T>* points() const override {
    return &points_;
  }
  [[nodiscard]] const KernelParams& params() const { return params_; }

 private:
  [[nodiscard]] T apply_kernel(double dot_ij, double n2_i, double n2_j) const;

  la::Matrix<T> points_;       ///< d-by-N coordinates
  std::vector<double> norm2_;  ///< cached squared norms ‖x_i‖²
  KernelParams params_;
};

extern template class KernelSPD<float>;
extern template class KernelSPD<double>;

}  // namespace gofmm::zoo
