#include "matrices/graphs.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "la/lapack.hpp"
#include "util/prng.hpp"

namespace gofmm::zoo {

namespace {

/// Removes duplicate and self edges, normalising (a, b) with a < b.
void canonicalise(Graph& g) {
  for (auto& [a, b] : g.edges)
    if (a > b) std::swap(a, b);
  std::sort(g.edges.begin(), g.edges.end());
  g.edges.erase(std::unique(g.edges.begin(), g.edges.end()), g.edges.end());
  g.edges.erase(std::remove_if(g.edges.begin(), g.edges.end(),
                               [](const auto& e) { return e.first == e.second; }),
                g.edges.end());
}

}  // namespace

Graph power_grid_graph(index_t n, std::uint64_t seed) {
  const index_t side = index_t(std::floor(std::sqrt(double(n))));
  Graph g;
  g.n = side * side;
  for (index_t i = 0; i < side; ++i)
    for (index_t j = 0; j < side; ++j) {
      const index_t v = i * side + j;
      if (i + 1 < side) g.edges.emplace_back(v, v + side);
      if (j + 1 < side) g.edges.emplace_back(v, v + 1);
    }
  // ~2% long-range transmission links.
  Prng rng(seed);
  const index_t extra = std::max<index_t>(1, g.n / 50);
  for (index_t t = 0; t < extra; ++t)
    g.edges.emplace_back(rng.below(g.n), rng.below(g.n));
  canonicalise(g);
  return g;
}

Graph quasi_banded_graph(index_t n, std::uint64_t seed) {
  Graph g;
  g.n = n;
  Prng rng(seed);
  for (index_t i = 0; i < n; ++i) {
    for (index_t b = 1; b <= 2; ++b)
      if (i + b < n) g.edges.emplace_back(i, i + b);
    // Heavy-tailed extra links: a few hub vertices attract many edges.
    if (rng.uniform() < 0.15) {
      const index_t hub = rng.below(std::max<index_t>(1, n / 20));
      g.edges.emplace_back(i, hub);
    }
  }
  canonicalise(g);
  return g;
}

Graph random_geometric_graph(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[std::size_t(i)] = rng.uniform();
    y[std::size_t(i)] = rng.uniform();
  }
  // Radius for expected degree ~8: pi r^2 n = 8.
  const double r2 = 8.0 / (M_PI * double(n));
  Graph g;
  g.n = n;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) {
      const double dx = x[std::size_t(i)] - x[std::size_t(j)];
      const double dy = y[std::size_t(i)] - y[std::size_t(j)];
      if (dx * dx + dy * dy <= r2) g.edges.emplace_back(i, j);
    }

  // Average degree 8 sits near the RGG connectivity threshold; stitch the
  // components together (the reference UFL graph rgg_n_2_16_s0 is
  // connected) by linking each component's representative to the nearest
  // vertex outside it.
  std::vector<index_t> comp(static_cast<std::size_t>(n), -1);
  {
    std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(n));
    for (const auto& [a, b] : g.edges) {
      adj[std::size_t(a)].push_back(b);
      adj[std::size_t(b)].push_back(a);
    }
    index_t ncomp = 0;
    for (index_t s = 0; s < n; ++s) {
      if (comp[std::size_t(s)] >= 0) continue;
      std::vector<index_t> stack{s};
      comp[std::size_t(s)] = ncomp;
      while (!stack.empty()) {
        const index_t v = stack.back();
        stack.pop_back();
        for (index_t w : adj[std::size_t(v)])
          if (comp[std::size_t(w)] < 0) {
            comp[std::size_t(w)] = ncomp;
            stack.push_back(w);
          }
      }
      ++ncomp;
    }
    while (ncomp > 1) {
      // Link the closest pair between component 0 and any other, merge.
      double best = 1e300;
      index_t bi = -1;
      index_t bj = -1;
      for (index_t i = 0; i < n; ++i) {
        if (comp[std::size_t(i)] != 0) continue;
        for (index_t j = 0; j < n; ++j) {
          if (comp[std::size_t(j)] == 0) continue;
          const double dx = x[std::size_t(i)] - x[std::size_t(j)];
          const double dy = y[std::size_t(i)] - y[std::size_t(j)];
          const double d = dx * dx + dy * dy;
          if (d < best) {
            best = d;
            bi = i;
            bj = j;
          }
        }
      }
      g.edges.emplace_back(bi, bj);
      const index_t merged = comp[std::size_t(bj)];
      for (index_t v = 0; v < n; ++v)
        if (comp[std::size_t(v)] == merged) comp[std::size_t(v)] = 0;
      --ncomp;
    }
  }
  canonicalise(g);
  return g;
}

Graph banded_perturbed_graph(index_t n, std::uint64_t seed) {
  Graph g;
  g.n = n;
  for (index_t i = 0; i < n; ++i)
    for (index_t b = 1; b <= 4; ++b)
      if (i + b < n) g.edges.emplace_back(i, i + b);
  Prng rng(seed);
  for (index_t t = 0; t < n / 10; ++t)
    g.edges.emplace_back(rng.below(n), rng.below(n));
  canonicalise(g);
  return g;
}

Graph torus_4d_graph(index_t n) {
  index_t t = 2;
  while ((t + 1) * (t + 1) * (t + 1) * (t + 1) <= n) ++t;
  Graph g;
  g.n = t * t * t * t;
  auto id = [t](index_t a, index_t b, index_t c, index_t d) {
    return ((a * t + b) * t + c) * t + d;
  };
  for (index_t a = 0; a < t; ++a)
    for (index_t b = 0; b < t; ++b)
      for (index_t c = 0; c < t; ++c)
        for (index_t d = 0; d < t; ++d) {
          g.edges.emplace_back(id(a, b, c, d), id((a + 1) % t, b, c, d));
          g.edges.emplace_back(id(a, b, c, d), id(a, (b + 1) % t, c, d));
          g.edges.emplace_back(id(a, b, c, d), id(a, b, (c + 1) % t, d));
          g.edges.emplace_back(id(a, b, c, d), id(a, b, c, (d + 1) % t));
        }
  canonicalise(g);
  return g;
}

template <typename T>
la::Matrix<T> graph_inverse_laplacian(const Graph& g, double sigma) {
  require(g.n > 0, "graph_inverse_laplacian: empty graph");
  la::Matrix<double> lap(g.n, g.n);
  for (const auto& [a, b] : g.edges) {
    lap(a, b) -= 1.0;
    lap(b, a) -= 1.0;
    lap(a, a) += 1.0;
    lap(b, b) += 1.0;
  }
  for (index_t i = 0; i < g.n; ++i) lap(i, i) += sigma;
  la::Matrix<double> inv = la::spd_inverse(std::move(lap));
  if constexpr (std::is_same_v<T, double>) {
    return inv;
  } else {
    la::Matrix<T> out(inv.rows(), inv.cols());
    for (index_t j = 0; j < inv.cols(); ++j)
      for (index_t i = 0; i < inv.rows(); ++i) out(i, j) = T(inv(i, j));
    return out;
  }
}

template la::Matrix<float> graph_inverse_laplacian<float>(const Graph&,
                                                          double);
template la::Matrix<double> graph_inverse_laplacian<double>(const Graph&,
                                                            double);

}  // namespace gofmm::zoo
