#include "matrices/pointcloud.hpp"

#include <cmath>

#include "util/prng.hpp"

namespace gofmm::zoo {

template <typename T>
la::Matrix<T> uniform_cloud(index_t d, index_t n, std::uint64_t seed) {
  return la::Matrix<T>::random_uniform(d, n, seed);
}

template <typename T>
la::Matrix<T> gaussian_mixture_cloud(index_t d, index_t n, index_t clusters,
                                     double spread, std::uint64_t seed) {
  require(clusters > 0, "gaussian_mixture_cloud: need at least one cluster");
  Prng rng(seed);
  la::Matrix<T> centers(d, clusters);
  la::Matrix<T> scales(d, clusters);
  for (index_t c = 0; c < clusters; ++c)
    for (index_t k = 0; k < d; ++k) {
      centers(k, c) = T(rng.uniform());
      scales(k, c) = T(rng.uniform(0.02, spread));
    }
  la::Matrix<T> pts(d, n);
  for (index_t i = 0; i < n; ++i) {
    const index_t c = rng.below(clusters);
    for (index_t k = 0; k < d; ++k)
      pts(k, i) = centers(k, c) + scales(k, c) * T(rng.normal());
  }
  return pts;
}

template <typename T>
la::Matrix<T> two_blob_cloud(index_t d, index_t n, double separation,
                             std::uint64_t seed) {
  Prng rng(seed);
  la::Matrix<T> pts(d, n);
  for (index_t i = 0; i < n; ++i) {
    const double shift = (rng.uniform() < 0.5) ? 0.0 : separation;
    for (index_t k = 0; k < d; ++k)
      pts(k, i) = T(rng.normal() + (k == 0 ? shift : 0.0));
  }
  return pts;
}

template <typename T>
la::Matrix<T> manifold_cloud(index_t ambient_d, index_t latent_d, index_t n,
                             std::uint64_t seed) {
  require(latent_d <= ambient_d,
          "manifold_cloud: latent dimension exceeds ambient");
  Prng rng(seed);
  // Random lift A (ambient x latent) and per-coordinate phases; the image
  // x = sin(A z + phi) is a smooth latent_d-dimensional manifold.
  la::Matrix<double> lift(ambient_d, latent_d);
  std::vector<double> phase(static_cast<std::size_t>(ambient_d));
  for (index_t a = 0; a < ambient_d; ++a) {
    phase[std::size_t(a)] = rng.uniform(0.0, 6.28318530717958648);
    for (index_t l = 0; l < latent_d; ++l) lift(a, l) = rng.normal();
  }
  la::Matrix<T> pts(ambient_d, n);
  std::vector<double> z(static_cast<std::size_t>(latent_d));
  for (index_t i = 0; i < n; ++i) {
    for (auto& v : z) v = rng.uniform();
    for (index_t a = 0; a < ambient_d; ++a) {
      double s = phase[std::size_t(a)];
      for (index_t l = 0; l < latent_d; ++l)
        s += lift(a, l) * z[std::size_t(l)];
      pts(a, i) = T(std::sin(s));
    }
  }
  return pts;
}

template la::Matrix<float> uniform_cloud<float>(index_t, index_t,
                                                std::uint64_t);
template la::Matrix<double> uniform_cloud<double>(index_t, index_t,
                                                  std::uint64_t);
template la::Matrix<float> gaussian_mixture_cloud<float>(index_t, index_t,
                                                         index_t, double,
                                                         std::uint64_t);
template la::Matrix<double> gaussian_mixture_cloud<double>(index_t, index_t,
                                                           index_t, double,
                                                           std::uint64_t);
template la::Matrix<float> two_blob_cloud<float>(index_t, index_t, double,
                                                 std::uint64_t);
template la::Matrix<double> two_blob_cloud<double>(index_t, index_t, double,
                                                   std::uint64_t);
template la::Matrix<float> manifold_cloud<float>(index_t, index_t, index_t,
                                                 std::uint64_t);
template la::Matrix<double> manifold_cloud<double>(index_t, index_t, index_t,
                                                   std::uint64_t);

}  // namespace gofmm::zoo
