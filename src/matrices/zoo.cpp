#include "matrices/zoo.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "matrices/graphs.hpp"
#include "matrices/kernels.hpp"
#include "matrices/operators.hpp"
#include "matrices/pointcloud.hpp"
#include "matrices/stencil.hpp"

namespace gofmm::zoo {

namespace {

// ---------------------------------------------------------------- cache --

std::filesystem::path cache_dir() {
  if (const char* env = std::getenv("GOFMM_CACHE_DIR")) return env;
  return "zoo_cache";
}

template <typename T>
std::filesystem::path cache_path(const std::string& key) {
  const char* tag = std::is_same_v<T, float> ? "f32" : "f64";
  return cache_dir() / (key + "_" + tag + ".bin");
}

template <typename T>
std::optional<la::Matrix<T>> cache_load(const std::string& key) {
  const auto path = cache_path<T>(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof rows);
  in.read(reinterpret_cast<char*>(&cols), sizeof cols);
  if (!in || rows <= 0 || cols <= 0) return std::nullopt;
  la::Matrix<T> m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          std::streamsize(sizeof(T)) * m.size());
  if (!in) return std::nullopt;
  return m;
}

template <typename T>
void cache_store(const std::string& key, const la::Matrix<T>& m) {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir(), ec);
  if (ec) return;  // cache is best-effort
  const auto path = cache_path<T>(key);
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return;
    const std::int64_t rows = m.rows();
    const std::int64_t cols = m.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof rows);
    out.write(reinterpret_cast<const char*>(&cols), sizeof cols);
    out.write(reinterpret_cast<const char*>(m.data()),
              std::streamsize(sizeof(T)) * m.size());
    if (!out) return;
  }
  std::filesystem::rename(tmp, path, ec);
}

/// Runs `gen()` unless the result is cached; caches afterwards.
template <typename T, typename Gen>
la::Matrix<T> cached(const std::string& key, Gen&& gen) {
  if (auto hit = cache_load<T>(key)) return std::move(*hit);
  la::Matrix<T> m = gen();
  cache_store(key, m);
  return m;
}

// ----------------------------------------------------------- coordinates --

/// 2-D grid coordinates (2-by-n²), matching the p = i*n + j ordering.
template <typename T>
la::Matrix<T> grid_points_2d(index_t n) {
  la::Matrix<T> pts(2, n * n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      pts(0, i * n + j) = T(double(i + 1) / double(n + 1));
      pts(1, i * n + j) = T(double(j + 1) / double(n + 1));
    }
  return pts;
}

template <typename T>
la::Matrix<T> grid_points_3d(index_t n) {
  la::Matrix<T> pts(3, n * n * n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      for (index_t k = 0; k < n; ++k) {
        const index_t p = (i * n + j) * n + k;
        pts(0, p) = T(double(i + 1) / double(n + 1));
        pts(1, p) = T(double(j + 1) / double(n + 1));
        pts(2, p) = T(double(k + 1) / double(n + 1));
      }
  return pts;
}

template <typename T>
la::Matrix<T> cheb_points_2d(index_t n) {
  la::Matrix<T> pts(2, n * n);
  auto node = [n](index_t i) {
    return 0.5 * (1.0 + std::cos(M_PI * double(i) / double(n - 1)));
  };
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      pts(0, i * n + j) = T(node(i));
      pts(1, i * n + j) = T(node(j));
    }
  return pts;
}

template <typename T>
la::Matrix<T> cheb_points_3d(index_t n) {
  la::Matrix<T> pts(3, n * n * n);
  auto node = [n](index_t i) {
    return 0.5 * (1.0 + std::cos(M_PI * double(i) / double(n - 1)));
  };
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      for (index_t k = 0; k < n; ++k) {
        const index_t p = (i * n + j) * n + k;
        pts(0, p) = T(node(i));
        pts(1, p) = T(node(j));
        pts(2, p) = T(node(k));
      }
  return pts;
}

index_t isqrt_floor(index_t n) {
  return index_t(std::floor(std::sqrt(double(n))));
}
index_t icbrt_floor(index_t n) {
  index_t c = index_t(std::floor(std::cbrt(double(n))));
  while ((c + 1) * (c + 1) * (c + 1) <= n) ++c;
  return c;
}

template <typename T>
std::unique_ptr<SPDMatrix<T>> dense_with_points(la::Matrix<T> k,
                                                la::Matrix<T> pts) {
  auto m = std::make_unique<DenseSPD<T>>(std::move(k));
  m->set_points(std::move(pts));
  return m;
}

/// 6-D uniform cloud + kernel (the K04-K10 recipe).
template <typename T>
std::unique_ptr<SPDMatrix<T>> kernel6d(index_t n, KernelParams params,
                                       std::uint64_t seed) {
  return std::make_unique<KernelSPD<T>>(uniform_cloud<T>(6, n, seed), params);
}

}  // namespace

const std::vector<ZooInfo>& catalog() {
  static const std::vector<ZooInfo> entries = {
      {"K02", "2D regularized inverse Laplacian squared", 4096, true, false},
      {"K03", "2D Helmholtz-like oscillatory inverse", 4096, true, false},
      {"K04", "Gaussian kernel 6D, medium bandwidth", 4096, true, true},
      {"K05", "Gaussian kernel 6D, wide bandwidth", 4096, true, true},
      {"K06", "Gaussian kernel 6D, narrow bandwidth (high rank)", 4096, true,
       true},
      {"K07", "inverse multiquadric 6D (Laplace-Green-like)", 4096, true,
       true},
      {"K08", "exponential (Matern-1/2) kernel 6D", 4096, true, true},
      {"K09", "polynomial kernel 6D, degree 3", 4096, true, true},
      {"K10", "cosine-similarity kernel 6D", 4096, true, true},
      {"K12", "2D advection-diffusion inverse, mild coefficients", 2304, true,
       false},
      {"K13", "2D advection-diffusion inverse, strong contrast", 2304, true,
       false},
      {"K14", "2D advection-diffusion inverse, strong advection", 2304, true,
       false},
      {"K15", "2D pseudo-spectral ADR inverse, variant 0", 1600, true, false},
      {"K16", "2D pseudo-spectral ADR inverse, variant 1", 1600, true, false},
      {"K17", "3D pseudo-spectral inverse", 1728, true, false},
      {"K18", "3D inverse squared variable-coefficient Laplacian", 2197, true,
       false},
      {"G01", "inverse Laplacian, power-grid-like graph", 2025, false, false},
      {"G02", "inverse Laplacian, quasi-banded web-like graph", 2048, false,
       false},
      {"G03", "inverse Laplacian, random geometric graph", 2048, false, false},
      {"G04", "inverse Laplacian, banded perturbed graph", 2048, false, false},
      {"G05", "inverse Laplacian, 4D torus lattice (QCD-like)", 2401, false,
       false},
      {"COVTYPE", "Gaussian kernel, 54D clustered cloud", 4096, true, true},
      {"HIGGS", "Gaussian kernel, 28D two-blob cloud", 4096, true, true},
      {"MNIST", "Gaussian kernel, 780D manifold cloud", 2048, true, true},
  };
  return entries;
}

const ZooInfo& info(const std::string& name) {
  for (const auto& e : catalog())
    if (e.name == name) return e;
  throw std::invalid_argument("zoo: unknown matrix " + name);
}

template <typename T>
std::unique_ptr<SPDMatrix<T>> make_dataset_kernel(const std::string& dataset,
                                                  index_t n, double h) {
  KernelParams params;
  params.kind = KernelKind::Gaussian;
  params.bandwidth = h;
  params.ridge = 1e-5;
  if (dataset == "COVTYPE") {
    return std::make_unique<KernelSPD<T>>(
        gaussian_mixture_cloud<T>(54, n, 20, 0.3, 1001), params);
  }
  if (dataset == "HIGGS") {
    return std::make_unique<KernelSPD<T>>(two_blob_cloud<T>(28, n, 2.0, 1002),
                                          params);
  }
  if (dataset == "MNIST") {
    la::Matrix<T> pts = manifold_cloud<T>(780, 10, n, 1003);
    // Scale so typical pairwise kernel values spread over (0, 1) under the
    // paper's h = 1 setting (median squared distance ~ 4); without this
    // the 780-D ambient blows every pair out to K_ij ~ 0 and the matrix
    // degenerates to the identity plus a few near-duplicate spikes.
    for (index_t t = 0; t < pts.size(); ++t) pts.data()[t] *= T(0.07);
    return std::make_unique<KernelSPD<T>>(std::move(pts), params);
  }
  throw std::invalid_argument("zoo: unknown dataset " + dataset);
}

template <typename T>
std::unique_ptr<SPDMatrix<T>> make_matrix(const std::string& name, index_t n) {
  const ZooInfo& entry = info(name);
  if (n <= 0) n = entry.default_n;
  const std::string key = name + "_" + std::to_string(n);

  auto gauss6 = [&](double h) {
    KernelParams p;
    p.kind = KernelKind::Gaussian;
    p.bandwidth = h;
    return kernel6d<T>(n, p, 11);
  };

  if (name == "K02") {
    const index_t side = isqrt_floor(n);
    return dense_with_points<T>(
        cached<T>(key, [&] { return k02_inverse_laplacian_squared<T>(side); }),
        grid_points_2d<T>(side));
  }
  if (name == "K03") {
    const index_t side = isqrt_floor(n);
    return dense_with_points<T>(
        cached<T>(key, [&] { return k03_helmholtz_like<T>(side); }),
        grid_points_2d<T>(side));
  }
  if (name == "K04") return gauss6(1.0);
  if (name == "K05") return gauss6(3.0);
  if (name == "K06") return gauss6(0.3);
  if (name == "K07") {
    KernelParams p;
    p.kind = KernelKind::InverseMultiquadric;
    p.bandwidth = 0.5;
    return kernel6d<T>(n, p, 11);
  }
  if (name == "K08") {
    KernelParams p;
    p.kind = KernelKind::Exponential;
    p.bandwidth = 1.0;
    return kernel6d<T>(n, p, 11);
  }
  if (name == "K09") {
    KernelParams p;
    p.kind = KernelKind::Polynomial;
    p.bandwidth = 1.0;
    p.degree = 3.0;
    p.ridge = 1e-3;
    return kernel6d<T>(n, p, 11);
  }
  if (name == "K10") {
    KernelParams p;
    p.kind = KernelKind::Cosine;
    p.ridge = 1e-3;
    return kernel6d<T>(n, p, 11);
  }
  if (name == "K12" || name == "K13" || name == "K14") {
    const int variant = name == "K12" ? 0 : (name == "K13" ? 1 : 2);
    const index_t side = isqrt_floor(n);
    return dense_with_points<T>(
        cached<T>(key,
                  [&] { return advection_diffusion_2d<T>(side, variant); }),
        grid_points_2d<T>(side));
  }
  if (name == "K15" || name == "K16") {
    const int variant = name == "K15" ? 0 : 1;
    const index_t side = isqrt_floor(n);
    return dense_with_points<T>(
        cached<T>(key, [&] { return pseudospectral_2d<T>(side, variant); }),
        cheb_points_2d<T>(side));
  }
  if (name == "K17") {
    const index_t side = icbrt_floor(n);
    return dense_with_points<T>(
        cached<T>(key, [&] { return pseudospectral_3d<T>(side); }),
        cheb_points_3d<T>(side));
  }
  if (name == "K18") {
    const index_t side = icbrt_floor(n);
    return dense_with_points<T>(
        cached<T>(key, [&] { return inverse_squared_laplacian_3d<T>(side); }),
        grid_points_3d<T>(side));
  }
  if (name[0] == 'G') {
    Graph g;
    if (name == "G01") g = power_grid_graph(n, 21);
    else if (name == "G02") g = quasi_banded_graph(n, 22);
    else if (name == "G03") g = random_geometric_graph(n, 23);
    else if (name == "G04") g = banded_perturbed_graph(n, 24);
    else g = torus_4d_graph(n);
    const std::string gkey = name + "_" + std::to_string(g.n);
    return std::make_unique<DenseSPD<T>>(
        cached<T>(gkey, [&] { return graph_inverse_laplacian<T>(g); }));
  }
  if (name == "COVTYPE") return make_dataset_kernel<T>(name, n, 1.0);
  if (name == "HIGGS") return make_dataset_kernel<T>(name, n, 0.9);
  if (name == "MNIST") return make_dataset_kernel<T>(name, n, 1.0);
  throw std::invalid_argument("zoo: unhandled matrix " + name);
}

template std::unique_ptr<SPDMatrix<float>> make_matrix<float>(
    const std::string&, index_t);
template std::unique_ptr<SPDMatrix<double>> make_matrix<double>(
    const std::string&, index_t);
template std::unique_ptr<SPDMatrix<float>> make_dataset_kernel<float>(
    const std::string&, index_t, double);
template std::unique_ptr<SPDMatrix<double>> make_dataset_kernel<double>(
    const std::string&, index_t, double);

}  // namespace gofmm::zoo
