// Constant-coefficient inverse-operator matrices assembled exactly in the
// DST eigenbasis (the paper's K02 and K03).
//
// The 5-point Dirichlet Laplacian on an n-by-n grid diagonalises as
// L = (Q ⊗ Q) Λ (Q ⊗ Q)^T with Q the 1-D sine basis. Any spectral function
// K = (Q ⊗ Q) f(Λ) (Q ⊗ Q)^T can then be assembled densely in O(N^2.5)
// using one large GEMM over the separable structure — no O(N^3) inversion.
#pragma once

#include <functional>

#include "la/matrix.hpp"
#include "util/common.hpp"

namespace gofmm::zoo {

/// Assembles K with K[(i1,i2),(j1,j2)] = Σ_{k1,k2} f(λ_k1 + λ_k2) ·
/// q_{i1 k1} q_{j1 k1} q_{i2 k2} q_{j2 k2} for an n-by-n grid (N = n²).
/// Index convention: global row p = i1 * n + i2.
template <typename T>
la::Matrix<T> spectral_grid_matrix_2d(index_t n,
                                      const std::function<double(double)>& f);

/// K02: regularised inverse Laplacian squared, f(λ) = 1/(λ + σ)² — the
/// Hessian-like operator of a PDE-constrained optimisation problem.
template <typename T>
la::Matrix<T> k02_inverse_laplacian_squared(index_t grid_side,
                                            double sigma = 1e-2);

/// K03: oscillatory Helmholtz-like SPD surrogate, f(λ) = 1/((λ − k²)² + σ)
/// with k chosen for ~10 points per wavelength on the grid.
template <typename T>
la::Matrix<T> k03_helmholtz_like(index_t grid_side, double sigma = 1e-2);

extern template la::Matrix<float> spectral_grid_matrix_2d<float>(
    index_t, const std::function<double(double)>&);
extern template la::Matrix<double> spectral_grid_matrix_2d<double>(
    index_t, const std::function<double(double)>&);
extern template la::Matrix<float> k02_inverse_laplacian_squared<float>(
    index_t, double);
extern template la::Matrix<double> k02_inverse_laplacian_squared<double>(
    index_t, double);
extern template la::Matrix<float> k03_helmholtz_like<float>(index_t, double);
extern template la::Matrix<double> k03_helmholtz_like<double>(index_t, double);

}  // namespace gofmm::zoo
