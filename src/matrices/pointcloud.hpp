// Synthetic point-cloud generators.
//
// The paper's machine-learning matrices use COVTYPE (100K x 54D), HIGGS
// (500K x 28D) and MNIST (60K x 780D), none of which are available offline.
// These generators produce point sets with the same *structural* properties
// (dimension, clustering, intrinsic dimensionality), which is what
// determines the compressibility of the derived kernel matrices — see
// DESIGN.md §2 for the substitution rationale.
#pragma once

#include "la/matrix.hpp"
#include "util/common.hpp"

namespace gofmm::zoo {

/// i.i.d. uniform points in [0,1]^d (d-by-n, column = point).
/// Used for the paper's 6-D kernel matrices K04-K10.
template <typename T>
la::Matrix<T> uniform_cloud(index_t d, index_t n, std::uint64_t seed);

/// Mixture of `clusters` anisotropic Gaussians with uniform-random centers
/// in [0,1]^d and per-cluster axis scales in [0.02, spread]. Stand-in for
/// COVTYPE-like clustered cartographic data.
template <typename T>
la::Matrix<T> gaussian_mixture_cloud(index_t d, index_t n, index_t clusters,
                                     double spread, std::uint64_t seed);

/// Two overlapping isotropic blobs (signal/background), HIGGS-like.
template <typename T>
la::Matrix<T> two_blob_cloud(index_t d, index_t n, double separation,
                             std::uint64_t seed);

/// Low-dimensional manifold embedded in high ambient dimension: latent
/// uniform points in [0,1]^latent_d are lifted through a random linear map
/// followed by coordinate-wise sinusoids. MNIST-like (780 ambient, ~10
/// intrinsic dimensions).
template <typename T>
la::Matrix<T> manifold_cloud(index_t ambient_d, index_t latent_d, index_t n,
                             std::uint64_t seed);

extern template la::Matrix<float> uniform_cloud<float>(index_t, index_t,
                                                       std::uint64_t);
extern template la::Matrix<double> uniform_cloud<double>(index_t, index_t,
                                                         std::uint64_t);
extern template la::Matrix<float> gaussian_mixture_cloud<float>(
    index_t, index_t, index_t, double, std::uint64_t);
extern template la::Matrix<double> gaussian_mixture_cloud<double>(
    index_t, index_t, index_t, double, std::uint64_t);
extern template la::Matrix<float> two_blob_cloud<float>(index_t, index_t,
                                                        double, std::uint64_t);
extern template la::Matrix<double> two_blob_cloud<double>(index_t, index_t,
                                                          double,
                                                          std::uint64_t);
extern template la::Matrix<float> manifold_cloud<float>(index_t, index_t,
                                                        index_t,
                                                        std::uint64_t);
extern template la::Matrix<double> manifold_cloud<double>(index_t, index_t,
                                                          index_t,
                                                          std::uint64_t);

}  // namespace gofmm::zoo
