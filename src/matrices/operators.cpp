#include "matrices/operators.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/lapack.hpp"
#include "util/prng.hpp"

namespace gofmm::zoo {

namespace {

/// Sparse operator in triplet form; only what the generators need.
struct SparseOp {
  index_t n = 0;
  std::vector<index_t> row;
  std::vector<index_t> col;
  std::vector<double> val;

  void add(index_t r, index_t c, double v) {
    row.push_back(r);
    col.push_back(c);
    val.push_back(v);
  }

  /// Dense Gram matrix AᵀA + σI exploiting sparsity: group triplets by
  /// row, accumulate pairwise products. O(nnz²/n) instead of O(n³).
  [[nodiscard]] la::Matrix<double> normal_matrix(double sigma) const {
    la::Matrix<double> g(n, n);
    // Bucket triplet positions by row.
    std::vector<std::vector<index_t>> by_row(static_cast<std::size_t>(n));
    for (index_t t = 0; t < index_t(val.size()); ++t)
      by_row[std::size_t(row[std::size_t(t)])].push_back(t);
    for (const auto& bucket : by_row)
      for (index_t ta : bucket)
        for (index_t tb : bucket)
          g(col[std::size_t(ta)], col[std::size_t(tb)]) +=
              val[std::size_t(ta)] * val[std::size_t(tb)];
    for (index_t i = 0; i < n; ++i) g(i, i) += sigma;
    return g;
  }
};

/// Smooth pseudo-random coefficient field in [lo, hi] over the unit square
/// (sum of a few random Fourier modes) — "highly variable coefficients".
class CoeffField2d {
 public:
  CoeffField2d(std::uint64_t seed, double lo, double hi, index_t modes = 6)
      : lo_(lo), hi_(hi) {
    Prng rng(seed);
    for (index_t m = 0; m < modes; ++m) {
      fx_.push_back(rng.uniform(0.5, 4.5));
      fy_.push_back(rng.uniform(0.5, 4.5));
      ph_.push_back(rng.uniform(0.0, 6.283185307179586));
      amp_.push_back(rng.uniform(0.3, 1.0));
    }
  }

  [[nodiscard]] double operator()(double x, double y) const {
    double s = 0;
    double wsum = 0;
    for (std::size_t m = 0; m < fx_.size(); ++m) {
      s += amp_[m] * std::sin(2.0 * M_PI * (fx_[m] * x + fy_[m] * y) + ph_[m]);
      wsum += amp_[m];
    }
    const double t = 0.5 * (s / wsum + 1.0);  // in [0, 1]
    return lo_ + (hi_ - lo_) * t;
  }

 private:
  double lo_, hi_;
  std::vector<double> fx_, fy_, ph_, amp_;
};

/// Casts a double matrix to the requested scalar type.
template <typename T>
la::Matrix<T> cast_matrix(const la::Matrix<double>& a) {
  if constexpr (std::is_same_v<T, double>) {
    return a;
  } else {
    la::Matrix<T> out(a.rows(), a.cols());
    for (index_t j = 0; j < a.cols(); ++j)
      for (index_t i = 0; i < a.rows(); ++i) out(i, j) = T(a(i, j));
    return out;
  }
}

/// Dense inverse of the normal matrix (AᵀA + σI)⁻¹, symmetrised.
template <typename T>
la::Matrix<T> inverse_of_normal(const SparseOp& a, double sigma) {
  la::Matrix<double> g = a.normal_matrix(sigma);
  return cast_matrix<T>(la::spd_inverse(std::move(g)));
}

}  // namespace

la::Matrix<double> chebyshev_diff(index_t n) {
  require(n >= 2, "chebyshev_diff: order must be at least 2");
  // Nodes x_j = cos(pi j / (n-1)), j = 0..n-1 (Trefethen, Spectral Methods
  // in MATLAB, chapter 6).
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> c(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    x[std::size_t(j)] = std::cos(M_PI * double(j) / double(n - 1));
    c[std::size_t(j)] = (j == 0 || j == n - 1) ? 2.0 : 1.0;
    if (j % 2 == 1) c[std::size_t(j)] = -c[std::size_t(j)];
  }
  la::Matrix<double> d(n, n);
  for (index_t i = 0; i < n; ++i) {
    double rowsum = 0;
    for (index_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double v = (c[std::size_t(i)] / c[std::size_t(j)]) /
                       (x[std::size_t(i)] - x[std::size_t(j)]);
      d(i, j) = v;
      rowsum += v;
    }
    d(i, i) = -rowsum;  // negative row sums trick for the diagonal
  }
  return d;
}

template <typename T>
la::Matrix<T> advection_diffusion_2d(index_t grid_side, int variant,
                                     double sigma) {
  require(grid_side >= 3, "advection_diffusion_2d: grid too small");
  require(variant >= 0 && variant <= 2, "advection_diffusion_2d: variant");
  const index_t n = grid_side;
  const index_t nn = n * n;
  const double h = 1.0 / double(n + 1);

  // Variant 0 (K12): mild contrast, moderate advection.
  // Variant 1 (K13): strong contrast — the rank-underestimation case.
  // Variant 2 (K14): strong contrast and strong advection.
  const double contrast = (variant == 0) ? 10.0 : 1000.0;
  const double peclet = (variant == 2) ? 100.0 : 10.0;
  CoeffField2d diff(100 + std::uint64_t(variant), 1.0, contrast);
  CoeffField2d bx(200 + std::uint64_t(variant), -peclet, peclet);
  CoeffField2d by(300 + std::uint64_t(variant), -peclet, peclet);

  SparseOp a;
  a.n = nn;
  auto id = [n](index_t i, index_t j) { return i * n + j; };
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const double x = double(i + 1) * h;
      const double y = double(j + 1) * h;
      const double ac = diff(x, y);
      // Harmonic-mean face coefficients for -div(a grad u).
      const double aw = (i > 0) ? 0.5 * (ac + diff(x - h, y)) : ac;
      const double ae = (i + 1 < n) ? 0.5 * (ac + diff(x + h, y)) : ac;
      const double as = (j > 0) ? 0.5 * (ac + diff(x, y - h)) : ac;
      const double an = (j + 1 < n) ? 0.5 * (ac + diff(x, y + h)) : ac;
      const double ih2 = 1.0 / (h * h);
      a.add(id(i, j), id(i, j), (aw + ae + as + an) * ih2);
      if (i > 0) a.add(id(i, j), id(i - 1, j), -aw * ih2);
      if (i + 1 < n) a.add(id(i, j), id(i + 1, j), -ae * ih2);
      if (j > 0) a.add(id(i, j), id(i, j - 1), -as * ih2);
      if (j + 1 < n) a.add(id(i, j), id(i, j + 1), -an * ih2);
      // Central-difference advection b·grad u (makes A nonsymmetric).
      const double bxv = bx(x, y);
      const double byv = by(x, y);
      const double i2h = 1.0 / (2.0 * h);
      if (i > 0) a.add(id(i, j), id(i - 1, j), -bxv * i2h);
      if (i + 1 < n) a.add(id(i, j), id(i + 1, j), bxv * i2h);
      if (j > 0) a.add(id(i, j), id(i, j - 1), -byv * i2h);
      if (j + 1 < n) a.add(id(i, j), id(i, j + 1), byv * i2h);
    }
  }
  // Scale to O(1) entries so σ is meaningful across grid sizes.
  double vmax = 0;
  for (double v : a.val) vmax = std::max(vmax, std::abs(v));
  for (double& v : a.val) v /= vmax;
  return inverse_of_normal<T>(a, sigma);
}

namespace {

/// Builds the dense 2-D pseudo-spectral ADR operator on an n×n Chebyshev
/// grid: A = -a(x)∇² + b·∇ + c(x), with ∇² and ∇ dense tensor-product
/// Chebyshev differentiation matrices.
la::Matrix<double> pseudospectral_op_2d(index_t n, int variant) {
  const la::Matrix<double> d1 = chebyshev_diff(n);
  la::Matrix<double> d2(n, n);
  la::gemm(la::Op::None, la::Op::None, 1.0, d1, d1, 0.0, d2);

  const index_t nn = n * n;
  la::Matrix<double> a(nn, nn);
  CoeffField2d diff(400 + std::uint64_t(variant), 1.0,
                    variant == 0 ? 5.0 : 50.0);
  CoeffField2d reac(500 + std::uint64_t(variant), 0.0, 10.0);
  const double pe = variant == 0 ? 5.0 : 20.0;

  auto id = [n](index_t i, index_t j) { return i * n + j; };
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    xs[std::size_t(i)] = 0.5 * (1.0 + std::cos(M_PI * double(i) / double(n - 1)));

  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const double av = diff(xs[std::size_t(i)], xs[std::size_t(j)]);
      // Row (i,j): -a * (D2 ⊗ I + I ⊗ D2) + pe * (D1 ⊗ I) + reaction.
      for (index_t k = 0; k < n; ++k) {
        a(id(i, j), id(k, j)) += -av * d2(i, k) + pe * d1(i, k);
        a(id(i, j), id(i, k)) += -av * d2(j, k);
      }
      a(id(i, j), id(i, j)) += reac(xs[std::size_t(i)], xs[std::size_t(j)]);
    }
  }
  // Normalise magnitude.
  double vmax = la::norm_max(a);
  for (index_t t = 0; t < a.size(); ++t) a.data()[t] /= vmax;
  return a;
}

}  // namespace

template <typename T>
la::Matrix<T> pseudospectral_2d(index_t cheb_n, int variant, double sigma) {
  require(variant == 0 || variant == 1, "pseudospectral_2d: variant");
  la::Matrix<double> a = pseudospectral_op_2d(cheb_n, variant);
  // AᵀA + σI densely (A is dense here).
  la::Matrix<double> g(a.rows(), a.rows());
  la::gemm(la::Op::Trans, la::Op::None, 1.0, a, a, 0.0, g);
  for (index_t i = 0; i < g.rows(); ++i) g(i, i) += sigma;
  return cast_matrix<T>(la::spd_inverse(std::move(g)));
}

template <typename T>
la::Matrix<T> pseudospectral_3d(index_t cheb_n, double sigma) {
  const index_t n = cheb_n;
  const la::Matrix<double> d1 = chebyshev_diff(n);
  la::Matrix<double> d2(n, n);
  la::gemm(la::Op::None, la::Op::None, 1.0, d1, d1, 0.0, d2);

  const index_t nn = n * n * n;
  la::Matrix<double> a(nn, nn);
  CoeffField2d diff(600, 1.0, 20.0);
  auto id = [n](index_t i, index_t j, index_t k) {
    return (i * n + j) * n + k;
  };
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    xs[std::size_t(i)] = 0.5 * (1.0 + std::cos(M_PI * double(i) / double(n - 1)));

  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      for (index_t k = 0; k < n; ++k) {
        const double av =
            diff(xs[std::size_t(i)], xs[std::size_t(j)]) +
            0.5 * diff(xs[std::size_t(j)], xs[std::size_t(k)]);
        for (index_t t = 0; t < n; ++t) {
          a(id(i, j, k), id(t, j, k)) += -av * d2(i, t) + 3.0 * d1(i, t);
          a(id(i, j, k), id(i, t, k)) += -av * d2(j, t);
          a(id(i, j, k), id(i, j, t)) += -av * d2(k, t);
        }
      }
  double vmax = la::norm_max(a);
  for (index_t t = 0; t < a.size(); ++t) a.data()[t] /= vmax;

  la::Matrix<double> g(nn, nn);
  la::gemm(la::Op::Trans, la::Op::None, 1.0, a, a, 0.0, g);
  for (index_t i = 0; i < nn; ++i) g(i, i) += sigma;
  return cast_matrix<T>(la::spd_inverse(std::move(g)));
}

template <typename T>
la::Matrix<T> inverse_squared_laplacian_3d(index_t grid_side, double sigma) {
  require(grid_side >= 3, "inverse_squared_laplacian_3d: grid too small");
  const index_t n = grid_side;
  const index_t nn = n * n * n;
  const double h = 1.0 / double(n + 1);
  CoeffField2d diff(700, 1.0, 100.0);

  // SPD 7-point -div(a grad) with harmonic-mean faces: assemble densely.
  la::Matrix<double> a(nn, nn);
  auto id = [n](index_t i, index_t j, index_t k) {
    return (i * n + j) * n + k;
  };
  auto coeff = [&](index_t i, index_t j, index_t k) {
    return diff(double(i + 1) * h + 0.3 * double(k + 1) * h,
                double(j + 1) * h);
  };
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      for (index_t k = 0; k < n; ++k) {
        const double ac = coeff(i, j, k);
        double dsum = 0;
        auto face = [&](index_t i2, index_t j2, index_t k2, bool in) {
          const double av = in ? 0.5 * (ac + coeff(i2, j2, k2)) : ac;
          dsum += av;
          if (in) {
            // Symmetric off-diagonal entry (write once per direction).
            a(id(i, j, k), id(i2, j2, k2)) = -av;
          }
        };
        face(i - 1, j, k, i > 0);
        face(i + 1, j, k, i + 1 < n);
        face(i, j - 1, k, j > 0);
        face(i, j + 1, k, j + 1 < n);
        face(i, j, k - 1, k > 0);
        face(i, j, k + 1, k + 1 < n);
        a(id(i, j, k), id(i, j, k)) = dsum + sigma;
      }
  double vmax = la::norm_max(a);
  for (index_t t = 0; t < a.size(); ++t) a.data()[t] /= vmax;

  // K = (A)⁻² = A⁻¹ A⁻¹ (A is SPD so this is SPD too).
  la::Matrix<double> inv = la::spd_inverse(std::move(a));
  la::Matrix<double> k(nn, nn);
  la::gemm(la::Op::None, la::Op::None, 1.0, inv, inv, 0.0, k);
  // Symmetrise round-off.
  for (index_t j = 0; j < nn; ++j)
    for (index_t i = j + 1; i < nn; ++i) {
      const double v = 0.5 * (k(i, j) + k(j, i));
      k(i, j) = v;
      k(j, i) = v;
    }
  return cast_matrix<T>(k);
}

template la::Matrix<float> advection_diffusion_2d<float>(index_t, int, double);
template la::Matrix<double> advection_diffusion_2d<double>(index_t, int,
                                                           double);
template la::Matrix<float> pseudospectral_2d<float>(index_t, int, double);
template la::Matrix<double> pseudospectral_2d<double>(index_t, int, double);
template la::Matrix<float> pseudospectral_3d<float>(index_t, double);
template la::Matrix<double> pseudospectral_3d<double>(index_t, double);
template la::Matrix<float> inverse_squared_laplacian_3d<float>(index_t,
                                                               double);
template la::Matrix<double> inverse_squared_laplacian_3d<double>(index_t,
                                                                 double);

}  // namespace gofmm::zoo
