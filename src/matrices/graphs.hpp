// Synthetic graphs and their regularised inverse Laplacians (the paper's
// G01-G05, modelled on the UFL graphs powersim, poli_large, rgg_n_2_16_s0,
// denormal, conf6_0-8x8-30 — see DESIGN.md §2 for the substitution).
//
// These are the truly geometry-free matrices: no coordinates exist, so only
// the Gram distances can order them (paper Fig. 7, experiment #12).
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "util/common.hpp"

namespace gofmm::zoo {

/// Undirected graph as a unit-weight edge list over n vertices.
struct Graph {
  index_t n = 0;
  std::vector<std::pair<index_t, index_t>> edges;

  [[nodiscard]] index_t num_edges() const { return index_t(edges.size()); }
};

/// G01 "powersim-like": 2-D grid with sparse random long-range links —
/// power-network topology.
Graph power_grid_graph(index_t n, std::uint64_t seed);

/// G02 "poli_large-like": quasi-banded sparse graph with a heavy-tailed
/// sprinkling of distant links.
Graph quasi_banded_graph(index_t n, std::uint64_t seed);

/// G03 "rgg-like": random geometric graph on the unit square with radius
/// chosen for expected average degree ~8. The coordinates are discarded —
/// only the combinatorial graph survives (matching the paper's claim that
/// G03 has no geometric information).
Graph random_geometric_graph(index_t n, std::uint64_t seed);

/// G04 "denormal-like": banded graph (bandwidth 4) plus random
/// perturbation edges.
Graph banded_perturbed_graph(index_t n, std::uint64_t seed);

/// G05 "conf6-like": 4-D torus lattice (QCD configuration topology);
/// n is rounded down to t⁴ for integer torus side t.
Graph torus_4d_graph(index_t n);

/// Dense regularised inverse Laplacian K = (L + σI)⁻¹, with L = D − W the
/// combinatorial Laplacian. Computed in double precision, cast to T.
template <typename T>
la::Matrix<T> graph_inverse_laplacian(const Graph& g, double sigma = 1e-2);

extern template la::Matrix<float> graph_inverse_laplacian<float>(const Graph&,
                                                                 double);
extern template la::Matrix<double> graph_inverse_laplacian<double>(
    const Graph&, double);

}  // namespace gofmm::zoo
