// The matrix zoo: every named test matrix of the paper's §3, constructed
// on demand (and disk-cached for the expensive dense inverses).
//
//   K02-K03   constant-coefficient inverse operators (DST eigenbasis)
//   K04-K10   kernel matrices on 6-D point clouds
//   K12-K18   variable-coefficient inverse operators (dense Cholesky)
//   G01-G05   inverse Laplacians of synthetic graphs
//   COVTYPE / HIGGS / MNIST   Gaussian-kernel matrices on synthetic
//                             stand-ins for the ML datasets
//
// Matrices derived from grids/points carry coordinates (so the geometric
// ordering is available, as in the paper's Fig. 7); graph matrices do not.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/spd_matrix.hpp"

namespace gofmm::zoo {

/// Catalog entry describing one named matrix.
struct ZooInfo {
  std::string name;
  std::string description;
  index_t default_n;   ///< laptop-scale default size (see DESIGN.md)
  bool has_points;     ///< coordinates available (geometric ordering works)
  bool lazy;           ///< entries computed on the fly (kernel matrices)
};

/// All matrices this reproduction provides, in paper order.
const std::vector<ZooInfo>& catalog();

/// Looks up a catalog entry; throws for unknown names.
const ZooInfo& info(const std::string& name);

/// Instantiates matrix `name`. n <= 0 selects the catalog default; grid/
/// lattice-based generators round n down to the nearest feasible size, so
/// size() may be smaller than requested. Dense inverse-type matrices are
/// cached on disk under $GOFMM_CACHE_DIR (default ./zoo_cache).
template <typename T>
std::unique_ptr<SPDMatrix<T>> make_matrix(const std::string& name,
                                          index_t n = 0);

/// Gaussian-kernel dataset matrices with explicit bandwidth (used by the
/// benches that sweep h exactly as the paper's Table 5 configurations do).
/// `dataset` is one of "COVTYPE", "HIGGS", "MNIST".
template <typename T>
std::unique_ptr<SPDMatrix<T>> make_dataset_kernel(const std::string& dataset,
                                                  index_t n, double h);

extern template std::unique_ptr<SPDMatrix<float>> make_matrix<float>(
    const std::string&, index_t);
extern template std::unique_ptr<SPDMatrix<double>> make_matrix<double>(
    const std::string&, index_t);
extern template std::unique_ptr<SPDMatrix<float>> make_dataset_kernel<float>(
    const std::string&, index_t, double);
extern template std::unique_ptr<SPDMatrix<double>> make_dataset_kernel<double>(
    const std::string&, index_t, double);

}  // namespace gofmm::zoo
