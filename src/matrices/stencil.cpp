#include "matrices/stencil.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/dst.hpp"

namespace gofmm::zoo {

template <typename T>
la::Matrix<T> spectral_grid_matrix_2d(index_t n,
                                      const std::function<double(double)>& f) {
  require(n > 0, "spectral_grid_matrix_2d: grid side must be positive");
  const index_t nn = n * n;
  const la::Matrix<T> q = la::dst_basis<T>(n);

  // A[(i1,j1), k1] = q_{i1 k1} * q_{j1 k1}  — n²-by-n.
  la::Matrix<T> a(nn, n);
  for (index_t k1 = 0; k1 < n; ++k1)
    for (index_t j1 = 0; j1 < n; ++j1)
      for (index_t i1 = 0; i1 < n; ++i1)
        a(i1 * n + j1, k1) = q(i1, k1) * q(j1, k1);

  // G[k1, (i2,j2)] = (Q diag f(λ_k1 + λ_·) Q^T)_{i2 j2}  — n-by-n².
  la::Matrix<T> g(n, nn);
#pragma omp parallel for schedule(dynamic, 1)
  for (index_t k1 = 0; k1 < n; ++k1) {
    // Gk = Q * diag(fv) * Q^T, computed as (Q * diag) * Q^T.
    la::Matrix<T> qd(n, n);
    for (index_t k2 = 0; k2 < n; ++k2) {
      const T fv =
          T(f(la::dst_eigenvalue(k1, n) + la::dst_eigenvalue(k2, n)));
      for (index_t i2 = 0; i2 < n; ++i2) qd(i2, k2) = q(i2, k2) * fv;
    }
    la::Matrix<T> gk(n, n);
    la::gemm(la::Op::None, la::Op::Trans, T(1), qd, q, T(0), gk);
    for (index_t j2 = 0; j2 < n; ++j2)
      for (index_t i2 = 0; i2 < n; ++i2)
        g(k1, i2 * n + j2) = gk(i2, j2);
  }

  // K̂ = A * G is n²-by-n² with K̂[(i1,j1),(i2,j2)] = K[(i1,i2),(j1,j2)].
  la::Matrix<T> khat(nn, nn);
  la::gemm(la::Op::None, la::Op::None, T(1), a, g, T(0), khat);

  // Un-shuffle the paired indices into the grid ordering p = i1*n + i2.
  la::Matrix<T> k(nn, nn);
#pragma omp parallel for schedule(static)
  for (index_t j1 = 0; j1 < n; ++j1)
    for (index_t j2 = 0; j2 < n; ++j2)
      for (index_t i1 = 0; i1 < n; ++i1)
        for (index_t i2 = 0; i2 < n; ++i2)
          k(i1 * n + i2, j1 * n + j2) = khat(i1 * n + j1, i2 * n + j2);
  return k;
}

template <typename T>
la::Matrix<T> k02_inverse_laplacian_squared(index_t grid_side, double sigma) {
  return spectral_grid_matrix_2d<T>(grid_side, [sigma](double lam) {
    const double d = lam + sigma;
    return 1.0 / (d * d);
  });
}

template <typename T>
la::Matrix<T> k03_helmholtz_like(index_t grid_side, double sigma) {
  // ~10 points per wavelength: wavelength = 10 h, wavenumber k = 2π/(10 h);
  // on the unit-spaced stencil the eigenvalues live in (0, 8), and k² maps
  // into that band so f has the oscillatory resolvent shape.
  const double k = 2.0 * M_PI / 10.0;
  const double k2 = k * k;
  return spectral_grid_matrix_2d<T>(grid_side, [k2, sigma](double lam) {
    const double d = lam - k2;
    return 1.0 / (d * d + sigma);
  });
}

template la::Matrix<float> spectral_grid_matrix_2d<float>(
    index_t, const std::function<double(double)>&);
template la::Matrix<double> spectral_grid_matrix_2d<double>(
    index_t, const std::function<double(double)>&);
template la::Matrix<float> k02_inverse_laplacian_squared<float>(index_t,
                                                                double);
template la::Matrix<double> k02_inverse_laplacian_squared<double>(index_t,
                                                                  double);
template la::Matrix<float> k03_helmholtz_like<float>(index_t, double);
template la::Matrix<double> k03_helmholtz_like<double>(index_t, double);

}  // namespace gofmm::zoo
