#include "baselines/rand_hss.hpp"

#include <functional>
#include <numeric>

#include "core/factorization.hpp"
#include "core/hss_view.hpp"
#include "core/solvers.hpp"
#include "la/blas.hpp"
#include "la/flops.hpp"
#include "la/id.hpp"
#include "util/timer.hpp"

namespace gofmm {

/// HssView over a randomized-HSS baseline: identity row ordering, leaf
/// dense diagonals, nested interpolation bases (leaf U is the |β|-by-r
/// basis, interior U the (r_l + r_r)-by-r_p transfer map), and the stored
/// sibling couplings B = K(l̃, r̃). Only alive inside factorize().
template <typename T>
class RandHssView final : public HssView<T> {
  using HssNode = typename baseline::RandHss<T>::HssNode;

 public:
  explicit RandHssView(const baseline::RandHss<T>& h) {
    this->n_ = h.n_;
    this->root_ = h.root_->id;
    nodes_.assign(std::size_t(h.num_nodes_), nullptr);
    this->topo_.resize(std::size_t(h.num_nodes_));
    flatten(h.root_.get(), HssTopoNode::kNone, 0);
  }

  la::Matrix<T> leaf_diag(index_t id) const override {
    return nodes_[std::size_t(id)]->diag;
  }

  index_t basis_rank(index_t id) const override {
    if (this->topo_[std::size_t(id)].parent == HssTopoNode::kNone) return 0;
    return index_t(nodes_[std::size_t(id)]->skel.size());
  }

  BasisKind basis_kind(index_t) const override { return BasisKind::Nested; }

  la::Matrix<T> basis(index_t id) const override {
    return nodes_[std::size_t(id)]->u;
  }

  la::Matrix<T> coupling(index_t id) const override {
    return nodes_[std::size_t(id)]->b;
  }

 private:
  void flatten(const HssNode* node, index_t parent, index_t level) {
    nodes_[std::size_t(node->id)] = node;
    HssTopoNode& t = this->topo_[std::size_t(node->id)];
    t.id = node->id;
    t.level = level;
    t.row_begin = node->begin;  // input ordering == tree ordering
    t.count = node->count;
    t.parent = parent;
    if (!node->is_leaf()) {
      t.left = node->left->id;
      t.right = node->right->id;
      flatten(node->left.get(), node->id, level + 1);
      flatten(node->right.get(), node->id, level + 1);
    }
  }

  std::vector<const HssNode*> nodes_;
};

template class RandHssView<float>;
template class RandHssView<double>;

}  // namespace gofmm

namespace gofmm::baseline {

namespace {

/// Vertically stacks two equal-width matrices.
template <typename T>
la::Matrix<T> vstack(const la::Matrix<T>& top, const la::Matrix<T>& bot) {
  la::Matrix<T> out(top.rows() + bot.rows(), top.cols());
  for (index_t j = 0; j < top.cols(); ++j) {
    std::copy_n(top.col(j), top.rows(), out.col(j));
    std::copy_n(bot.col(j), bot.rows(), out.col(j) + top.rows());
  }
  return out;
}

}  // namespace

template <typename T>
RandHss<T>::RandHss(const SPDMatrix<T>& k, const RandHssOptions& options)
    : n_(k.size()), options_(options) {
  const index_t p = options_.max_rank + options_.oversampling;

  // ---- Dense random sketch Y = K Ω: the O(N² p) stage. ----
  Timer timer;
  const la::Matrix<T> omega =
      la::Matrix<T>::random_normal(n_, p, options_.seed);
  la::Matrix<T> sample(n_, p);
  {
    std::vector<index_t> all(static_cast<std::size_t>(n_));
    std::iota(all.begin(), all.end(), index_t(0));
    const index_t block = 256;
    for (index_t r0 = 0; r0 < n_; r0 += block) {
      const index_t rb = std::min(block, n_ - r0);
      std::vector<index_t> rows(static_cast<std::size_t>(rb));
      std::iota(rows.begin(), rows.end(), r0);
      const la::Matrix<T> krows = k.submatrix(rows, all);
      la::Matrix<T> yblk(rb, p);
      la::gemm(la::Op::None, la::Op::None, T(1), krows, omega, T(0), yblk);
      for (index_t j = 0; j < p; ++j)
        std::copy_n(yblk.col(j), rb, sample.col(j) + r0);
    }
  }
  stats_.sketch_seconds = timer.seconds();

  timer.reset();
  root_ = std::make_unique<HssNode>();
  root_->begin = 0;
  root_->count = n_;
  build(root_.get(), k, omega, sample);
  stats_.build_seconds = timer.seconds();

  double sum = 0;
  index_t cnt = 0;
  std::vector<const HssNode*> stack{root_.get()};
  while (!stack.empty()) {
    const HssNode* node = stack.back();
    stack.pop_back();
    if (!node->skel.empty()) {
      sum += double(node->skel.size());
      stats_.max_rank =
          std::max<index_t>(stats_.max_rank, index_t(node->skel.size()));
      ++cnt;
    }
    if (!node->is_leaf()) {
      stack.push_back(node->left.get());
      stack.push_back(node->right.get());
    }
  }
  stats_.avg_rank = cnt > 0 ? sum / double(cnt) : 0;
}

template <typename T>
void RandHss<T>::build(HssNode* node, const SPDMatrix<T>& k,
                       const la::Matrix<T>& omega,
                       const la::Matrix<T>& sample) {
  // Recursive helper returning (Ŝ, Ω̂) per node, expressed iteratively via
  // a lambda so the temporaries never live on the HssNode.
  struct Products {
    la::Matrix<T> s_hat;
    la::Matrix<T> omega_hat;
  };
  const index_t p = omega.cols();

  std::function<Products(HssNode*)> rec = [&](HssNode* nd) -> Products {
    nd->id = num_nodes_++;
    const bool is_root = nd == root_.get();
    if (nd->count <= options_.leaf_size) {
      // ---- leaf ----
      std::vector<index_t> idx(static_cast<std::size_t>(nd->count));
      std::iota(idx.begin(), idx.end(), nd->begin);
      nd->diag = k.submatrix(idx, idx);
      if (is_root) return {};  // single-node tree: dense block only

      // Local off-diagonal sample S = Y(idx,:) − D Ω(idx,:).
      la::Matrix<T> s(nd->count, p);
      const la::Matrix<T> oloc = omega.block(nd->begin, 0, nd->count, p);
      for (index_t j = 0; j < p; ++j)
        std::copy_n(sample.col(j) + nd->begin, nd->count, s.col(j));
      la::gemm(la::Op::None, la::Op::None, T(-1), nd->diag, oloc, T(1), s);

      // Row ID of S: S ≈ U S(skel,:).
      const la::Interpolative<T> id = la::interp_decomp(
          s.transposed(), T(options_.tolerance), options_.max_rank);
      nd->u = id.p.transposed();  // count-by-rank
      nd->skel.resize(std::size_t(id.rank));
      std::vector<index_t> local(id.skel.begin(), id.skel.end());
      for (index_t t = 0; t < id.rank; ++t)
        nd->skel[std::size_t(t)] = nd->begin + local[std::size_t(t)];

      Products out;
      out.s_hat.resize(id.rank, p);
      for (index_t j = 0; j < p; ++j)
        for (index_t t = 0; t < id.rank; ++t)
          out.s_hat(t, j) = s(local[std::size_t(t)], j);
      out.omega_hat.resize(id.rank, p);
      la::gemm(la::Op::Trans, la::Op::None, T(1), nd->u, oloc, T(0),
               out.omega_hat);
      return out;
    }

    // ---- internal ----
    const index_t half = nd->count - nd->count / 2;
    nd->left = std::make_unique<HssNode>();
    nd->right = std::make_unique<HssNode>();
    nd->left->begin = nd->begin;
    nd->left->count = half;
    nd->right->begin = nd->begin + half;
    nd->right->count = nd->count - half;
    Products pl = rec(nd->left.get());
    Products pr = rec(nd->right.get());

    // Sibling coupling B = K(l̃, r̃).
    nd->b = k.submatrix(nd->left->skel, nd->right->skel);

    // Remove the sibling contribution from the children's samples:
    // S'_l = Ŝ_l − B Ω̂_r,  S'_r = Ŝ_r − Bᵀ Ω̂_l.
    la::gemm(la::Op::None, la::Op::None, T(-1), nd->b, pr.omega_hat, T(1),
             pl.s_hat);
    la::gemm(la::Op::Trans, la::Op::None, T(-1), nd->b, pl.omega_hat, T(1),
             pr.s_hat);
    if (is_root) return {};  // the top-level blocks are exactly B

    la::Matrix<T> s = vstack(pl.s_hat, pr.s_hat);
    std::vector<index_t> combined = nd->left->skel;
    combined.insert(combined.end(), nd->right->skel.begin(),
                    nd->right->skel.end());

    const la::Interpolative<T> id = la::interp_decomp(
        s.transposed(), T(options_.tolerance), options_.max_rank);
    nd->u = id.p.transposed();  // (r_l + r_r)-by-rank
    nd->skel.resize(std::size_t(id.rank));
    for (index_t t = 0; t < id.rank; ++t)
      nd->skel[std::size_t(t)] =
          combined[std::size_t(id.skel[std::size_t(t)])];

    Products out;
    out.s_hat.resize(id.rank, p);
    for (index_t j = 0; j < p; ++j)
      for (index_t t = 0; t < id.rank; ++t)
        out.s_hat(t, j) = s(id.skel[std::size_t(t)], j);
    la::Matrix<T> ostack = vstack(pl.omega_hat, pr.omega_hat);
    out.omega_hat.resize(id.rank, p);
    la::gemm(la::Op::Trans, la::Op::None, T(1), nd->u, ostack, T(0),
             out.omega_hat);
    return out;
  };

  rec(node);
}

template <typename T>
void RandHss<T>::upward(const HssNode* node, const la::Matrix<T>& w,
                        EvalWorkspace<T>& ws) const {
  const index_t r = w.cols();
  la::Matrix<T>& wtil = ws.up[std::size_t(node->id)];
  if (node->is_leaf()) {
    if (node->u.empty()) return;  // root-leaf
    const la::Matrix<T> wloc = w.block(node->begin, 0, node->count, r);
    wtil.resize(node->u.cols(), r);
    la::gemm(la::Op::Trans, la::Op::None, T(1), node->u, wloc, T(0), wtil);
    ws.flops.fetch_add(
        la::FlopCounter::gemm_flops(node->u.cols(), r, node->u.rows()),
        std::memory_order_relaxed);
    return;
  }
  upward(node->left.get(), w, ws);
  upward(node->right.get(), w, ws);
  if (node->u.empty()) return;  // root
  const la::Matrix<T> stacked = vstack(ws.up[std::size_t(node->left->id)],
                                       ws.up[std::size_t(node->right->id)]);
  wtil.resize(node->u.cols(), r);
  la::gemm(la::Op::Trans, la::Op::None, T(1), node->u, stacked, T(0), wtil);
  ws.flops.fetch_add(
      la::FlopCounter::gemm_flops(node->u.cols(), r, node->u.rows()),
      std::memory_order_relaxed);
}

template <typename T>
void RandHss<T>::downward(const HssNode* node, la::Matrix<T>& u,
                          EvalWorkspace<T>& ws) const {
  const index_t r = u.cols();
  const la::Matrix<T>& util = ws.down[std::size_t(node->id)];
  if (node->is_leaf()) {
    // u(idx,:) += U util + D w-part (the dense part is added by do_apply).
    if (!node->u.empty() && !util.empty()) {
      la::Matrix<T> t(node->count, r);
      la::gemm(la::Op::None, la::Op::None, T(1), node->u, util, T(0), t);
      for (index_t j = 0; j < r; ++j) {
        T* dst = u.col(j) + node->begin;
        const T* src = t.col(j);
        for (index_t i = 0; i < node->count; ++i) dst[i] += src[i];
      }
    }
    return;
  }
  const HssNode* l = node->left.get();
  const HssNode* rt = node->right.get();
  const index_t rl = index_t(l->skel.size());
  const index_t rr = index_t(rt->skel.size());
  la::Matrix<T>& util_l = ws.down[std::size_t(l->id)];
  la::Matrix<T>& util_r = ws.down[std::size_t(rt->id)];
  util_l.resize(rl, r);
  util_l.fill(T(0));
  util_r.resize(rr, r);
  util_r.fill(T(0));

  // Contribution through this node's own basis from the parent.
  if (!node->u.empty() && !util.empty()) {
    la::Matrix<T> t(node->u.rows(), r);
    la::gemm(la::Op::None, la::Op::None, T(1), node->u, util, T(0), t);
    for (index_t j = 0; j < r; ++j) {
      const T* src = t.col(j);
      T* dl = util_l.col(j);
      for (index_t i = 0; i < rl; ++i) dl[i] += src[i];
      T* dr = util_r.col(j);
      for (index_t i = 0; i < rr; ++i) dr[i] += src[rl + i];
    }
  }
  // Sibling coupling: util_l += B wtil_r, util_r += Bᵀ wtil_l.
  if (!node->b.empty()) {
    la::gemm(la::Op::None, la::Op::None, T(1), node->b,
             ws.up[std::size_t(rt->id)], T(1), util_l);
    la::gemm(la::Op::Trans, la::Op::None, T(1), node->b,
             ws.up[std::size_t(l->id)], T(1), util_r);
    ws.flops.fetch_add(
        2 * la::FlopCounter::gemm_flops(node->b.rows(), r, node->b.cols()),
        std::memory_order_relaxed);
  }
  downward(l, u, ws);
  downward(rt, u, ws);
}

template <typename T>
la::Matrix<T> RandHss<T>::do_apply(const la::Matrix<T>& w,
                                   EvalWorkspace<T>& ws) const {
  const index_t r = w.cols();
  const std::size_t nn = std::size_t(num_nodes_);
  if (ws.up.size() < nn) ws.up.resize(nn);
  if (ws.down.size() < nn) ws.down.resize(nn);
  for (auto& m : ws.up) m.resize(0, 0);
  for (auto& m : ws.down) m.resize(0, 0);
  la::Matrix<T> u(n_, r);
  upward(root_.get(), w, ws);
  downward(root_.get(), u, ws);

  // Dense diagonal blocks of the leaves.
  std::function<void(const HssNode*)> dense_part = [&](const HssNode* node) {
    if (node->is_leaf()) {
      const la::Matrix<T> wloc = w.block(node->begin, 0, node->count, r);
      la::Matrix<T> t(node->count, r);
      la::gemm(la::Op::None, la::Op::None, T(1), node->diag, wloc, T(0), t);
      ws.flops.fetch_add(
          la::FlopCounter::gemm_flops(node->count, r, node->count),
          std::memory_order_relaxed);
      for (index_t j = 0; j < r; ++j) {
        T* dst = u.col(j) + node->begin;
        const T* src = t.col(j);
        for (index_t i = 0; i < node->count; ++i) dst[i] += src[i];
      }
      return;
    }
    dense_part(node->left.get());
    dense_part(node->right.get());
  };
  dense_part(root_.get());
  return u;
}

template <typename T>
RandHss<T>::~RandHss() = default;

template <typename T>
void RandHss<T>::factorize(T regularization, FactorizeOptions options) {
  // Invalidate up front — deliberately trading the strong exception
  // guarantee for loudness: after a FAILED re-factorize the operator
  // throws StateError on solve() instead of silently serving the old-λ
  // factors to a caller who asked for a new λ.
  fact_.reset();
  const RandHssView<T> view(*this);
  fact_ = std::make_unique<UlvFactorization<T>>(view, regularization, options);
}

template <typename T>
void RandHss<T>::refactorize(T regularization) {
  if (fact_ == nullptr) {
    factorize(regularization);
    return;
  }
  try {
    fact_->refactorize(regularization);
  } catch (...) {
    fact_.reset();  // failed re-elimination: be loud, not wrong
    throw;
  }
}

template <typename T>
la::Matrix<T> RandHss<T>::solve(const la::Matrix<T>& b,
                                const SolveOptions& options) const {
  check<StateError>(fact_ != nullptr,
                    "RandHss::solve: call factorize() first");
  if (options.refine && fact_->stats().precision == Precision::MixedF32) {
    la::Matrix<T> x;
    refined_solve(*this, *this, T(fact_->stats().regularization), b, x,
                  options);
    return x;
  }
  return fact_->solve(b);
}

template <typename T>
double RandHss<T>::logdet() const {
  check<StateError>(fact_ != nullptr,
                    "RandHss::logdet: call factorize() first");
  return fact_->logdet();
}

template <typename T>
FactorizationStats RandHss<T>::factorization_stats() const {
  check<StateError>(fact_ != nullptr,
                    "RandHss::factorization_stats: call factorize() first");
  return fact_->stats();
}

template <typename T>
const UlvFactorization<T>& RandHss<T>::factorization() const {
  check<StateError>(fact_ != nullptr,
                    "RandHss::factorization: call factorize() first");
  return *fact_;
}

template <typename T>
std::uint64_t RandHss<T>::memory_bytes() const {
  std::uint64_t bytes = 0;
  std::vector<const HssNode*> stack{root_.get()};
  while (!stack.empty()) {
    const HssNode* node = stack.back();
    stack.pop_back();
    bytes += std::uint64_t(node->u.size() + node->diag.size() +
                           node->b.size()) *
             sizeof(T);
    bytes += std::uint64_t(node->skel.size()) * sizeof(index_t);
    if (!node->is_leaf()) {
      stack.push_back(node->left.get());
      stack.push_back(node->right.get());
    }
  }
  // Direct-solver factors, when built (also reported by
  // factorization_stats().memory_bytes) — same convention as the GOFMM
  // and HODLR backends.
  if (fact_ != nullptr) bytes += fact_->stats().memory_bytes;
  return bytes;
}

template <typename T>
OperatorStats RandHss<T>::operator_stats() const {
  OperatorStats out;
  out.compress_seconds = stats_.sketch_seconds + stats_.build_seconds;
  out.avg_rank = stats_.avg_rank;
  out.max_rank = stats_.max_rank;
  out.memory_bytes = memory_bytes();
  return out;
}

template class RandHss<float>;
template class RandHss<double>;

}  // namespace gofmm::baseline
