#include "baselines/aca.hpp"

#include <cmath>
#include <numeric>

#include "la/blas.hpp"
#include "la/flops.hpp"
#include "util/timer.hpp"

namespace gofmm::baseline {

template <typename T>
AcaResult<T> aca(const SPDMatrix<T>& k, std::span<const index_t> I,
                 std::span<const index_t> J, T rel_tol, index_t max_rank) {
  const index_t m = index_t(I.size());
  const index_t n = index_t(J.size());
  AcaResult<T> out;
  if (m == 0 || n == 0) return out;
  const index_t rmax = std::min({max_rank, m, n});

  // Crosses accumulated column-wise; grown incrementally.
  std::vector<std::vector<T>> us;  // each |I|
  std::vector<std::vector<T>> vs;  // each |J|
  std::vector<bool> row_used(static_cast<std::size_t>(m), false);
  double approx_fro2 = 0;  // running ‖UV‖_F² estimate

  auto fetch_row = [&](index_t a) {
    std::vector<T> row(static_cast<std::size_t>(n));
    const index_t ri[1] = {I[std::size_t(a)]};
    const la::Matrix<T> r =
        k.submatrix(std::span<const index_t>(ri, 1), J);
    for (index_t j = 0; j < n; ++j) row[std::size_t(j)] = r(0, j);
    out.entries_evaluated += n;
    // Subtract current approximation.
    for (std::size_t t = 0; t < us.size(); ++t) {
      const T ua = us[t][std::size_t(a)];
      for (index_t j = 0; j < n; ++j) row[std::size_t(j)] -= ua * vs[t][std::size_t(j)];
    }
    return row;
  };
  auto fetch_col = [&](index_t b) {
    std::vector<T> col(static_cast<std::size_t>(m));
    const index_t ci[1] = {J[std::size_t(b)]};
    const la::Matrix<T> c =
        k.submatrix(I, std::span<const index_t>(ci, 1));
    for (index_t i = 0; i < m; ++i) col[std::size_t(i)] = c(i, 0);
    out.entries_evaluated += m;
    for (std::size_t t = 0; t < us.size(); ++t) {
      const T vb = vs[t][std::size_t(b)];
      for (index_t i = 0; i < m; ++i) col[std::size_t(i)] -= vb * us[t][std::size_t(i)];
    }
    return col;
  };

  index_t pivot_row = 0;
  for (index_t it = 0; it < rmax; ++it) {
    row_used[std::size_t(pivot_row)] = true;
    std::vector<T> residual_row = fetch_row(pivot_row);

    // Column pivot: largest residual entry in the chosen row.
    index_t pivot_col = 0;
    double best = 0;
    for (index_t j = 0; j < n; ++j) {
      const double v = std::abs(double(residual_row[std::size_t(j)]));
      if (v > best) {
        best = v;
        pivot_col = j;
      }
    }
    if (best <= 0) break;  // residual row exactly zero

    const T pivot = residual_row[std::size_t(pivot_col)];
    std::vector<T> residual_col = fetch_col(pivot_col);

    // New cross: u = residual column, v = residual row / pivot.
    std::vector<T> vk(static_cast<std::size_t>(n));
    for (index_t j = 0; j < n; ++j)
      vk[std::size_t(j)] = residual_row[std::size_t(j)] / pivot;
    us.push_back(std::move(residual_col));
    vs.push_back(std::move(vk));

    // Stopping: ‖u‖‖v‖ <= tol * ‖approx‖_F (standard ACA heuristic).
    double u2 = 0;
    double v2 = 0;
    for (index_t i = 0; i < m; ++i)
      u2 += double(us.back()[std::size_t(i)]) * double(us.back()[std::size_t(i)]);
    for (index_t j = 0; j < n; ++j)
      v2 += double(vs.back()[std::size_t(j)]) * double(vs.back()[std::size_t(j)]);
    // Update ‖UV‖_F² ≈ Σ ‖u_k‖²‖v_k‖² (cross-terms dropped, standard).
    approx_fro2 += u2 * v2;
    if (rel_tol > T(0) &&
        std::sqrt(u2 * v2) <= double(rel_tol) * std::sqrt(approx_fro2))
      break;

    // Next row pivot: largest |u| entry among unused rows.
    double bu = -1;
    index_t next = -1;
    for (index_t i = 0; i < m; ++i) {
      if (row_used[std::size_t(i)]) continue;
      const double v = std::abs(double(us.back()[std::size_t(i)]));
      if (v > bu) {
        bu = v;
        next = i;
      }
    }
    if (next < 0) break;
    pivot_row = next;
  }

  out.rank = index_t(us.size());
  out.u.resize(m, out.rank);
  out.v.resize(out.rank, n);
  for (index_t t = 0; t < out.rank; ++t) {
    for (index_t i = 0; i < m; ++i) out.u(i, t) = us[std::size_t(t)][std::size_t(i)];
    for (index_t j = 0; j < n; ++j) out.v(t, j) = vs[std::size_t(t)][std::size_t(j)];
  }
  return out;
}

template AcaResult<float> aca<float>(const SPDMatrix<float>&,
                                     std::span<const index_t>,
                                     std::span<const index_t>, float, index_t);
template AcaResult<double> aca<double>(const SPDMatrix<double>&,
                                       std::span<const index_t>,
                                       std::span<const index_t>, double,
                                       index_t);

template <typename T>
AcaLowRank<T>::AcaLowRank(const SPDMatrix<T>& k, T rel_tol, index_t max_rank)
    : n_(k.size()) {
  Timer timer;
  std::vector<index_t> all(static_cast<std::size_t>(n_));
  std::iota(all.begin(), all.end(), index_t(0));
  AcaResult<T> res = aca(k, all, all, rel_tol, max_rank);
  u_ = std::move(res.u);
  v_ = std::move(res.v);
  rank_ = res.rank;
  entries_ = res.entries_evaluated;
  compress_seconds_ = timer.seconds();
}

template <typename T>
la::Matrix<T> AcaLowRank<T>::do_apply(const la::Matrix<T>& w,
                                      EvalWorkspace<T>& ws) const {
  const index_t r = w.cols();
  la::Matrix<T> u(n_, r);
  if (rank_ == 0) return u;
  la::Matrix<T> tmp(rank_, r);
  la::gemm(la::Op::None, la::Op::None, T(1), v_, w, T(0), tmp);
  la::gemm(la::Op::None, la::Op::None, T(1), u_, tmp, T(0), u);
  ws.flops.fetch_add(la::FlopCounter::gemm_flops(rank_, r, n_) +
                         la::FlopCounter::gemm_flops(n_, r, rank_),
                     std::memory_order_relaxed);
  return u;
}

template <typename T>
OperatorStats AcaLowRank<T>::operator_stats() const {
  OperatorStats out;
  out.compress_seconds = compress_seconds_;
  out.avg_rank = double(rank_);
  out.max_rank = rank_;
  out.memory_bytes = memory_bytes();
  return out;
}

template class AcaLowRank<float>;
template class AcaLowRank<double>;

}  // namespace gofmm::baseline
