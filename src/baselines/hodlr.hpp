// HODLR baseline (paper Table 3): hierarchically off-diagonal low-rank
// approximation in the input (lexicographic) ordering with ACA-compressed
// off-diagonal blocks — the structure of the Ambikasaran-Darve HODLR
// library. S = 0, bases are NOT nested, so the matvec is O(N log N).
#pragma once

#include <memory>

#include "baselines/aca.hpp"
#include "core/operator.hpp"
#include "core/spd_matrix.hpp"
#include "la/matrix.hpp"

namespace gofmm::baseline {

struct HodlrOptions {
  index_t leaf_size = 128;
  double tolerance = 1e-5;   ///< ACA relative stopping tolerance
  index_t max_rank = 512;    ///< rank cap per off-diagonal block
};

/// Statistics mirroring the paper's Table 3 columns.
struct HodlrStats {
  double compress_seconds = 0;
  double avg_rank = 0;          ///< mean off-diagonal block rank
  index_t max_rank = 0;
  std::uint64_t entries = 0;    ///< oracle entries evaluated
};

/// HODLR compression of an SPD matrix. Implements CompressedOperator (the
/// matvec is const and thread-safe: the tree is immutable after build and
/// the recursion carries no per-node scratch) and the Factorizable
/// capability (recursive-Woodbury direct solver).
template <typename T>
class Hodlr final : public CompressedOperator<T>, public Factorizable<T> {
 public:
  Hodlr(const SPDMatrix<T>& k, const HodlrOptions& options);

  /// u = H̃ w for an N-by-r block of right-hand sides (alias of apply()).
  [[nodiscard]] la::Matrix<T> matvec(const la::Matrix<T>& w) const {
    return this->apply(w);
  }

  /// Builds the O(N log² N) direct factorization of H̃ + λI (recursive
  /// Woodbury: K = blkdiag(K_l, K_r) + W M Wᵀ with the 2r-by-2r
  /// capacitance system LU-factorized at every level). This is the fast
  /// direct solver of the HODLR literature — the paper's "factorization
  /// of K" future work, realised on the HODLR structure. Must be called
  /// before solve()/logdet(); solve() is const and thread-safe after.
  void factorize(T regularization = T(0)) override;

  /// x = (H̃ + λI)⁻¹ b after factorize(). b is N-by-r.
  [[nodiscard]] la::Matrix<T> solve(const la::Matrix<T>& b) const override;

  /// log det(H̃ + λI) from the stored factors (leaf Cholesky diagonals
  /// plus capacitance determinants).
  [[nodiscard]] double logdet() const override;

  [[nodiscard]] FactorizationStats factorization_stats() const override;

  // --- CompressedOperator interface ---
  [[nodiscard]] index_t size() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "hodlr"; }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] OperatorStats operator_stats() const override;
  [[nodiscard]] Factorizable<T>* factorizable() override { return this; }
  [[nodiscard]] const Factorizable<T>* factorizable() const override {
    return this;
  }

  [[nodiscard]] const HodlrStats& stats() const { return stats_; }
  [[nodiscard]] bool factorized() const override { return factorized_; }

 protected:
  la::Matrix<T> do_apply(const la::Matrix<T>& w,
                         EvalWorkspace<T>& ws) const override;

 private:
  struct HNode {
    index_t begin = 0;
    index_t count = 0;
    la::Matrix<T> diag;  ///< dense diagonal block (leaves only)
    // Off-diagonal K(l, r) ≈ u12 * v12; K(r, l) = (u12 v12)^T by symmetry.
    la::Matrix<T> u12, v12;
    std::unique_ptr<HNode> left, right;
    [[nodiscard]] bool is_leaf() const { return left == nullptr; }

    // --- direct-solver factors (built by factorize()) ---
    la::Matrix<T> diag_chol;     ///< leaf Cholesky factor of diag
    la::Matrix<T> x_factor;      ///< X = blkdiag(K_l,K_r)⁻¹ W (count x 2r)
    la::Matrix<T> capacitance;   ///< LU of (M + Wᵀ X), 2r x 2r
    std::vector<index_t> cap_pivots;
  };

  void build(HNode* node, const SPDMatrix<T>& k);
  void apply_node(const HNode* node, const la::Matrix<T>& w,
                  la::Matrix<T>& u, EvalWorkspace<T>& ws) const;
  void collect_ranks(const HNode* node, double& sum, index_t& cnt) const;
  void factorize_node(HNode* node, T regularization);
  /// Solves K_node x = b in place; b rows index the node's local range.
  void solve_node(const HNode* node, la::Matrix<T>& b) const;

  index_t n_;
  HodlrOptions options_;
  std::unique_ptr<HNode> root_;
  HodlrStats stats_;
  bool factorized_ = false;
  FactorizationStats fact_stats_;
  double logdet_ = 0;
  int det_sign_ = 1;
};

extern template class Hodlr<float>;
extern template class Hodlr<double>;

}  // namespace gofmm::baseline
