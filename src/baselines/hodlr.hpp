// HODLR baseline (paper Table 3): hierarchically off-diagonal low-rank
// approximation in the input (lexicographic) ordering with ACA-compressed
// off-diagonal blocks — the structure of the Ambikasaran-Darve HODLR
// library. S = 0, bases are NOT nested, so the matvec is O(N log N).
#pragma once

#include <memory>

#include "baselines/aca.hpp"
#include "core/operator.hpp"
#include "core/spd_matrix.hpp"
#include "la/matrix.hpp"

namespace gofmm {
template <typename T>
class UlvFactorization;  // core/factorization.hpp
template <typename T>
class HodlrView;  // baselines/hodlr.cpp (HssView over this baseline)
}  // namespace gofmm

namespace gofmm::baseline {

using gofmm::HodlrView;
using gofmm::UlvFactorization;

struct HodlrOptions {
  index_t leaf_size = 128;
  double tolerance = 1e-5;   ///< ACA relative stopping tolerance
  index_t max_rank = 512;    ///< rank cap per off-diagonal block
};

/// Statistics mirroring the paper's Table 3 columns.
struct HodlrStats {
  double compress_seconds = 0;
  double avg_rank = 0;          ///< mean off-diagonal block rank
  index_t max_rank = 0;
  std::uint64_t entries = 0;    ///< oracle entries evaluated
};

/// HODLR compression of an SPD matrix. Implements CompressedOperator (the
/// matvec is const and thread-safe: the tree is immutable after build and
/// the recursion carries no per-node scratch) and the Factorizable
/// capability through the shared ULV engine: an HODLR off-diagonal block
/// K(l, r) ≈ U₁₂ V₁₂ᵀ is the coupling W M Wᵀ with explicit (non-nested)
/// bases V_l = U₁₂, V_r = V₁₂ᵀ and B = I, so factorize() hands an
/// HodlrView of this object to UlvFactorization — the engine's Explicit
/// basis path reproduces the classical O(N log² N) recursive-Woodbury
/// HODLR direct solver without any HODLR-specific elimination code.
template <typename T>
class Hodlr final : public CompressedOperator<T>, public Factorizable<T> {
 public:
  Hodlr(const SPDMatrix<T>& k, const HodlrOptions& options);
  ~Hodlr() override;  // out-of-line: the ULV factors are incomplete here

  /// u = H̃ w for an N-by-r block of right-hand sides (alias of apply()).
  [[nodiscard]] la::Matrix<T> matvec(const la::Matrix<T>& w) const {
    return this->apply(w);
  }

  /// Builds the O(N log² N) direct factorization of H̃ + λI via the shared
  /// ULV engine. Must be called before solve()/logdet(); solve() is const
  /// and thread-safe after. Indefinite shifts factor through the engine's
  /// pivoted-LDLᵀ leaf path per `options`.
  void factorize(T regularization = T(0),
                 FactorizeOptions options = {}) override;

  /// Re-eliminates the existing factorization with a new λ, reusing the
  /// engine's payload snapshot (bit-identical to a fresh factorize(λ),
  /// without re-reading this object). Falls back to factorize() when no
  /// factorization exists yet.
  void refactorize(T regularization) override;

  /// x = (H̃ + λI)⁻¹ b after factorize(); b is N-by-r, solved in one
  /// blocked level-parallel sweep. Under Precision::MixedF32 with
  /// options.refine the float sweep is refined to options.target_residual.
  [[nodiscard]] la::Matrix<T> solve(
      const la::Matrix<T>& b,
      const SolveOptions& options = SolveOptions::defaults()) const override;

  /// log det(H̃ + λI) from the stored factors (leaf Cholesky diagonals
  /// plus capacitance determinants).
  [[nodiscard]] double logdet() const override;

  [[nodiscard]] FactorizationStats factorization_stats() const override;

  /// The ULV factors built by factorize() — exposed for sweep-mode
  /// verification. Throws StateError before factorize().
  [[nodiscard]] const UlvFactorization<T>& factorization() const;

  // --- CompressedOperator interface ---
  [[nodiscard]] index_t size() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "hodlr"; }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] OperatorStats operator_stats() const override;
  [[nodiscard]] Factorizable<T>* factorizable() override { return this; }
  [[nodiscard]] const Factorizable<T>* factorizable() const override {
    return this;
  }

  [[nodiscard]] const HodlrStats& stats() const { return stats_; }
  [[nodiscard]] bool factorized() const override { return fact_ != nullptr; }

 protected:
  la::Matrix<T> do_apply(const la::Matrix<T>& w,
                         EvalWorkspace<T>& ws) const override;

 private:
  friend class gofmm::HodlrView<T>;

  struct HNode {
    index_t begin = 0;
    index_t count = 0;
    la::Matrix<T> diag;  ///< dense diagonal block (leaves only)
    // Off-diagonal K(l, r) ≈ u12 * v12; K(r, l) = (u12 v12)^T by symmetry.
    la::Matrix<T> u12, v12;
    std::unique_ptr<HNode> left, right;
    [[nodiscard]] bool is_leaf() const { return left == nullptr; }
  };

  void build(HNode* node, const SPDMatrix<T>& k);
  void apply_node(const HNode* node, const la::Matrix<T>& w,
                  la::Matrix<T>& u, EvalWorkspace<T>& ws) const;
  void collect_ranks(const HNode* node, double& sum, index_t& cnt) const;

  index_t n_;
  HodlrOptions options_;
  std::unique_ptr<HNode> root_;
  HodlrStats stats_;

  // ULV factors (null until factorize(); immutable afterwards, so const
  // solve()/logdet() are thread-safe).
  std::unique_ptr<UlvFactorization<T>> fact_;
};

extern template class Hodlr<float>;
extern template class Hodlr<double>;

}  // namespace gofmm::baseline
