// STRUMPACK-like randomized HSS baseline (paper Table 3).
//
// Builds a hierarchically semi-separable approximation in the input
// (lexicographic) ordering from a dense random sketch Y = K Ω, following
// Martinsson's randomized HSS construction. The sketch costs O(N² p) entry
// work — exactly the quadratic compression cost the paper attributes to
// STRUMPACK's black-box dense path — and the matvec afterwards is O(N r).
#pragma once

#include <memory>

#include "core/operator.hpp"
#include "core/spd_matrix.hpp"
#include "la/matrix.hpp"

namespace gofmm::baseline {

struct RandHssOptions {
  index_t leaf_size = 128;
  index_t max_rank = 128;     ///< HSS rank cap per node
  double tolerance = 1e-5;    ///< ID truncation tolerance
  index_t oversampling = 10;  ///< sketch columns p = max_rank + oversampling
  std::uint64_t seed = 99;
};

struct RandHssStats {
  double sketch_seconds = 0;    ///< the O(N² p) dense sampling
  double build_seconds = 0;     ///< the hierarchical IDs
  double avg_rank = 0;
  index_t max_rank = 0;
};

}  // namespace gofmm::baseline

namespace gofmm {
template <typename T>
class UlvFactorization;  // core/factorization.hpp
template <typename T>
class RandHssView;  // baselines/rand_hss.cpp (HssView over this baseline)
}  // namespace gofmm

namespace gofmm::baseline {

using gofmm::RandHssView;
using gofmm::UlvFactorization;

/// Randomized HSS compression of an SPD matrix (symmetric: row and column
/// bases coincide). Implements CompressedOperator: the upward/downward
/// sweeps stage their per-node vectors in the caller's EvalWorkspace
/// (ws.up = skeleton weights w̃, ws.down = skeleton potentials ũ, indexed
/// by node id), so concurrent matvecs on one object never collide.
///
/// Also implements the Factorizable capability: the randomized-HSS
/// structure is exactly the nested form the shared ULV engine
/// (core/factorization.hpp) eliminates, so factorize() hands an
/// RandHssView of this object to UlvFactorization and solve()/logdet()
/// invert the compressed operator to round-off — same engine, same
/// level-parallel blocked sweep as the GOFMM path.
template <typename T>
class RandHss final : public CompressedOperator<T>, public Factorizable<T> {
 public:
  RandHss(const SPDMatrix<T>& k, const RandHssOptions& options);
  ~RandHss() override;  // out-of-line: the ULV factors are incomplete here

  /// u = H̃ w for N-by-r right-hand sides (alias of apply()).
  [[nodiscard]] la::Matrix<T> matvec(const la::Matrix<T>& w) const {
    return this->apply(w);
  }

  // --- CompressedOperator interface ---
  [[nodiscard]] index_t size() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "rand_hss"; }
  [[nodiscard]] std::uint64_t memory_bytes() const override;
  [[nodiscard]] OperatorStats operator_stats() const override;
  [[nodiscard]] Factorizable<T>* factorizable() override { return this; }
  [[nodiscard]] const Factorizable<T>* factorizable() const override {
    return this;
  }

  // --- Factorizable capability (shared ULV engine) ---
  void factorize(T regularization = T(0),
                 FactorizeOptions options = {}) override;
  /// Cheap λ retune through the engine's payload snapshot (bit-identical
  /// to a fresh factorize(λ)); full factorize() when none exists yet.
  void refactorize(T regularization) override;
  [[nodiscard]] bool factorized() const override { return fact_ != nullptr; }
  [[nodiscard]] la::Matrix<T> solve(
      const la::Matrix<T>& b,
      const SolveOptions& options = SolveOptions::defaults()) const override;
  [[nodiscard]] double logdet() const override;
  [[nodiscard]] FactorizationStats factorization_stats() const override;

  /// The ULV factors built by factorize() — exposed for sweep-mode
  /// verification. Throws StateError before factorize().
  [[nodiscard]] const UlvFactorization<T>& factorization() const;

  [[nodiscard]] const RandHssStats& stats() const { return stats_; }

 protected:
  la::Matrix<T> do_apply(const la::Matrix<T>& w,
                         EvalWorkspace<T>& ws) const override;

 private:
  friend class gofmm::RandHssView<T>;

  struct HssNode {
    index_t id = 0;  ///< dense 0..num_nodes-1, indexes workspace slots
    index_t begin = 0;
    index_t count = 0;
    std::vector<index_t> skel;  ///< global skeleton row/col indices
    la::Matrix<T> u;     ///< interpolation basis (rows-by-rank, nested)
    la::Matrix<T> diag;  ///< leaf dense diagonal
    la::Matrix<T> b;     ///< sibling coupling K(l̃, r̃) stored at parent
    std::unique_ptr<HssNode> left, right;
    [[nodiscard]] bool is_leaf() const { return left == nullptr; }
  };

  void build(HssNode* node, const SPDMatrix<T>& k, const la::Matrix<T>& omega,
             const la::Matrix<T>& sample);
  void upward(const HssNode* node, const la::Matrix<T>& w,
              EvalWorkspace<T>& ws) const;
  void downward(const HssNode* node, la::Matrix<T>& u,
                EvalWorkspace<T>& ws) const;

  index_t n_;
  index_t num_nodes_ = 0;
  RandHssOptions options_;
  std::unique_ptr<HssNode> root_;
  RandHssStats stats_;

  // ULV factors (null until factorize(); immutable afterwards, so const
  // solve()/logdet() are thread-safe).
  std::unique_ptr<UlvFactorization<T>> fact_;
};

extern template class RandHss<float>;
extern template class RandHss<double>;

}  // namespace gofmm::baseline
