// ASKIT-like configuration preset (paper Table 4).
//
// ASKIT is GOFMM's closest relative: an algebraic FMM driven by *geometric*
// distances with level-by-level traversals, a near field decided purely by
// the κ nearest neighbors (no budget ballot), and no symmetrisation of the
// near lists (so its K̃ is not symmetric). This header exposes that exact
// configuration of the GOFMM engine, which is how the paper frames the
// comparison ("ASKIT uses level-by-level traversals ... the amount of
// direct evaluation performed by ASKIT is decided by κ").
#pragma once

#include "core/config.hpp"

namespace gofmm::baseline {

/// Returns the GOFMM configuration that mimics ASKIT's algorithmic choices.
/// `kappa` plays ASKIT's double role: neighbor search *and* near-field
/// extent — the budget is opened wide so the ballot never truncates.
inline Config askit_like_config(index_t kappa = 32) {
  Config cfg;
  cfg.distance = tree::DistanceKind::Geometric;  // ASKIT requires points
  cfg.engine = rt::Engine::LevelByLevel;         // no out-of-order tasking
  cfg.symmetric_near = false;                    // K̃ not symmetric
  cfg.budget = 1.0;                              // near = all voted leaves
  cfg.kappa = kappa;
  return cfg;
}

}  // namespace gofmm::baseline
