#include "baselines/hodlr.hpp"

#include <cmath>
#include <functional>
#include <numeric>

#include "core/error.hpp"
#include "core/factorization.hpp"
#include "core/hss_view.hpp"
#include "core/solvers.hpp"
#include "la/blas.hpp"
#include "la/flops.hpp"
#include "la/lapack.hpp"
#include "util/timer.hpp"

namespace gofmm {

/// HssView over an HODLR baseline: identity row ordering, leaf dense
/// diagonals, and EXPLICIT (non-nested) bases — a node's parent-facing
/// basis is its slice of the parent's off-diagonal factorization
/// K(l, r) ≈ U₁₂ V₁₂ᵀ (U₁₂ for the left child, V₁₂ᵀ for the right), with
/// the identity as coupling B. The shared ULV engine's Explicit path then
/// computes each Φ by a subtree solve — the classical O(N log² N) HODLR
/// factorization. Only alive inside factorize().
template <typename T>
class HodlrView final : public HssView<T> {
  using HNode = typename baseline::Hodlr<T>::HNode;

 public:
  explicit HodlrView(const baseline::Hodlr<T>& h) {
    this->n_ = h.n_;
    this->root_ = 0;
    flatten(h.root_.get(), HssTopoNode::kNone, 0);
  }

  la::Matrix<T> leaf_diag(index_t id) const override {
    return nodes_[std::size_t(id)]->diag;
  }

  index_t basis_rank(index_t id) const override {
    const index_t parent = this->topo_[std::size_t(id)].parent;
    if (parent == HssTopoNode::kNone) return 0;
    return nodes_[std::size_t(parent)]->u12.cols();
  }

  BasisKind basis_kind(index_t) const override { return BasisKind::Explicit; }

  la::Matrix<T> basis(index_t id) const override {
    const HssTopoNode& t = this->topo_[std::size_t(id)];
    const HNode* parent = nodes_[std::size_t(t.parent)];
    const bool is_left = this->topo_[std::size_t(t.parent)].left == id;
    // u12 is |l|-by-r; v12 is r-by-|r| (the block is u12 · v12).
    return is_left ? parent->u12 : parent->v12.transposed();
  }

  la::Matrix<T> coupling(index_t id) const override {
    // B = I for an HODLR block (K(l, r) ≈ U₁₂ V₁₂ᵀ IS the factored
    // coupling). Return the empty matrix — the HssView identity-coupling
    // convention — so the engine skips every GEMM against B instead of
    // multiplying by a materialised identity.
    (void)id;
    return la::Matrix<T>();
  }

 private:
  void flatten(const HNode* node, index_t parent, index_t level) {
    const index_t id = index_t(this->topo_.size());
    this->topo_.push_back(HssTopoNode{});
    nodes_.push_back(node);
    HssTopoNode& t = this->topo_[std::size_t(id)];
    t.id = id;
    t.level = level;
    t.row_begin = node->begin;  // input ordering == tree ordering
    t.count = node->count;
    t.parent = parent;
    if (!node->is_leaf()) {
      // Children get the next free ids; fix up after both subtrees exist
      // (flatten() may reallocate topo_, so re-index instead of holding a
      // reference across the recursion).
      const index_t left_id = index_t(this->topo_.size());
      flatten(node->left.get(), id, level + 1);
      const index_t right_id = index_t(this->topo_.size());
      flatten(node->right.get(), id, level + 1);
      this->topo_[std::size_t(id)].left = left_id;
      this->topo_[std::size_t(id)].right = right_id;
    }
  }

  std::vector<const HNode*> nodes_;
};

template class HodlrView<float>;
template class HodlrView<double>;

}  // namespace gofmm

namespace gofmm::baseline {

template <typename T>
Hodlr<T>::Hodlr(const SPDMatrix<T>& k, const HodlrOptions& options)
    : n_(k.size()), options_(options) {
  Timer timer;
  root_ = std::make_unique<HNode>();
  root_->begin = 0;
  root_->count = n_;
  build(root_.get(), k);
  stats_.compress_seconds = timer.seconds();
  double sum = 0;
  index_t cnt = 0;
  collect_ranks(root_.get(), sum, cnt);
  stats_.avg_rank = cnt > 0 ? sum / double(cnt) : 0;
}

template <typename T>
void Hodlr<T>::build(HNode* node, const SPDMatrix<T>& k) {
  if (node->count <= options_.leaf_size) {
    std::vector<index_t> idx(static_cast<std::size_t>(node->count));
    std::iota(idx.begin(), idx.end(), node->begin);
    node->diag = k.submatrix(idx, idx);
    stats_.entries += std::uint64_t(node->count) * std::uint64_t(node->count);
    return;
  }
  const index_t half = node->count - node->count / 2;
  node->left = std::make_unique<HNode>();
  node->right = std::make_unique<HNode>();
  node->left->begin = node->begin;
  node->left->count = half;
  node->right->begin = node->begin + half;
  node->right->count = node->count - half;

  // Off-diagonal block K(l, r) via ACA in the input ordering.
  std::vector<index_t> li(static_cast<std::size_t>(half));
  std::vector<index_t> ri(static_cast<std::size_t>(node->count - half));
  std::iota(li.begin(), li.end(), node->left->begin);
  std::iota(ri.begin(), ri.end(), node->right->begin);
  AcaResult<T> lr =
      aca(k, li, ri, T(options_.tolerance), options_.max_rank);
  node->u12 = std::move(lr.u);
  node->v12 = std::move(lr.v);
  stats_.entries += std::uint64_t(lr.entries_evaluated);
  stats_.max_rank = std::max(stats_.max_rank, lr.rank);

  build(node->left.get(), k);
  build(node->right.get(), k);
}

template <typename T>
void Hodlr<T>::apply_node(const HNode* node, const la::Matrix<T>& w,
                          la::Matrix<T>& u, EvalWorkspace<T>& ws) const {
  const index_t r = w.cols();
  if (node->is_leaf()) {
    const la::Matrix<T> wloc = w.block(node->begin, 0, node->count, r);
    la::Matrix<T> uloc(node->count, r);
    la::gemm(la::Op::None, la::Op::None, T(1), node->diag, wloc, T(0), uloc);
    ws.flops.fetch_add(
        la::FlopCounter::gemm_flops(node->count, r, node->count),
        std::memory_order_relaxed);
    for (index_t j = 0; j < r; ++j) {
      T* dst = u.col(j) + node->begin;
      const T* src = uloc.col(j);
      for (index_t i = 0; i < node->count; ++i) dst[i] += src[i];
    }
    return;
  }
  const HNode* l = node->left.get();
  const HNode* rt = node->right.get();
  const index_t rank = node->u12.cols();
  if (rank > 0) {
    ws.flops.fetch_add(2 * (la::FlopCounter::gemm_flops(rank, r, rt->count) +
                            la::FlopCounter::gemm_flops(l->count, r, rank)),
                       std::memory_order_relaxed);
    // u_l += U (V w_r) and u_r += V^T (U^T w_l).
    const la::Matrix<T> wr = w.block(rt->begin, 0, rt->count, r);
    la::Matrix<T> tmp(rank, r);
    la::gemm(la::Op::None, la::Op::None, T(1), node->v12, wr, T(0), tmp);
    la::Matrix<T> ul(l->count, r);
    la::gemm(la::Op::None, la::Op::None, T(1), node->u12, tmp, T(0), ul);
    for (index_t j = 0; j < r; ++j) {
      T* dst = u.col(j) + l->begin;
      const T* src = ul.col(j);
      for (index_t i = 0; i < l->count; ++i) dst[i] += src[i];
    }
    const la::Matrix<T> wl = w.block(l->begin, 0, l->count, r);
    la::Matrix<T> tmp2(rank, r);
    la::gemm(la::Op::Trans, la::Op::None, T(1), node->u12, wl, T(0), tmp2);
    la::Matrix<T> ur(rt->count, r);
    la::gemm(la::Op::Trans, la::Op::None, T(1), node->v12, tmp2, T(0), ur);
    for (index_t j = 0; j < r; ++j) {
      T* dst = u.col(j) + rt->begin;
      const T* src = ur.col(j);
      for (index_t i = 0; i < rt->count; ++i) dst[i] += src[i];
    }
  }
  apply_node(l, w, u, ws);
  apply_node(rt, w, u, ws);
}

template <typename T>
la::Matrix<T> Hodlr<T>::do_apply(const la::Matrix<T>& w,
                                 EvalWorkspace<T>& ws) const {
  // Stateless recursion: no per-node scratch, so the workspace only
  // carries the timing/flop bookkeeping.
  la::Matrix<T> u(n_, w.cols());
  apply_node(root_.get(), w, u, ws);
  return u;
}

template <typename T>
std::uint64_t Hodlr<T>::memory_bytes() const {
  std::uint64_t bytes = 0;
  std::function<void(const HNode*)> visit = [&](const HNode* node) {
    bytes += std::uint64_t(node->diag.size() + node->u12.size() +
                           node->v12.size()) *
             sizeof(T);
    if (!node->is_leaf()) {
      visit(node->left.get());
      visit(node->right.get());
    }
  };
  visit(root_.get());
  // Direct-solver factors, when built (also reported by
  // factorization_stats().memory_bytes).
  if (fact_ != nullptr) bytes += fact_->stats().memory_bytes;
  return bytes;
}

template <typename T>
OperatorStats Hodlr<T>::operator_stats() const {
  OperatorStats out;
  out.compress_seconds = stats_.compress_seconds;
  out.avg_rank = stats_.avg_rank;
  out.max_rank = stats_.max_rank;
  out.memory_bytes = memory_bytes();
  return out;
}

template <typename T>
Hodlr<T>::~Hodlr() = default;

template <typename T>
void Hodlr<T>::factorize(T regularization, FactorizeOptions options) {
  // Invalidate up front — deliberately trading the strong exception
  // guarantee for loudness: after a FAILED re-factorize the operator
  // throws StateError on solve() instead of silently serving the old-λ
  // factors to a caller who asked for a new λ.
  fact_.reset();
  const HodlrView<T> view(*this);
  fact_ = std::make_unique<UlvFactorization<T>>(view, regularization, options);
}

template <typename T>
void Hodlr<T>::refactorize(T regularization) {
  if (fact_ == nullptr) {
    factorize(regularization);
    return;
  }
  try {
    fact_->refactorize(regularization);
  } catch (...) {
    fact_.reset();  // failed re-elimination: be loud, not wrong
    throw;
  }
}

template <typename T>
double Hodlr<T>::logdet() const {
  check<StateError>(fact_ != nullptr, "Hodlr::logdet: call factorize() first");
  return fact_->logdet();
}

template <typename T>
FactorizationStats Hodlr<T>::factorization_stats() const {
  check<StateError>(fact_ != nullptr,
                    "Hodlr::factorization_stats: call factorize() first");
  return fact_->stats();
}

template <typename T>
const UlvFactorization<T>& Hodlr<T>::factorization() const {
  check<StateError>(fact_ != nullptr,
                    "Hodlr::factorization: call factorize() first");
  return *fact_;
}

template <typename T>
la::Matrix<T> Hodlr<T>::solve(const la::Matrix<T>& b,
                              const SolveOptions& options) const {
  check<StateError>(fact_ != nullptr, "Hodlr::solve: call factorize() first");
  if (options.refine && fact_->stats().precision == Precision::MixedF32) {
    la::Matrix<T> x;
    refined_solve(*this, *this, T(fact_->stats().regularization), b, x,
                  options);
    return x;
  }
  return fact_->solve(b);
}

template <typename T>
void Hodlr<T>::collect_ranks(const HNode* node, double& sum,
                             index_t& cnt) const {
  if (node->is_leaf()) return;
  sum += double(node->u12.cols());
  cnt += 1;
  collect_ranks(node->left.get(), sum, cnt);
  collect_ranks(node->right.get(), sum, cnt);
}

template class Hodlr<float>;
template class Hodlr<double>;

}  // namespace gofmm::baseline
