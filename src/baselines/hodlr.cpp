#include "baselines/hodlr.hpp"

#include <cmath>
#include <functional>
#include <numeric>

#include "core/error.hpp"
#include "la/blas.hpp"
#include "la/flops.hpp"
#include "la/lapack.hpp"
#include "util/timer.hpp"

namespace gofmm::baseline {

template <typename T>
Hodlr<T>::Hodlr(const SPDMatrix<T>& k, const HodlrOptions& options)
    : n_(k.size()), options_(options) {
  Timer timer;
  root_ = std::make_unique<HNode>();
  root_->begin = 0;
  root_->count = n_;
  build(root_.get(), k);
  stats_.compress_seconds = timer.seconds();
  double sum = 0;
  index_t cnt = 0;
  collect_ranks(root_.get(), sum, cnt);
  stats_.avg_rank = cnt > 0 ? sum / double(cnt) : 0;
}

template <typename T>
void Hodlr<T>::build(HNode* node, const SPDMatrix<T>& k) {
  if (node->count <= options_.leaf_size) {
    std::vector<index_t> idx(static_cast<std::size_t>(node->count));
    std::iota(idx.begin(), idx.end(), node->begin);
    node->diag = k.submatrix(idx, idx);
    stats_.entries += std::uint64_t(node->count) * std::uint64_t(node->count);
    return;
  }
  const index_t half = node->count - node->count / 2;
  node->left = std::make_unique<HNode>();
  node->right = std::make_unique<HNode>();
  node->left->begin = node->begin;
  node->left->count = half;
  node->right->begin = node->begin + half;
  node->right->count = node->count - half;

  // Off-diagonal block K(l, r) via ACA in the input ordering.
  std::vector<index_t> li(static_cast<std::size_t>(half));
  std::vector<index_t> ri(static_cast<std::size_t>(node->count - half));
  std::iota(li.begin(), li.end(), node->left->begin);
  std::iota(ri.begin(), ri.end(), node->right->begin);
  AcaResult<T> lr =
      aca(k, li, ri, T(options_.tolerance), options_.max_rank);
  node->u12 = std::move(lr.u);
  node->v12 = std::move(lr.v);
  stats_.entries += std::uint64_t(lr.entries_evaluated);
  stats_.max_rank = std::max(stats_.max_rank, lr.rank);

  build(node->left.get(), k);
  build(node->right.get(), k);
}

template <typename T>
void Hodlr<T>::apply_node(const HNode* node, const la::Matrix<T>& w,
                          la::Matrix<T>& u, EvalWorkspace<T>& ws) const {
  const index_t r = w.cols();
  if (node->is_leaf()) {
    const la::Matrix<T> wloc = w.block(node->begin, 0, node->count, r);
    la::Matrix<T> uloc(node->count, r);
    la::gemm(la::Op::None, la::Op::None, T(1), node->diag, wloc, T(0), uloc);
    ws.flops.fetch_add(
        la::FlopCounter::gemm_flops(node->count, r, node->count),
        std::memory_order_relaxed);
    for (index_t j = 0; j < r; ++j) {
      T* dst = u.col(j) + node->begin;
      const T* src = uloc.col(j);
      for (index_t i = 0; i < node->count; ++i) dst[i] += src[i];
    }
    return;
  }
  const HNode* l = node->left.get();
  const HNode* rt = node->right.get();
  const index_t rank = node->u12.cols();
  if (rank > 0) {
    ws.flops.fetch_add(2 * (la::FlopCounter::gemm_flops(rank, r, rt->count) +
                            la::FlopCounter::gemm_flops(l->count, r, rank)),
                       std::memory_order_relaxed);
    // u_l += U (V w_r) and u_r += V^T (U^T w_l).
    const la::Matrix<T> wr = w.block(rt->begin, 0, rt->count, r);
    la::Matrix<T> tmp(rank, r);
    la::gemm(la::Op::None, la::Op::None, T(1), node->v12, wr, T(0), tmp);
    la::Matrix<T> ul(l->count, r);
    la::gemm(la::Op::None, la::Op::None, T(1), node->u12, tmp, T(0), ul);
    for (index_t j = 0; j < r; ++j) {
      T* dst = u.col(j) + l->begin;
      const T* src = ul.col(j);
      for (index_t i = 0; i < l->count; ++i) dst[i] += src[i];
    }
    const la::Matrix<T> wl = w.block(l->begin, 0, l->count, r);
    la::Matrix<T> tmp2(rank, r);
    la::gemm(la::Op::Trans, la::Op::None, T(1), node->u12, wl, T(0), tmp2);
    la::Matrix<T> ur(rt->count, r);
    la::gemm(la::Op::Trans, la::Op::None, T(1), node->v12, tmp2, T(0), ur);
    for (index_t j = 0; j < r; ++j) {
      T* dst = u.col(j) + rt->begin;
      const T* src = ur.col(j);
      for (index_t i = 0; i < rt->count; ++i) dst[i] += src[i];
    }
  }
  apply_node(l, w, u, ws);
  apply_node(rt, w, u, ws);
}

template <typename T>
la::Matrix<T> Hodlr<T>::do_apply(const la::Matrix<T>& w,
                                 EvalWorkspace<T>& ws) const {
  // Stateless recursion: no per-node scratch, so the workspace only
  // carries the timing/flop bookkeeping.
  la::Matrix<T> u(n_, w.cols());
  apply_node(root_.get(), w, u, ws);
  return u;
}

template <typename T>
std::uint64_t Hodlr<T>::memory_bytes() const {
  std::uint64_t bytes = 0;
  std::function<void(const HNode*)> visit = [&](const HNode* node) {
    bytes += std::uint64_t(node->diag.size() + node->u12.size() +
                           node->v12.size() + node->diag_chol.size() +
                           node->x_factor.size() + node->capacitance.size()) *
             sizeof(T);
    bytes += std::uint64_t(node->cap_pivots.size()) * sizeof(index_t);
    if (!node->is_leaf()) {
      visit(node->left.get());
      visit(node->right.get());
    }
  };
  visit(root_.get());
  return bytes;
}

template <typename T>
OperatorStats Hodlr<T>::operator_stats() const {
  OperatorStats out;
  out.compress_seconds = stats_.compress_seconds;
  out.avg_rank = stats_.avg_rank;
  out.max_rank = stats_.max_rank;
  out.memory_bytes = memory_bytes();
  return out;
}

template <typename T>
void Hodlr<T>::factorize(T regularization) {
  check<Error>(regularization >= T(0),
               "Hodlr::factorize: regularization must be >= 0");
  Timer timer;
  // Invalidate up front: if the elimination throws partway through a
  // re-factorize, the operator must not keep serving solves from a mix of
  // old- and new-λ factors.
  factorized_ = false;
  fact_stats_ = FactorizationStats{};
  fact_stats_.regularization = double(regularization);
  logdet_ = 0;
  det_sign_ = 1;
  factorize_node(root_.get(), regularization);
  factorized_ = true;
  fact_stats_.seconds = timer.seconds();
  fact_stats_.positive_definite = det_sign_ > 0;
  std::function<void(const HNode*)> visit = [&](const HNode* node) {
    fact_stats_.memory_bytes +=
        std::uint64_t(node->diag_chol.size() + node->x_factor.size() +
                      node->capacitance.size()) *
        sizeof(T);
    fact_stats_.memory_bytes +=
        std::uint64_t(node->cap_pivots.size()) * sizeof(index_t);
    if (!node->is_leaf()) {
      visit(node->left.get());
      visit(node->right.get());
    }
  };
  visit(root_.get());
}

template <typename T>
double Hodlr<T>::logdet() const {
  check<StateError>(factorized_, "Hodlr::logdet: call factorize() first");
  check<StateError>(det_sign_ > 0,
                    "Hodlr::logdet: factored operator is not positive "
                    "definite");
  return logdet_;
}

template <typename T>
FactorizationStats Hodlr<T>::factorization_stats() const {
  check<StateError>(factorized_,
                    "Hodlr::factorization_stats: call factorize() first");
  return fact_stats_;
}

template <typename T>
void Hodlr<T>::factorize_node(HNode* node, T regularization) {
  if (node->is_leaf()) {
    node->diag_chol = node->diag;
    for (index_t i = 0; i < node->count; ++i)
      node->diag_chol(i, i) += regularization;
    check<StateError>(la::potrf_lower(node->diag_chol),
                      "Hodlr::factorize: leaf diagonal block not positive "
                      "definite; increase the regularization");
    for (index_t i = 0; i < node->count; ++i)
      logdet_ += 2.0 * std::log(double(node->diag_chol(i, i)));
    fact_stats_.flops += std::uint64_t(node->count) *
                         std::uint64_t(node->count) *
                         std::uint64_t(node->count) / 3;
    return;
  }
  factorize_node(node->left.get(), regularization);
  factorize_node(node->right.get(), regularization);

  const index_t r = node->u12.cols();
  if (r == 0) return;  // block-diagonal at this level
  const index_t nl = node->left->count;
  const index_t nr = node->right->count;

  // W = [[U, 0], [0, Vᵀ]] so the off-diagonal correction is W M Wᵀ with
  // M = [[0, I], [I, 0]] (and M⁻¹ = M).
  la::Matrix<T> w(node->count, 2 * r);
  for (index_t j = 0; j < r; ++j) {
    std::copy_n(node->u12.col(j), nl, w.col(j));
    for (index_t i = 0; i < nr; ++i) w(nl + i, r + j) = node->v12(j, i);
  }

  // X = blkdiag(K_l, K_r)⁻¹ W via the children's full solves.
  node->x_factor = w;
  {
    la::Matrix<T> top = node->x_factor.block(0, 0, nl, 2 * r);
    solve_node(node->left.get(), top);
    la::Matrix<T> bot = node->x_factor.block(nl, 0, nr, 2 * r);
    solve_node(node->right.get(), bot);
    for (index_t j = 0; j < 2 * r; ++j) {
      std::copy_n(top.col(j), nl, node->x_factor.col(j));
      std::copy_n(bot.col(j), nr, node->x_factor.col(j) + nl);
    }
  }

  // Capacitance C = M + Wᵀ X, LU-factorized (symmetric indefinite).
  la::Matrix<T> cap(2 * r, 2 * r);
  la::gemm(la::Op::Trans, la::Op::None, T(1), w, node->x_factor, T(0), cap);
  for (index_t j = 0; j < r; ++j) {
    cap(j, r + j) += T(1);
    cap(r + j, j) += T(1);
  }
  node->capacitance = std::move(cap);
  check<StateError>(la::getrf(node->capacitance, node->cap_pivots),
                    "Hodlr::factorize: singular capacitance system; "
                    "increase the regularization");
  fact_stats_.flops += 2ull * std::uint64_t(2 * r) * std::uint64_t(2 * r) *
                       std::uint64_t(2 * r) / 3;
  fact_stats_.num_couplings += 1;
  fact_stats_.max_coupling_size =
      std::max(fact_stats_.max_coupling_size, 2 * r);

  // det(D + W M Wᵀ) = det(D) · det(M) · det(M⁻¹ + Wᵀ D⁻¹ W): the stored
  // capacitance is M⁻¹ + Wᵀ D⁻¹ W (M is its own inverse) and det(M) =
  // (−1)^r for the 2r-by-2r block-swap M = [[0, I], [I, 0]].
  if (r % 2 != 0) det_sign_ = -det_sign_;
  for (index_t i = 0; i < 2 * r; ++i) {
    const double u = double(node->capacitance(i, i));
    if (u < 0) det_sign_ = -det_sign_;
    logdet_ += std::log(std::abs(u));
    if (node->cap_pivots[std::size_t(i)] != i) det_sign_ = -det_sign_;
  }
}

template <typename T>
void Hodlr<T>::solve_node(const HNode* node, la::Matrix<T>& b) const {
  const index_t rhs = b.cols();
  if (node->is_leaf()) {
    la::chol_solve(node->diag_chol, b);
    return;
  }
  const index_t nl = node->left->count;
  const index_t nr = node->right->count;

  // y = blkdiag(K_l, K_r)⁻¹ b.
  la::Matrix<T> top = b.block(0, 0, nl, rhs);
  solve_node(node->left.get(), top);
  la::Matrix<T> bot = b.block(nl, 0, nr, rhs);
  solve_node(node->right.get(), bot);
  for (index_t j = 0; j < rhs; ++j) {
    std::copy_n(top.col(j), nl, b.col(j));
    std::copy_n(bot.col(j), nr, b.col(j) + nl);
  }

  const index_t r = node->u12.cols();
  if (r == 0) return;
  // Woodbury downdate: y -= X (M + Wᵀ X)⁻¹ Wᵀ y, with Wᵀ y assembled from
  // the stored factors (W is not kept; its blocks are u12 / v12ᵀ).
  la::Matrix<T> wty(2 * r, rhs);
  {
    const la::Matrix<T> yl = b.block(0, 0, nl, rhs);
    const la::Matrix<T> yr = b.block(nl, 0, nr, rhs);
    la::Matrix<T> upper(r, rhs);
    la::gemm(la::Op::Trans, la::Op::None, T(1), node->u12, yl, T(0), upper);
    la::Matrix<T> lower(r, rhs);
    la::gemm(la::Op::None, la::Op::None, T(1), node->v12, yr, T(0), lower);
    for (index_t j = 0; j < rhs; ++j) {
      std::copy_n(upper.col(j), r, wty.col(j));
      std::copy_n(lower.col(j), r, wty.col(j) + r);
    }
  }
  la::getrs(node->capacitance, node->cap_pivots, wty);
  la::gemm(la::Op::None, la::Op::None, T(-1), node->x_factor, wty, T(1), b);
}

template <typename T>
la::Matrix<T> Hodlr<T>::solve(const la::Matrix<T>& b) const {
  check<StateError>(factorized_, "Hodlr::solve: call factorize() first");
  check<DimensionError>(b.rows() == n_, "Hodlr::solve: wrong row count");
  la::Matrix<T> x = b;
  solve_node(root_.get(), x);
  return x;
}

template <typename T>
void Hodlr<T>::collect_ranks(const HNode* node, double& sum,
                             index_t& cnt) const {
  if (node->is_leaf()) return;
  sum += double(node->u12.cols());
  cnt += 1;
  collect_ranks(node->left.get(), sum, cnt);
  collect_ranks(node->right.get(), sum, cnt);
}

template class Hodlr<float>;
template class Hodlr<double>;

}  // namespace gofmm::baseline
