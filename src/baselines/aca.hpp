// Partial-pivoted Adaptive Cross Approximation (ACA).
//
// The low-rank engine of the HODLR baseline (paper Table 3): approximates a
// block K(I, J) as U V using O((|I| + |J|) r) entry evaluations, without
// touching the whole block. This is the Bebendorf-Rjasanow scheme the HODLR
// library uses.
#pragma once

#include <span>
#include <vector>

#include "core/operator.hpp"
#include "core/spd_matrix.hpp"
#include "la/matrix.hpp"

namespace gofmm::baseline {

/// Low-rank factorization K(I, J) ≈ u * v (u is |I|-by-r, v is r-by-|J|).
template <typename T>
struct AcaResult {
  la::Matrix<T> u;
  la::Matrix<T> v;
  index_t rank = 0;
  index_t entries_evaluated = 0;  ///< oracle calls consumed
};

/// Runs partial-pivoted ACA on K(I, J) until the running estimate of the
/// relative Frobenius error drops below rel_tol or rank reaches max_rank.
template <typename T>
AcaResult<T> aca(const SPDMatrix<T>& k, std::span<const index_t> I,
                 std::span<const index_t> J, T rel_tol, index_t max_rank);

extern template AcaResult<float> aca<float>(const SPDMatrix<float>&,
                                            std::span<const index_t>,
                                            std::span<const index_t>, float,
                                            index_t);
extern template AcaResult<double> aca<double>(const SPDMatrix<double>&,
                                              std::span<const index_t>,
                                              std::span<const index_t>, double,
                                              index_t);

/// Global low-rank operator: K ≈ U V over the FULL index set, built by one
/// partial-pivoted ACA sweep. The crudest operator behind the common
/// interface — no hierarchy at all — so it doubles as the "can a flat
/// low-rank model do it?" control in backend comparisons. The matvec is
/// u = U (V w): O(N r) per right-hand side, const and thread-safe.
template <typename T>
class AcaLowRank final : public CompressedOperator<T> {
 public:
  AcaLowRank(const SPDMatrix<T>& k, T rel_tol, index_t max_rank);

  // --- CompressedOperator interface ---
  [[nodiscard]] index_t size() const override { return n_; }
  [[nodiscard]] std::string name() const override { return "aca"; }
  [[nodiscard]] std::uint64_t memory_bytes() const override {
    return std::uint64_t(u_.size() + v_.size()) * sizeof(T);
  }
  [[nodiscard]] OperatorStats operator_stats() const override;

  [[nodiscard]] index_t rank() const { return rank_; }
  [[nodiscard]] index_t entries_evaluated() const { return entries_; }

 protected:
  la::Matrix<T> do_apply(const la::Matrix<T>& w,
                         EvalWorkspace<T>& ws) const override;

 private:
  index_t n_;
  index_t rank_ = 0;
  index_t entries_ = 0;
  double compress_seconds_ = 0;
  la::Matrix<T> u_;  ///< N-by-rank
  la::Matrix<T> v_;  ///< rank-by-N
};

extern template class AcaLowRank<float>;
extern template class AcaLowRank<double>;

}  // namespace gofmm::baseline
