// Partial-pivoted Adaptive Cross Approximation (ACA).
//
// The low-rank engine of the HODLR baseline (paper Table 3): approximates a
// block K(I, J) as U V using O((|I| + |J|) r) entry evaluations, without
// touching the whole block. This is the Bebendorf-Rjasanow scheme the HODLR
// library uses.
#pragma once

#include <span>
#include <vector>

#include "core/spd_matrix.hpp"
#include "la/matrix.hpp"

namespace gofmm::baseline {

/// Low-rank factorization K(I, J) ≈ u * v (u is |I|-by-r, v is r-by-|J|).
template <typename T>
struct AcaResult {
  la::Matrix<T> u;
  la::Matrix<T> v;
  index_t rank = 0;
  index_t entries_evaluated = 0;  ///< oracle calls consumed
};

/// Runs partial-pivoted ACA on K(I, J) until the running estimate of the
/// relative Frobenius error drops below rel_tol or rank reaches max_rank.
template <typename T>
AcaResult<T> aca(const SPDMatrix<T>& k, std::span<const index_t> I,
                 std::span<const index_t> J, T rel_tol, index_t max_rank);

extern template AcaResult<float> aca<float>(const SPDMatrix<float>&,
                                            std::span<const index_t>,
                                            std::span<const index_t>, float,
                                            index_t);
extern template AcaResult<double> aca<double>(const SPDMatrix<double>&,
                                              std::span<const index_t>,
                                              std::span<const index_t>, double,
                                              index_t);

}  // namespace gofmm::baseline
