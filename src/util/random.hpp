// The one seeded entry point for every randomized estimator.
//
// Stochastic estimators in this library — the sampled relative-error
// estimator (core/error.cpp), the Hutchinson/Hutchinson++ trace and SLQ
// logdet estimators (src/spectral/trace.hpp), and the Lanczos starting
// vectors (src/spectral/eigs.hpp) — share the reproducibility contract
// that a (seed, shape) pair fully determines every draw: same seed, same
// bits, on every platform and thread count. SampleStream packages the
// primitives those sites need over one deterministic Prng so no call site
// hand-rolls its own generator state, and normal_quantile supplies the z*
// multiplier that turns a probe-sample stddev into a confidence interval.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "la/matrix.hpp"
#include "util/prng.hpp"

namespace gofmm {

/// A seeded stream of sampling primitives. Draws are consumed strictly in
/// call order from one xoshiro256** state, so a fixed seed plus a fixed
/// call sequence reproduces bit-identical samples — the contract the
/// spectral test tier's seeded-RNG tests pin down. Not thread-safe; give
/// each concurrent estimator its own stream (distinct seeds).
class SampleStream {
 public:
  /// Stream seeded via SplitMix64 expansion of `seed` (see Prng).
  explicit SampleStream(std::uint64_t seed) : rng_(seed) {}

  /// `count` DISTINCT indices from {0..n-1} (partial Fisher-Yates; count
  /// clamped at n). Without replacement: collisions would bias row-sampled
  /// error estimates whenever count approaches n.
  std::vector<index_t> rows(index_t n, index_t count) {
    return sample_without_replacement(rng_, n, count);
  }

  /// Fills `z` with i.i.d. Rademacher ±1 entries in column-major order —
  /// the variance-optimal probe distribution for Hutchinson on matrices
  /// with dominant diagonal mass.
  template <typename T>
  void rademacher(la::Matrix<T>& z) {
    for (index_t j = 0; j < z.cols(); ++j)
      for (index_t i = 0; i < z.rows(); ++i)
        z(i, j) = rng_.uniform() < 0.5 ? T(-1) : T(1);
  }

  /// Fills `z` with i.i.d. standard normal entries in column-major order
  /// (rotation-invariant probes: sketch panels, Lanczos starting vectors).
  template <typename T>
  void gaussian(la::Matrix<T>& z) {
    for (index_t j = 0; j < z.cols(); ++j)
      for (index_t i = 0; i < z.rows(); ++i) z(i, j) = T(rng_.normal());
  }

  /// The underlying generator, for sites needing scalar draws (e.g. the
  /// refactorize fuzz harness's shift schedules).
  Prng& prng() { return rng_; }

 private:
  Prng rng_;
};

/// Standard-normal quantile Φ⁻¹(p) for p in (0, 1) — Acklam's rational
/// approximation (|relative error| < 1.2e-9 over the full range), ample
/// for confidence-interval multipliers: z* = normal_quantile(1-(1-c)/2)
/// turns a sample stddev into a two-sided level-c interval half-width.
inline double normal_quantile(double p) {
  // Coefficients of Acklam's central/tail rational approximations.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (!(p > 0.0 && p < 1.0))
    return p <= 0.0 ? -std::numeric_limits<double>::infinity()
                    : std::numeric_limits<double>::infinity();
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace gofmm
