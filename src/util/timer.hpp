// Wall-clock timing helpers used by benches and the HEFT cost model.
#pragma once

#include <chrono>

namespace gofmm {

/// Monotonic wall-clock timer with seconds granularity suitable for
/// phase timing ("Comp"/"Eval" columns of the paper's tables).
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the timer.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Times a callable and returns elapsed seconds.
template <typename F>
double timed(F&& f) {
  Timer t;
  f();
  return t.seconds();
}

}  // namespace gofmm
