// Common primitive types and small helpers shared by every module.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace gofmm {

/// Row/column index type used throughout the library. Signed so that
/// reverse loops and differences are safe.
using index_t = std::int64_t;

/// Throws std::invalid_argument with `msg` when `cond` is false.
/// Used to validate public-API arguments (always on, also in Release).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Integer ceiling division for non-negative operands.
constexpr index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

/// Rounds `a` up to the next multiple of `b`.
constexpr index_t round_up(index_t a, index_t b) { return ceil_div(a, b) * b; }

}  // namespace gofmm
