// Deterministic, fast pseudo-random number generation.
//
// All stochastic components (random projection trees, synthetic datasets,
// randomized sketches) draw from this generator so that tests and benches
// are reproducible from a single seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace gofmm {

/// xoshiro256** by Blackman & Vigna: tiny state, excellent quality,
/// much faster than std::mt19937_64 and identical across platforms.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to fill the four state words from one seed.
    auto next_seed = [&seed]() {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& w : state_) w = next_seed();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return double((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased enough for sampling purposes.
  index_t below(index_t n) {
    return n > 0 ? index_t((*this)() % std::uint64_t(n)) : 0;
  }

  /// Standard normal via Box-Muller (cached second value discarded for
  /// simplicity; generation is not a hot path).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// `count` DISTINCT indices drawn uniformly from {0..n-1} via a partial
/// Fisher-Yates shuffle (count clamped at n). Sampling WITHOUT replacement
/// matters: with replacement, collisions bias row-sampled error estimates
/// whenever count approaches n — the shared implementation keeps every
/// sampling site (error estimator, preconditioner probes, golden harness)
/// on the unbiased path.
inline std::vector<index_t> sample_without_replacement(Prng& rng, index_t n,
                                                       index_t count) {
  const index_t s = count < n ? count : n;
  std::vector<index_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), index_t(0));
  for (index_t i = 0; i < s; ++i) {
    const index_t j = i + rng.below(n - i);
    std::swap(idx[std::size_t(i)], idx[std::size_t(j)]);
  }
  idx.resize(std::size_t(s));
  return idx;
}

}  // namespace gofmm
