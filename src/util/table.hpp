// Plain-text table printer: every bench binary reports its figure/table in
// the same aligned format the paper's tables use.
#pragma once

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace gofmm {

/// Accumulates rows of string cells and prints them with aligned columns.
/// Used by the bench harness to regenerate the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends one row; the number of cells must match the header.
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Formats a double with %.*g (compact, full shape information).
  static std::string num(double v, int sig = 3) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", sig, v);
    return buf;
  }

  /// Formats a double in scientific notation like the paper ("2E-5").
  static std::string sci(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.0E", v);
    return buf;
  }

  /// Prints the table with a separator line under the header.
  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
      width[c] = header_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << row[c];
        if (c + 1 < row.size())
          os << std::string(width[c] - row[c].size() + 2, ' ');
      }
      os << '\n';
    };
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
    os.flush();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gofmm
