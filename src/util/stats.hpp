// Small descriptive-statistics helpers used to report ranks and timings.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace gofmm {

/// Arithmetic mean; 0 for an empty sample.
inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / double(xs.size());
}

/// Sample standard deviation; 0 for fewer than two observations.
inline double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / double(xs.size() - 1));
}

/// p-th percentile (0 <= p <= 100) by nearest-rank on a copy.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto k = static_cast<std::size_t>(
      std::min<double>(double(xs.size()) - 1.0,
                       std::max(0.0, p / 100.0 * double(xs.size() - 1))));
  return xs[k];
}

}  // namespace gofmm
