// Task abstraction for the self-contained runtime (paper §2.3).
//
// GOFMM's compression and evaluation phases are tree traversals whose
// read-after-write dependencies are only known at runtime (e.g. S2S(β)
// reads the skeleton weights of every node in Far(β), which the neighbor
// search determined). Algorithms therefore build an explicit DAG of Task
// objects via symbolic traversals and hand it to the Scheduler.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace gofmm::rt {

namespace detail {
struct TaskAccess;  // scheduler.cpp: the scheduler's view of Task wiring
struct GraphRun;    // scheduler.cpp: one in-flight graph execution
}  // namespace detail

/// A unit of work with explicit RAW dependencies.
///
/// Lifetime: owned by a TaskGraph; raw Task* handles are stable for the
/// graph's lifetime and are used to wire edges.
class Task {
 public:
  virtual ~Task() = default;

  /// Performs the work. `worker_id` identifies the executing worker
  /// (used by workers that own auxiliary resources).
  virtual void execute(int worker_id) = 0;

  /// Estimated cost in arbitrary-but-consistent units (FLOPs per Table 2 of
  /// the paper). The HEFT dispatcher minimises estimated finish time over
  /// worker queues using this value.
  [[nodiscard]] virtual double cost() const { return 1.0; }

  /// Human-readable label for traces and tests.
  [[nodiscard]] virtual std::string name() const { return "task"; }

 private:
  friend class TaskGraph;
  friend struct detail::TaskAccess;
  std::vector<Task*> successors_;
  std::atomic<index_t> unmet_{0};
  index_t num_preds_ = 0;
  detail::GraphRun* run_ = nullptr;  // the submit() this task belongs to
};

/// Task wrapping a callable; the common case for algorithm phases.
class FunctionTask final : public Task {
 public:
  FunctionTask(std::function<void(int)> fn, double cost, std::string name)
      : fn_(std::move(fn)), cost_(cost), name_(std::move(name)) {}

  void execute(int worker_id) override { fn_(worker_id); }
  [[nodiscard]] double cost() const override { return cost_; }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::function<void(int)> fn_;
  double cost_;
  std::string name_;
};

/// Owns a set of tasks plus their dependency edges; built once per phase by
/// a symbolic traversal, then executed by a Scheduler.
class TaskGraph {
 public:
  /// Creates a task from a callable. Cost units must be consistent across
  /// the whole graph (the library uses FLOP estimates).
  Task* emplace(std::function<void(int)> fn, double cost = 1.0,
                std::string name = "task") {
    tasks_.push_back(
        std::make_unique<FunctionTask>(std::move(fn), cost, std::move(name)));
    return tasks_.back().get();
  }

  /// Adds a RAW edge: `succ` may start only after `pred` finished.
  /// Both tasks must belong to this graph. Duplicate edges are benign but
  /// wasteful; callers de-duplicate where it matters.
  void add_edge(Task* pred, Task* succ) {
    pred->successors_.push_back(succ);
    succ->num_preds_ += 1;
  }

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] const std::vector<std::unique_ptr<Task>>& tasks() const {
    return tasks_;
  }

 private:
  friend struct detail::TaskAccess;
  std::vector<std::unique_ptr<Task>> tasks_;
};

}  // namespace gofmm::rt
