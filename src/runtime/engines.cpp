#include "runtime/engines.hpp"

namespace gofmm::rt {

Engine engine_from_string(const std::string& name) {
  if (name == "level") return Engine::LevelByLevel;
  if (name == "omptask") return Engine::OmpTask;
  if (name == "heft") return Engine::Heft;
  throw std::invalid_argument("unknown engine: " + name);
}

std::string to_string(Engine e) {
  switch (e) {
    case Engine::LevelByLevel:
      return "level";
    case Engine::OmpTask:
      return "omptask";
    case Engine::Heft:
      return "heft";
  }
  return "?";
}

}  // namespace gofmm::rt
