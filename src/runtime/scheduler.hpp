// Work-stealing HEFT scheduler (paper §2.3 "Runtime").
//
// Ready tasks are dispatched to the worker whose queue has the minimum
// estimated finish time (sum of estimated costs of already-queued work);
// idle workers steal from the most-loaded peer. This reproduces the paper's
// light-weight dynamic Heterogeneous-Earliest-Finish-Time runtime with a
// job-stealing fallback for when the cost model misestimates.
//
// The scheduler owns a PERSISTENT worker pool: threads start at
// construction and live until destruction, so a long-lived owner (the
// solve service of src/service/) pays thread startup once, not per graph.
// Graphs are executed either synchronously (run()) or asynchronously
// (submit(), returning a future) — concurrent submits from different
// threads interleave on the one pool, which is how the service overlaps
// operator builds with solve sweeps.
#pragma once

#include <future>
#include <memory>

#include "runtime/task.hpp"

namespace gofmm::rt {

/// The submitted graph has a dependency cycle: some tasks can never become
/// ready. Detected by a Kahn topological pass BEFORE any task executes, so
/// a cyclic graph fails fast instead of stalling the pool (the seed
/// scheduler detected this as a multi-second idle-spin stall; the check is
/// now O(tasks + edges) and deterministic).
class CycleError : public std::runtime_error {
 public:
  /// `msg` names one task on the cycle for diagnosis.
  explicit CycleError(const std::string& msg);
};

/// Executes TaskGraphs on a fixed persistent pool of worker threads.
class Scheduler {
 public:
  /// `num_workers` <= 0 selects the hardware concurrency. Workers start
  /// immediately and idle on a condition variable until work arrives.
  explicit Scheduler(int num_workers = 0);

  /// Drains every submitted graph, then stops and joins the workers.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;             ///< owns threads
  Scheduler& operator=(const Scheduler&) = delete;  ///< owns threads

  /// Runs every task in the graph respecting dependencies; blocks until all
  /// tasks completed. The graph can be re-run (dependency counters are
  /// reinitialised on entry). Throws CycleError if the graph has a
  /// dependency cycle (no task executes then); rethrows the first task
  /// exception after the graph drains. Must not be called from inside a
  /// task on this scheduler (the worker would wait on itself).
  void run(TaskGraph& graph);

  /// Asynchronous variant of run(): enqueues the graph's sources and
  /// returns a future that becomes ready when every task completed (or
  /// carries the first task exception). The caller must keep `graph` alive
  /// and unmodified until the future is ready. Throws CycleError before
  /// enqueuing anything if the graph is cyclic. A graph may only be
  /// re-submitted after its previous future completed.
  [[nodiscard]] std::shared_future<void> submit(TaskGraph& graph);

  [[nodiscard]] int num_workers() const { return num_workers_; }

  /// Total tasks executed by steals since construction; exposed so tests
  /// and the scheduler bench can observe load-balancing behaviour.
  [[nodiscard]] std::uint64_t steal_count() const;

 private:
  struct Impl;  // worker pool, queues, wake plumbing (scheduler.cpp)
  int num_workers_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gofmm::rt
