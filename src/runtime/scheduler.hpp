// Work-stealing HEFT scheduler (paper §2.3 "Runtime").
//
// Ready tasks are dispatched to the worker whose queue has the minimum
// estimated finish time (sum of estimated costs of already-queued work);
// idle workers steal from the most-loaded peer. This reproduces the paper's
// light-weight dynamic Heterogeneous-Earliest-Finish-Time runtime with a
// job-stealing fallback for when the cost model misestimates.
#pragma once

#include "runtime/task.hpp"

namespace gofmm::rt {

/// Executes TaskGraphs on a fixed set of worker threads.
class Scheduler {
 public:
  /// `num_workers` <= 0 selects the hardware concurrency.
  explicit Scheduler(int num_workers = 0);

  /// Runs every task in the graph respecting dependencies; blocks until all
  /// tasks completed. The graph can be re-run (dependency counters are
  /// reinitialised on entry). Throws if the graph has a dependency cycle
  /// (detected as a stall with pending tasks and nothing ready).
  void run(TaskGraph& graph);

  [[nodiscard]] int num_workers() const { return num_workers_; }

  /// Total tasks executed by steals since construction; exposed so tests
  /// and the scheduler bench can observe load-balancing behaviour.
  [[nodiscard]] std::uint64_t steal_count() const { return steals_; }

 private:
  int num_workers_;
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace gofmm::rt
