// Tree-traversal execution engines (paper §2.3 "Other parallel
// implementations").
//
// GOFMM expresses each phase as tasks attached to tree nodes with one of
// four orders: POST (children before parent), PRE (parent before children),
// ANY, and LEAF. This header offers three interchangeable ways to run them:
//
//  * Engine::LevelByLevel — the classical synchronous scheme: one parallel
//    loop per tree level with an implicit barrier between levels.
//  * Engine::OmpTask      — recursive OpenMP tasks (the paper's `omp task`
//    variant): dependencies via recursion + taskwait.
//  * Engine::Heft         — the runtime DAG scheduler of scheduler.hpp; the
//    phase builder wires explicit edges and out-of-order execution happens
//    naturally (the paper's best-performing "wall-clock time" scheme).
//
// The templates here implement the first two; the DAG engine is used by the
// phase builders in core/, which know the cross-tree dependencies.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace gofmm::rt {

/// Selects how tree-phase tasks are executed.
enum class Engine {
  LevelByLevel,  ///< level-synchronous parallel-for traversals
  OmpTask,       ///< recursive OpenMP task traversals
  Heft,          ///< dependency-DAG runtime with HEFT + work stealing
};

/// Parses "level" / "omptask" / "heft" (case-sensitive); throws otherwise.
Engine engine_from_string(const std::string& name);
std::string to_string(Engine e);

/// Level-synchronous bottom-up traversal: for each level from the deepest
/// to the root, run f on every node of the level in parallel, with a
/// barrier between levels. `levels[d]` lists the nodes at depth d.
template <typename Node, typename F>
void level_bottom_up(const std::vector<std::vector<Node*>>& levels, F&& f) {
  for (index_t d = index_t(levels.size()) - 1; d >= 0; --d) {
    const auto& level = levels[std::size_t(d)];
#pragma omp parallel for schedule(dynamic, 1)
    for (index_t i = 0; i < index_t(level.size()); ++i)
      f(level[std::size_t(i)]);
  }
}

/// Level-synchronous top-down traversal (root level first).
template <typename Node, typename F>
void level_top_down(const std::vector<std::vector<Node*>>& levels, F&& f) {
  for (std::size_t d = 0; d < levels.size(); ++d) {
    const auto& level = levels[d];
#pragma omp parallel for schedule(dynamic, 1)
    for (index_t i = 0; i < index_t(level.size()); ++i)
      f(level[std::size_t(i)]);
  }
}

/// Parallel unordered traversal over an explicit node list ("ANY" order).
template <typename Node, typename F>
void any_order(const std::vector<Node*>& nodes, F&& f) {
#pragma omp parallel for schedule(dynamic, 1)
  for (index_t i = 0; i < index_t(nodes.size()); ++i) f(nodes[std::size_t(i)]);
}

namespace detail {

template <typename Node, typename F>
void omp_postorder_rec(Node* node, F& f) {
  if (node == nullptr) return;
  if (node->left() != nullptr) {
#pragma omp task shared(f)
    omp_postorder_rec(node->left(), f);
#pragma omp task shared(f)
    omp_postorder_rec(node->right(), f);
#pragma omp taskwait
  }
  f(node);
}

template <typename Node, typename F>
void omp_preorder_rec(Node* node, F& f) {
  if (node == nullptr) return;
  f(node);
  if (node->left() != nullptr) {
#pragma omp task shared(f)
    omp_preorder_rec(node->left(), f);
#pragma omp task shared(f)
    omp_preorder_rec(node->right(), f);
#pragma omp taskwait
  }
}

}  // namespace detail

/// Postorder traversal with recursive OpenMP tasks (paper's `omp task`
/// comparison scheme). Children of a node run as independent tasks; the
/// parent task waits on them, encoding the POST dependency.
template <typename Node, typename F>
void omp_postorder(Node* root, F&& f) {
#pragma omp parallel
#pragma omp single nowait
  detail::omp_postorder_rec(root, f);
}

/// Preorder traversal with recursive OpenMP tasks.
template <typename Node, typename F>
void omp_preorder(Node* root, F&& f) {
#pragma omp parallel
#pragma omp single nowait
  detail::omp_preorder_rec(root, f);
}

}  // namespace gofmm::rt
