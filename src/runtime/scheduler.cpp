#include "runtime/scheduler.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

namespace gofmm::rt {

namespace {

/// Per-worker ready queue with an estimated-finish-time accumulator.
struct WorkerQueue {
  std::mutex mu;
  std::deque<Task*> ready;
  double pending_cost = 0.0;  // guarded by mu

  void push(Task* t) {
    std::lock_guard<std::mutex> lk(mu);
    ready.push_back(t);
    pending_cost += t->cost();
  }

  Task* pop_front() {
    std::lock_guard<std::mutex> lk(mu);
    if (ready.empty()) return nullptr;
    Task* t = ready.front();
    ready.pop_front();
    pending_cost -= t->cost();
    return t;
  }

  /// Steal from the back (cold end) of a victim's queue.
  Task* pop_back() {
    std::lock_guard<std::mutex> lk(mu);
    if (ready.empty()) return nullptr;
    Task* t = ready.back();
    ready.pop_back();
    pending_cost -= t->cost();
    return t;
  }

  double load() {
    std::lock_guard<std::mutex> lk(mu);
    return pending_cost;
  }
};

}  // namespace

Scheduler::Scheduler(int num_workers)
    : num_workers_(num_workers > 0
                       ? num_workers
                       : int(std::max(1u, std::thread::hardware_concurrency()))) {}

void Scheduler::run(TaskGraph& graph) {
  const int W = num_workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues;
  queues.reserve(std::size_t(W));
  for (int w = 0; w < W; ++w) queues.push_back(std::make_unique<WorkerQueue>());

  std::atomic<index_t> remaining{index_t(graph.size())};
  std::mutex wake_mu;
  std::condition_variable wake_cv;
  std::atomic<bool> failed{false};

  // HEFT dispatch: enqueue on the worker with minimum estimated finish time.
  auto dispatch = [&](Task* t) {
    int best = 0;
    double best_load = queues[0]->load();
    for (int w = 1; w < W; ++w) {
      const double l = queues[std::size_t(w)]->load();
      if (l < best_load) {
        best_load = l;
        best = w;
      }
    }
    queues[std::size_t(best)]->push(t);
    wake_cv.notify_all();
  };

  // Reset dependency counters and seed the sources.
  for (const auto& t : graph.tasks_)
    t->unmet_.store(t->num_preds_, std::memory_order_relaxed);
  for (const auto& t : graph.tasks_)
    if (t->num_preds_ == 0) dispatch(t.get());

  std::atomic<index_t> stall_ticks{0};

  auto worker_fn = [&](int wid) {
    WorkerQueue& mine = *queues[std::size_t(wid)];
    while (remaining.load(std::memory_order_acquire) > 0) {
      Task* t = mine.pop_front();
      if (t == nullptr) {
        // Work stealing: raid the most-loaded peer queue.
        int victim = -1;
        double vload = 0.0;
        for (int w = 0; w < W; ++w) {
          if (w == wid) continue;
          const double l = queues[std::size_t(w)]->load();
          if (l > vload) {
            vload = l;
            victim = w;
          }
        }
        if (victim >= 0) t = queues[std::size_t(victim)]->pop_back();
        if (t != nullptr) steals_.fetch_add(1, std::memory_order_relaxed);
      }
      if (t == nullptr) {
        // Nothing ready anywhere: sleep until a dispatch or completion.
        // A long stall with tasks still pending means the graph is cyclic.
        if (stall_ticks.fetch_add(1, std::memory_order_relaxed) > 10000) {
          failed.store(true, std::memory_order_release);
          remaining.store(0, std::memory_order_release);
          wake_cv.notify_all();
          return;
        }
        std::unique_lock<std::mutex> lk(wake_mu);
        wake_cv.wait_for(lk, std::chrono::milliseconds(1));
        continue;
      }
      stall_ticks.store(0, std::memory_order_relaxed);
      try {
        t->execute(wid);
      } catch (...) {
        failed.store(true, std::memory_order_release);
      }
      // Release successors.
      for (Task* s : t->successors_) {
        if (s->unmet_.fetch_sub(1, std::memory_order_acq_rel) == 1)
          dispatch(s);
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
        wake_cv.notify_all();
    }
  };

  if (W == 1) {
    worker_fn(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(std::size_t(W));
    for (int w = 0; w < W; ++w) threads.emplace_back(worker_fn, w);
    for (auto& th : threads) th.join();
  }

  if (failed.load())
    throw std::runtime_error("Scheduler: a task threw an exception");
}

}  // namespace gofmm::rt
