#include "runtime/scheduler.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace gofmm::rt {

namespace detail {

// One submitted graph execution. Tasks point back at their run so workers
// from interleaved submits can credit completions to the right future.
struct GraphRun {
  std::atomic<index_t> remaining{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr first_error;  // guarded by err_mu
  std::promise<void> promise;
  // Set (as the worker's final touch) after the promise fired; the
  // scheduler frees the run only once this is observed, so no worker can
  // be inside promise.set_value when the GraphRun is destroyed.
  std::atomic<bool> retired{false};
};

// The scheduler's window into Task/TaskGraph private wiring.
struct TaskAccess {
  static std::vector<Task*>& successors(Task* t) { return t->successors_; }
  static std::atomic<index_t>& unmet(Task* t) { return t->unmet_; }
  static index_t num_preds(const Task* t) { return t->num_preds_; }
  static GraphRun*& run(Task* t) { return t->run_; }
  static const std::vector<std::unique_ptr<Task>>& tasks(TaskGraph& g) {
    return g.tasks_;
  }
};

}  // namespace detail

using detail::GraphRun;
using detail::TaskAccess;

CycleError::CycleError(const std::string& msg) : std::runtime_error(msg) {}

namespace {

// Per-worker ready queue with an estimated-finish-time accumulator.
struct WorkerQueue {
  std::mutex mu;
  std::deque<Task*> ready;
  double pending_cost = 0.0;  // guarded by mu

  void push(Task* t) {
    std::lock_guard<std::mutex> lk(mu);
    ready.push_back(t);
    pending_cost += t->cost();
  }

  Task* pop_front() {
    std::lock_guard<std::mutex> lk(mu);
    if (ready.empty()) return nullptr;
    Task* t = ready.front();
    ready.pop_front();
    pending_cost -= t->cost();
    return t;
  }

  // Steal from the back (cold end) of a victim's queue.
  Task* pop_back() {
    std::lock_guard<std::mutex> lk(mu);
    if (ready.empty()) return nullptr;
    Task* t = ready.back();
    ready.pop_back();
    pending_cost -= t->cost();
    return t;
  }

  double load() {
    std::lock_guard<std::mutex> lk(mu);
    return pending_cost;
  }
};

// Kahn topological pass: returns false when some tasks are unreachable
// from the sources, i.e. the graph has a dependency cycle. Runs before any
// task is enqueued, so a cyclic submit executes nothing.
bool acyclic(const std::vector<std::unique_ptr<Task>>& tasks,
             std::string* cycle_member) {
  std::vector<index_t> degree(tasks.size());
  std::vector<Task*> order;
  order.reserve(tasks.size());
  std::vector<index_t> id_of(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    degree[i] = TaskAccess::num_preds(tasks[i].get());
    if (degree[i] == 0) order.push_back(tasks[i].get());
  }
  // Map Task* -> index for degree updates without a hash map: tasks are
  // graph-owned, so a linear id can ride in unmet_ (it is reset at submit).
  for (std::size_t i = 0; i < tasks.size(); ++i)
    TaskAccess::unmet(tasks[i].get())
        .store(index_t(i), std::memory_order_relaxed);
  std::size_t visited = 0;
  while (visited < order.size()) {
    Task* t = order[visited++];
    for (Task* s : TaskAccess::successors(t)) {
      const auto si =
          std::size_t(TaskAccess::unmet(s).load(std::memory_order_relaxed));
      if (--degree[si] == 0) order.push_back(s);
    }
  }
  if (visited == tasks.size()) return true;
  if (cycle_member != nullptr) {
    for (std::size_t i = 0; i < tasks.size(); ++i)
      if (degree[i] > 0) {
        *cycle_member = tasks[i]->name();
        break;
      }
  }
  return false;
}

}  // namespace

// Persistent worker pool. Lifecycle: threads start in the constructor and
// idle on wake_cv until queued_ > 0; dispatches from any thread (submit or
// a worker releasing successors) enqueue HEFT-style and notify. stop_
// makes idle workers exit once the queues drain.
struct Scheduler::Impl {
  explicit Impl(int num_workers) : W(num_workers) {
    queues.reserve(std::size_t(W));
    for (int w = 0; w < W; ++w) queues.push_back(std::make_unique<WorkerQueue>());
    threads.reserve(std::size_t(W));
    for (int w = 0; w < W; ++w)
      threads.emplace_back([this, w] { worker(w); });
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lk(wake_mu);
      stop = true;
    }
    wake_cv.notify_all();
    for (auto& th : threads) th.join();
    // All workers joined: every run is retired and safe to free.
    runs.clear();
  }

  // HEFT dispatch: enqueue on the worker with minimum estimated finish
  // time. Thread-safe; called from submit() and from workers releasing
  // successors.
  void dispatch(Task* t) {
    int best = 0;
    double best_load = queues[0]->load();
    for (int w = 1; w < W; ++w) {
      const double l = queues[std::size_t(w)]->load();
      if (l < best_load) {
        best_load = l;
        best = w;
      }
    }
    queues[std::size_t(best)]->push(t);
    queued.fetch_add(1, std::memory_order_release);
    wake_cv.notify_all();
  }

  Task* try_steal(int wid) {
    // Work stealing: raid the most-loaded peer queue.
    int victim = -1;
    double vload = 0.0;
    for (int w = 0; w < W; ++w) {
      if (w == wid) continue;
      const double l = queues[std::size_t(w)]->load();
      if (l > vload) {
        vload = l;
        victim = w;
      }
    }
    Task* t = victim >= 0 ? queues[std::size_t(victim)]->pop_back() : nullptr;
    if (t != nullptr) steals.fetch_add(1, std::memory_order_relaxed);
    return t;
  }

  void worker(int wid) {
    WorkerQueue& mine = *queues[std::size_t(wid)];
    for (;;) {
      Task* t = mine.pop_front();
      if (t == nullptr) t = try_steal(wid);
      if (t == nullptr) {
        std::unique_lock<std::mutex> lk(wake_mu);
        wake_cv.wait(lk, [this] {
          return stop || queued.load(std::memory_order_acquire) > 0;
        });
        if (stop && queued.load(std::memory_order_acquire) == 0) return;
        continue;
      }
      queued.fetch_sub(1, std::memory_order_release);
      GraphRun* run = TaskAccess::run(t);
      try {
        t->execute(wid);
      } catch (...) {
        std::lock_guard<std::mutex> lk(run->err_mu);
        if (!run->failed.exchange(true, std::memory_order_acq_rel))
          run->first_error = std::current_exception();
      }
      // Release successors (they may belong only to this run: edges never
      // cross graphs). Failed runs still release, so the graph drains and
      // the future completes instead of leaking pending tasks.
      for (Task* s : TaskAccess::successors(t)) {
        if (TaskAccess::unmet(s).fetch_sub(1, std::memory_order_acq_rel) == 1)
          dispatch(s);
      }
      if (run->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (run->failed.load(std::memory_order_acquire)) {
          std::exception_ptr err;
          {
            std::lock_guard<std::mutex> lk(run->err_mu);
            err = run->first_error;
          }
          run->promise.set_exception(err);
        } else {
          run->promise.set_value();
        }
        run->retired.store(true, std::memory_order_release);
      }
    }
  }

  // Frees completed GraphRuns. Called under submits (keeping the list
  // bounded on a long-lived scheduler) and at destruction.
  void prune_runs() {
    std::lock_guard<std::mutex> lk(runs_mu);
    std::erase_if(runs, [](const std::unique_ptr<GraphRun>& r) {
      return r->retired.load(std::memory_order_acquire);
    });
  }

  const int W;
  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> threads;
  std::atomic<index_t> queued{0};
  std::atomic<std::uint64_t> steals{0};
  std::mutex wake_mu;
  std::condition_variable wake_cv;
  bool stop = false;  // guarded by wake_mu
  std::mutex runs_mu;
  std::vector<std::unique_ptr<GraphRun>> runs;  // guarded by runs_mu
};

Scheduler::Scheduler(int num_workers)
    : num_workers_(num_workers > 0
                       ? num_workers
                       : int(std::max(1u, std::thread::hardware_concurrency()))),
      impl_(std::make_unique<Impl>(num_workers_)) {}

Scheduler::~Scheduler() = default;

std::uint64_t Scheduler::steal_count() const {
  return impl_->steals.load(std::memory_order_relaxed);
}

std::shared_future<void> Scheduler::submit(TaskGraph& graph) {
  const auto& tasks = TaskAccess::tasks(graph);
  std::string member;
  if (!acyclic(tasks, &member))
    throw CycleError("Scheduler: dependency cycle through task '" + member +
                     "' — no task was executed");

  // The run owns the graph's completion state; tasks borrow a raw
  // pointer. The scheduler itself keeps the run alive (impl_->runs) until
  // the finishing worker retires it, so the caller may drop the future —
  // or destroy the graph the moment the future is ready — without racing
  // the worker's promise.set_value.
  auto owned = std::make_unique<GraphRun>();
  GraphRun* run = owned.get();
  run->remaining.store(index_t(tasks.size()), std::memory_order_relaxed);
  std::shared_future<void> fut = run->promise.get_future().share();
  impl_->prune_runs();
  {
    std::lock_guard<std::mutex> lk(impl_->runs_mu);
    impl_->runs.push_back(std::move(owned));
  }
  if (tasks.empty()) {
    run->promise.set_value();
    run->retired.store(true, std::memory_order_release);
    return fut;
  }

  // Reset dependency counters and wire the run before the first dispatch:
  // a seeded source may finish (and touch successors) while later sources
  // are still being seeded.
  for (const auto& t : tasks) {
    TaskAccess::unmet(t.get())
        .store(TaskAccess::num_preds(t.get()), std::memory_order_relaxed);
    TaskAccess::run(t.get()) = run;
  }
  for (const auto& t : tasks)
    if (TaskAccess::num_preds(t.get()) == 0) impl_->dispatch(t.get());
  return fut;
}

void Scheduler::run(TaskGraph& graph) { submit(graph).get(); }

}  // namespace gofmm::rt
