// Stochastic trace and log-determinant estimators with variance-tracked
// confidence intervals.
//
// tr(K̃), tr((K̃+λI)⁻¹), and log det(K̃+λI) drive GP marginal likelihoods,
// effective degrees of freedom, and Hessian diagnostics, yet none needs
// the matrix — only matvecs (and solves, which the factorization already
// provides as one blocked sweep). Hutchinson's estimator averages zᵀAz
// over Rademacher probes; Hutch++ first deflates the dominant range with
// a small sketch so the stochastic part only sees the flat tail, cutting
// the variance from O(1/m) to O(1/m²) on fast-decaying spectra — exactly
// the spectra hierarchical compression targets. Stochastic Lanczos
// quadrature (SLQ) pushes each probe through a small Lanczos recurrence
// and integrates log against the resulting Gauss quadrature rule.
//
// Every estimator is deterministic given TraceOptions::seed (one
// SampleStream drives all probes) and reports a confidence interval from
// the per-probe sample variance — the accuracy contract is "the CI covers
// the true value at the stated confidence", not a hard error bound.
#pragma once

#include <cstdint>

#include "core/operator.hpp"

namespace gofmm::spectral {

/// What the probes are pushed through.
enum class TraceTarget {
  /// tr(K̃): probes go through apply() — no factorization needed.
  Operator,
  /// tr((K̃+λI)⁻¹) at the factorization's CURRENT λ: probes go through
  /// solve() — requires a factorized backend (StateError otherwise).
  Inverse,
};

/// Which estimator estimate_trace() routes to.
enum class TraceMethod {
  Hutchinson,    ///< plain probe averaging — unbiased, O(1/m) variance
  HutchPlusPlus, ///< sketch-deflated — same budget, far smaller variance
};

/// Options of one trace/logdet estimate, with the usual fluent builder:
/// `TraceOptions::defaults().with_probes(128).with_target(...)`.
struct TraceOptions {
  index_t probes = 64;  ///< total probe (matvec/solve) budget
  /// Seed of the shared SampleStream behind every probe; fixed seed ⇒
  /// bit-reproducible estimates and intervals.
  std::uint64_t seed = 8128;
  TraceTarget target = TraceTarget::Operator;  ///< apply vs solve probes
  /// Two-sided confidence level of [ci_low, ci_high] (e.g. 0.99).
  double confidence = 0.99;
  /// Probes per blocked apply/solve sweep — a throughput knob (one r-wide
  /// sweep per block), statistically neutral.
  index_t block = 32;
  /// Estimator estimate_trace() dispatches to (hutchinson_trace and
  /// hutchpp_trace ignore this — calling them IS the choice).
  TraceMethod method = TraceMethod::HutchPlusPlus;

  /// Default options, the seed of the with_* builder chain.
  [[nodiscard]] static TraceOptions defaults() { return TraceOptions{}; }
  /// Sets the total probe budget.
  TraceOptions& with_probes(index_t v) {
    probes = v;
    return *this;
  }
  /// Sets the RNG seed.
  TraceOptions& with_seed(std::uint64_t v) {
    seed = v;
    return *this;
  }
  /// Sets the probe target (operator vs inverse).
  TraceOptions& with_target(TraceTarget v) {
    target = v;
    return *this;
  }
  /// Sets the confidence level.
  TraceOptions& with_confidence(double v) {
    confidence = v;
    return *this;
  }
  /// Sets the probes-per-sweep block width.
  TraceOptions& with_block(index_t v) {
    block = v;
    return *this;
  }
  /// Sets the estimator estimate_trace() routes to.
  TraceOptions& with_method(TraceMethod v) {
    method = v;
    return *this;
  }
};

/// One stochastic estimate with its variance-tracked confidence interval.
struct TraceEstimate {
  double estimate = 0;    ///< point estimate (mean over probes + exact part)
  double stddev = 0;      ///< sample stddev of the per-probe estimates
  double ci_low = 0;      ///< lower confidence bound
  double ci_high = 0;     ///< upper confidence bound
  index_t probes = 0;     ///< stochastic probes actually averaged
  double confidence = 0;  ///< confidence level the interval targets
  /// Deterministically-computed part (Hutch++ deflation term tr(QᵀAQ));
  /// zero for plain Hutchinson and SLQ.
  double exact_part = 0;
};

/// Hutchinson estimator: mean of zᵀAz over seeded Rademacher probes, CI
/// = mean ± z* · s/√m. Const and thread-safe; TraceTarget::Inverse
/// requires a factorized backend (StateError otherwise).
template <typename T>
TraceEstimate hutchinson_trace(const CompressedOperator<T>& op,
                               TraceOptions options = TraceOptions::defaults(),
                               EvalWorkspace<T>* ws = nullptr);

/// Hutch++ estimator: a probes/3-column sketch deflates the dominant
/// range (exact_part = tr(QᵀAQ)), the remaining budget runs Hutchinson on
/// the deflated residual (I−QQᵀ)A(I−QQᵀ) — same total apply/solve budget
/// as hutchinson_trace, far smaller variance on decaying spectra. The CI
/// tracks only the stochastic remainder. Falls back to plain Hutchinson
/// below 4 probes.
template <typename T>
TraceEstimate hutchpp_trace(const CompressedOperator<T>& op,
                            TraceOptions options = TraceOptions::defaults(),
                            EvalWorkspace<T>* ws = nullptr);

/// Dispatches to hutchinson_trace or hutchpp_trace by options.method —
/// the entry point the solve service's RequestKind::Trace goes through,
/// so one request surface covers both estimators.
template <typename T>
TraceEstimate estimate_trace(const CompressedOperator<T>& op,
                             TraceOptions options = TraceOptions::defaults(),
                             EvalWorkspace<T>* ws = nullptr);

/// Stochastic Lanczos quadrature estimate of log det(K̃ + λI): each probe
/// runs `lanczos_steps` of the plain Lanczos recurrence on K̃ + λI (shift
/// applied on the fly; matvec-only, no factorization) and integrates log
/// against the tridiagonal's Gauss rule. Complements the factorization's
/// EXACT logdet() as an O(probes · steps) matvec-only alternative; throws
/// StateError when a quadrature node is non-positive (K̃ + λI not PD).
/// options.target is ignored.
template <typename T>
TraceEstimate slq_logdet(const CompressedOperator<T>& op, double lambda = 0.0,
                         TraceOptions options = TraceOptions::defaults(),
                         index_t lanczos_steps = 40,
                         EvalWorkspace<T>* ws = nullptr);

extern template TraceEstimate hutchinson_trace<float>(
    const CompressedOperator<float>&, TraceOptions, EvalWorkspace<float>*);
extern template TraceEstimate hutchinson_trace<double>(
    const CompressedOperator<double>&, TraceOptions, EvalWorkspace<double>*);
extern template TraceEstimate hutchpp_trace<float>(
    const CompressedOperator<float>&, TraceOptions, EvalWorkspace<float>*);
extern template TraceEstimate hutchpp_trace<double>(
    const CompressedOperator<double>&, TraceOptions, EvalWorkspace<double>*);
extern template TraceEstimate estimate_trace<float>(
    const CompressedOperator<float>&, TraceOptions, EvalWorkspace<float>*);
extern template TraceEstimate estimate_trace<double>(
    const CompressedOperator<double>&, TraceOptions, EvalWorkspace<double>*);
extern template TraceEstimate slq_logdet<float>(const CompressedOperator<float>&,
                                                double, TraceOptions, index_t,
                                                EvalWorkspace<float>*);
extern template TraceEstimate slq_logdet<double>(
    const CompressedOperator<double>&, double, TraceOptions, index_t,
    EvalWorkspace<double>*);

}  // namespace gofmm::spectral
