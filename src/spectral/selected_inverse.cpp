// diag((K̃+λI)⁻¹) via blocked identity panels through the stored sweeps.
#include "spectral/selected_inverse.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace gofmm::spectral {

template <typename T>
std::vector<double> selected_inverse_diag(const CompressedOperator<T>& op,
                                          index_t block_cols) {
  const Factorizable<T>* fact = op.factorizable();
  check<StateError>(fact != nullptr,
                    op.name() + ": selected_inverse_diag needs a "
                                "factorization-capable backend");
  check<StateError>(fact->factorized(),
                    op.name() + ": selected_inverse_diag needs factorize() "
                                "to have run (pick λ there)");
  const index_t n = op.size();
  if (block_cols < 1) block_cols = 1;
  std::vector<double> diag(std::size_t(n), 0.0);
  la::Matrix<T> panel;
  for (index_t j0 = 0; j0 < n; j0 += block_cols) {
    const index_t w = std::min(block_cols, n - j0);
    panel.resize(n, w);  // re-zeroes; capacity reused across panels
    for (index_t c = 0; c < w; ++c) panel(j0 + c, c) = T(1);
    const la::Matrix<T> x = fact->solve(panel);  // ONE blocked sweep
    for (index_t c = 0; c < w; ++c)
      diag[std::size_t(j0 + c)] = double(x(j0 + c, c));
  }
  return diag;
}

template std::vector<double> selected_inverse_diag<float>(
    const CompressedOperator<float>&, index_t);
template std::vector<double> selected_inverse_diag<double>(
    const CompressedOperator<double>&, index_t);

}  // namespace gofmm::spectral
