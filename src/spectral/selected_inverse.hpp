// Selected-inverse extraction through the stored factorization sweeps.
//
// GP predictive variances, leverage-score diagnostics, and uncertainty
// quantification all need diag((K̃ + λI)⁻¹) — n scalars of the inverse, not
// the inverse itself. The "compress and eliminate" line of work treats
// such selected-inverse quantities as first-class outputs of a
// hierarchical factorization, and the stored up/down sweeps of the ULV
// engine deliver exactly that: diag(K⁻¹)ᵢ = eᵢᵀ K⁻¹ eᵢ, evaluated by
// pushing identity columns through the blocked solve in wide panels. Each
// panel is ONE blocked sweep (r-wide GEMMs, not r sequential solves), so
// the total cost is O((N/r) · sweep(r)) ≈ O(N² r̄ / leaf · log N) — exact
// to solver round-off, unlike stochastic diagonal estimators.
#pragma once

#include <vector>

#include "core/operator.hpp"

namespace gofmm::spectral {

/// diag((K̃ + λI)⁻¹) at the factorization's CURRENT λ, extracted by
/// blocked identity solves through the stored up/down sweeps
/// (`block_cols` identity columns per sweep). Const and thread-safe, like
/// every solve; exact to solver round-off. Throws StateError when the
/// backend has no factorization or factorize() has not run.
template <typename T>
std::vector<double> selected_inverse_diag(const CompressedOperator<T>& op,
                                          index_t block_cols = 128);

extern template std::vector<double> selected_inverse_diag<float>(
    const CompressedOperator<float>&, index_t);
extern template std::vector<double> selected_inverse_diag<double>(
    const CompressedOperator<double>&, index_t);

}  // namespace gofmm::spectral
