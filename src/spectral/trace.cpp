// Hutchinson / Hutch++ stochastic trace and SLQ logdet estimators.
#include "spectral/trace.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "util/random.hpp"

namespace gofmm::spectral {

namespace {

// One blocked probe application: Y = A Z through apply() or solve().
template <typename T>
la::Matrix<T> probe_apply(const CompressedOperator<T>& op,
                          const Factorizable<T>* fact, TraceTarget target,
                          const la::Matrix<T>& z, EvalWorkspace<T>& ws) {
  if (target == TraceTarget::Inverse) return fact->solve(z);
  return op.apply(z, ws);
}

// Resolves the solve path: Inverse probes need a factorized backend.
template <typename T>
const Factorizable<T>* resolve_target(const CompressedOperator<T>& op,
                                      TraceTarget target, const char* who) {
  if (target != TraceTarget::Inverse) return nullptr;
  const Factorizable<T>* fact = op.factorizable();
  check<StateError>(fact != nullptr,
                    op.name() + ": " + who +
                        "(TraceTarget::Inverse) needs a "
                        "factorization-capable backend");
  check<StateError>(fact->factorized(),
                    op.name() + ": " + who +
                        "(TraceTarget::Inverse) needs factorize() to "
                        "have run (pick λ there)");
  return fact;
}

// Mean, sample stddev, and two-sided CI of per-probe estimates, shifted
// by a deterministic part.
TraceEstimate summarize(const std::vector<double>& samples, double exact_part,
                        double confidence) {
  TraceEstimate est;
  est.probes = index_t(samples.size());
  est.confidence = confidence;
  est.exact_part = exact_part;
  if (samples.empty()) {
    est.estimate = exact_part;
    est.ci_low = est.ci_high = exact_part;
    return est;
  }
  double mean = 0;
  for (double s : samples) mean += s;
  mean /= double(samples.size());
  double ss = 0;
  for (double s : samples) ss += (s - mean) * (s - mean);
  const double stddev =
      samples.size() > 1 ? std::sqrt(ss / double(samples.size() - 1)) : 0.0;
  const double z_star = normal_quantile(1.0 - (1.0 - confidence) / 2.0);
  const double half = z_star * stddev / std::sqrt(double(samples.size()));
  est.estimate = exact_part + mean;
  est.stddev = stddev;
  est.ci_low = est.estimate - half;
  est.ci_high = est.estimate + half;
  return est;
}

// Blocked Hutchinson sweep: appends zᵀAz per Rademacher probe, optionally
// deflating every probe by an orthonormal Q first (Hutch++ remainder:
// zᵀ(I−QQᵀ)A(I−QQᵀ)z, using the symmetry of the projector).
template <typename T>
void rademacher_quadratics(const CompressedOperator<T>& op,
                           const Factorizable<T>* fact, TraceTarget target,
                           index_t probes, index_t block, SampleStream& stream,
                           const la::Matrix<T>* q, EvalWorkspace<T>& ws,
                           std::vector<double>& samples) {
  const index_t n = op.size();
  la::Matrix<T> z;
  for (index_t done = 0; done < probes; done += block) {
    const index_t w = std::min(block, probes - done);
    z.resize(n, w);
    stream.rademacher(z);
    if (q != nullptr && q->cols() > 0) {
      // z ← (I − QQᵀ) z, one pair of skinny GEMMs per block.
      la::Matrix<T> c(q->cols(), w);
      la::gemm(la::Op::Trans, la::Op::None, T(1), *q, z, T(0), c);
      la::gemm(la::Op::None, la::Op::None, T(-1), *q, c, T(1), z);
    }
    const la::Matrix<T> y = probe_apply(op, fact, target, z, ws);
    for (index_t j = 0; j < w; ++j)
      samples.push_back(la::dot(n, z.col(j), y.col(j)));
  }
}

// In-place two-pass modified Gram-Schmidt; drops numerically dependent
// columns and returns the orthonormal prefix.
template <typename T>
la::Matrix<T> orthonormalize(la::Matrix<T> y) {
  const index_t n = y.rows();
  index_t kept = 0;
  for (index_t j = 0; j < y.cols(); ++j) {
    const double scale = la::nrm2(n, y.col(j));
    for (int pass = 0; pass < 2; ++pass)
      for (index_t i = 0; i < kept; ++i) {
        const double c = la::dot(n, y.col(i), y.col(j));
        la::axpy(n, T(-c), y.col(i), y.col(j));
      }
    const double nrm = la::nrm2(n, y.col(j));
    if (nrm <= 1e-12 * std::max(scale, 1e-300)) continue;
    for (index_t i = 0; i < n; ++i) {
      const T v = T(double(y(i, j)) / nrm);
      y(i, j) = T(0);
      y(i, kept) = v;
    }
    ++kept;
  }
  return y.block(0, 0, n, kept);
}

}  // namespace

template <typename T>
TraceEstimate hutchinson_trace(const CompressedOperator<T>& op,
                               TraceOptions options, EvalWorkspace<T>* ws) {
  check<Error>(options.probes > 0, "hutchinson_trace: probes must be positive");
  check<Error>(options.confidence > 0.0 && options.confidence < 1.0,
               "hutchinson_trace: confidence must lie in (0, 1)");
  const Factorizable<T>* fact =
      resolve_target(op, options.target, "hutchinson_trace");
  EvalWorkspace<T> local_ws;
  EvalWorkspace<T>& wsr = ws != nullptr ? *ws : local_ws;
  const index_t block = std::max(options.block, index_t(1));

  SampleStream stream(options.seed);
  std::vector<double> samples;
  samples.reserve(std::size_t(options.probes));
  rademacher_quadratics(op, fact, options.target, options.probes, block,
                        stream, static_cast<const la::Matrix<T>*>(nullptr),
                        wsr, samples);
  return summarize(samples, 0.0, options.confidence);
}

template <typename T>
TraceEstimate hutchpp_trace(const CompressedOperator<T>& op,
                            TraceOptions options, EvalWorkspace<T>* ws) {
  check<Error>(options.probes > 0, "hutchpp_trace: probes must be positive");
  check<Error>(options.confidence > 0.0 && options.confidence < 1.0,
               "hutchpp_trace: confidence must lie in (0, 1)");
  if (options.probes < 4) return hutchinson_trace(op, options, ws);
  const Factorizable<T>* fact =
      resolve_target(op, options.target, "hutchpp_trace");
  EvalWorkspace<T> local_ws;
  EvalWorkspace<T>& wsr = ws != nullptr ? *ws : local_ws;
  const index_t n = op.size();

  // Budget split à la Hutch++: s sketch columns cost 2s applies (A·S and
  // A·Q), the remaining g = probes − 2s applies feed the deflated
  // Hutchinson remainder.
  const index_t s_cols = std::min(n, std::max(index_t(1), options.probes / 3));
  const index_t g = std::max(index_t(1), options.probes - 2 * s_cols);

  SampleStream stream(options.seed);
  la::Matrix<T> sketch(n, s_cols);
  stream.rademacher(sketch);
  const la::Matrix<T> y = probe_apply(op, fact, options.target, sketch, wsr);
  const la::Matrix<T> q = orthonormalize(y);

  // Deflation term, deterministic: tr(QᵀAQ) = Σⱼ qⱼᵀ (AQ)ⱼ.
  double exact_part = 0.0;
  if (q.cols() > 0) {
    const la::Matrix<T> aq = probe_apply(op, fact, options.target, q, wsr);
    for (index_t j = 0; j < q.cols(); ++j)
      exact_part += la::dot(n, q.col(j), aq.col(j));
  }

  const index_t block = std::max(options.block, index_t(1));
  std::vector<double> samples;
  samples.reserve(std::size_t(g));
  rademacher_quadratics(op, fact, options.target, g, block, stream, &q, wsr,
                        samples);
  return summarize(samples, exact_part, options.confidence);
}

template <typename T>
TraceEstimate estimate_trace(const CompressedOperator<T>& op,
                             TraceOptions options, EvalWorkspace<T>* ws) {
  return options.method == TraceMethod::HutchPlusPlus
             ? hutchpp_trace(op, options, ws)
             : hutchinson_trace(op, options, ws);
}

template <typename T>
TraceEstimate slq_logdet(const CompressedOperator<T>& op, double lambda,
                         TraceOptions options, index_t lanczos_steps,
                         EvalWorkspace<T>* ws) {
  check<Error>(options.probes > 0, "slq_logdet: probes must be positive");
  check<Error>(options.confidence > 0.0 && options.confidence < 1.0,
               "slq_logdet: confidence must lie in (0, 1)");
  check<Error>(lanczos_steps > 0, "slq_logdet: lanczos_steps must be positive");
  const index_t n = op.size();
  TraceEstimate empty;
  empty.confidence = options.confidence;
  if (n == 0) return empty;
  EvalWorkspace<T> local_ws;
  EvalWorkspace<T>& wsr = ws != nullptr ? *ws : local_ws;
  const index_t m_max = std::min(lanczos_steps, n);

  SampleStream stream(options.seed);
  std::vector<double> samples;
  samples.reserve(std::size_t(options.probes));
  la::Matrix<T> v_basis(n, m_max + 1);
  la::Matrix<T> z(n, 1);
  la::Matrix<T> vj(n, 1);
  for (index_t probe = 0; probe < options.probes; ++probe) {
    // Rademacher probe: ‖z‖² = n exactly, so zᵀ log(A) z = n Σ τᵢ² log θᵢ
    // with τ the first-row eigenvector components of the tridiagonal.
    stream.rademacher(z);
    const double z_nrm = std::sqrt(double(n));
    for (index_t i = 0; i < n; ++i)
      v_basis(i, 0) = T(double(z(i, 0)) / z_nrm);

    std::vector<double> alpha;
    std::vector<double> beta;
    index_t m = 0;
    while (m < m_max) {
      const index_t j = m;
      std::copy_n(v_basis.col(j), n, vj.col(0));
      la::Matrix<T> w = op.apply(vj, wsr);
      if (lambda != 0.0) la::axpy(n, T(lambda), vj.col(0), w.col(0));
      const double w_scale = la::nrm2(n, w.col(0));
      alpha.push_back(la::dot(n, v_basis.col(j), w.col(0)));
      // Full reorthogonalization: the basis is small (≤ lanczos_steps),
      // and quadrature weights are exquisitely sensitive to basis drift.
      for (int pass = 0; pass < 2; ++pass)
        for (index_t i = 0; i <= j; ++i) {
          const double c = la::dot(n, v_basis.col(i), w.col(0));
          la::axpy(n, T(-c), v_basis.col(i), w.col(0));
        }
      const double b = la::nrm2(n, w.col(0));
      m = j + 1;
      if (b <= 1e-13 * std::max(w_scale, 1e-300)) break;  // exact quadrature
      if (m == m_max) break;
      beta.push_back(b);
      for (index_t i = 0; i < n; ++i)
        v_basis(i, j + 1) = T(double(w(i, 0)) / b);
    }

    // Gauss quadrature of log against the tridiagonal's spectral measure:
    // nodes θᵢ, weights τᵢ² from the first eigenvector components.
    std::vector<double> theta(alpha);
    std::vector<double> off(beta);
    la::Matrix<double> s_vectors = la::Matrix<double>::identity(m);
    check<Error>(la::steqr(theta, off, &s_vectors),
                 op.name() + ": slq_logdet tridiagonal failed to converge");
    double quad = 0.0;
    for (index_t i = 0; i < m; ++i) {
      check<StateError>(
          theta[std::size_t(i)] > 0.0,
          op.name() + ": slq_logdet hit a non-positive quadrature node — "
                      "K + lambda*I is not positive definite at this lambda");
      const double tau = s_vectors(0, i);
      quad += tau * tau * std::log(theta[std::size_t(i)]);
    }
    samples.push_back(double(n) * quad);
  }
  return summarize(samples, 0.0, options.confidence);
}

template TraceEstimate hutchinson_trace<float>(const CompressedOperator<float>&,
                                               TraceOptions,
                                               EvalWorkspace<float>*);
template TraceEstimate hutchinson_trace<double>(
    const CompressedOperator<double>&, TraceOptions, EvalWorkspace<double>*);
template TraceEstimate hutchpp_trace<float>(const CompressedOperator<float>&,
                                            TraceOptions,
                                            EvalWorkspace<float>*);
template TraceEstimate hutchpp_trace<double>(const CompressedOperator<double>&,
                                             TraceOptions,
                                             EvalWorkspace<double>*);
template TraceEstimate estimate_trace<float>(const CompressedOperator<float>&,
                                             TraceOptions,
                                             EvalWorkspace<float>*);
template TraceEstimate estimate_trace<double>(const CompressedOperator<double>&,
                                              TraceOptions,
                                              EvalWorkspace<double>*);
template TraceEstimate slq_logdet<float>(const CompressedOperator<float>&,
                                         double, TraceOptions, index_t,
                                         EvalWorkspace<float>*);
template TraceEstimate slq_logdet<double>(const CompressedOperator<double>&,
                                          double, TraceOptions, index_t,
                                          EvalWorkspace<double>*);

}  // namespace gofmm::spectral
