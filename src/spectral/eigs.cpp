// Shift-invert Lanczos with full reorthogonalization, plus inertia-based
// eigenvalue counting and bisection spectrum slicing.
#include "spectral/eigs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "core/error.hpp"
#include "la/blas.hpp"
#include "la/eigen.hpp"
#include "util/random.hpp"

namespace gofmm::spectral {

namespace {

// One Lanczos operator application: y = M v where M is K̃ (plain) or
// (K̃ − σI)⁻¹ (shift-invert through the tuned factorization).
template <typename T>
la::Matrix<T> apply_step(const CompressedOperator<T>& op,
                         const Factorizable<T>* fact, bool shift_invert,
                         const la::Matrix<T>& v, EvalWorkspace<T>& ws) {
  if (shift_invert) return fact->solve(v);
  return op.apply(v, ws);
}

// Wanted Ritz indices of the projected tridiagonal's spectrum `theta`
// (ascending): the k largest in magnitude for shift-invert (they map to
// the eigenvalues of K̃ nearest σ), the k largest algebraic otherwise.
std::vector<index_t> select_wanted(const std::vector<double>& theta,
                                   index_t k, bool shift_invert) {
  const index_t m = index_t(theta.size());
  std::vector<index_t> idx(static_cast<std::size_t>(m));
  std::iota(idx.begin(), idx.end(), index_t(0));
  if (shift_invert) {
    std::sort(idx.begin(), idx.end(), [&](index_t a, index_t b) {
      return std::abs(theta[std::size_t(a)]) >
             std::abs(theta[std::size_t(b)]);
    });
  } else {
    std::sort(idx.begin(), idx.end(), [&](index_t a, index_t b) {
      return theta[std::size_t(a)] > theta[std::size_t(b)];
    });
  }
  idx.resize(std::size_t(std::min(k, m)));
  return idx;
}

}  // namespace

template <typename T>
EigsResult<T> eigs_at(const CompressedOperator<T>& op, EigsOptions options,
                      EvalWorkspace<T>* ws) {
  const index_t n = op.size();
  const index_t k = std::min(options.k, n);
  EigsResult<T> result;
  check<Error>(options.k > 0, "eigs: k must be positive");
  if (n == 0 || k == 0) {
    result.converged = true;
    return result;
  }

  const bool shift_invert = options.which == Which::Smallest;
  const Factorizable<T>* fact = op.factorizable();
  if (shift_invert) {
    check<StateError>(fact != nullptr,
                      op.name() + ": eigs(Which::Smallest) needs a "
                                  "factorization-capable backend");
    check<StateError>(fact->factorized(),
                      op.name() + ": eigs_at needs a factorized operator — "
                                  "call eigs() or factorize(-sigma) first");
    const double reg = fact->factorization_stats().regularization;
    check<StateError>(
        T(reg) == T(-options.sigma),
        op.name() + ": shift-invert at sigma requires the factorization "
                    "tuned at lambda = -sigma (factorize(lambda) factors "
                    "K+lambda*I); retune with refactorize(-sigma) or call "
                    "eigs()");
  }

  EvalWorkspace<T> local_ws;
  EvalWorkspace<T>& wsr = ws != nullptr ? *ws : local_ws;

  const index_t m_max =
      options.max_subspace > 0
          ? std::min(n, std::max(options.max_subspace, k + 2))
          : std::min(n, std::max(index_t(4) * k + 16, index_t(64)));

  // Lanczos basis with full reorthogonalization: V's columns stay
  // orthonormal to round-off, so no ghost eigenvalue copies appear and
  // Ritz vectors come out orthonormal by construction.
  la::Matrix<T> v_basis(n, m_max + 1);
  std::vector<double> alpha;
  std::vector<double> beta;  // beta[j] couples steps j and j+1
  SampleStream stream(options.seed);

  // Seeded Gaussian start vector, normalized.
  {
    la::Matrix<T> v0(n, 1);
    stream.gaussian(v0);
    const double nrm = la::nrm2(n, v0.col(0));
    for (index_t i = 0; i < n; ++i)
      v_basis(i, 0) = T(double(v0(i, 0)) / nrm);
  }

  la::Matrix<T> vj(n, 1);
  index_t m = 0;  // completed Lanczos steps
  bool converged = false;
  std::vector<double> theta;       // Ritz values of the projected operator
  la::Matrix<double> s_vectors;    // tridiagonal eigenvectors

  // Diagonalizes the current m-step tridiagonal; returns false when the
  // wanted Ritz pairs have not all met the residual bound yet.
  auto ritz_converged = [&]() {
    theta.assign(alpha.begin(), alpha.end());
    std::vector<double> off(beta.begin(),
                            beta.begin() + std::ptrdiff_t(m - 1));
    s_vectors = la::Matrix<double>::identity(m);
    if (!la::steqr(theta, off, &s_vectors)) return false;
    const double beta_last = beta[std::size_t(m - 1)];
    for (index_t idx : select_wanted(theta, k, shift_invert)) {
      const double bound = std::abs(beta_last * s_vectors(m - 1, idx));
      const double scale = std::max(std::abs(theta[std::size_t(idx)]),
                                    std::numeric_limits<double>::min());
      if (bound > options.tolerance * scale) return false;
    }
    return true;
  };

  while (m < m_max) {
    const index_t j = m;
    std::copy_n(v_basis.col(j), n, vj.col(0));
    la::Matrix<T> w = apply_step(op, fact, shift_invert, vj, wsr);
    const double w_scale = la::nrm2(n, w.col(0));
    alpha.push_back(la::dot(n, v_basis.col(j), w.col(0)));
    // Full reorthogonalization, two passes of modified Gram-Schmidt
    // against every basis vector (subsumes the classic alpha/beta
    // three-term subtraction and scrubs the rounding drift it leaves).
    for (int pass = 0; pass < 2; ++pass)
      for (index_t i = 0; i <= j; ++i) {
        const double c = la::dot(n, v_basis.col(i), w.col(0));
        la::axpy(n, T(-c), v_basis.col(i), w.col(0));
      }
    double b = la::nrm2(n, w.col(0));
    if (b <= 1e-13 * std::max(w_scale, 1e-300)) {
      // Exact breakdown: an invariant subspace is spanned. Restart with a
      // fresh seeded vector orthogonal to everything found so far, so
      // eigenvalue multiplicities beyond the first copy are still reached.
      beta.push_back(0.0);
      m = j + 1;
      if (m >= n) {  // full space spanned: every Ritz pair is exact
        converged = ritz_converged();
        break;
      }
      if (index_t(alpha.size()) >= k && ritz_converged()) {
        converged = true;  // zero last beta ⇒ zero residual bounds
        break;
      }
      la::Matrix<T> r(n, 1);
      stream.gaussian(r);
      for (int pass = 0; pass < 2; ++pass)
        for (index_t i = 0; i <= j; ++i) {
          const double c = la::dot(n, v_basis.col(i), r.col(0));
          la::axpy(n, T(-c), v_basis.col(i), r.col(0));
        }
      const double rn = la::nrm2(n, r.col(0));
      if (rn <= 1e-300) break;  // nothing left outside the span
      for (index_t i = 0; i < n; ++i)
        v_basis(i, j + 1) = T(double(r(i, 0)) / rn);
      continue;
    }
    beta.push_back(b);
    for (index_t i = 0; i < n; ++i)
      v_basis(i, j + 1) = T(double(w(i, 0)) / b);
    m = j + 1;
    if (index_t(alpha.size()) >= k &&
        (m % 4 == 0 || m == m_max) && ritz_converged()) {
      converged = true;
      break;
    }
  }
  if (m == 0) return result;
  if (theta.empty() || index_t(theta.size()) != m) (void)ritz_converged();

  // Rayleigh–Ritz extraction: map the wanted projected eigenvalues back
  // to eigenvalues of K̃ and lift their vectors through the basis.
  std::vector<index_t> wanted = select_wanted(theta, k, shift_invert);
  std::vector<std::pair<double, index_t>> pairs;
  for (index_t idx : wanted) {
    const double th = theta[std::size_t(idx)];
    if (shift_invert && th == 0.0) continue;
    const double lam = shift_invert ? options.sigma + 1.0 / th : th;
    pairs.emplace_back(lam, idx);
  }
  // Most extreme first: nearest σ for shift-invert, descending otherwise.
  if (shift_invert) {
    std::sort(pairs.begin(), pairs.end(), [&](const auto& a, const auto& b) {
      return std::abs(a.first - options.sigma) <
             std::abs(b.first - options.sigma);
    });
  } else {
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
  }

  const index_t found = index_t(pairs.size());
  if (found == 0) return result;
  la::Matrix<T> s_sel(m, found);
  for (index_t c = 0; c < found; ++c)
    for (index_t r = 0; r < m; ++r)
      s_sel(r, c) = T(s_vectors(r, pairs[std::size_t(c)].second));
  const la::Matrix<T> v_used = v_basis.block(0, 0, n, m);
  result.vectors.resize(n, found);
  la::gemm(la::Op::None, la::Op::None, T(1), v_used, s_sel, T(0),
           result.vectors);
  result.values.reserve(std::size_t(found));
  for (const auto& [lam, idx] : pairs) result.values.push_back(lam);

  // True residuals ‖K̃v − λv‖ with one blocked matvec — the honest
  // accuracy measure, independent of the Lanczos bound.
  if (found > 0) {
    la::Matrix<T> kv = op.apply(result.vectors, wsr);
    result.residuals.resize(std::size_t(found));
    for (index_t c = 0; c < found; ++c) {
      double ss = 0;
      for (index_t i = 0; i < n; ++i) {
        const double d = double(kv(i, c)) -
                         result.values[std::size_t(c)] *
                             double(result.vectors(i, c));
        ss += d * d;
      }
      result.residuals[std::size_t(c)] = std::sqrt(ss);
    }
  }
  result.iterations = m;
  result.converged = converged && found >= std::min(k, n);
  return result;
}

template <typename T>
EigsResult<T> eigs(CompressedOperator<T>& op, index_t k, Which which,
                   double sigma, EigsOptions options) {
  options.k = k;
  options.which = which;
  options.sigma = sigma;
  if (which == Which::Smallest) {
    Factorizable<T>* fact = op.factorizable();
    check<StateError>(fact != nullptr,
                      op.name() + ": eigs(Which::Smallest) needs a "
                                  "factorization-capable backend");
    if (fact->factorized())
      fact->refactorize(T(-sigma));
    else
      fact->factorize(T(-sigma));
  }
  return eigs_at(static_cast<const CompressedOperator<T>&>(op), options);
}

template <typename T>
index_t eigenvalue_count_below(CompressedOperator<T>& op, double sigma) {
  Factorizable<T>* fact = op.factorizable();
  check<StateError>(fact != nullptr,
                    op.name() + ": eigenvalue counts need a "
                                "factorization-capable backend");
  if (fact->factorized())
    fact->refactorize(T(-sigma));
  else
    fact->factorize(T(-sigma));
  const FactorizationStats st = fact->factorization_stats();
  check<StateError>(st.exact_inertia,
                    op.name() + ": eigenvalue counts need exact inertia — "
                                "the Woodbury elimination only sees a leaf "
                                "lower bound; use an orthogonal-ULV backend "
                                "(nested bases)");
  return st.negative_eigenvalues;
}

template <typename T>
index_t eigenvalue_count(CompressedOperator<T>& op, double lo, double hi) {
  check<Error>(lo <= hi, "eigenvalue_count: lo must not exceed hi");
  const index_t below_hi = eigenvalue_count_below(op, hi);
  const index_t below_lo = eigenvalue_count_below(op, lo);
  return below_hi - below_lo;
}

template <typename T>
std::vector<SpectrumSlice> slice_spectrum(CompressedOperator<T>& op,
                                          double lo, double hi,
                                          index_t max_per_slice,
                                          double min_width) {
  check<Error>(lo <= hi, "slice_spectrum: lo must not exceed hi");
  if (max_per_slice < 1) max_per_slice = 1;
  if (min_width <= 0.0) min_width = (hi - lo) * 1e-6;

  std::vector<SpectrumSlice> out;
  if (hi <= lo) return out;
  const index_t c_lo = eigenvalue_count_below(op, lo);
  const index_t c_hi = eigenvalue_count_below(op, hi);

  // Explicit bisection stack of (interval, strictly-below counts at the
  // endpoints); each midpoint probe is one refactorize on the shared
  // factorization — the counts at the endpoints are inherited, so a
  // slicing into S slices costs about S·log₂(width/min_width) retunes.
  struct Node {
    double lo, hi;
    index_t c_lo, c_hi;
  };
  std::vector<Node> stack{{lo, hi, c_lo, c_hi}};
  while (!stack.empty()) {
    const Node nd = stack.back();
    stack.pop_back();
    const index_t count = nd.c_hi - nd.c_lo;
    if (count == 0) continue;
    if (count <= max_per_slice || (nd.hi - nd.lo) <= min_width) {
      out.push_back(SpectrumSlice{nd.lo, nd.hi, count});
      continue;
    }
    const double mid = 0.5 * (nd.lo + nd.hi);
    const index_t c_mid = eigenvalue_count_below(op, mid);
    stack.push_back(Node{mid, nd.hi, c_mid, nd.c_hi});
    stack.push_back(Node{nd.lo, mid, nd.c_lo, c_mid});
  }
  std::sort(out.begin(), out.end(),
            [](const SpectrumSlice& a, const SpectrumSlice& b) {
              return a.lo < b.lo;
            });
  return out;
}

template EigsResult<float> eigs_at<float>(const CompressedOperator<float>&,
                                          EigsOptions, EvalWorkspace<float>*);
template EigsResult<double> eigs_at<double>(const CompressedOperator<double>&,
                                            EigsOptions,
                                            EvalWorkspace<double>*);
template EigsResult<float> eigs<float>(CompressedOperator<float>&, index_t,
                                       Which, double, EigsOptions);
template EigsResult<double> eigs<double>(CompressedOperator<double>&, index_t,
                                         Which, double, EigsOptions);
template index_t eigenvalue_count_below<float>(CompressedOperator<float>&,
                                               double);
template index_t eigenvalue_count_below<double>(CompressedOperator<double>&,
                                                double);
template index_t eigenvalue_count<float>(CompressedOperator<float>&, double,
                                         double);
template index_t eigenvalue_count<double>(CompressedOperator<double>&, double,
                                          double);
template std::vector<SpectrumSlice> slice_spectrum<float>(
    CompressedOperator<float>&, double, double, index_t, double);
template std::vector<SpectrumSlice> slice_spectrum<double>(
    CompressedOperator<double>&, double, double, index_t, double);

}  // namespace gofmm::spectral
